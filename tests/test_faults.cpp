// Fault sites, fault lists and equivalence collapsing.

#include <gtest/gtest.h>

#include <set>

#include "bench_data/s27.h"
#include "faults/collapse.h"
#include "faults/fault.h"
#include "faults/fault_list.h"

namespace motsim {
namespace {

Netlist two_gate() {
  Netlist nl("two");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex b = nl.add_input("b");
  const NodeIndex g = nl.add_gate(GateType::And, {a, b}, "g");
  const NodeIndex o = nl.add_gate(GateType::Not, {g}, "o");
  nl.mark_output(o);
  nl.finalize();
  return nl;
}

TEST(SiteTable, CountsStemsAndBranches) {
  const Netlist nl = two_gate();
  const SiteTable sites(nl);
  // 4 stems (a, b, g, o) + 3 branches (g.in0, g.in1, o.in0).
  EXPECT_EQ(sites.site_count(), 7u);
  EXPECT_EQ(sites.fault_count(), 14u);
}

TEST(SiteTable, RoundTripsEverySite) {
  const Netlist nl = make_s27();
  const SiteTable sites(nl);
  for (std::size_t s = 0; s < sites.site_count(); ++s) {
    const FaultSite site = sites.site_from_index(s);
    EXPECT_EQ(sites.site_of(site), s);
  }
  EXPECT_THROW((void)sites.site_from_index(sites.site_count()),
               std::out_of_range);
}

TEST(SiteTable, FaultIdsRoundTrip) {
  const Netlist nl = make_s27();
  const SiteTable sites(nl);
  for (std::size_t id = 0; id < sites.fault_count(); ++id) {
    const Fault f = sites.fault_from_id(id);
    EXPECT_EQ(sites.fault_id(f), id);
  }
}

TEST(FaultList, EnumeratesAllFaults) {
  const Netlist nl = two_gate();
  const auto faults = all_faults(nl);
  EXPECT_EQ(faults.size(), 14u);
  // Both polarities present for every site.
  std::set<std::pair<std::size_t, bool>> seen;
  const SiteTable sites(nl);
  for (const Fault& f : faults) {
    seen.insert({sites.site_of(f.site), f.stuck_value});
  }
  EXPECT_EQ(seen.size(), 14u);
}

TEST(FaultName, FormatsStemAndBranch) {
  const Netlist nl = two_gate();
  EXPECT_EQ(fault_name(nl, Fault{FaultSite{nl.find("g"), kStemPin}, false}),
            "g/SA0");
  EXPECT_EQ(fault_name(nl, Fault{FaultSite{nl.find("g"), 1}, true}),
            "g.in1/SA1");
}

TEST(FaultStatusNames, AllDistinct) {
  std::set<std::string> names;
  for (FaultStatus s :
       {FaultStatus::Undetected, FaultStatus::XRedundant,
        FaultStatus::DetectedSim3, FaultStatus::DetectedSot,
        FaultStatus::DetectedRmot, FaultStatus::DetectedMot}) {
    names.insert(to_cstring(s));
  }
  EXPECT_EQ(names.size(), 6u);
  EXPECT_FALSE(is_detected(FaultStatus::Undetected));
  EXPECT_FALSE(is_detected(FaultStatus::XRedundant));
  EXPECT_TRUE(is_detected(FaultStatus::DetectedSim3));
  EXPECT_TRUE(is_detected(FaultStatus::DetectedMot));
}

// ---------------------------------------------------------------------------
// Collapsing
// ---------------------------------------------------------------------------

TEST(Collapse, AndGateEquivalences) {
  // AND: in s-a-0 == out s-a-0; a fanout-free input branch also merges
  // with its source stem.
  Netlist nl("and1");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex b = nl.add_input("b");
  const NodeIndex g = nl.add_gate(GateType::And, {a, b}, "g");
  nl.mark_output(g);
  nl.finalize();

  const CollapsedFaultList c(nl);
  const SiteTable& sites = c.sites();
  // Uncollapsed: 3 stems + 2 branches = 10 faults.
  EXPECT_EQ(c.uncollapsed_size(), 10u);
  // Classes: {a0, g.in0-0, g0}, {b0, g.in1-0, g0} -> all s-a-0 merge
  // into one class with the output; s-a-1 faults stay distinct:
  // {a1, g.in0-1}, {b1, g.in1-1}, {g1}. Total 4 classes... plus the
  // shared s-a-0 class = 4.
  EXPECT_EQ(c.size(), 4u);

  const auto rep = [&](const Fault& f) {
    return c.representative_of(sites.fault_id(f));
  };
  const Fault a0{FaultSite{a, kStemPin}, false};
  const Fault g0{FaultSite{g, kStemPin}, false};
  const Fault b0{FaultSite{b, kStemPin}, false};
  EXPECT_EQ(rep(a0), rep(g0));
  EXPECT_EQ(rep(b0), rep(g0));
  const Fault a1{FaultSite{a, kStemPin}, true};
  const Fault g1{FaultSite{g, kStemPin}, true};
  EXPECT_NE(rep(a1), rep(g1));
}

TEST(Collapse, NotGateSwapsPolarity) {
  Netlist nl("not1");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex g = nl.add_gate(GateType::Not, {a}, "g");
  nl.mark_output(g);
  nl.finalize();

  const CollapsedFaultList c(nl);
  const SiteTable& sites = c.sites();
  const auto rep = [&](const Fault& f) {
    return c.representative_of(sites.fault_id(f));
  };
  // a-sa0 == branch-sa0 == g-sa1; a-sa1 == g-sa0. Two classes.
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(rep(Fault{FaultSite{a, kStemPin}, false}),
            rep(Fault{FaultSite{g, kStemPin}, true}));
  EXPECT_EQ(rep(Fault{FaultSite{a, kStemPin}, true}),
            rep(Fault{FaultSite{g, kStemPin}, false}));
}

TEST(Collapse, OrNorNandRules) {
  Netlist nl("mix");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex b = nl.add_input("b");
  const NodeIndex o1 = nl.add_gate(GateType::Or, {a, b}, "o1");
  const NodeIndex o2 = nl.add_gate(GateType::Nand, {a, b}, "o2");
  const NodeIndex o3 = nl.add_gate(GateType::Nor, {o1, o2}, "o3");
  nl.mark_output(o3);
  nl.finalize();

  const CollapsedFaultList c(nl);
  const SiteTable& sites = c.sites();
  const auto rep = [&](const Fault& f) {
    return c.representative_of(sites.fault_id(f));
  };
  // OR: input s-a-1 == output s-a-1.
  EXPECT_EQ(rep(Fault{FaultSite{o1, 0}, true}),
            rep(Fault{FaultSite{o1, kStemPin}, true}));
  // NAND: input s-a-0 == output s-a-1.
  EXPECT_EQ(rep(Fault{FaultSite{o2, 0}, false}),
            rep(Fault{FaultSite{o2, kStemPin}, true}));
  // NOR: input s-a-1 == output s-a-0; o1 is fanout-free into o3.
  EXPECT_EQ(rep(Fault{FaultSite{o1, kStemPin}, true}),
            rep(Fault{FaultSite{o3, kStemPin}, false}));
}

TEST(Collapse, FanoutBlocksStemBranchMerge) {
  Netlist nl("fan");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex g1 = nl.add_gate(GateType::Not, {a}, "g1");
  const NodeIndex g2 = nl.add_gate(GateType::Not, {a}, "g2");
  nl.mark_output(g1);
  nl.mark_output(g2);
  nl.finalize();

  const CollapsedFaultList c(nl);
  const SiteTable& sites = c.sites();
  const auto rep = [&](const Fault& f) {
    return c.representative_of(sites.fault_id(f));
  };
  // With fanout 2, the stem fault is NOT equivalent to either branch.
  EXPECT_NE(rep(Fault{FaultSite{a, kStemPin}, false}),
            rep(Fault{FaultSite{g1, 0}, false}));
  EXPECT_NE(rep(Fault{FaultSite{g1, 0}, false}),
            rep(Fault{FaultSite{g2, 0}, false}));
}

TEST(Collapse, DffActsAsBuffer) {
  Netlist nl("dffc");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex q = nl.add_dff(a, "q");
  const NodeIndex o = nl.add_gate(GateType::Not, {q}, "o");
  nl.mark_output(o);
  nl.finalize();

  const CollapsedFaultList c(nl);
  const SiteTable& sites = c.sites();
  const auto rep = [&](const Fault& f) {
    return c.representative_of(sites.fault_id(f));
  };
  EXPECT_EQ(rep(Fault{FaultSite{a, kStemPin}, false}),
            rep(Fault{FaultSite{q, kStemPin}, false}));
}

TEST(Collapse, RepresentativesAreCanonicalAndSorted) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  const SiteTable& sites = c.sites();
  std::size_t last = 0;
  bool first = true;
  for (const Fault& f : c.faults()) {
    const std::size_t id = sites.fault_id(f);
    EXPECT_EQ(c.representative_of(id), id);  // reps represent themselves
    if (!first) {
      EXPECT_GT(id, last);
    }
    last = id;
    first = false;
  }
  EXPECT_LT(c.size(), c.uncollapsed_size());
}

TEST(Collapse, EveryFaultHasARepresentativeInTheList) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  const SiteTable& sites = c.sites();
  std::set<std::size_t> reps;
  for (const Fault& f : c.faults()) reps.insert(sites.fault_id(f));
  for (std::size_t id = 0; id < c.uncollapsed_size(); ++id) {
    EXPECT_TRUE(reps.count(c.representative_of(id)) == 1);
  }
}

// ---------------------------------------------------------------------------
// Class-verdict transfer
// ---------------------------------------------------------------------------

TEST(TransferVerdicts, ExpandsEveryClassMemberToItsRepresentative) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  const SiteTable& sites = c.sites();
  // Give every representative a distinct-ish verdict by position.
  std::vector<FaultStatus> rep_status(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    rep_status[i] = i % 2 == 0 ? FaultStatus::DetectedMot
                               : FaultStatus::Undetected;
  }
  const std::vector<FaultStatus> full = transfer_class_verdicts(c, rep_status);
  ASSERT_EQ(full.size(), c.uncollapsed_size());
  // Position of each representative id in the collapsed list.
  std::vector<std::size_t> index_of(c.uncollapsed_size(), 0);
  for (std::size_t i = 0; i < c.size(); ++i) {
    index_of[sites.fault_id(c.faults()[i])] = i;
  }
  for (std::size_t id = 0; id < c.uncollapsed_size(); ++id) {
    EXPECT_EQ(full[id], rep_status[index_of[c.representative_of(id)]]);
  }
  // Misaligned input is an error, not silent corruption.
  std::vector<FaultStatus> bad(c.size() + 1, FaultStatus::Undetected);
  EXPECT_THROW((void)transfer_class_verdicts(c, bad), std::invalid_argument);
}

TEST(TransferVerdicts, XorFaninFaultsAreSingletonClasses) {
  // XOR/XNOR admit no input equivalence: every fault is its own class
  // and the transfer must map it onto exactly itself.
  Netlist nl("xorx");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex b = nl.add_input("b");
  const NodeIndex g = nl.add_gate(GateType::Xor, {a, b}, "g");
  const NodeIndex h = nl.add_gate(GateType::Xnor, {g, b}, "h");
  nl.mark_output(h);
  nl.finalize();
  const CollapsedFaultList c(nl);
  const SiteTable& sites = c.sites();
  // 4 stems (a, b, g, h) + 4 branches (g.in0, g.in1, h.in0, h.in1).
  // The XOR/XNOR gates contribute no input/output equivalence; the
  // only merges are the fanout-free stem/branch pairs a==g.in0 and
  // g==h.in0 (both polarities each). b fans out twice, so its stem
  // and branches all stay singletons.
  EXPECT_EQ(c.uncollapsed_size(), 16u);
  EXPECT_EQ(c.size(), 12u);
  std::vector<FaultStatus> rep_status(c.size(), FaultStatus::Undetected);
  rep_status[0] = FaultStatus::DetectedSim3;
  const std::vector<FaultStatus> full = transfer_class_verdicts(c, rep_status);
  // The XOR fanin faults map 1:1 — flipping one representative touches
  // exactly its own class (here: fault id 0's class).
  std::size_t detected = 0;
  for (std::size_t id = 0; id < full.size(); ++id) {
    if (full[id] == FaultStatus::DetectedSim3) {
      ++detected;
      EXPECT_EQ(c.representative_of(id),
                sites.fault_id(c.faults()[0]));
    }
  }
  EXPECT_GE(detected, 1u);
}

TEST(TransferVerdicts, DffChainTransfersThroughEveryStage) {
  // a -> q1 -> q2 -> o(NOT): the whole s-a-v chain is one class whose
  // verdict must reach every member, across both flip-flop crossings.
  Netlist nl("dffchain");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex q1 = nl.add_dff(a, "q1");
  const NodeIndex q2 = nl.add_dff(q1, "q2");
  const NodeIndex o = nl.add_gate(GateType::Not, {q2}, "o");
  nl.mark_output(o);
  nl.finalize();
  const CollapsedFaultList c(nl);
  const SiteTable& sites = c.sites();
  std::vector<FaultStatus> rep_status(c.size(), FaultStatus::Undetected);
  // Find the representative of a/SA0 and detect it.
  const std::size_t a0_rep =
      c.representative_of(sites.fault_id(Fault{FaultSite{a, kStemPin}, false}));
  std::size_t a0_index = c.size();
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (sites.fault_id(c.faults()[i]) == a0_rep) a0_index = i;
  }
  ASSERT_NE(a0_index, c.size());
  rep_status[a0_index] = FaultStatus::DetectedMot;
  const std::vector<FaultStatus> full = transfer_class_verdicts(c, rep_status);
  // Every s-a-0 along the chain (and o/SA1 through the inverter) sees
  // the verdict.
  for (const Fault f : {Fault{FaultSite{a, kStemPin}, false},
                        Fault{FaultSite{q1, kStemPin}, false},
                        Fault{FaultSite{q2, kStemPin}, false},
                        Fault{FaultSite{o, 0}, false},
                        Fault{FaultSite{o, kStemPin}, true}}) {
    EXPECT_EQ(full[sites.fault_id(f)], FaultStatus::DetectedMot)
        << fault_name(nl, f);
  }
  // The opposite polarity stays untouched.
  EXPECT_EQ(full[sites.fault_id(Fault{FaultSite{a, kStemPin}, true})],
            FaultStatus::Undetected);
}

// ---------------------------------------------------------------------------
// Dominance collapsing (accounting only — see collapse.h)
// ---------------------------------------------------------------------------

TEST(Dominance, AndGateOutputSa1DominatesInputs) {
  Netlist nl("and1");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex b = nl.add_input("b");
  const NodeIndex g = nl.add_gate(GateType::And, {a, b}, "g");
  nl.mark_output(g);
  nl.finalize();
  const CollapsedFaultList c(nl);
  const DominanceCollapse d(nl, c);
  // g/SA1 dominates a/SA1 and b/SA1 (different classes): exactly one
  // class is dropped.
  EXPECT_EQ(d.dropped(), 1u);
  EXPECT_EQ(d.collapsed_size(), c.size() - 1);
  const SiteTable& sites = c.sites();
  std::size_t g1_index = c.size();
  for (std::size_t i = 0; i < c.size(); ++i) {
    const Fault& f = c.faults()[i];
    if (c.representative_of(
            sites.fault_id(Fault{FaultSite{g, kStemPin}, true})) ==
        sites.fault_id(f)) {
      g1_index = i;
    }
  }
  ASSERT_NE(g1_index, c.size());
  EXPECT_TRUE(d.dominates_another(g1_index));
}

TEST(Dominance, XorGateHasNoDominance) {
  Netlist nl("xord");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex b = nl.add_input("b");
  const NodeIndex g = nl.add_gate(GateType::Xor, {a, b}, "g");
  nl.mark_output(g);
  nl.finalize();
  const CollapsedFaultList c(nl);
  const DominanceCollapse d(nl, c);
  EXPECT_EQ(d.dropped(), 0u);
  EXPECT_EQ(d.collapsed_size(), c.size());
}

TEST(Dominance, EquivalentOutputInputPairIsNotDropped) {
  // NOT in/out faults are equivalent (same class); the dominance pass
  // must not count a same-class edge as a dropped dominator.
  Netlist nl("notd");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex g = nl.add_gate(GateType::Not, {a}, "g");
  nl.mark_output(g);
  nl.finalize();
  const CollapsedFaultList c(nl);
  const DominanceCollapse d(nl, c);
  EXPECT_EQ(d.dropped(), 0u);
}

TEST(Dominance, S27CountsAreConsistent) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  const DominanceCollapse d(nl, c);
  EXPECT_GT(d.dropped(), 0u);
  EXPECT_LT(d.collapsed_size(), c.size());
  EXPECT_EQ(d.collapsed_size() + d.dropped(), c.size());
  std::size_t dominators = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    dominators += d.dominates_another(i) ? 1 : 0;
  }
  EXPECT_EQ(dominators, d.dropped());
}

}  // namespace
}  // namespace motsim
