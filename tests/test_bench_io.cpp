// ISCAS-89 .bench reader/writer.

#include <gtest/gtest.h>

#include "bench_data/s27.h"
#include "circuit/bench_io.h"
#include "circuit/validate.h"

namespace motsim {
namespace {

TEST(BenchIo, ParsesS27) {
  const Netlist nl = parse_bench_string(s27_bench_text(), "s27");
  EXPECT_EQ(nl.input_count(), 4u);
  EXPECT_EQ(nl.output_count(), 1u);
  EXPECT_EQ(nl.dff_count(), 3u);
  EXPECT_EQ(nl.gate_count(), 10u);
  EXPECT_EQ(nl.gate(nl.find("G9")).type, GateType::Nand);
  EXPECT_EQ(nl.gate(nl.find("G10")).type, GateType::Nor);
}

TEST(BenchIo, RoundTripPreservesStructure) {
  const Netlist original = parse_bench_string(s27_bench_text(), "s27");
  const std::string text = write_bench_string(original);
  const Netlist reparsed = parse_bench_string(text, "s27rt");

  EXPECT_EQ(reparsed.input_count(), original.input_count());
  EXPECT_EQ(reparsed.output_count(), original.output_count());
  EXPECT_EQ(reparsed.dff_count(), original.dff_count());
  EXPECT_EQ(reparsed.node_count(), original.node_count());
  for (NodeIndex n = 0; n < original.node_count(); ++n) {
    const Gate& g = original.gate(n);
    const NodeIndex rn = reparsed.find(g.name);
    ASSERT_NE(rn, kNoNode) << g.name;
    EXPECT_EQ(reparsed.gate(rn).type, g.type);
    EXPECT_EQ(reparsed.gate(rn).fanins.size(), g.fanins.size());
  }
}

TEST(BenchIo, HandlesForwardReferences) {
  // q's D input is defined after q itself — the sequential idiom.
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nOUTPUT(o)\nq = DFF(o)\no = AND(a, q)\n", "fwd");
  EXPECT_EQ(nl.dff_count(), 1u);
  EXPECT_EQ(nl.gate(nl.find("q")).fanins[0], nl.find("o"));
}

TEST(BenchIo, IgnoresCommentsAndBlankLines) {
  const Netlist nl = parse_bench_string(
      "# a comment\n\nINPUT(a)\n  # indented comment\nOUTPUT(o)\n"
      "o = NOT(a)\n",
      "c");
  EXPECT_EQ(nl.node_count(), 2u);
}

TEST(BenchIo, AcceptsCaseInsensitiveKeywordsAndBuffAlias) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nOUTPUT(o)\nb = buff(a)\no = nand(a, b)\n", "ci");
  EXPECT_EQ(nl.gate(nl.find("b")).type, GateType::Buf);
  EXPECT_EQ(nl.gate(nl.find("o")).type, GateType::Nand);
}

TEST(BenchIo, ErrorsCarryLineNumbers) {
  try {
    (void)parse_bench_string("INPUT(a)\nOUTPUT(o)\no = FROB(a)\n", "bad");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(BenchIo, RejectsUndefinedSignals) {
  EXPECT_THROW((void)parse_bench_string(
                   "INPUT(a)\nOUTPUT(o)\no = AND(a, ghost)\n", "bad"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)parse_bench_string("INPUT(a)\nOUTPUT(ghost)\nb = NOT(a)\n",
                               "bad"),
      std::invalid_argument);
}

TEST(BenchIo, RejectsDuplicateDefinitions) {
  EXPECT_THROW((void)parse_bench_string(
                   "INPUT(a)\nOUTPUT(o)\no = NOT(a)\no = BUF(a)\n", "bad"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_bench_string("INPUT(a)\nINPUT(a)\n", "bad"),
               std::invalid_argument);
}

TEST(BenchIo, RejectsMalformedLines) {
  EXPECT_THROW((void)parse_bench_string("INPUT a\n", "bad"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_bench_string("o = AND a, b\n", "bad"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_bench_string("just some words\n", "bad"),
               std::invalid_argument);
}

TEST(BenchIo, WriterEmitsParsableConstGates) {
  Netlist nl("consts");
  const NodeIndex c0 = nl.add_gate(GateType::Const0, {}, "zero");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex g = nl.add_gate(GateType::Or, {a, c0}, "g");
  nl.mark_output(g);
  nl.finalize();
  const Netlist reparsed =
      parse_bench_string(write_bench_string(nl), "consts2");
  EXPECT_EQ(reparsed.gate(reparsed.find("zero")).type, GateType::Const0);
}

}  // namespace
}  // namespace motsim
