// Execution-redundancy trimming (analysis/trim, docs/ANALYSIS.md):
// the static activation plan itself, and the property the whole pass
// stands on — trimmed runs are BIT-IDENTICAL to untrimmed runs, for
// every engine (pure symbolic, hybrid, parallel with any thread
// count), every strategy, and the multi-strategy driver. Verdicts,
// detection frames AND store fingerprints must all match; only the
// work counters may differ.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/cone.h"
#include "analysis/implication.h"
#include "analysis/trim.h"
#include "bench_data/registry.h"
#include "core/hybrid_sim.h"
#include "core/parallel_sym_sim.h"
#include "core/sym_fault_sim.h"
#include "faults/collapse.h"
#include "faults/fault_list.h"
#include "reference.h"
#include "store/fingerprint.h"
#include "store/run_store.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace motsim {
namespace {

using testing::small_random_circuit;

/// Constant AND feeding a two-deep flip-flop chain (mirrors
/// test_analysis's settled-chain): c is every-frame constant 0, q
/// settles from frame 2, q2 from frame 3. Faults on the chain become
/// statically dead once their activation net settles to the stuck
/// value.
Netlist settled_chain_circuit() {
  Netlist nl("settled");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex na = nl.add_gate(GateType::Not, {a}, "na");
  const NodeIndex c = nl.add_gate(GateType::And, {a, na}, "c");
  const NodeIndex q = nl.add_dff(c, "q");
  const NodeIndex q2 = nl.add_dff(q, "q2");
  const NodeIndex o = nl.add_gate(GateType::Or, {q2, a}, "o");
  nl.mark_output(o);
  nl.finalize();
  return nl;
}

/// Like the settled chain, but the dead cone hangs off an explicit
/// Const0 gate, so the STRUCTURAL constant propagation (all the
/// engines' self-built plans use) already proves g constant — the
/// engines park its faults without any implication learning.
Netlist const_chain_circuit() {
  Netlist nl("constchain");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex z = nl.add_gate(GateType::Const0, {}, "z");
  const NodeIndex g = nl.add_gate(GateType::And, {a, z}, "g");
  const NodeIndex q = nl.add_dff(g, "q");
  const NodeIndex o = nl.add_gate(GateType::Or, {q, a}, "o");
  nl.mark_output(o);
  nl.finalize();
  return nl;
}

void expect_same_result(const SymFaultSimResult& a, const SymFaultSimResult& b,
                        const Netlist& nl, const std::vector<Fault>& faults,
                        const char* what) {
  ASSERT_EQ(a.status.size(), b.status.size()) << what;
  EXPECT_EQ(a.detected_count, b.detected_count) << what;
  for (std::size_t i = 0; i < a.status.size(); ++i) {
    EXPECT_EQ(a.status[i], b.status[i])
        << what << " " << fault_name(nl, faults[i]);
    EXPECT_EQ(a.detect_frame[i], b.detect_frame[i])
        << what << " " << fault_name(nl, faults[i]);
  }
}

void expect_same_result(const HybridResult& a, const HybridResult& b,
                        const Netlist& nl, const std::vector<Fault>& faults,
                        const char* what) {
  ASSERT_EQ(a.status.size(), b.status.size()) << what;
  EXPECT_EQ(a.detected_count, b.detected_count) << what;
  for (std::size_t i = 0; i < a.status.size(); ++i) {
    EXPECT_EQ(a.status[i], b.status[i])
        << what << " " << fault_name(nl, faults[i]);
    EXPECT_EQ(a.detect_frame[i], b.detect_frame[i])
        << what << " " << fault_name(nl, faults[i]);
  }
}

// ---------------------------------------------------------------------------
// TrimPlan construction
// ---------------------------------------------------------------------------

TEST(TrimPlan, AlignedWithFaultListAndDeadCountMatches) {
  const Netlist nl = make_benchmark("s344");
  const CollapsedFaultList c(nl);
  const TrimPlan plan = build_trim_plan(nl, c.faults());
  ASSERT_EQ(plan.dead_from.size(), c.size());
  std::size_t dead = 0;
  for (std::uint32_t f : plan.dead_from) dead += (f != 0);
  EXPECT_EQ(plan.dead_fault_count(), dead);
}

TEST(TrimPlan, SettledChainKillsStuckAtConstantFaults) {
  // c = AND(a, NOT a) is a RECONVERGENT constant — structural
  // propagation cannot see it, so this is exactly the case where the
  // implication-enriched plan beats the engines' self-built one.
  const Netlist nl = settled_chain_circuit();
  const NodeIndex c = nl.find("c");
  const NodeIndex q = nl.find("q");
  const NodeIndex q2 = nl.find("q2");
  const std::vector<Fault> faults = {
      {FaultSite{c, kStemPin}, false},   // c s-a-0: dead from frame 1
      {FaultSite{c, kStemPin}, true},    // c s-a-1: activated every frame
      {FaultSite{q, kStemPin}, false},   // q s-a-0: dead once q settles
      {FaultSite{q2, kStemPin}, false},  // q2 s-a-0: one frame later
  };
  EXPECT_EQ(build_trim_plan(nl, faults).dead_fault_count(), 0u);
  const ImplicationEngine eng(nl);
  const TrimPlan plan = build_trim_plan(eng, faults);
  ASSERT_EQ(plan.dead_from.size(), faults.size());
  EXPECT_EQ(plan.dead_from[0], 1u);
  EXPECT_EQ(plan.dead_from[1], 0u);
  EXPECT_EQ(plan.dead_from[2], 2u);
  EXPECT_EQ(plan.dead_from[3], 3u);
  EXPECT_EQ(plan.dead_fault_count(), 3u);
}

TEST(TrimPlan, ImplicationEnrichedPlanSubsumesStructural) {
  // The enriched plan may only mark MORE faults dead (or dead earlier)
  // than the structural one — never fewer, never later.
  for (const char* name : {"s27", "s344"}) {
    const Netlist nl = make_benchmark(name);
    const CollapsedFaultList c(nl);
    const TrimPlan structural = build_trim_plan(nl, c.faults());
    const ImplicationEngine eng(nl);
    const TrimPlan enriched = build_trim_plan(eng, c.faults());
    ASSERT_EQ(structural.dead_from.size(), enriched.dead_from.size());
    for (std::size_t i = 0; i < structural.dead_from.size(); ++i) {
      if (structural.dead_from[i] == 0) continue;
      ASSERT_NE(enriched.dead_from[i], 0u) << name << " fault " << i;
      EXPECT_LE(enriched.dead_from[i], structural.dead_from[i])
          << name << " fault " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// cluster_live_order
// ---------------------------------------------------------------------------

TEST(ConeClustering, LiveOrderIsAPermutationAndDeterministic) {
  const Netlist nl = make_benchmark("s344");
  const CollapsedFaultList c(nl);
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < c.size(); i += 2) live.push_back(i);

  const std::vector<std::size_t> a = cluster_live_order(nl, c.faults(), live);
  const std::vector<std::size_t> b = cluster_live_order(nl, c.faults(), live);
  EXPECT_EQ(a, b);  // pure function, no hidden state

  std::vector<std::size_t> sorted_in = live;
  std::vector<std::size_t> sorted_out = a;
  std::sort(sorted_in.begin(), sorted_in.end());
  std::sort(sorted_out.begin(), sorted_out.end());
  EXPECT_EQ(sorted_in, sorted_out);  // a permutation of the input
}

TEST(ConeClustering, ShardMatesShareConeSignatures) {
  const Netlist nl = make_benchmark("s27");
  const CollapsedFaultList c(nl);
  std::vector<std::size_t> live(c.size());
  for (std::size_t i = 0; i < live.size(); ++i) live[i] = i;
  const std::vector<std::size_t> order =
      cluster_live_order(nl, c.faults(), live);

  // After the reorder, equal signatures form one contiguous run.
  ConeAnalysis analysis(nl);
  std::vector<std::uint64_t> sigs;
  sigs.reserve(order.size());
  for (std::size_t idx : order) {
    sigs.push_back(analysis.fault_cone(c.faults()[idx]).signature);
  }
  std::vector<std::uint64_t> seen;
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    if (i != 0 && sigs[i] == sigs[i - 1]) continue;
    EXPECT_EQ(std::count(seen.begin(), seen.end(), sigs[i]), 0)
        << "signature run split at position " << i;
    seen.push_back(sigs[i]);
  }
}

// ---------------------------------------------------------------------------
// Bit-identity: pure symbolic engine
// ---------------------------------------------------------------------------

class TrimIdentity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrimIdentity, PureSymbolicMatchesUntrimmed) {
  const Netlist nl = small_random_circuit(GetParam());
  Rng rng(GetParam() * 7 + 3);
  const TestSequence seq = random_sequence(nl, 8, rng);
  const CollapsedFaultList c(nl);

  for (Strategy s : {Strategy::Sot, Strategy::Rmot, Strategy::Mot}) {
    SymFaultSim plain(nl, c.faults(), s);
    const SymFaultSimResult rp = plain.run(seq);
    EXPECT_EQ(rp.frames_skipped, 0u);
    EXPECT_EQ(rp.faults_terminated_early, 0u);
    EXPECT_EQ(rp.faultfree_evals_shared, 0u);

    SymFaultSim trimmed(nl, c.faults(), s);
    trimmed.set_trim(true);
    const SymFaultSimResult rt = trimmed.run(seq);
    expect_same_result(rp, rt, nl, c.faults(), to_cstring(s));
  }
}

TEST_P(TrimIdentity, MultiStrategyMatchesUntrimmed) {
  const Netlist nl = small_random_circuit(GetParam() + 20);
  Rng rng(GetParam() * 13 + 1);
  const TestSequence seq = random_sequence(nl, 6, rng);
  const CollapsedFaultList c(nl);

  const MultiStrategyResult plain =
      run_all_strategies(nl, c.faults(), seq, {}, VarLayout::Interleaved,
                         /*trim=*/false);
  const MultiStrategyResult trimmed =
      run_all_strategies(nl, c.faults(), seq, {}, VarLayout::Interleaved,
                         /*trim=*/true);
  expect_same_result(plain.sot, trimmed.sot, nl, c.faults(), "sot");
  expect_same_result(plain.rmot, trimmed.rmot, nl, c.faults(), "rmot");
  expect_same_result(plain.mot, trimmed.mot, nl, c.faults(), "mot");
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrimIdentity,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------------------------------------------------------------------------
// Bit-identity: hybrid and parallel engines (ample space — fallback
// window schedules are part of the identity contract only when no
// space pressure exists; see docs/PARALLEL.md)
// ---------------------------------------------------------------------------

HybridConfig ample(Strategy s, bool trim) {
  HybridConfig cfg;
  cfg.strategy = s;
  cfg.node_limit = 1u << 22;
  cfg.trim = trim;
  return cfg;
}

TEST_P(TrimIdentity, HybridMatchesUntrimmed) {
  const Netlist nl = small_random_circuit(GetParam() + 40);
  Rng rng(GetParam() * 5 + 7);
  const TestSequence seq = random_sequence(nl, 8, rng);
  const CollapsedFaultList c(nl);

  for (Strategy s : {Strategy::Sot, Strategy::Rmot, Strategy::Mot}) {
    HybridFaultSim plain(nl, c.faults(), ample(s, false));
    const HybridResult rp = plain.run(seq);
    EXPECT_EQ(rp.frames_skipped, 0u);
    EXPECT_EQ(rp.faults_terminated_early, 0u);

    HybridFaultSim trimmed(nl, c.faults(), ample(s, true));
    const HybridResult rt = trimmed.run(seq);
    expect_same_result(rp, rt, nl, c.faults(), to_cstring(s));
  }
}

TEST(TrimIdentityBench, S344AllStrategiesAllEngines) {
  const Netlist nl = make_benchmark("s344");
  Rng rng(99);
  const TestSequence seq = random_sequence(nl, 24, rng);
  const CollapsedFaultList c(nl);

  for (Strategy s : {Strategy::Sot, Strategy::Rmot, Strategy::Mot}) {
    HybridFaultSim plain(nl, c.faults(), ample(s, false));
    const HybridResult rp = plain.run(seq);
    HybridFaultSim trimmed(nl, c.faults(), ample(s, true));
    const HybridResult rt = trimmed.run(seq);
    expect_same_result(rp, rt, nl, c.faults(), to_cstring(s));

    // Parallel, every thread count, trimmed: identical to BOTH serial
    // runs (which already match each other).
    for (std::size_t threads : {1u, 2u, 4u}) {
      ParallelSymConfig pc;
      pc.hybrid = ample(s, true);
      pc.threads = threads;
      pc.chunk_size = 48;
      ParallelSymSim par(nl, c.faults(), pc);
      const HybridResult rr = par.run(seq);
      expect_same_result(rp, rr, nl, c.faults(), to_cstring(s));
    }
  }
}

TEST(TrimIdentityBench, SettledChainSkipsFramesWithoutChangingVerdicts) {
  // The powered-up-X edge case: flip-flops start symbolic, so the
  // chain's faults can diverge in early frames before their activation
  // settles. Skipping must wait for the stored divergence to die out —
  // verdicts and frames must survive trimming unchanged.
  const Netlist nl = settled_chain_circuit();
  Rng rng(5);
  const TestSequence seq = random_sequence(nl, 10, rng);
  const std::vector<Fault> faults = all_faults(nl);

  for (Strategy s : {Strategy::Sot, Strategy::Rmot, Strategy::Mot}) {
    SymFaultSim plain(nl, faults, s);
    const SymFaultSimResult rp = plain.run(seq);

    SymFaultSim trimmed(nl, faults, s);
    trimmed.set_trim(true);
    const SymFaultSimResult rt = trimmed.run(seq);
    expect_same_result(rp, rt, nl, faults, to_cstring(s));

    // Input-cone nets carry concrete per-frame values, so quiescent
    // faults exist in every frame — the trimmed run must actually
    // skip work.
    EXPECT_GT(rt.frames_skipped, 0u) << to_cstring(s);
  }
}

TEST(TrimIdentityBench, ConstChainParksFaultsWithoutChangingVerdicts) {
  // Structurally constant cone: the engines' self-built plans already
  // mark g's stuck-at-0 fault dead, so SOT/rMOT must PARK it (stop
  // simulating for good) while MOT keeps accumulating its detection
  // function from the shared equality product.
  const Netlist nl = const_chain_circuit();
  Rng rng(7);
  const TestSequence seq = random_sequence(nl, 10, rng);
  const std::vector<Fault> faults = all_faults(nl);
  ASSERT_GT(build_trim_plan(nl, faults).dead_fault_count(), 0u);

  for (Strategy s : {Strategy::Sot, Strategy::Rmot, Strategy::Mot}) {
    HybridFaultSim plain(nl, faults, ample(s, false));
    const HybridResult rp = plain.run(seq);

    HybridFaultSim trimmed(nl, faults, ample(s, true));
    const HybridResult rt = trimmed.run(seq);
    expect_same_result(rp, rt, nl, faults, to_cstring(s));

    EXPECT_GT(rt.frames_skipped, 0u) << to_cstring(s);
    if (s != Strategy::Mot) {
      EXPECT_GT(rt.faults_terminated_early, 0u) << to_cstring(s);
    } else {
      EXPECT_GT(rt.faultfree_evals_shared, 0u) << to_cstring(s);
    }
  }
}

// ---------------------------------------------------------------------------
// Store identity: trim is a pure performance knob
// ---------------------------------------------------------------------------

TEST(TrimStore, FingerprintIgnoresTrim) {
  SimOptions on;
  on.trim = true;
  SimOptions off = on;
  off.trim = false;
  EXPECT_EQ(fingerprint_options(on), fingerprint_options(off));
  EXPECT_FALSE(on == off);  // ...but the configurations DO differ
}

TEST(TrimStore, ManifestRoundTripsTrim) {
  StoreManifest m;
  m.circuit = "s27";
  m.sequence_length = 4;
  m.segment_lengths = {4};
  for (bool trim : {true, false}) {
    m.options.trim = trim;
    const std::string text = m.to_text();
    EXPECT_NE(text.find(trim ? "opt_trim 1" : "opt_trim 0"),
              std::string::npos);
    const auto parsed = StoreManifest::from_text(text);
    ASSERT_TRUE(parsed.has_value()) << parsed.error();
    EXPECT_EQ(parsed->options.trim, trim);
  }
}

TEST(TrimStore, LegacyManifestWithoutTrimLineResumesUntrimmed) {
  // Pre-trim manifests must load — and must come back with trim OFF,
  // so the shard partition they checkpointed under is recomputed
  // exactly (no cluster reorder).
  StoreManifest m;
  m.circuit = "s27";
  m.sequence_length = 4;
  m.segment_lengths = {4};
  m.options.trim = true;
  std::string text = m.to_text();
  const std::string line = "opt_trim 1\n";
  const std::size_t at = text.find(line);
  ASSERT_NE(at, std::string::npos);
  text.erase(at, line.size());
  const auto parsed = StoreManifest::from_text(text);
  ASSERT_TRUE(parsed.has_value()) << parsed.error();
  EXPECT_FALSE(parsed->options.trim);
}

// ---------------------------------------------------------------------------
// Plan plumbing
// ---------------------------------------------------------------------------

TEST(TrimPlumbing, MisalignedPlanIsRejected) {
  const Netlist nl = make_benchmark("s27");
  const CollapsedFaultList c(nl);
  TrimPlan bad;
  bad.dead_from.assign(c.size() + 1, 0);

  HybridFaultSim hybrid(nl, c.faults(), ample(Strategy::Mot, true));
  EXPECT_THROW(hybrid.set_trim_plan(bad), std::invalid_argument);

  ParallelSymConfig pc;
  pc.hybrid = ample(Strategy::Mot, true);
  pc.threads = 2;
  ParallelSymSim par(nl, c.faults(), pc);
  EXPECT_THROW(par.set_trim_plan(bad), std::invalid_argument);
}

TEST(TrimPlumbing, SuppliedPlanMatchesSelfBuiltPlan) {
  // Handing the engines the enriched plan the pipeline would build
  // must not change results relative to their self-built structural
  // plan (the enriched plan is sound, just stronger).
  const Netlist nl = settled_chain_circuit();
  Rng rng(17);
  const TestSequence seq = random_sequence(nl, 8, rng);
  const std::vector<Fault> faults = all_faults(nl);
  const ImplicationEngine eng(nl);
  const TrimPlan enriched = build_trim_plan(eng, faults);

  for (Strategy s : {Strategy::Sot, Strategy::Rmot, Strategy::Mot}) {
    HybridFaultSim self_built(nl, faults, ample(s, true));
    const HybridResult ra = self_built.run(seq);

    HybridFaultSim supplied(nl, faults, ample(s, true));
    supplied.set_trim_plan(enriched);
    const HybridResult rb = supplied.run(seq);
    expect_same_result(ra, rb, nl, faults, to_cstring(s));
  }
}

}  // namespace
}  // namespace motsim
