// The symbolic equivalence checker (core/equivalence.h): validates the
// .bench round trip and the reset transform, and produces genuine
// counterexamples for mutated circuits.

#include <gtest/gtest.h>

#include "bench_data/registry.h"
#include "bench_data/s27.h"
#include "circuit/bench_io.h"
#include "circuit/transform.h"
#include "core/equivalence.h"
#include "reference.h"
#include "sim3/sim2.h"

namespace motsim {
namespace {

using testing::small_random_circuit;

TEST(Equivalence, CircuitEqualsItself) {
  const Netlist nl = make_s27();
  const EquivalenceResult r = check_equivalence(nl, nl);
  EXPECT_TRUE(r.equivalent) << r.reason;
}

TEST(Equivalence, BenchRoundTripIsEquivalent) {
  for (const char* name : {"s27", "s298", "s344"}) {
    const Netlist a = name == std::string("s27") ? make_s27()
                                                 : make_benchmark(name);
    const Netlist b = parse_bench_string(write_bench_string(a), a.name());
    const EquivalenceResult r = check_equivalence(a, b);
    EXPECT_TRUE(r.equivalent) << name << ": " << r.reason;
  }
}

TEST(Equivalence, InterfaceMismatchIsReported) {
  const Netlist a = make_s27();
  const Netlist b = make_benchmark("s298");
  const EquivalenceResult r = check_equivalence(a, b);
  EXPECT_FALSE(r.equivalent);
  EXPECT_NE(r.reason.find("interface"), std::string::npos);
}

TEST(Equivalence, DetectsAMutatedGate) {
  // Flip one gate type (AND -> OR) and demand a counterexample that
  // concretely distinguishes the machines.
  const Netlist a = make_s27();
  std::string text = write_bench_string(a);
  const auto pos = text.find("G8 = AND");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 8, "G8 = OR(");
  text.replace(text.find("(", pos + 8), 1, "");  // fix the paren count
  const Netlist b = parse_bench_string(text, "s27-mutated");

  const EquivalenceResult r = check_equivalence(a, b);
  ASSERT_FALSE(r.equivalent);
  ASSERT_TRUE(r.counterexample_state.has_value());
  ASSERT_TRUE(r.counterexample_inputs.has_value());

  // Replay the counterexample concretely: one frame must already
  // differ at an output or a next-state bit.
  Sim2 sa(a), sb(b);
  sa.set_state(*r.counterexample_state);
  sb.set_state(*r.counterexample_state);
  const auto oa = sa.step(*r.counterexample_inputs);
  const auto ob = sb.step(*r.counterexample_inputs);
  EXPECT_TRUE(oa != ob || sa.state() != sb.state())
      << "counterexample does not distinguish the machines";
}

TEST(Equivalence, ResetTransformWithResetLowIsEquivalent) {
  for (const char* name : {"s298", "s208.1"}) {
    const Netlist a = make_benchmark(name);
    const Netlist b = with_synchronous_reset(a);
    // The reset pin is b's last input; tie it to 0.
    const EquivalenceResult r = check_equivalence_with_tied_inputs(
        a, b, {{b.input_count() - 1, false}});
    EXPECT_TRUE(r.equivalent) << name << ": " << r.reason;
  }
}

TEST(Equivalence, ResetTransformWithResetHighIsNotEquivalent) {
  const Netlist a = make_benchmark("s298");
  const Netlist b = with_synchronous_reset(a);
  const EquivalenceResult r = check_equivalence_with_tied_inputs(
      a, b, {{b.input_count() - 1, true}});
  EXPECT_FALSE(r.equivalent);
  EXPECT_NE(r.reason.find("next-state"), std::string::npos);
}

class EquivalenceProps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivalenceProps, RoundTripOnGeneratedCircuits) {
  const Netlist a = small_random_circuit(GetParam());
  const Netlist b = parse_bench_string(write_bench_string(a), a.name());
  const EquivalenceResult r = check_equivalence(a, b);
  EXPECT_TRUE(r.equivalent) << a.name() << ": " << r.reason;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceProps,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace motsim
