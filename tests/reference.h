#ifndef MOTSIM_TESTS_REFERENCE_H
#define MOTSIM_TESTS_REFERENCE_H

// Brute-force reference implementations of the paper's detectability
// definitions, by exhaustive enumeration of initial states with the
// two-valued simulator. Only usable for small memory-element counts;
// the property-based suites cross-validate every fault simulator
// against these.

#include <cstdint>
#include <vector>

#include "bench_data/synth_gen.h"
#include "circuit/netlist.h"
#include "faults/fault.h"
#include "logic/val3.h"
#include "sim3/sim2.h"
#include "tpg/sequences.h"

namespace motsim::testing {

/// Output sequences (frame-major) of machine `nl` (faulty if `fault`
/// given) for every initial state, indexed by the state's integer
/// encoding (bit i of the index = flip-flop i).
inline std::vector<std::vector<std::vector<bool>>> all_responses(
    const Netlist& nl, const std::optional<Fault>& fault,
    const TestSequence& sequence) {
  const std::size_t m = nl.dff_count();
  const std::size_t nstates = std::size_t{1} << m;
  const auto seq2 = to_bool_sequence(sequence);

  std::vector<std::vector<std::vector<bool>>> out;
  out.reserve(nstates);
  for (std::size_t s = 0; s < nstates; ++s) {
    std::vector<bool> init(m);
    for (std::size_t i = 0; i < m; ++i) init[i] = ((s >> i) & 1) != 0;
    Sim2 sim(nl, fault);
    out.push_back(sim.run(init, seq2));
  }
  return out;
}

/// Definition 2 (SOT): detectable iff there are t, i, b with
/// o_i(p,t) = b for every fault-free initial state p and
/// o_i^f(q,t) = !b for every faulty initial state q.
inline bool ref_sot_detectable(const Netlist& nl, const Fault& fault,
                               const TestSequence& sequence) {
  const auto good = all_responses(nl, std::nullopt, sequence);
  const auto bad = all_responses(nl, fault, sequence);
  for (std::size_t t = 0; t < sequence.size(); ++t) {
    for (std::size_t i = 0; i < nl.output_count(); ++i) {
      bool good_const = true, bad_const = true;
      const bool g0 = good[0][t][i];
      const bool b0 = bad[0][t][i];
      for (const auto& r : good) good_const &= (r[t][i] == g0);
      for (const auto& r : bad) bad_const &= (r[t][i] == b0);
      if (good_const && bad_const && g0 != b0) return true;
    }
  }
  return false;
}

/// Definition 3 (MOT): detectable iff for every pair of initial states
/// (p, q) the output sequences differ somewhere.
inline bool ref_mot_detectable(const Netlist& nl, const Fault& fault,
                               const TestSequence& sequence) {
  const auto good = all_responses(nl, std::nullopt, sequence);
  const auto bad = all_responses(nl, fault, sequence);
  for (const auto& gp : good) {
    for (const auto& bq : bad) {
      if (gp == bq) return false;  // an indistinguishable pair exists
    }
  }
  return true;
}

/// Restricted MOT: let W be the (t, i) points where the fault-free
/// output is the same value b for every initial state; detectable iff
/// every faulty initial state mismatches some point of W.
inline bool ref_rmot_detectable(const Netlist& nl, const Fault& fault,
                                const TestSequence& sequence) {
  const auto good = all_responses(nl, std::nullopt, sequence);
  const auto bad = all_responses(nl, fault, sequence);

  struct WellDefined {
    std::size_t t, i;
    bool b;
  };
  std::vector<WellDefined> w;
  for (std::size_t t = 0; t < sequence.size(); ++t) {
    for (std::size_t i = 0; i < nl.output_count(); ++i) {
      bool is_const = true;
      const bool g0 = good[0][t][i];
      for (const auto& r : good) is_const &= (r[t][i] == g0);
      if (is_const) w.push_back({t, i, g0});
    }
  }

  for (const auto& bq : bad) {
    bool mismatch = false;
    for (const auto& point : w) {
      if (bq[point.t][point.i] != point.b) {
        mismatch = true;
        break;
      }
    }
    if (!mismatch) return false;  // this faulty start mimics the spec
  }
  return true;
}

/// Small random circuit for property tests (<= a handful of
/// flip-flops so exhaustive enumeration stays cheap).
inline Netlist small_random_circuit(std::uint64_t seed) {
  SynthSpec spec;
  spec.name = "prop" + std::to_string(seed);
  spec.inputs = 2 + seed % 3;
  spec.outputs = 1 + seed % 3;
  spec.dffs = 2 + seed % 4;        // at most 5 -> <= 32 initial states
  spec.target_gates = 18 + (seed % 5) * 6;
  spec.style = static_cast<CircuitStyle>(seed % 4);
  spec.seed = seed * 0x9E3779B9ull + 1;
  return generate_circuit(spec);
}

}  // namespace motsim::testing

#endif  // MOTSIM_TESTS_REFERENCE_H
