// Netlist transforms (reset insertion, dot export) and fault sampling.

#include <gtest/gtest.h>

#include <set>

#include "bench_data/registry.h"
#include "bench_data/s27.h"
#include "circuit/transform.h"
#include "circuit/validate.h"
#include "core/symbolic_fsm.h"
#include "faults/collapse.h"
#include "faults/sampling.h"
#include "sim3/fault_sim3.h"
#include "sim3/good_sim3.h"
#include "sim3/sim2.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace motsim {
namespace {

TEST(ResetTransform, StructureIsValid) {
  const Netlist nl = make_s27();
  const Netlist rst = with_synchronous_reset(nl);
  EXPECT_EQ(rst.input_count(), nl.input_count() + 1);
  EXPECT_EQ(rst.output_count(), nl.output_count());
  EXPECT_EQ(rst.dff_count(), nl.dff_count());
  // One NOT plus one AND per flip-flop.
  EXPECT_EQ(rst.gate_count(), nl.gate_count() + 1 + nl.dff_count());
  EXPECT_TRUE(validate(rst).clean());
  EXPECT_NE(rst.find("reset"), kNoNode);
}

TEST(ResetTransform, AssertingResetClearsTheState) {
  const Netlist nl = make_s27();
  const Netlist rst = with_synchronous_reset(nl);
  GoodSim3 sim(rst);  // all-X start
  std::vector<Val3> vec(rst.input_count(), Val3::One);  // reset is last
  sim.step(vec);
  for (Val3 v : sim.state()) EXPECT_EQ(v, Val3::Zero);
}

TEST(ResetTransform, DeassertedResetPreservesBehaviour) {
  // With reset = 0 the machine behaves exactly like the original, for
  // every initial state.
  const Netlist nl = make_s27();
  const Netlist rst = with_synchronous_reset(nl);
  Rng rng(3);
  const TestSequence seq = random_sequence(nl, 12, rng);
  const auto seq2 = to_bool_sequence(seq);

  for (std::size_t s = 0; s < 8; ++s) {
    std::vector<bool> init{(s & 1) != 0, (s & 2) != 0, (s & 4) != 0};
    Sim2 a(nl);
    a.set_state(init);
    Sim2 b(rst);
    b.set_state(init);
    for (const auto& vec : seq2) {
      std::vector<bool> vec_rst = vec;
      vec_rst.push_back(false);  // reset low
      EXPECT_EQ(a.step(vec), b.step(vec_rst));
    }
  }
}

TEST(ResetTransform, MakesTheCounterSynchronizable) {
  // The headline effect: the counter has no synchronizing sequence;
  // with the reset it synchronizes in one vector.
  const Netlist nl = make_benchmark("s208.1");
  const Netlist rst = with_synchronous_reset(nl);

  bdd::BddManager mgr;
  const SymbolicFsm fsm(rst, mgr, StateVars(rst.dff_count()));
  const SyncSearchResult r = find_synchronizing_sequence(fsm, 4, 256);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.sequence.size(), 1u);
}

TEST(ResetTransform, RecoversThreeValuedCoverageOnCounter) {
  const Netlist nl = make_benchmark("s208.1");
  const Netlist rst = with_synchronous_reset(nl);
  const CollapsedFaultList orig_faults(nl);
  const CollapsedFaultList rst_faults(rst);
  Rng rng(7);
  const TestSequence seq = random_sequence(nl, 60, rng);

  FaultSim3 plain(nl, orig_faults.faults());
  const auto r_plain = plain.run(seq);

  TestSequence rst_seq;
  for (std::size_t t = 0; t < seq.size(); ++t) {
    std::vector<Val3> vec = seq[t];
    vec.push_back(t == 0 ? Val3::One : Val3::Zero);
    rst_seq.push_back(std::move(vec));
  }
  FaultSim3 with_rst(rst, rst_faults.faults());
  const auto r_rst = with_rst.run(rst_seq);

  EXPECT_LT(r_plain.detected_count, 5u);
  EXPECT_GT(r_rst.detected_count, rst_faults.size() / 3);
}

TEST(ResetTransform, RejectsNameCollisionsAndUnfinalized) {
  const Netlist nl = make_s27();
  EXPECT_THROW((void)with_synchronous_reset(nl, "G0"),
               std::invalid_argument);
  Netlist raw("raw");
  (void)raw.add_input("a");
  EXPECT_THROW((void)with_synchronous_reset(raw), std::logic_error);
}

TEST(NetlistDot, ContainsAllNodes) {
  const Netlist nl = make_s27();
  const std::string dot = netlist_to_dot(nl);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (NodeIndex n = 0; n < nl.node_count(); ++n) {
    EXPECT_NE(dot.find(nl.gate(n).name), std::string::npos);
  }
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);  // PO marking
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);   // DFF edge
}

// ---------------------------------------------------------------------------
// Fault sampling
// ---------------------------------------------------------------------------

TEST(FaultSampling, SampleSizeAndUniqueness) {
  const Netlist nl = make_benchmark("s298");
  const CollapsedFaultList c(nl);
  const auto sample = sample_faults(c.faults(), 50, 1);
  EXPECT_EQ(sample.size(), 50u);
  std::set<std::pair<std::uint64_t, bool>> seen;
  for (const Fault& f : sample) {
    seen.insert({(static_cast<std::uint64_t>(f.site.node) << 32) |
                     f.site.pin,
                 f.stuck_value});
  }
  EXPECT_EQ(seen.size(), 50u);  // no duplicates
}

TEST(FaultSampling, OversizedSampleReturnsAll) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  const auto sample = sample_faults(c.faults(), 10000, 1);
  EXPECT_EQ(sample.size(), c.size());
}

TEST(FaultSampling, DeterministicPerSeed) {
  const Netlist nl = make_benchmark("s298");
  const CollapsedFaultList c(nl);
  EXPECT_EQ(sample_faults(c.faults(), 40, 7),
            sample_faults(c.faults(), 40, 7));
  EXPECT_NE(sample_faults(c.faults(), 40, 7),
            sample_faults(c.faults(), 40, 8));
}

TEST(FaultSampling, EstimateIsCloseToTruth) {
  // Coverage estimated from a sample must sit within the reported
  // confidence interval of the full-run coverage (statistically; the
  // fixed seed makes this deterministic).
  const Netlist nl = make_benchmark("s344");
  const CollapsedFaultList c(nl);
  Rng rng(5);
  const TestSequence seq = random_sequence(nl, 40, rng);

  FaultSim3 full(nl, c.faults());
  const auto r_full = full.run(seq);
  const double truth = static_cast<double>(r_full.detected_count) /
                       static_cast<double>(c.size());

  const auto sample = sample_faults(c.faults(), 120, 3);
  FaultSim3 sim(nl, sample);
  const auto r_sample = sim.run(seq);
  const double estimate = static_cast<double>(r_sample.detected_count) /
                          static_cast<double>(sample.size());
  const double err = sampling_error(estimate, sample.size(), c.size());
  EXPECT_NEAR(estimate, truth, err + 0.02);
}

TEST(FaultSampling, ErrorFormulaSanity) {
  EXPECT_DOUBLE_EQ(sampling_error(0.5, 100, 100), 0.0);
  EXPECT_GT(sampling_error(0.5, 100, 100000), 0.09);
  EXPECT_LT(sampling_error(0.5, 1000, 100000), 0.035);
  EXPECT_LT(sampling_error(0.99, 1000, 100000),
            sampling_error(0.5, 1000, 100000));
  EXPECT_EQ(sampling_error(0.5, 0, 10), 1.0);
}

}  // namespace
}  // namespace motsim
