// The fault-sharded parallel symbolic driver (core/parallel_sym_sim)
// and its supporting ThreadPool: determinism across thread counts
// (including runs that force three-valued fallback windows), agreement
// with the serial engine, merge bookkeeping, and the serialized
// progress callbacks.
//
// tools/run_tsan.sh runs exactly this binary (plus test_options) under
// ThreadSanitizer; keep every test here TSan-clean.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>

#include "bench_data/registry.h"
#include "bench_data/s27.h"
#include "core/hybrid_sim.h"
#include "core/parallel_sym_sim.h"
#include "core/pipeline.h"
#include "faults/collapse.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace motsim {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.wait_idle();  // idle pool: returns immediately
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, ZeroThreadsPromotedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran.store(true); });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // ~ThreadPool joins after the queue drains
  EXPECT_EQ(counter.load(), 20);
}

// ---------------------------------------------------------------------------
// ParallelSymSim
// ---------------------------------------------------------------------------

HybridResult run_sharded(const Netlist& nl, const std::vector<Fault>& faults,
                         const TestSequence& seq, std::size_t threads,
                         std::size_t node_limit = 30000,
                         std::size_t chunk_size = 0,
                         ProgressSink* sink = nullptr) {
  ParallelSymConfig cfg;
  cfg.hybrid.strategy = Strategy::Mot;
  cfg.hybrid.node_limit = node_limit;
  cfg.threads = threads;
  cfg.chunk_size = chunk_size;
  ParallelSymSim sim(nl, faults, cfg);
  if (sink != nullptr) sim.set_progress(sink);
  return sim.run(seq);
}

TEST(ParallelSymSim, MatchesSerialEngineWithoutFallback) {
  const Netlist nl = make_benchmark("s298");
  const CollapsedFaultList faults(nl);
  Rng rng(7);
  const TestSequence seq = random_sequence(nl, 40, rng);

  HybridConfig hc;
  hc.strategy = Strategy::Mot;
  HybridFaultSim serial(nl, faults.faults(), hc);
  const HybridResult rs = serial.run(seq);
  ASSERT_FALSE(rs.used_fallback) << "raise node_limit: this test needs a "
                                    "fallback-free serial baseline";

  const HybridResult rp = run_sharded(nl, faults.faults(), seq, 4);
  EXPECT_FALSE(rp.used_fallback);
  EXPECT_EQ(rp.status, rs.status);
  EXPECT_EQ(rp.detect_frame, rs.detect_frame);
  EXPECT_EQ(rp.detected_count, rs.detected_count);
}

TEST(ParallelSymSim, BitIdenticalAcrossThreadCounts) {
  // s27 plus three synthetic roster circuits, per the determinism
  // contract: thread count must never influence any per-fault result.
  for (const char* name : {"s27", "s208.1", "s298", "s344"}) {
    const Netlist nl = make_benchmark(name);
    const CollapsedFaultList faults(nl);
    Rng rng(13);
    const TestSequence seq = random_sequence(nl, 32, rng);

    const HybridResult r1 = run_sharded(nl, faults.faults(), seq, 1);
    for (std::size_t threads : {2u, 4u, 8u}) {
      const HybridResult rn = run_sharded(nl, faults.faults(), seq, threads);
      EXPECT_EQ(rn.status, r1.status) << name << " @" << threads;
      EXPECT_EQ(rn.detect_frame, r1.detect_frame) << name << " @" << threads;
      EXPECT_EQ(rn.detected_count, r1.detected_count);
      EXPECT_EQ(rn.fallback_windows, r1.fallback_windows);
      EXPECT_EQ(rn.symbolic_frames, r1.symbolic_frames);
      EXPECT_EQ(rn.three_valued_frames, r1.three_valued_frames);
      EXPECT_EQ(rn.used_fallback, r1.used_fallback);
    }
  }
}

TEST(ParallelSymSim, BitIdenticalAcrossThreadCountsUnderForcedFallback) {
  // A tiny node limit forces three-valued windows in (nearly) every
  // shard; the window schedule is per shard and the partition is
  // thread-count-independent, so results must still match exactly.
  const Netlist nl = make_benchmark("s298");
  const CollapsedFaultList faults(nl);
  Rng rng(17);
  const TestSequence seq = random_sequence(nl, 48, rng);

  const HybridResult r1 =
      run_sharded(nl, faults.faults(), seq, 1, /*node_limit=*/150);
  ASSERT_TRUE(r1.used_fallback) << "node_limit=150 was expected to force "
                                   "fallback windows";
  for (std::size_t threads : {2u, 4u, 8u}) {
    const HybridResult rn =
        run_sharded(nl, faults.faults(), seq, threads, /*node_limit=*/150);
    EXPECT_EQ(rn.status, r1.status) << "@" << threads;
    EXPECT_EQ(rn.detect_frame, r1.detect_frame) << "@" << threads;
    EXPECT_EQ(rn.fallback_windows, r1.fallback_windows) << "@" << threads;
    EXPECT_EQ(rn.symbolic_frames, r1.symbolic_frames) << "@" << threads;
    EXPECT_EQ(rn.three_valued_frames, r1.three_valued_frames)
        << "@" << threads;
  }
}

TEST(ParallelSymSim, ChunkSizeIrrelevantWithoutFallback) {
  // Without memory pressure a fault's outcome is independent of its
  // shard-mates, so the partition granularity cannot matter either.
  const Netlist nl = make_benchmark("s344");
  const CollapsedFaultList faults(nl);
  Rng rng(19);
  const TestSequence seq = random_sequence(nl, 32, rng);

  // Generous limit: the test's premise is that no shard falls back.
  const HybridResult a =
      run_sharded(nl, faults.faults(), seq, 4, 1'000'000, /*chunk_size=*/16);
  const HybridResult b =
      run_sharded(nl, faults.faults(), seq, 4, 1'000'000, /*chunk_size=*/64);
  ASSERT_FALSE(a.used_fallback);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.detect_frame, b.detect_frame);
}

TEST(ParallelSymSim, RespectsInitialStatusAndMergesCounters) {
  const Netlist nl = make_benchmark("s208.1");
  const CollapsedFaultList faults(nl);
  Rng rng(23);
  const TestSequence seq = random_sequence(nl, 24, rng);

  // Pre-classify every second fault; the driver must leave those
  // untouched and simulate only the rest.
  std::vector<FaultStatus> initial(faults.size(), FaultStatus::Undetected);
  for (std::size_t i = 0; i < initial.size(); i += 2) {
    initial[i] = FaultStatus::DetectedSim3;
  }

  ParallelSymConfig cfg;
  cfg.hybrid.strategy = Strategy::Mot;
  cfg.threads = 4;
  cfg.chunk_size = 8;
  ParallelSymSim sim(nl, faults.faults(), cfg);
  sim.set_initial_status(initial);
  const HybridResult r = sim.run(seq);

  std::size_t newly_detected = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (initial[i] == FaultStatus::DetectedSim3) {
      EXPECT_EQ(r.status[i], FaultStatus::DetectedSim3);
      EXPECT_EQ(r.detect_frame[i], 0u);
    } else if (is_detected(r.status[i])) {
      ++newly_detected;
      EXPECT_GT(r.detect_frame[i], 0u);
      EXPECT_LE(r.detect_frame[i], seq.size());
    }
  }
  EXPECT_EQ(r.detected_count, newly_detected);
  EXPECT_GT(r.peak_live_nodes, 0u);
  // Every live shard walks the whole sequence symbolically (or drops
  // all faults early); summed frame counters reflect the shard count.
  EXPECT_GE(r.symbolic_frames + r.three_valued_frames, seq.size());
}

TEST(ParallelSymSim, AllFaultsPreclassifiedIsANoop) {
  const Netlist nl = make_s27();
  const CollapsedFaultList faults(nl);
  std::vector<FaultStatus> initial(faults.size(), FaultStatus::DetectedSim3);
  ParallelSymConfig cfg;
  cfg.threads = 4;
  ParallelSymSim sim(nl, faults.faults(), cfg);
  sim.set_initial_status(initial);
  const HybridResult r = sim.run(sequence_from_strings({"0000", "1111"}));
  EXPECT_EQ(r.status, initial);
  EXPECT_EQ(r.detected_count, 0u);
  EXPECT_EQ(r.symbolic_frames, 0u);
}

TEST(ParallelSymSim, RejectsBadConfigAndWrongStatusSize) {
  const Netlist nl = make_s27();
  const CollapsedFaultList faults(nl);
  ParallelSymConfig bad;
  bad.hybrid.node_limit = 0;
  EXPECT_THROW(ParallelSymSim(nl, faults.faults(), bad),
               std::invalid_argument);

  ParallelSymSim sim(nl, faults.faults(), {});
  EXPECT_THROW(sim.set_initial_status({FaultStatus::Undetected}),
               std::invalid_argument);
}

// Collects every callback; ParallelSymSim serializes them, so plain
// members suffice.
class RecordingSink final : public ProgressSink {
 public:
  void on_frame(std::size_t frame, std::size_t, std::size_t) override {
    ++frames;
    last_frame = std::max(last_frame, frame);
  }
  void on_fallback_window(std::size_t, std::size_t) override { ++windows; }
  void on_fault_detected(std::size_t fault_index, std::uint32_t frame) override {
    detected.insert(fault_index);
    EXPECT_GT(frame, 0u);
  }

  std::size_t frames = 0;
  std::size_t last_frame = 0;
  std::size_t windows = 0;
  std::set<std::size_t> detected;
};

TEST(ParallelSymSim, ProgressCallbacksUseGlobalFaultIndices) {
  const Netlist nl = make_benchmark("s298");
  const CollapsedFaultList faults(nl);
  Rng rng(29);
  const TestSequence seq = random_sequence(nl, 32, rng);

  RecordingSink sink;
  const HybridResult r = run_sharded(nl, faults.faults(), seq, 4, 30000,
                                     /*chunk_size=*/16, &sink);

  // One on_fault_detected per detected fault, reported with the
  // caller's (global) index.
  EXPECT_EQ(sink.detected.size(), r.detected_count);
  for (std::size_t g : sink.detected) {
    ASSERT_LT(g, faults.size());
    EXPECT_TRUE(is_detected(r.status[g]));
  }
  // Each shard reports its frames; at least one full pass happened and
  // nobody reported beyond the sequence end.
  EXPECT_GE(sink.frames, 1u);
  EXPECT_LE(sink.last_frame, seq.size());
  EXPECT_EQ(sink.windows, r.fallback_windows);
}

// ---------------------------------------------------------------------------
// run_pipeline threads knob
// ---------------------------------------------------------------------------

TEST(PipelineThreads, ShardedStageMatchesSerialOnRegistryCircuits) {
  for (const char* name : {"s27", "s208.1", "s344"}) {
    const Netlist nl = make_benchmark(name);
    const CollapsedFaultList faults(nl);
    Rng rng(31);
    const TestSequence seq = random_sequence(nl, 40, rng);

    PipelineConfig serial;
    serial.hybrid.strategy = Strategy::Mot;
    const PipelineResult r1 = run_pipeline(nl, faults.faults(), seq, serial);
    ASSERT_FALSE(r1.used_fallback) << name;

    for (std::size_t threads : {2u, 4u, 8u}) {
      PipelineConfig sharded = serial;
      sharded.threads = threads;
      const PipelineResult rn =
          run_pipeline(nl, faults.faults(), seq, sharded);
      EXPECT_EQ(rn.status, r1.status) << name << " @" << threads;
      EXPECT_EQ(rn.detect_frame, r1.detect_frame) << name << " @" << threads;
      EXPECT_EQ(rn.detected_symbolic, r1.detected_symbolic);
    }
  }
}

TEST(PipelineThreads, ThreadsZeroUsesHardwareDefault) {
  const Netlist nl = make_s27();
  const CollapsedFaultList faults(nl);
  Rng rng(37);
  const TestSequence seq = random_sequence(nl, 24, rng);

  PipelineConfig serial;
  PipelineConfig all_cores;
  all_cores.threads = 0;
  const PipelineResult r1 = run_pipeline(nl, faults.faults(), seq, serial);
  const PipelineResult r0 = run_pipeline(nl, faults.faults(), seq, all_cores);
  EXPECT_EQ(r0.status, r1.status);
  EXPECT_EQ(r0.detect_frame, r1.detect_frame);
}

}  // namespace
}  // namespace motsim
