// The end-user pipeline API (core/pipeline.h) and the coverage report.

#include <gtest/gtest.h>

#include "bench_data/registry.h"
#include "bench_data/s27.h"
#include "core/pipeline.h"
#include "faults/collapse.h"
#include "faults/report.h"
#include "sim3/fault_sim3.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace motsim {
namespace {

TEST(Pipeline, StagesComposeOnS27) {
  const Netlist nl = make_s27();
  const CollapsedFaultList faults(nl);
  Rng rng(1);
  const TestSequence seq = random_sequence(nl, 64, rng);

  const PipelineResult r = run_pipeline(nl, faults.faults(), seq);
  EXPECT_EQ(r.status.size(), faults.size());
  EXPECT_GT(r.detected_3v, 0u);
  const CoverageSummary s = r.summary();
  EXPECT_EQ(s.total, faults.size());
  EXPECT_EQ(s.detected_3v, r.detected_3v);
  EXPECT_EQ(s.detected_total(), r.detected_3v + r.detected_symbolic);
  EXPECT_GT(s.coverage(), 0.5);
  EXPECT_LE(s.coverage(), 1.0);
}

TEST(Pipeline, ParallelAndSerialAgree) {
  const Netlist nl = make_benchmark("s344");
  const CollapsedFaultList faults(nl);
  Rng rng(2);
  const TestSequence seq = random_sequence(nl, 50, rng);

  PipelineConfig serial_cfg;
  serial_cfg.run_symbolic = false;
  serial_cfg.sim3_backend = Sim3Backend::Event;
  PipelineConfig parallel_cfg = serial_cfg;
  parallel_cfg.sim3_backend = Sim3Backend::BitPar;

  const PipelineResult rs = run_pipeline(nl, faults.faults(), seq, serial_cfg);
  const PipelineResult rp =
      run_pipeline(nl, faults.faults(), seq, parallel_cfg);
  EXPECT_EQ(rs.status, rp.status);
  EXPECT_EQ(rs.detected_3v, rp.detected_3v);
}

TEST(Pipeline, NoXredStillDetectsTheSameFaults) {
  const Netlist nl = make_benchmark("s298");
  const CollapsedFaultList faults(nl);
  Rng rng(3);
  const TestSequence seq = random_sequence(nl, 50, rng);

  PipelineConfig with;
  with.run_symbolic = false;
  PipelineConfig without = with;
  without.run_xred = false;

  const PipelineResult ra = run_pipeline(nl, faults.faults(), seq, with);
  const PipelineResult rb = run_pipeline(nl, faults.faults(), seq, without);
  EXPECT_EQ(ra.detected_3v, rb.detected_3v);
  EXPECT_EQ(rb.x_redundant, 0u);
}

TEST(Pipeline, SymbolicStageAddsOnCounter) {
  const Netlist nl = make_benchmark("s208.1");
  const CollapsedFaultList faults(nl);
  Rng rng(4);
  const TestSequence seq = random_sequence(nl, 80, rng);

  PipelineConfig cfg;
  cfg.hybrid.strategy = Strategy::Mot;
  const PipelineResult r = run_pipeline(nl, faults.faults(), seq, cfg);
  EXPECT_GT(r.detected_symbolic, 0u);
  // Symbolic detections show up with the MOT status in the merged
  // vector.
  const CoverageSummary s = r.summary();
  EXPECT_EQ(s.detected_mot, r.detected_symbolic);
}

TEST(Pipeline, StrategyMonotonicity) {
  const Netlist nl = make_benchmark("s510");
  const CollapsedFaultList faults(nl);
  Rng rng(5);
  const TestSequence seq = random_sequence(nl, 60, rng);

  std::size_t detected[3];
  int k = 0;
  for (Strategy st : {Strategy::Sot, Strategy::Rmot, Strategy::Mot}) {
    PipelineConfig cfg;
    cfg.hybrid.strategy = st;
    detected[k++] =
        run_pipeline(nl, faults.faults(), seq, cfg).summary().detected_total();
  }
  EXPECT_LE(detected[0], detected[1]);
  EXPECT_LE(detected[1], detected[2]);
}

TEST(Pipeline, XInputsSkipTheSymbolicStageGracefully) {
  const Netlist nl = make_s27();
  const CollapsedFaultList faults(nl);
  TestSequence seq = sequence_from_strings({"1X10", "0101", "X111"});
  const PipelineResult r = run_pipeline(nl, faults.faults(), seq);
  EXPECT_TRUE(r.symbolic_skipped_x_inputs);
  EXPECT_EQ(r.detected_symbolic, 0u);
  EXPECT_GT(r.detected_3v + r.summary().undetected + r.x_redundant, 0u);
}

// ---------------------------------------------------------------------------
// PipelineResult::detect_frame
// ---------------------------------------------------------------------------

TEST(Pipeline, DetectFrameCoversEveryDetectedFault) {
  const Netlist nl = make_benchmark("s298");
  const CollapsedFaultList faults(nl);
  Rng rng(6);
  const TestSequence seq = random_sequence(nl, 50, rng);

  PipelineConfig cfg;
  cfg.hybrid.strategy = Strategy::Mot;
  const PipelineResult r = run_pipeline(nl, faults.faults(), seq, cfg);
  ASSERT_EQ(r.detect_frame.size(), faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (is_detected(r.status[i])) {
      EXPECT_GT(r.detect_frame[i], 0u) << "fault " << i;
      EXPECT_LE(r.detect_frame[i], seq.size()) << "fault " << i;
    } else {
      EXPECT_EQ(r.detect_frame[i], 0u) << "fault " << i;
    }
  }
}

TEST(Pipeline, DetectFrameMatchesDirectThreeValuedRun) {
  // With the symbolic stage off, the pipeline's frames are exactly the
  // X01 stage's frames.
  const Netlist nl = make_benchmark("s344");
  const CollapsedFaultList faults(nl);
  Rng rng(7);
  const TestSequence seq = random_sequence(nl, 40, rng);

  PipelineConfig cfg;
  cfg.run_xred = false;
  cfg.run_symbolic = false;
  const PipelineResult r = run_pipeline(nl, faults.faults(), seq, cfg);

  FaultSim3 direct(nl, faults.faults());
  const FaultSim3Result d = direct.run(seq);
  EXPECT_EQ(r.detect_frame, d.detect_frame);
}

TEST(Pipeline, DetectFrameIsThreadCountInvariant) {
  const Netlist nl = make_benchmark("s208.1");
  const CollapsedFaultList faults(nl);
  Rng rng(8);
  const TestSequence seq = random_sequence(nl, 60, rng);

  PipelineConfig serial;
  serial.hybrid.strategy = Strategy::Mot;
  PipelineConfig sharded = serial;
  sharded.threads = 4;
  const PipelineResult r1 = run_pipeline(nl, faults.faults(), seq, serial);
  const PipelineResult r4 = run_pipeline(nl, faults.faults(), seq, sharded);
  EXPECT_EQ(r1.status, r4.status);
  EXPECT_EQ(r1.detect_frame, r4.detect_frame);
}

// ---------------------------------------------------------------------------
// CoverageSummary
// ---------------------------------------------------------------------------

TEST(CoverageSummary, CountsEveryClass) {
  const std::vector<FaultStatus> status{
      FaultStatus::Undetected,   FaultStatus::XRedundant,
      FaultStatus::DetectedSim3, FaultStatus::DetectedSim3,
      FaultStatus::DetectedSot,  FaultStatus::DetectedRmot,
      FaultStatus::DetectedMot};
  const CoverageSummary s = CoverageSummary::from_status(status);
  EXPECT_EQ(s.total, 7u);
  EXPECT_EQ(s.undetected, 1u);
  EXPECT_EQ(s.x_redundant, 1u);
  EXPECT_EQ(s.detected_3v, 2u);
  EXPECT_EQ(s.detected_sot, 1u);
  EXPECT_EQ(s.detected_rmot, 1u);
  EXPECT_EQ(s.detected_mot, 1u);
  EXPECT_EQ(s.detected_total(), 5u);
  EXPECT_NEAR(s.coverage(), 5.0 / 7.0, 1e-12);
}

TEST(CoverageSummary, EmptyIsZero) {
  const CoverageSummary s = CoverageSummary::from_status({});
  EXPECT_EQ(s.total, 0u);
  EXPECT_EQ(s.coverage(), 0.0);
}

TEST(CoverageSummary, ToStringMentionsCoverage) {
  CoverageSummary s;
  s.total = 4;
  s.detected_3v = 2;
  s.undetected = 2;
  const std::string text = s.to_string();
  EXPECT_NE(text.find("50.00%"), std::string::npos);
  EXPECT_NE(text.find("X01"), std::string::npos);
}

TEST(CoverageSummary, JsonIsWellFormedAndConsistent) {
  CoverageSummary s;
  s.total = 10;
  s.detected_3v = 4;
  s.detected_mot = 2;
  s.x_redundant = 1;
  s.undetected = 3;
  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"total\":10"), std::string::npos);
  EXPECT_NE(json.find("\"detected_3v\":4"), std::string::npos);
  EXPECT_NE(json.find("\"detected_mot\":2"), std::string::npos);
  EXPECT_NE(json.find("\"coverage\":0.6"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(FaultsWithStatus, FiltersAndFormats) {
  const Netlist nl = make_s27();
  const CollapsedFaultList faults(nl);
  std::vector<FaultStatus> status(faults.size(), FaultStatus::Undetected);
  status[0] = FaultStatus::DetectedSim3;
  const auto undetected = faults_with_status(
      nl, faults.faults(), status, FaultStatus::Undetected);
  EXPECT_EQ(undetected.size(), faults.size() - 1);
  const auto detected = faults_with_status(nl, faults.faults(), status,
                                           FaultStatus::DetectedSim3);
  ASSERT_EQ(detected.size(), 1u);
  EXPECT_EQ(detected[0], fault_name(nl, faults.faults()[0]));
}

}  // namespace
}  // namespace motsim
