// Symbolic test evaluation (paper Section IV.B): the CUT is declared
// faulty iff its response is impossible for EVERY initial state of the
// fault-free machine.

#include <gtest/gtest.h>

#include "bench_data/s27.h"
#include "core/sym_fault_sim.h"
#include "core/test_eval.h"
#include "faults/collapse.h"
#include "reference.h"
#include "sim3/sim2.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace motsim {
namespace {

using testing::ref_mot_detectable;
using testing::small_random_circuit;

class TestEvalProps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TestEvalProps, FaultFreeResponsesAlwaysPass) {
  // Whatever initial state the (fault-free) CUT powered up in, its
  // response must be accepted.
  const Netlist nl = small_random_circuit(GetParam());
  Rng rng(GetParam() * 23 + 1);
  const TestSequence seq = random_sequence(nl, 8, rng);
  const auto seq2 = to_bool_sequence(seq);
  const std::size_t m = nl.dff_count();

  bdd::BddManager mgr;
  const SymbolicResponse response(nl, mgr, seq);
  const TestEvaluator eval(response);

  for (std::size_t s = 0; s < (std::size_t{1} << m); ++s) {
    std::vector<bool> init(m);
    for (std::size_t i = 0; i < m; ++i) init[i] = ((s >> i) & 1) != 0;
    Sim2 cut(nl);
    EXPECT_EQ(eval.evaluate(cut.run(init, seq2)), Verdict::Pass)
        << "fault-free start " << s << " rejected";
  }
}

TEST_P(TestEvalProps, MotDetectedFaultsAlwaysFail) {
  // If a fault is MOT-detectable by the sequence, then the faulty
  // machine's response is impossible for the fault-free machine from
  // EVERY faulty initial state — the evaluator must say Faulty.
  const Netlist nl = small_random_circuit(GetParam());
  if (nl.dff_count() > 5) GTEST_SKIP();
  Rng rng(GetParam() * 29 + 2);
  const TestSequence seq = random_sequence(nl, 6, rng);
  const auto seq2 = to_bool_sequence(seq);
  const std::size_t m = nl.dff_count();
  const CollapsedFaultList c(nl);

  bdd::BddManager mgr;
  const SymbolicResponse response(nl, mgr, seq);
  const TestEvaluator eval(response);

  std::size_t checked = 0;
  for (const Fault& f : c.faults()) {
    if (!ref_mot_detectable(nl, f, seq)) continue;
    if (++checked > 8) break;  // keep the test fast
    for (std::size_t s = 0; s < (std::size_t{1} << m); ++s) {
      std::vector<bool> init(m);
      for (std::size_t i = 0; i < m; ++i) init[i] = ((s >> i) & 1) != 0;
      Sim2 cut(nl, f);
      EXPECT_EQ(eval.evaluate(cut.run(init, seq2)), Verdict::Faulty)
          << fault_name(nl, f) << " from faulty start " << s;
    }
  }
}

TEST_P(TestEvalProps, UndetectedFaultHasAPassingDisguise) {
  // A fault NOT MOT-detectable has, by Definition 3, some faulty
  // initial state whose response matches a fault-free run — the
  // evaluator must accept that response.
  const Netlist nl = small_random_circuit(GetParam());
  if (nl.dff_count() > 5) GTEST_SKIP();
  Rng rng(GetParam() * 31 + 3);
  const TestSequence seq = random_sequence(nl, 6, rng);
  const auto seq2 = to_bool_sequence(seq);
  const std::size_t m = nl.dff_count();
  const CollapsedFaultList c(nl);

  bdd::BddManager mgr;
  const SymbolicResponse response(nl, mgr, seq);
  const TestEvaluator eval(response);

  std::size_t checked = 0;
  for (const Fault& f : c.faults()) {
    if (ref_mot_detectable(nl, f, seq)) continue;
    if (++checked > 8) break;
    bool some_pass = false;
    for (std::size_t s = 0; s < (std::size_t{1} << m) && !some_pass; ++s) {
      std::vector<bool> init(m);
      for (std::size_t i = 0; i < m; ++i) init[i] = ((s >> i) & 1) != 0;
      Sim2 cut(nl, f);
      some_pass = eval.evaluate(cut.run(init, seq2)) == Verdict::Pass;
    }
    EXPECT_TRUE(some_pass) << fault_name(nl, f)
                           << " should have an accepted response";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TestEvalProps,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ---------------------------------------------------------------------------
// Directed behaviour
// ---------------------------------------------------------------------------

TEST(SymbolicResponse, DimensionsAndAccess) {
  const Netlist nl = make_s27();
  Rng rng(4);
  const TestSequence seq = random_sequence(nl, 10, rng);
  bdd::BddManager mgr;
  const SymbolicResponse r(nl, mgr, seq);
  EXPECT_EQ(r.frame_count(), 10u);
  EXPECT_EQ(r.skipped_frames(), 0u);
  EXPECT_EQ(r.output_count(), 1u);
  EXPECT_GT(r.bdd_size() + 1, 0u);  // may be 0 if outputs constant
  (void)r.output(0, 0);
  EXPECT_THROW((void)r.output(10, 0), std::out_of_range);
  EXPECT_THROW((void)r.output(0, 1), std::out_of_range);
}

TEST(SymbolicResponse, PartialEvaluationSkipsLeadingFrames) {
  const Netlist nl = make_s27();
  Rng rng(5);
  const TestSequence seq = random_sequence(nl, 10, rng);
  bdd::BddManager mgr;
  const SymbolicResponse r(nl, mgr, seq, /*skip_frames=*/4);
  EXPECT_EQ(r.frame_count(), 10u);
  EXPECT_EQ(r.skipped_frames(), 4u);
  (void)r.skipped_output(3, 0);
  EXPECT_THROW((void)r.skipped_output(4, 0), std::out_of_range);
  EXPECT_THROW((void)r.output(3, 0), std::out_of_range);
  (void)r.output(4, 0);
}

TEST(SymbolicResponse, PartialEvaluationStillSoundOnFaultFreeRuns) {
  const Netlist nl = make_s27();
  Rng rng(6);
  const TestSequence seq = random_sequence(nl, 12, rng);
  const auto seq2 = to_bool_sequence(seq);
  bdd::BddManager mgr;
  const SymbolicResponse r(nl, mgr, seq, /*skip_frames=*/5);
  const TestEvaluator eval(r);
  for (std::size_t s = 0; s < 8; ++s) {
    std::vector<bool> init{(s & 1) != 0, (s & 2) != 0, (s & 4) != 0};
    Sim2 cut(nl);
    EXPECT_EQ(eval.evaluate(cut.run(init, seq2)), Verdict::Pass);
  }
}

TEST(TestEvaluatorSession, IncrementalFeedIsSticky) {
  // o = NOT(q), q loads input a. Claiming an impossible response must
  // flip the session to Faulty and keep it there.
  Netlist nl("ev");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex q = nl.add_dff(a, "q");
  const NodeIndex o = nl.add_gate(GateType::Not, {q}, "o");
  nl.mark_output(o);
  nl.finalize();

  const TestSequence seq = sequence_from_strings({"1", "0"});
  bdd::BddManager mgr;
  const SymbolicResponse r(nl, mgr, seq);
  TestEvaluator::Session session(r);
  // Frame 1 output is NOT(initial state) — either response is OK.
  EXPECT_EQ(session.feed({true}), Verdict::Pass);
  // Frame 2 output must be NOT(1) = 0; observing 1 is a fault.
  EXPECT_EQ(session.feed({true}), Verdict::Faulty);
  EXPECT_EQ(session.verdict(), Verdict::Faulty);
  EXPECT_TRUE(session.constraint().is_zero());
}

TEST(TestEvaluatorSession, RejectsWrongWidthAndOverfeed) {
  const Netlist nl = make_s27();
  Rng rng(7);
  const TestSequence seq = random_sequence(nl, 2, rng);
  bdd::BddManager mgr;
  const SymbolicResponse r(nl, mgr, seq);
  TestEvaluator::Session session(r);
  EXPECT_THROW((void)session.feed({true, false}), std::invalid_argument);
  (void)session.feed({true});
  (void)session.feed({true});
  EXPECT_THROW((void)session.feed({true}), std::out_of_range);
}

TEST(TestEvaluatorSession, ConstraintNarrowsToConsistentStates) {
  // The accumulated constraint is exactly the set of initial states
  // that could have produced the observed prefix.
  Netlist nl("narrow");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex q = nl.add_dff(a, "q");
  const NodeIndex o = nl.add_gate(GateType::Buf, {q}, "o");
  nl.mark_output(o);
  nl.finalize();

  const TestSequence seq = sequence_from_strings({"1"});
  bdd::BddManager mgr;
  const SymbolicResponse r(nl, mgr, seq);
  TestEvaluator::Session session(r);
  // Observing o=1 at frame 1 pins the initial state to q=1: the
  // constraint must be exactly the projection x_0.
  EXPECT_EQ(session.feed({true}), Verdict::Pass);
  const StateVars vars(1);
  EXPECT_EQ(session.constraint(), mgr.var(vars.x(0)));
}

// ---------------------------------------------------------------------------
// RmotEvaluator: the standard evaluation of Section IV.B
// ---------------------------------------------------------------------------

TEST_P(TestEvalProps, RmotEvaluatorIsWeakerButConsistent) {
  // The standard evaluation only checks the well-defined points, so it
  // (a) accepts everything the full symbolic evaluator accepts, and
  // (b) flags faulty only responses the symbolic evaluator also flags.
  const Netlist nl = small_random_circuit(GetParam() + 7);
  if (nl.dff_count() > 5) GTEST_SKIP();
  Rng rng(GetParam() * 37 + 5);
  const TestSequence seq = random_sequence(nl, 6, rng);
  const auto seq2 = to_bool_sequence(seq);
  const std::size_t m = nl.dff_count();
  const CollapsedFaultList c(nl);

  bdd::BddManager mgr;
  const SymbolicResponse response(nl, mgr, seq);
  const TestEvaluator full(response);
  const RmotEvaluator standard(response);

  std::size_t checked = 0;
  for (const Fault& f : c.faults()) {
    if (++checked > 6) break;
    for (std::size_t s = 0; s < (std::size_t{1} << m); s += 3) {
      std::vector<bool> init(m);
      for (std::size_t i = 0; i < m; ++i) init[i] = ((s >> i) & 1) != 0;
      Sim2 cut(nl, f);
      const auto resp = cut.run(init, seq2);
      const Verdict vf = full.evaluate(resp);
      const Verdict vs = standard.evaluate(resp);
      if (vs == Verdict::Faulty) {
        EXPECT_EQ(vf, Verdict::Faulty)
            << fault_name(nl, f) << " start " << s
            << ": standard evaluation over-claimed";
      }
    }
  }
}

TEST(RmotEvaluator, FaultFreeResponsesPass) {
  const Netlist nl = make_s27();
  Rng rng(8);
  const TestSequence seq = random_sequence(nl, 20, rng);
  const auto seq2 = to_bool_sequence(seq);
  bdd::BddManager mgr;
  const SymbolicResponse r(nl, mgr, seq);
  const RmotEvaluator eval(r);
  for (std::size_t s = 0; s < 8; ++s) {
    std::vector<bool> init{(s & 1) != 0, (s & 2) != 0, (s & 4) != 0};
    Sim2 cut(nl);
    EXPECT_EQ(eval.evaluate(cut.run(init, seq2)), Verdict::Pass);
  }
}

TEST(RmotEvaluator, FlagsMismatchAtWellDefinedPoint) {
  // o = NOT(q) with q loading a: frame 2 output is well-defined.
  Netlist nl("rme");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex q = nl.add_dff(a, "q");
  const NodeIndex o = nl.add_gate(GateType::Not, {q}, "o");
  nl.mark_output(o);
  nl.finalize();

  const TestSequence seq = sequence_from_strings({"1", "0"});
  bdd::BddManager mgr;
  const SymbolicResponse r(nl, mgr, seq);
  const RmotEvaluator eval(r);
  EXPECT_EQ(eval.well_defined_count(), 1u);  // only frame 2
  // Correct response: frame2 o = NOT(1) = 0. Frame-1 value is free.
  EXPECT_EQ(eval.evaluate({{true}, {false}}), Verdict::Pass);
  EXPECT_EQ(eval.evaluate({{false}, {false}}), Verdict::Pass);
  EXPECT_EQ(eval.evaluate({{true}, {true}}), Verdict::Faulty);
}

TEST(RmotEvaluator, WidthChecks) {
  const Netlist nl = make_s27();
  Rng rng(9);
  const TestSequence seq = random_sequence(nl, 3, rng);
  bdd::BddManager mgr;
  const SymbolicResponse r(nl, mgr, seq);
  const RmotEvaluator eval(r);
  EXPECT_THROW((void)eval.evaluate({{true}}), std::invalid_argument);
}

}  // namespace
}  // namespace motsim
