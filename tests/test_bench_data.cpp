// Benchmark substrate: exact s27, the synthetic generator's structural
// guarantees, and the roster's metadata.

#include <gtest/gtest.h>

#include <set>

#include "bench_data/registry.h"
#include "bench_data/s27.h"
#include "bench_data/synth_gen.h"
#include "circuit/validate.h"
#include "faults/collapse.h"
#include "sim3/fault_sim3.h"
#include "sim3/good_sim3.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace motsim {
namespace {

TEST(S27, ExactInterface) {
  const Netlist nl = make_s27();
  EXPECT_EQ(nl.name(), "s27");
  EXPECT_EQ(nl.input_count(), 4u);
  EXPECT_EQ(nl.output_count(), 1u);
  EXPECT_EQ(nl.dff_count(), 3u);
  EXPECT_EQ(nl.gate_count(), 10u);
  EXPECT_TRUE(validate(nl).clean());
}

TEST(S27, KnownStructure) {
  const Netlist nl = make_s27();
  // G17 = NOT(G11) is the single primary output.
  const NodeIndex g17 = nl.find("G17");
  ASSERT_NE(g17, kNoNode);
  EXPECT_TRUE(nl.is_output(g17));
  EXPECT_EQ(nl.gate(g17).type, GateType::Not);
  EXPECT_EQ(nl.gate(g17).fanins[0], nl.find("G11"));
  // The three flip-flops.
  for (const char* name : {"G5", "G6", "G7"}) {
    const NodeIndex n = nl.find(name);
    ASSERT_NE(n, kNoNode);
    EXPECT_EQ(nl.gate(n).type, GateType::Dff);
  }
}

TEST(SynthGen, DeterministicForSameSpec) {
  SynthSpec spec{"det", 5, 3, 6, 60, CircuitStyle::RandomLogic, 99};
  const Netlist a = generate_circuit(spec);
  const Netlist b = generate_circuit(spec);
  EXPECT_EQ(a.node_count(), b.node_count());
  for (NodeIndex n = 0; n < a.node_count(); ++n) {
    EXPECT_EQ(a.gate(n).type, b.gate(n).type);
    EXPECT_EQ(a.gate(n).fanins, b.gate(n).fanins);
  }
}

TEST(SynthGen, DifferentSeedsDiffer) {
  SynthSpec s1{"x", 5, 3, 6, 60, CircuitStyle::RandomLogic, 1};
  SynthSpec s2 = s1;
  s2.seed = 2;
  const Netlist a = generate_circuit(s1);
  const Netlist b = generate_circuit(s2);
  bool same = a.node_count() == b.node_count();
  if (same) {
    for (NodeIndex n = 0; n < a.node_count() && same; ++n) {
      same = a.gate(n).type == b.gate(n).type &&
             a.gate(n).fanins == b.gate(n).fanins;
    }
  }
  EXPECT_FALSE(same);
}

TEST(SynthGen, RejectsDegenerateSpecs) {
  SynthSpec spec;
  spec.inputs = 0;
  EXPECT_THROW((void)generate_circuit(spec), std::invalid_argument);
  spec = SynthSpec{};
  spec.dffs = 0;
  EXPECT_THROW((void)generate_circuit(spec), std::invalid_argument);
}

class SynthGenStyles
    : public ::testing::TestWithParam<std::tuple<CircuitStyle, int>> {};

TEST_P(SynthGenStyles, InterfaceMatchesSpec) {
  const auto [style, seed] = GetParam();
  SynthSpec spec{"st",
                 static_cast<std::size_t>(4 + seed % 4),
                 static_cast<std::size_t>(2 + seed % 3),
                 static_cast<std::size_t>(3 + seed % 5),
                 static_cast<std::size_t>(70 + 10 * (seed % 4)),
                 style,
                 static_cast<std::uint64_t>(seed)};
  const Netlist nl = generate_circuit(spec);
  EXPECT_EQ(nl.input_count(), spec.inputs);
  EXPECT_EQ(nl.output_count(), spec.outputs);
  EXPECT_EQ(nl.dff_count(), spec.dffs);
  EXPECT_TRUE(nl.finalized());
}

TEST_P(SynthGenStyles, NoDeadOrUnobservableLogic) {
  const auto [style, seed] = GetParam();
  SynthSpec spec{"cl", 5, 3, 4, 80, style,
                 static_cast<std::uint64_t>(seed) * 7 + 1};
  const Netlist nl = generate_circuit(spec);
  const ValidationReport report = validate(nl);
  EXPECT_TRUE(report.dangling_nets.empty())
      << to_cstring(style) << ": " << report.messages.front();
  EXPECT_TRUE(report.unobservable_nodes.empty());
  EXPECT_TRUE(report.duplicate_fanin_gates.empty());
}

TEST_P(SynthGenStyles, GateCountNearTarget) {
  const auto [style, seed] = GetParam();
  SynthSpec spec{"gc", 6, 3, 5, 120, style,
                 static_cast<std::uint64_t>(seed) * 13 + 5};
  const Netlist nl = generate_circuit(spec);
  EXPECT_GT(nl.gate_count(), spec.target_gates / 2);
  EXPECT_LT(nl.gate_count(), spec.target_gates * 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllStyles, SynthGenStyles,
    ::testing::Combine(::testing::Values(CircuitStyle::Counter,
                                         CircuitStyle::Controller,
                                         CircuitStyle::RandomLogic,
                                         CircuitStyle::TwinPaths,
                                         CircuitStyle::Pipeline,
                                         CircuitStyle::AcyclicPipeline),
                       ::testing::Values(1, 2, 3)));

TEST(SynthGen, PipelineStyleFlushesStageByStage) {
  // The shift-register style drains its unknown state one stage per
  // frame: under constant binary inputs, flip-flop i must be binary
  // from frame i+1 on (taps only XOR in binary inputs).
  SynthSpec spec{"pipe", 3, 2, 8, 60, CircuitStyle::Pipeline, 5};
  const Netlist nl = generate_circuit(spec);
  GoodSim3 sim(nl);
  const std::vector<Val3> vec(3, Val3::One);
  for (std::size_t t = 0; t < nl.dff_count(); ++t) {
    sim.step(vec);
    for (std::size_t i = 0; i + 1 <= t + 1 && i < nl.dff_count(); ++i) {
      EXPECT_TRUE(is_binary(sim.state()[i]))
          << "stage " << i << " still X after frame " << t + 1;
    }
  }
  // Fully flushed.
  for (Val3 v : sim.state()) EXPECT_TRUE(is_binary(v));
}

TEST(SynthGen, PipelineCoverageRampsWithLength) {
  const Netlist nl = make_benchmark("s1423");
  const CollapsedFaultList c(nl);
  Rng rng(3);
  const TestSequence seq = random_sequence(nl, 120, rng);

  FaultSim3 short_sim(nl, c.faults());
  const auto r30 =
      short_sim.run(TestSequence(seq.begin(), seq.begin() + 30));
  FaultSim3 long_sim(nl, c.faults());
  const auto r120 = long_sim.run(seq);
  EXPECT_GT(r120.detected_count, r30.detected_count)
      << "deep stages need long sequences";
}

TEST(Registry, RosterHasThePaperCircuits) {
  const auto& roster = benchmark_roster();
  EXPECT_EQ(roster.size(), 30u);  // s27 + 29 paper circuits
  std::set<std::string> names;
  for (const auto& info : roster) names.insert(info.spec.name);
  for (const char* expected :
       {"s27", "s208.1", "s298", "s510", "s838.1", "s5378", "s38584.1"}) {
    EXPECT_TRUE(names.count(expected) == 1) << expected;
  }
}

TEST(Registry, FindAndMakeWork) {
  EXPECT_NE(find_benchmark("s298"), nullptr);
  EXPECT_EQ(find_benchmark("s999"), nullptr);
  EXPECT_THROW((void)make_benchmark("s999"), std::invalid_argument);
  const Netlist nl = make_benchmark("s298");
  EXPECT_EQ(nl.name(), "s298");
  EXPECT_EQ(nl.input_count(), 3u);
  EXPECT_EQ(nl.output_count(), 6u);
  EXPECT_EQ(nl.dff_count(), 14u);
}

TEST(Registry, PaperNumbersAreTranscribed) {
  const BenchmarkInfo* s510 = find_benchmark("s510");
  ASSERT_NE(s510, nullptr);
  EXPECT_EQ(s510->t1.faults, 564);
  EXPECT_EQ(s510->t1.xred, 564);
  EXPECT_EQ(s510->t1.fd, 0);
  EXPECT_TRUE(s510->in_table2);
  EXPECT_EQ(s510->t2.sot, 395);
  EXPECT_EQ(s510->t2.rmot, 477);
  EXPECT_EQ(s510->t2.mot, 531);
  EXPECT_TRUE(s510->in_table4);
  EXPECT_EQ(s510->t4.po, 7);

  const BenchmarkInfo* s838 = find_benchmark("s838.1");
  ASSERT_NE(s838, nullptr);
  EXPECT_TRUE(s838->t2.mot_star);  // the paper's hybrid fell back
  EXPECT_EQ(s838->t2.rmot, 12);
  EXPECT_EQ(s838->t2.mot, 11);  // the famous rMOT > MOT anomaly
  EXPECT_FALSE(s838->in_table3);
}

TEST(Registry, EveryRosterEntryGenerates) {
  // Instantiate every circuit up to medium size and lint it; the
  // giants are generated too but only size-checked (cheap).
  for (const auto& info : benchmark_roster()) {
    if (info.spec.target_gates > 3000) continue;
    const Netlist nl = make_benchmark(info);
    EXPECT_EQ(nl.input_count(), info.spec.inputs) << info.spec.name;
    EXPECT_EQ(nl.dff_count(), info.spec.dffs) << info.spec.name;
    const ValidationReport report = validate(nl);
    EXPECT_TRUE(report.dangling_nets.empty()) << info.spec.name;
    EXPECT_TRUE(report.unobservable_nodes.empty()) << info.spec.name;
    // A usable fault list exists.
    const CollapsedFaultList c(nl);
    EXPECT_GT(c.size(), 10u) << info.spec.name;
  }
}

TEST(Registry, GiantsGenerateAtScale) {
  const Netlist nl = make_benchmark("s38584.1");
  EXPECT_GT(nl.gate_count(), 10000u);
  EXPECT_EQ(nl.dff_count(), 1426u);
  EXPECT_TRUE(validate(nl).dangling_nets.empty());
}

}  // namespace
}  // namespace motsim
