// Dynamic variable reordering: the adjacent exchange, full-order
// imposition and sifting must preserve every handle's function while
// changing only the DAG shape.

#include <gtest/gtest.h>

#include "bdd/bdd.h"
#include "util/rng.h"

namespace motsim::bdd {
namespace {

constexpr unsigned kVars = 6;

bool bit(unsigned a, unsigned v) { return ((a >> v) & 1) != 0; }

Bdd random_function(BddManager& mgr, Rng& rng, int depth) {
  if (depth == 0 || rng.chance(0.3)) {
    return mgr.var(static_cast<unsigned>(rng.below(kVars)));
  }
  const Bdd l = random_function(mgr, rng, depth - 1);
  const Bdd r = random_function(mgr, rng, depth - 1);
  switch (rng.below(4)) {
    case 0:
      return l & r;
    case 1:
      return l | r;
    case 2:
      return l ^ r;
    default:
      return !l;
  }
}

/// Truth table over kVars variables (indexed by variable, not level —
/// eval() walks the structure, so this is order-independent).
std::vector<bool> truth_table(const Bdd& f) {
  std::vector<bool> out;
  for (unsigned a = 0; a < (1u << kVars); ++a) {
    std::vector<bool> asg(kVars);
    for (unsigned v = 0; v < kVars; ++v) asg[v] = bit(a, v);
    out.push_back(f.eval(asg));
  }
  return out;
}

TEST(BddReorder, DefaultOrderIsIdentity) {
  BddManager mgr;
  mgr.ensure_vars(5);
  for (VarIndex v = 0; v < 5; ++v) {
    EXPECT_EQ(mgr.level_of_var(v), v);
    EXPECT_EQ(mgr.var_at_level(v), v);
  }
}

TEST(BddReorder, SwapUpdatesTheMaps) {
  BddManager mgr;
  mgr.ensure_vars(3);
  mgr.swap_adjacent_levels(0);
  EXPECT_EQ(mgr.var_at_level(0), 1u);
  EXPECT_EQ(mgr.var_at_level(1), 0u);
  EXPECT_EQ(mgr.level_of_var(0), 1u);
  EXPECT_EQ(mgr.level_of_var(1), 0u);
  EXPECT_EQ(mgr.level_of_var(2), 2u);
  EXPECT_THROW(mgr.swap_adjacent_levels(2), std::out_of_range);
}

class BddReorderProp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BddReorderProp, SwapPreservesEveryHandleFunction) {
  BddManager mgr;
  Rng rng(GetParam());
  std::vector<Bdd> funcs;
  std::vector<std::vector<bool>> tables;
  for (int i = 0; i < 10; ++i) {
    funcs.push_back(random_function(mgr, rng, 4));
    tables.push_back(truth_table(funcs.back()));
  }
  mgr.ensure_vars(kVars);
  for (int round = 0; round < 20; ++round) {
    mgr.swap_adjacent_levels(
        static_cast<VarIndex>(rng.below(kVars - 1)));
    if (round % 5 == 0) mgr.gc();
    for (std::size_t i = 0; i < funcs.size(); ++i) {
      EXPECT_EQ(truth_table(funcs[i]), tables[i])
          << "function " << i << " changed after round " << round;
    }
  }
}

TEST_P(BddReorderProp, OperationsStayCorrectAfterReorder) {
  // The computed cache survives reordering because ids keep denoting
  // the same functions; ops run after a swap must still be exact.
  BddManager mgr;
  Rng rng(GetParam() ^ 0xAA);
  const Bdd f = random_function(mgr, rng, 4);
  const Bdd g = random_function(mgr, rng, 4);
  const auto tf = truth_table(f);
  const auto tg = truth_table(g);
  (void)(f & g);  // warm the cache
  mgr.ensure_vars(kVars);
  mgr.swap_adjacent_levels(1);
  mgr.swap_adjacent_levels(3);

  const Bdd conj = f & g;
  const Bdd x = f ^ g;
  const auto tc = truth_table(conj);
  const auto tx = truth_table(x);
  for (unsigned a = 0; a < (1u << kVars); ++a) {
    EXPECT_EQ(tc[a], tf[a] && tg[a]);
    EXPECT_EQ(tx[a], tf[a] != tg[a]);
  }
}

TEST_P(BddReorderProp, SetVariableOrderReversal) {
  BddManager mgr;
  Rng rng(GetParam() ^ 0xBB);
  const Bdd f = random_function(mgr, rng, 4);
  const auto table = truth_table(f);
  mgr.ensure_vars(kVars);

  std::vector<VarIndex> reversed;
  for (VarIndex v = kVars; v-- > 0;) reversed.push_back(v);
  mgr.set_variable_order(reversed);
  for (VarIndex l = 0; l < kVars; ++l) {
    EXPECT_EQ(mgr.var_at_level(l), kVars - 1 - l);
  }
  EXPECT_EQ(truth_table(f), table);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddReorderProp,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(BddReorder, SetVariableOrderValidation) {
  BddManager mgr;
  mgr.ensure_vars(3);
  EXPECT_THROW(mgr.set_variable_order({0, 1}), std::invalid_argument);
  EXPECT_THROW(mgr.set_variable_order({0, 1, 1}), std::invalid_argument);
  EXPECT_THROW(mgr.set_variable_order({0, 1, 5}), std::invalid_argument);
  mgr.set_variable_order({2, 0, 1});  // fine
}

TEST(BddReorder, OrderSensitiveFunctionSizes) {
  // The classic 2-level function a0&b0 | a1&b1 | a2&b2: linear when
  // the pairs are adjacent in the order, exponential when all a's
  // precede all b's. Variables: a_i = i, b_i = 3 + i.
  BddManager mgr;
  Bdd f = mgr.zero();
  for (unsigned i = 0; i < 3; ++i) {
    f |= mgr.var(i) & mgr.var(3 + i);
  }
  // Blocked order (the creation order): size 2^(n+1) - 2-ish.
  const std::size_t blocked = f.node_count();

  // Interleave the pairs: a0 b0 a1 b1 a2 b2.
  mgr.set_variable_order({0, 3, 1, 4, 2, 5});
  const std::size_t interleaved = f.node_count();
  EXPECT_LT(interleaved, blocked);
  EXPECT_EQ(interleaved, 6u);  // one node per literal

  // And back.
  mgr.set_variable_order({0, 1, 2, 3, 4, 5});
  EXPECT_EQ(f.node_count(), blocked);
}

TEST(BddReorder, SiftFindsTheGoodOrder) {
  // Sifting from the blocked order must reach (near-)linear size for
  // the pairwise AND-OR function.
  BddManager mgr;
  Bdd f = mgr.zero();
  for (unsigned i = 0; i < 4; ++i) {
    f |= mgr.var(i) & mgr.var(4 + i);
  }
  const std::size_t before = f.node_count();
  const std::size_t after_total = mgr.reorder_sift(4.0);
  const std::size_t after = f.node_count();
  EXPECT_LT(after, before);
  EXPECT_LE(after, 12u);  // linear: ~2 nodes per pair
  EXPECT_EQ(after_total, mgr.live_node_count());
  // Function unchanged.
  std::vector<bool> asg(8, false);
  asg[2] = asg[6] = true;
  EXPECT_TRUE(f.eval(asg));
  asg[6] = false;
  EXPECT_FALSE(f.eval(asg));
}

TEST(BddReorder, SiftRespectsGrowthBoundArgument) {
  BddManager mgr;
  (void)mgr.var(0);
  EXPECT_THROW((void)mgr.reorder_sift(0.5), std::invalid_argument);
  // Single-variable manager: nothing to do (the sift's own GC runs
  // first, so evaluate it before reading the live count).
  const std::size_t sifted = mgr.reorder_sift(1.5);
  EXPECT_EQ(sifted, mgr.live_node_count());
}

TEST(BddReorder, RenameRespectsTheActiveOrder) {
  // After swapping variables 0 and 1, the map {0->2, 1->3} is no
  // longer order-preserving (1 sits above 0 now, but 3 sits below 2
  // ... actually both flip consistently) — construct a genuinely
  // violating case: f over {0,1}, map identity; after the swap the
  // LEVELS of 0 and 1 are inverted, so mapping 0->0, 1->1 is still
  // monotone. The violating map sends the upper variable below the
  // lower one: {0->5, 1->4} pre-swap is monotone-by-level? level(0)=0
  // < level(1)=1 and level(5)=5 > level(4)=4 — violation pre-swap;
  // after swap_adjacent_levels(0) it becomes monotone.
  BddManager mgr;
  const Bdd f = mgr.var(0) & !mgr.var(1);
  mgr.ensure_vars(6);
  std::vector<VarIndex> map{5, 4};
  EXPECT_THROW((void)mgr.rename(f, map), std::invalid_argument);
  mgr.swap_adjacent_levels(0);  // now level(1) < level(0)
  const Bdd g = mgr.rename(f, map);
  // g = var5 & !var4 with the same structure-by-level.
  EXPECT_EQ(g, mgr.var(5) & !mgr.var(4));
}

}  // namespace
}  // namespace motsim::bdd
