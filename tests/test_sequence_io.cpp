// Test-sequence text I/O (tpg/sequence_io.h).

#include <gtest/gtest.h>

#include "bench_data/s27.h"
#include "tpg/sequence_io.h"
#include "util/rng.h"

namespace motsim {
namespace {

TEST(SequenceIo, RoundTrip) {
  const Netlist nl = make_s27();
  Rng rng(1);
  const TestSequence original = random_sequence(nl, 25, rng);
  const TestSequence reparsed =
      read_sequence_string(write_sequence_string(original, "s27 vectors"));
  EXPECT_EQ(reparsed, original);
}

TEST(SequenceIo, ParsesCommentsBlanksAndX) {
  const TestSequence seq = read_sequence_string(
      "# header comment\n"
      "\n"
      "10X1\n"
      "0011  # trailing comment\n"
      "   1100\n");
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq[0],
            (std::vector<Val3>{Val3::One, Val3::Zero, Val3::X, Val3::One}));
  EXPECT_EQ(seq[1][2], Val3::One);
  EXPECT_EQ(seq[2][0], Val3::One);
}

TEST(SequenceIo, EmptyInputGivesEmptySequence) {
  EXPECT_TRUE(read_sequence_string("").empty());
  EXPECT_TRUE(read_sequence_string("# only comments\n\n").empty());
}

TEST(SequenceIo, RejectsBadCharactersWithLineNumber) {
  try {
    (void)read_sequence_string("101\n1Z1\n");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(SequenceIo, RejectsRaggedFrames) {
  EXPECT_THROW((void)read_sequence_string("101\n10\n"),
               std::invalid_argument);
}

TEST(SequenceIo, WriterEmitsComment) {
  const std::string text =
      write_sequence_string(sequence_from_strings({"01"}), "hello");
  EXPECT_NE(text.find("# hello"), std::string::npos);
  EXPECT_NE(text.find("01\n"), std::string::npos);
}

}  // namespace
}  // namespace motsim
