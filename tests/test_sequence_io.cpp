// Test-sequence text I/O (tpg/sequence_io.h).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "bench_data/s27.h"
#include "tpg/sequence_io.h"
#include "util/rng.h"

namespace motsim {
namespace {

TEST(SequenceIo, RoundTrip) {
  const Netlist nl = make_s27();
  Rng rng(1);
  const TestSequence original = random_sequence(nl, 25, rng);
  const TestSequence reparsed =
      read_sequence_string(write_sequence_string(original, "s27 vectors"));
  EXPECT_EQ(reparsed, original);
}

TEST(SequenceIo, ParsesCommentsBlanksAndX) {
  const TestSequence seq = read_sequence_string(
      "# header comment\n"
      "\n"
      "10X1\n"
      "0011  # trailing comment\n"
      "   1100\n");
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq[0],
            (std::vector<Val3>{Val3::One, Val3::Zero, Val3::X, Val3::One}));
  EXPECT_EQ(seq[1][2], Val3::One);
  EXPECT_EQ(seq[2][0], Val3::One);
}

TEST(SequenceIo, EmptyInputGivesEmptySequence) {
  EXPECT_TRUE(read_sequence_string("").empty());
  EXPECT_TRUE(read_sequence_string("# only comments\n\n").empty());
}

TEST(SequenceIo, RejectsBadCharactersWithLineNumber) {
  try {
    (void)read_sequence_string("101\n1Z1\n");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(SequenceIo, RejectsRaggedFrames) {
  EXPECT_THROW((void)read_sequence_string("101\n10\n"),
               std::invalid_argument);
}

TEST(SequenceIo, WriterEmitsComment) {
  const std::string text =
      write_sequence_string(sequence_from_strings({"01"}), "hello");
  EXPECT_NE(text.find("# hello"), std::string::npos);
  EXPECT_NE(text.find("01\n"), std::string::npos);
}

// ---- file front ends and their error paths ---------------------------------

namespace fs = std::filesystem;

std::string temp_file(const std::string& name) {
  return (fs::temp_directory_path() /
          ("motsim_seqio_" + name + "_" +
           std::to_string(::testing::UnitTest::GetInstance()->random_seed())))
      .string();
}

void write_raw(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << data;
}

TEST(SequenceIoFile, RoundTrip) {
  const std::string path = temp_file("roundtrip");
  const Netlist nl = make_s27();
  Rng rng(9);
  const TestSequence original = random_sequence(nl, 17, rng);
  const auto w = write_sequence_file(path, original, "round trip");
  ASSERT_TRUE(w.has_value()) << w.error();
  const auto r = read_sequence_file(path);
  ASSERT_TRUE(r.has_value()) << r.error();
  EXPECT_EQ(*r, original);
  fs::remove(path);
}

TEST(SequenceIoFile, MissingFileReportsPath) {
  const auto r = read_sequence_file("/nonexistent/dir/vectors.seq");
  ASSERT_FALSE(r.has_value());
  EXPECT_NE(r.error().find("/nonexistent/dir/vectors.seq"),
            std::string::npos);
  EXPECT_NE(r.error().find("cannot open"), std::string::npos);
}

TEST(SequenceIoFile, TruncatedFrameReportsLineAndPath) {
  // A file cut off mid-frame leaves a short final line — the ragged
  // width must be reported as data, with the path and line number.
  const std::string path = temp_file("truncated");
  write_raw(path, "1011\n0010\n11");
  const auto r = read_sequence_file(path);
  ASSERT_FALSE(r.has_value());
  EXPECT_NE(r.error().find(path), std::string::npos);
  EXPECT_NE(r.error().find("line 3"), std::string::npos);
  fs::remove(path);
}

TEST(SequenceIoFile, BadWidthAndBadCharacterAreErrorsNotThrows) {
  const std::string path = temp_file("badwidth");
  write_raw(path, "101\n10101\n");
  EXPECT_FALSE(read_sequence_file(path).has_value());
  write_raw(path, "101\n1Q1\n");
  const auto r = read_sequence_file(path);
  ASSERT_FALSE(r.has_value());
  EXPECT_NE(r.error().find("'Q'"), std::string::npos);
  fs::remove(path);
}

TEST(SequenceIoFile, AcceptsCrlfLineEndings) {
  // Sequences written on Windows (or passed through git with CRLF
  // translation) carry \r\n; the trailing \r must be trimmed, not
  // treated as a frame character.
  const std::string path = temp_file("crlf");
  write_raw(path, "# dos file\r\n1011\r\n0010\r\n");
  const auto r = read_sequence_file(path);
  ASSERT_TRUE(r.has_value()) << r.error();
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0].size(), 4u);
  EXPECT_EQ((*r)[1][2], Val3::One);
  fs::remove(path);
}

TEST(SequenceIoFile, UnwritableTargetReportsPath) {
  const auto w = write_sequence_file("/nonexistent/dir/out.seq",
                                     sequence_from_strings({"01"}));
  ASSERT_FALSE(w.has_value());
  EXPECT_NE(w.error().find("/nonexistent/dir/out.seq"), std::string::npos);
}

}  // namespace
}  // namespace motsim
