// Cross-module fuzzing: every generated circuit must survive a .bench
// write/parse round trip with *behaviour* preserved — the reparsed
// netlist simulates identically (three-valued and two-valued), has the
// same fault universe, and classifies faults identically.

#include <gtest/gtest.h>

#include "bench_data/synth_gen.h"
#include "circuit/bench_io.h"
#include "faults/collapse.h"
#include "sim3/fault_sim3.h"
#include "sim3/good_sim3.h"
#include "sim3/sim2.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace motsim {
namespace {

SynthSpec fuzz_spec(std::uint64_t seed) {
  SynthSpec spec;
  spec.name = "fuzz" + std::to_string(seed);
  spec.inputs = 2 + seed % 5;
  spec.outputs = 1 + seed % 4;
  spec.dffs = 1 + seed % 7;
  spec.target_gates = 25 + (seed % 7) * 15;
  spec.style = static_cast<CircuitStyle>(seed % 4);
  spec.seed = seed * 0xABCDull + 3;
  return spec;
}

class BenchRoundTripFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BenchRoundTripFuzz, StructurePreserved) {
  const Netlist original = generate_circuit(fuzz_spec(GetParam()));
  const Netlist reparsed =
      parse_bench_string(write_bench_string(original), original.name());

  EXPECT_EQ(reparsed.node_count(), original.node_count());
  EXPECT_EQ(reparsed.input_count(), original.input_count());
  EXPECT_EQ(reparsed.output_count(), original.output_count());
  EXPECT_EQ(reparsed.dff_count(), original.dff_count());
  EXPECT_EQ(reparsed.gate_count(), original.gate_count());
  EXPECT_EQ(reparsed.max_level(), original.max_level());

  // Gate-by-gate identity via names.
  for (NodeIndex n = 0; n < original.node_count(); ++n) {
    const Gate& g = original.gate(n);
    const NodeIndex rn = reparsed.find(g.name);
    ASSERT_NE(rn, kNoNode) << g.name;
    EXPECT_EQ(reparsed.gate(rn).type, g.type);
    ASSERT_EQ(reparsed.gate(rn).fanins.size(), g.fanins.size());
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      EXPECT_EQ(reparsed.gate(reparsed.gate(rn).fanins[i]).name,
                original.gate(g.fanins[i]).name);
    }
  }
}

TEST_P(BenchRoundTripFuzz, ThreeValuedSimulationAgrees) {
  const Netlist original = generate_circuit(fuzz_spec(GetParam() + 100));
  const Netlist reparsed =
      parse_bench_string(write_bench_string(original), original.name());

  Rng rng(GetParam() * 3 + 1);
  const TestSequence seq = random_sequence(original, 12, rng);

  GoodSim3 a(original), b(reparsed);
  for (const auto& vec : seq) {
    EXPECT_EQ(a.step(vec), b.step(vec));
    EXPECT_EQ(a.state(), b.state());
  }
}

TEST_P(BenchRoundTripFuzz, ConcreteSimulationAgrees) {
  const Netlist original = generate_circuit(fuzz_spec(GetParam() + 200));
  const Netlist reparsed =
      parse_bench_string(write_bench_string(original), original.name());

  Rng rng(GetParam() * 5 + 2);
  const auto seq = to_bool_sequence(random_sequence(original, 10, rng));
  std::vector<bool> init(original.dff_count());
  for (std::size_t i = 0; i < init.size(); ++i) init[i] = rng.flip();

  Sim2 a(original), b(reparsed);
  EXPECT_EQ(a.run(init, seq), b.run(init, seq));
}

TEST_P(BenchRoundTripFuzz, FaultClassificationAgrees) {
  const Netlist original = generate_circuit(fuzz_spec(GetParam() + 300));
  const Netlist reparsed =
      parse_bench_string(write_bench_string(original), original.name());

  const CollapsedFaultList ca(original);
  const CollapsedFaultList cb(reparsed);
  ASSERT_EQ(ca.size(), cb.size());
  ASSERT_EQ(ca.uncollapsed_size(), cb.uncollapsed_size());

  Rng rng(GetParam() * 7 + 3);
  const TestSequence seq = random_sequence(original, 10, rng);

  FaultSim3 sa(original, ca.faults());
  FaultSim3 sb(reparsed, cb.faults());
  const auto ra = sa.run(seq);
  const auto rb = sb.run(seq);
  EXPECT_EQ(ra.detected_count, rb.detected_count);
  EXPECT_EQ(ra.status, rb.status);
  EXPECT_EQ(ra.detect_frame, rb.detect_frame);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BenchRoundTripFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

}  // namespace
}  // namespace motsim
