// Cross-module fuzzing: every generated circuit must survive a .bench
// write/parse round trip with *behaviour* preserved — the reparsed
// netlist simulates identically (three-valued and two-valued), has the
// same fault universe, and classifies faults identically.

#include <gtest/gtest.h>

#include "bench_data/synth_gen.h"
#include "store/run_store.h"
#include "circuit/bench_io.h"
#include "faults/collapse.h"
#include "sim3/fault_sim3.h"
#include "sim3/good_sim3.h"
#include "sim3/sim2.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace motsim {
namespace {

SynthSpec fuzz_spec(std::uint64_t seed) {
  SynthSpec spec;
  spec.name = "fuzz" + std::to_string(seed);
  spec.inputs = 2 + seed % 5;
  spec.outputs = 1 + seed % 4;
  spec.dffs = 1 + seed % 7;
  spec.target_gates = 25 + (seed % 7) * 15;
  spec.style = static_cast<CircuitStyle>(seed % 4);
  spec.seed = seed * 0xABCDull + 3;
  return spec;
}

class BenchRoundTripFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BenchRoundTripFuzz, StructurePreserved) {
  const Netlist original = generate_circuit(fuzz_spec(GetParam()));
  const Netlist reparsed =
      parse_bench_string(write_bench_string(original), original.name());

  EXPECT_EQ(reparsed.node_count(), original.node_count());
  EXPECT_EQ(reparsed.input_count(), original.input_count());
  EXPECT_EQ(reparsed.output_count(), original.output_count());
  EXPECT_EQ(reparsed.dff_count(), original.dff_count());
  EXPECT_EQ(reparsed.gate_count(), original.gate_count());
  EXPECT_EQ(reparsed.max_level(), original.max_level());

  // Gate-by-gate identity via names.
  for (NodeIndex n = 0; n < original.node_count(); ++n) {
    const Gate& g = original.gate(n);
    const NodeIndex rn = reparsed.find(g.name);
    ASSERT_NE(rn, kNoNode) << g.name;
    EXPECT_EQ(reparsed.gate(rn).type, g.type);
    ASSERT_EQ(reparsed.gate(rn).fanins.size(), g.fanins.size());
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      EXPECT_EQ(reparsed.gate(reparsed.gate(rn).fanins[i]).name,
                original.gate(g.fanins[i]).name);
    }
  }
}

TEST_P(BenchRoundTripFuzz, ThreeValuedSimulationAgrees) {
  const Netlist original = generate_circuit(fuzz_spec(GetParam() + 100));
  const Netlist reparsed =
      parse_bench_string(write_bench_string(original), original.name());

  Rng rng(GetParam() * 3 + 1);
  const TestSequence seq = random_sequence(original, 12, rng);

  GoodSim3 a(original), b(reparsed);
  for (const auto& vec : seq) {
    EXPECT_EQ(a.step(vec), b.step(vec));
    EXPECT_EQ(a.state(), b.state());
  }
}

TEST_P(BenchRoundTripFuzz, ConcreteSimulationAgrees) {
  const Netlist original = generate_circuit(fuzz_spec(GetParam() + 200));
  const Netlist reparsed =
      parse_bench_string(write_bench_string(original), original.name());

  Rng rng(GetParam() * 5 + 2);
  const auto seq = to_bool_sequence(random_sequence(original, 10, rng));
  std::vector<bool> init(original.dff_count());
  for (std::size_t i = 0; i < init.size(); ++i) init[i] = rng.flip();

  Sim2 a(original), b(reparsed);
  EXPECT_EQ(a.run(init, seq), b.run(init, seq));
}

TEST_P(BenchRoundTripFuzz, FaultClassificationAgrees) {
  const Netlist original = generate_circuit(fuzz_spec(GetParam() + 300));
  const Netlist reparsed =
      parse_bench_string(write_bench_string(original), original.name());

  const CollapsedFaultList ca(original);
  const CollapsedFaultList cb(reparsed);
  ASSERT_EQ(ca.size(), cb.size());
  ASSERT_EQ(ca.uncollapsed_size(), cb.uncollapsed_size());

  Rng rng(GetParam() * 7 + 3);
  const TestSequence seq = random_sequence(original, 10, rng);

  FaultSim3 sa(original, ca.faults());
  FaultSim3 sb(reparsed, cb.faults());
  const auto ra = sa.run(seq);
  const auto rb = sb.run(seq);
  EXPECT_EQ(ra.detected_count, rb.detected_count);
  EXPECT_EQ(ra.status, rb.status);
  EXPECT_EQ(ra.detect_frame, rb.detect_frame);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BenchRoundTripFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

// ---- run-store formats (store/run_store.h) ---------------------------------
// Same philosophy as the .bench fuzz above: any state the store can be
// asked to persist must survive serialize -> parse unchanged, and
// mutated lines must be rejected rather than misread (a misparsed
// checkpoint would silently corrupt a resumed campaign).

Val3 random_val3(Rng& rng) {
  const std::uint64_t r = rng.below(3);
  return r == 0 ? Val3::Zero : (r == 1 ? Val3::One : Val3::X);
}

ChunkCheckpoint random_checkpoint(std::uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  ChunkCheckpoint ck;
  ck.chunk = rng.below(32);
  ck.frame = rng.below(4096);
  ck.in_window = rng.flip();
  ck.window_left = ck.in_window ? rng.below(8) : 0;
  ck.complete = rng.flip();
  const std::size_t dffs = rng.below(24);
  for (std::size_t i = 0; i < dffs; ++i) {
    ck.good_state.push_back(random_val3(rng));
  }
  const std::size_t n = rng.below(40);
  static constexpr FaultStatus kStatuses[] = {
      FaultStatus::Undetected,   FaultStatus::XRedundant,
      FaultStatus::DetectedSim3, FaultStatus::DetectedSot,
      FaultStatus::DetectedRmot, FaultStatus::DetectedMot};
  for (std::size_t i = 0; i < n; ++i) {
    ck.fault_index.push_back(rng.below(10000));
    ck.status.push_back(kStatuses[rng.below(6)]);
    ck.detect_frame.push_back(static_cast<std::uint32_t>(rng.below(5000)));
    StateDiff3 diff;
    const std::size_t d = dffs == 0 ? 0 : rng.below(dffs + 1);
    for (std::size_t j = 0; j < d; ++j) {
      diff.emplace_back(static_cast<std::uint32_t>(rng.below(dffs)),
                        random_val3(rng));
    }
    ck.diff.push_back(std::move(diff));
  }
  return ck;
}

class StoreFormatFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreFormatFuzz, CheckpointLineRoundTrips) {
  const ChunkCheckpoint ck = random_checkpoint(GetParam());
  const std::string line = serialize_checkpoint_line(ck);
  const auto back = parse_checkpoint_line(line);
  ASSERT_TRUE(back.has_value()) << back.error() << "\nline: " << line;
  EXPECT_EQ(back->chunk, ck.chunk);
  EXPECT_EQ(back->frame, ck.frame);
  EXPECT_EQ(back->in_window, ck.in_window);
  EXPECT_EQ(back->window_left, ck.window_left);
  EXPECT_EQ(back->complete, ck.complete);
  EXPECT_EQ(back->good_state, ck.good_state);
  EXPECT_EQ(back->fault_index, ck.fault_index);
  EXPECT_EQ(back->status, ck.status);
  EXPECT_EQ(back->detect_frame, ck.detect_frame);
  EXPECT_EQ(back->diff, ck.diff);
}

TEST_P(StoreFormatFuzz, TruncatedCheckpointLinesNeverParse) {
  const std::string line =
      serialize_checkpoint_line(random_checkpoint(GetParam() + 50));
  Rng rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 16; ++trial) {
    const std::size_t cut = rng.below(line.size());
    EXPECT_FALSE(parse_checkpoint_line(line.substr(0, cut)).has_value())
        << "prefix of length " << cut << " parsed: " << line.substr(0, cut);
  }
}

TEST_P(StoreFormatFuzz, ManifestRoundTrips) {
  Rng rng(GetParam() * 0xC0FFEEull + 5);
  StoreManifest m;
  m.circuit = "fuzz" + std::to_string(GetParam());
  m.inputs = rng.below(100);
  m.dffs = rng.below(100);
  m.faults = rng.below(10000);
  m.seed = rng();
  m.complete = rng.flip();
  const std::size_t segments = 1 + rng.below(4);
  for (std::size_t i = 0; i < segments; ++i) {
    m.segment_lengths.push_back(1 + rng.below(500));
    m.sequence_length += m.segment_lengths.back();
  }
  m.fp_netlist = rng();
  m.fp_faults = rng();
  m.fp_options = rng();
  m.fp_sequence = rng();
  m.options.strategy = static_cast<Strategy>(rng.below(3));
  m.options.layout = static_cast<VarLayout>(rng.below(2));
  m.options.node_limit = 1 + rng.below(100000);
  m.options.fallback_frames = 1 + rng.below(32);
  m.options.checkpoint_interval = rng.below(256);
  m.options.threads = rng.below(16);
  m.options.chunk_size = rng.below(256);
  m.options.seed = rng();

  const auto back = StoreManifest::from_text(m.to_text());
  ASSERT_TRUE(back.has_value()) << back.error();
  EXPECT_EQ(back->circuit, m.circuit);
  EXPECT_EQ(back->inputs, m.inputs);
  EXPECT_EQ(back->dffs, m.dffs);
  EXPECT_EQ(back->faults, m.faults);
  EXPECT_EQ(back->seed, m.seed);
  EXPECT_EQ(back->complete, m.complete);
  EXPECT_EQ(back->sequence_length, m.sequence_length);
  EXPECT_EQ(back->segment_lengths, m.segment_lengths);
  EXPECT_EQ(back->fp_netlist, m.fp_netlist);
  EXPECT_EQ(back->fp_faults, m.fp_faults);
  EXPECT_EQ(back->fp_options, m.fp_options);
  EXPECT_EQ(back->fp_sequence, m.fp_sequence);
  EXPECT_EQ(back->options, m.options);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreFormatFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

}  // namespace
}  // namespace motsim
