// Kill/resume and incremental-extension semantics of campaigns
// (store/campaign.h): a campaign interrupted between two checkpoint
// writes and resumed — with any thread count — must classify every
// fault bit-identically to the uninterrupted run, and an extension
// must equal a from-scratch run over the concatenated sequence while
// never re-evaluating detected or X-redundant faults.

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench_data/registry.h"
#include "faults/collapse.h"
#include "obs/telemetry.h"
#include "store/campaign.h"
#include "store/run_store.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace motsim {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const std::string& tag)
      : path((fs::temp_directory_path() /
              ("motsim_resume_" + tag + "_" +
               std::to_string(::testing::UnitTest::GetInstance()->random_seed())))
                 .string()) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string sub(const std::string& name) const {
    return (fs::path(path) / name).string();
  }
  std::string path;
};

/// Simulates a crash: lets `allow` checkpoints persist, then throws
/// out of the engine (the store keeps everything written so far).
class ThrowingTap final : public CheckpointSink {
 public:
  explicit ThrowingTap(std::size_t allow) : allow_(allow) {}
  void on_checkpoint(const ChunkCheckpoint&) override {
    if (++count_ > allow_) throw std::runtime_error("simulated crash");
  }
  std::size_t count() const { return count_; }

 private:
  std::size_t allow_;
  std::size_t count_ = 0;
};

class RecordingTap final : public CheckpointSink {
 public:
  void on_checkpoint(const ChunkCheckpoint& ck) override {
    records.push_back(ck);
  }
  std::vector<ChunkCheckpoint> records;
};

struct Workload {
  Workload() : nl(make_benchmark("s298")), faults(nl) {
    Rng rng(11);
    base = random_sequence(nl, 32, rng);
    extra = random_sequence(nl, 16, rng);
    full = base;
    full.insert(full.end(), extra.begin(), extra.end());
    opts.checkpoint_interval = 8;  // divides the 32-frame base segment
  }
  Netlist nl;
  CollapsedFaultList faults;
  TestSequence base;
  TestSequence extra;
  TestSequence full;
  SimOptions opts;
};

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.status.size(), b.status.size());
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.detect_frame, b.detect_frame);
  EXPECT_EQ(a.x_redundant, b.x_redundant);
}

/// Kill a campaign after `allow` persisted checkpoints, resume it, and
/// require the final classification to match the uninterrupted
/// baseline exactly.
void check_kill_resume(const Workload& w, const SimOptions& opts,
                       std::size_t resume_threads, const char* tag) {
  TempDir tmp(tag);
  const auto baseline = run_campaign(w.nl, w.faults.faults(), w.base, opts,
                                     tmp.sub("baseline"));
  ASSERT_TRUE(baseline.has_value()) << baseline.error();

  ThrowingTap tap(5);
  const auto killed = run_campaign(w.nl, w.faults.faults(), w.base, opts,
                                   tmp.sub("killed"), nullptr, &tap);
  ASSERT_FALSE(killed.has_value());
  EXPECT_NE(killed.error().find("campaign aborted"), std::string::npos);
  EXPECT_GE(tap.count(), 5u);  // the crash really hit mid-run

  const auto resumed = resume_campaign(w.nl, w.faults.faults(),
                                       tmp.sub("killed"), resume_threads);
  ASSERT_TRUE(resumed.has_value()) << resumed.error();
  EXPECT_TRUE(resumed->resumed);
  expect_identical(*resumed, *baseline);
}

TEST(Resume, KillResumeBitIdenticalSingleThread) {
  const Workload w;
  check_kill_resume(w, w.opts, 1, "serial");
}

TEST(Resume, KillResumeBitIdenticalFourThreads) {
  const Workload w;
  SimOptions opts = w.opts;
  opts.threads = 4;
  check_kill_resume(w, opts, 4, "par");
}

TEST(Resume, ThreadCountMayChangeAcrossResume) {
  // Killed with 1 thread, resumed with 4 — the chunk partition depends
  // only on the fault list, so the classification cannot change.
  const Workload w;
  check_kill_resume(w, w.opts, 4, "retarget");
}

TEST(Resume, KillResumeWithForcedFallbackWindows) {
  const Workload w;
  SimOptions opts = w.opts;
  opts.node_limit = 60;  // tiny: forces three-valued fallback windows
  opts.fallback_frames = 4;

  TempDir tmp("fallback");
  const auto baseline = run_campaign(w.nl, w.faults.faults(), w.base, opts,
                                     tmp.sub("baseline"));
  ASSERT_TRUE(baseline.has_value()) << baseline.error();
  ASSERT_GT(baseline->sym.fallback_windows, 0u)
      << "node_limit did not force a fallback window; the scenario is vacuous";

  ThrowingTap tap(3);
  const auto killed = run_campaign(w.nl, w.faults.faults(), w.base, opts,
                                   tmp.sub("killed"), nullptr, &tap);
  ASSERT_FALSE(killed.has_value());

  const auto resumed =
      resume_campaign(w.nl, w.faults.faults(), tmp.sub("killed"));
  ASSERT_TRUE(resumed.has_value()) << resumed.error();
  expect_identical(*resumed, *baseline);
}

TEST(Resume, BackendMayChangeAcrossResume) {
  // Checkpoint under the event backend, resume under bitpar (and the
  // reverse) — the two are bit-identical by contract and excluded from
  // the store's fingerprints, so the classification cannot change.
  // Tiny node limit forces fallback windows so the backend is actually
  // exercised on both sides of the crash.
  const Workload w;
  SimOptions opts = w.opts;
  opts.node_limit = 60;
  opts.fallback_frames = 4;

  for (const auto& [first, second] :
       {std::pair{Sim3Backend::Event, Sim3Backend::BitPar},
        std::pair{Sim3Backend::BitPar, Sim3Backend::Event}}) {
    opts.sim3_backend = first;
    TempDir tmp(std::string("backend_") + to_cstring(first));
    const auto baseline = run_campaign(w.nl, w.faults.faults(), w.base, opts,
                                       tmp.sub("baseline"));
    ASSERT_TRUE(baseline.has_value()) << baseline.error();
    ASSERT_GT(baseline->sym.fallback_windows, 0u)
        << "node_limit did not force a fallback window; the scenario is "
           "vacuous";

    ThrowingTap tap(3);
    const auto killed = run_campaign(w.nl, w.faults.faults(), w.base, opts,
                                     tmp.sub("killed"), nullptr, &tap);
    ASSERT_FALSE(killed.has_value());

    const auto resumed = resume_campaign(
        w.nl, w.faults.faults(), tmp.sub("killed"), std::nullopt, nullptr,
        nullptr, nullptr, /*sim3_backend=*/second);
    ASSERT_TRUE(resumed.has_value()) << resumed.error();
    expect_identical(*resumed, *baseline);
  }
}

TEST(Extend, BackendMayChangeAcrossExtension) {
  const Workload w;
  SimOptions opts = w.opts;
  opts.node_limit = 60;
  opts.fallback_frames = 4;
  opts.sim3_backend = Sim3Backend::Event;

  TempDir tmp("extend_backend");
  ASSERT_TRUE(run_campaign(w.nl, w.faults.faults(), w.base, opts,
                           tmp.sub("inc"))
                  .has_value());
  const auto extended = extend_campaign(
      w.nl, w.faults.faults(), w.extra, tmp.sub("inc"), std::nullopt, nullptr,
      nullptr, nullptr, /*sim3_backend=*/Sim3Backend::BitPar);
  ASSERT_TRUE(extended.has_value()) << extended.error();

  const auto scratch = run_campaign(w.nl, w.faults.faults(), w.full, opts,
                                    tmp.sub("scratch"));
  ASSERT_TRUE(scratch.has_value()) << scratch.error();
  expect_identical(*extended, *scratch);
}

TEST(Resume, SurvivesTwoConsecutiveCrashes) {
  const Workload w;
  TempDir tmp("twice");
  const auto baseline = run_campaign(w.nl, w.faults.faults(), w.base, w.opts,
                                     tmp.sub("baseline"));
  ASSERT_TRUE(baseline.has_value()) << baseline.error();

  ThrowingTap first(2);
  ASSERT_FALSE(run_campaign(w.nl, w.faults.faults(), w.base, w.opts,
                            tmp.sub("killed"), nullptr, &first)
                   .has_value());
  ThrowingTap second(1);
  ASSERT_FALSE(resume_campaign(w.nl, w.faults.faults(), tmp.sub("killed"),
                               std::nullopt, nullptr, &second)
                   .has_value());

  const auto resumed =
      resume_campaign(w.nl, w.faults.faults(), tmp.sub("killed"));
  ASSERT_TRUE(resumed.has_value()) << resumed.error();
  expect_identical(*resumed, *baseline);
}

TEST(Resume, ResumingCompletedCampaignIsIdempotent) {
  const Workload w;
  TempDir tmp("idem");
  const auto first =
      run_campaign(w.nl, w.faults.faults(), w.base, w.opts, tmp.sub("c"));
  ASSERT_TRUE(first.has_value()) << first.error();

  const auto again = resume_campaign(w.nl, w.faults.faults(), tmp.sub("c"));
  ASSERT_TRUE(again.has_value()) << again.error();
  expect_identical(*again, *first);
  EXPECT_EQ(again->sym.checkpoint_syncs, 0u);  // nothing was re-simulated
}

TEST(Resume, TelemetryMayBeAttachedAcrossResume) {
  // A campaign recorded with telemetry *off* must resume bit-identically
  // with telemetry *on*: the Telemetry context is an observer, never
  // part of a run's identity or its store fingerprints.
  const Workload w;
  TempDir tmp("telemetry");
  const auto baseline = run_campaign(w.nl, w.faults.faults(), w.base, w.opts,
                                     tmp.sub("baseline"));
  ASSERT_TRUE(baseline.has_value()) << baseline.error();

  ThrowingTap tap(3);
  ASSERT_FALSE(run_campaign(w.nl, w.faults.faults(), w.base, w.opts,
                            tmp.sub("killed"), nullptr, &tap)
                   .has_value());

  obs::Telemetry telemetry;
  const auto resumed =
      resume_campaign(w.nl, w.faults.faults(), tmp.sub("killed"),
                      std::nullopt, nullptr, nullptr, &telemetry);
  ASSERT_TRUE(resumed.has_value()) << resumed.error();
  expect_identical(*resumed, *baseline);
  // The observer really observed the resumed leg.
  const auto snapshot = telemetry.metrics.snapshot();
  bool saw_frames = false;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "hybrid.symbolic_frames" && value > 0) saw_frames = true;
  }
  EXPECT_TRUE(saw_frames);

  // And the mirror image: recorded with telemetry on, resumed without.
  obs::Telemetry recording;
  SimOptions opts_on = w.opts;
  opts_on.telemetry = &recording;
  ThrowingTap tap2(3);
  ASSERT_FALSE(run_campaign(w.nl, w.faults.faults(), w.base, opts_on,
                            tmp.sub("killed2"), nullptr, &tap2)
                   .has_value());
  const auto resumed_plain =
      resume_campaign(w.nl, w.faults.faults(), tmp.sub("killed2"));
  ASSERT_TRUE(resumed_plain.has_value()) << resumed_plain.error();
  expect_identical(*resumed_plain, *baseline);
}

TEST(Extend, MatchesFromScratchOverConcatenatedSequence) {
  const Workload w;
  TempDir tmp("equal");

  // Incremental: base campaign, then a 16-frame extension. The
  // checkpoint interval (8) divides the 32-frame segment boundary, so
  // the sync schedules of both runs line up exactly.
  ASSERT_TRUE(run_campaign(w.nl, w.faults.faults(), w.base, w.opts,
                           tmp.sub("inc"))
                  .has_value());
  const auto extended =
      extend_campaign(w.nl, w.faults.faults(), w.extra, tmp.sub("inc"));
  ASSERT_TRUE(extended.has_value()) << extended.error();
  EXPECT_EQ(extended->frames_total, w.full.size());

  const auto scratch = run_campaign(w.nl, w.faults.faults(), w.full, w.opts,
                                    tmp.sub("scratch"));
  ASSERT_TRUE(scratch.has_value()) << scratch.error();
  expect_identical(*extended, *scratch);

  // The store now describes the concatenated sequence.
  auto store = RunStore::open(tmp.sub("inc"));
  ASSERT_TRUE(store.has_value()) << store.error();
  EXPECT_EQ(store->manifest().sequence_length, w.full.size());
  EXPECT_EQ(store->manifest().segment_lengths,
            (std::vector<std::size_t>{32, 16}));
  const auto seq = store->load_sequence();
  ASSERT_TRUE(seq.has_value()) << seq.error();
  EXPECT_EQ(*seq, w.full);
}

TEST(Extend, NeverReEvaluatesDetectedOrXRedundantFaults) {
  const Workload w;
  TempDir tmp("skip");
  const auto base =
      run_campaign(w.nl, w.faults.faults(), w.base, w.opts, tmp.sub("c"));
  ASSERT_TRUE(base.has_value()) << base.error();

  RecordingTap tap;
  const auto extended = extend_campaign(w.nl, w.faults.faults(), w.extra,
                                        tmp.sub("c"), std::nullopt, nullptr,
                                        &tap);
  ASSERT_TRUE(extended.has_value()) << extended.error();
  ASSERT_FALSE(tap.records.empty());

  std::set<std::size_t> xred;
  for (std::size_t i = 0; i < base->status.size(); ++i) {
    if (base->status[i] == FaultStatus::XRedundant) xred.insert(i);
  }
  ASSERT_FALSE(xred.empty()) << "s298 workload should have X-redundant faults";

  for (const ChunkCheckpoint& ck : tap.records) {
    for (std::size_t i = 0; i < ck.fault_index.size(); ++i) {
      const std::size_t g = ck.fault_index[i];
      // X-redundant faults are frozen out of the partition entirely.
      EXPECT_EQ(xred.count(g), 0u) << "X-redundant fault " << g
                                   << " appeared in an extension chunk";
      // A fault detected by the base run keeps its verdict and frame
      // verbatim — the extension never touches it again.
      if (is_detected(base->status[g])) {
        EXPECT_EQ(ck.status[i], base->status[g]) << "fault " << g;
        EXPECT_EQ(ck.detect_frame[i], base->detect_frame[g]) << "fault " << g;
      }
    }
  }

  // Detection frames from the base segment survive the extension.
  for (std::size_t g = 0; g < base->status.size(); ++g) {
    if (is_detected(base->status[g])) {
      EXPECT_EQ(extended->status[g], base->status[g]);
      EXPECT_EQ(extended->detect_frame[g], base->detect_frame[g]);
    }
  }
}

TEST(Extend, RefusesIncompleteCampaignsAndBadFrames) {
  const Workload w;
  TempDir tmp("refuse");

  ThrowingTap tap(1);
  ASSERT_FALSE(run_campaign(w.nl, w.faults.faults(), w.base, w.opts,
                            tmp.sub("killed"), nullptr, &tap)
                   .has_value());
  const auto incomplete =
      extend_campaign(w.nl, w.faults.faults(), w.extra, tmp.sub("killed"));
  ASSERT_FALSE(incomplete.has_value());
  EXPECT_NE(incomplete.error().find("resume it before extending"),
            std::string::npos);

  ASSERT_TRUE(run_campaign(w.nl, w.faults.faults(), w.base, w.opts,
                           tmp.sub("done"))
                  .has_value());
  EXPECT_FALSE(extend_campaign(w.nl, w.faults.faults(), {}, tmp.sub("done"))
                   .has_value());
  TestSequence ragged = {std::vector<Val3>(w.nl.input_count() + 1, Val3::One)};
  EXPECT_FALSE(
      extend_campaign(w.nl, w.faults.faults(), ragged, tmp.sub("done"))
          .has_value());
}

}  // namespace
}  // namespace motsim
