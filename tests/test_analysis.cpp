// The static-analysis subsystem: diagnostics framework, structural
// lint, SCOAP testability and static X-redundancy — including the
// soundness contract (static verdicts are a subset of every
// per-sequence ID_X-red verdict and never change detection results).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <random>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/implication.h"
#include "analysis/lint.h"
#include "analysis/static_xred.h"
#include "analysis/testability.h"
#include "bench_data/registry.h"
#include "bench_data/s27.h"
#include "circuit/netlist.h"
#include "circuit/stats.h"
#include "core/options.h"
#include "core/pipeline.h"
#include "core/xred.h"
#include "faults/collapse.h"
#include "faults/fault_list.h"
#include "faults/report.h"
#include "sim3/fault_sim3.h"
#include "sim3/good_sim3.h"
#include "store/fingerprint.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace motsim {
namespace {

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

/// AND/OR core with one flip-flop and one PO, plus a dead inverter
/// cone ("dead" has no sink): its faults are statically X-redundant.
Netlist dead_cone_circuit() {
  Netlist nl("deadcone");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex b = nl.add_input("b");
  const NodeIndex q = nl.add_dff(kNoNode, "q");
  const NodeIndex g = nl.add_gate(GateType::And, {a, b}, "g");
  nl.set_fanins(q, {g});
  const NodeIndex o = nl.add_gate(GateType::Or, {g, q}, "o");
  (void)nl.add_gate(GateType::Not, {b}, "dead");
  nl.mark_output(o);
  nl.finalize();
  return nl;
}

/// AND gate with a constant-0 side input: "g" is structurally
/// constant 0, so its s-a-0 faults can never be activated.
Netlist const_gate_circuit() {
  Netlist nl("constand");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex z = nl.add_gate(GateType::Const0, {}, "zero");
  const NodeIndex g = nl.add_gate(GateType::And, {a, z}, "g");
  const NodeIndex o = nl.add_gate(GateType::Or, {g, a}, "o");
  nl.mark_output(o);
  nl.finalize();
  return nl;
}

// ---------------------------------------------------------------------------
// DiagnosticReport
// ---------------------------------------------------------------------------

TEST(Diagnostics, ExitCodeTracksWorstSeverity) {
  DiagnosticReport r("c");
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.exit_code(), 0);
  r.add(Diagnostic{"x.note", Severity::Note, kNoNode, "", "fyi"});
  EXPECT_EQ(r.exit_code(), 0);  // notes never fail a run
  r.add(Diagnostic{"x.warn", Severity::Warning, 3, "n3", "careful"});
  EXPECT_EQ(r.exit_code(), 1);
  r.add(Diagnostic{"x.err", Severity::Error, 4, "n4", "broken"});
  EXPECT_EQ(r.exit_code(), 2);
  EXPECT_FALSE(r.clean());
  EXPECT_EQ(r.count(Severity::Note), 1u);
  EXPECT_EQ(r.count(Severity::Warning), 1u);
  EXPECT_EQ(r.count(Severity::Error), 1u);
  EXPECT_TRUE(r.has("x.warn"));
  EXPECT_FALSE(r.has("x.gone"));
  EXPECT_EQ(r.nodes_with("x.err"), std::vector<NodeIndex>{4});
}

TEST(Diagnostics, TextRenderingNamesEverything) {
  DiagnosticReport r("tiny");
  r.add(Diagnostic{"lint.dangling-net", Severity::Warning, 2, "n2",
                   "net has no sink"});
  const std::string text = r.to_text();
  EXPECT_NE(text.find("tiny"), std::string::npos);
  EXPECT_NE(text.find("warning[lint.dangling-net]"), std::string::npos);
  EXPECT_NE(text.find("n2"), std::string::npos);
  EXPECT_NE(text.find("1 warning"), std::string::npos);
}

TEST(Diagnostics, JsonRoundTripIsIdentity) {
  DiagnosticReport r("round \"trip\"\ncircuit");
  r.add(Diagnostic{"x.a", Severity::Note, kNoNode, "", "plain"});
  r.add(Diagnostic{"x.b", Severity::Warning, 7, "weird \"name\"\t",
                   "escapes: \\ \" \n \r \t end"});
  r.add(Diagnostic{"x.c", Severity::Error, 0, "n0", "last"});
  const auto parsed = DiagnosticReport::from_json(r.to_json());
  ASSERT_TRUE(parsed.has_value()) << parsed.error();
  EXPECT_EQ(parsed.value(), r);
}

TEST(Diagnostics, FromJsonRejectsGarbage) {
  EXPECT_FALSE(DiagnosticReport::from_json("").has_value());
  EXPECT_FALSE(DiagnosticReport::from_json("[1,2]").has_value());
  EXPECT_FALSE(
      DiagnosticReport::from_json("{\"circuit\": \"x\"").has_value());
}

// ---------------------------------------------------------------------------
// Structural lint
// ---------------------------------------------------------------------------

TEST(Lint, RegistryCircuitsAreClean) {
  for (const BenchmarkInfo& info : benchmark_roster()) {
    if (info.spec.target_gates > 3000) continue;  // keep the test fast
    const Netlist nl = make_benchmark(info);
    const DiagnosticReport report = run_lint(nl);
    EXPECT_TRUE(report.clean())
        << info.spec.name << ":\n"
        << report.to_text();
  }
}

TEST(Lint, CombinationalCycleIsAnError) {
  // finalize() would throw on this circuit — lint must diagnose it
  // unfinalized (that is the point of the standalone pass).
  Netlist nl("cyc");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex g1 = nl.add_gate(GateType::And, {}, "g1");
  const NodeIndex g2 = nl.add_gate(GateType::Or, {g1, a}, "g2");
  nl.set_fanins(g1, {g2, a});
  nl.mark_output(g2);
  const DiagnosticReport report = run_lint(nl);
  EXPECT_TRUE(report.has("lint.comb-cycle"));
  EXPECT_EQ(report.exit_code(), 2);
  bool found = false;
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.id != "lint.comb-cycle") continue;
    found = true;
    EXPECT_NE(d.message.find("combinational cycle:"), std::string::npos);
    EXPECT_NE(d.message.find("g1"), std::string::npos);
    EXPECT_NE(d.message.find("g2"), std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST(Lint, UndrivenPinIsAnError) {
  Netlist nl("undriven");
  (void)nl.add_input("a");
  const NodeIndex g = nl.add_gate(GateType::And, {}, "g");
  const NodeIndex q = nl.add_dff(kNoNode, "q");
  nl.mark_output(g);
  const DiagnosticReport report = run_lint(nl);
  EXPECT_EQ(report.exit_code(), 2);
  const std::vector<NodeIndex> nodes = report.nodes_with("lint.undriven-pin");
  EXPECT_NE(std::find(nodes.begin(), nodes.end(), g), nodes.end());
  EXPECT_NE(std::find(nodes.begin(), nodes.end(), q), nodes.end());
}

TEST(Lint, FloatingInputIsAWarning) {
  Netlist nl("floating");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex f = nl.add_input("floater");
  const NodeIndex g = nl.add_gate(GateType::Not, {a}, "g");
  nl.mark_output(g);
  nl.finalize();
  const DiagnosticReport report = run_lint(nl);
  EXPECT_EQ(report.exit_code(), 1);
  EXPECT_EQ(report.nodes_with("lint.floating-input"),
            std::vector<NodeIndex>{f});
  EXPECT_FALSE(report.has("lint.dangling-net"));
}

TEST(Lint, DeadConeIsDanglingAndUnobservable) {
  const Netlist nl = dead_cone_circuit();
  const DiagnosticReport report = run_lint(nl);
  const NodeIndex dead = nl.find("dead");
  EXPECT_EQ(report.nodes_with("lint.dangling-net"),
            std::vector<NodeIndex>{dead});
  EXPECT_EQ(report.nodes_with("lint.unobservable"),
            std::vector<NodeIndex>{dead});
  EXPECT_EQ(report.exit_code(), 1);
}

TEST(Lint, DuplicateXorFaninIsAWarning) {
  Netlist nl("dupxor");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex g = nl.add_gate(GateType::Xor, {a, a}, "g");
  nl.mark_output(g);
  nl.finalize();
  const DiagnosticReport report = run_lint(nl);
  EXPECT_EQ(report.nodes_with("lint.duplicate-fanin"),
            std::vector<NodeIndex>{g});
  bool parity_message = false;
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.id == "lint.duplicate-fanin" &&
        d.message.find("parity") != std::string::npos) {
      parity_message = true;
    }
  }
  EXPECT_TRUE(parity_message);
}

TEST(Lint, ConstantGateIsAWarning) {
  const Netlist nl = const_gate_circuit();
  const DiagnosticReport report = run_lint(nl);
  EXPECT_EQ(report.nodes_with("lint.const-gate"),
            std::vector<NodeIndex>{nl.find("g")});
  EXPECT_EQ(report.exit_code(), 1);
}

// ---------------------------------------------------------------------------
// SCOAP testability
// ---------------------------------------------------------------------------

TEST(Testability, HandComputedAndGate) {
  Netlist nl("and2");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex b = nl.add_input("b");
  const NodeIndex g = nl.add_gate(GateType::And, {a, b}, "g");
  nl.mark_output(g);
  nl.finalize();
  const SiteTable sites(nl);
  const TestabilityScores s = compute_testability(nl, sites);
  EXPECT_EQ(s.cc0[a], 1u);
  EXPECT_EQ(s.cc1[a], 1u);
  EXPECT_EQ(s.cc0[g], 2u);  // min(CC0(a), CC0(b)) + 1
  EXPECT_EQ(s.cc1[g], 3u);  // CC1(a) + CC1(b) + 1
  EXPECT_EQ(s.co[sites.stem_site(g)], 0u);  // primary output
  // Observing `a` needs the path through g open: CO(g) + CC1(b) + 1.
  EXPECT_EQ(s.co[sites.stem_site(a)], 2u);
  EXPECT_EQ(s.seq_depth[g], 0u);
  // Fault a s-a-0: activate with a=1 (CC1=1) + observe (CO=2).
  const std::uint32_t d =
      s.fault_difficulty(sites, nl, Fault{FaultSite{a, kStemPin}, false});
  EXPECT_EQ(d, 3u);
}

TEST(Testability, FlipFlopAddsControllabilityAndDepth) {
  Netlist nl("ffchain");
  const NodeIndex in = nl.add_input("in");
  const NodeIndex n1 = nl.add_gate(GateType::Not, {in}, "n1");
  const NodeIndex q = nl.add_dff(n1, "q");
  const NodeIndex o = nl.add_gate(GateType::Buf, {q}, "o");
  nl.mark_output(o);
  nl.finalize();
  const SiteTable sites(nl);
  const TestabilityScores s = compute_testability(nl, sites);
  EXPECT_EQ(s.cc0[n1], 2u);  // CC1(in) + 1
  EXPECT_EQ(s.cc0[q], 3u);   // CC0(n1) + 1: the flip-flop costs a frame
  EXPECT_EQ(s.seq_depth[q], 0u);
  EXPECT_EQ(s.seq_depth[n1], 1u);  // one flip-flop crossing to the PO
  EXPECT_EQ(s.seq_depth[in], 1u);
}

TEST(Testability, UnobservableConeSaturates) {
  const Netlist nl = dead_cone_circuit();
  const SiteTable sites(nl);
  const TestabilityScores s = compute_testability(nl, sites);
  const NodeIndex dead = nl.find("dead");
  EXPECT_EQ(s.co[sites.stem_site(dead)], kScoapInf);
  EXPECT_EQ(s.seq_depth[dead], kScoapInf);
  const std::uint32_t d = s.fault_difficulty(
      sites, nl, Fault{FaultSite{dead, kStemPin}, false});
  EXPECT_EQ(d, kScoapInf);
  const std::string summary = testability_summary(nl, s);
  EXPECT_NE(summary.find("scoap:"), std::string::npos);
  EXPECT_NE(summary.find("blocked sites"), std::string::npos);
}

// s27's G13/G12/G7 loop can only be entered by the flip-flop's
// power-up value (G13=0 needs G12=1 needs G7=0 needs G13=0 one frame
// earlier), so the corresponding controllabilities saturate on a
// circuit that lints perfectly clean — SCOAP infinity means "never
// guaranteed from unknown power-up", not "structurally absent".
TEST(Testability, SequentialLoopWithoutEntrySaturates) {
  const Netlist nl = make_s27();
  const SiteTable sites(nl);
  const TestabilityScores s = compute_testability(nl, sites);
  EXPECT_TRUE(run_lint(nl).clean());
  EXPECT_EQ(s.cc0[nl.find("G13")], kScoapInf);
  EXPECT_EQ(s.cc1[nl.find("G12")], kScoapInf);
  EXPECT_EQ(s.cc0[nl.find("G7")], kScoapInf);
  // Observing G1 or G2 needs those very values as side inputs.
  EXPECT_EQ(s.co[sites.stem_site(nl.find("G1"))], kScoapInf);
  EXPECT_EQ(s.co[sites.stem_site(nl.find("G2"))], kScoapInf);
  std::size_t blocked = 0;
  for (std::uint32_t co : s.co) blocked += co == kScoapInf ? 1 : 0;
  EXPECT_EQ(blocked, 4u);
  std::size_t infinite = 0;
  for (const Fault& f : all_faults(nl)) {
    infinite += s.fault_difficulty(sites, nl, f) == kScoapInf ? 1 : 0;
  }
  EXPECT_EQ(infinite, 15u);
}

// Infinite difficulty is a sound three-valued untestability verdict:
// an X01 detection establishes the activation value and every side
// input of the sensitized path from the all-X state, which forces a
// finite score derivation. So no infinite-score fault may ever be
// detected by FaultSim3, whatever the sequence.
TEST(Testability, InfiniteDifficultyFaultsAreSim3Undetectable) {
  for (const char* name : {"s27", "s208.1", "s298"}) {
    const Netlist nl = make_benchmark(name);
    const SiteTable sites(nl);
    const TestabilityScores s = compute_testability(nl, sites);
    const std::vector<Fault> faults = all_faults(nl);
    for (std::uint32_t seed : {11u, 12u}) {
      Rng rng(seed);
      const TestSequence seq = random_sequence(nl, 100, rng);
      FaultSim3 sim(nl, faults);
      const FaultSim3Result r = sim.run(seq);
      for (std::size_t i = 0; i < faults.size(); ++i) {
        if (s.fault_difficulty(sites, nl, faults[i]) == kScoapInf) {
          EXPECT_NE(r.status[i], FaultStatus::DetectedSim3)
              << name << " seed " << seed << ": "
              << fault_name(nl, faults[i]);
        }
      }
    }
  }
}

TEST(Testability, AttachFillsCircuitStats) {
  const Netlist nl = make_s27();
  const SiteTable sites(nl);
  const TestabilityScores s = compute_testability(nl, sites);
  CircuitStats stats = CircuitStats::of(nl);
  EXPECT_FALSE(stats.has_scoap);
  attach_testability(stats, nl, s);
  EXPECT_TRUE(stats.has_scoap);
  EXPECT_GT(stats.scoap_max_cc, 0u);
  EXPECT_NE(stats.to_string().find("scoap:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Static X-redundancy
// ---------------------------------------------------------------------------

TEST(StaticXRed, DeadConeFaultsAreFlagged) {
  const Netlist nl = dead_cone_circuit();
  const StaticXRedAnalysis sa(nl);
  const NodeIndex dead = nl.find("dead");
  EXPECT_FALSE(sa.observable(dead));
  EXPECT_TRUE(sa.is_static_x_redundant(Fault{FaultSite{dead, kStemPin}, false}));
  EXPECT_TRUE(sa.is_static_x_redundant(Fault{FaultSite{dead, 0}, true}));
  // Everything outside the dead cone is live.
  EXPECT_FALSE(
      sa.is_static_x_redundant(Fault{FaultSite{nl.find("g"), kStemPin}, true}));
  const std::vector<Fault> faults = all_faults(nl);
  EXPECT_EQ(sa.count(faults), 4u);  // dead stem + dead.in0, both polarities
}

TEST(StaticXRed, ConstantSiteFaultsAreFlagged) {
  const Netlist nl = const_gate_circuit();
  const StaticXRedAnalysis sa(nl);
  const NodeIndex g = nl.find("g");
  const NodeIndex o = nl.find("o");
  EXPECT_EQ(sa.constant_of(g), ConstVal::Zero);
  EXPECT_EQ(sa.constant_of(o), ConstVal::Unknown);
  // g is constant 0: s-a-0 can never be activated, s-a-1 can.
  EXPECT_TRUE(sa.is_static_x_redundant(Fault{FaultSite{g, kStemPin}, false}));
  EXPECT_FALSE(sa.is_static_x_redundant(Fault{FaultSite{g, kStemPin}, true}));
  // The branch o.in0 sees the same constant driver.
  EXPECT_TRUE(sa.is_static_x_redundant(Fault{FaultSite{o, 0}, false}));
  EXPECT_FALSE(sa.is_static_x_redundant(Fault{FaultSite{o, 0}, true}));
}

TEST(StaticXRed, SubsetOfEveryPerSequenceIdXRed) {
  // The soundness contract: for every sequence, a statically flagged
  // fault is also flagged by ID_X-red (docs/ANALYSIS.md).
  const Netlist circuits[] = {make_s27(), dead_cone_circuit(),
                              const_gate_circuit(), make_benchmark("s298")};
  for (const Netlist& nl : circuits) {
    const StaticXRedAnalysis sa(nl);
    const std::vector<Fault> faults = all_faults(nl);
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      Rng rng(seed);
      const TestSequence seq =
          random_sequence(nl, 5 + 15 * static_cast<std::size_t>(seed), rng);
      const XRedResult xr = run_id_x_red(nl, seq);
      for (const Fault& f : faults) {
        if (!sa.is_static_x_redundant(f)) continue;
        EXPECT_TRUE(xr.is_x_redundant(f))
            << nl.name() << " seed " << seed << ": " << fault_name(nl, f)
            << " is statically X-redundant but not ID_X-redundant";
      }
    }
  }
}

TEST(StaticXRed, ClassifyMatchesPerFaultRule) {
  const Netlist nl = dead_cone_circuit();
  const StaticXRedAnalysis sa(nl);
  const std::vector<Fault> faults = all_faults(nl);
  const std::vector<FaultStatus> status = sa.classify(faults);
  ASSERT_EQ(status.size(), faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(status[i] == FaultStatus::StaticXRed,
              sa.is_static_x_redundant(faults[i]));
  }
}

TEST(StaticXRed, PruneCollapsedListTransfersAcrossClasses) {
  const Netlist nl = dead_cone_circuit();
  const StaticXRedAnalysis sa(nl);
  const CollapsedFaultList collapsed(nl);
  std::vector<FaultStatus> status(collapsed.size(), FaultStatus::Undetected);
  const std::size_t flagged = prune_static_x_redundant(sa, collapsed, status);
  EXPECT_GT(flagged, 0u);
  std::size_t count = 0;
  for (const FaultStatus s : status) {
    if (s == FaultStatus::StaticXRed) ++count;
  }
  EXPECT_EQ(count, flagged);
  // Size mismatch is an error, not silent corruption.
  std::vector<FaultStatus> bad(collapsed.size() + 1, FaultStatus::Undetected);
  EXPECT_THROW((void)prune_static_x_redundant(sa, collapsed, bad),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Pipeline integration
// ---------------------------------------------------------------------------

void expect_analysis_changes_nothing(const Netlist& nl) {
  const CollapsedFaultList collapsed(nl);
  Rng rng(5);
  const TestSequence seq = random_sequence(nl, 40, rng);

  SimOptions off;
  SimOptions on;
  on.analysis = true;
  const PipelineResult r_off = run_pipeline(nl, collapsed.faults(), seq, off);
  const PipelineResult r_on = run_pipeline(nl, collapsed.faults(), seq, on);

  ASSERT_EQ(r_off.status.size(), r_on.status.size());
  std::size_t static_count = 0;
  std::size_t untestable_count = 0;
  for (std::size_t i = 0; i < r_off.status.size(); ++i) {
    if (r_on.status[i] == FaultStatus::StaticXRed ||
        r_on.status[i] == FaultStatus::StaticUntestable) {
      r_on.status[i] == FaultStatus::StaticXRed ? ++static_count
                                                : ++untestable_count;
      // Statically pruned faults were never detectable: without the
      // analysis they sit in the undetected or X-redundant bucket.
      EXPECT_TRUE(r_off.status[i] == FaultStatus::Undetected ||
                  r_off.status[i] == FaultStatus::XRedundant)
          << fault_name(nl, collapsed.faults()[i]);
    } else {
      // Every other fault: bit-identical verdict and detection frame.
      EXPECT_EQ(r_off.status[i], r_on.status[i])
          << fault_name(nl, collapsed.faults()[i]);
      EXPECT_EQ(r_off.detect_frame[i], r_on.detect_frame[i]);
    }
  }
  EXPECT_EQ(r_on.static_x_redundant, static_count);
  EXPECT_EQ(r_on.static_untestable, untestable_count);
  EXPECT_EQ(r_off.static_x_redundant, 0u);
  EXPECT_EQ(r_off.static_untestable, 0u);
  EXPECT_EQ(r_off.summary().detected_total(), r_on.summary().detected_total());
}

TEST(PipelineAnalysis, CoverageIdenticalOnS27) {
  expect_analysis_changes_nothing(make_s27());
}

TEST(PipelineAnalysis, CoverageIdenticalWithDeadCone) {
  expect_analysis_changes_nothing(dead_cone_circuit());
}

TEST(PipelineAnalysis, CoverageIdenticalWithConstantGate) {
  expect_analysis_changes_nothing(const_gate_circuit());
}

TEST(PipelineAnalysis, SummaryCountsStaticBucket) {
  const std::vector<FaultStatus> status = {
      FaultStatus::DetectedSim3, FaultStatus::StaticXRed,
      FaultStatus::XRedundant, FaultStatus::Undetected,
      FaultStatus::StaticUntestable};
  const CoverageSummary s = CoverageSummary::from_status(status);
  EXPECT_EQ(s.static_x_redundant, 1u);
  EXPECT_EQ(s.x_redundant, 1u);
  EXPECT_EQ(s.static_untestable, 1u);
  EXPECT_NE(s.to_string().find("static X-red"), std::string::npos);
  EXPECT_NE(s.to_string().find("static untestable"), std::string::npos);
  EXPECT_NE(s.to_json().find("\"static_x_redundant\":1"), std::string::npos);
  EXPECT_NE(s.to_json().find("\"static_untestable\":1"), std::string::npos);
}

TEST(PipelineAnalysis, OptionsFingerprintCoversAnalysis) {
  SimOptions a;
  SimOptions b;
  b.analysis = true;
  EXPECT_NE(fingerprint_options(a), fingerprint_options(b));
}

// ---------------------------------------------------------------------------
// Implication engine
// ---------------------------------------------------------------------------

/// Reconvergent pair whose AND is a *learnable* (never structural)
/// constant: c = AND(a, NOT a) == 0 in every frame, provable only by
/// assuming c = 1 and deriving the a/NOT-a conflict. z = AND(b, c) is
/// then constant too, and z's faults on the b pin are blocked by the
/// learned constant. The OR output keeps b itself testable.
Netlist learned_const_circuit() {
  Netlist nl("learned");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex b = nl.add_input("b");
  const NodeIndex na = nl.add_gate(GateType::Not, {a}, "na");
  const NodeIndex c = nl.add_gate(GateType::And, {a, na}, "c");
  const NodeIndex z = nl.add_gate(GateType::And, {b, c}, "z");
  const NodeIndex o = nl.add_gate(GateType::Or, {z, b}, "o");
  nl.mark_output(o);
  nl.finalize();
  return nl;
}

/// Constant AND feeding a two-deep flip-flop chain: c is every-frame
/// constant 0, q settles to 0 from frame 2 on, q2 from frame 3 on.
/// Neither flip-flop output is ever every-frame constant (unknown
/// power-up).
Netlist settled_chain_circuit() {
  Netlist nl("settled");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex na = nl.add_gate(GateType::Not, {a}, "na");
  const NodeIndex c = nl.add_gate(GateType::And, {a, na}, "c");
  const NodeIndex q = nl.add_dff(c, "q");
  const NodeIndex q2 = nl.add_dff(q, "q2");
  const NodeIndex o = nl.add_gate(GateType::Or, {q2, a}, "o");
  nl.mark_output(o);
  nl.finalize();
  return nl;
}

/// Gate g feeds ONLY a flip-flop whose output goes nowhere: g can
/// never influence a primary output in any frame. StaticXRedAnalysis
/// seeds its backward reach from outputs AND flip-flops, so it calls g
/// observable — the implication engine's PO-cone rule is strictly
/// stronger.
Netlist dff_sink_circuit() {
  Netlist nl("dffsink");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex b = nl.add_input("b");
  const NodeIndex g = nl.add_gate(GateType::And, {a, b}, "g");
  (void)nl.add_dff(g, "q");
  const NodeIndex o = nl.add_gate(GateType::Or, {a, b}, "o");
  nl.mark_output(o);
  nl.finalize();
  return nl;
}

TEST(Implication, LearnsReconvergentConstant) {
  const Netlist nl = learned_const_circuit();
  const ImplicationEngine eng(nl);
  const NodeIndex c = nl.find("c");
  const NodeIndex z = nl.find("z");
  // Structural propagation alone cannot see either constant.
  EXPECT_EQ(StaticXRedAnalysis(nl).constant_of(c), ConstVal::Unknown);
  EXPECT_EQ(eng.constants()[c], ConstVal::Zero);
  EXPECT_EQ(eng.constants()[z], ConstVal::Zero);
  EXPECT_EQ(eng.constants()[nl.find("a")], ConstVal::Unknown);
  EXPECT_EQ(eng.constants()[nl.find("o")], ConstVal::Unknown);
  EXPECT_GE(eng.stats().learned_constants, 1u);
  EXPECT_EQ(eng.stats().structural_constants, 0u);
  // Both constants are internal nets, so both are tieable.
  EXPECT_EQ(eng.tied_constant_count(), 2u);
  const std::vector<ConstVal> tied = eng.tied_constants();
  EXPECT_EQ(tied[c], ConstVal::Zero);
  EXPECT_EQ(tied[z], ConstVal::Zero);
  EXPECT_EQ(tied[nl.find("a")], ConstVal::Unknown);
}

TEST(Implication, DirectImplicationQueries) {
  const Netlist nl = learned_const_circuit();
  const ImplicationEngine eng(nl);
  const NodeIndex a = nl.find("a");
  const NodeIndex na = nl.find("na");
  const NodeIndex o = nl.find("o");
  const NodeIndex b = nl.find("b");
  EXPECT_TRUE(eng.implies(a, true, na, false));
  EXPECT_TRUE(eng.implies(a, false, na, true));
  // b = 1 forces o = 1 through the OR; b = 0 forces o = 0 because the
  // other OR input is the constant net z.
  EXPECT_TRUE(eng.implies(b, true, o, true));
  EXPECT_TRUE(eng.implies(b, false, o, false));
  EXPECT_FALSE(eng.implies(o, true, a, true));
  // Assuming a constant net at its constant value contradicts nothing;
  // the opposite assumption is frame-locally impossible.
  const NodeIndex c = nl.find("c");
  EXPECT_FALSE(eng.contradicts(c, false));
  EXPECT_TRUE(eng.contradicts(c, true));
  EXPECT_FALSE(eng.contradicts(a, true));
  EXPECT_FALSE(eng.contradicts(a, false));
}

TEST(Implication, SettledConstantsCrossFlipFlops) {
  const Netlist nl = settled_chain_circuit();
  const ImplicationEngine eng(nl);
  const NodeIndex c = nl.find("c");
  const NodeIndex q = nl.find("q");
  const NodeIndex q2 = nl.find("q2");
  // Every-frame constants never include flip-flop outputs (unknown
  // power-up state), so neither q nor q2 may ever be tied.
  EXPECT_EQ(eng.constants()[c], ConstVal::Zero);
  EXPECT_EQ(eng.constants()[q], ConstVal::Unknown);
  EXPECT_EQ(eng.constants()[q2], ConstVal::Unknown);
  EXPECT_EQ(eng.tied_constants()[q], ConstVal::Unknown);
  // But both settle, one frame later per flip-flop crossing.
  EXPECT_EQ(eng.settled()[c].value, ConstVal::Zero);
  EXPECT_EQ(eng.settled()[c].from_frame, 1u);
  EXPECT_EQ(eng.settled()[q].value, ConstVal::Zero);
  EXPECT_EQ(eng.settled()[q].from_frame, 2u);
  EXPECT_EQ(eng.settled()[q2].value, ConstVal::Zero);
  EXPECT_EQ(eng.settled()[q2].from_frame, 3u);
  EXPECT_EQ(eng.settled()[nl.find("o")].value, ConstVal::Unknown);
  EXPECT_EQ(eng.stats().settled_constants, 2u);
}

TEST(Implication, ActivationConflictFaultsAreUntestable) {
  const Netlist nl = learned_const_circuit();
  const ImplicationEngine eng(nl);
  const NodeIndex z = nl.find("z");
  // z is constant 0 every frame: s-a-0 can never be activated...
  EXPECT_TRUE(eng.is_static_untestable(Fault{FaultSite{z, kStemPin}, false}));
  // ...but s-a-1 can (activation z = 0 always holds) and propagates
  // through the OR whenever b = 0.
  EXPECT_FALSE(eng.is_static_untestable(Fault{FaultSite{z, kStemPin}, true}));
  // StaticXRedAnalysis misses the s-a-0 fault — the constant is
  // invisible to structural propagation.
  EXPECT_FALSE(
      StaticXRedAnalysis(nl).is_static_x_redundant(
          Fault{FaultSite{z, kStemPin}, false}));
}

TEST(Implication, ConstantBlockedFaultsAreUntestable) {
  const Netlist nl = learned_const_circuit();
  const ImplicationEngine eng(nl);
  const NodeIndex z = nl.find("z");
  // z.in0 is the b pin of z = AND(b, c): whatever the faulty value of
  // the pin, the learned constant 0 on the side pin c pins z's output
  // to 0 in both machines — the divergence is blocked at z.
  EXPECT_TRUE(eng.is_static_untestable(Fault{FaultSite{z, 0}, true}));
  EXPECT_TRUE(eng.is_static_untestable(Fault{FaultSite{z, 0}, false}));
  // b itself (stem) drives the OR too and stays fully testable.
  const NodeIndex b = nl.find("b");
  EXPECT_FALSE(eng.is_static_untestable(Fault{FaultSite{b, kStemPin}, false}));
  EXPECT_FALSE(eng.is_static_untestable(Fault{FaultSite{b, kStemPin}, true}));
}

TEST(Implication, PoConeRuleIsStrongerThanStaticXRed) {
  const Netlist nl = dff_sink_circuit();
  const ImplicationEngine eng(nl);
  const StaticXRedAnalysis sa(nl);
  const NodeIndex g = nl.find("g");
  // The structural pass seeds observability from flip-flops and calls
  // g observable; no frame of any sequence can move g's value to a
  // primary output, and the implication engine proves it.
  EXPECT_TRUE(sa.observable(g));
  EXPECT_FALSE(sa.is_static_x_redundant(Fault{FaultSite{g, kStemPin}, false}));
  EXPECT_TRUE(eng.is_static_untestable(Fault{FaultSite{g, kStemPin}, false}));
  EXPECT_TRUE(eng.is_static_untestable(Fault{FaultSite{g, kStemPin}, true}));
  // The inputs fan out to the live OR as well and remain testable.
  const NodeIndex a = nl.find("a");
  EXPECT_FALSE(eng.is_static_untestable(Fault{FaultSite{a, kStemPin}, true}));
}

TEST(Implication, ClassifyUpgradesOnlyUndetected) {
  const Netlist nl = learned_const_circuit();
  const ImplicationEngine eng(nl);
  const std::vector<Fault> faults = all_faults(nl);
  std::vector<FaultStatus> status(faults.size(), FaultStatus::Undetected);
  // Pre-mark one untestable fault as StaticXRed: classify must leave
  // the stronger verdict alone and not double-count it.
  const SiteTable sites(nl);
  std::size_t pre_marked = sites.fault_count();
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (eng.is_static_untestable(faults[i]) &&
        pre_marked == sites.fault_count()) {
      status[i] = FaultStatus::StaticXRed;
      pre_marked = i;
    }
  }
  ASSERT_NE(pre_marked, sites.fault_count());
  const std::size_t upgraded = eng.classify(faults, status);
  EXPECT_GT(upgraded, 0u);
  EXPECT_EQ(status[pre_marked], FaultStatus::StaticXRed);
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const bool untestable = eng.is_static_untestable(faults[i]);
    if (status[i] == FaultStatus::StaticUntestable) {
      ++flagged;
      EXPECT_TRUE(untestable);
    }
  }
  EXPECT_EQ(flagged, upgraded);
  // Size mismatch is an error, not silent corruption.
  std::vector<FaultStatus> bad(faults.size() + 1, FaultStatus::Undetected);
  EXPECT_THROW((void)eng.classify(faults, bad), std::invalid_argument);
}

TEST(Implication, BenchmarkConstantsAreNeverFalse) {
  // s27 carries no constant nets and learning must not invent any.
  // The synthetic controllers (s298, s344) DO contain genuinely
  // constant reconvergent nets; every flagged constant is checked
  // against concrete two-valued simulation over random binary
  // power-up states — a false constant would show up immediately.
  {
    const ImplicationEngine eng(make_benchmark("s27"));
    EXPECT_EQ(eng.tied_constant_count(), 0u);
    EXPECT_EQ(eng.stats().structural_constants, 0u);
    EXPECT_EQ(eng.stats().learned_constants, 0u);
    EXPECT_GT(eng.stats().direct_implications, 0u);
  }
  std::mt19937 rng(97);
  for (const char* name : {"s298", "s344"}) {
    const Netlist nl = make_benchmark(name);
    const ImplicationEngine eng(nl);
    EXPECT_GT(eng.stats().direct_implications, 0u) << name;
    const std::vector<ConstVal>& consts = eng.constants();
    for (int trial = 0; trial < 20; ++trial) {
      GoodSim3 sim(nl);
      std::vector<Val3> state(nl.dffs().size());
      for (Val3& v : state) v = (rng() & 1u) != 0 ? Val3::One : Val3::Zero;
      sim.set_state(std::move(state));
      for (unsigned frame = 0; frame < 20; ++frame) {
        std::vector<Val3> in(nl.inputs().size());
        for (Val3& v : in) v = (rng() & 1u) != 0 ? Val3::One : Val3::Zero;
        sim.step(in);
        for (NodeIndex n = 0; n < consts.size(); ++n) {
          if (consts[n] == ConstVal::Unknown) continue;
          const Val3 want =
              consts[n] == ConstVal::One ? Val3::One : Val3::Zero;
          ASSERT_EQ(sim.values()[n], want)
              << name << " net " << nl.gate(n).name << " frame " << frame;
        }
      }
    }
  }
}

// The headline soundness property: a StaticUntestable verdict means NO
// sequence detects the fault — neither the three-valued engine nor the
// symbolic MOT pipeline may ever report it detected, on any seed.
TEST(Implication, UntestableNeverDetectedProperty) {
  const Netlist circuits[] = {make_s27(), make_benchmark("s298"),
                              make_benchmark("s344"), learned_const_circuit(),
                              settled_chain_circuit(), dff_sink_circuit()};
  bool any_flagged = false;
  for (const Netlist& nl : circuits) {
    const ImplicationEngine eng(nl);
    const CollapsedFaultList collapsed(nl);
    std::vector<std::size_t> flagged;
    for (std::size_t i = 0; i < collapsed.size(); ++i) {
      if (eng.is_static_untestable(collapsed.faults()[i])) flagged.push_back(i);
    }
    if (flagged.empty()) continue;
    any_flagged = true;
    for (const std::uint32_t seed : {21u, 22u}) {
      Rng rng(seed);
      const TestSequence seq = random_sequence(nl, 50, rng);
      SimOptions opts;  // analysis off: the engines must agree on their own
      opts.seed = seed;
      const PipelineResult r =
          run_pipeline(nl, collapsed.faults(), seq, opts);
      for (const std::size_t i : flagged) {
        EXPECT_FALSE(is_detected(r.status[i]))
            << nl.name() << " seed " << seed << ": "
            << fault_name(nl, collapsed.faults()[i])
            << " flagged untestable but detected";
      }
    }
  }
  EXPECT_TRUE(any_flagged);  // the property must not pass vacuously
}

TEST(Implication, PipelinePrunesAndStaysIdentical) {
  expect_analysis_changes_nothing(learned_const_circuit());
  expect_analysis_changes_nothing(settled_chain_circuit());
  expect_analysis_changes_nothing(dff_sink_circuit());
}

TEST(Implication, PruneCollapsedListTransfersAcrossClasses) {
  const Netlist nl = learned_const_circuit();
  const ImplicationEngine eng(nl);
  const CollapsedFaultList collapsed(nl);
  std::vector<FaultStatus> status(collapsed.size(), FaultStatus::Undetected);
  const std::size_t flagged = prune_static_untestable(eng, collapsed, status);
  EXPECT_GT(flagged, 0u);
  std::size_t count = 0;
  for (const FaultStatus s : status) {
    if (s == FaultStatus::StaticUntestable) ++count;
  }
  EXPECT_EQ(count, flagged);
  std::vector<FaultStatus> bad(collapsed.size() + 1, FaultStatus::Undetected);
  EXPECT_THROW((void)prune_static_untestable(eng, collapsed, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace motsim
