// The static-analysis subsystem: diagnostics framework, structural
// lint, SCOAP testability and static X-redundancy — including the
// soundness contract (static verdicts are a subset of every
// per-sequence ID_X-red verdict and never change detection results).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/lint.h"
#include "analysis/static_xred.h"
#include "analysis/testability.h"
#include "bench_data/registry.h"
#include "bench_data/s27.h"
#include "circuit/netlist.h"
#include "circuit/stats.h"
#include "core/options.h"
#include "core/pipeline.h"
#include "core/xred.h"
#include "faults/collapse.h"
#include "faults/fault_list.h"
#include "faults/report.h"
#include "sim3/fault_sim3.h"
#include "store/fingerprint.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace motsim {
namespace {

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

/// AND/OR core with one flip-flop and one PO, plus a dead inverter
/// cone ("dead" has no sink): its faults are statically X-redundant.
Netlist dead_cone_circuit() {
  Netlist nl("deadcone");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex b = nl.add_input("b");
  const NodeIndex q = nl.add_dff(kNoNode, "q");
  const NodeIndex g = nl.add_gate(GateType::And, {a, b}, "g");
  nl.set_fanins(q, {g});
  const NodeIndex o = nl.add_gate(GateType::Or, {g, q}, "o");
  (void)nl.add_gate(GateType::Not, {b}, "dead");
  nl.mark_output(o);
  nl.finalize();
  return nl;
}

/// AND gate with a constant-0 side input: "g" is structurally
/// constant 0, so its s-a-0 faults can never be activated.
Netlist const_gate_circuit() {
  Netlist nl("constand");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex z = nl.add_gate(GateType::Const0, {}, "zero");
  const NodeIndex g = nl.add_gate(GateType::And, {a, z}, "g");
  const NodeIndex o = nl.add_gate(GateType::Or, {g, a}, "o");
  nl.mark_output(o);
  nl.finalize();
  return nl;
}

// ---------------------------------------------------------------------------
// DiagnosticReport
// ---------------------------------------------------------------------------

TEST(Diagnostics, ExitCodeTracksWorstSeverity) {
  DiagnosticReport r("c");
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.exit_code(), 0);
  r.add(Diagnostic{"x.note", Severity::Note, kNoNode, "", "fyi"});
  EXPECT_EQ(r.exit_code(), 0);  // notes never fail a run
  r.add(Diagnostic{"x.warn", Severity::Warning, 3, "n3", "careful"});
  EXPECT_EQ(r.exit_code(), 1);
  r.add(Diagnostic{"x.err", Severity::Error, 4, "n4", "broken"});
  EXPECT_EQ(r.exit_code(), 2);
  EXPECT_FALSE(r.clean());
  EXPECT_EQ(r.count(Severity::Note), 1u);
  EXPECT_EQ(r.count(Severity::Warning), 1u);
  EXPECT_EQ(r.count(Severity::Error), 1u);
  EXPECT_TRUE(r.has("x.warn"));
  EXPECT_FALSE(r.has("x.gone"));
  EXPECT_EQ(r.nodes_with("x.err"), std::vector<NodeIndex>{4});
}

TEST(Diagnostics, TextRenderingNamesEverything) {
  DiagnosticReport r("tiny");
  r.add(Diagnostic{"lint.dangling-net", Severity::Warning, 2, "n2",
                   "net has no sink"});
  const std::string text = r.to_text();
  EXPECT_NE(text.find("tiny"), std::string::npos);
  EXPECT_NE(text.find("warning[lint.dangling-net]"), std::string::npos);
  EXPECT_NE(text.find("n2"), std::string::npos);
  EXPECT_NE(text.find("1 warning"), std::string::npos);
}

TEST(Diagnostics, JsonRoundTripIsIdentity) {
  DiagnosticReport r("round \"trip\"\ncircuit");
  r.add(Diagnostic{"x.a", Severity::Note, kNoNode, "", "plain"});
  r.add(Diagnostic{"x.b", Severity::Warning, 7, "weird \"name\"\t",
                   "escapes: \\ \" \n \r \t end"});
  r.add(Diagnostic{"x.c", Severity::Error, 0, "n0", "last"});
  const auto parsed = DiagnosticReport::from_json(r.to_json());
  ASSERT_TRUE(parsed.has_value()) << parsed.error();
  EXPECT_EQ(parsed.value(), r);
}

TEST(Diagnostics, FromJsonRejectsGarbage) {
  EXPECT_FALSE(DiagnosticReport::from_json("").has_value());
  EXPECT_FALSE(DiagnosticReport::from_json("[1,2]").has_value());
  EXPECT_FALSE(
      DiagnosticReport::from_json("{\"circuit\": \"x\"").has_value());
}

// ---------------------------------------------------------------------------
// Structural lint
// ---------------------------------------------------------------------------

TEST(Lint, RegistryCircuitsAreClean) {
  for (const BenchmarkInfo& info : benchmark_roster()) {
    if (info.spec.target_gates > 3000) continue;  // keep the test fast
    const Netlist nl = make_benchmark(info);
    const DiagnosticReport report = run_lint(nl);
    EXPECT_TRUE(report.clean())
        << info.spec.name << ":\n"
        << report.to_text();
  }
}

TEST(Lint, CombinationalCycleIsAnError) {
  // finalize() would throw on this circuit — lint must diagnose it
  // unfinalized (that is the point of the standalone pass).
  Netlist nl("cyc");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex g1 = nl.add_gate(GateType::And, {}, "g1");
  const NodeIndex g2 = nl.add_gate(GateType::Or, {g1, a}, "g2");
  nl.set_fanins(g1, {g2, a});
  nl.mark_output(g2);
  const DiagnosticReport report = run_lint(nl);
  EXPECT_TRUE(report.has("lint.comb-cycle"));
  EXPECT_EQ(report.exit_code(), 2);
  bool found = false;
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.id != "lint.comb-cycle") continue;
    found = true;
    EXPECT_NE(d.message.find("combinational cycle:"), std::string::npos);
    EXPECT_NE(d.message.find("g1"), std::string::npos);
    EXPECT_NE(d.message.find("g2"), std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST(Lint, UndrivenPinIsAnError) {
  Netlist nl("undriven");
  (void)nl.add_input("a");
  const NodeIndex g = nl.add_gate(GateType::And, {}, "g");
  const NodeIndex q = nl.add_dff(kNoNode, "q");
  nl.mark_output(g);
  const DiagnosticReport report = run_lint(nl);
  EXPECT_EQ(report.exit_code(), 2);
  const std::vector<NodeIndex> nodes = report.nodes_with("lint.undriven-pin");
  EXPECT_NE(std::find(nodes.begin(), nodes.end(), g), nodes.end());
  EXPECT_NE(std::find(nodes.begin(), nodes.end(), q), nodes.end());
}

TEST(Lint, FloatingInputIsAWarning) {
  Netlist nl("floating");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex f = nl.add_input("floater");
  const NodeIndex g = nl.add_gate(GateType::Not, {a}, "g");
  nl.mark_output(g);
  nl.finalize();
  const DiagnosticReport report = run_lint(nl);
  EXPECT_EQ(report.exit_code(), 1);
  EXPECT_EQ(report.nodes_with("lint.floating-input"),
            std::vector<NodeIndex>{f});
  EXPECT_FALSE(report.has("lint.dangling-net"));
}

TEST(Lint, DeadConeIsDanglingAndUnobservable) {
  const Netlist nl = dead_cone_circuit();
  const DiagnosticReport report = run_lint(nl);
  const NodeIndex dead = nl.find("dead");
  EXPECT_EQ(report.nodes_with("lint.dangling-net"),
            std::vector<NodeIndex>{dead});
  EXPECT_EQ(report.nodes_with("lint.unobservable"),
            std::vector<NodeIndex>{dead});
  EXPECT_EQ(report.exit_code(), 1);
}

TEST(Lint, DuplicateXorFaninIsAWarning) {
  Netlist nl("dupxor");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex g = nl.add_gate(GateType::Xor, {a, a}, "g");
  nl.mark_output(g);
  nl.finalize();
  const DiagnosticReport report = run_lint(nl);
  EXPECT_EQ(report.nodes_with("lint.duplicate-fanin"),
            std::vector<NodeIndex>{g});
  bool parity_message = false;
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.id == "lint.duplicate-fanin" &&
        d.message.find("parity") != std::string::npos) {
      parity_message = true;
    }
  }
  EXPECT_TRUE(parity_message);
}

TEST(Lint, ConstantGateIsAWarning) {
  const Netlist nl = const_gate_circuit();
  const DiagnosticReport report = run_lint(nl);
  EXPECT_EQ(report.nodes_with("lint.const-gate"),
            std::vector<NodeIndex>{nl.find("g")});
  EXPECT_EQ(report.exit_code(), 1);
}

// ---------------------------------------------------------------------------
// SCOAP testability
// ---------------------------------------------------------------------------

TEST(Testability, HandComputedAndGate) {
  Netlist nl("and2");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex b = nl.add_input("b");
  const NodeIndex g = nl.add_gate(GateType::And, {a, b}, "g");
  nl.mark_output(g);
  nl.finalize();
  const SiteTable sites(nl);
  const TestabilityScores s = compute_testability(nl, sites);
  EXPECT_EQ(s.cc0[a], 1u);
  EXPECT_EQ(s.cc1[a], 1u);
  EXPECT_EQ(s.cc0[g], 2u);  // min(CC0(a), CC0(b)) + 1
  EXPECT_EQ(s.cc1[g], 3u);  // CC1(a) + CC1(b) + 1
  EXPECT_EQ(s.co[sites.stem_site(g)], 0u);  // primary output
  // Observing `a` needs the path through g open: CO(g) + CC1(b) + 1.
  EXPECT_EQ(s.co[sites.stem_site(a)], 2u);
  EXPECT_EQ(s.seq_depth[g], 0u);
  // Fault a s-a-0: activate with a=1 (CC1=1) + observe (CO=2).
  const std::uint32_t d =
      s.fault_difficulty(sites, nl, Fault{FaultSite{a, kStemPin}, false});
  EXPECT_EQ(d, 3u);
}

TEST(Testability, FlipFlopAddsControllabilityAndDepth) {
  Netlist nl("ffchain");
  const NodeIndex in = nl.add_input("in");
  const NodeIndex n1 = nl.add_gate(GateType::Not, {in}, "n1");
  const NodeIndex q = nl.add_dff(n1, "q");
  const NodeIndex o = nl.add_gate(GateType::Buf, {q}, "o");
  nl.mark_output(o);
  nl.finalize();
  const SiteTable sites(nl);
  const TestabilityScores s = compute_testability(nl, sites);
  EXPECT_EQ(s.cc0[n1], 2u);  // CC1(in) + 1
  EXPECT_EQ(s.cc0[q], 3u);   // CC0(n1) + 1: the flip-flop costs a frame
  EXPECT_EQ(s.seq_depth[q], 0u);
  EXPECT_EQ(s.seq_depth[n1], 1u);  // one flip-flop crossing to the PO
  EXPECT_EQ(s.seq_depth[in], 1u);
}

TEST(Testability, UnobservableConeSaturates) {
  const Netlist nl = dead_cone_circuit();
  const SiteTable sites(nl);
  const TestabilityScores s = compute_testability(nl, sites);
  const NodeIndex dead = nl.find("dead");
  EXPECT_EQ(s.co[sites.stem_site(dead)], kScoapInf);
  EXPECT_EQ(s.seq_depth[dead], kScoapInf);
  const std::uint32_t d = s.fault_difficulty(
      sites, nl, Fault{FaultSite{dead, kStemPin}, false});
  EXPECT_EQ(d, kScoapInf);
  const std::string summary = testability_summary(nl, s);
  EXPECT_NE(summary.find("scoap:"), std::string::npos);
  EXPECT_NE(summary.find("blocked sites"), std::string::npos);
}

// s27's G13/G12/G7 loop can only be entered by the flip-flop's
// power-up value (G13=0 needs G12=1 needs G7=0 needs G13=0 one frame
// earlier), so the corresponding controllabilities saturate on a
// circuit that lints perfectly clean — SCOAP infinity means "never
// guaranteed from unknown power-up", not "structurally absent".
TEST(Testability, SequentialLoopWithoutEntrySaturates) {
  const Netlist nl = make_s27();
  const SiteTable sites(nl);
  const TestabilityScores s = compute_testability(nl, sites);
  EXPECT_TRUE(run_lint(nl).clean());
  EXPECT_EQ(s.cc0[nl.find("G13")], kScoapInf);
  EXPECT_EQ(s.cc1[nl.find("G12")], kScoapInf);
  EXPECT_EQ(s.cc0[nl.find("G7")], kScoapInf);
  // Observing G1 or G2 needs those very values as side inputs.
  EXPECT_EQ(s.co[sites.stem_site(nl.find("G1"))], kScoapInf);
  EXPECT_EQ(s.co[sites.stem_site(nl.find("G2"))], kScoapInf);
  std::size_t blocked = 0;
  for (std::uint32_t co : s.co) blocked += co == kScoapInf ? 1 : 0;
  EXPECT_EQ(blocked, 4u);
  std::size_t infinite = 0;
  for (const Fault& f : all_faults(nl)) {
    infinite += s.fault_difficulty(sites, nl, f) == kScoapInf ? 1 : 0;
  }
  EXPECT_EQ(infinite, 15u);
}

// Infinite difficulty is a sound three-valued untestability verdict:
// an X01 detection establishes the activation value and every side
// input of the sensitized path from the all-X state, which forces a
// finite score derivation. So no infinite-score fault may ever be
// detected by FaultSim3, whatever the sequence.
TEST(Testability, InfiniteDifficultyFaultsAreSim3Undetectable) {
  for (const char* name : {"s27", "s208.1", "s298"}) {
    const Netlist nl = make_benchmark(name);
    const SiteTable sites(nl);
    const TestabilityScores s = compute_testability(nl, sites);
    const std::vector<Fault> faults = all_faults(nl);
    for (std::uint32_t seed : {11u, 12u}) {
      Rng rng(seed);
      const TestSequence seq = random_sequence(nl, 100, rng);
      FaultSim3 sim(nl, faults);
      const FaultSim3Result r = sim.run(seq);
      for (std::size_t i = 0; i < faults.size(); ++i) {
        if (s.fault_difficulty(sites, nl, faults[i]) == kScoapInf) {
          EXPECT_NE(r.status[i], FaultStatus::DetectedSim3)
              << name << " seed " << seed << ": "
              << fault_name(nl, faults[i]);
        }
      }
    }
  }
}

TEST(Testability, AttachFillsCircuitStats) {
  const Netlist nl = make_s27();
  const SiteTable sites(nl);
  const TestabilityScores s = compute_testability(nl, sites);
  CircuitStats stats = CircuitStats::of(nl);
  EXPECT_FALSE(stats.has_scoap);
  attach_testability(stats, nl, s);
  EXPECT_TRUE(stats.has_scoap);
  EXPECT_GT(stats.scoap_max_cc, 0u);
  EXPECT_NE(stats.to_string().find("scoap:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Static X-redundancy
// ---------------------------------------------------------------------------

TEST(StaticXRed, DeadConeFaultsAreFlagged) {
  const Netlist nl = dead_cone_circuit();
  const StaticXRedAnalysis sa(nl);
  const NodeIndex dead = nl.find("dead");
  EXPECT_FALSE(sa.observable(dead));
  EXPECT_TRUE(sa.is_static_x_redundant(Fault{FaultSite{dead, kStemPin}, false}));
  EXPECT_TRUE(sa.is_static_x_redundant(Fault{FaultSite{dead, 0}, true}));
  // Everything outside the dead cone is live.
  EXPECT_FALSE(
      sa.is_static_x_redundant(Fault{FaultSite{nl.find("g"), kStemPin}, true}));
  const std::vector<Fault> faults = all_faults(nl);
  EXPECT_EQ(sa.count(faults), 4u);  // dead stem + dead.in0, both polarities
}

TEST(StaticXRed, ConstantSiteFaultsAreFlagged) {
  const Netlist nl = const_gate_circuit();
  const StaticXRedAnalysis sa(nl);
  const NodeIndex g = nl.find("g");
  const NodeIndex o = nl.find("o");
  EXPECT_EQ(sa.constant_of(g), ConstVal::Zero);
  EXPECT_EQ(sa.constant_of(o), ConstVal::Unknown);
  // g is constant 0: s-a-0 can never be activated, s-a-1 can.
  EXPECT_TRUE(sa.is_static_x_redundant(Fault{FaultSite{g, kStemPin}, false}));
  EXPECT_FALSE(sa.is_static_x_redundant(Fault{FaultSite{g, kStemPin}, true}));
  // The branch o.in0 sees the same constant driver.
  EXPECT_TRUE(sa.is_static_x_redundant(Fault{FaultSite{o, 0}, false}));
  EXPECT_FALSE(sa.is_static_x_redundant(Fault{FaultSite{o, 0}, true}));
}

TEST(StaticXRed, SubsetOfEveryPerSequenceIdXRed) {
  // The soundness contract: for every sequence, a statically flagged
  // fault is also flagged by ID_X-red (docs/ANALYSIS.md).
  const Netlist circuits[] = {make_s27(), dead_cone_circuit(),
                              const_gate_circuit(), make_benchmark("s298")};
  for (const Netlist& nl : circuits) {
    const StaticXRedAnalysis sa(nl);
    const std::vector<Fault> faults = all_faults(nl);
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      Rng rng(seed);
      const TestSequence seq =
          random_sequence(nl, 5 + 15 * static_cast<std::size_t>(seed), rng);
      const XRedResult xr = run_id_x_red(nl, seq);
      for (const Fault& f : faults) {
        if (!sa.is_static_x_redundant(f)) continue;
        EXPECT_TRUE(xr.is_x_redundant(f))
            << nl.name() << " seed " << seed << ": " << fault_name(nl, f)
            << " is statically X-redundant but not ID_X-redundant";
      }
    }
  }
}

TEST(StaticXRed, ClassifyMatchesPerFaultRule) {
  const Netlist nl = dead_cone_circuit();
  const StaticXRedAnalysis sa(nl);
  const std::vector<Fault> faults = all_faults(nl);
  const std::vector<FaultStatus> status = sa.classify(faults);
  ASSERT_EQ(status.size(), faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(status[i] == FaultStatus::StaticXRed,
              sa.is_static_x_redundant(faults[i]));
  }
}

TEST(StaticXRed, PruneCollapsedListTransfersAcrossClasses) {
  const Netlist nl = dead_cone_circuit();
  const StaticXRedAnalysis sa(nl);
  const CollapsedFaultList collapsed(nl);
  std::vector<FaultStatus> status(collapsed.size(), FaultStatus::Undetected);
  const std::size_t flagged = prune_static_x_redundant(sa, collapsed, status);
  EXPECT_GT(flagged, 0u);
  std::size_t count = 0;
  for (const FaultStatus s : status) {
    if (s == FaultStatus::StaticXRed) ++count;
  }
  EXPECT_EQ(count, flagged);
  // Size mismatch is an error, not silent corruption.
  std::vector<FaultStatus> bad(collapsed.size() + 1, FaultStatus::Undetected);
  EXPECT_THROW((void)prune_static_x_redundant(sa, collapsed, bad),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Pipeline integration
// ---------------------------------------------------------------------------

void expect_analysis_changes_nothing(const Netlist& nl) {
  const CollapsedFaultList collapsed(nl);
  Rng rng(5);
  const TestSequence seq = random_sequence(nl, 40, rng);

  SimOptions off;
  SimOptions on;
  on.analysis = true;
  const PipelineResult r_off = run_pipeline(nl, collapsed.faults(), seq, off);
  const PipelineResult r_on = run_pipeline(nl, collapsed.faults(), seq, on);

  ASSERT_EQ(r_off.status.size(), r_on.status.size());
  std::size_t static_count = 0;
  for (std::size_t i = 0; i < r_off.status.size(); ++i) {
    if (r_on.status[i] == FaultStatus::StaticXRed) {
      ++static_count;
      // Statically pruned faults were never detectable: without the
      // analysis they sit in the undetected or X-redundant bucket.
      EXPECT_TRUE(r_off.status[i] == FaultStatus::Undetected ||
                  r_off.status[i] == FaultStatus::XRedundant)
          << fault_name(nl, collapsed.faults()[i]);
    } else {
      // Every other fault: bit-identical verdict and detection frame.
      EXPECT_EQ(r_off.status[i], r_on.status[i])
          << fault_name(nl, collapsed.faults()[i]);
      EXPECT_EQ(r_off.detect_frame[i], r_on.detect_frame[i]);
    }
  }
  EXPECT_EQ(r_on.static_x_redundant, static_count);
  EXPECT_EQ(r_off.static_x_redundant, 0u);
  EXPECT_EQ(r_off.summary().detected_total(), r_on.summary().detected_total());
}

TEST(PipelineAnalysis, CoverageIdenticalOnS27) {
  expect_analysis_changes_nothing(make_s27());
}

TEST(PipelineAnalysis, CoverageIdenticalWithDeadCone) {
  expect_analysis_changes_nothing(dead_cone_circuit());
}

TEST(PipelineAnalysis, CoverageIdenticalWithConstantGate) {
  expect_analysis_changes_nothing(const_gate_circuit());
}

TEST(PipelineAnalysis, SummaryCountsStaticBucket) {
  const std::vector<FaultStatus> status = {
      FaultStatus::DetectedSim3, FaultStatus::StaticXRed,
      FaultStatus::XRedundant, FaultStatus::Undetected};
  const CoverageSummary s = CoverageSummary::from_status(status);
  EXPECT_EQ(s.static_x_redundant, 1u);
  EXPECT_EQ(s.x_redundant, 1u);
  EXPECT_NE(s.to_string().find("static X-red"), std::string::npos);
  EXPECT_NE(s.to_json().find("\"static_x_redundant\":1"), std::string::npos);
}

TEST(PipelineAnalysis, OptionsFingerprintCoversAnalysis) {
  SimOptions a;
  SimOptions b;
  b.analysis = true;
  EXPECT_NE(fingerprint_options(a), fingerprint_options(b));
}

}  // namespace
}  // namespace motsim
