// The single-pass multi-strategy simulator must agree EXACTLY (status
// and detection frames) with three dedicated runs.

#include <gtest/gtest.h>

#include "bench_data/registry.h"
#include "bench_data/s27.h"
#include "core/sym_fault_sim.h"
#include "faults/collapse.h"
#include "reference.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace motsim {
namespace {

using testing::small_random_circuit;

void expect_agrees_with_dedicated_runs(const Netlist& nl,
                                       const TestSequence& seq) {
  const CollapsedFaultList c(nl);
  const MultiStrategyResult multi =
      run_all_strategies(nl, c.faults(), seq);

  const Strategy strategies[] = {Strategy::Sot, Strategy::Rmot,
                                 Strategy::Mot};
  const SymFaultSimResult* multi_results[] = {&multi.sot, &multi.rmot,
                                              &multi.mot};
  for (int k = 0; k < 3; ++k) {
    SymFaultSim dedicated(nl, c.faults(), strategies[k]);
    const SymFaultSimResult r = dedicated.run(seq);
    EXPECT_EQ(multi_results[k]->detected_count, r.detected_count)
        << to_cstring(strategies[k]) << " on " << nl.name();
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_EQ(is_detected(multi_results[k]->status[i]),
                is_detected(r.status[i]))
          << to_cstring(strategies[k]) << " "
          << fault_name(nl, c.faults()[i]);
      EXPECT_EQ(multi_results[k]->detect_frame[i], r.detect_frame[i])
          << to_cstring(strategies[k]) << " "
          << fault_name(nl, c.faults()[i]);
    }
  }
}

TEST(MultiStrategy, AgreesOnS27) {
  const Netlist nl = make_s27();
  Rng rng(1);
  expect_agrees_with_dedicated_runs(nl, random_sequence(nl, 40, rng));
}

class MultiStrategyProp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiStrategyProp, AgreesOnRandomCircuits) {
  const Netlist nl = small_random_circuit(GetParam());
  Rng rng(GetParam() * 19 + 7);
  expect_agrees_with_dedicated_runs(nl, random_sequence(nl, 10, rng));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiStrategyProp,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(MultiStrategy, AgreesOnRosterCounterAndTwinPaths) {
  Rng rng(5);
  for (const char* name : {"s208.1", "s510"}) {
    const Netlist nl = make_benchmark(name);
    expect_agrees_with_dedicated_runs(nl, random_sequence(nl, 30, rng));
  }
}

TEST(MultiStrategy, HierarchyHoldsInsideOnePass) {
  const Netlist nl = make_benchmark("s298");
  const CollapsedFaultList c(nl);
  Rng rng(9);
  const MultiStrategyResult r =
      run_all_strategies(nl, c.faults(), random_sequence(nl, 40, rng));
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (is_detected(r.sot.status[i])) {
      EXPECT_TRUE(is_detected(r.rmot.status[i]));
    }
    if (is_detected(r.rmot.status[i])) {
      EXPECT_TRUE(is_detected(r.mot.status[i]));
    }
  }
}

}  // namespace
}  // namespace motsim
