#include <gtest/gtest.h>

#include "bdd/bdd.h"

namespace motsim::bdd {
namespace {

TEST(BddBasic, TerminalsAreDistinctConstants) {
  BddManager mgr;
  const Bdd zero = mgr.zero();
  const Bdd one = mgr.one();
  EXPECT_TRUE(zero.is_zero());
  EXPECT_TRUE(one.is_one());
  EXPECT_TRUE(zero.is_const());
  EXPECT_TRUE(one.is_const());
  EXPECT_NE(zero, one);
  EXPECT_EQ(mgr.constant(false), zero);
  EXPECT_EQ(mgr.constant(true), one);
}

TEST(BddBasic, NullHandle) {
  Bdd b;
  EXPECT_TRUE(b.is_null());
  EXPECT_FALSE(b.is_zero());
  EXPECT_FALSE(b.is_one());
  EXPECT_EQ(b.manager(), nullptr);
}

TEST(BddBasic, VariablesAreCanonical) {
  BddManager mgr;
  const Bdd x0 = mgr.var(0);
  const Bdd x0_again = mgr.var(0);
  EXPECT_EQ(x0, x0_again);
  EXPECT_EQ(mgr.live_node_count(), 1u);  // one shared node
  EXPECT_EQ(x0.top_var(), 0u);
  EXPECT_TRUE(x0.high().is_one());
  EXPECT_TRUE(x0.low().is_zero());
}

TEST(BddBasic, NegatedVariable) {
  BddManager mgr;
  const Bdd nx = mgr.nvar(3);
  EXPECT_EQ(nx.top_var(), 3u);
  EXPECT_TRUE(nx.high().is_zero());
  EXPECT_TRUE(nx.low().is_one());
  EXPECT_EQ(nx, !mgr.var(3));
}

TEST(BddBasic, VarCountTracksCreation) {
  BddManager mgr;
  EXPECT_EQ(mgr.var_count(), 0u);
  (void)mgr.var(4);
  EXPECT_EQ(mgr.var_count(), 5u);
  mgr.ensure_vars(10);
  EXPECT_EQ(mgr.var_count(), 10u);
  mgr.ensure_vars(3);  // never shrinks
  EXPECT_EQ(mgr.var_count(), 10u);
}

TEST(BddBasic, ReductionRuleMergesEqualChildren) {
  BddManager mgr;
  const Bdd x = mgr.var(0);
  // x | !x == 1 must collapse to the terminal, creating no new node.
  const Bdd tauto = x | !x;
  EXPECT_TRUE(tauto.is_one());
  const Bdd contra = x & !x;
  EXPECT_TRUE(contra.is_zero());
}

TEST(BddBasic, StructuralSharingAcrossExpressions) {
  BddManager mgr;
  const Bdd a = mgr.var(0), b = mgr.var(1);
  const Bdd f = a & b;
  const Bdd g = b & a;
  EXPECT_EQ(f, g);  // canonicity: same function, same node
}

TEST(BddBasic, EvalWalksTheGraph) {
  BddManager mgr;
  const Bdd a = mgr.var(0), b = mgr.var(1), c = mgr.var(2);
  const Bdd f = (a & b) | c;
  EXPECT_FALSE(f.eval({false, false, false}));
  EXPECT_TRUE(f.eval({true, true, false}));
  EXPECT_TRUE(f.eval({false, false, true}));
  EXPECT_FALSE(f.eval({true, false, false}));
}

TEST(BddBasic, NodeCountOfSimpleFunctions) {
  BddManager mgr;
  const Bdd a = mgr.var(0), b = mgr.var(1);
  EXPECT_EQ(mgr.zero().node_count(), 0u);
  EXPECT_EQ(a.node_count(), 1u);
  EXPECT_EQ((a & b).node_count(), 2u);
  EXPECT_EQ((a ^ b).node_count(), 3u);  // xor needs both phases of b
}

TEST(BddBasic, SharedNodeCountOfSets) {
  BddManager mgr;
  const Bdd a = mgr.var(0), b = mgr.var(1);
  const Bdd f = a & b;
  const Bdd g = a | b;
  const Bdd fs[] = {f, g};
  const std::size_t shared = mgr.node_count(std::span<const Bdd>(fs));
  EXPECT_LE(shared, f.node_count() + g.node_count());
  EXPECT_GE(shared, std::max(f.node_count(), g.node_count()));
}

TEST(BddBasic, HandleCopyAndMoveKeepRegistration) {
  BddManager mgr;
  EXPECT_EQ(mgr.handle_count(), 0u);
  {
    Bdd a = mgr.var(0);
    EXPECT_EQ(mgr.handle_count(), 1u);
    Bdd b = a;  // copy
    EXPECT_EQ(mgr.handle_count(), 2u);
    Bdd c = std::move(a);  // move detaches the source
    EXPECT_EQ(mgr.handle_count(), 2u);
    EXPECT_TRUE(a.is_null());
    EXPECT_EQ(b, c);
    c = b;  // self-family assignment
    EXPECT_EQ(mgr.handle_count(), 2u);
  }
  EXPECT_EQ(mgr.handle_count(), 0u);
}

TEST(BddBasic, SelfAssignmentIsSafe) {
  BddManager mgr;
  Bdd a = mgr.var(0);
  Bdd& alias = a;
  a = alias;
  EXPECT_EQ(a.top_var(), 0u);
  EXPECT_EQ(mgr.handle_count(), 1u);
}

TEST(BddBasic, EqualityIsPerManager) {
  BddManager m1, m2;
  const Bdd a = m1.var(0);
  const Bdd b = m2.var(0);
  EXPECT_NE(a, b);  // same index, different managers
}

TEST(BddBasic, ImpliesAndXnor) {
  BddManager mgr;
  const Bdd a = mgr.var(0), b = mgr.var(1);
  EXPECT_EQ(a.implies(b), (!a) | b);
  EXPECT_EQ(a.xnor(b), !(a ^ b));
  EXPECT_TRUE(a.implies(a).is_one());
}

TEST(BddBasic, ToDotContainsStructure) {
  BddManager mgr;
  const Bdd f = mgr.var(0) & mgr.var(1);
  const std::string dot = mgr.to_dot(f, "f");
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("x0"), std::string::npos);
  EXPECT_NE(dot.find("x1"), std::string::npos);
}

TEST(BddBasic, StatsCountNodeCreation) {
  BddManager mgr;
  const auto before = mgr.stats().nodes_created;
  (void)(mgr.var(0) & mgr.var(1));
  EXPECT_GT(mgr.stats().nodes_created, before);
}

}  // namespace
}  // namespace motsim::bdd
