#include <gtest/gtest.h>

#include <sstream>

#include "logic/val3.h"
#include "logic/val4.h"

namespace motsim {
namespace {

const Val3 kAll3[] = {Val3::Zero, Val3::One, Val3::X};
const Val4 kAll4[] = {Val4::X, Val4::X0, Val4::X1, Val4::X01};

/// Concretizations of a Val3: the binary values it may stand for.
std::vector<bool> concretizations(Val3 v) {
  switch (v) {
    case Val3::Zero:
      return {false};
    case Val3::One:
      return {true};
    default:
      return {false, true};
  }
}

// ---------------------------------------------------------------------------
// Val3: Kleene tables by exhaustive abstraction check
// ---------------------------------------------------------------------------

TEST(Val3, AndIsSoundAndPreciseAbstraction) {
  for (Val3 a : kAll3) {
    for (Val3 b : kAll3) {
      const Val3 r = and3(a, b);
      // Soundness: every concrete outcome refines the abstract result.
      bool all_true = true, all_false = true;
      for (bool ca : concretizations(a)) {
        for (bool cb : concretizations(b)) {
          const bool c = ca && cb;
          EXPECT_TRUE(refines(to_val3(c), r))
              << to_char(a) << "&" << to_char(b);
          all_true &= c;
          all_false &= !c;
        }
      }
      // Precision: if all concretizations agree, the result is binary.
      if (all_true) {
        EXPECT_EQ(r, Val3::One);
      }
      if (all_false) {
        EXPECT_EQ(r, Val3::Zero);
      }
    }
  }
}

TEST(Val3, OrIsSoundAndPreciseAbstraction) {
  for (Val3 a : kAll3) {
    for (Val3 b : kAll3) {
      const Val3 r = or3(a, b);
      bool all_true = true, all_false = true;
      for (bool ca : concretizations(a)) {
        for (bool cb : concretizations(b)) {
          const bool c = ca || cb;
          EXPECT_TRUE(refines(to_val3(c), r));
          all_true &= c;
          all_false &= !c;
        }
      }
      if (all_true) {
        EXPECT_EQ(r, Val3::One);
      }
      if (all_false) {
        EXPECT_EQ(r, Val3::Zero);
      }
    }
  }
}

TEST(Val3, XorIsSoundAbstraction) {
  for (Val3 a : kAll3) {
    for (Val3 b : kAll3) {
      const Val3 r = xor3(a, b);
      for (bool ca : concretizations(a)) {
        for (bool cb : concretizations(b)) {
          EXPECT_TRUE(refines(to_val3(ca != cb), r));
        }
      }
    }
  }
}

TEST(Val3, NotTable) {
  EXPECT_EQ(not3(Val3::Zero), Val3::One);
  EXPECT_EQ(not3(Val3::One), Val3::Zero);
  EXPECT_EQ(not3(Val3::X), Val3::X);
}

TEST(Val3, XnorIsNegatedXor) {
  for (Val3 a : kAll3) {
    for (Val3 b : kAll3) {
      EXPECT_EQ(xnor3(a, b), not3(xor3(a, b)));
    }
  }
}

TEST(Val3, ControllingValuesAbsorbX) {
  EXPECT_EQ(and3(Val3::Zero, Val3::X), Val3::Zero);
  EXPECT_EQ(and3(Val3::X, Val3::Zero), Val3::Zero);
  EXPECT_EQ(or3(Val3::One, Val3::X), Val3::One);
  EXPECT_EQ(or3(Val3::X, Val3::One), Val3::One);
}

TEST(Val3, XPropagatesWithoutControllingValue) {
  EXPECT_EQ(and3(Val3::One, Val3::X), Val3::X);
  EXPECT_EQ(or3(Val3::Zero, Val3::X), Val3::X);
  EXPECT_EQ(xor3(Val3::One, Val3::X), Val3::X);
  EXPECT_EQ(xor3(Val3::X, Val3::X), Val3::X);
}

TEST(Val3, CommutativityAndAssociativity) {
  for (Val3 a : kAll3) {
    for (Val3 b : kAll3) {
      EXPECT_EQ(and3(a, b), and3(b, a));
      EXPECT_EQ(or3(a, b), or3(b, a));
      EXPECT_EQ(xor3(a, b), xor3(b, a));
      for (Val3 c : kAll3) {
        EXPECT_EQ(and3(and3(a, b), c), and3(a, and3(b, c)));
        EXPECT_EQ(or3(or3(a, b), c), or3(a, or3(b, c)));
      }
    }
  }
}

TEST(Val3, RefinesOrdering) {
  EXPECT_TRUE(refines(Val3::Zero, Val3::X));
  EXPECT_TRUE(refines(Val3::One, Val3::X));
  EXPECT_TRUE(refines(Val3::Zero, Val3::Zero));
  EXPECT_FALSE(refines(Val3::Zero, Val3::One));
  EXPECT_FALSE(refines(Val3::One, Val3::Zero));
}

TEST(Val3, CharConversionsRoundTrip) {
  for (Val3 v : kAll3) {
    EXPECT_EQ(val3_from_char(to_char(v)), v);
  }
  EXPECT_EQ(val3_from_char('x'), Val3::X);
  EXPECT_THROW((void)val3_from_char('2'), std::invalid_argument);
}

TEST(Val3, StreamAndVectorFormat) {
  std::ostringstream os;
  os << Val3::Zero << Val3::One << Val3::X;
  EXPECT_EQ(os.str(), "01X");
  EXPECT_EQ(to_string(std::vector<Val3>{Val3::One, Val3::X}), "1X");
}

// ---------------------------------------------------------------------------
// Val4: the I_X lattice
// ---------------------------------------------------------------------------

TEST(Val4, BitsMatchSemantics) {
  EXPECT_FALSE(saw_zero(Val4::X));
  EXPECT_FALSE(saw_one(Val4::X));
  EXPECT_TRUE(saw_zero(Val4::X0));
  EXPECT_FALSE(saw_one(Val4::X0));
  EXPECT_FALSE(saw_zero(Val4::X1));
  EXPECT_TRUE(saw_one(Val4::X1));
  EXPECT_TRUE(saw_zero(Val4::X01));
  EXPECT_TRUE(saw_one(Val4::X01));
}

TEST(Val4, JoinIsLatticeJoin) {
  for (Val4 a : kAll4) {
    EXPECT_EQ(join(a, a), a);          // idempotent
    EXPECT_EQ(join(a, Val4::X), a);    // {X} is bottom
    EXPECT_EQ(join(a, Val4::X01), Val4::X01);  // {X,0,1} is top
    for (Val4 b : kAll4) {
      EXPECT_EQ(join(a, b), join(b, a));
      EXPECT_TRUE(leq(a, join(a, b)));
      EXPECT_TRUE(leq(b, join(a, b)));
    }
  }
  EXPECT_EQ(join(Val4::X0, Val4::X1), Val4::X01);
}

TEST(Val4, MeetIsLatticeMeet) {
  EXPECT_EQ(meet(Val4::X0, Val4::X1), Val4::X);
  EXPECT_EQ(meet(Val4::X01, Val4::X1), Val4::X1);
  for (Val4 a : kAll4) {
    EXPECT_EQ(meet(a, a), a);
    EXPECT_TRUE(leq(meet(a, Val4::X0), a));
  }
}

TEST(Val4, AccumulateRecordsObservedValues) {
  Val4 acc = Val4::X;
  acc = accumulate(acc, Val3::X);
  EXPECT_EQ(acc, Val4::X);
  acc = accumulate(acc, Val3::Zero);
  EXPECT_EQ(acc, Val4::X0);
  acc = accumulate(acc, Val3::Zero);
  EXPECT_EQ(acc, Val4::X0);
  acc = accumulate(acc, Val3::One);
  EXPECT_EQ(acc, Val4::X01);
}

TEST(Val4, LeqIsPartialOrder) {
  for (Val4 a : kAll4) {
    EXPECT_TRUE(leq(Val4::X, a));
    EXPECT_TRUE(leq(a, Val4::X01));
    EXPECT_TRUE(leq(a, a));
  }
  EXPECT_FALSE(leq(Val4::X0, Val4::X1));
  EXPECT_FALSE(leq(Val4::X1, Val4::X0));
  EXPECT_FALSE(leq(Val4::X01, Val4::X0));
}

TEST(Val4, Display) {
  std::ostringstream os;
  os << Val4::X << Val4::X0 << Val4::X1 << Val4::X01;
  EXPECT_EQ(os.str(), "{X}{X,0}{X,1}{X,0,1}");
}

}  // namespace
}  // namespace motsim
