// Run-store formats and persistence (store/run_store.h): manifest and
// checkpoint-record round trips, crash recovery of the checkpoint log,
// fingerprint-based store validation and the per-fault JSON report.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench_data/registry.h"
#include "bench_data/s27.h"
#include "faults/collapse.h"
#include "faults/report.h"
#include "store/campaign.h"
#include "store/fingerprint.h"
#include "store/run_store.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/strings.h"

namespace motsim {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& tag)
      : path((fs::temp_directory_path() /
              ("motsim_store_" + tag + "_" +
               std::to_string(::testing::UnitTest::GetInstance()->random_seed())))
                 .string()) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string sub(const std::string& name) const {
    return (fs::path(path) / name).string();
  }
  std::string path;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void append_raw(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << data;
}

StoreManifest sample_manifest() {
  StoreManifest m;
  m.circuit = "s27";
  m.inputs = 4;
  m.dffs = 3;
  m.faults = 26;
  m.seed = 0xDEADBEEFCAFEull;
  m.complete = true;
  m.sequence_length = 96;
  m.segment_lengths = {64, 32};
  m.fp_netlist = 0x0123456789ABCDEFull;
  m.fp_faults = 0xFEDCBA9876543210ull;
  m.fp_sequence = 42;
  m.options.analysis = true;
  m.options.strategy = Strategy::Rmot;
  m.options.layout = VarLayout::Blocked;
  m.options.node_limit = 1234;
  m.options.fallback_frames = 5;
  m.options.checkpoint_interval = 16;
  m.options.threads = 4;
  m.options.chunk_size = 32;
  m.options.sim3_backend = Sim3Backend::BitPar;
  m.fp_options = fingerprint_options(m.options);
  return m;
}

TEST(StoreManifest, TextRoundTripPreservesEveryField) {
  const StoreManifest m = sample_manifest();
  const auto r = StoreManifest::from_text(m.to_text());
  ASSERT_TRUE(r.has_value()) << r.error();
  EXPECT_EQ(r->version, m.version);
  EXPECT_EQ(r->circuit, m.circuit);
  EXPECT_EQ(r->inputs, m.inputs);
  EXPECT_EQ(r->dffs, m.dffs);
  EXPECT_EQ(r->faults, m.faults);
  EXPECT_EQ(r->seed, m.seed);
  EXPECT_EQ(r->complete, m.complete);
  EXPECT_EQ(r->sequence_length, m.sequence_length);
  EXPECT_EQ(r->segment_lengths, m.segment_lengths);
  EXPECT_EQ(r->fp_netlist, m.fp_netlist);
  EXPECT_EQ(r->fp_faults, m.fp_faults);
  EXPECT_EQ(r->fp_options, m.fp_options);
  EXPECT_EQ(r->fp_sequence, m.fp_sequence);
  EXPECT_EQ(r->options, m.options);
}

TEST(StoreManifest, LegacyParallelSim3TokenStillParses) {
  // Stores written before the backend enum recorded a boolean flag;
  // it maps onto the equivalent backend.
  StoreManifest m = sample_manifest();
  std::string text = m.to_text();
  const std::string key = "opt_sim3_backend bitpar";
  const auto at = text.find(key);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, key.size(), "opt_parallel_sim3 1");
  const auto r = StoreManifest::from_text(text);
  ASSERT_TRUE(r.has_value()) << r.error();
  EXPECT_EQ(r->options.sim3_backend, Sim3Backend::BitPar);

  text.replace(text.find("opt_parallel_sim3 1"),
               std::string("opt_parallel_sim3 1").size(),
               "opt_parallel_sim3 0");
  const auto r0 = StoreManifest::from_text(text);
  ASSERT_TRUE(r0.has_value()) << r0.error();
  EXPECT_EQ(r0->options.sim3_backend, Sim3Backend::Event);
}

TEST(StoreManifest, RejectsBadSim3BackendToken) {
  StoreManifest m = sample_manifest();
  std::string text = m.to_text();
  const std::string key = "opt_sim3_backend bitpar";
  const auto at = text.find(key);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, key.size(), "opt_sim3_backend warp");
  EXPECT_FALSE(StoreManifest::from_text(text).has_value());
}

TEST(Fingerprint, Sim3BackendIsExcludedFromOptionsFingerprint) {
  // The backend is a pure performance knob with bit-identical results,
  // so a store written under one backend must validate under the other.
  SimOptions event_opts;
  event_opts.sim3_backend = Sim3Backend::Event;
  SimOptions bitpar_opts;
  bitpar_opts.sim3_backend = Sim3Backend::BitPar;
  EXPECT_EQ(fingerprint_options(event_opts), fingerprint_options(bitpar_opts));

  // ...while fields that do affect results still change the hash.
  SimOptions other = event_opts;
  other.node_limit += 1;
  EXPECT_NE(fingerprint_options(event_opts), fingerprint_options(other));
}

TEST(StoreManifest, RejectsUnknownKeyMissingVersionAndBadSegments) {
  EXPECT_FALSE(StoreManifest::from_text("version 1\nbogus_key 7\n"));
  EXPECT_FALSE(StoreManifest::from_text("circuit s27\n"));  // no version
  EXPECT_FALSE(StoreManifest::from_text("version 9\n"));    // unknown version
  // segment_lengths must sum to sequence_length.
  StoreManifest m = sample_manifest();
  m.segment_lengths = {64, 31};
  EXPECT_FALSE(StoreManifest::from_text(m.to_text()));
}

ChunkCheckpoint sample_checkpoint() {
  ChunkCheckpoint ck;
  ck.chunk = 3;
  ck.frame = 96;
  ck.in_window = true;
  ck.window_left = 2;
  ck.complete = false;
  ck.good_state = {Val3::One, Val3::X, Val3::Zero};
  ck.fault_index = {7, 12, 40};
  ck.status = {FaultStatus::Undetected, FaultStatus::DetectedMot,
               FaultStatus::Undetected};
  ck.detect_frame = {0, 55, 0};
  ck.diff = {{{0, Val3::X}, {2, Val3::One}}, {}, {{1, Val3::Zero}}};
  return ck;
}

void expect_checkpoint_eq(const ChunkCheckpoint& a, const ChunkCheckpoint& b) {
  EXPECT_EQ(a.chunk, b.chunk);
  EXPECT_EQ(a.frame, b.frame);
  EXPECT_EQ(a.in_window, b.in_window);
  EXPECT_EQ(a.window_left, b.window_left);
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.good_state, b.good_state);
  EXPECT_EQ(a.fault_index, b.fault_index);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.detect_frame, b.detect_frame);
  EXPECT_EQ(a.diff, b.diff);
}

TEST(CheckpointLine, RoundTrip) {
  const ChunkCheckpoint ck = sample_checkpoint();
  const auto r = parse_checkpoint_line(serialize_checkpoint_line(ck));
  ASSERT_TRUE(r.has_value()) << r.error();
  expect_checkpoint_eq(*r, ck);
}

TEST(CheckpointLine, RoundTripEmptyChunk) {
  ChunkCheckpoint ck;
  ck.complete = true;
  const auto r = parse_checkpoint_line(serialize_checkpoint_line(ck));
  ASSERT_TRUE(r.has_value()) << r.error();
  expect_checkpoint_eq(*r, ck);
}

TEST(CheckpointLine, RejectsCorruption) {
  const std::string good = serialize_checkpoint_line(sample_checkpoint());
  // Truncations anywhere must be caught by the END terminator (or
  // earlier by a failed field parse).
  for (std::size_t cut : {good.size() - 1, good.size() - 4, good.size() / 2,
                          std::size_t{5}}) {
    EXPECT_FALSE(parse_checkpoint_line(good.substr(0, cut)).has_value())
        << "cut at " << cut;
  }
  EXPECT_FALSE(parse_checkpoint_line("").has_value());
  EXPECT_FALSE(parse_checkpoint_line("KCPT 0 0 0 0 0 - 0 END").has_value());
  EXPECT_FALSE(parse_checkpoint_line(good + " tail").has_value());
  // Unknown status token and bad diff syntax.
  EXPECT_FALSE(
      parse_checkpoint_line("CKPT 0 4 0 0 0 1X0 1 7 QQ 0 - END").has_value());
  EXPECT_FALSE(
      parse_checkpoint_line("CKPT 0 4 0 0 0 1X0 1 7 U 0 1: END").has_value());
  EXPECT_FALSE(
      parse_checkpoint_line("CKPT 0 4 0 0 2 1X0 0 END").has_value());
}

// ---- RunStore on disk ------------------------------------------------------

struct StoreFixture {
  StoreFixture() : nl(make_s27()), faults(nl) {
    Rng rng(7);
    seq = random_sequence(nl, 16, rng);
    manifest.circuit = nl.name();
    manifest.inputs = nl.input_count();
    manifest.dffs = nl.dff_count();
    manifest.faults = faults.size();
    manifest.sequence_length = seq.size();
    manifest.segment_lengths = {seq.size()};
    manifest.fp_netlist = fingerprint_netlist(nl);
    manifest.fp_faults = fingerprint_faults(faults.faults());
    manifest.fp_options = fingerprint_options(manifest.options);
    manifest.fp_sequence = fingerprint_sequence(seq);
    initial.assign(faults.size(), FaultStatus::Undetected);
    initial[3] = FaultStatus::XRedundant;
  }
  Netlist nl;
  CollapsedFaultList faults;
  TestSequence seq;
  StoreManifest manifest;
  std::vector<FaultStatus> initial;
};

TEST(RunStore, CreateOpenRoundTripAndDoubleCreateRefused) {
  TempDir tmp("create");
  StoreFixture fx;
  auto store = RunStore::create(tmp.sub("s"), fx.manifest, fx.seq, fx.initial);
  ASSERT_TRUE(store.has_value()) << store.error();

  auto reopened = RunStore::open(tmp.sub("s"));
  ASSERT_TRUE(reopened.has_value()) << reopened.error();
  EXPECT_EQ(reopened->manifest().circuit, "s27");
  EXPECT_EQ(reopened->manifest().fp_sequence, fx.manifest.fp_sequence);

  const auto loaded = reopened->load_sequence();
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  EXPECT_EQ(*loaded, fx.seq);

  const auto state = reopened->load_state();
  ASSERT_TRUE(state.has_value()) << state.error();
  EXPECT_EQ(state->initial_status, fx.initial);
  EXPECT_TRUE(state->checkpoints.empty());

  const auto again =
      RunStore::create(tmp.sub("s"), fx.manifest, fx.seq, fx.initial);
  ASSERT_FALSE(again.has_value());
  EXPECT_NE(again.error().find("already contains"), std::string::npos);
}

TEST(RunStore, LoadStateKeepsNewestRecordPerChunk) {
  TempDir tmp("newest");
  StoreFixture fx;
  auto store = RunStore::create(tmp.sub("s"), fx.manifest, fx.seq, fx.initial);
  ASSERT_TRUE(store.has_value()) << store.error();

  ChunkCheckpoint a = sample_checkpoint();
  a.chunk = 0;
  a.frame = 8;
  ChunkCheckpoint b = a;
  b.chunk = 1;
  b.frame = 8;
  ChunkCheckpoint a2 = a;
  a2.frame = 16;
  store->append_checkpoint(a);
  store->append_checkpoint(b);
  store->append_checkpoint(a2);

  const auto state = store->load_state();
  ASSERT_TRUE(state.has_value()) << state.error();
  ASSERT_EQ(state->checkpoints.size(), 2u);
  EXPECT_EQ(state->checkpoints[0].chunk, 0u);
  EXPECT_EQ(state->checkpoints[0].frame, 16u);  // newest wins
  EXPECT_EQ(state->checkpoints[1].chunk, 1u);
  EXPECT_EQ(state->checkpoints[1].frame, 8u);
}

TEST(RunStore, TornTrailingLineIsDroppedCorruptionElsewhereIsNot) {
  TempDir tmp("torn");
  StoreFixture fx;
  auto store = RunStore::create(tmp.sub("s"), fx.manifest, fx.seq, fx.initial);
  ASSERT_TRUE(store.has_value()) << store.error();
  ChunkCheckpoint a = sample_checkpoint();
  a.chunk = 0;
  store->append_checkpoint(a);

  // Crash mid-append: an unterminated prefix of a CKPT record. Load
  // must drop it and still deliver the intact checkpoint.
  const std::string torn =
      serialize_checkpoint_line(sample_checkpoint()).substr(0, 30);
  append_raw(store->checkpoints_path(), torn);
  auto state = store->load_state();
  ASSERT_TRUE(state.has_value()) << state.error();
  ASSERT_EQ(state->checkpoints.size(), 1u);
  EXPECT_EQ(state->checkpoints[0].frame, a.frame);

  // A fully-written (newline-terminated) record after the torn one
  // means the corruption is *not* trailing: that store is damaged and
  // loading must fail loudly instead of silently skipping records.
  append_raw(store->checkpoints_path(),
             "\n" + serialize_checkpoint_line(a) + "\n");
  EXPECT_FALSE(store->load_state().has_value());
}

TEST(RunStore, OpenRejectsHandEditedManifest) {
  TempDir tmp("edited");
  StoreFixture fx;
  {
    auto store =
        RunStore::create(tmp.sub("s"), fx.manifest, fx.seq, fx.initial);
    ASSERT_TRUE(store.has_value()) << store.error();
  }
  auto reopened = RunStore::open(tmp.sub("s"));
  ASSERT_TRUE(reopened.has_value());
  append_raw(reopened->manifest_path(), "mystery_field 3\n");
  const auto bad = RunStore::open(tmp.sub("s"));
  ASSERT_FALSE(bad.has_value());
  EXPECT_NE(bad.error().find("mystery_field"), std::string::npos);
}

// ---- campaign-level store validation ---------------------------------------

TEST(CampaignStore, WritesAllArtifactsAndFreezesXred) {
  TempDir tmp("artifacts");
  const Netlist nl = make_s27();
  const CollapsedFaultList faults(nl);
  Rng rng(3);
  const TestSequence seq = random_sequence(nl, 24, rng);
  SimOptions opts;
  opts.checkpoint_interval = 8;

  const auto r =
      run_campaign(nl, faults.faults(), seq, opts, tmp.sub("camp"));
  ASSERT_TRUE(r.has_value()) << r.error();
  EXPECT_TRUE(fs::exists(tmp.sub("camp") + "/manifest.txt"));
  EXPECT_TRUE(fs::exists(tmp.sub("camp") + "/sequence.txt"));
  EXPECT_TRUE(fs::exists(tmp.sub("camp") + "/checkpoints.log"));
  EXPECT_TRUE(fs::exists(tmp.sub("camp") + "/events.jsonl"));
  EXPECT_TRUE(fs::exists(tmp.sub("camp") + "/report.json"));

  auto store = RunStore::open(tmp.sub("camp"));
  ASSERT_TRUE(store.has_value()) << store.error();
  EXPECT_TRUE(store->manifest().complete);
  EXPECT_EQ(store->manifest().sequence_length, seq.size());

  // The INIT record froze the ID_X-red verdict.
  const auto state = store->load_state();
  ASSERT_TRUE(state.has_value()) << state.error();
  std::size_t frozen = 0;
  for (FaultStatus s : state->initial_status) {
    if (s == FaultStatus::XRedundant) ++frozen;
  }
  EXPECT_EQ(frozen, r->x_redundant);

  // events.jsonl: one JSON object per line, braces intact.
  std::istringstream events(slurp(tmp.sub("camp") + "/events.jsonl"));
  std::string line;
  std::size_t count = 0;
  while (std::getline(events, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++count;
  }
  EXPECT_GE(count, 2u);  // at least run_start + run_complete
  const std::string report = slurp(tmp.sub("camp") + "/report.json");
  EXPECT_NE(report.find("\"summary\""), std::string::npos);
  EXPECT_NE(report.find("\"faults\""), std::string::npos);
}

TEST(CampaignStore, RejectsMismatchedWorkloads) {
  TempDir tmp("mismatch");
  const Netlist s27 = make_s27();
  const CollapsedFaultList f27(s27);
  Rng rng(5);
  const TestSequence seq = random_sequence(s27, 16, rng);
  SimOptions opts;
  ASSERT_TRUE(
      run_campaign(s27, f27.faults(), seq, opts, tmp.sub("camp")).has_value());

  // Different netlist → netlist fingerprint mismatch.
  const Netlist other = make_benchmark("s298");
  const CollapsedFaultList fother(other);
  const auto wrong_nl =
      resume_campaign(other, fother.faults(), tmp.sub("camp"));
  ASSERT_FALSE(wrong_nl.has_value());
  EXPECT_NE(wrong_nl.error().find("different netlist"), std::string::npos);

  // Same netlist, truncated fault list → fault fingerprint mismatch.
  std::vector<Fault> fewer = f27.faults();
  fewer.pop_back();
  const auto wrong_faults = resume_campaign(s27, fewer, tmp.sub("camp"));
  ASSERT_FALSE(wrong_faults.has_value());
  EXPECT_NE(wrong_faults.error().find("different fault list"),
            std::string::npos);

  // Tampered sequence.txt → sequence fingerprint mismatch.
  append_raw(tmp.sub("camp") + "/sequence.txt", "1111\n");
  const auto wrong_seq = resume_campaign(s27, f27.faults(), tmp.sub("camp"));
  ASSERT_FALSE(wrong_seq.has_value());
  EXPECT_NE(wrong_seq.error().find("does not match the manifest"),
            std::string::npos);
}

TEST(CampaignStore, RefusesXInputsEmptySequencesAndNoSymbolic) {
  TempDir tmp("refuse");
  const Netlist nl = make_s27();
  const CollapsedFaultList faults(nl);
  SimOptions opts;

  EXPECT_FALSE(
      run_campaign(nl, faults.faults(), {}, opts, tmp.sub("a")).has_value());

  TestSequence with_x = sequence_from_strings({"10X1"});
  EXPECT_FALSE(run_campaign(nl, faults.faults(), with_x, opts, tmp.sub("b"))
                   .has_value());

  Rng rng(1);
  const TestSequence seq = random_sequence(nl, 4, rng);
  SimOptions no_sym;
  no_sym.run_symbolic = false;
  EXPECT_FALSE(run_campaign(nl, faults.faults(), seq, no_sym, tmp.sub("c"))
                   .has_value());
}

// ---- fault report ----------------------------------------------------------

TEST(FaultReportJson, EscapesAndValidates) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");

  const Netlist nl = make_s27();
  const CollapsedFaultList faults(nl);
  std::vector<FaultStatus> status(faults.size(), FaultStatus::Undetected);
  status[0] = FaultStatus::DetectedMot;
  std::vector<std::uint32_t> frames(faults.size(), 0);
  frames[0] = 9;

  const FaultReport report =
      FaultReport::build(nl, faults.faults(), status, frames);
  ASSERT_EQ(report.entries.size(), faults.size());
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"detect_frame\": 9"), std::string::npos);
  EXPECT_NE(json.find("detected(MOT)"), std::string::npos);

  // Size mismatches are precondition violations, not silent truncation.
  status.pop_back();
  EXPECT_THROW((void)FaultReport::build(nl, faults.faults(), status, frames),
               std::invalid_argument);
}

}  // namespace
}  // namespace motsim
