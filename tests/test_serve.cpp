// The serve subsystem (src/serve/): protocol codec round-trips,
// malformed-frame robustness (truncation, garbage, lying length
// fields must yield typed errors — never crashes or hangs), the
// bounded request queue's BUSY backpressure and drain semantics, the
// circuit cache's sharing, and the contract the whole stack exists
// for: a FAULT_SIM answered by the service is bit-identical to the
// same SimOptions run through run_pipeline — including through a real
// socket against a live Server.
//
// tools/run_tsan.sh runs this binary under ThreadSanitizer; keep every
// test here TSan-clean.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bdd/bdd.h"
#include "bench_data/registry.h"
#include "core/options.h"
#include "core/pipeline.h"
#include "core/test_eval.h"
#include "faults/collapse.h"
#include "obs/telemetry.h"
#include "serve/circuit_cache.h"
#include "serve/framing.h"
#include "serve/http.h"
#include "serve/protocol.h"
#include "serve/request_queue.h"
#include "serve/server.h"
#include "serve/service.h"
#include "tpg/sequences.h"
#include "util/net.h"
#include "util/rng.h"
#include "util/signals.h"

namespace motsim::serve {
namespace {

// ---------------------------------------------------------------------------
// Codec round-trips
// ---------------------------------------------------------------------------

FaultSimRequest sample_fault_sim_request() {
  FaultSimRequest fs;
  fs.id = 7;
  fs.circuit = CircuitRef{CircuitRef::Kind::Roster, "s27"};
  fs.vectors = 64;
  fs.use_store = true;
  fs.options.seed = 99;
  fs.options.strategy = Strategy::Rmot;
  fs.options.node_limit = 12345;
  fs.options.analysis = true;
  fs.options.threads = 3;
  return fs;
}

std::vector<Request> sample_requests() {
  std::vector<Request> all;
  all.emplace_back(PingRequest{1});
  all.emplace_back(
      LintRequest{2, CircuitRef{CircuitRef::Kind::BenchText,
                                "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n"}});
  all.emplace_back(sample_fault_sim_request());
  TestEvalRequest te;
  te.id = 9;
  te.circuit = CircuitRef{CircuitRef::Kind::Roster, "s27"};
  te.vectors = 4;
  te.seed = 3;
  te.responses = {{0, 1, 0, 1}, {1, 1, 1, 1}};
  all.emplace_back(std::move(te));
  all.emplace_back(DumpStateRequest{12});
  return all;
}

std::vector<Response> sample_responses() {
  std::vector<Response> all;
  // Traces present on some responses and absent on others: both
  // encodings of the v2 trailing trace string must round-trip.
  all.emplace_back(PongResponse{1, "c1-r1"});
  all.emplace_back(LintResponse{2, 1, 2, 3, "{\"x\":1}"});
  FaultSimResponse fs;
  fs.id = 3;
  fs.x_redundant = 4;
  fs.static_x_redundant = 1;
  fs.static_untestable = 2;
  fs.detected_3v = 10;
  fs.detected_symbolic = 20;
  fs.used_fallback = true;
  fs.from_store = true;
  fs.status = {0, 1, 2, 3, 4};
  fs.detect_frame = {0, 5, 0, 7, 9};
  fs.trace = "c2-r19";
  all.emplace_back(std::move(fs));
  all.emplace_back(TestEvalResponse{4, {1, 0, 1}});
  all.emplace_back(ErrorResponse{5, ErrorCode::BadRequest, "nope", "c4-r2"});
  all.emplace_back(BusyResponse{6, "c9-r1"});
  DumpStateResponse ds;
  ds.id = 7;
  ds.metrics_json = "{\"counters\":{\"serve.requests.completed\":3}}";
  ds.recorder_jsonl = "{\"event\":\"a\"}\n{\"event\":\"b\"}\n";
  ds.trace = "c3-r3";
  all.emplace_back(std::move(ds));
  return all;
}

TEST(Protocol, RequestRoundTrip) {
  for (const Request& req : sample_requests()) {
    const std::string payload = encode_request(req);
    const auto back = decode_request(frame_type_of(req), payload);
    ASSERT_TRUE(back.has_value()) << back.error();
    ASSERT_EQ(back->index(), req.index());
    EXPECT_EQ(request_id(*back), request_id(req));
    // Spot-check the deep fields of the richest message.
    if (const auto* fs = std::get_if<FaultSimRequest>(&req)) {
      const auto& rt = std::get<FaultSimRequest>(*back);
      EXPECT_EQ(rt.circuit.text, fs->circuit.text);
      EXPECT_EQ(rt.vectors, fs->vectors);
      EXPECT_EQ(rt.use_store, fs->use_store);
      EXPECT_EQ(rt.options.seed, fs->options.seed);
      EXPECT_EQ(rt.options.strategy, fs->options.strategy);
      EXPECT_EQ(rt.options.node_limit, fs->options.node_limit);
      EXPECT_EQ(rt.options.analysis, fs->options.analysis);
      EXPECT_EQ(rt.options.threads, fs->options.threads);
    }
    if (const auto* te = std::get_if<TestEvalRequest>(&req)) {
      EXPECT_EQ(std::get<TestEvalRequest>(*back).responses, te->responses);
    }
  }
}

TEST(Protocol, ResponseRoundTrip) {
  for (const Response& resp : sample_responses()) {
    const std::string payload = encode_response(resp);
    const auto back = decode_response(frame_type_of(resp), payload);
    ASSERT_TRUE(back.has_value()) << back.error();
    ASSERT_EQ(back->index(), resp.index());
    EXPECT_EQ(response_id(*back), response_id(resp));
    EXPECT_EQ(response_trace(*back), response_trace(resp));
    if (const auto* ds = std::get_if<DumpStateResponse>(&resp)) {
      const auto& rt = std::get<DumpStateResponse>(*back);
      EXPECT_EQ(rt.metrics_json, ds->metrics_json);
      EXPECT_EQ(rt.recorder_jsonl, ds->recorder_jsonl);
    }
    if (const auto* fs = std::get_if<FaultSimResponse>(&resp)) {
      const auto& rt = std::get<FaultSimResponse>(*back);
      EXPECT_EQ(rt.status, fs->status);
      EXPECT_EQ(rt.detect_frame, fs->detect_frame);
      EXPECT_EQ(rt.used_fallback, fs->used_fallback);
      EXPECT_EQ(rt.from_store, fs->from_store);
    }
    if (const auto* er = std::get_if<ErrorResponse>(&resp)) {
      const auto& rt = std::get<ErrorResponse>(*back);
      EXPECT_EQ(rt.code, er->code);
      EXPECT_EQ(rt.message, er->message);
    }
  }
}

TEST(Protocol, HelloRoundTripAndBadMagic) {
  const Hello h{kHelloMagic, kProtocolVersion, "motsim test build"};
  const auto back = decode_hello(encode_hello(h));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->protocol, kProtocolVersion);
  EXPECT_EQ(back->build, h.build);

  Hello bad = h;
  bad.magic = 0xdeadbeef;
  EXPECT_FALSE(decode_hello(encode_hello(bad)).has_value());
}

// ---------------------------------------------------------------------------
// Malformed-input robustness: decoders must return errors, not crash.
// ---------------------------------------------------------------------------

TEST(Protocol, TruncatedPayloadsAreErrorsNotCrashes) {
  for (const Request& req : sample_requests()) {
    const std::string payload = encode_request(req);
    const FrameType type = frame_type_of(req);
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      const auto r = decode_request(type, payload.substr(0, cut));
      EXPECT_FALSE(r.has_value())
          << to_cstring(type) << " decoded from a " << cut
          << "-byte prefix of " << payload.size();
    }
  }
}

TEST(Protocol, TrailingGarbageIsRejected) {
  for (const Request& req : sample_requests()) {
    const std::string payload = encode_request(req) + '\0';
    EXPECT_FALSE(decode_request(frame_type_of(req), payload).has_value());
  }
}

TEST(Protocol, RandomGarbageNeverCrashesDecoders) {
  std::mt19937_64 rng(42);
  const FrameType kTypes[] = {FrameType::Ping,        FrameType::LintReq,
                              FrameType::FaultSimReq, FrameType::TestEvalReq,
                              FrameType::Hello,       FrameType::Error};
  for (int round = 0; round < 2000; ++round) {
    std::string junk(rng() % 64, '\0');
    for (char& c : junk) c = static_cast<char>(rng());
    for (const FrameType t : kTypes) {
      (void)decode_request(t, junk);   // must not crash
      (void)decode_response(t, junk);  // unknown response type: error
    }
    (void)decode_hello(junk);
  }
  SUCCEED();
}

/// A lying element count inside an otherwise valid frame must not
/// cause a giant allocation or a crash.
TEST(Protocol, LyingCountFieldIsRejected) {
  TestEvalRequest te;
  te.id = 1;
  te.circuit = CircuitRef{CircuitRef::Kind::Roster, "s27"};
  te.vectors = 2;
  te.responses = {{0, 0}};
  std::string payload = encode_request(Request{te});
  // The responses count is the u32 right after id + circuit + vectors
  // + seed; corrupt the last 4-byte count we can find by maxing every
  // u32-aligned window and requiring *some* decode failure — the exact
  // offset is a codec detail this test must not hard-code.
  bool rejected_any = false;
  for (std::size_t off = 0; off + 4 <= payload.size(); ++off) {
    std::string bent = payload;
    bent[off] = bent[off + 1] = bent[off + 2] = bent[off + 3] =
        static_cast<char>(0xff);
    const auto r = decode_request(FrameType::TestEvalReq, bent);
    if (!r.has_value()) rejected_any = true;
  }
  EXPECT_TRUE(rejected_any);
}

// ---------------------------------------------------------------------------
// Framing over a real socketpair-like loopback connection
// ---------------------------------------------------------------------------

struct LoopbackPair {
  OwnedFd a, b;
};

LoopbackPair make_loopback() {
  auto listener = listen_tcp("127.0.0.1", 0);
  EXPECT_TRUE(listener.has_value());
  const auto port = local_port(listener->get());
  EXPECT_TRUE(port.has_value());
  auto client = connect_tcp("127.0.0.1", *port);
  EXPECT_TRUE(client.has_value());
  auto served = accept_with_timeout(listener->get(), 2000, -1);
  EXPECT_TRUE(served.has_value() && served->valid());
  return LoopbackPair{std::move(*client), std::move(*served)};
}

TEST(Framing, RoundTripOverSocket) {
  LoopbackPair pair = make_loopback();
  const std::string payload = encode_request(Request{PingRequest{77}});
  ASSERT_TRUE(
      write_frame(pair.a.get(), FrameType::Ping, payload).has_value());
  const ReadResult r = read_frame(pair.b.get());
  ASSERT_EQ(r.status, ReadStatus::Ok);
  EXPECT_EQ(r.frame.type, FrameType::Ping);
  EXPECT_EQ(r.frame.payload, payload);
}

TEST(Framing, OversizedLengthIsRejectedBeforeAllocation) {
  LoopbackPair pair = make_loopback();
  // Header claiming a 1 GiB frame: must come back as Error without the
  // reader ever allocating that much.
  const std::uint32_t huge = 1u << 30;
  unsigned char header[4];
  std::memcpy(header, &huge, 4);
  ASSERT_TRUE(write_full(pair.a.get(),
                         reinterpret_cast<const char*>(header), 4)
                  .has_value());
  const ReadResult r = read_frame(pair.b.get());
  EXPECT_EQ(r.status, ReadStatus::Error);
}

TEST(Framing, TornFrameIsErrorCleanCloseIsEof) {
  {
    LoopbackPair pair = make_loopback();
    // Length says 10 bytes follow, but the peer hangs up after 3.
    const std::uint32_t len = 10;
    char partial[7];
    std::memcpy(partial, &len, 4);
    partial[4] = 2;
    partial[5] = partial[6] = 0;
    ASSERT_TRUE(write_full(pair.a.get(), partial, 7).has_value());
    pair.a.reset();
    EXPECT_EQ(read_frame(pair.b.get()).status, ReadStatus::Error);
  }
  {
    LoopbackPair pair = make_loopback();
    pair.a.reset();  // close at a frame boundary
    EXPECT_EQ(read_frame(pair.b.get()).status, ReadStatus::Eof);
  }
}

// ---------------------------------------------------------------------------
// Request queue: backpressure + drain
// ---------------------------------------------------------------------------

TEST(RequestQueue, RejectsWhenFullThenRecovers) {
  RequestQueue q(2, 2, nullptr);
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> ran{0};
  auto blocker = [&] {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return release; });
    ++ran;
  };
  ASSERT_TRUE(q.try_submit(blocker));
  ASSERT_TRUE(q.try_submit(blocker));
  // Both slots taken (the jobs hold them until released): full queue
  // answers false immediately — BUSY, not blocking.
  EXPECT_FALSE(q.try_submit([] {}));
  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
  // Once a slot frees up, admission recovers.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool accepted = false;
  while (!accepted && std::chrono::steady_clock::now() < deadline) {
    accepted = q.try_submit([&] { ++ran; });
    if (!accepted) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(accepted);
  q.drain();
  EXPECT_EQ(ran.load(), 3);
}

TEST(RequestQueue, DrainWaitsForInFlightAndStopsAdmission) {
  RequestQueue q(2, 4, nullptr);
  std::atomic<int> done{0};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      ++done;
    }));
  }
  q.drain();
  EXPECT_EQ(done.load(), 4);  // drain returned only after all finished
  EXPECT_FALSE(q.try_submit([] {}));  // draining: no new work, ever
}

// ---------------------------------------------------------------------------
// Circuit cache
// ---------------------------------------------------------------------------

TEST(CircuitCache, IdenticalRefsShareOneParse) {
  CircuitCache cache(4, nullptr);
  const CircuitRef ref{CircuitRef::Kind::Roster, "s27"};
  const auto a = cache.get_or_load(ref);
  const auto b = cache.get_or_load(ref);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->get(), b->get());  // same shared parsed circuit
  EXPECT_GT((*a)->faults.size(), 0u);
}

TEST(CircuitCache, EvictsLeastRecentlyUsed) {
  obs::Telemetry tele;
  CircuitCache cache(2, &tele);
  const CircuitRef r1{CircuitRef::Kind::Roster, "s27"};
  const CircuitRef r2{CircuitRef::Kind::Roster, "s298"};
  const CircuitRef r3{CircuitRef::Kind::Roster, "s344"};
  ASSERT_TRUE(cache.get_or_load(r1).has_value());
  ASSERT_TRUE(cache.get_or_load(r2).has_value());
  ASSERT_TRUE(cache.get_or_load(r3).has_value());  // evicts r1
  EXPECT_EQ(tele.metrics.counter("serve.cache.evictions").value(), 1u);
  EXPECT_EQ(tele.metrics.gauge("serve.cache.size").value(), 2.0);
}

TEST(CircuitCache, UnknownRosterAndBadBenchAreErrors) {
  CircuitCache cache(2, nullptr);
  EXPECT_FALSE(
      cache.get_or_load(CircuitRef{CircuitRef::Kind::Roster, "nope"})
          .has_value());
  EXPECT_FALSE(cache
                   .get_or_load(CircuitRef{CircuitRef::Kind::BenchText,
                                           "not a bench file"})
                   .has_value());
}

// ---------------------------------------------------------------------------
// Service semantics: bit identity with run_pipeline, test-eval parity
// ---------------------------------------------------------------------------

TEST(Service, FaultSimIsBitIdenticalToRunPipeline) {
  Service service(4, "", nullptr);
  FaultSimRequest req;
  req.id = 11;
  req.circuit = CircuitRef{CircuitRef::Kind::Roster, "s298"};
  req.vectors = 48;
  req.options.seed = 5;
  req.options.analysis = true;

  const Response resp = service.handle(Request{req});
  ASSERT_TRUE(std::holds_alternative<FaultSimResponse>(resp))
      << "got error: "
      << (std::holds_alternative<ErrorResponse>(resp)
              ? std::get<ErrorResponse>(resp).message
              : "wrong variant");
  const auto& served = std::get<FaultSimResponse>(resp);

  // The reference: same circuit instantiation, same sequence
  // generation, same validated options, straight through run_pipeline.
  const Netlist nl = make_benchmark("s298");
  const CollapsedFaultList faults(nl);
  SimOptions opts = req.options;
  const auto checked = opts.validate();
  ASSERT_TRUE(checked.has_value());
  Rng rng(opts.seed);
  const TestSequence seq = random_sequence(nl, 48, rng);
  const PipelineResult ref =
      run_pipeline(nl, faults.faults(), seq, *checked);

  EXPECT_EQ(served.x_redundant, ref.x_redundant);
  EXPECT_EQ(served.static_x_redundant, ref.static_x_redundant);
  EXPECT_EQ(served.static_untestable, ref.static_untestable);
  EXPECT_EQ(served.detected_3v, ref.detected_3v);
  EXPECT_EQ(served.detected_symbolic, ref.detected_symbolic);
  EXPECT_EQ(served.used_fallback, ref.used_fallback);
  ASSERT_EQ(served.status.size(), ref.status.size());
  for (std::size_t i = 0; i < ref.status.size(); ++i) {
    EXPECT_EQ(served.status[i], static_cast<std::uint8_t>(ref.status[i]))
        << "fault " << i;
  }
  EXPECT_EQ(served.detect_frame, ref.detect_frame);
}

TEST(Service, TestEvalMatchesDirectEvaluator) {
  Service service(4, "", nullptr);
  const Netlist nl = make_benchmark("s27");
  const std::size_t frames = 6;

  TestEvalRequest req;
  req.id = 21;
  req.circuit = CircuitRef{CircuitRef::Kind::Roster, "s27"};
  req.vectors = frames;
  req.seed = 17;
  // Two synthetic tester traces: all-zero and all-one.
  req.responses = {std::vector<std::uint8_t>(frames * nl.output_count(), 0),
                   std::vector<std::uint8_t>(frames * nl.output_count(), 1)};
  const Response resp = service.handle(Request{req});
  ASSERT_TRUE(std::holds_alternative<TestEvalResponse>(resp));
  const auto& served = std::get<TestEvalResponse>(resp);
  ASSERT_EQ(served.verdicts.size(), 2u);

  Rng rng(req.seed);
  const TestSequence seq = random_sequence(nl, frames, rng);
  bdd::BddManager mgr;
  const SymbolicResponse symbolic(nl, mgr, seq);
  const TestEvaluator evaluator(symbolic);
  for (std::size_t k = 0; k < 2; ++k) {
    std::vector<std::vector<bool>> bits(
        frames, std::vector<bool>(nl.output_count()));
    for (std::size_t t = 0; t < frames; ++t) {
      for (std::size_t j = 0; j < nl.output_count(); ++j) {
        bits[t][j] = req.responses[k][t * nl.output_count() + j] != 0;
      }
    }
    const Verdict v = evaluator.evaluate(bits);
    EXPECT_EQ(served.verdicts[k], v == Verdict::Faulty ? 1 : 0);
  }
}

TEST(Service, SemanticErrorsComeBackTyped) {
  Service service(4, "", nullptr);
  // Unknown circuit.
  {
    FaultSimRequest req;
    req.id = 31;
    req.circuit = CircuitRef{CircuitRef::Kind::Roster, "sXXX"};
    const Response resp = service.handle(Request{req});
    ASSERT_TRUE(std::holds_alternative<ErrorResponse>(resp));
    EXPECT_EQ(std::get<ErrorResponse>(resp).code, ErrorCode::BadRequest);
    EXPECT_EQ(std::get<ErrorResponse>(resp).id, 31u);
  }
  // Invalid options (zero vectors).
  {
    FaultSimRequest req;
    req.id = 32;
    req.circuit = CircuitRef{CircuitRef::Kind::Roster, "s27"};
    req.vectors = 0;
    const Response resp = service.handle(Request{req});
    ASSERT_TRUE(std::holds_alternative<ErrorResponse>(resp));
    EXPECT_EQ(std::get<ErrorResponse>(resp).code, ErrorCode::BadRequest);
  }
  // Mis-sized tester response.
  {
    TestEvalRequest req;
    req.id = 33;
    req.circuit = CircuitRef{CircuitRef::Kind::Roster, "s27"};
    req.vectors = 4;
    req.responses = {{0, 1}};  // wrong length
    const Response resp = service.handle(Request{req});
    ASSERT_TRUE(std::holds_alternative<ErrorResponse>(resp));
    EXPECT_EQ(std::get<ErrorResponse>(resp).code, ErrorCode::BadRequest);
  }
}

// ---------------------------------------------------------------------------
// Live server end-to-end over loopback
// ---------------------------------------------------------------------------

class LiveServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerConfig config;
    config.threads = 2;
    config.queue_capacity = 8;
    server_ = std::make_unique<Server>(std::move(config), &telemetry_);
    const auto started = server_->start();
    ASSERT_TRUE(started.has_value()) << started.error();
  }

  void TearDown() override { server_->shutdown(); }

  /// Connects and completes the HELLO handshake.
  OwnedFd connect_client() {
    auto sock = connect_tcp("127.0.0.1", server_->port());
    EXPECT_TRUE(sock.has_value());
    const ReadResult hello = read_frame(sock->get());
    EXPECT_EQ(hello.status, ReadStatus::Ok);
    EXPECT_EQ(hello.frame.type, FrameType::Hello);
    const Hello ours{kHelloMagic, kProtocolVersion, "test client"};
    EXPECT_TRUE(write_frame(sock->get(), FrameType::Hello,
                            encode_hello(ours))
                    .has_value());
    return std::move(*sock);
  }

  Response call(int fd, const Request& req) {
    EXPECT_TRUE(write_frame(fd, frame_type_of(req), encode_request(req))
                    .has_value());
    const ReadResult r = read_frame(fd);
    EXPECT_EQ(r.status, ReadStatus::Ok);
    auto resp = decode_response(r.frame.type, r.frame.payload);
    EXPECT_TRUE(resp.has_value());
    return resp.has_value() ? *resp
                            : Response{ErrorResponse{0, ErrorCode::Internal,
                                                     "decode failed"}};
  }

  obs::Telemetry telemetry_;
  /// Optional log sink a test may attach. Declared before server_ so
  /// it is destroyed after the server joined its threads — the "sink
  /// outlives the last log_event" contract of attach_logger.
  std::unique_ptr<obs::Logger> logger_;
  std::unique_ptr<Server> server_;
};

TEST_F(LiveServerTest, PingAndFaultSimBitIdentityThroughSocket) {
  OwnedFd client = connect_client();
  const Response pong = call(client.get(), Request{PingRequest{1}});
  ASSERT_TRUE(std::holds_alternative<PongResponse>(pong));
  EXPECT_EQ(std::get<PongResponse>(pong).id, 1u);

  FaultSimRequest req;
  req.id = 2;
  req.circuit = CircuitRef{CircuitRef::Kind::Roster, "s27"};
  req.vectors = 32;
  req.options.seed = 4;
  const Response resp = call(client.get(), Request{req});
  ASSERT_TRUE(std::holds_alternative<FaultSimResponse>(resp));
  const auto& served = std::get<FaultSimResponse>(resp);

  const Netlist nl = make_benchmark("s27");
  const CollapsedFaultList faults(nl);
  SimOptions opts = req.options;
  const auto checked = opts.validate();
  ASSERT_TRUE(checked.has_value());
  Rng rng(opts.seed);
  const TestSequence seq = random_sequence(nl, 32, rng);
  const PipelineResult ref =
      run_pipeline(nl, faults.faults(), seq, *checked);
  ASSERT_EQ(served.status.size(), ref.status.size());
  for (std::size_t i = 0; i < ref.status.size(); ++i) {
    EXPECT_EQ(served.status[i], static_cast<std::uint8_t>(ref.status[i]));
  }
  EXPECT_EQ(served.detect_frame, ref.detect_frame);
}

TEST_F(LiveServerTest, MalformedPayloadGetsErrorFrameAndConnectionLives) {
  OwnedFd client = connect_client();
  // A FAULT_SIM frame whose payload is garbage: typed ERROR back.
  ASSERT_TRUE(write_frame(client.get(), FrameType::FaultSimReq, "garbage")
                  .has_value());
  const ReadResult r = read_frame(client.get());
  ASSERT_EQ(r.status, ReadStatus::Ok);
  ASSERT_EQ(r.frame.type, FrameType::Error);
  const auto err = decode_response(r.frame.type, r.frame.payload);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(std::get<ErrorResponse>(*err).code, ErrorCode::BadFrame);

  // The connection survives a malformed payload: a PING still works.
  const Response pong = call(client.get(), Request{PingRequest{5}});
  EXPECT_TRUE(std::holds_alternative<PongResponse>(pong));
}

TEST_F(LiveServerTest, UnknownFrameTypeGetsErrorFrame) {
  OwnedFd client = connect_client();
  ASSERT_TRUE(write_frame(client.get(), static_cast<FrameType>(200), "xx")
                  .has_value());
  const ReadResult r = read_frame(client.get());
  ASSERT_EQ(r.status, ReadStatus::Ok);
  EXPECT_EQ(r.frame.type, FrameType::Error);
}

TEST_F(LiveServerTest, VersionMismatchIsRejected) {
  auto sock = connect_tcp("127.0.0.1", server_->port());
  ASSERT_TRUE(sock.has_value());
  const ReadResult hello = read_frame(sock->get());
  ASSERT_EQ(hello.status, ReadStatus::Ok);
  const Hello wrong{kHelloMagic, kProtocolVersion + 1, "future client"};
  ASSERT_TRUE(write_frame(sock->get(), FrameType::Hello,
                          encode_hello(wrong))
                  .has_value());
  const ReadResult r = read_frame(sock->get());
  ASSERT_EQ(r.status, ReadStatus::Ok);
  ASSERT_EQ(r.frame.type, FrameType::Error);
  const auto err = decode_response(r.frame.type, r.frame.payload);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(std::get<ErrorResponse>(*err).code,
            ErrorCode::VersionMismatch);
  // ... and the server hangs up.
  EXPECT_EQ(read_frame(sock->get()).status, ReadStatus::Eof);
}

TEST_F(LiveServerTest, PipelinedRequestsAllAnswered) {
  OwnedFd client = connect_client();
  constexpr int kCount = 16;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(write_frame(client.get(), FrameType::Ping,
                            encode_request(Request{PingRequest{
                                static_cast<std::uint32_t>(i)}}))
                    .has_value());
  }
  // Responses may arrive out of order; collect ids until all are seen.
  std::vector<bool> seen(kCount, false);
  for (int i = 0; i < kCount; ++i) {
    const ReadResult r = read_frame(client.get());
    ASSERT_EQ(r.status, ReadStatus::Ok);
    const auto resp = decode_response(r.frame.type, r.frame.payload);
    ASSERT_TRUE(resp.has_value());
    const std::uint32_t id = response_id(*resp);
    ASSERT_LT(id, static_cast<std::uint32_t>(kCount));
    EXPECT_FALSE(seen[id]);
    seen[id] = true;
  }
}

TEST_F(LiveServerTest, ShutdownDrainsInFlightRequests) {
  OwnedFd client = connect_client();
  // Kick off real work, then shut down immediately: the admitted
  // request must still be answered before the socket closes.
  FaultSimRequest req;
  req.id = 9;
  req.circuit = CircuitRef{CircuitRef::Kind::Roster, "s298"};
  req.vectors = 64;
  ASSERT_TRUE(write_frame(client.get(), FrameType::FaultSimReq,
                          encode_request(Request{req}))
                  .has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::thread stopper([&] { server_->shutdown(); });
  const ReadResult r = read_frame(client.get());
  stopper.join();
  ASSERT_EQ(r.status, ReadStatus::Ok);
  const auto resp = decode_response(r.frame.type, r.frame.payload);
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(std::holds_alternative<FaultSimResponse>(*resp))
      << "in-flight request was dropped by shutdown";
}

TEST_F(LiveServerTest, MetricsEndpointServesPrometheusAndHealthz) {
  // Generate one request so serve.* series exist.
  OwnedFd client = connect_client();
  (void)call(client.get(), Request{PingRequest{1}});

  auto http = connect_tcp("127.0.0.1", server_->http_port());
  ASSERT_TRUE(http.has_value());
  const std::string get =
      "GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n";
  ASSERT_TRUE(write_full(http->get(), get.data(), get.size()).has_value());
  std::string body;
  char buf[4096];
  for (;;) {
    const auto n = read_full(http->get(), buf, 1);
    if (!n.has_value() || *n == 0) break;
    body.push_back(buf[0]);
  }
  EXPECT_NE(body.find("200 OK"), std::string::npos);
  EXPECT_NE(body.find("motsim_build_info{"), std::string::npos);
  EXPECT_NE(body.find("serve_requests_completed"), std::string::npos);
  EXPECT_NE(body.find("serve_request_seconds_bucket"), std::string::npos);
  EXPECT_NE(body.find("serve_queue_depth"), std::string::npos);

  auto health = connect_tcp("127.0.0.1", server_->http_port());
  ASSERT_TRUE(health.has_value());
  const std::string hz = "GET /healthz HTTP/1.0\r\n\r\n";
  ASSERT_TRUE(
      write_full(health->get(), hz.data(), hz.size()).has_value());
  std::string hbody;
  for (;;) {
    const auto n = read_full(health->get(), buf, 1);
    if (!n.has_value() || *n == 0) break;
    hbody.push_back(buf[0]);
  }
  EXPECT_NE(hbody.find("200 OK"), std::string::npos);
  EXPECT_NE(hbody.find("ok"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Protocol v2: uniform trace accessors
// ---------------------------------------------------------------------------

TEST(Protocol, TraceAccessorsAreUniformAcrossVariants) {
  for (Response resp : sample_responses()) {
    set_response_trace(resp, "c7-r7");
    EXPECT_EQ(response_trace(resp), "c7-r7");
    // ... and the stamped trace survives the codec.
    const auto back =
        decode_response(frame_type_of(resp), encode_response(resp));
    ASSERT_TRUE(back.has_value()) << back.error();
    EXPECT_EQ(response_trace(*back), "c7-r7");
  }
}

// ---------------------------------------------------------------------------
// HttpEndpoint: pure request-text → reply routing
// ---------------------------------------------------------------------------

/// Every line of an NDJSON body is a non-empty JSON object (the full
/// syntax check lives in tests/test_obs.cpp; routing only needs the
/// object framing).
void expect_ndjson_lines(const std::string& body) {
  std::istringstream in(body);
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line);) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    ++lines;
  }
  EXPECT_GE(lines, 1u);
}

TEST(HttpEndpointTest, HealthzIsPlainText) {
  obs::Telemetry tele;
  const HttpEndpoint http(&tele);
  const HttpReply reply = http.handle("GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_EQ(reply.code, 200);
  EXPECT_EQ(reply.content_type, "text/plain; charset=utf-8");
  EXPECT_EQ(reply.body, "ok\n");
}

TEST(HttpEndpointTest, MetricsIsPrometheusTextExposition) {
  obs::Telemetry tele;
  tele.metrics.counter("serve.requests.completed").add(5);
  const HttpEndpoint http(&tele);
  const HttpReply reply = http.handle("GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(reply.code, 200);
  // The exposition-format version marker matters: Prometheus scrapers
  // key parsing off it.
  EXPECT_EQ(reply.content_type,
            "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(reply.body.find("motsim_build_info{"), std::string::npos);
  EXPECT_NE(reply.body.find("serve_requests_completed 5"),
            std::string::npos);
}

TEST(HttpEndpointTest, MetricsFormatJsonIsApplicationJson) {
  obs::Telemetry tele;
  tele.metrics.counter("serve.requests.completed").add(2);
  tele.metrics.histogram("serve.queue.wait_seconds", {0.1, 1.0})
      .observe(0.05);
  const HttpEndpoint http(&tele);
  const HttpReply reply =
      http.handle("GET /metrics?format=json HTTP/1.0\r\n\r\n");
  EXPECT_EQ(reply.code, 200);
  EXPECT_EQ(reply.content_type, "application/json; charset=utf-8");
  EXPECT_NE(reply.body.find("\"serve.requests.completed\": 2"),
            std::string::npos)
      << reply.body;
  // The quantile fields motsim_load's scraper reads are present.
  EXPECT_NE(reply.body.find("\"p50\""), std::string::npos);
  EXPECT_NE(reply.body.find("\"p99\""), std::string::npos);
}

TEST(HttpEndpointTest, DebugStateIsNdjsonOfSnapshotPlusRecorder) {
  obs::Telemetry tele;
  tele.metrics.counter("serve.requests.completed").add(1);
  obs::log_event(&tele, obs::LogLevel::Info, "test.recorded",
                 {obs::LogField::i64("k", 1)});
  const HttpEndpoint http(&tele);
  const HttpReply reply = http.handle("GET /debug/state HTTP/1.0\r\n\r\n");
  EXPECT_EQ(reply.code, 200);
  EXPECT_EQ(reply.content_type, "application/x-ndjson");
  expect_ndjson_lines(reply.body);
  EXPECT_NE(reply.body.find("\"counters\""), std::string::npos);
  EXPECT_NE(reply.body.find("test.recorded"), std::string::npos);
}

TEST(HttpEndpointTest, UnknownPathIs404AndNonGetIs405) {
  obs::Telemetry tele;
  const HttpEndpoint http(&tele);
  EXPECT_EQ(http.handle("GET /nope HTTP/1.0\r\n\r\n").code, 404);
  EXPECT_EQ(http.handle("POST /metrics HTTP/1.0\r\n\r\n").code, 405);
  EXPECT_EQ(http.handle("DELETE /healthz HTTP/1.0\r\n\r\n").code, 405);
}

TEST(HttpEndpointTest, NullTelemetryStillAnswersEveryRoute) {
  const HttpEndpoint http(nullptr);
  EXPECT_EQ(http.handle("GET /healthz HTTP/1.0\r\n\r\n").code, 200);
  EXPECT_EQ(http.handle("GET /metrics HTTP/1.0\r\n\r\n").code, 200);
  EXPECT_EQ(http.handle("GET /metrics?format=json HTTP/1.0\r\n\r\n").code,
            200);
  EXPECT_EQ(http.handle("GET /debug/state HTTP/1.0\r\n\r\n").code, 200);
}

TEST(HttpEndpointTest, RenderEmitsHttp10WithLengthAndClose) {
  HttpReply reply;
  reply.code = 404;
  reply.status = "Not Found";
  reply.body = "not found\n";
  const std::string out = HttpEndpoint::render(reply);
  EXPECT_EQ(out.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u) << out;
  EXPECT_NE(out.find("Content-Length: 10\r\n"), std::string::npos);
  EXPECT_NE(out.find("Connection: close\r\n"), std::string::npos);
  const std::size_t split = out.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos);
  EXPECT_EQ(out.substr(split + 4), reply.body);
}

// ---------------------------------------------------------------------------
// SIGUSR1 dump latch
// ---------------------------------------------------------------------------

TEST(Signals, DumpHandlerLatchesOneRequestPerSignal) {
  install_dump_handler();
  EXPECT_FALSE(take_dump_request());  // nothing pending yet
  ASSERT_EQ(::raise(SIGUSR1), 0);
  EXPECT_TRUE(take_dump_request());   // consumed exactly once
  EXPECT_FALSE(take_dump_request());
  ASSERT_EQ(::raise(SIGUSR1), 0);
  ASSERT_EQ(::raise(SIGUSR1), 0);     // coalesces, does not queue
  EXPECT_TRUE(take_dump_request());
  EXPECT_FALSE(take_dump_request());
}

// ---------------------------------------------------------------------------
// Live-server tracing and state dumps
// ---------------------------------------------------------------------------

namespace fs_std = std::filesystem;

std::vector<std::string> file_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::string temp_file(const std::string& tag) {
  return (fs_std::temp_directory_path() /
          ("motsim_serve_" + tag + "_" +
           std::to_string(
               ::testing::UnitTest::GetInstance()->random_seed()) +
           ".jsonl"))
      .string();
}

TEST_F(LiveServerTest, EveryResponseCarriesAFollowableTraceId) {
  const std::string log_file = temp_file("trace");
  fs_std::remove(log_file);
  auto logger = obs::Logger::open(log_file, obs::LogLevel::Info);
  ASSERT_TRUE(logger.has_value()) << logger.error();
  logger_ = std::move(*logger);
  telemetry_.attach_logger(logger_.get());

  OwnedFd client = connect_client();
  const Response pong = call(client.get(), Request{PingRequest{1}});
  ASSERT_TRUE(std::holds_alternative<PongResponse>(pong));
  FaultSimRequest req;
  req.id = 2;
  req.circuit = CircuitRef{CircuitRef::Kind::Roster, "s27"};
  req.vectors = 16;
  const Response resp = call(client.get(), Request{req});
  ASSERT_TRUE(std::holds_alternative<FaultSimResponse>(resp));

  // Both responses carry server-assigned "c<conn>-r<seq>" ids, distinct
  // per request on one connection.
  const std::string& t1 = response_trace(pong);
  const std::string& t2 = response_trace(resp);
  ASSERT_FALSE(t1.empty());
  ASSERT_FALSE(t2.empty());
  EXPECT_NE(t1, t2);
  EXPECT_EQ(t1.front(), 'c');
  EXPECT_NE(t1.find("-r"), std::string::npos);

  // The same id tags the access-log line of the FAULT_SIM request —
  // the grep an operator follows a request by. The worker writes that
  // line just after the response frame, so poll briefly.
  bool followed = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!followed && std::chrono::steady_clock::now() < deadline) {
    for (const std::string& line : file_lines(log_file)) {
      if (line.find("\"event\":\"serve.request\"") != std::string::npos &&
          line.find("\"trace\":\"" + t2 + "\"") != std::string::npos &&
          line.find("FAULT_SIM") != std::string::npos) {
        followed = true;
      }
    }
    if (!followed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(followed) << "no serve.request access-log line for " << t2;
  fs_std::remove(log_file);
}

TEST_F(LiveServerTest, DumpStateRequestReturnsMetricsAndRecorderWindow) {
  OwnedFd client = connect_client();
  (void)call(client.get(), Request{PingRequest{1}});

  const Response resp = call(client.get(), Request{DumpStateRequest{42}});
  ASSERT_TRUE(std::holds_alternative<DumpStateResponse>(resp));
  const auto& dump = std::get<DumpStateResponse>(resp);
  EXPECT_EQ(dump.id, 42u);
  EXPECT_FALSE(dump.trace.empty());
  ASSERT_FALSE(dump.metrics_json.empty());
  EXPECT_EQ(dump.metrics_json.front(), '{');
  EXPECT_NE(dump.metrics_json.find("serve.requests.ping"),
            std::string::npos);
  // The recorder (always on, no logger attached) retained the access
  // log of the earlier PING.
  EXPECT_NE(dump.recorder_jsonl.find("serve.request"), std::string::npos);
}

TEST_F(LiveServerTest, DebugStateEndpointServesNdjson) {
  OwnedFd client = connect_client();
  (void)call(client.get(), Request{PingRequest{1}});

  auto http = connect_tcp("127.0.0.1", server_->http_port());
  ASSERT_TRUE(http.has_value());
  const std::string get = "GET /debug/state HTTP/1.0\r\n\r\n";
  ASSERT_TRUE(write_full(http->get(), get.data(), get.size()).has_value());
  std::string text;
  char buf[1];
  for (;;) {
    const auto n = read_full(http->get(), buf, 1);
    if (!n.has_value() || *n == 0) break;
    text.push_back(buf[0]);
  }
  EXPECT_NE(text.find("200 OK"), std::string::npos);
  EXPECT_NE(text.find("Content-Type: application/x-ndjson"),
            std::string::npos);
  const std::size_t split = text.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos);
  expect_ndjson_lines(text.substr(split + 4));
}

TEST_F(LiveServerTest, DumpStateWritesPerLineValidJsonl) {
  OwnedFd client = connect_client();
  (void)call(client.get(), Request{PingRequest{1}});

  const std::string dump_file = temp_file("dump");
  fs_std::remove(dump_file);
  const auto written = server_->dump_state(dump_file);
  ASSERT_TRUE(written.has_value()) << written.error();
  const std::vector<std::string> lines = file_lines(dump_file);
  ASSERT_GE(lines.size(), 2u);  // metrics snapshot + recorder window
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
  }
  EXPECT_NE(lines[0].find("\"counters\""), std::string::npos);
  // Appending semantics: a second dump extends the same file.
  ASSERT_TRUE(server_->dump_state(dump_file).has_value());
  EXPECT_GT(file_lines(dump_file).size(), lines.size());
  fs_std::remove(dump_file);
}

}  // namespace
}  // namespace motsim::serve
