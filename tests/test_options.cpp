// The unified SimOptions surface (core/options.h): validation,
// round-trips to/from the legacy nested configs, and the Expected
// error carrier.

#include <gtest/gtest.h>

#include "bench_data/s27.h"
#include "core/options.h"
#include "core/pipeline.h"
#include "faults/collapse.h"
#include "tpg/sequences.h"
#include "util/expected.h"
#include "util/rng.h"

namespace motsim {
namespace {

// ---------------------------------------------------------------------------
// Expected
// ---------------------------------------------------------------------------

TEST(Expected, ValueState) {
  Expected<int, std::string> e(7);
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(static_cast<bool>(e));
  EXPECT_EQ(*e, 7);
  EXPECT_EQ(e.value_or(9), 7);
}

TEST(Expected, ErrorState) {
  Expected<int, std::string> e = make_unexpected(std::string("boom"));
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.error(), "boom");
  EXPECT_EQ(e.value_or(9), 9);
  EXPECT_THROW((void)e.value(), std::logic_error);
}

// ---------------------------------------------------------------------------
// SimOptions::validate
// ---------------------------------------------------------------------------

TEST(SimOptions, DefaultsAreValid) {
  const SimOptions o;
  const auto checked = o.validate();
  ASSERT_TRUE(checked.has_value()) << checked.error();
  EXPECT_EQ(*checked, o);  // no normalization today
}

TEST(SimOptions, RejectsZeroLimits) {
  SimOptions o;
  o.node_limit = 0;
  EXPECT_FALSE(o.validate().has_value());

  o = SimOptions{};
  o.fallback_frames = 0;
  EXPECT_FALSE(o.validate().has_value());

  o = SimOptions{};
  o.hard_limit_factor = 0;
  EXPECT_FALSE(o.validate().has_value());
}

TEST(SimOptions, RejectsAbsurdThreadCounts) {
  SimOptions o;
  o.threads = 1025;
  const auto checked = o.validate();
  ASSERT_FALSE(checked.has_value());
  EXPECT_NE(checked.error().find("threads"), std::string::npos);

  o.threads = 0;  // 0 is valid: one worker per hardware thread
  EXPECT_TRUE(o.validate().has_value());
}

TEST(SimOptions, RejectsBadBddTuning) {
  SimOptions o;
  o.bdd_cache_size_log2 = 2;
  EXPECT_FALSE(o.validate().has_value());
  o.bdd_cache_size_log2 = 31;
  EXPECT_FALSE(o.validate().has_value());
  o.bdd_cache_size_log2 = 16;
  o.bdd_initial_capacity = 1;
  EXPECT_FALSE(o.validate().has_value());
}

TEST(SimOptions, RejectsCorruptEnums) {
  SimOptions o;
  o.strategy = static_cast<Strategy>(250);
  EXPECT_FALSE(o.validate().has_value());
  o = SimOptions{};
  o.layout = static_cast<VarLayout>(250);
  EXPECT_FALSE(o.validate().has_value());
  o = SimOptions{};
  o.sim3_backend = static_cast<Sim3Backend>(7);
  const auto checked = o.validate();
  ASSERT_FALSE(checked.has_value());
  EXPECT_NE(checked.error().find("sim3_backend"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

TEST(SimOptions, HybridConfigMapping) {
  SimOptions o;
  o.strategy = Strategy::Rmot;
  o.layout = VarLayout::Blocked;
  o.node_limit = 1234;
  o.fallback_frames = 5;
  o.hard_limit_factor = 3;
  o.bdd_cache_size_log2 = 18;

  const HybridConfig h = o.to_hybrid_config();
  EXPECT_EQ(h.strategy, Strategy::Rmot);
  EXPECT_EQ(h.layout, VarLayout::Blocked);
  EXPECT_EQ(h.node_limit, 1234u);
  EXPECT_EQ(h.fallback_frames, 5u);
  EXPECT_EQ(h.hard_limit_factor, 3u);
  EXPECT_EQ(h.bdd.cache_size_log2, 18u);
}

TEST(SimOptions, PipelineConfigRoundTrip) {
  SimOptions o;
  o.run_xred = false;
  o.sim3_backend = Sim3Backend::BitPar;
  o.run_symbolic = true;
  o.strategy = Strategy::Sot;
  o.layout = VarLayout::Blocked;
  o.node_limit = 777;
  o.fallback_frames = 3;
  o.hard_limit_factor = 2;
  o.threads = 4;
  o.chunk_size = 32;
  o.bdd_initial_capacity = 1u << 10;
  o.bdd_cache_size_log2 = 14;
  o.bdd_auto_gc_floor = 1u << 12;

  const SimOptions back =
      SimOptions::from_pipeline_config(o.to_pipeline_config());
  // `seed` is the one field PipelineConfig never carried; everything
  // else must survive the round trip.
  SimOptions expected = o;
  expected.seed = SimOptions{}.seed;
  EXPECT_EQ(back, expected);
}

TEST(SimOptions, DefaultsMatchLegacyDefaults) {
  // A default SimOptions must reproduce the legacy default configs
  // exactly — that is the compatibility contract.
  const PipelineConfig legacy;
  const PipelineConfig converted = SimOptions{}.to_pipeline_config();
  EXPECT_EQ(converted.run_xred, legacy.run_xred);
  EXPECT_EQ(converted.sim3_backend, legacy.sim3_backend);
  EXPECT_EQ(converted.run_symbolic, legacy.run_symbolic);
  EXPECT_EQ(converted.threads, legacy.threads);
  EXPECT_EQ(converted.hybrid.strategy, legacy.hybrid.strategy);
  EXPECT_EQ(converted.hybrid.node_limit, legacy.hybrid.node_limit);
  EXPECT_EQ(converted.hybrid.fallback_frames, legacy.hybrid.fallback_frames);
  EXPECT_EQ(converted.hybrid.bdd.cache_size_log2,
            legacy.hybrid.bdd.cache_size_log2);
}

// ---------------------------------------------------------------------------
// run_pipeline(SimOptions)
// ---------------------------------------------------------------------------

TEST(SimOptions, PipelineOverloadMatchesLegacyPath) {
  const Netlist nl = make_s27();
  const CollapsedFaultList faults(nl);
  Rng rng(11);
  const TestSequence seq = random_sequence(nl, 48, rng);

  SimOptions o;
  o.strategy = Strategy::Mot;
  const PipelineResult via_options = run_pipeline(nl, faults.faults(), seq, o);
  const PipelineResult via_legacy =
      run_pipeline(nl, faults.faults(), seq, o.to_pipeline_config());
  EXPECT_EQ(via_options.status, via_legacy.status);
  EXPECT_EQ(via_options.detect_frame, via_legacy.detect_frame);
}

TEST(SimOptions, PipelineOverloadThrowsOnInvalid) {
  const Netlist nl = make_s27();
  const CollapsedFaultList faults(nl);
  const TestSequence seq = sequence_from_strings({"0000"});
  SimOptions o;
  o.node_limit = 0;
  EXPECT_THROW((void)run_pipeline(nl, faults.faults(), seq, o),
               std::invalid_argument);
}

}  // namespace
}  // namespace motsim
