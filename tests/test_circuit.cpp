// Netlist construction, finalize-time validation, levelization, event
// queue, fanout-free regions and the structural lint.

#include <gtest/gtest.h>

#include "bench_data/s27.h"
#include "circuit/ffr.h"
#include "circuit/levelize.h"
#include "circuit/netlist.h"
#include "circuit/stats.h"
#include "circuit/validate.h"
#include "faults/collapse.h"

namespace motsim {
namespace {

/// a -> AND -> PO with one DFF in a feedback loop.
Netlist tiny_loop() {
  Netlist nl("tiny");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex q = nl.add_dff(kNoNode, "q");
  const NodeIndex g = nl.add_gate(GateType::And, {a, q}, "g");
  nl.set_fanins(q, {g});
  nl.mark_output(g);
  nl.finalize();
  return nl;
}

TEST(Netlist, BasicConstruction) {
  const Netlist nl = tiny_loop();
  EXPECT_EQ(nl.node_count(), 3u);
  EXPECT_EQ(nl.input_count(), 1u);
  EXPECT_EQ(nl.output_count(), 1u);
  EXPECT_EQ(nl.dff_count(), 1u);
  EXPECT_EQ(nl.gate_count(), 1u);
  EXPECT_TRUE(nl.finalized());
}

TEST(Netlist, FindByName) {
  const Netlist nl = tiny_loop();
  EXPECT_NE(nl.find("a"), kNoNode);
  EXPECT_NE(nl.find("q"), kNoNode);
  EXPECT_EQ(nl.find("nope"), kNoNode);
  EXPECT_EQ(nl.gate(nl.find("g")).type, GateType::And);
}

TEST(Netlist, FanoutsCarryPinNumbers) {
  const Netlist nl = tiny_loop();
  const NodeIndex a = nl.find("a");
  const NodeIndex g = nl.find("g");
  ASSERT_EQ(nl.fanouts(a).size(), 1u);
  EXPECT_EQ(nl.fanouts(a)[0].node, g);
  EXPECT_EQ(nl.fanouts(a)[0].pin, 0u);
  const NodeIndex q = nl.find("q");
  ASSERT_EQ(nl.fanouts(q).size(), 1u);
  EXPECT_EQ(nl.fanouts(q)[0].pin, 1u);
}

TEST(Netlist, LevelsStartAtFrameInputs) {
  const Netlist nl = tiny_loop();
  EXPECT_EQ(nl.level(nl.find("a")), 0u);
  EXPECT_EQ(nl.level(nl.find("q")), 0u);
  EXPECT_EQ(nl.level(nl.find("g")), 1u);
  EXPECT_EQ(nl.max_level(), 1u);
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  const Netlist nl = make_s27();
  std::vector<std::size_t> position(nl.node_count());
  const auto& topo = nl.topo_order();
  ASSERT_EQ(topo.size(), nl.node_count());
  for (std::size_t i = 0; i < topo.size(); ++i) position[topo[i]] = i;
  for (NodeIndex n = 0; n < nl.node_count(); ++n) {
    const Gate& g = nl.gate(n);
    if (is_frame_input(g.type)) continue;
    for (NodeIndex f : g.fanins) {
      EXPECT_LT(position[f], position[n])
          << nl.gate(f).name << " must precede " << g.name;
    }
  }
}

TEST(Netlist, CombinationalCycleIsRejected) {
  Netlist nl("cyc");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex g1 = nl.add_gate(GateType::And, {}, "g1");
  const NodeIndex g2 = nl.add_gate(GateType::Or, {g1, a}, "g2");
  nl.set_fanins(g1, {g2, a});
  nl.mark_output(g2);
  EXPECT_THROW(nl.finalize(), std::invalid_argument);
}

TEST(Netlist, ArityIsValidated) {
  {
    Netlist nl("bad-not");
    const NodeIndex a = nl.add_input("a");
    const NodeIndex b = nl.add_input("b");
    nl.add_gate(GateType::Not, {a, b}, "n");
    EXPECT_THROW(nl.finalize(), std::invalid_argument);
  }
  {
    Netlist nl("bad-and");
    const NodeIndex a = nl.add_input("a");
    nl.add_gate(GateType::And, {a}, "g");
    EXPECT_THROW(nl.finalize(), std::invalid_argument);
  }
  {
    Netlist nl("bad-dff");
    nl.add_dff(kNoNode, "q");  // fanin never set
    EXPECT_THROW(nl.finalize(), std::invalid_argument);
  }
}

TEST(Netlist, FrozenAfterFinalize) {
  Netlist nl = tiny_loop();
  EXPECT_THROW((void)nl.add_input("late"), std::logic_error);
  EXPECT_THROW(nl.mark_output(0), std::logic_error);
  EXPECT_THROW(nl.set_fanins(0, {}), std::logic_error);
}

TEST(Netlist, AddGateRejectsSpecialKinds) {
  Netlist nl("t");
  EXPECT_THROW((void)nl.add_gate(GateType::Input, {}, "x"),
               std::invalid_argument);
  EXPECT_THROW((void)nl.add_gate(GateType::Dff, {}, "x"),
               std::invalid_argument);
}

TEST(Netlist, MultiplePoMarksOnOneNet) {
  Netlist nl("dup-po");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex g = nl.add_gate(GateType::Not, {a}, "g");
  nl.mark_output(g);
  nl.mark_output(g);
  nl.finalize();
  EXPECT_EQ(nl.output_count(), 2u);
  EXPECT_TRUE(nl.is_output(g));
}

TEST(Netlist, DffPositionInverse) {
  const Netlist nl = make_s27();
  for (std::size_t i = 0; i < nl.dff_count(); ++i) {
    EXPECT_EQ(nl.dff_position(nl.dffs()[i]), i);
  }
  EXPECT_EQ(nl.dff_position(nl.inputs()[0]), 0xFFFFFFFFu);
}

TEST(EvalGate2, AllGateKinds) {
  EXPECT_TRUE(eval_gate2(GateType::And, {true, true}));
  EXPECT_FALSE(eval_gate2(GateType::And, {true, false}));
  EXPECT_TRUE(eval_gate2(GateType::Nand, {true, false}));
  EXPECT_TRUE(eval_gate2(GateType::Or, {false, true}));
  EXPECT_TRUE(eval_gate2(GateType::Nor, {false, false}));
  EXPECT_TRUE(eval_gate2(GateType::Xor, {true, false}));
  EXPECT_FALSE(eval_gate2(GateType::Xor, {true, true}));
  EXPECT_TRUE(eval_gate2(GateType::Xnor, {true, true}));
  EXPECT_FALSE(eval_gate2(GateType::Not, {true}));
  EXPECT_TRUE(eval_gate2(GateType::Buf, {true}));
  EXPECT_FALSE(eval_gate2(GateType::Const0, {}));
  EXPECT_TRUE(eval_gate2(GateType::Const1, {}));
}

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

TEST(EventQueue, PopsInLevelOrder) {
  const Netlist nl = make_s27();
  EventQueue q(nl);
  // Push all gates in reverse topological order; pops must come back
  // level-sorted.
  const auto& topo = nl.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) q.push(*it);
  std::uint32_t last_level = 0;
  std::size_t popped = 0;
  for (NodeIndex n = q.pop(); n != kNoNode; n = q.pop()) {
    EXPECT_GE(nl.level(n), last_level);
    last_level = nl.level(n);
    ++popped;
  }
  EXPECT_EQ(popped, nl.node_count());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DuplicatesAreSuppressed) {
  const Netlist nl = make_s27();
  EventQueue q(nl);
  q.push(0);
  q.push(0);
  EXPECT_NE(q.pop(), kNoNode);
  EXPECT_EQ(q.pop(), kNoNode);
}

TEST(EventQueue, ClearForgetsEverything) {
  const Netlist nl = make_s27();
  EventQueue q(nl);
  q.push(0);
  q.push(5);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pop(), kNoNode);
  // Cleared nodes can be pushed again.
  q.push(0);
  EXPECT_EQ(q.pop(), 0u);
}

TEST(NodesByLevel, PartitionsAllNodes) {
  const Netlist nl = make_s27();
  const auto levels = nodes_by_level(nl);
  std::size_t total = 0;
  for (std::size_t l = 0; l < levels.size(); ++l) {
    for (NodeIndex n : levels[l]) {
      EXPECT_EQ(nl.level(n), l);
      ++total;
    }
  }
  EXPECT_EQ(total, nl.node_count());
}

// ---------------------------------------------------------------------------
// Fanout-free regions
// ---------------------------------------------------------------------------

TEST(Ffr, ChainIsOneRegion) {
  Netlist nl("chain");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex n1 = nl.add_gate(GateType::Not, {a}, "n1");
  const NodeIndex n2 = nl.add_gate(GateType::Not, {n1}, "n2");
  const NodeIndex n3 = nl.add_gate(GateType::Not, {n2}, "n3");
  nl.mark_output(n3);
  nl.finalize();

  const FanoutFreeRegions ffr(nl);
  EXPECT_TRUE(ffr.is_head(n3));
  EXPECT_EQ(ffr.head_of(a), n3);
  EXPECT_EQ(ffr.head_of(n1), n3);
  EXPECT_EQ(ffr.head_of(n2), n3);
  const auto members = ffr.members_backward(n3);
  EXPECT_EQ(members.size(), 4u);  // n3, n2, n1, a
  EXPECT_EQ(members.front(), n3);
}

TEST(Ffr, FanoutSplitsRegions) {
  Netlist nl("split");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex b = nl.add_input("b");
  const NodeIndex s = nl.add_gate(GateType::Not, {a}, "stem");
  const NodeIndex g1 = nl.add_gate(GateType::And, {s, b}, "g1");
  const NodeIndex g2 = nl.add_gate(GateType::Or, {s, b}, "g2");
  nl.mark_output(g1);
  nl.mark_output(g2);
  nl.finalize();

  const FanoutFreeRegions ffr(nl);
  EXPECT_TRUE(ffr.is_head(s));   // fanout = 2
  EXPECT_TRUE(ffr.is_head(g1));  // primary output
  EXPECT_TRUE(ffr.is_head(g2));
  EXPECT_TRUE(ffr.is_head(b));   // feeds two gates
}

TEST(Ffr, DffBoundsARegion) {
  const Netlist nl = tiny_loop();
  const FanoutFreeRegions ffr(nl);
  // g feeds both the PO list and the DFF: its net is a head.
  EXPECT_TRUE(ffr.is_head(nl.find("g")));
}

TEST(Ffr, HeadsCoverAllNodes) {
  const Netlist nl = make_s27();
  const FanoutFreeRegions ffr(nl);
  std::size_t covered = 0;
  for (NodeIndex head : ffr.heads()) {
    covered += ffr.members_backward(head).size();
  }
  EXPECT_EQ(covered, nl.node_count());
}

TEST(Ffr, MembersBackwardRejectsNonHeads) {
  const Netlist nl = make_s27();
  const FanoutFreeRegions ffr(nl);
  for (NodeIndex n = 0; n < nl.node_count(); ++n) {
    if (!ffr.is_head(n)) {
      EXPECT_THROW((void)ffr.members_backward(n), std::invalid_argument);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// CircuitStats
// ---------------------------------------------------------------------------

TEST(CircuitStats, S27Numbers) {
  const CircuitStats s = CircuitStats::of(make_s27());
  EXPECT_EQ(s.inputs, 4u);
  EXPECT_EQ(s.outputs, 1u);
  EXPECT_EQ(s.dffs, 3u);
  EXPECT_EQ(s.gates, 10u);
  EXPECT_EQ(s.depth, 6u);
  // 17 nodes, 21 fanin pins -> 38 sites, 76 uncollapsed faults.
  EXPECT_EQ(s.fault_sites, 38u);
  EXPECT_EQ(s.by_type[static_cast<std::size_t>(GateType::Nor)], 2u);
  EXPECT_EQ(s.by_type[static_cast<std::size_t>(GateType::Dff)], 3u);
  EXPECT_GT(s.max_fanout, 1u);
  const std::string text = s.to_string();
  EXPECT_NE(text.find("flip-flops 3"), std::string::npos);
  EXPECT_NE(text.find("NOR=2"), std::string::npos);
}

TEST(CircuitStats, RequiresFinalized) {
  Netlist nl("raw");
  (void)nl.add_input("a");
  EXPECT_THROW((void)CircuitStats::of(nl), std::logic_error);
}

TEST(CircuitStats, AttachCollapseFillsClassCounts) {
  const Netlist nl = make_s27();
  CircuitStats s = CircuitStats::of(nl);
  // Absent until attached — circuit/ stays independent of faults/.
  EXPECT_FALSE(s.has_collapse);
  EXPECT_EQ(s.to_string().find("collapse:"), std::string::npos);
  attach_collapse(s, nl);
  EXPECT_TRUE(s.has_collapse);
  EXPECT_EQ(s.uncollapsed_faults, 76u);
  EXPECT_EQ(s.equivalence_classes, 26u);
  // Dominance drops further classes on top of equivalence, but never
  // below 1 per output cone.
  EXPECT_LT(s.dominance_classes, s.equivalence_classes);
  EXPECT_GT(s.dominance_classes, 0u);
  const std::string text = s.to_string();
  EXPECT_NE(text.find("collapse:"), std::string::npos);
  EXPECT_NE(text.find("equivalence classes 26"), std::string::npos);
  EXPECT_NE(text.find("of 76 uncollapsed"), std::string::npos);
}

// ---------------------------------------------------------------------------
// validate
// ---------------------------------------------------------------------------

TEST(Validate, CleanCircuitHasNoFindings) {
  const ValidationReport report = validate(make_s27());
  EXPECT_TRUE(report.clean()) << report.messages.front();
}

TEST(Validate, DetectsDanglingNet) {
  Netlist nl("dangling");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex g = nl.add_gate(GateType::Not, {a}, "dead");
  (void)g;
  const NodeIndex g2 = nl.add_gate(GateType::Not, {a}, "alive");
  nl.mark_output(g2);
  nl.finalize();
  const ValidationReport report = validate(nl);
  ASSERT_EQ(report.dangling_nets.size(), 1u);
  EXPECT_EQ(nl.gate(report.dangling_nets[0]).name, "dead");
  // The dead cone is also unobservable.
  EXPECT_FALSE(report.unobservable_nodes.empty());
}

TEST(Validate, DetectsDuplicateFanin) {
  Netlist nl("dup");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex g = nl.add_gate(GateType::And, {a, a}, "g");
  nl.mark_output(g);
  nl.finalize();
  const ValidationReport report = validate(nl);
  ASSERT_EQ(report.duplicate_fanin_gates.size(), 1u);
  EXPECT_EQ(report.duplicate_fanin_gates[0], g);
}

}  // namespace
}  // namespace motsim
