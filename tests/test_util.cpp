#include <gtest/gtest.h>

#include "motsim.h"  // umbrella header must compile standalone

#include <set>
#include <sstream>

#include "util/cli_args.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace motsim {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 300; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceIsRoughlyCalibrated) {
  Rng rng(19);
  int hits = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.25, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.fork();
  // The child stream should not replay the parent stream.
  Rng b(21);
  (void)b.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (child() == b());
  EXPECT_LT(equal, 4);
}

TEST(Rng, SplitMix64KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);  // same seed, same first output
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(Strings, SplitKeepsEmptyPieces) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitTrimsPieces) {
  const auto parts = split(" x , y ", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "x");
  EXPECT_EQ(parts[1], "y");
}

TEST(Strings, CaseConversions) {
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_EQ(to_upper("AbC"), "ABC");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("INPUT(x)", "INPUT"));
  EXPECT_FALSE(starts_with("IN", "INPUT"));
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

// ---------------------------------------------------------------------------
// Stopwatch
// ---------------------------------------------------------------------------

TEST(Stopwatch, MonotoneNonNegative) {
  Stopwatch sw;
  const double a = sw.elapsed_seconds();
  const double b = sw.elapsed_seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch sw;
  sw.reset();
  EXPECT_LT(sw.elapsed_seconds(), 1.0);
}

TEST(AccumulatingTimer, AccumulatesWindows) {
  AccumulatingTimer t;
  EXPECT_EQ(t.total_seconds(), 0.0);
  t.start();
  t.stop();
  const double after_one = t.total_seconds();
  EXPECT_GE(after_one, 0.0);
  t.start();
  t.stop();
  EXPECT_GE(t.total_seconds(), after_one);
  t.reset();
  EXPECT_EQ(t.total_seconds(), 0.0);
}

// ---------------------------------------------------------------------------
// TablePrinter
// ---------------------------------------------------------------------------

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"Circ.", "|F|"});
  t.add_row({"s298", "308"});
  t.add_row({"s38584.1", "36303"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("s298"), std::string::npos);
  EXPECT_NE(out.find("36303"), std::string::npos);
  // All lines between separators must have the same width.
  std::istringstream lines(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TablePrinter, RowCountIgnoresSeparators) {
  TablePrinter t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinter, ShortRowsArePadded) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Env
// ---------------------------------------------------------------------------

TEST(Env, FlagParsesTruthyValues) {
  ::setenv("MOTSIM_TEST_FLAG", "1", 1);
  EXPECT_TRUE(env_flag("MOTSIM_TEST_FLAG"));
  ::setenv("MOTSIM_TEST_FLAG", "yes", 1);
  EXPECT_TRUE(env_flag("MOTSIM_TEST_FLAG"));
  ::setenv("MOTSIM_TEST_FLAG", "0", 1);
  EXPECT_FALSE(env_flag("MOTSIM_TEST_FLAG"));
  ::unsetenv("MOTSIM_TEST_FLAG");
  EXPECT_FALSE(env_flag("MOTSIM_TEST_FLAG"));
}

TEST(Env, IntFallsBack) {
  ::unsetenv("MOTSIM_TEST_INT");
  EXPECT_EQ(env_int("MOTSIM_TEST_INT", 42), 42);
  ::setenv("MOTSIM_TEST_INT", "17", 1);
  EXPECT_EQ(env_int("MOTSIM_TEST_INT", 42), 17);
  ::setenv("MOTSIM_TEST_INT", "junk", 1);
  EXPECT_EQ(env_int("MOTSIM_TEST_INT", 42), 42);
  ::unsetenv("MOTSIM_TEST_INT");
}

// ---------------------------------------------------------------------------
// CLI argument parsing (shared by motsim_cli and motsim_lint)
// ---------------------------------------------------------------------------

TEST(CliArgs, ParsesPlainIntegers) {
  EXPECT_EQ(*parse_cli_u64("--seed", "0"), 0u);
  EXPECT_EQ(*parse_cli_u64("--seed", "42"), 42u);
  EXPECT_EQ(*parse_cli_u64("--seed", "18446744073709551615"),
            18446744073709551615ull);
  EXPECT_EQ(*parse_cli_size("--top", "5"), 5u);
}

TEST(CliArgs, RejectsEmptyValueWithNamedFlag) {
  const auto r = parse_cli_u64("--vectors", "");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), "--vectors expects a non-negative integer");
}

TEST(CliArgs, RejectsNonDigitsWithNamedFlag) {
  for (const char* bad : {"12abc", "-3", "0x10", " 7", "3.5", "junk"}) {
    const auto r = parse_cli_u64("--top", bad);
    ASSERT_FALSE(r.has_value()) << bad;
    EXPECT_EQ(r.error(), std::string("--top expects a non-negative "
                                     "integer, got '") +
                             bad + "'");
  }
}

TEST(CliArgs, RejectsOutOfRangeWithNamedFlag) {
  // One digit past 2^64-1.
  const auto r = parse_cli_u64("--seed", "18446744073709551616");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(),
            "--seed value out of range: '18446744073709551616'");
  const auto s = parse_cli_size("--node-limit", "99999999999999999999");
  ASSERT_FALSE(s.has_value());
  EXPECT_NE(s.error().find("out of range"), std::string::npos);
}

}  // namespace
}  // namespace motsim
