// Bit-parallel fault simulator: packed-logic algebra, and exact
// agreement (status AND detection frame) with the serial event-driven
// simulator across the roster and random circuits.

#include <gtest/gtest.h>

#include "bench_data/registry.h"
#include "bench_data/s27.h"
#include "faults/collapse.h"
#include "reference.h"
#include "sim3/parallel_fault_sim3.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace motsim {
namespace {

using testing::small_random_circuit;

const Val3 kAll3[] = {Val3::Zero, Val3::One, Val3::X};

TEST(PackedVal3, BroadcastAndSlotRoundTrip) {
  for (Val3 v : kAll3) {
    const PackedVal3 p = broadcast(v);
    for (unsigned slot : {0u, 1u, 31u, 63u}) {
      EXPECT_EQ(slot_value(p, slot), v);
    }
  }
}

TEST(PackedVal3, OpsMatchScalarKleeneLogic) {
  // Pack all 9 operand combinations into 9 slots and compare each
  // slot against the scalar operations.
  PackedVal3 a{}, b{};
  Val3 sa[9], sb[9];
  unsigned slot = 0;
  for (Val3 va : kAll3) {
    for (Val3 vb : kAll3) {
      const std::uint64_t bit = std::uint64_t{1} << slot;
      if (va == Val3::One) a.ones |= bit;
      if (va == Val3::Zero) a.zeros |= bit;
      if (vb == Val3::One) b.ones |= bit;
      if (vb == Val3::Zero) b.zeros |= bit;
      sa[slot] = va;
      sb[slot] = vb;
      ++slot;
    }
  }
  const PackedVal3 pa = pand(a, b);
  const PackedVal3 po = por(a, b);
  const PackedVal3 px = pxor(a, b);
  const PackedVal3 pn = pnot(a);
  for (unsigned s = 0; s < 9; ++s) {
    EXPECT_EQ(slot_value(pa, s), and3(sa[s], sb[s])) << s;
    EXPECT_EQ(slot_value(po, s), or3(sa[s], sb[s])) << s;
    EXPECT_EQ(slot_value(px, s), xor3(sa[s], sb[s])) << s;
    EXPECT_EQ(slot_value(pn, s), not3(sa[s])) << s;
  }
}

TEST(PackedVal3, InvariantOnesAndZerosDisjoint) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    // Construct well-formed packs and check closure of the ops.
    const std::uint64_t o1 = rng(), z1 = rng() & ~o1;
    const std::uint64_t o2 = rng(), z2 = rng() & ~o2;
    const PackedVal3 a{o1, z1}, b{o2, z2};
    for (PackedVal3 r : {pand(a, b), por(a, b), pxor(a, b), pnot(a)}) {
      EXPECT_EQ(r.ones & r.zeros, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Exact agreement with the serial simulator
// ---------------------------------------------------------------------------

void expect_same_results(const Netlist& nl, const TestSequence& seq,
                         const std::vector<FaultStatus>* initial = nullptr) {
  const CollapsedFaultList c(nl);

  FaultSim3 serial(nl, c.faults());
  ParallelFaultSim3 parallel(nl, c.faults());
  if (initial != nullptr) {
    serial.set_initial_status(*initial);
    parallel.set_initial_status(*initial);
  }
  const auto rs = serial.run(seq);
  const auto rp = parallel.run(seq);

  EXPECT_EQ(rs.detected_count, rp.detected_count) << nl.name();
  EXPECT_EQ(rs.simulated_faults, rp.simulated_faults);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(rs.status[i], rp.status[i])
        << nl.name() << " " << fault_name(nl, c.faults()[i]);
    EXPECT_EQ(rs.detect_frame[i], rp.detect_frame[i])
        << nl.name() << " " << fault_name(nl, c.faults()[i]);
  }
}

TEST(ParallelFaultSim3, MatchesSerialOnS27) {
  const Netlist nl = make_s27();
  Rng rng(11);
  expect_same_results(nl, random_sequence(nl, 50, rng));
}

class ParallelVsSerial : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelVsSerial, IdenticalOnRandomCircuits) {
  const Netlist nl = small_random_circuit(GetParam());
  Rng rng(GetParam() * 101 + 13);
  expect_same_results(nl, random_sequence(nl, 15, rng));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelVsSerial,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

TEST(ParallelFaultSim3, MatchesSerialOnRosterCircuits) {
  Rng rng(17);
  for (const char* name : {"s298", "s344", "s820", "s208.1", "s510"}) {
    const Netlist nl = make_benchmark(name);
    expect_same_results(nl, random_sequence(nl, 40, rng));
  }
}

TEST(ParallelFaultSim3, RespectsInitialStatus) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  Rng rng(19);
  const TestSequence seq = random_sequence(nl, 30, rng);

  std::vector<FaultStatus> initial(c.size(), FaultStatus::Undetected);
  for (std::size_t i = 0; i < initial.size(); i += 2) {
    initial[i] = FaultStatus::XRedundant;
  }
  expect_same_results(nl, seq, &initial);

  ParallelFaultSim3 sim(nl, c.faults());
  sim.set_initial_status(initial);
  const auto r = sim.run(seq);
  for (std::size_t i = 0; i < initial.size(); i += 2) {
    EXPECT_EQ(r.status[i], FaultStatus::XRedundant);
  }
}

TEST(ParallelFaultSim3, GroupsLargerThan64Faults) {
  // s298-like has >64 faults, exercising multi-group packing.
  const Netlist nl = make_benchmark("s298");
  const CollapsedFaultList c(nl);
  ASSERT_GT(c.size(), 64u);
  Rng rng(23);
  expect_same_results(nl, random_sequence(nl, 25, rng));
}

TEST(ParallelFaultSim3, EmptySequenceDetectsNothing) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  ParallelFaultSim3 sim(nl, c.faults());
  const auto r = sim.run({});
  EXPECT_EQ(r.detected_count, 0u);
}

}  // namespace
}  // namespace motsim
