// Reproductions of the paper's illustrative figures.
//
// Fig. 1 / Fig. 3: a stuck-at fault that no SOT-based simulation can
// detect, while the MOT detection function D(x,y) = [x==!y]*[x==y]
// vanishes — detected (Section IV, example around Fig. 3).
//
// Fig. 2: a sequence that initializes the fault-free circuit but not
// the faulty one; the fault stays undetectable under Definition 2
// despite the initialization.

#include <gtest/gtest.h>

#include "core/sym_fault_sim.h"
#include "core/sym_true_value.h"
#include "reference.h"
#include "tpg/sequences.h"

namespace motsim {
namespace {

using testing::ref_mot_detectable;
using testing::ref_rmot_detectable;
using testing::ref_sot_detectable;

/// The Fig. 3 machine: one flip-flop s, inputs i1 and i2,
///   output   o = XNOR(i2, s)  (built from AND/OR/NOT gates)
///   next s   d = XOR(i1, s)
/// With the sequence ((i1,i2) = (1,1), (?,0)) the fault-free outputs
/// are o(x,1) = x and o(x,2) = x; with i2 stuck-at-0 the faulty
/// outputs are o^f(y,1) = !y and o^f(y,2) = y — the paper's detection
/// function example.
struct Fig3 {
  Netlist nl{"fig3"};
  NodeIndex i1, i2, s, o;
  Fault fault;

  Fig3() {
    i1 = nl.add_input("i1");
    i2 = nl.add_input("i2");
    s = nl.add_dff(kNoNode, "s");
    const NodeIndex ni2 = nl.add_gate(GateType::Not, {i2}, "ni2");
    const NodeIndex ns = nl.add_gate(GateType::Not, {s}, "ns");
    const NodeIndex a1 = nl.add_gate(GateType::And, {i2, s}, "a1");
    const NodeIndex a2 = nl.add_gate(GateType::And, {ni2, ns}, "a2");
    o = nl.add_gate(GateType::Or, {a1, a2}, "o");  // XNOR(i2, s)
    const NodeIndex ni1 = nl.add_gate(GateType::Not, {i1}, "ni1");
    const NodeIndex b1 = nl.add_gate(GateType::And, {i1, ns}, "b1");
    const NodeIndex b2 = nl.add_gate(GateType::And, {ni1, s}, "b2");
    const NodeIndex d = nl.add_gate(GateType::Or, {b1, b2}, "d");  // XOR
    nl.set_fanins(s, {d});
    nl.mark_output(o);
    nl.finalize();
    fault = Fault{FaultSite{i2, kStemPin}, false};  // i2 stuck-at-0
  }
};

const TestSequence kFig3Sequence = sequence_from_strings({"11", "10"});

TEST(PaperFig3, FaultFreeOutputsAreXandX) {
  Fig3 f;
  bdd::BddManager mgr;
  const StateVars vars(1);
  SymTrueValueSim sym(f.nl, mgr, vars);
  const bdd::Bdd x = mgr.var(vars.x(0));

  auto o1 = sym.step(kFig3Sequence[0]);
  EXPECT_EQ(o1[0], x);  // o(x,1) = x
  auto o2 = sym.step(kFig3Sequence[1]);
  EXPECT_EQ(o2[0], x);  // o(x,2) = x
}

TEST(PaperFig3, FaultyOutputsAreNotYThenY) {
  // Simulate the faulty machine symbolically by injecting the fault
  // into a copy of the netlist's input: i2 stuck-at-0 means the XNOR
  // sees constant 0, so o^f = NOT(s^f); the state still flips because
  // i1 = 1 in frame 1.
  Fig3 f;
  const auto good = testing::all_responses(f.nl, std::nullopt,
                                           kFig3Sequence);
  const auto bad =
      testing::all_responses(f.nl, f.fault, kFig3Sequence);
  // Fault-free from p: (p, p). Faulty from q: (!q, q).
  for (std::size_t p = 0; p < 2; ++p) {
    EXPECT_EQ(good[p][0][0], p == 1);
    EXPECT_EQ(good[p][1][0], p == 1);
  }
  for (std::size_t q = 0; q < 2; ++q) {
    EXPECT_EQ(bad[q][0][0], q == 0);
    EXPECT_EQ(bad[q][1][0], q == 1);
  }
}

TEST(PaperFig3, SotAndRmotMissTheFaultMotDetectsIt) {
  Fig3 f;
  // Reference oracles first.
  EXPECT_FALSE(ref_sot_detectable(f.nl, f.fault, kFig3Sequence));
  EXPECT_FALSE(ref_rmot_detectable(f.nl, f.fault, kFig3Sequence));
  EXPECT_TRUE(ref_mot_detectable(f.nl, f.fault, kFig3Sequence));

  // Our symbolic simulators agree.
  const std::vector<Fault> faults{f.fault};
  for (auto [strategy, expected] :
       {std::pair{Strategy::Sot, false}, {Strategy::Rmot, false},
        {Strategy::Mot, true}}) {
    SymFaultSim sim(f.nl, faults, strategy);
    const auto r = sim.run(kFig3Sequence);
    EXPECT_EQ(r.detected_count == 1, expected) << to_cstring(strategy);
  }
}

TEST(PaperFig3, DetectionFunctionVanishesInFrameTwo) {
  // D(x,y) after frame 1 is [x == !y] (nonzero); the frame-2 term
  // [x == y] kills it — exactly the algebra in the paper.
  Fig3 f;
  const std::vector<Fault> faults{f.fault};
  SymFaultSim sim(f.nl, faults, Strategy::Mot);
  const auto r = sim.run(kFig3Sequence);
  EXPECT_EQ(r.detect_frame[0], 2u);
}

// ---------------------------------------------------------------------------
// Fig. 2: initialization of the good machine does not help
// ---------------------------------------------------------------------------

/// next s = AND(i1, s): applying i1=0 synchronizes the fault-free
/// machine to s=0. With i1 stuck-at-1 the faulty machine keeps its
/// unknown state forever. Output o = XNOR(i2, s).
struct Fig2 {
  Netlist nl{"fig2"};
  NodeIndex i1, i2, s, o;
  Fault fault;

  Fig2() {
    i1 = nl.add_input("i1");
    i2 = nl.add_input("i2");
    s = nl.add_dff(kNoNode, "s");
    const NodeIndex d = nl.add_gate(GateType::And, {i1, s}, "d");
    nl.set_fanins(s, {d});
    const NodeIndex ni2 = nl.add_gate(GateType::Not, {i2}, "ni2");
    const NodeIndex ns = nl.add_gate(GateType::Not, {s}, "ns");
    const NodeIndex a1 = nl.add_gate(GateType::And, {i2, s}, "a1");
    const NodeIndex a2 = nl.add_gate(GateType::And, {ni2, ns}, "a2");
    o = nl.add_gate(GateType::Or, {a1, a2}, "o");
    nl.mark_output(o);
    nl.finalize();
    fault = Fault{FaultSite{d, 0}, true};  // i1-branch into d stuck-at-1
  }
};

const TestSequence kFig2Sequence = sequence_from_strings({"01", "01"});

TEST(PaperFig2, GoodMachineInitializesFaultyDoesNot) {
  Fig2 f;
  bdd::BddManager mgr;
  const StateVars vars(1);
  SymTrueValueSim sym(f.nl, mgr, vars);
  sym.step(kFig2Sequence[0]);
  EXPECT_EQ(sym.state_as_val3()[0], Val3::Zero)
      << "i1=0 must synchronize the fault-free machine";

  // The faulty machine's state stays q: check by enumeration.
  const auto bad = testing::all_responses(f.nl, f.fault, kFig2Sequence);
  EXPECT_NE(bad[0][1][0], bad[1][1][0])
      << "faulty frame-2 output must still depend on the initial state";
}

TEST(PaperFig2, UndetectableDespiteInitialization) {
  Fig2 f;
  EXPECT_FALSE(ref_sot_detectable(f.nl, f.fault, kFig2Sequence));
  // Here even MOT cannot help: the faulty machine can power up in
  // state 0 and mimic the initialized fault-free machine.
  EXPECT_FALSE(ref_mot_detectable(f.nl, f.fault, kFig2Sequence));

  const std::vector<Fault> faults{f.fault};
  for (Strategy s : {Strategy::Sot, Strategy::Rmot, Strategy::Mot}) {
    SymFaultSim sim(f.nl, faults, s);
    EXPECT_EQ(sim.run(kFig2Sequence).detected_count, 0u) << to_cstring(s);
  }
}

// ---------------------------------------------------------------------------
// Fig. 1: the plain SOT limitation (no initialization at all)
// ---------------------------------------------------------------------------

TEST(PaperFig1, SotBlindMotSees) {
  // The Fig. 3 machine under the sequence ([1,0],[1,0]) from Fig. 1:
  // i2 = 0 in both frames.
  Fig3 f;
  const TestSequence seq = sequence_from_strings({"10", "10"});
  // good: o(x,1) = !x, s' = !x; o(x,2) = x. faulty (i2 sa-0 is already
  // the applied value): responses equal the good machine's, so the
  // fault is NOT detectable by this sequence under any strategy —
  // which is precisely the SOT blindness Fig. 1 illustrates for
  // three-valued simulators. Verify the weaker SOT claim and that the
  // paper's remedy (the Fig. 3 sequence) fixes it.
  EXPECT_FALSE(ref_sot_detectable(f.nl, f.fault, seq));

  const std::vector<Fault> faults{f.fault};
  SymFaultSim sot(f.nl, faults, Strategy::Sot);
  EXPECT_EQ(sot.run(seq).detected_count, 0u);

  SymFaultSim mot(f.nl, faults, Strategy::Mot);
  EXPECT_EQ(mot.run(kFig3Sequence).detected_count, 1u);
}

}  // namespace
}  // namespace motsim
