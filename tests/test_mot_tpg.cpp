// MOT-guided test generation (tpg/mot_tpg.h).

#include <gtest/gtest.h>

#include "bench_data/registry.h"
#include "bench_data/s27.h"
#include "core/hybrid_sim.h"
#include "faults/collapse.h"
#include "sim3/fault_sim3.h"
#include "tpg/compaction.h"
#include "tpg/mot_tpg.h"

namespace motsim {
namespace {

MotTpgConfig small_config(Strategy s, std::uint64_t seed) {
  MotTpgConfig cfg;
  cfg.strategy = s;
  cfg.segment_length = 6;
  cfg.candidates_per_round = 3;
  cfg.stale_rounds = 2;
  cfg.max_length = 48;
  cfg.seed = seed;
  return cfg;
}

TEST(MotTpg, DeterministicForSameSeed) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  const auto cfg = small_config(Strategy::Mot, 5);
  const MotTpgResult a = generate_mot_sequence(nl, c.faults(), cfg);
  const MotTpgResult b = generate_mot_sequence(nl, c.faults(), cfg);
  EXPECT_EQ(a.sequence, b.sequence);
  EXPECT_EQ(a.detected, b.detected);
}

TEST(MotTpg, ReportedScoreMatchesReplay) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  const MotTpgResult r =
      generate_mot_sequence(nl, c.faults(), small_config(Strategy::Mot, 7));
  ASSERT_FALSE(r.sequence.empty());

  HybridConfig hc;
  hc.strategy = Strategy::Mot;
  HybridFaultSim sim(nl, c.faults(), hc);
  const HybridResult replay = sim.run(r.sequence);
  EXPECT_EQ(replay.detected_count, r.detected);
}

TEST(MotTpg, CoversThreeValuedInvisibleFaults) {
  // On the counter, X01 detects (almost) nothing; the MOT-guided
  // generator must still accept segments and build real coverage —
  // while a generator guided by three-valued detections stalls.
  const Netlist nl = make_benchmark("s208.1");
  const CollapsedFaultList c(nl);

  const MotTpgResult mot =
      generate_mot_sequence(nl, c.faults(), small_config(Strategy::Mot, 11));
  EXPECT_GT(mot.detected, 10u);

  CompactionConfig comp;
  comp.seed = 11;
  comp.segment_length = 6;
  comp.stale_rounds = 2;
  const CompactionResult x01 =
      generate_deterministic_sequence(nl, c.faults(), comp);
  EXPECT_LT(x01.detected_faults, 3u)
      << "three-valued guidance should stall on the counter";
  EXPECT_GT(mot.detected, x01.detected_faults);
}

TEST(MotTpg, StatusVectorIsConsistent) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  const MotTpgResult r =
      generate_mot_sequence(nl, c.faults(), small_config(Strategy::Rmot, 3));
  ASSERT_EQ(r.status.size(), c.size());
  std::size_t detected = 0;
  for (FaultStatus s : r.status) detected += is_detected(s);
  EXPECT_EQ(detected, r.detected);
}

TEST(MotTpg, RespectsMaxLength) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  MotTpgConfig cfg = small_config(Strategy::Mot, 13);
  cfg.max_length = 12;
  const MotTpgResult r = generate_mot_sequence(nl, c.faults(), cfg);
  EXPECT_LE(r.sequence.size(), 12u + cfg.segment_length);
}

TEST(MotTpg, EmptyFaultListYieldsEmptySequence) {
  const Netlist nl = make_s27();
  const MotTpgResult r =
      generate_mot_sequence(nl, {}, small_config(Strategy::Mot, 1));
  EXPECT_TRUE(r.sequence.empty());
  EXPECT_EQ(r.detected, 0u);
}

}  // namespace
}  // namespace motsim
