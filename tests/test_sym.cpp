// Symbolic simulation: the true-value simulator against concrete
// enumeration, and the three observation strategies against the
// brute-force detectability definitions (the paper's Definitions 2, 3
// and the restricted MOT evaluation) — exact equality, not just
// soundness, since the OBDD formulation is exact (Lemma 1).

#include <gtest/gtest.h>

#include "bench_data/s27.h"
#include "core/sym_fault_sim.h"
#include "core/sym_true_value.h"
#include "core/test_eval.h"
#include "faults/collapse.h"
#include "reference.h"
#include "sim3/sim2.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace motsim {
namespace {

using bdd::Bdd;
using testing::ref_mot_detectable;
using testing::ref_rmot_detectable;
using testing::ref_sot_detectable;
using testing::small_random_circuit;

// ---------------------------------------------------------------------------
// StateVars plan
// ---------------------------------------------------------------------------

TEST(StateVars, InterleavedPlan) {
  const StateVars vars(3);
  EXPECT_EQ(vars.x(0), 0u);
  EXPECT_EQ(vars.y(0), 1u);
  EXPECT_EQ(vars.x(2), 4u);
  EXPECT_EQ(vars.y(2), 5u);
  EXPECT_EQ(vars.var_count(), 6u);
  EXPECT_EQ(vars.x_vars(), (std::vector<bdd::VarIndex>{0, 2, 4}));
  EXPECT_EQ(vars.y_vars(), (std::vector<bdd::VarIndex>{1, 3, 5}));
  const auto map = vars.x_to_y_mapping();
  EXPECT_EQ(map[0], 1u);
  EXPECT_EQ(map[1], 1u);
  EXPECT_EQ(map[4], 5u);
}

TEST(StateVars, XToYRenameIsOrderPreserving) {
  bdd::BddManager mgr;
  const StateVars vars(4);
  mgr.ensure_vars(vars.var_count());
  Bdd f = mgr.one();
  for (std::size_t i = 0; i < 4; ++i) {
    f &= (i % 2 == 0) ? mgr.var(vars.x(i)) : !mgr.var(vars.x(i));
  }
  const Bdd g = mgr.rename(f, vars.x_to_y_mapping());
  Bdd expected = mgr.one();
  for (std::size_t i = 0; i < 4; ++i) {
    expected &= (i % 2 == 0) ? mgr.var(vars.y(i)) : !mgr.var(vars.y(i));
  }
  EXPECT_EQ(g, expected);
}

// ---------------------------------------------------------------------------
// SymTrueValueSim
// ---------------------------------------------------------------------------

class SymTrueValueProp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SymTrueValueProp, EveryLeadMatchesConcreteSimulation) {
  // o(x,t) evaluated at x := p must equal the concrete run from p, for
  // every node, frame and initial state.
  const Netlist nl = small_random_circuit(GetParam());
  Rng rng(GetParam() * 13 + 1);
  const TestSequence seq = random_sequence(nl, 6, rng);
  const auto seq2 = to_bool_sequence(seq);
  const std::size_t m = nl.dff_count();

  bdd::BddManager mgr;
  const StateVars vars(m);
  SymTrueValueSim sym(nl, mgr, vars);

  for (std::size_t s = 0; s < (std::size_t{1} << m); ++s) {
    std::vector<bool> init(m);
    std::vector<bool> assignment(vars.var_count(), false);
    for (std::size_t i = 0; i < m; ++i) {
      init[i] = ((s >> i) & 1) != 0;
      assignment[vars.x(i)] = init[i];
    }
    Sim2 concrete(nl);
    concrete.set_state(init);
    SymTrueValueSim symbolic(nl, mgr, vars);
    for (std::size_t t = 0; t < seq.size(); ++t) {
      symbolic.step(seq[t]);
      concrete.step(seq2[t]);
      for (NodeIndex n = 0; n < nl.node_count(); ++n) {
        EXPECT_EQ(symbolic.values()[n].eval(assignment),
                  concrete.values()[n])
            << "node " << nl.gate(n).name << " frame " << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymTrueValueProp,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(SymTrueValue, RejectsXInputs) {
  const Netlist nl = make_s27();
  bdd::BddManager mgr;
  SymTrueValueSim sym(nl, mgr, StateVars(nl.dff_count()));
  EXPECT_THROW((void)sym.step(sequence_from_strings({"1X10"})[0]),
               std::invalid_argument);
}

TEST(SymTrueValue, StateAsVal3ReflectsConstancy) {
  // A circuit that synchronizes: next state = AND(a, q) with a=0
  // forces the state to constant 0.
  Netlist nl("sync");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex q = nl.add_dff(kNoNode, "q");
  const NodeIndex g = nl.add_gate(GateType::And, {a, q}, "g");
  nl.set_fanins(q, {g});
  nl.mark_output(g);
  nl.finalize();

  bdd::BddManager mgr;
  SymTrueValueSim sym(nl, mgr, StateVars(1));
  EXPECT_EQ(sym.state_as_val3()[0], Val3::X);  // fully symbolic start
  sym.step(sequence_from_strings({"0"})[0]);
  EXPECT_EQ(sym.state_as_val3()[0], Val3::Zero);  // synchronized
}

TEST(SymTrueValue, ReleaseDropsAllHandles) {
  const Netlist nl = make_s27();
  bdd::BddManager mgr;
  SymTrueValueSim sym(nl, mgr, StateVars(nl.dff_count()));
  Rng rng(3);
  sym.step(random_sequence(nl, 1, rng)[0]);
  sym.release();
  mgr.gc();
  EXPECT_EQ(mgr.live_node_count(), 0u);
}

// ---------------------------------------------------------------------------
// Strategies against the brute-force definitions
// ---------------------------------------------------------------------------

struct StrategyCase {
  std::uint64_t seed;
};

class SymStrategyExactness : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  /// Runs one strategy on all collapsed faults and compares each
  /// verdict with the reference oracle.
  void check_strategy(const Netlist& nl, const TestSequence& seq,
                      Strategy strategy) {
    const CollapsedFaultList c(nl);
    SymFaultSim sim(nl, c.faults(), strategy);
    const auto result = sim.run(seq);
    for (std::size_t i = 0; i < c.size(); ++i) {
      const Fault& f = c.faults()[i];
      bool expected = false;
      switch (strategy) {
        case Strategy::Sot:
          expected = ref_sot_detectable(nl, f, seq);
          break;
        case Strategy::Rmot:
          expected = ref_rmot_detectable(nl, f, seq);
          break;
        case Strategy::Mot:
          expected = ref_mot_detectable(nl, f, seq);
          break;
      }
      EXPECT_EQ(is_detected(result.status[i]), expected)
          << to_cstring(strategy) << " disagrees on " << fault_name(nl, f)
          << " in " << nl.name();
    }
  }
};

TEST_P(SymStrategyExactness, SotMatchesDefinition2) {
  const Netlist nl = small_random_circuit(GetParam());
  if (nl.dff_count() > 5) GTEST_SKIP();
  Rng rng(GetParam() * 7 + 3);
  check_strategy(nl, random_sequence(nl, 5, rng), Strategy::Sot);
}

TEST_P(SymStrategyExactness, RmotMatchesRestrictedDefinition) {
  const Netlist nl = small_random_circuit(GetParam());
  if (nl.dff_count() > 5) GTEST_SKIP();
  Rng rng(GetParam() * 7 + 4);
  check_strategy(nl, random_sequence(nl, 5, rng), Strategy::Rmot);
}

TEST_P(SymStrategyExactness, MotMatchesDefinition3) {
  const Netlist nl = small_random_circuit(GetParam());
  if (nl.dff_count() > 5) GTEST_SKIP();
  Rng rng(GetParam() * 7 + 5);
  check_strategy(nl, random_sequence(nl, 5, rng), Strategy::Mot);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymStrategyExactness,
                         ::testing::Range<std::uint64_t>(1, 33));

// ---------------------------------------------------------------------------
// The strategy hierarchy (paper: SOT ⊆ rMOT ⊆ MOT)
// ---------------------------------------------------------------------------

class SymStrategyHierarchy : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SymStrategyHierarchy, DetectionSetsAreNested) {
  const Netlist nl = small_random_circuit(GetParam() + 40);
  Rng rng(GetParam() * 97 + 11);
  const TestSequence seq = random_sequence(nl, 8, rng);
  const CollapsedFaultList c(nl);

  SymFaultSim sot(nl, c.faults(), Strategy::Sot);
  SymFaultSim rmot(nl, c.faults(), Strategy::Rmot);
  SymFaultSim mot(nl, c.faults(), Strategy::Mot);
  const auto rs = sot.run(seq);
  const auto rr = rmot.run(seq);
  const auto rm = mot.run(seq);

  for (std::size_t i = 0; i < c.size(); ++i) {
    if (is_detected(rs.status[i])) {
      EXPECT_TRUE(is_detected(rr.status[i]))
          << "SOT detected but rMOT missed " << fault_name(nl, c.faults()[i]);
    }
    if (is_detected(rr.status[i])) {
      EXPECT_TRUE(is_detected(rm.status[i]))
          << "rMOT detected but MOT missed " << fault_name(nl, c.faults()[i]);
    }
  }
}

TEST_P(SymStrategyHierarchy, LongerSequencesOnlyDetectMore) {
  const Netlist nl = small_random_circuit(GetParam() + 80);
  Rng rng(GetParam() * 3 + 1);
  const TestSequence seq = random_sequence(nl, 10, rng);
  const TestSequence prefix(seq.begin(), seq.begin() + 5);
  const CollapsedFaultList c(nl);

  SymFaultSim short_run(nl, c.faults(), Strategy::Mot);
  SymFaultSim long_run(nl, c.faults(), Strategy::Mot);
  const auto rshort = short_run.run(prefix);
  const auto rlong = long_run.run(seq);
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (is_detected(rshort.status[i])) {
      EXPECT_TRUE(is_detected(rlong.status[i]));
      EXPECT_LE(rlong.detect_frame[i], rshort.detect_frame[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymStrategyHierarchy,
                         ::testing::Range<std::uint64_t>(1, 17));

// ---------------------------------------------------------------------------
// Directed symbolic cases
// ---------------------------------------------------------------------------

TEST(SymFaultSim, InitialStatusSkips) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  SymFaultSim sim(nl, c.faults(), Strategy::Mot);
  sim.set_initial_status(
      std::vector<FaultStatus>(c.size(), FaultStatus::DetectedSim3));
  Rng rng(5);
  const auto r = sim.run(random_sequence(nl, 5, rng));
  EXPECT_EQ(r.detected_count, 0u);
}

class WitnessProps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WitnessProps, MotWitnessesAreGenuineIndistinguishablePairs) {
  // For every fault MOT leaves undetected, the reported (p, q) pair
  // must produce IDENTICAL output sequences — checked concretely.
  const Netlist nl = small_random_circuit(GetParam());
  if (nl.dff_count() > 5) GTEST_SKIP();
  Rng rng(GetParam() * 53 + 9);
  const TestSequence seq = random_sequence(nl, 6, rng);
  const auto seq2 = to_bool_sequence(seq);
  const CollapsedFaultList c(nl);

  SymFaultSim sim(nl, c.faults(), Strategy::Mot);
  sim.set_collect_witnesses(true);
  const auto r = sim.run(seq);
  ASSERT_EQ(r.witnesses.size(), c.size());

  for (std::size_t i = 0; i < c.size(); ++i) {
    if (is_detected(r.status[i])) {
      EXPECT_TRUE(r.witnesses[i].fault_free_state.empty());
      continue;
    }
    const IndistinguishablePair& w = r.witnesses[i];
    ASSERT_EQ(w.fault_free_state.size(), nl.dff_count())
        << fault_name(nl, c.faults()[i]);
    Sim2 good(nl);
    Sim2 bad(nl, c.faults()[i]);
    EXPECT_EQ(good.run(w.fault_free_state, seq2),
              bad.run(w.faulty_state, seq2))
        << fault_name(nl, c.faults()[i])
        << ": witness pair is distinguishable";
  }
}

TEST_P(WitnessProps, RmotWitnessesPassTheStandardEvaluation) {
  // An rMOT witness q: the faulty machine started in q matches every
  // well-defined fault-free output value, i.e. it passes the standard
  // (rMOT) test evaluation.
  const Netlist nl = small_random_circuit(GetParam() + 30);
  if (nl.dff_count() > 5) GTEST_SKIP();
  Rng rng(GetParam() * 59 + 11);
  const TestSequence seq = random_sequence(nl, 6, rng);
  const auto seq2 = to_bool_sequence(seq);
  const CollapsedFaultList c(nl);

  SymFaultSim sim(nl, c.faults(), Strategy::Rmot);
  sim.set_collect_witnesses(true);
  const auto r = sim.run(seq);

  bdd::BddManager mgr;
  const SymbolicResponse response(nl, mgr, seq);
  const RmotEvaluator eval(response);

  for (std::size_t i = 0; i < c.size(); ++i) {
    if (is_detected(r.status[i])) continue;
    const IndistinguishablePair& w = r.witnesses[i];
    ASSERT_EQ(w.faulty_state.size(), nl.dff_count());
    Sim2 bad(nl, c.faults()[i]);
    EXPECT_EQ(eval.evaluate(bad.run(w.faulty_state, seq2)), Verdict::Pass)
        << fault_name(nl, c.faults()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WitnessProps,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(SymFaultSim, WitnessesOffByDefault) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  SymFaultSim sim(nl, c.faults(), Strategy::Mot);
  Rng rng(3);
  const auto r = sim.run(random_sequence(nl, 5, rng));
  EXPECT_TRUE(r.witnesses.empty());
}

TEST(SymFaultSim, DetectFrameIsRecorded) {
  // Fault visible only through the flip-flop: detection at frame 2.
  Netlist nl("lat");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex q = nl.add_dff(a, "q");
  const NodeIndex o = nl.add_gate(GateType::Not, {q}, "o");
  nl.mark_output(o);
  nl.finalize();

  const std::vector<Fault> faults{Fault{FaultSite{a, kStemPin}, false}};
  SymFaultSim sim(nl, faults, Strategy::Sot);
  const auto r = sim.run(sequence_from_strings({"1", "0"}));
  EXPECT_EQ(r.detected_count, 1u);
  EXPECT_EQ(r.detect_frame[0], 2u);
  EXPECT_EQ(r.status[0], FaultStatus::DetectedSot);
}

}  // namespace
}  // namespace motsim
