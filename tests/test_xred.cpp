// ID_X-red (paper Section III): directed step behaviour plus the key
// soundness property — a fault flagged X-redundant is never detected
// by the three-valued fault simulation of the same sequence.

#include <gtest/gtest.h>

#include "bench_data/registry.h"
#include "bench_data/s27.h"
#include "core/xred.h"
#include "faults/collapse.h"
#include "reference.h"
#include "sim3/fault_sim3.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace motsim {
namespace {

using testing::small_random_circuit;

TEST(XRed, ActivationRule) {
  // o = AND(a, b) with b tied to 1 by the sequence: the lead a never
  // carries 0, so a-sa1 cannot be activated; a-sa0 can.
  Netlist nl("act");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex b = nl.add_input("b");
  const NodeIndex q = nl.add_dff(a, "q");
  (void)q;
  const NodeIndex o = nl.add_gate(GateType::And, {a, b}, "o");
  nl.mark_output(o);
  nl.finalize();

  // a toggles, b stays 1 -> I_X(a) = {X,0,1}, I_X(b) = {X,1}.
  const TestSequence seq = sequence_from_strings({"11", "01"});
  const XRedResult xr = run_id_x_red(nl, seq);

  EXPECT_EQ(xr.ix(FaultSite{a, kStemPin}), Val4::X01);
  EXPECT_EQ(xr.ix(FaultSite{b, kStemPin}), Val4::X1);
  EXPECT_FALSE(xr.is_x_redundant(Fault{FaultSite{b, kStemPin}, false}));
  EXPECT_TRUE(xr.is_x_redundant(Fault{FaultSite{b, kStemPin}, true}));
}

TEST(XRed, AlwaysXLeadIsFullyRedundant) {
  // A self-holding flip-flop never leaves X; both faults on its output
  // stem are X-redundant.
  Netlist nl("selfx");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex q = nl.add_dff(kNoNode, "q");
  nl.set_fanins(q, {q});
  const NodeIndex o = nl.add_gate(GateType::And, {a, q}, "o");
  nl.mark_output(o);
  nl.finalize();

  const XRedResult xr = run_id_x_red(nl, sequence_from_strings({"1", "1"}));
  EXPECT_EQ(xr.ix(FaultSite{q, kStemPin}), Val4::X);
  EXPECT_TRUE(xr.is_x_redundant(Fault{FaultSite{q, kStemPin}, false}));
  EXPECT_TRUE(xr.is_x_redundant(Fault{FaultSite{q, kStemPin}, true}));
}

TEST(XRed, BackwardPassLowersUnobservableCone) {
  // A gate whose only path to an output crosses an always-X lead is
  // itself lowered to {X} by step 2.
  Netlist nl("cone");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex q = nl.add_dff(kNoNode, "q");
  nl.set_fanins(q, {q});  // q always X
  const NodeIndex g = nl.add_gate(GateType::Not, {a}, "g");
  const NodeIndex o = nl.add_gate(GateType::And, {g, q}, "o");
  // o = AND(g, X) is X whenever g=1, 0 when g=0.
  nl.mark_output(o);
  nl.finalize();

  const TestSequence seq = sequence_from_strings({"0", "1"});
  const XRedResult xr = run_id_x_red(nl, seq);
  // g itself toggles (1 then 0), so its I_X is {X,0,1}; the fault
  // g-sa0 is activated when g=1, but then o = AND(1, X) = X — only the
  // observability side can rule it out, not the backward {X} pass.
  EXPECT_EQ(xr.ix(FaultSite{g, kStemPin}), Val4::X01);
}

TEST(XRed, ObservabilityThroughAndNeedsNonControllingSibling) {
  // o = AND(a, b); b never carries 1 -> a's branch into o is
  // unobservable (the AND is always controlled), so faults at a are
  // X-redundant even though a toggles.
  Netlist nl("obs");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex b = nl.add_input("b");
  const NodeIndex q = nl.add_dff(a, "q");
  (void)q;
  const NodeIndex o = nl.add_gate(GateType::And, {a, b}, "o");
  nl.mark_output(o);
  nl.finalize();

  const TestSequence seq = sequence_from_strings({"10", "00"});
  const XRedResult xr = run_id_x_red(nl, seq);
  EXPECT_FALSE(xr.observable(FaultSite{o, 0}));  // a's branch
  EXPECT_TRUE(xr.is_x_redundant(Fault{FaultSite{o, 0}, false}));
  EXPECT_TRUE(xr.is_x_redundant(Fault{FaultSite{o, 0}, true}));
  // b's branch sees a's 1 in frame 1 -> observable.
  EXPECT_TRUE(xr.observable(FaultSite{o, 1}));
}

TEST(XRed, ObservabilityThroughOrNeedsZeroSibling) {
  Netlist nl("obs-or");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex b = nl.add_input("b");
  const NodeIndex q = nl.add_dff(a, "q");
  (void)q;
  const NodeIndex o = nl.add_gate(GateType::Or, {a, b}, "o");
  nl.mark_output(o);
  nl.finalize();

  // b is constantly 1: it controls the OR, a is never observable.
  const TestSequence seq = sequence_from_strings({"11", "01"});
  const XRedResult xr = run_id_x_red(nl, seq);
  EXPECT_FALSE(xr.observable(FaultSite{o, 0}));
  EXPECT_TRUE(xr.observable(FaultSite{o, 1}));
}

TEST(XRed, ClassifyMapsToInitialStatus) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  Rng rng(9);
  const TestSequence seq = random_sequence(nl, 16, rng);
  const XRedResult xr = run_id_x_red(nl, seq);
  const auto status = xr.classify(c.faults());
  ASSERT_EQ(status.size(), c.size());
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (status[i] == FaultStatus::XRedundant) {
      EXPECT_TRUE(xr.is_x_redundant(c.faults()[i]));
      ++flagged;
    } else {
      EXPECT_EQ(status[i], FaultStatus::Undetected);
    }
  }
  EXPECT_EQ(flagged, xr.count_x_redundant(c.faults()));
}

// ---------------------------------------------------------------------------
// The paper's claim, as a property: eliminating X-redundant faults
// never changes the three-valued result.
// ---------------------------------------------------------------------------

class XRedSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XRedSoundness, FlaggedFaultsAreNeverDetectedByX01) {
  const Netlist nl = small_random_circuit(GetParam());
  Rng rng(GetParam() * 1337 + 5);
  const TestSequence seq = random_sequence(nl, 12, rng);

  const CollapsedFaultList c(nl);
  const XRedResult xr = run_id_x_red(nl, seq);

  // Run the FULL fault list through X01 (no elimination) and check no
  // flagged fault is detected.
  FaultSim3 sim(nl, c.faults());
  const auto result = sim.run(seq);
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (xr.is_x_redundant(c.faults()[i])) {
      EXPECT_NE(result.status[i], FaultStatus::DetectedSim3)
          << fault_name(nl, c.faults()[i]) << " in " << nl.name();
    }
  }
}

TEST_P(XRedSoundness, EliminationPreservesDetectedSet) {
  // With ID_X-red pre-classification, exactly the same faults are
  // detected as without it (X01_p vs X01 in Table I) — only faster.
  const Netlist nl = small_random_circuit(GetParam() + 100);
  Rng rng(GetParam() * 71 + 3);
  const TestSequence seq = random_sequence(nl, 12, rng);

  const CollapsedFaultList c(nl);
  FaultSim3 plain(nl, c.faults());
  const auto full = plain.run(seq);

  const XRedResult xr = run_id_x_red(nl, seq);
  FaultSim3 pruned(nl, c.faults());
  pruned.set_initial_status(xr.classify(c.faults()));
  const auto fast = pruned.run(seq);

  EXPECT_EQ(full.detected_count, fast.detected_count);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(full.status[i] == FaultStatus::DetectedSim3,
              fast.status[i] == FaultStatus::DetectedSim3)
        << fault_name(nl, c.faults()[i]);
  }
  EXPECT_LE(fast.simulated_faults, full.simulated_faults);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XRedSoundness,
                         ::testing::Range<std::uint64_t>(1, 29));

TEST(XRed, BenchRosterSmokeAndStats) {
  // On the s298-like controller a substantial share of faults must be
  // X-redundant-free (the circuit synchronizes), while the counter
  // keeps almost everything X-redundant — the Table I contrast.
  Rng rng(123);
  const Netlist counter = make_benchmark("s208.1");
  const Netlist controller = make_benchmark("s298");
  const TestSequence seq_counter = random_sequence(counter, 50, rng);
  const TestSequence seq_ctrl = random_sequence(controller, 50, rng);

  const CollapsedFaultList fc(counter);
  const CollapsedFaultList cc(controller);
  const double counter_ratio =
      static_cast<double>(
          run_id_x_red(counter, seq_counter).count_x_redundant(fc.faults())) /
      static_cast<double>(fc.size());
  const double ctrl_ratio =
      static_cast<double>(
          run_id_x_red(controller, seq_ctrl).count_x_redundant(cc.faults())) /
      static_cast<double>(cc.size());
  EXPECT_GT(counter_ratio, 0.6);
  EXPECT_LT(ctrl_ratio, 0.4);
}

}  // namespace
}  // namespace motsim
