// Garbage collection, the node limit and memory-management invariants.

#include <gtest/gtest.h>

#include "bdd/bdd.h"
#include "util/rng.h"

namespace motsim::bdd {
namespace {

TEST(BddGc, CollectsUnreferencedNodes) {
  BddManager mgr;
  const Bdd a = mgr.var(0), b = mgr.var(1), c = mgr.var(2);
  {
    const Bdd garbage = (a ^ b) | (b ^ c);
    EXPECT_GT(mgr.live_node_count(), 3u);
  }
  mgr.gc();
  // Only the three projection nodes survive.
  EXPECT_EQ(mgr.live_node_count(), 3u);
}

TEST(BddGc, KeepsEverythingReachableFromHandles) {
  BddManager mgr;
  Rng rng(5);
  std::vector<Bdd> keep;
  for (int i = 0; i < 20; ++i) {
    Bdd f = mgr.var(static_cast<unsigned>(rng.below(6)));
    for (int j = 0; j < 5; ++j) {
      f = rng.flip() ? (f & mgr.var(static_cast<unsigned>(rng.below(6))))
                     : (f ^ mgr.var(static_cast<unsigned>(rng.below(6))));
    }
    keep.push_back(f);
  }
  // Remember truth tables, collect, and verify the functions survive.
  std::vector<std::vector<bool>> truth;
  for (const Bdd& f : keep) {
    std::vector<bool> t;
    for (unsigned a = 0; a < 64; ++a) {
      std::vector<bool> asg(6);
      for (unsigned v = 0; v < 6; ++v) asg[v] = ((a >> v) & 1) != 0;
      t.push_back(f.eval(asg));
    }
    truth.push_back(std::move(t));
  }
  mgr.gc();
  for (std::size_t i = 0; i < keep.size(); ++i) {
    for (unsigned a = 0; a < 64; ++a) {
      std::vector<bool> asg(6);
      for (unsigned v = 0; v < 6; ++v) asg[v] = ((a >> v) & 1) != 0;
      EXPECT_EQ(keep[i].eval(asg), truth[i][a]);
    }
  }
}

TEST(BddGc, CanonicityHoldsAcrossCollections) {
  BddManager mgr;
  const Bdd a = mgr.var(0), b = mgr.var(1);
  const Bdd f = a & b;
  mgr.gc();
  // Rebuilding the same function after GC must find the same node.
  const Bdd g = a & b;
  EXPECT_EQ(f, g);
}

TEST(BddGc, SlotsAreReused) {
  BddManager mgr;
  const Bdd a = mgr.var(0), b = mgr.var(1), c = mgr.var(2);
  { const Bdd t1 = (a ^ b) ^ c; }
  mgr.gc();
  const std::size_t live_after_gc = mgr.live_node_count();
  { const Bdd t2 = (a | b) & c; }
  mgr.gc();
  EXPECT_EQ(mgr.live_node_count(), live_after_gc);
}

TEST(BddGc, HardLimitThrowsBddOverflow) {
  BddConfig cfg;
  cfg.hard_node_limit = 40;
  BddManager mgr(cfg);
  EXPECT_THROW(
      {
        Bdd parity = mgr.zero();
        for (unsigned v = 0; v < 32; ++v) parity ^= mgr.var(v);
      },
      BddOverflow);
}

TEST(BddGc, LimitCanBeRaisedAfterOverflow) {
  BddConfig cfg;
  cfg.hard_node_limit = 30;
  BddManager mgr(cfg);
  auto build = [&] {
    Bdd parity = mgr.zero();
    for (unsigned v = 0; v < 12; ++v) parity ^= mgr.var(v);
    return parity;
  };
  EXPECT_THROW((void)build(), BddOverflow);
  mgr.gc();  // reclaim the partial garbage
  mgr.set_hard_node_limit(static_cast<std::size_t>(-1));
  const Bdd parity = build();
  EXPECT_EQ(parity.node_count(), 23u);
}

TEST(BddGc, AutoGcTriggersUnderChurn) {
  BddConfig cfg;
  cfg.auto_gc_floor = 256;  // tiny so the test exercises the path
  BddManager mgr(cfg);
  Rng rng(9);
  auto v = [&] { return mgr.var(static_cast<unsigned>(rng.below(10))); };
  for (int i = 0; i < 2000; ++i) {
    const Bdd t = ((v() ^ v()) & (v() | v())) ^ v();
    (void)t;  // dropped immediately: pure churn
  }
  EXPECT_GT(mgr.stats().gc_runs, 0u);
  // Churn must not accumulate: after one more manual GC only the
  // projections (and nothing proportional to the loop count) remain.
  mgr.gc();
  EXPECT_LT(mgr.live_node_count(), 64u);
}

TEST(BddGc, CacheSurvivesLogicallyAfterInvalidation) {
  // The computed cache is wiped on GC; results must still be correct
  // (recomputed) afterwards.
  BddManager mgr;
  const Bdd a = mgr.var(0), b = mgr.var(1);
  const Bdd f1 = a ^ b;
  mgr.gc();
  const Bdd f2 = a ^ b;
  EXPECT_EQ(f1, f2);
}

TEST(BddGc, ManagerOutlivesDetachedHandles) {
  // Handles destructed after their manager must not crash: the manager
  // detaches them on destruction.
  Bdd stray;
  {
    BddManager mgr;
    stray = mgr.var(0);
    EXPECT_FALSE(stray.is_null());
  }
  EXPECT_TRUE(stray.is_null());
}

TEST(BddGc, PeakLiveNodesIsMonotone) {
  BddManager mgr;
  Bdd f = mgr.zero();
  for (unsigned v = 0; v < 10; ++v) f ^= mgr.var(v);
  const std::size_t peak = mgr.stats().peak_live_nodes;
  mgr.gc();
  EXPECT_GE(mgr.stats().peak_live_nodes, peak);
  EXPECT_GE(peak, mgr.live_node_count());
}

}  // namespace
}  // namespace motsim::bdd
