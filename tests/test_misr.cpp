// MISR signature compaction, and the demonstration that motivates the
// paper's symbolic test evaluation: signatures are useless under an
// unknown power-up state, while the symbolic evaluator stays exact.

#include <gtest/gtest.h>

#include <set>

#include "bench_data/s27.h"
#include "core/misr.h"
#include "core/test_eval.h"
#include "faults/collapse.h"
#include "sim3/sim2.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace motsim {
namespace {

TEST(Misr, DeterministicAndWidthMasked) {
  Misr a(16), b(16);
  const std::vector<bool> frame{true, false, true};
  for (int i = 0; i < 10; ++i) {
    a.shift(frame);
    b.shift(frame);
  }
  EXPECT_EQ(a.signature(), b.signature());
  EXPECT_LT(a.signature(), std::uint64_t{1} << 16);
}

TEST(Misr, ResetClearsState) {
  Misr m(8);
  m.shift({true});
  EXPECT_NE(m.signature(), 0u);
  m.reset();
  EXPECT_EQ(m.signature(), 0u);
}

TEST(Misr, RejectsBadWidth) {
  EXPECT_THROW(Misr(0), std::invalid_argument);
  EXPECT_THROW(Misr(65), std::invalid_argument);
  (void)Misr(64);  // boundary is fine
}

TEST(Misr, OrderSensitivity) {
  // A compactor must distinguish permuted responses (unlike a counter).
  Misr a(32), b(32);
  a.shift({true});
  a.shift({false});
  b.shift({false});
  b.shift({true});
  EXPECT_NE(a.signature(), b.signature());
}

TEST(Misr, SingleBitErrorsAreNeverMasked) {
  // The LFSR transition is invertible over GF(2), so a single injected
  // error bit can never cancel: EVERY single-bit mutant must produce a
  // signature different from the base. (Distinct mutants may alias
  // with each other along shift diagonals — that is expected MISR
  // behaviour — but never with the error-free response.)
  Rng rng(3);
  std::vector<std::vector<bool>> base(20, std::vector<bool>(5));
  for (auto& f : base) {
    for (std::size_t j = 0; j < f.size(); ++j) f[j] = rng.flip();
  }
  const std::uint64_t sig = Misr::of(base);
  for (std::size_t t = 0; t < base.size(); ++t) {
    for (std::size_t j = 0; j < base[t].size(); ++j) {
      auto mutated = base;
      mutated[t][j] = !mutated[t][j];
      EXPECT_NE(Misr::of(mutated), sig) << "masked flip at (" << t << ","
                                        << j << ")";
    }
  }
}

TEST(Misr, UnknownPowerUpStateBreaksSignatureTesting) {
  // The paper's motivation, quantified: the fault-free s27 produces a
  // DIFFERENT signature for different power-up states, so a single
  // golden signature would false-fail good chips — while the symbolic
  // evaluator accepts every fault-free response.
  const Netlist nl = make_s27();
  Rng rng(7);
  const TestSequence seq = random_sequence(nl, 30, rng);
  const auto seq2 = to_bool_sequence(seq);

  bdd::BddManager mgr;
  const SymbolicResponse response(nl, mgr, seq);
  const TestEvaluator symbolic(response);

  std::set<std::uint64_t> signatures;
  for (std::size_t s = 0; s < 8; ++s) {
    std::vector<bool> init{(s & 1) != 0, (s & 2) != 0, (s & 4) != 0};
    Sim2 chip(nl);
    const auto resp = chip.run(init, seq2);
    signatures.insert(Misr::of(resp));
    EXPECT_EQ(symbolic.evaluate(resp), Verdict::Pass);
  }
  EXPECT_GT(signatures.size(), 1u)
      << "this sequence would actually permit signature testing";
}

TEST(Misr, SignaturesStillSeparateFaultyChipsPerState) {
  // For a FIXED power-up state the signature does flag detectable
  // faults — the compactor itself is fine; the unknown state is the
  // problem.
  const Netlist nl = make_s27();
  const CollapsedFaultList faults(nl);
  Rng rng(9);
  const TestSequence seq = random_sequence(nl, 40, rng);
  const auto seq2 = to_bool_sequence(seq);
  const std::vector<bool> init{false, false, false};

  Sim2 good(nl);
  const std::uint64_t golden = Misr::of(good.run(init, seq2));

  std::size_t flagged = 0;
  for (const Fault& f : faults.faults()) {
    Sim2 bad(nl, f);
    if (Misr::of(bad.run(init, seq2)) != golden) ++flagged;
  }
  EXPECT_GT(flagged, faults.size() / 2);
}

}  // namespace
}  // namespace motsim
