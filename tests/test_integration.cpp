// End-to-end pipeline: ID_X-red -> three-valued simulation -> symbolic
// strategies, on the benchmark roster's small and medium circuits,
// checking cross-stage consistency and the paper's qualitative claims.

#include <gtest/gtest.h>

#include "bench_data/registry.h"
#include "bench_data/s27.h"
#include "core/hybrid_sim.h"
#include "core/sym_fault_sim.h"
#include "core/xred.h"
#include "faults/collapse.h"
#include "sim3/fault_sim3.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace motsim {
namespace {

struct PipelineResult {
  std::size_t faults = 0;
  std::size_t xred = 0;
  std::size_t fd = 0;  ///< three-valued detections
  std::size_t sot = 0, rmot = 0, mot = 0;  ///< symbolic additions
};

PipelineResult run_pipeline(const Netlist& nl, const TestSequence& seq) {
  PipelineResult out;
  const CollapsedFaultList c(nl);
  out.faults = c.size();

  const XRedResult xr = run_id_x_red(nl, seq);
  out.xred = xr.count_x_redundant(c.faults());

  FaultSim3 sim3(nl, c.faults());
  sim3.set_initial_status(xr.classify(c.faults()));
  const auto r3 = sim3.run(seq);
  out.fd = r3.detected_count;

  std::vector<FaultStatus> leftover = r3.status;
  for (auto& s : leftover) {
    if (s == FaultStatus::XRedundant) s = FaultStatus::Undetected;
  }
  for (Strategy strategy :
       {Strategy::Sot, Strategy::Rmot, Strategy::Mot}) {
    HybridConfig cfg;
    cfg.strategy = strategy;
    cfg.node_limit = 30000;
    HybridFaultSim sym(nl, c.faults(), cfg);
    sym.set_initial_status(leftover);
    const auto r = sym.run(seq);
    if (strategy == Strategy::Sot) out.sot = r.detected_count;
    if (strategy == Strategy::Rmot) out.rmot = r.detected_count;
    if (strategy == Strategy::Mot) out.mot = r.detected_count;
  }
  return out;
}

TEST(Integration, S27FullPipeline) {
  const Netlist nl = make_s27();
  Rng rng(2024);
  const auto r = run_pipeline(nl, random_sequence(nl, 64, rng));
  EXPECT_GT(r.fd, r.faults / 2) << "s27 should be mostly testable";
  EXPECT_LE(r.sot, r.rmot);
  EXPECT_LE(r.rmot, r.mot);
  EXPECT_LE(r.fd + r.mot + r.xred, r.faults + r.xred);
}

TEST(Integration, StrategyHierarchyAcrossRoster) {
  Rng rng(7);
  for (const char* name : {"s27", "s208.1", "s298", "s344", "s386"}) {
    const Netlist nl = make_benchmark(name);
    const auto r = run_pipeline(nl, random_sequence(nl, 60, rng));
    EXPECT_LE(r.sot, r.rmot) << name;
    EXPECT_LE(r.rmot, r.mot) << name;
    EXPECT_LE(r.fd + r.mot, r.faults) << name;
  }
}

TEST(Integration, CounterPhenomenon) {
  // The paper's s208.1 row: three-valued simulation detects (almost)
  // nothing; full MOT recovers a large set rMOT cannot.
  const Netlist nl = make_benchmark("s208.1");
  Rng rng(11);
  const auto r = run_pipeline(nl, random_sequence(nl, 100, rng));
  EXPECT_LT(r.fd, r.faults / 10);
  EXPECT_GT(r.mot, r.rmot);
  EXPECT_GT(r.mot, 10u);
}

TEST(Integration, TwinPathsPhenomenon) {
  // The paper's s510 row: X01 detects nothing (all faults are
  // X-redundant) yet symbolic SOT already detects plenty, and the MOT
  // family detects more.
  const Netlist nl = make_benchmark("s510");
  Rng rng(13);
  const auto r = run_pipeline(nl, random_sequence(nl, 100, rng));
  EXPECT_EQ(r.fd, 0u);
  // Nearly everything is X-redundant (the paper's s510 row: all 564);
  // the sufficient condition may leave a small remainder unflagged.
  EXPECT_GT(r.xred, (9 * r.faults) / 10);
  EXPECT_GT(r.sot, 0u);
  EXPECT_GE(r.rmot, r.sot);
}

TEST(Integration, ControllerPhenomenon) {
  // Synchronizable circuits: three-valued simulation does the heavy
  // lifting, the symbolic strategies add only a trickle (s298 row).
  const Netlist nl = make_benchmark("s298");
  Rng rng(17);
  const auto r = run_pipeline(nl, random_sequence(nl, 100, rng));
  EXPECT_GT(r.fd, r.faults / 3);
  EXPECT_LT(r.mot, r.faults / 5);
}

TEST(Integration, XredAgreesWithSim3OnRoster) {
  // No fault flagged X-redundant is detected three-valued, on real
  // roster circuits (larger than the property-test circuits).
  Rng rng(23);
  for (const char* name : {"s298", "s344", "s400"}) {
    const Netlist nl = make_benchmark(name);
    const TestSequence seq = random_sequence(nl, 50, rng);
    const CollapsedFaultList c(nl);
    const XRedResult xr = run_id_x_red(nl, seq);
    FaultSim3 sim(nl, c.faults());
    const auto r = sim.run(seq);
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (xr.is_x_redundant(c.faults()[i])) {
        EXPECT_NE(r.status[i], FaultStatus::DetectedSim3)
            << name << " " << fault_name(nl, c.faults()[i]);
      }
    }
  }
}

TEST(Integration, DetectFramesAreWithinSequence) {
  const Netlist nl = make_benchmark("s344");
  Rng rng(29);
  const TestSequence seq = random_sequence(nl, 40, rng);
  const CollapsedFaultList c(nl);
  HybridConfig cfg;
  cfg.strategy = Strategy::Mot;
  HybridFaultSim sim(nl, c.faults(), cfg);
  const auto r = sim.run(seq);
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (is_detected(r.status[i])) {
      EXPECT_GE(r.detect_frame[i], 1u);
      EXPECT_LE(r.detect_frame[i], seq.size());
    } else {
      EXPECT_EQ(r.detect_frame[i], 0u);
    }
  }
}

}  // namespace
}  // namespace motsim
