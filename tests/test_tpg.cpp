// Test sequence generation: random sequences and the greedy
// fault-simulation-guided compactor (the stand-in for the paper's
// deterministic/ATPG sequences of Table III).

#include <gtest/gtest.h>

#include "bench_data/registry.h"
#include "bench_data/s27.h"
#include "faults/collapse.h"
#include "sim3/fault_sim3.h"
#include "tpg/compaction.h"
#include "tpg/sequences.h"

namespace motsim {
namespace {

TEST(RandomSequence, ShapeAndDeterminism) {
  const Netlist nl = make_s27();
  Rng a(42), b(42);
  const TestSequence s1 = random_sequence(nl, 25, a);
  const TestSequence s2 = random_sequence(nl, 25, b);
  EXPECT_EQ(s1, s2);
  ASSERT_EQ(s1.size(), 25u);
  for (const auto& frame : s1) {
    ASSERT_EQ(frame.size(), nl.input_count());
    for (Val3 v : frame) EXPECT_TRUE(is_binary(v));
  }
}

TEST(RandomSequence, DifferentSeedsDiffer) {
  const Netlist nl = make_s27();
  Rng a(1), b(2);
  EXPECT_NE(random_sequence(nl, 25, a), random_sequence(nl, 25, b));
}

TEST(SequenceFromStrings, ParsesAllValues) {
  const TestSequence s = sequence_from_strings({"01X", "111"});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], (std::vector<Val3>{Val3::Zero, Val3::One, Val3::X}));
  EXPECT_THROW((void)sequence_from_strings({"012"}), std::invalid_argument);
}

TEST(Compaction, DeterministicForSameConfig) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  CompactionConfig cfg;
  cfg.seed = 7;
  const auto r1 = generate_deterministic_sequence(nl, c.faults(), cfg);
  const auto r2 = generate_deterministic_sequence(nl, c.faults(), cfg);
  EXPECT_EQ(r1.sequence, r2.sequence);
  EXPECT_EQ(r1.detected_faults, r2.detected_faults);
}

TEST(Compaction, ReportedDetectionsMatchAReplay) {
  // Replaying the produced sequence through the plain three-valued
  // simulator must detect exactly the reported number of faults.
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  CompactionConfig cfg;
  cfg.seed = 11;
  const auto r = generate_deterministic_sequence(nl, c.faults(), cfg);
  ASSERT_FALSE(r.sequence.empty());

  FaultSim3 sim(nl, c.faults());
  const auto replay = sim.run(r.sequence);
  EXPECT_EQ(replay.detected_count, r.detected_faults);
}

TEST(Compaction, SegmentsAreMultiplesOfSegmentLength) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  CompactionConfig cfg;
  cfg.segment_length = 5;
  cfg.seed = 3;
  const auto r = generate_deterministic_sequence(nl, c.faults(), cfg);
  EXPECT_EQ(r.sequence.size() % 5, 0u);
}

TEST(Compaction, RespectsMaxLength) {
  const Netlist nl = make_benchmark("s298");
  const CollapsedFaultList c(nl);
  CompactionConfig cfg;
  cfg.segment_length = 8;
  cfg.max_length = 24;
  cfg.seed = 5;
  const auto r = generate_deterministic_sequence(nl, c.faults(), cfg);
  EXPECT_LE(r.sequence.size(), 24u + cfg.segment_length);
}

TEST(Compaction, HigherYieldPerVectorThanRandom) {
  // The whole point of the stand-in: per-vector detection yield beats
  // an equally long random sequence (on a synchronizable circuit).
  const Netlist nl = make_benchmark("s298");
  const CollapsedFaultList c(nl);
  CompactionConfig cfg;
  cfg.seed = 13;
  cfg.stale_rounds = 10;
  const auto det = generate_deterministic_sequence(nl, c.faults(), cfg);
  ASSERT_GT(det.sequence.size(), 0u);

  Rng rng(13);
  const TestSequence rand_seq =
      random_sequence(nl, det.sequence.size(), rng);
  FaultSim3 sim(nl, c.faults());
  const auto rr = sim.run(rand_seq);

  const double det_yield = static_cast<double>(det.detected_faults) /
                           static_cast<double>(det.sequence.size());
  const double rand_yield = static_cast<double>(rr.detected_count) /
                            static_cast<double>(rand_seq.size());
  EXPECT_GE(det_yield, rand_yield * 0.9)
      << "compacted sequences should not be (much) worse per vector";
}

TEST(Compaction, EveryVectorIsWellFormed) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  CompactionConfig cfg;
  cfg.seed = 17;
  const auto r = generate_deterministic_sequence(nl, c.faults(), cfg);
  for (const auto& frame : r.sequence) {
    ASSERT_EQ(frame.size(), nl.input_count());
    for (Val3 v : frame) EXPECT_TRUE(is_binary(v));
  }
}

}  // namespace
}  // namespace motsim
