// Pinned end-to-end numbers ("golden" regressions): the full pipeline
// on fixed circuits, sequences and seeds must keep producing exactly
// these classifications. Everything in the stack is deterministic —
// the RNG, the generator, the simulators — so any change here is a
// behavioural change that needs a conscious decision (and an update of
// EXPERIMENTS.md if it shifts the reported shapes).

#include <gtest/gtest.h>

#include "bench_data/registry.h"
#include "bench_data/s27.h"
#include "core/pipeline.h"
#include "faults/collapse.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace motsim {
namespace {

struct Golden {
  const char* circuit;
  Strategy strategy;
  std::size_t faults;
  std::size_t x_redundant;
  std::size_t detected_3v;
  std::size_t detected_symbolic;
};

PipelineResult run_fixed(const char* name, Strategy strategy) {
  const Netlist nl =
      std::string(name) == "s27" ? make_s27() : make_benchmark(name);
  const CollapsedFaultList faults(nl);
  Rng rng(20260707);  // fixed workload seed
  const TestSequence seq = random_sequence(nl, 80, rng);
  PipelineConfig cfg;
  cfg.hybrid.strategy = strategy;
  cfg.hybrid.node_limit = 30000;
  return run_pipeline(nl, faults.faults(), seq, cfg);
}

TEST(Regression, PinnedPipelineNumbers) {
  // Record-once values; regenerate deliberately via
  //   MOTSIM_PRINT_GOLDEN=1 build/tests/test_regression
  const Golden goldens[] = {
      {"s27", Strategy::Mot, 26, 5, 16, 2},
      {"s208.1", Strategy::Mot, 200, 187, 1, 86},
      {"s298", Strategy::Rmot, 228, 6, 167, 1},
      {"s510", Strategy::Sot, 466, 466, 0, 150},
  };

  const bool print = std::getenv("MOTSIM_PRINT_GOLDEN") != nullptr;
  for (const Golden& g : goldens) {
    const PipelineResult r = run_fixed(g.circuit, g.strategy);
    const CoverageSummary s = r.summary();
    if (print) {
      std::printf("{\"%s\", Strategy::%s, %zu, %zu, %zu, %zu},\n",
                  g.circuit,
                  g.strategy == Strategy::Sot
                      ? "Sot"
                      : (g.strategy == Strategy::Rmot ? "Rmot" : "Mot"),
                  s.total, r.x_redundant, r.detected_3v,
                  r.detected_symbolic);
      continue;
    }
    EXPECT_EQ(s.total, g.faults) << g.circuit;
    EXPECT_EQ(r.x_redundant, g.x_redundant) << g.circuit;
    EXPECT_EQ(r.detected_3v, g.detected_3v) << g.circuit;
    EXPECT_EQ(r.detected_symbolic, g.detected_symbolic) << g.circuit;
  }
}

}  // namespace
}  // namespace motsim
