// Bit-parallel fault simulator: packed-logic algebra, exact agreement
// (status AND detection frame) with the serial event-driven simulator
// across the roster and random circuits, window-session parity, and
// the FaultSimulator3 factory surface.

#include <gtest/gtest.h>

#include "bench_data/registry.h"
#include "bench_data/s27.h"
#include "faults/collapse.h"
#include "logic/packed_val3.h"
#include "obs/telemetry.h"
#include "reference.h"
#include "sim3/bitpar_sim3.h"
#include "sim3/fault_sim3.h"
#include "sim3/fault_simulator.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace motsim {
namespace {

using testing::small_random_circuit;

const Val3 kAll3[] = {Val3::Zero, Val3::One, Val3::X};

TEST(PackedVal3, BroadcastAndSlotRoundTrip) {
  for (Val3 v : kAll3) {
    const PackedVal3 p = broadcast(v);
    for (unsigned slot : {0u, 1u, 31u, 63u}) {
      EXPECT_EQ(slot_value(p, slot), v);
    }
  }
}

TEST(PackedVal3, SetSlotOverwritesOnlyThatSlot) {
  for (Val3 base : kAll3) {
    for (Val3 v : kAll3) {
      PackedVal3 p = broadcast(base);
      set_slot(p, 17, v);
      EXPECT_EQ(slot_value(p, 17), v);
      EXPECT_EQ(slot_value(p, 16), base);
      EXPECT_EQ(slot_value(p, 18), base);
      EXPECT_EQ(p.ones & p.zeros, 0u);
    }
  }
}

TEST(PackedVal3, ApplyForceOverridesForcedSlotsOnly) {
  PackedVal3 v = broadcast(Val3::X);
  const PackedVal3 force{/*ones=*/0b01, /*zeros=*/0b10};  // slot0 sa1, slot1 sa0
  const PackedVal3 r = apply_force(v, force);
  EXPECT_EQ(slot_value(r, 0), Val3::One);
  EXPECT_EQ(slot_value(r, 1), Val3::Zero);
  EXPECT_EQ(slot_value(r, 2), Val3::X);

  v = broadcast(Val3::One);
  const PackedVal3 r2 = apply_force(v, force);
  EXPECT_EQ(slot_value(r2, 0), Val3::One);
  EXPECT_EQ(slot_value(r2, 1), Val3::Zero);
  EXPECT_EQ(slot_value(r2, 2), Val3::One);
}

TEST(PackedVal3, OpsMatchScalarKleeneLogic) {
  // Pack all 9 operand combinations into 9 slots and compare each
  // slot against the scalar operations.
  PackedVal3 a{}, b{};
  Val3 sa[9], sb[9];
  unsigned slot = 0;
  for (Val3 va : kAll3) {
    for (Val3 vb : kAll3) {
      const std::uint64_t bit = std::uint64_t{1} << slot;
      if (va == Val3::One) a.ones |= bit;
      if (va == Val3::Zero) a.zeros |= bit;
      if (vb == Val3::One) b.ones |= bit;
      if (vb == Val3::Zero) b.zeros |= bit;
      sa[slot] = va;
      sb[slot] = vb;
      ++slot;
    }
  }
  const PackedVal3 pa = pand(a, b);
  const PackedVal3 po = por(a, b);
  const PackedVal3 px = pxor(a, b);
  const PackedVal3 pn = pnot(a);
  for (unsigned s = 0; s < 9; ++s) {
    EXPECT_EQ(slot_value(pa, s), and3(sa[s], sb[s])) << s;
    EXPECT_EQ(slot_value(po, s), or3(sa[s], sb[s])) << s;
    EXPECT_EQ(slot_value(px, s), xor3(sa[s], sb[s])) << s;
    EXPECT_EQ(slot_value(pn, s), not3(sa[s])) << s;
  }
}

TEST(PackedVal3, InvariantOnesAndZerosDisjoint) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    // Construct well-formed packs and check closure of the ops.
    const std::uint64_t o1 = rng(), z1 = rng() & ~o1;
    const std::uint64_t o2 = rng(), z2 = rng() & ~o2;
    const PackedVal3 a{o1, z1}, b{o2, z2};
    for (PackedVal3 r : {pand(a, b), por(a, b), pxor(a, b), pnot(a)}) {
      EXPECT_EQ(r.ones & r.zeros, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Exact agreement with the serial simulator
// ---------------------------------------------------------------------------

void expect_same_results(const Netlist& nl, const TestSequence& seq,
                         const std::vector<FaultStatus>* initial = nullptr,
                         std::size_t threads = 1) {
  const CollapsedFaultList c(nl);

  FaultSim3 serial(nl, c.faults());
  BitParFaultSim3 parallel(nl, c.faults(), threads);
  if (initial != nullptr) {
    serial.set_initial_status(*initial);
    parallel.set_initial_status(*initial);
  }
  const auto rs = serial.run(seq);
  const auto rp = parallel.run(seq);

  EXPECT_EQ(rs.detected_count, rp.detected_count) << nl.name();
  EXPECT_EQ(rs.simulated_faults, rp.simulated_faults);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(rs.status[i], rp.status[i])
        << nl.name() << " " << fault_name(nl, c.faults()[i]);
    EXPECT_EQ(rs.detect_frame[i], rp.detect_frame[i])
        << nl.name() << " " << fault_name(nl, c.faults()[i]);
  }
}

TEST(BitParFaultSim3, MatchesSerialOnS27) {
  const Netlist nl = make_s27();
  Rng rng(11);
  expect_same_results(nl, random_sequence(nl, 50, rng));
}

class ParallelVsSerial : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelVsSerial, IdenticalOnRandomCircuits) {
  const Netlist nl = small_random_circuit(GetParam());
  Rng rng(GetParam() * 101 + 13);
  expect_same_results(nl, random_sequence(nl, 15, rng));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelVsSerial,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

TEST(BitParFaultSim3, MatchesSerialOnRosterCircuits) {
  Rng rng(17);
  for (const char* name : {"s298", "s344", "s820", "s208.1", "s510"}) {
    const Netlist nl = make_benchmark(name);
    expect_same_results(nl, random_sequence(nl, 40, rng));
  }
}

TEST(BitParFaultSim3, ThreadCountNeverChangesResults) {
  // The group partition depends only on the fault-list order, so the
  // worker count is invisible in the results.
  Rng rng(29);
  const Netlist nl = make_benchmark("s298");
  const TestSequence seq = random_sequence(nl, 30, rng);
  expect_same_results(nl, seq, nullptr, /*threads=*/1);
  expect_same_results(nl, seq, nullptr, /*threads=*/3);
}

TEST(BitParFaultSim3, RespectsInitialStatus) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  Rng rng(19);
  const TestSequence seq = random_sequence(nl, 30, rng);

  std::vector<FaultStatus> initial(c.size(), FaultStatus::Undetected);
  for (std::size_t i = 0; i < initial.size(); i += 2) {
    initial[i] = FaultStatus::XRedundant;
  }
  expect_same_results(nl, seq, &initial);

  BitParFaultSim3 sim(nl, c.faults());
  sim.set_initial_status(initial);
  const auto r = sim.run(seq);
  for (std::size_t i = 0; i < initial.size(); i += 2) {
    EXPECT_EQ(r.status[i], FaultStatus::XRedundant);
  }
}

TEST(BitParFaultSim3, GroupsLargerThan64Faults) {
  // s298-like has >64 faults, exercising multi-group packing.
  const Netlist nl = make_benchmark("s298");
  const CollapsedFaultList c(nl);
  ASSERT_GT(c.size(), 64u);
  Rng rng(23);
  expect_same_results(nl, random_sequence(nl, 25, rng));
}

TEST(BitParFaultSim3, EmptySequenceDetectsNothing) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  BitParFaultSim3 sim(nl, c.faults());
  const auto r = sim.run({});
  EXPECT_EQ(r.detected_count, 0u);
}

TEST(BitParFaultSim3, EmitsTelemetryCounters) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  Rng rng(31);
  obs::Telemetry tele;
  BitParFaultSim3 sim(nl, c.faults());
  sim.set_telemetry(&tele);
  (void)sim.run(random_sequence(nl, 10, rng));
  EXPECT_GT(tele.metrics.counter("sim3.words_evaluated").value(), 0u);
  EXPECT_GT(tele.metrics.counter("sim3.batches").value(), 0u);
  EXPECT_GT(tele.metrics.counter("sim3.levels").value(), 0u);
}

// ---------------------------------------------------------------------------
// Window sessions: both backends must report the same observations,
// survivors and state divergences frame by frame.
// ---------------------------------------------------------------------------

void expect_same_windows(const Netlist& nl, const TestSequence& seq,
                         std::uint64_t drop_seed) {
  const CollapsedFaultList c(nl);
  const auto event = make_fault_simulator3(Sim3Backend::Event, nl, c.faults());
  const auto bitpar =
      make_fault_simulator3(Sim3Backend::BitPar, nl, c.faults());

  std::vector<std::size_t> indices(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) indices[i] = i;
  std::vector<StateDiff3> diffs(c.size());
  const std::vector<Val3> good_state(nl.dff_count(), Val3::X);

  event->begin_window(good_state, indices, diffs);
  bitpar->begin_window(good_state, indices, diffs);

  // Drop a pseudo-random half of the observations, identically on
  // both engines, to exercise alive-mask handling.
  Rng rng(drop_seed);
  for (const auto& vec : seq) {
    const auto oe = event->step_window(vec);
    const auto ob = bitpar->step_window(vec);
    ASSERT_EQ(oe, ob);
    for (const std::uint32_t pos : oe) {
      if (rng.chance(0.5)) {
        event->drop_window_fault(pos);
        bitpar->drop_window_fault(pos);
      }
    }
    ASSERT_EQ(event->window_live(), bitpar->window_live());
  }

  ASSERT_EQ(event->window_state(), bitpar->window_state());
  for (std::uint32_t pos = 0; pos < c.size(); ++pos) {
    ASSERT_EQ(event->window_fault_alive(pos), bitpar->window_fault_alive(pos))
        << pos;
    if (event->window_fault_alive(pos)) {
      EXPECT_EQ(event->window_diff(pos), bitpar->window_diff(pos)) << pos;
    }
  }
  event->end_window();
  bitpar->end_window();
}

TEST(BitParFaultSim3, WindowSessionsMatchEventBackend) {
  Rng rng(37);
  const Netlist nl = make_s27();
  expect_same_windows(nl, random_sequence(nl, 25, rng), 7);
}

class WindowParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WindowParity, RandomCircuits) {
  const Netlist nl = small_random_circuit(GetParam() + 400);
  Rng rng(GetParam() * 57 + 3);
  expect_same_windows(nl, random_sequence(nl, 12, rng), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowParity,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(BitParFaultSim3, WindowBeginRejectsMismatchedDiffs) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  BitParFaultSim3 sim(nl, c.faults());
  EXPECT_THROW(
      sim.begin_window(std::vector<Val3>(nl.dff_count(), Val3::X), {0, 1},
                       std::vector<StateDiff3>(1)),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// FaultSimulator3 factory and backend tokens
// ---------------------------------------------------------------------------

TEST(FaultSimulator3, FactoryConstructsRequestedBackend) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  const auto event = make_fault_simulator3(Sim3Backend::Event, nl, c.faults());
  const auto bitpar =
      make_fault_simulator3(Sim3Backend::BitPar, nl, c.faults());
  EXPECT_EQ(event->backend(), Sim3Backend::Event);
  EXPECT_EQ(bitpar->backend(), Sim3Backend::BitPar);
  EXPECT_EQ(event->faults().size(), c.size());
  EXPECT_EQ(bitpar->faults().size(), c.size());
}

TEST(FaultSimulator3, BackendTokensRoundTrip) {
  EXPECT_STREQ(to_cstring(Sim3Backend::Event), "event");
  EXPECT_STREQ(to_cstring(Sim3Backend::BitPar), "bitpar");
  EXPECT_EQ(parse_sim3_backend("event"), Sim3Backend::Event);
  EXPECT_EQ(parse_sim3_backend("bitpar"), Sim3Backend::BitPar);
  EXPECT_FALSE(parse_sim3_backend("turbo").has_value());
  EXPECT_FALSE(parse_sim3_backend("").has_value());
}

TEST(FaultSimulator3, InitialStatusSizeIsChecked) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  const auto sim = make_fault_simulator3(Sim3Backend::BitPar, nl, c.faults());
  EXPECT_THROW(sim->set_initial_status({FaultStatus::Undetected}),
               std::invalid_argument);
}

}  // namespace
}  // namespace motsim
