// The telemetry subsystem (src/obs/): metrics-registry correctness
// under concurrent writers, histogram bucket semantics, trace-JSON
// well-formedness, and the engine-level invariants of an instrumented
// pipeline run — including that attaching a Telemetry context never
// changes what the engines compute, for any thread count.
//
// tools/run_tsan.sh runs this binary under ThreadSanitizer; keep every
// test here TSan-clean.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_data/registry.h"
#include "core/options.h"
#include "core/pipeline.h"
#include "core/progress.h"
#include "faults/collapse.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/sampler.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "store/campaign.h"
#include "store/fingerprint.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace motsim {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Minimal JSON well-formedness checker (syntax only) for the
// round-trip assertions on the renderers. Recursive descent over the
// full grammar; no value model is built.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool well_formed() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

bool json_well_formed(const std::string& text) {
  return JsonChecker(text).well_formed();
}

TEST(JsonChecker, SelfTest) {
  EXPECT_TRUE(json_well_formed("{\"a\": [1, -2.5e3, true, null, \"x\\n\"]}"));
  EXPECT_FALSE(json_well_formed("{\"a\": }"));
  EXPECT_FALSE(json_well_formed("[1, 2"));
  EXPECT_FALSE(json_well_formed("{} extra"));
}

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

TEST(Counter, ConcurrentIncrementsSumExactly) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&counter] {
      for (int j = 0; j < kIncrements; ++j) counter.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Gauge, SetAddAndConcurrentUpdateMax) {
  obs::Gauge g;
  g.set(2.0);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);

  obs::Gauge peak;
  std::vector<std::thread> threads;
  for (int i = 1; i <= 8; ++i) {
    threads.emplace_back([&peak, i] {
      for (int j = 0; j < 1000; ++j) peak.update_max(i * 1.0 + j * 1e-6);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(peak.value(), 8.0 + 999 * 1e-6);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, BucketBoundsAreInclusiveUpperLimits) {
  obs::Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);  // bucket 0
  h.observe(1.0);  // bucket 0 (le semantics: boundary is inclusive)
  h.observe(1.5);  // bucket 1
  h.observe(2.0);  // bucket 1
  h.observe(5.0);  // bucket 2
  h.observe(5.1);  // overflow
  const std::vector<std::uint64_t> want{2, 2, 1, 1};
  EXPECT_EQ(h.bucket_counts(), want);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 5.1, 1e-12);
}

TEST(Histogram, UnsortedBoundsAreSortedOnConstruction) {
  obs::Histogram h({5.0, 1.0, 2.0});
  const std::vector<double> want{1.0, 2.0, 5.0};
  EXPECT_EQ(h.bounds(), want);
  h.observe(1.5);
  const std::vector<std::uint64_t> counts{0, 1, 0, 0};
  EXPECT_EQ(h.bucket_counts(), counts);
}

TEST(Histogram, ConcurrentObservesKeepCountConsistent) {
  obs::Histogram h({0.25, 0.5, 0.75});
  constexpr int kThreads = 4;
  constexpr int kObs = 10000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&h, i] {
      for (int j = 0; j < kObs; ++j) h.observe((i * 0.25) + 0.1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kObs);
  std::uint64_t total = 0;
  for (std::uint64_t b : h.bucket_counts()) total += b;
  EXPECT_EQ(total, h.count());
}

// ---------------------------------------------------------------------------
// Histogram quantiles (Prometheus histogram_quantile-compatible
// interpolation; shared by motsim_load and the serve telemetry digest)
// ---------------------------------------------------------------------------

TEST(HistogramQuantile, InterpolatesLinearlyInsideTheBucket) {
  // 100 observations uniformly inside (1, 2]: rank q*100 falls at
  // fraction q of that bucket, so p50 = 1.5 under linear
  // interpolation; p90 = 1.9.
  obs::Histogram h({1.0, 2.0, 5.0});
  for (int i = 0; i < 100; ++i) h.observe(1.5);
  EXPECT_NEAR(h.quantile(0.50), 1.5, 1e-9);
  EXPECT_NEAR(h.quantile(0.90), 1.9, 1e-9);
}

TEST(HistogramQuantile, SpansBucketsByCumulativeRank) {
  obs::Histogram h({1.0, 2.0, 4.0});
  for (int i = 0; i < 50; ++i) h.observe(0.5);  // bucket (0,1]
  for (int i = 0; i < 50; ++i) h.observe(3.0);  // bucket (2,4]
  // p25 is halfway into the first bucket, p75 halfway into the third.
  EXPECT_NEAR(h.quantile(0.25), 0.5, 1e-9);
  EXPECT_NEAR(h.quantile(0.75), 3.0, 1e-9);
  // The boundary rank resolves to the first bucket's upper edge.
  EXPECT_NEAR(h.quantile(0.50), 1.0, 1e-9);
}

TEST(HistogramQuantile, OverflowClampsToHighestFiniteBound) {
  obs::Histogram h({1.0, 2.0});
  for (int i = 0; i < 10; ++i) h.observe(100.0);  // all overflow
  EXPECT_NEAR(h.quantile(0.5), 2.0, 1e-9);
  EXPECT_NEAR(h.quantile(0.99), 2.0, 1e-9);
}

TEST(HistogramQuantile, EmptyAndClampedInputs) {
  obs::Histogram h({1.0, 2.0});
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty histogram
  h.observe(1.5);
  EXPECT_NEAR(h.quantile(-1.0), h.quantile(0.0), 1e-12);  // clamped
  EXPECT_NEAR(h.quantile(2.0), h.quantile(1.0), 1e-12);
}

TEST(HistogramQuantile, SnapshotQuantileMatchesLiveHistogram) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("q.test", {0.1, 1.0, 10.0});
  for (int i = 0; i < 37; ++i) h.observe(0.05);
  for (int i = 0; i < 63; ++i) h.observe(5.0);
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_NEAR(snap.histograms[0].quantile(0.5), h.quantile(0.5), 1e-12);
  EXPECT_NEAR(snap.histograms[0].quantile(0.99), h.quantile(0.99), 1e-12);
}

TEST(HistogramQuantile, JsonCarriesPercentileFields) {
  obs::MetricsRegistry reg;
  reg.histogram("lat.seconds", {0.1, 1.0}).observe(0.05);
  const std::string json = reg.snapshot().to_json();
  EXPECT_TRUE(JsonChecker(json).well_formed()) << json;
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p90\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(Registry, NamesAreStableAndSnapshotIsOrdered) {
  obs::MetricsRegistry reg;
  reg.counter("z.last").add(3);
  reg.counter("a.first").add(1);
  EXPECT_EQ(&reg.counter("a.first"), &reg.counter("a.first"));
  reg.gauge("m.mid").set(7.5);
  // Bounds bind on first creation; later bounds are ignored.
  reg.histogram("h", {1.0, 2.0}).observe(1.5);
  reg.histogram("h", {99.0}).observe(0.5);

  const obs::MetricsSnapshot s = reg.snapshot();
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].first, "a.first");
  EXPECT_EQ(s.counters[1].first, "z.last");
  EXPECT_EQ(s.counters[1].second, 3u);
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(s.gauges[0].second, 7.5);
  ASSERT_EQ(s.histograms.size(), 1u);
  const std::vector<double> bounds{1.0, 2.0};
  EXPECT_EQ(s.histograms[0].bounds, bounds);
  EXPECT_EQ(s.histograms[0].count, 2u);
}

TEST(Registry, SnapshotUnderConcurrentIncrementsIsExactAfterJoin) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 6;
  constexpr int kIncrements = 5000;
  std::atomic<bool> stop{false};
  // A reader thread snapshotting concurrently must never crash or see
  // torn registry structure (the values themselves are racy until the
  // writers quiesce — that is the documented contract).
  std::thread reader([&reg, &stop] {
    while (!stop.load()) {
      const obs::MetricsSnapshot s = reg.snapshot();
      for (const auto& [name, v] : s.counters) {
        (void)name;
        (void)v;
      }
    }
  });
  std::vector<std::thread> writers;
  for (int i = 0; i < kThreads; ++i) {
    writers.emplace_back([&reg] {
      for (int j = 0; j < kIncrements; ++j) {
        reg.counter("shared").add();
        reg.gauge("peak").update_max(j);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();
  const obs::MetricsSnapshot s = reg.snapshot();
  ASSERT_EQ(s.counters.size(), 1u);
  EXPECT_EQ(s.counters[0].second,
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_DOUBLE_EQ(s.gauges[0].second, kIncrements - 1);
}

TEST(Registry, JsonRendererRoundTripParses) {
  obs::MetricsRegistry reg;
  EXPECT_TRUE(json_well_formed(reg.snapshot().to_json()));  // empty

  reg.counter("bdd.apply_cache_hits").add(42);
  reg.gauge("hybrid.symbolic_seconds").set(1.25);
  reg.histogram("store.event_write_seconds", {1e-4, 1e-2}).observe(3e-3);
  const std::string json = reg.snapshot().to_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"bdd.apply_cache_hits\": 42"), std::string::npos);
}

TEST(Registry, PrometheusRendererExpandsHistograms) {
  obs::MetricsRegistry reg;
  reg.counter("bdd.gc_runs").add(2);
  obs::Histogram& h = reg.histogram("parallel.shard_seconds", {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);
  const std::string text = reg.snapshot().to_prometheus();
  EXPECT_NE(text.find("# TYPE bdd_gc_runs counter"), std::string::npos);
  EXPECT_NE(text.find("bdd_gc_runs 2"), std::string::npos);
  // Cumulative le buckets: 1 <= 0.1, 2 <= 1.0, 3 <= +Inf.
  EXPECT_NE(text.find("parallel_shard_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("parallel_shard_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("parallel_shard_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("parallel_shard_seconds_count 3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SpanTracer
// ---------------------------------------------------------------------------

TEST(Trace, ChromeJsonIsWellFormedAndEscaped) {
  obs::SpanTracer tracer;
  {
    auto outer = tracer.span("stage.symbolic");
    auto inner = tracer.span("weird \"name\"\\with\nescapes");
  }
  tracer.instant("event.fault_detected");
  const std::string json = tracer.to_chrome_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(Trace, EventsRecordNestingAndThreads) {
  obs::SpanTracer tracer;
  {
    auto outer = tracer.span("outer");
    { auto inner = tracer.span("inner"); }
  }
  std::thread other([&tracer] { auto s = tracer.span("worker"); });
  other.join();

  const std::vector<obs::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  // RAII closes inner first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[2].name, "worker");
  EXPECT_LE(events[1].start_seconds, events[0].start_seconds);
  EXPECT_GE(events[1].duration_seconds, events[0].duration_seconds);
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_NE(events[2].tid, events[0].tid);
}

TEST(Trace, MovedFromSpanDoesNotDoubleRecord) {
  obs::SpanTracer tracer;
  {
    auto a = tracer.span("once");
    auto b = std::move(a);
    a.close();  // moved-from: no-op
  }
  EXPECT_EQ(tracer.events().size(), 1u);
}

TEST(Trace, PhaseSummaryAggregatesByName) {
  obs::SpanTracer tracer;
  { auto s = tracer.span("stage.sim3"); }
  { auto s = tracer.span("stage.sim3"); }
  tracer.instant("marker");  // instants do not appear in the table
  const std::string table = tracer.phase_summary();
  EXPECT_NE(table.find("stage.sim3"), std::string::npos);
  EXPECT_EQ(table.find("marker"), std::string::npos);
  std::istringstream lines(table);
  std::string header, row;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row));
  EXPECT_NE(row.find("2"), std::string::npos);  // count column
}

// ---------------------------------------------------------------------------
// ThreadPool statistics
// ---------------------------------------------------------------------------

TEST(ThreadPoolStats, CountsTasksAndQueueDepth) {
  ThreadPool pool(2);
  for (int i = 0; i < 32; ++i) {
    pool.submit([] {});
  }
  pool.wait_idle();
  const ThreadPoolStats s = pool.stats();
  EXPECT_EQ(s.tasks_executed, 32u);
  EXPECT_GE(s.max_queue_depth, 1u);
  EXPECT_GE(s.busy_seconds, 0.0);
  EXPECT_GE(s.idle_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// SimOptions / fingerprint: telemetry is an observer, not identity
// ---------------------------------------------------------------------------

TEST(Options, TelemetryExcludedFromEqualityAndFingerprint) {
  obs::Telemetry telemetry;
  SimOptions with, without;
  with.telemetry = &telemetry;
  EXPECT_TRUE(with == without);
  EXPECT_EQ(fingerprint_options(with), fingerprint_options(without));
}

// ---------------------------------------------------------------------------
// Instrumented pipeline runs
// ---------------------------------------------------------------------------

struct PipelineRun {
  explicit PipelineRun(std::size_t frames = 48) : nl(make_benchmark("s298")),
                                                  faults(nl) {
    Rng rng(7);
    seq = random_sequence(nl, frames, rng);
  }
  Netlist nl;
  CollapsedFaultList faults;
  TestSequence seq;
};

double gauge_value(const obs::MetricsSnapshot& s, const std::string& name) {
  for (const auto& [n, v] : s.gauges) {
    if (n == name) return v;
  }
  ADD_FAILURE() << "gauge not found: " << name;
  return 0;
}

std::uint64_t counter_value(const obs::MetricsSnapshot& s,
                            const std::string& name) {
  for (const auto& [n, v] : s.counters) {
    if (n == name) return v;
  }
  ADD_FAILURE() << "counter not found: " << name;
  return 0;
}

TEST(PipelineTelemetry, ModeSecondsAndPeakNodesInvariants) {
  const PipelineRun w;
  obs::Telemetry telemetry;
  SimOptions opts;
  opts.node_limit = 120;  // small enough to force fallback windows
  opts.fallback_frames = 4;
  opts.telemetry = &telemetry;
  const PipelineResult r =
      run_pipeline(w.nl, w.faults.faults(), w.seq, opts);
  ASSERT_TRUE(r.used_fallback)
      << "node_limit did not force a fallback window; scenario is vacuous";

  const obs::MetricsSnapshot s = telemetry.metrics.snapshot();
  const double sym = gauge_value(s, "hybrid.symbolic_seconds");
  const double fb = gauge_value(s, "hybrid.fallback_seconds");
  EXPECT_GT(sym, 0.0);
  EXPECT_GT(fb, 0.0);
  // The two mode timers partition the frame loop of the symbolic
  // stage: their sum can never exceed the stage's wall clock, and the
  // part they miss (setup, seeding, result merge) is bounded.
  const double total = gauge_value(s, "pipeline.symbolic_seconds");
  EXPECT_LE(sym + fb, total + 1e-6);
  EXPECT_NEAR(sym + fb, total, 0.5);

  // Frame counters partition the simulated frames.
  const std::uint64_t frames =
      counter_value(s, "hybrid.symbolic_frames") +
      counter_value(s, "hybrid.three_valued_frames");
  EXPECT_GT(frames, 0u);
  EXPECT_LE(frames, w.seq.size());
  EXPECT_GT(counter_value(s, "hybrid.fallback_windows"), 0u);

  // The space limit of the paper: the manager enforces the hard cap
  // before creating a node, so the recorded peak must respect it.
  const double peak = gauge_value(s, "bdd.peak_live_nodes");
  EXPECT_GT(peak, 0.0);
  EXPECT_LE(peak, static_cast<double>(opts.node_limit *
                                      opts.hard_limit_factor));

  // The apply cache saw traffic and hits never exceed lookups.
  EXPECT_LE(counter_value(s, "bdd.apply_cache_hits"),
            counter_value(s, "bdd.apply_cache_lookups"));
  EXPECT_GT(counter_value(s, "bdd.apply_cache_lookups"), 0u);
}

TEST(PipelineTelemetry, ResultsBitIdenticalWithTelemetryAcrossThreads) {
  const PipelineRun w;
  SimOptions base;
  base.node_limit = 120;  // exercise fallback windows too
  base.fallback_frames = 4;
  const PipelineResult reference =
      run_pipeline(w.nl, w.faults.faults(), w.seq, base);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    obs::Telemetry telemetry;
    SimOptions opts = base;
    opts.threads = threads;
    opts.telemetry = &telemetry;
    const PipelineResult observed =
        run_pipeline(w.nl, w.faults.faults(), w.seq, opts);
    EXPECT_EQ(observed.status, reference.status) << "threads=" << threads;
    EXPECT_EQ(observed.detect_frame, reference.detect_frame)
        << "threads=" << threads;
    EXPECT_EQ(observed.x_redundant, reference.x_redundant);
    // The parallel driver reported its shards.
    if (threads > 1) {
      const obs::MetricsSnapshot s = telemetry.metrics.snapshot();
      EXPECT_GT(counter_value(s, "parallel.shards"), 0u);
      EXPECT_GT(counter_value(s, "parallel.pool_tasks"), 0u);
    }
  }
}

TEST(PipelineTelemetry, StageCallbacksFireInOrder) {
  class StageRecorder final : public ProgressSink {
   public:
    void on_stage(const char* name, double seconds) override {
      names.push_back(name);
      EXPECT_GE(seconds, 0.0);
    }
    std::vector<std::string> names;
  };

  const PipelineRun w(16);
  StageRecorder recorder;
  SimOptions opts;
  (void)run_pipeline(w.nl, w.faults.faults(), w.seq, opts, &recorder);
  const std::vector<std::string> want{"stage.xred", "stage.sim3",
                                      "stage.symbolic"};
  EXPECT_EQ(recorder.names, want);

  // A sink that overrides nothing must keep compiling and be usable —
  // the default on_stage body is empty.
  ProgressSink plain;
  plain.on_stage("stage.sim3", 0.0);
}

TEST(PipelineTelemetry, TraceContainsStagesWindowsAndShards) {
  const PipelineRun w;
  obs::Telemetry telemetry;
  SimOptions opts;
  opts.node_limit = 120;
  opts.fallback_frames = 4;
  opts.threads = 2;
  opts.telemetry = &telemetry;
  (void)run_pipeline(w.nl, w.faults.faults(), w.seq, opts);

  const std::string json = telemetry.tracer.to_chrome_json();
  EXPECT_TRUE(json_well_formed(json));
  EXPECT_NE(json.find("\"stage.symbolic\""), std::string::npos);
  EXPECT_NE(json.find("\"symbolic\""), std::string::npos);
  EXPECT_NE(json.find("\"fallback_window\""), std::string::npos);
  EXPECT_NE(json.find("\"shard\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Campaign event stream: wall-clock "t" fields
// ---------------------------------------------------------------------------

struct TempDir {
  explicit TempDir(const std::string& tag)
      : path((fs::temp_directory_path() /
              ("motsim_obs_" + tag + "_" +
               std::to_string(
                   ::testing::UnitTest::GetInstance()->random_seed())))
                 .string()) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

std::vector<std::string> read_lines(const std::string& file) {
  std::ifstream in(file);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Extracts the `"t":<seconds>` field of one events.jsonl record.
double t_of(const std::string& line) {
  const std::size_t at = line.find("\"t\":");
  EXPECT_NE(at, std::string::npos) << "record without t field: " << line;
  if (at == std::string::npos) return -1;
  return std::stod(line.substr(at + 4));
}

TEST(CampaignTelemetry, EventRecordsCarryMonotonicTimestamps) {
  const Netlist nl = make_benchmark("s298");
  const CollapsedFaultList faults(nl);
  Rng rng(3);
  const TestSequence seq = random_sequence(nl, 32, rng);

  TempDir tmp("events");
  obs::Telemetry telemetry;
  SimOptions opts;
  opts.checkpoint_interval = 8;
  opts.telemetry = &telemetry;
  const auto res = run_campaign(nl, faults.faults(), seq, opts, tmp.path);
  ASSERT_TRUE(res.has_value()) << res.error();

  const std::vector<std::string> lines =
      read_lines(tmp.path + "/events.jsonl");
  ASSERT_GE(lines.size(), 3u);  // run_start, >=1 checkpoint, run_complete
  double last = 0;
  for (const std::string& line : lines) {
    EXPECT_TRUE(json_well_formed(line)) << line;
    const double t = t_of(line);
    EXPECT_GE(t, last) << "timestamps must be non-decreasing: " << line;
    last = t;
  }
  // The tracer saw the same events on the same clock.
  const std::string trace = telemetry.tracer.to_chrome_json();
  EXPECT_NE(trace.find("\"event.checkpoint\""), std::string::npos);
  EXPECT_NE(trace.find("\"event.run_complete\""), std::string::npos);
}

TEST(CampaignTelemetry, EventsHaveTimestampsEvenWithoutTelemetry) {
  const Netlist nl = make_benchmark("s27");
  const CollapsedFaultList faults(nl);
  Rng rng(3);
  const TestSequence seq = random_sequence(nl, 16, rng);

  TempDir tmp("notele");
  SimOptions opts;
  opts.checkpoint_interval = 8;
  const auto res = run_campaign(nl, faults.faults(), seq, opts, tmp.path);
  ASSERT_TRUE(res.has_value()) << res.error();
  for (const std::string& line : read_lines(tmp.path + "/events.jsonl")) {
    EXPECT_NE(line.find("\"t\":"), std::string::npos) << line;
  }
}

// ---------------------------------------------------------------------------
// histogram_quantile: the degenerate inputs motsim_load and the serve
// digest feed it must all have defined results (regression for the
// empty-histogram divide and the short-buckets out-of-range read).
// ---------------------------------------------------------------------------

TEST(HistogramQuantile, DegenerateInputsAreDefined) {
  const std::vector<double> bounds{1.0, 2.0, 5.0};

  // Empty bucket vector and all-zero buckets both report 0.
  EXPECT_EQ(obs::histogram_quantile(bounds, {}, 0.5), 0.0);
  EXPECT_EQ(obs::histogram_quantile(bounds, {0, 0, 0, 0}, 0.5), 0.0);
  EXPECT_EQ(obs::histogram_quantile({}, {}, 0.5), 0.0);

  // NaN q reports 0 instead of propagating into bucket ranks.
  const double nan_q = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(obs::histogram_quantile(bounds, {1, 2, 3, 0}, nan_q), 0.0);

  // q outside [0, 1] clamps to the endpoints.
  const std::vector<std::uint64_t> buckets{10, 10, 10, 0};
  EXPECT_EQ(obs::histogram_quantile(bounds, buckets, -3.0),
            obs::histogram_quantile(bounds, buckets, 0.0));
  EXPECT_EQ(obs::histogram_quantile(bounds, buckets, 7.0),
            obs::histogram_quantile(bounds, buckets, 1.0));
}

TEST(HistogramQuantile, ShortBucketVectorClampsInsteadOfOverreading) {
  // buckets.size() < bounds.size() + 1: the rank can land past the
  // last provided bucket; the estimate must clamp to the highest
  // finite bound, never index bounds[buckets.size() - 1] off the end.
  const std::vector<double> bounds{1.0, 2.0, 5.0};
  const std::vector<std::uint64_t> short_buckets{1, 1};  // 2 < 4
  const double q99 = obs::histogram_quantile(bounds, short_buckets, 0.99);
  EXPECT_GE(q99, 0.0);
  EXPECT_LE(q99, 5.0);
  const double q0 = obs::histogram_quantile(bounds, short_buckets, 0.0);
  EXPECT_GE(q0, 0.0);
  EXPECT_LE(q0, 5.0);
}

// ---------------------------------------------------------------------------
// Renderer hardening: Prometheus name mapping and JSON id escaping
// ---------------------------------------------------------------------------

TEST(Registry, PrometheusNameMappingKeepsDigitsAndUnderscores) {
  obs::MetricsRegistry reg;
  reg.counter("serve.requests.fault_sim").add(1);
  reg.counter("hybrid.3v_frames").add(2);
  reg.gauge("bdd.live_nodes").set(5);
  reg.histogram("serve.queue.wait_seconds", {0.1}).observe(0.05);
  const std::string text = reg.snapshot().to_prometheus();
  // Dots map to underscores; digits and underscores survive.
  EXPECT_NE(text.find("serve_requests_fault_sim 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("hybrid_3v_frames 2"), std::string::npos);
  EXPECT_NE(text.find("bdd_live_nodes 5"), std::string::npos);
  EXPECT_NE(text.find("serve_queue_wait_seconds_count 1"),
            std::string::npos);
  // The dotted originals never leak into the exposition text.
  EXPECT_EQ(text.find("serve.requests.fault_sim"), std::string::npos);
}

TEST(Registry, PrometheusNameMappingReplacesForbiddenCharacters) {
  obs::MetricsRegistry reg;
  reg.counter("weird-name.with spaces").add(3);
  const std::string text = reg.snapshot().to_prometheus();
  EXPECT_NE(text.find("weird_name_with_spaces 3"), std::string::npos)
      << text;
}

TEST(Registry, JsonRendererEscapesHostileMetricIds) {
  obs::MetricsRegistry reg;
  reg.counter("evil\"quote").add(1);
  reg.gauge("back\\slash").set(2.0);
  reg.histogram("newline\nname", {1.0}).observe(0.5);
  const std::string json = reg.snapshot().to_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("evil\\\"quote"), std::string::npos);
  EXPECT_NE(json.find("back\\\\slash"), std::string::npos);
}

TEST(Registry, JsonLineIsOneWellFormedLine) {
  obs::MetricsRegistry reg;
  reg.counter("a.counter").add(7);
  reg.histogram("h.seconds", {0.1, 1.0}).observe(0.5);
  const std::string line = reg.snapshot().to_json_line();
  EXPECT_EQ(line.find('\n'), std::string::npos) << line;
  EXPECT_TRUE(json_well_formed(line)) << line;
}

// ---------------------------------------------------------------------------
// Structured logging: level parsing, record formatting, the sink
// ---------------------------------------------------------------------------

TEST(Log, ParseLogLevelNamesAndErrors) {
  using obs::LogLevel;
  EXPECT_EQ(*obs::parse_log_level("trace"), LogLevel::Trace);
  EXPECT_EQ(*obs::parse_log_level("DEBUG"), LogLevel::Debug);
  EXPECT_EQ(*obs::parse_log_level("Info"), LogLevel::Info);
  EXPECT_EQ(*obs::parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(*obs::parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(*obs::parse_log_level("off"), LogLevel::Off);
  EXPECT_FALSE(obs::parse_log_level("loud").has_value());
  EXPECT_FALSE(obs::parse_log_level("").has_value());
}

TEST(Log, FormatLogRecordIsOneWellFormedJsonLine) {
  std::string out;
  const obs::LogField fields[] = {
      obs::LogField::i64("frame", -3),
      obs::LogField::u64("nodes", 12345),
      obs::LogField::f64("seconds", 0.25),
      obs::LogField::boolean("fallback", true),
      obs::LogField::str("stage", "sym\"bolic\\"),
  };
  obs::format_log_record(out, 1.5, obs::LogLevel::Info, "test.event",
                         "c1-r2", 3, fields, 5, "a \"message\"\nwith\tescapes");
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), '\n');
  const std::string line = out.substr(0, out.size() - 1);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_TRUE(json_well_formed(line)) << line;
  EXPECT_NE(line.find("\"event\":\"test.event\""), std::string::npos);
  EXPECT_NE(line.find("\"trace\":\"c1-r2\""), std::string::npos);
  EXPECT_NE(line.find("\"frame\":-3"), std::string::npos);
  EXPECT_NE(line.find("\"fallback\":true"), std::string::npos);
}

TEST(Log, FormatLogRecordRendersNonFiniteDoublesAsNull) {
  std::string out;
  const obs::LogField fields[] = {
      obs::LogField::f64("inf", std::numeric_limits<double>::infinity()),
      obs::LogField::f64("nan", std::numeric_limits<double>::quiet_NaN()),
  };
  obs::format_log_record(out, 0.0, obs::LogLevel::Warn, "test.nonfinite",
                         "", 0, fields, 2, "");
  const std::string line = out.substr(0, out.size() - 1);
  EXPECT_TRUE(json_well_formed(line)) << line;
  EXPECT_NE(line.find("\"inf\":null"), std::string::npos) << line;
  EXPECT_NE(line.find("\"nan\":null"), std::string::npos) << line;
}

TEST(Log, LoggerWritesGatedJsonLines) {
  TempDir tmp("log");
  fs::create_directories(tmp.path);
  const std::string file = tmp.path + "/run.log.jsonl";
  auto logger = obs::Logger::open(file, obs::LogLevel::Info);
  ASSERT_TRUE(logger.has_value()) << logger.error();

  obs::Telemetry telemetry;
  telemetry.attach_logger(logger->get());
  obs::log_event(&telemetry, obs::LogLevel::Debug, "gated.out",
                 {obs::LogField::i64("n", 1)});
  obs::log_event(&telemetry, obs::LogLevel::Info, "kept.info",
                 {obs::LogField::str("k", "v")}, "hello");
  obs::log_event(&telemetry, obs::LogLevel::Error, "kept.error");
  telemetry.attach_logger(nullptr);

  const std::vector<std::string> lines = read_lines(file);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(json_well_formed(line)) << line;
  }
  EXPECT_NE(lines[0].find("\"event\":\"kept.info\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"level\":\"error\""), std::string::npos);
  // The gated record never reached the file but did reach the
  // always-on flight recorder.
  EXPECT_NE(telemetry.recorder.dump().find("gated.out"), std::string::npos);
}

TEST(Log, SetLevelReopensTheGateAtRuntime) {
  TempDir tmp("loglvl");
  fs::create_directories(tmp.path);
  const std::string file = tmp.path + "/lvl.jsonl";
  auto logger = obs::Logger::open(file, obs::LogLevel::Error);
  ASSERT_TRUE(logger.has_value());
  EXPECT_FALSE((*logger)->enabled(obs::LogLevel::Info));
  (*logger)->set_level(obs::LogLevel::Trace);
  EXPECT_TRUE((*logger)->enabled(obs::LogLevel::Trace));
  EXPECT_EQ((*logger)->level(), obs::LogLevel::Trace);
}

TEST(Log, NullTelemetryIsANoOp) {
  // The disabled path of every instrumentation site: must not touch
  // any sink, allocate, or crash.
  obs::log_event(nullptr, obs::LogLevel::Error, "never.seen",
                 {obs::LogField::i64("x", 1)}, "dropped");
  SUCCEED();
}

TEST(Log, OpenLoggerFromPrefersFlagsOverEnvironment) {
  // No flag, no env → no sink, not an error.
  ASSERT_EQ(unsetenv("MOTSIM_LOG"), 0);
  ASSERT_EQ(unsetenv("MOTSIM_LOG_LEVEL"), 0);
  auto none = obs::open_logger_from("", "");
  ASSERT_TRUE(none.has_value());
  EXPECT_EQ(none->get(), nullptr);

  // Unknown level name is an error even with a valid path.
  TempDir tmp("logenv");
  fs::create_directories(tmp.path);
  EXPECT_FALSE(
      obs::open_logger_from(tmp.path + "/x.jsonl", "loudest").has_value());

  // The env variable names a sink when the flag does not.
  const std::string env_file = tmp.path + "/env.jsonl";
  ASSERT_EQ(setenv("MOTSIM_LOG", env_file.c_str(), 1), 0);
  ASSERT_EQ(setenv("MOTSIM_LOG_LEVEL", "warn", 1), 0);
  auto from_env = obs::open_logger_from("", "");
  ASSERT_TRUE(from_env.has_value()) << from_env.error();
  ASSERT_NE(from_env->get(), nullptr);
  EXPECT_EQ((*from_env)->level(), obs::LogLevel::Warn);
  ASSERT_EQ(unsetenv("MOTSIM_LOG"), 0);
  ASSERT_EQ(unsetenv("MOTSIM_LOG_LEVEL"), 0);
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(Recorder, DumpReturnsNotesOldestFirst) {
  obs::FlightRecorder rec;
  rec.note(std::string("{\"n\":1}"));
  rec.note(std::string("{\"n\":2}\n"));  // trailing newline is stripped
  const std::string dump = rec.dump();
  const std::vector<std::string> lines = [&dump] {
    std::vector<std::string> out;
    std::istringstream in(dump);
    for (std::string l; std::getline(in, l);) out.push_back(l);
    return out;
  }();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"n\":1}");
  EXPECT_EQ(lines[1], "{\"n\":2}");
  EXPECT_EQ(rec.recorded(), 2u);
}

TEST(Recorder, WrapAroundKeepsOnlyTheWindowAndEveryLineValid) {
  obs::FlightRecorder rec;
  const std::size_t total = obs::FlightRecorder::kSlots + 500;
  for (std::size_t i = 0; i < total; ++i) {
    rec.note("{\"seq\":" + std::to_string(i) + "}");
  }
  EXPECT_EQ(rec.recorded(), total);

  const std::string dump = rec.dump();
  std::istringstream in(dump);
  std::size_t lines = 0;
  std::string first;
  for (std::string line; std::getline(in, line);) {
    if (lines == 0) first = line;
    EXPECT_TRUE(json_well_formed(line)) << line;
    ++lines;
  }
  EXPECT_LE(lines, obs::FlightRecorder::kSlots);
  EXPECT_GT(lines, obs::FlightRecorder::kSlots / 2);
  // The retained window is the most recent kSlots records: the oldest
  // surviving record is at least seq 500.
  ASSERT_FALSE(first.empty());
  const std::size_t at = first.find("\"seq\":");
  ASSERT_NE(at, std::string::npos);
  EXPECT_GE(std::stoull(first.substr(at + 6)), 500u);
}

TEST(Recorder, OversizedRecordBecomesAValidTruncationMarker) {
  obs::FlightRecorder rec;
  const std::string huge =
      "{\"big\":\"" + std::string(obs::FlightRecorder::kPayloadBytes * 2, 'x') +
      "\"}";
  rec.note(huge);
  const std::string dump = rec.dump();
  ASSERT_FALSE(dump.empty());
  const std::string line = dump.substr(0, dump.find('\n'));
  EXPECT_LE(line.size(), obs::FlightRecorder::kPayloadBytes);
  EXPECT_TRUE(json_well_formed(line)) << line;
  EXPECT_EQ(line.find(huge), std::string::npos);
}

TEST(Recorder, ConcurrentNotesNeverTearOrCrash) {
  obs::FlightRecorder rec;
  constexpr int kThreads = 8;
  constexpr int kNotes = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kNotes; ++i) {
        rec.note("{\"w\":" + std::to_string(t) + ",\"i\":" +
                 std::to_string(i) + "}");
      }
    });
  }
  // A concurrent reader exercises the dump-vs-note slot locks.
  std::thread reader([&rec] {
    for (int i = 0; i < 50; ++i) (void)rec.dump();
  });
  for (auto& t : threads) t.join();
  reader.join();

  EXPECT_EQ(rec.recorded(),
            static_cast<std::uint64_t>(kThreads) * kNotes);
  std::istringstream in(rec.dump());
  for (std::string line; std::getline(in, line);) {
    EXPECT_TRUE(json_well_formed(line)) << line;
  }
  // Dropped records (contended slots) are counted, never silently lost.
  EXPECT_LE(rec.dropped(), rec.recorded());
}

TEST(Recorder, LogEventsLandInTheRecorderEvenWithoutALogger) {
  obs::Telemetry telemetry;  // no logger attached
  obs::log_event(&telemetry, obs::LogLevel::Trace, "recorder.only",
                 {obs::LogField::u64("k", 9)});
  const std::string dump = telemetry.recorder.dump();
  EXPECT_NE(dump.find("recorder.only"), std::string::npos);
  std::istringstream in(dump);
  for (std::string line; std::getline(in, line);) {
    EXPECT_TRUE(json_well_formed(line)) << line;
  }
}

// ---------------------------------------------------------------------------
// Request-scoped trace ids
// ---------------------------------------------------------------------------

TEST(TraceId, ScopesNestAndRestore) {
  EXPECT_TRUE(obs::current_trace_id().empty());
  {
    obs::ScopedTraceId outer("c1-r1");
    EXPECT_EQ(obs::current_trace_id(), "c1-r1");
    {
      obs::ScopedTraceId inner("c1-r2");
      EXPECT_EQ(obs::current_trace_id(), "c1-r2");
    }
    EXPECT_EQ(obs::current_trace_id(), "c1-r1");
  }
  EXPECT_TRUE(obs::current_trace_id().empty());
}

TEST(TraceId, IsThreadLocal) {
  obs::ScopedTraceId mine("c9-r9");
  std::string seen = "unset";
  std::thread other([&seen] { seen = obs::current_trace_id(); });
  other.join();
  EXPECT_EQ(seen, "");
  EXPECT_EQ(obs::current_trace_id(), "c9-r9");
}

TEST(TraceId, SpansAndLogRecordsCarryTheActiveId) {
  obs::Telemetry telemetry;
  {
    obs::ScopedTraceId scope("c3-r7");
    { auto span = telemetry.tracer.span("handler"); }
    obs::log_event(&telemetry, obs::LogLevel::Info, "traced.event");
  }
  { auto span = telemetry.tracer.span("outside"); }

  const std::vector<obs::TraceEvent> events = telemetry.tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].trace, "c3-r7");
  EXPECT_TRUE(events[1].trace.empty());

  // Chrome JSON exports the id as an args attribute.
  const std::string chrome = telemetry.tracer.to_chrome_json();
  EXPECT_TRUE(json_well_formed(chrome));
  EXPECT_NE(chrome.find("\"args\":{\"trace\":\"c3-r7\"}"),
            std::string::npos);
  // The recorder's mirror of the log record carries it too.
  EXPECT_NE(telemetry.recorder.dump().find("\"trace\":\"c3-r7\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

TEST(Sampler, WritesValidJsonlWithRssAndGauges) {
  TempDir tmp("sampler");
  fs::create_directories(tmp.path);
  const std::string file = tmp.path + "/samples.jsonl";

  obs::Telemetry telemetry;
  telemetry.metrics.gauge("bdd.live_nodes").set(431);
  auto sampler = obs::Sampler::start(telemetry, file, 1);
  ASSERT_TRUE(sampler.has_value()) << sampler.error();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  (*sampler)->stop();

  const std::vector<std::string> lines = read_lines(file);
  ASSERT_GE(lines.size(), 1u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(json_well_formed(line)) << line;
    EXPECT_NE(line.find("\"rss_bytes\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"bdd.live_nodes\""), std::string::npos) << line;
  }
}

TEST(Sampler, ProcessRssIsPlausible) {
  const std::size_t rss = obs::process_rss_bytes();
  // /proc is available on the platforms this repo targets; a running
  // test binary is at least 1 MiB resident.
  EXPECT_GE(rss, std::size_t{1} << 20);
}

// ---------------------------------------------------------------------------
// Full-stack observability must not change what the engines compute
// ---------------------------------------------------------------------------

TEST(PipelineTelemetry, ResultsBitIdenticalWithFullObservabilityStack) {
  const PipelineRun w;
  SimOptions base;
  base.node_limit = 120;  // exercise fallback windows too
  base.fallback_frames = 4;
  const PipelineResult reference =
      run_pipeline(w.nl, w.faults.faults(), w.seq, base);

  TempDir tmp("fullobs");
  fs::create_directories(tmp.path);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const std::string tag = std::to_string(threads);
    auto logger = obs::Logger::open(tmp.path + "/log" + tag + ".jsonl",
                                    obs::LogLevel::Trace);
    ASSERT_TRUE(logger.has_value()) << logger.error();

    obs::Telemetry telemetry;
    telemetry.attach_logger(logger->get());
    auto sampler =
        obs::Sampler::start(telemetry, tmp.path + "/s" + tag + ".jsonl", 1);
    ASSERT_TRUE(sampler.has_value()) << sampler.error();

    SimOptions opts = base;
    opts.threads = threads;
    opts.telemetry = &telemetry;
    const PipelineResult observed =
        run_pipeline(w.nl, w.faults.faults(), w.seq, opts);
    (*sampler)->stop();
    telemetry.attach_logger(nullptr);

    EXPECT_EQ(observed.status, reference.status) << "threads=" << threads;
    EXPECT_EQ(observed.detect_frame, reference.detect_frame)
        << "threads=" << threads;
    EXPECT_EQ(observed.x_redundant, reference.x_redundant);

    // Every emitted log line is valid JSONL and the stage transitions
    // of the pipeline appear in it.
    const std::vector<std::string> lines =
        read_lines(tmp.path + "/log" + tag + ".jsonl");
    ASSERT_GE(lines.size(), 2u);
    bool saw_stage_end = false;
    for (const std::string& line : lines) {
      EXPECT_TRUE(json_well_formed(line)) << line;
      if (line.find("\"event\":\"pipeline.stage.end\"") !=
          std::string::npos) {
        saw_stage_end = true;
      }
    }
    EXPECT_TRUE(saw_stage_end);
    // The recorder window retained the same stream.
    EXPECT_NE(telemetry.recorder.dump().find("pipeline.stage"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace motsim
