// Symbolic fault dictionary and diagnosis (core/diagnosis.h).

#include <gtest/gtest.h>

#include "bench_data/registry.h"
#include "bench_data/s27.h"
#include "core/diagnosis.h"
#include "faults/collapse.h"
#include "reference.h"
#include "sim3/sim2.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace motsim {
namespace {

using testing::small_random_circuit;

TEST(FaultDictionary, PointsAreWellDefined) {
  // o = NOT(q) with q loading a: after one frame the output is
  // constant — exactly one point per later frame.
  Netlist nl("pts");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex q = nl.add_dff(a, "q");
  const NodeIndex o = nl.add_gate(GateType::Not, {q}, "o");
  nl.mark_output(o);
  nl.finalize();

  const TestSequence seq = sequence_from_strings({"1", "0", "1"});
  bdd::BddManager mgr;
  const CollapsedFaultList c(nl);
  const FaultDictionary dict(nl, mgr, c.faults(), seq);

  ASSERT_EQ(dict.points().size(), 2u);  // frames 2 and 3
  EXPECT_EQ(dict.points()[0].frame, 1u);
  EXPECT_EQ(dict.points()[0].expected, false);  // NOT(1)
  EXPECT_EQ(dict.points()[1].frame, 2u);
  EXPECT_EQ(dict.points()[1].expected, true);  // NOT(0)
}

TEST(FaultDictionary, FaultFreeResponseDiagnosesToNothing) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  Rng rng(3);
  const TestSequence seq = random_sequence(nl, 20, rng);
  bdd::BddManager mgr;
  const FaultDictionary dict(nl, mgr, c.faults(), seq);

  Sim2 cut(nl);
  const auto resp = cut.run({true, false, true}, to_bool_sequence(seq));
  EXPECT_TRUE(dict.diagnose(resp).empty());
}

class DiagnosisSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiagnosisSoundness, InjectedFaultIsNeverExcluded) {
  // Whatever initial state the faulty machine powered up in, the true
  // fault must appear among the candidates whenever the response
  // mismatches at all.
  const Netlist nl = small_random_circuit(GetParam());
  if (nl.dff_count() > 5) GTEST_SKIP();
  Rng rng(GetParam() * 41 + 3);
  const TestSequence seq = random_sequence(nl, 8, rng);
  const auto seq2 = to_bool_sequence(seq);
  const CollapsedFaultList c(nl);

  bdd::BddManager mgr;
  const FaultDictionary dict(nl, mgr, c.faults(), seq);

  std::size_t diagnosed = 0;
  for (std::size_t fi = 0; fi < c.size() && diagnosed < 6; ++fi) {
    for (std::size_t s = 0; s < (std::size_t{1} << nl.dff_count());
         s += 2) {
      std::vector<bool> init(nl.dff_count());
      for (std::size_t i = 0; i < init.size(); ++i) {
        init[i] = ((s >> i) & 1) != 0;
      }
      Sim2 cut(nl, c.faults()[fi]);
      const auto resp = cut.run(init, seq2);
      const auto candidates = dict.diagnose(resp);
      if (candidates.empty()) continue;  // no observable mismatch
      ++diagnosed;
      bool present = false;
      for (const auto& cand : candidates) {
        present |= (cand.fault_index == fi);
      }
      EXPECT_TRUE(present) << fault_name(nl, c.faults()[fi])
                           << " excluded by its own response";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiagnosisSoundness,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(FaultDictionary, RankingPutsFullExplainersFirst) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  Rng rng(9);
  const TestSequence seq = random_sequence(nl, 24, rng);
  bdd::BddManager mgr;
  const FaultDictionary dict(nl, mgr, c.faults(), seq);

  // Inject a fault and diagnose its response.
  const std::size_t fi = 2;
  Sim2 cut(nl, c.faults()[fi]);
  const auto resp = cut.run({false, false, false}, to_bool_sequence(seq));
  const auto candidates = dict.diagnose(resp);
  if (candidates.empty()) GTEST_SKIP() << "fault silent from this state";
  // Ranked by explained, descending.
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_GE(candidates[i - 1].explained, candidates[i].explained);
  }
  // No candidate carries contradictions.
  for (const auto& cand : candidates) {
    EXPECT_EQ(cand.contradicted, 0u);
  }
}

TEST(FaultDictionary, DiagnosisNarrowsTheCandidateSet) {
  // On s27 a mismatching response must rule out a decent share of the
  // fault list (otherwise the dictionary carries no information).
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  Rng rng(11);
  const TestSequence seq = random_sequence(nl, 40, rng);
  bdd::BddManager mgr;
  const FaultDictionary dict(nl, mgr, c.faults(), seq);

  std::size_t informative = 0;
  for (std::size_t fi = 0; fi < c.size(); ++fi) {
    Sim2 cut(nl, c.faults()[fi]);
    const auto resp = cut.run({true, true, false}, to_bool_sequence(seq));
    const auto candidates = dict.diagnose(resp);
    if (!candidates.empty() && candidates.size() < c.size()) ++informative;
  }
  EXPECT_GT(informative, c.size() / 3);
}

TEST(FaultDictionary, RejectsShortResponses) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  Rng rng(13);
  const TestSequence seq = random_sequence(nl, 5, rng);
  bdd::BddManager mgr;
  const FaultDictionary dict(nl, mgr, c.faults(), seq);
  if (dict.points().empty()) GTEST_SKIP();
  EXPECT_THROW((void)dict.diagnose({{true}}), std::invalid_argument);
}

}  // namespace
}  // namespace motsim
