// Property-based validation of the boolean operation kernels: random
// expression trees are built simultaneously as BDDs and as evaluable
// ASTs, then compared on every assignment of up to five variables.

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "bdd/bdd.h"
#include "util/rng.h"

namespace motsim::bdd {
namespace {

constexpr unsigned kVars = 5;

/// A random boolean expression as both a BDD and a truth-evaluable
/// closure.
struct Expr {
  Bdd bdd;
  std::function<bool(unsigned assignment)> eval;
};

bool bit(unsigned assignment, unsigned var) {
  return ((assignment >> var) & 1) != 0;
}

Expr random_expr(BddManager& mgr, Rng& rng, int depth) {
  if (depth == 0 || rng.chance(0.25)) {
    if (rng.chance(0.1)) {
      const bool c = rng.flip();
      return {mgr.constant(c), [c](unsigned) { return c; }};
    }
    const unsigned v = static_cast<unsigned>(rng.below(kVars));
    return {mgr.var(v), [v](unsigned a) { return bit(a, v); }};
  }
  const auto op = rng.below(6);
  if (op == 0) {
    Expr e = random_expr(mgr, rng, depth - 1);
    auto inner = e.eval;
    return {!e.bdd, [inner](unsigned a) { return !inner(a); }};
  }
  Expr l = random_expr(mgr, rng, depth - 1);
  Expr r = random_expr(mgr, rng, depth - 1);
  auto le = l.eval, re = r.eval;
  switch (op) {
    case 1:
      return {l.bdd & r.bdd, [=](unsigned a) { return le(a) && re(a); }};
    case 2:
      return {l.bdd | r.bdd, [=](unsigned a) { return le(a) || re(a); }};
    case 3:
      return {l.bdd ^ r.bdd, [=](unsigned a) { return le(a) != re(a); }};
    case 4:
      return {l.bdd.xnor(r.bdd),
              [=](unsigned a) { return le(a) == re(a); }};
    default: {
      Expr m = random_expr(mgr, rng, depth - 1);
      auto me = m.eval;
      return {mgr.ite(l.bdd, r.bdd, m.bdd),
              [=](unsigned a) { return le(a) ? re(a) : me(a); }};
    }
  }
}

void expect_equal_truth_table(BddManager& mgr, const Expr& e,
                              const char* what) {
  (void)mgr;
  std::vector<bool> assignment(kVars);
  for (unsigned a = 0; a < (1u << kVars); ++a) {
    for (unsigned v = 0; v < kVars; ++v) assignment[v] = bit(a, v);
    EXPECT_EQ(e.bdd.eval(assignment), e.eval(a))
        << what << " differs at assignment " << a;
  }
}

class BddRandomExpr : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BddRandomExpr, MatchesTruthTable) {
  BddManager mgr;
  Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    const Expr e = random_expr(mgr, rng, 4);
    expect_equal_truth_table(mgr, e, "random expression");
  }
}

TEST_P(BddRandomExpr, AlgebraicLawsHold) {
  BddManager mgr;
  Rng rng(GetParam() ^ 0xABCDEF);
  for (int i = 0; i < 12; ++i) {
    const Bdd f = random_expr(mgr, rng, 3).bdd;
    const Bdd g = random_expr(mgr, rng, 3).bdd;
    const Bdd h = random_expr(mgr, rng, 3).bdd;
    // De Morgan
    EXPECT_EQ(!(f & g), (!f) | (!g));
    EXPECT_EQ(!(f | g), (!f) & (!g));
    // Double negation
    EXPECT_EQ(!!f, f);
    // Distribution
    EXPECT_EQ(f & (g | h), (f & g) | (f & h));
    // Absorption
    EXPECT_EQ(f & (f | g), f);
    EXPECT_EQ(f | (f & g), f);
    // XOR via AND/OR
    EXPECT_EQ(f ^ g, (f & (!g)) | ((!f) & g));
    // Shannon expansion at variable 0
    const Bdd x = mgr.var(0);
    const Bdd f1 = mgr.restrict_var(f, 0, true);
    const Bdd f0 = mgr.restrict_var(f, 0, false);
    EXPECT_EQ(f, mgr.ite(x, f1, f0));
  }
}

TEST_P(BddRandomExpr, IteAgreesWithMux) {
  BddManager mgr;
  Rng rng(GetParam() ^ 0x777);
  for (int i = 0; i < 12; ++i) {
    const Bdd f = random_expr(mgr, rng, 3).bdd;
    const Bdd g = random_expr(mgr, rng, 3).bdd;
    const Bdd h = random_expr(mgr, rng, 3).bdd;
    EXPECT_EQ(mgr.ite(f, g, h), (f & g) | ((!f) & h));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddRandomExpr,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Directed operation cases
// ---------------------------------------------------------------------------

TEST(BddOps, IteTerminalCases) {
  BddManager mgr;
  const Bdd f = mgr.var(0), g = mgr.var(1), h = mgr.var(2);
  EXPECT_EQ(mgr.ite(mgr.one(), g, h), g);
  EXPECT_EQ(mgr.ite(mgr.zero(), g, h), h);
  EXPECT_EQ(mgr.ite(f, g, g), g);
  EXPECT_EQ(mgr.ite(f, mgr.one(), mgr.zero()), f);
  EXPECT_EQ(mgr.ite(f, mgr.zero(), mgr.one()), !f);
  EXPECT_EQ(mgr.ite(f, f, h), f | h);
  EXPECT_EQ(mgr.ite(f, g, f), f & g);
}

TEST(BddOps, RestrictEliminatesVariable) {
  BddManager mgr;
  const Bdd a = mgr.var(0), b = mgr.var(1);
  const Bdd f = (a & b) | ((!a) & (!b));  // XNOR
  const Bdd f_a1 = mgr.restrict_var(f, 0, true);
  EXPECT_EQ(f_a1, b);
  const Bdd f_a0 = mgr.restrict_var(f, 0, false);
  EXPECT_EQ(f_a0, !b);
  // Restricting a variable outside the support is the identity.
  EXPECT_EQ(mgr.restrict_var(f, 4, true), f);
}

TEST(BddOps, AndOrOnManyVariables) {
  BddManager mgr;
  Bdd conj = mgr.one();
  Bdd disj = mgr.zero();
  for (unsigned v = 0; v < 12; ++v) {
    conj &= mgr.var(v);
    disj |= mgr.var(v);
  }
  // A conjunction/disjunction chain is linear in the variable count.
  EXPECT_EQ(conj.node_count(), 12u);
  EXPECT_EQ(disj.node_count(), 12u);
  std::vector<bool> all_true(12, true), all_false(12, false);
  EXPECT_TRUE(conj.eval(all_true));
  EXPECT_FALSE(conj.eval(all_false));
  EXPECT_TRUE(disj.eval(all_true));
  EXPECT_FALSE(disj.eval(all_false));
}

TEST(BddOps, ParityFunctionSize) {
  BddManager mgr;
  Bdd parity = mgr.zero();
  const unsigned n = 10;
  for (unsigned v = 0; v < n; ++v) parity ^= mgr.var(v);
  // Parity has 2n-1 nodes under any order.
  EXPECT_EQ(parity.node_count(), 2 * n - 1);
}

TEST(BddOps, CacheHitsAccumulate) {
  BddManager mgr;
  const Bdd a = mgr.var(0), b = mgr.var(1);
  (void)(a & b);
  const auto lookups_before = mgr.stats().cache_lookups;
  (void)(a & b);  // same operation: cache hit expected
  EXPECT_GT(mgr.stats().cache_lookups, lookups_before);
  EXPECT_GT(mgr.stats().cache_hits, 0u);
}

}  // namespace
}  // namespace motsim::bdd
