// Composition, renaming, quantification and analysis operations,
// validated against brute-force truth-table semantics.

#include <gtest/gtest.h>

#include "bdd/bdd.h"
#include "util/rng.h"

namespace motsim::bdd {
namespace {

constexpr unsigned kVars = 6;

bool bit(unsigned a, unsigned v) { return ((a >> v) & 1) != 0; }

Bdd random_function(BddManager& mgr, Rng& rng, int depth,
                    unsigned var_limit = kVars) {
  if (depth == 0 || rng.chance(0.3)) {
    return mgr.var(static_cast<unsigned>(rng.below(var_limit)));
  }
  const Bdd l = random_function(mgr, rng, depth - 1, var_limit);
  const Bdd r = random_function(mgr, rng, depth - 1, var_limit);
  switch (rng.below(4)) {
    case 0:
      return l & r;
    case 1:
      return l | r;
    case 2:
      return l ^ r;
    default:
      return !l;
  }
}

std::vector<bool> assignment_of(unsigned a) {
  std::vector<bool> out(kVars);
  for (unsigned v = 0; v < kVars; ++v) out[v] = bit(a, v);
  return out;
}

// ---------------------------------------------------------------------------
// compose
// ---------------------------------------------------------------------------

class BddComposeProp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BddComposeProp, ComposeMatchesSubstitutionSemantics) {
  BddManager mgr;
  Rng rng(GetParam());
  for (int iter = 0; iter < 15; ++iter) {
    const Bdd f = random_function(mgr, rng, 3);
    const Bdd g = random_function(mgr, rng, 3);
    const unsigned v = static_cast<unsigned>(rng.below(kVars));
    const Bdd composed = mgr.compose(f, v, g);
    for (unsigned a = 0; a < (1u << kVars); ++a) {
      std::vector<bool> asg = assignment_of(a);
      asg[v] = g.eval(assignment_of(a));
      EXPECT_EQ(composed.eval(assignment_of(a)), f.eval(asg))
          << "compose(f," << v << ",g) wrong at " << a;
    }
  }
}

TEST_P(BddComposeProp, ComposeWithProjectionIsIdentity) {
  BddManager mgr;
  Rng rng(GetParam() ^ 0x55);
  for (int iter = 0; iter < 10; ++iter) {
    const Bdd f = random_function(mgr, rng, 3);
    const unsigned v = static_cast<unsigned>(rng.below(kVars));
    EXPECT_EQ(mgr.compose(f, v, mgr.var(v)), f);
  }
}

TEST_P(BddComposeProp, ComposeWithConstantIsRestrict) {
  BddManager mgr;
  Rng rng(GetParam() ^ 0x99);
  for (int iter = 0; iter < 10; ++iter) {
    const Bdd f = random_function(mgr, rng, 3);
    const unsigned v = static_cast<unsigned>(rng.below(kVars));
    EXPECT_EQ(mgr.compose(f, v, mgr.one()), mgr.restrict_var(f, v, true));
    EXPECT_EQ(mgr.compose(f, v, mgr.zero()), mgr.restrict_var(f, v, false));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddComposeProp,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

// ---------------------------------------------------------------------------
// rename
// ---------------------------------------------------------------------------

TEST(BddRename, InterleavedXToYShift) {
  // The simulators' variable plan: x_i = 2i, y_i = 2i+1. Renaming
  // x_i -> y_i is order-preserving.
  BddManager mgr;
  const Bdd x0 = mgr.var(0), x1 = mgr.var(2), x2 = mgr.var(4);
  const Bdd f = (x0 & x1) | (x1 ^ x2);
  std::vector<VarIndex> map{1, 1, 3, 3, 5, 5};
  const Bdd g = mgr.rename(f, map);

  const Bdd y0 = mgr.var(1), y1 = mgr.var(3), y2 = mgr.var(5);
  EXPECT_EQ(g, (y0 & y1) | (y1 ^ y2));
}

TEST(BddRename, RenameAgreesWithIteratedCompose) {
  BddManager mgr;
  Rng rng(31);
  for (int iter = 0; iter < 10; ++iter) {
    // Build f over even variables only, shift to odd.
    Bdd f = mgr.one();
    for (unsigned i = 0; i < 3; ++i) {
      const Bdd v = mgr.var(2 * i);
      f = rng.flip() ? (f & (rng.flip() ? v : !v)) : (f ^ v);
    }
    std::vector<VarIndex> map{1, 1, 3, 3, 5, 5};
    const Bdd renamed = mgr.rename(f, map);

    // Iterated compose from the bottom variable up is equivalent for
    // this disjoint-range map.
    Bdd composed = f;
    for (int i = 2; i >= 0; --i) {
      composed = mgr.compose(composed, 2 * static_cast<unsigned>(i),
                             mgr.var(2 * static_cast<unsigned>(i) + 1));
    }
    EXPECT_EQ(renamed, composed);
  }
}

TEST(BddRename, IdentityMapping) {
  BddManager mgr;
  const Bdd f = mgr.var(0) ^ mgr.var(1);
  EXPECT_EQ(mgr.rename(f, {0, 1}), f);
  EXPECT_EQ(mgr.rename(f, {}), f);  // short mapping = identity
}

TEST(BddRename, RejectsOrderViolatingMaps) {
  BddManager mgr;
  const Bdd f = mgr.var(0) & mgr.var(1);
  // Swapping 0 and 1 is not order-preserving on the support.
  std::vector<VarIndex> swap{1, 0};
  EXPECT_THROW((void)mgr.rename(f, swap), std::invalid_argument);
  // Collapsing two support variables onto one is rejected too.
  std::vector<VarIndex> collapse{2, 2};
  EXPECT_THROW((void)mgr.rename(f, collapse), std::invalid_argument);
}

TEST(BddRename, ConstantsAreUntouched) {
  BddManager mgr;
  EXPECT_EQ(mgr.rename(mgr.one(), {5, 6}), mgr.one());
  EXPECT_EQ(mgr.rename(mgr.zero(), {5, 6}), mgr.zero());
}

// ---------------------------------------------------------------------------
// quantification
// ---------------------------------------------------------------------------

class BddQuantProp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BddQuantProp, ExistsMatchesCofactorDisjunction) {
  BddManager mgr;
  Rng rng(GetParam());
  for (int iter = 0; iter < 10; ++iter) {
    const Bdd f = random_function(mgr, rng, 3);
    const unsigned v = static_cast<unsigned>(rng.below(kVars));
    EXPECT_EQ(mgr.exists(f, {v}), mgr.restrict_var(f, v, false) |
                                      mgr.restrict_var(f, v, true));
    EXPECT_EQ(mgr.forall(f, {v}), mgr.restrict_var(f, v, false) &
                                      mgr.restrict_var(f, v, true));
  }
}

TEST_P(BddQuantProp, MultiVariableQuantificationOrderIrrelevant) {
  BddManager mgr;
  Rng rng(GetParam() ^ 0x1111);
  for (int iter = 0; iter < 8; ++iter) {
    const Bdd f = random_function(mgr, rng, 3);
    const Bdd e1 = mgr.exists(f, {0, 2});
    const Bdd e2 = mgr.exists(mgr.exists(f, {2}), {0});
    EXPECT_EQ(e1, e2);
    const Bdd a1 = mgr.forall(f, {1, 3});
    const Bdd a2 = mgr.forall(mgr.forall(f, {3}), {1});
    EXPECT_EQ(a1, a2);
  }
}

TEST_P(BddQuantProp, DualityOfQuantifiers) {
  BddManager mgr;
  Rng rng(GetParam() ^ 0x2222);
  for (int iter = 0; iter < 8; ++iter) {
    const Bdd f = random_function(mgr, rng, 3);
    EXPECT_EQ(mgr.exists(f, {0, 1}), !mgr.forall(!f, {0, 1}));
  }
}

TEST_P(BddQuantProp, AndExistsEqualsComposedForm) {
  // The relational product must equal exists(vars, f & g) exactly.
  BddManager mgr;
  Rng rng(GetParam() ^ 0x3333);
  for (int iter = 0; iter < 10; ++iter) {
    const Bdd f = random_function(mgr, rng, 3);
    const Bdd g = random_function(mgr, rng, 3);
    std::vector<VarIndex> vars;
    for (unsigned v = 0; v < kVars; ++v) {
      if (rng.flip()) vars.push_back(v);
    }
    EXPECT_EQ(mgr.and_exists(f, g, vars), mgr.exists(f & g, vars));
  }
}

TEST_P(BddQuantProp, AndExistsTerminalCases) {
  BddManager mgr;
  Rng rng(GetParam() ^ 0x4444);
  const Bdd f = random_function(mgr, rng, 3);
  const std::vector<VarIndex> vars{0, 1, 2, 3, 4, 5};
  EXPECT_TRUE(mgr.and_exists(f, mgr.zero(), vars).is_zero());
  EXPECT_EQ(mgr.and_exists(f, mgr.one(), vars), mgr.exists(f, vars));
  EXPECT_EQ(mgr.and_exists(mgr.one(), f, vars), mgr.exists(f, vars));
  // Quantifying nothing is plain conjunction.
  const Bdd g = random_function(mgr, rng, 3);
  EXPECT_EQ(mgr.and_exists(f, g, {}), f & g);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddQuantProp,
                         ::testing::Values(41, 42, 43, 44));

// ---------------------------------------------------------------------------
// transfer (cross-manager / order-changing rebuild)
// ---------------------------------------------------------------------------

TEST(BddTransfer, IdentityMappingPreservesFunction) {
  BddManager src, dst;
  Rng rng(81);
  for (int iter = 0; iter < 8; ++iter) {
    const Bdd f = random_function(src, rng, 3);
    const Bdd g = BddManager::transfer(f, dst, {});
    for (unsigned a = 0; a < (1u << kVars); ++a) {
      EXPECT_EQ(g.eval(assignment_of(a)), f.eval(assignment_of(a)));
    }
  }
}

TEST(BddTransfer, OrderReversingMapWorks) {
  // rename() rejects order-reversing maps; transfer handles them.
  BddManager src, dst;
  Rng rng(83);
  const std::vector<VarIndex> reverse{5, 4, 3, 2, 1, 0};
  for (int iter = 0; iter < 8; ++iter) {
    const Bdd f = random_function(src, rng, 3);
    const Bdd g = BddManager::transfer(f, dst, reverse);
    for (unsigned a = 0; a < (1u << kVars); ++a) {
      std::vector<bool> permuted(kVars);
      for (unsigned v = 0; v < kVars; ++v) {
        permuted[reverse[v]] = bit(a, v);
      }
      EXPECT_EQ(g.eval(permuted), f.eval(assignment_of(a)));
    }
  }
}

TEST(BddTransfer, SameManagerGeneralRename) {
  BddManager mgr;
  const Bdd f = mgr.var(0) & !mgr.var(1);
  const Bdd g = BddManager::transfer(f, mgr, {1, 0});  // swap 0 <-> 1
  EXPECT_EQ(g, mgr.var(1) & !mgr.var(0));
}

TEST(BddTransfer, CollapsingMapIsFunctionComposition) {
  // Mapping two variables onto one computes f with both identified.
  BddManager src, dst;
  const Bdd f = src.var(0) ^ src.var(1);
  const Bdd g = BddManager::transfer(f, dst, {2, 2});
  EXPECT_TRUE(g.is_zero());  // x ^ x == 0
}

TEST(BddTransfer, NullSourceRejected) {
  BddManager dst;
  Bdd null_handle;
  EXPECT_THROW((void)BddManager::transfer(null_handle, dst, {}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// constrain (generalized cofactor)
// ---------------------------------------------------------------------------

class BddConstrainProp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BddConstrainProp, AgreesWithFOnTheCareSet) {
  // The defining property: constrain(f, c) & c == f & c.
  BddManager mgr;
  Rng rng(GetParam() ^ 0x6666);
  for (int iter = 0; iter < 12; ++iter) {
    const Bdd f = random_function(mgr, rng, 3);
    Bdd c = random_function(mgr, rng, 3);
    if (c.is_zero()) c = mgr.one();
    const Bdd g = mgr.constrain(f, c);
    EXPECT_EQ(g & c, f & c);
  }
}

TEST_P(BddConstrainProp, IdentityAndAbsorption) {
  BddManager mgr;
  Rng rng(GetParam() ^ 0x7777);
  for (int iter = 0; iter < 8; ++iter) {
    const Bdd f = random_function(mgr, rng, 3);
    EXPECT_EQ(mgr.constrain(f, mgr.one()), f);
    if (!f.is_zero()) {
      EXPECT_TRUE(mgr.constrain(f, f).is_one());
    }
    EXPECT_TRUE(mgr.constrain(mgr.one(), f.is_zero() ? mgr.one() : f)
                    .is_one());
  }
}

TEST(BddConstrain, RejectsEmptyCareSet) {
  BddManager mgr;
  const Bdd f = mgr.var(0);
  EXPECT_THROW((void)mgr.constrain(f, mgr.zero()), std::invalid_argument);
}

TEST(BddConstrain, ProjectsForcedVariables) {
  // c = x0 forces x0 = 1: constrain(f, x0) is the positive cofactor.
  BddManager mgr;
  const Bdd x0 = mgr.var(0), x1 = mgr.var(1);
  const Bdd f = x0 ^ x1;
  EXPECT_EQ(mgr.constrain(f, x0), !x1);
  EXPECT_EQ(mgr.constrain(f, !x0), x1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddConstrainProp,
                         ::testing::Values(71, 72, 73, 74, 75));

// ---------------------------------------------------------------------------
// analysis: support, sat_count, pick_one
// ---------------------------------------------------------------------------

TEST(BddAnalysis, SupportListsDependencies) {
  BddManager mgr;
  const Bdd f = (mgr.var(1) & mgr.var(4)) | mgr.var(2);
  EXPECT_EQ(mgr.support(f), (std::vector<VarIndex>{1, 2, 4}));
  EXPECT_TRUE(mgr.support(mgr.one()).empty());
  // x & !x vanishes: support must be empty.
  const Bdd gone = mgr.var(0) & !mgr.var(0);
  EXPECT_TRUE(mgr.support(gone).empty());
}

TEST(BddAnalysis, SatCountMatchesEnumeration) {
  BddManager mgr;
  Rng rng(51);
  mgr.ensure_vars(kVars);
  for (int iter = 0; iter < 10; ++iter) {
    const Bdd f = random_function(mgr, rng, 3);
    std::size_t expected = 0;
    for (unsigned a = 0; a < (1u << kVars); ++a) {
      expected += f.eval(assignment_of(a));
    }
    EXPECT_DOUBLE_EQ(mgr.sat_count(f, kVars),
                     static_cast<double>(expected));
  }
}

TEST(BddAnalysis, SatCountOfConstants) {
  BddManager mgr;
  mgr.ensure_vars(4);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.zero(), 4), 0.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.one(), 4), 16.0);
}

TEST(BddAnalysis, PickOneReturnsWitness) {
  BddManager mgr;
  Rng rng(61);
  for (int iter = 0; iter < 10; ++iter) {
    const Bdd f = random_function(mgr, rng, 3);
    const auto witness = mgr.pick_one(f);
    if (f.is_zero()) {
      EXPECT_FALSE(witness.has_value());
      continue;
    }
    ASSERT_TRUE(witness.has_value());
    std::vector<bool> asg(mgr.var_count(), false);
    for (std::size_t v = 0; v < witness->size(); ++v) {
      if ((*witness)[v] == 1) asg[v] = true;
    }
    EXPECT_TRUE(f.eval(asg));
  }
}

TEST(BddAnalysis, PickOneOfZeroIsEmpty) {
  BddManager mgr;
  EXPECT_FALSE(mgr.pick_one(mgr.zero()).has_value());
  EXPECT_TRUE(mgr.pick_one(mgr.one()).has_value());
}

}  // namespace
}  // namespace motsim::bdd
