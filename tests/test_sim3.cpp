// Three-valued simulation: abstraction soundness against the concrete
// two-valued simulator, and fault-simulation soundness against the
// SOT detectability definition (Definition 2).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>

#include "bench_data/s27.h"
#include "faults/collapse.h"
#include "reference.h"
#include "sim3/bitpar_sim3.h"
#include "sim3/fault_sim3.h"
#include "sim3/fault_simulator.h"
#include "sim3/good_sim3.h"
#include "sim3/sim2.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace motsim {
namespace {

using testing::all_responses;
using testing::ref_sot_detectable;
using testing::small_random_circuit;

// ---------------------------------------------------------------------------
// GoodSim3 directed behaviour
// ---------------------------------------------------------------------------

TEST(GoodSim3, StartsAllX) {
  const Netlist nl = make_s27();
  GoodSim3 sim(nl);
  for (Val3 v : sim.state()) EXPECT_EQ(v, Val3::X);
}

TEST(GoodSim3, InputWidthIsChecked) {
  const Netlist nl = make_s27();
  GoodSim3 sim(nl);
  EXPECT_THROW((void)sim.step({Val3::One}), std::invalid_argument);
  EXPECT_THROW(sim.set_state({Val3::X}), std::invalid_argument);
}

TEST(GoodSim3, BinaryStateBehavesConcretely) {
  // With a fully specified state the three-valued simulator must match
  // the two-valued one exactly.
  const Netlist nl = make_s27();
  Rng rng(3);
  const TestSequence seq = random_sequence(nl, 20, rng);
  const auto seq2 = to_bool_sequence(seq);

  GoodSim3 sim3(nl);
  sim3.set_state({Val3::Zero, Val3::One, Val3::Zero});
  Sim2 sim2(nl);
  sim2.set_state({false, true, false});

  for (std::size_t t = 0; t < seq.size(); ++t) {
    const auto out3 = sim3.step(seq[t]);
    const auto out2 = sim2.step(seq2[t]);
    ASSERT_EQ(out3.size(), out2.size());
    for (std::size_t i = 0; i < out3.size(); ++i) {
      EXPECT_EQ(out3[i], to_val3(out2[i])) << "t=" << t << " o=" << i;
    }
  }
}

class Sim3Refinement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Sim3Refinement, XStateAbstractsEveryConcreteRun) {
  // The all-X three-valued run must abstract the concrete run from
  // EVERY initial state: wherever sim3 says 0/1, sim2 agrees.
  const Netlist nl = small_random_circuit(GetParam());
  Rng rng(GetParam() * 17 + 1);
  const TestSequence seq = random_sequence(nl, 8, rng);
  const auto seq2 = to_bool_sequence(seq);
  const std::size_t m = nl.dff_count();

  // Reference runs for all initial states.
  for (std::size_t s = 0; s < (std::size_t{1} << m); ++s) {
    std::vector<bool> init(m);
    for (std::size_t i = 0; i < m; ++i) init[i] = ((s >> i) & 1) != 0;

    GoodSim3 sim3(nl);
    Sim2 sim2(nl);
    sim2.set_state(init);
    for (std::size_t t = 0; t < seq.size(); ++t) {
      sim3.step(seq[t]);
      sim2.step(seq2[t]);
      for (NodeIndex n = 0; n < nl.node_count(); ++n) {
        EXPECT_TRUE(refines(to_val3(sim2.values()[n]), sim3.values()[n]))
            << "node " << nl.gate(n).name << " frame " << t << " state "
            << s;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Sim3Refinement,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ---------------------------------------------------------------------------
// FaultSim3: directed cases
// ---------------------------------------------------------------------------

TEST(FaultSim3, DetectsObviousOutputFault) {
  // o = NOT(a): a-sa0 forces o to 1; applying a=1 yields good 0 vs
  // faulty 1 at a primary output.
  Netlist nl("inv");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex q = nl.add_dff(a, "q");  // keep it sequential
  (void)q;
  const NodeIndex o = nl.add_gate(GateType::Not, {a}, "o");
  nl.mark_output(o);
  nl.finalize();

  const std::vector<Fault> faults{Fault{FaultSite{a, kStemPin}, false}};
  FaultSim3 sim(nl, faults);
  const auto result = sim.run(sequence_from_strings({"1"}));
  EXPECT_EQ(result.detected_count, 1u);
  EXPECT_EQ(result.status[0], FaultStatus::DetectedSim3);
  EXPECT_EQ(result.detect_frame[0], 1u);
}

TEST(FaultSim3, FaultMaskedByXStateIsNotDetected) {
  // o = AND(a, q) with q unknown: a-sa0 gives good X vs faulty 0 — not
  // a three-valued detection.
  Netlist nl("mask");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex q = nl.add_dff(kNoNode, "q");
  const NodeIndex o = nl.add_gate(GateType::And, {a, q}, "o");
  nl.set_fanins(q, {q});  // state holds itself: stays X forever
  nl.mark_output(o);
  nl.finalize();

  const std::vector<Fault> faults{Fault{FaultSite{a, kStemPin}, false}};
  FaultSim3 sim(nl, faults);
  const auto result = sim.run(sequence_from_strings({"1", "1", "1"}));
  EXPECT_EQ(result.detected_count, 0u);
}

TEST(FaultSim3, DetectionThroughStateNeedsTwoFrames) {
  // q latches a; o = NOT(q). A fault on a shows up one frame later.
  Netlist nl("lat");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex q = nl.add_dff(a, "q");
  const NodeIndex o = nl.add_gate(GateType::Not, {q}, "o");
  nl.mark_output(o);
  nl.finalize();

  const std::vector<Fault> faults{Fault{FaultSite{a, kStemPin}, false}};
  FaultSim3 sim(nl, faults);
  const auto result = sim.run(sequence_from_strings({"1", "0"}));
  EXPECT_EQ(result.detected_count, 1u);
  EXPECT_EQ(result.detect_frame[0], 2u);
}

TEST(FaultSim3, InitialStatusSkipsFaults) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  FaultSim3 sim(nl, c.faults());
  std::vector<FaultStatus> init(c.size(), FaultStatus::XRedundant);
  sim.set_initial_status(init);
  Rng rng(5);
  const auto result = sim.run(random_sequence(nl, 10, rng));
  EXPECT_EQ(result.simulated_faults, 0u);
  EXPECT_EQ(result.detected_count, 0u);
  for (FaultStatus s : result.status) EXPECT_EQ(s, FaultStatus::XRedundant);
}

TEST(FaultSim3, BranchFaultIsDistinguishedFromStem) {
  // a fans out to two NOT gates; a branch fault affects one output,
  // the stem fault both.
  Netlist nl("branch");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex d = nl.add_dff(a, "d");  // sequential for form
  (void)d;
  const NodeIndex o1 = nl.add_gate(GateType::Not, {a}, "o1");
  const NodeIndex o2 = nl.add_gate(GateType::Not, {a}, "o2");
  nl.mark_output(o1);
  nl.mark_output(o2);
  nl.finalize();

  const std::vector<Fault> faults{
      Fault{FaultSite{o1, 0}, false},       // branch into o1
      Fault{FaultSite{a, kStemPin}, false}  // stem
  };
  FaultSim3 sim(nl, faults);
  const auto result = sim.run(sequence_from_strings({"1"}));
  EXPECT_EQ(result.detected_count, 2u);
}

// ---------------------------------------------------------------------------
// FaultSim3: property — soundness & exactness vs Definition 2
// ---------------------------------------------------------------------------

class FaultSim3Props : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultSim3Props, DetectionImpliesSotDetectability) {
  // Three-valued detection is sound: every detected fault is SOT
  // detectable per Definition 2 (checked by exhaustive enumeration).
  const Netlist nl = small_random_circuit(GetParam());
  if (nl.dff_count() > 5) GTEST_SKIP();
  Rng rng(GetParam() * 31 + 7);
  const TestSequence seq = random_sequence(nl, 6, rng);

  const CollapsedFaultList c(nl);
  FaultSim3 sim(nl, c.faults());
  const auto result = sim.run(seq);

  for (std::size_t i = 0; i < c.size(); ++i) {
    if (result.status[i] == FaultStatus::DetectedSim3) {
      EXPECT_TRUE(ref_sot_detectable(nl, c.faults()[i], seq))
          << fault_name(nl, c.faults()[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSim3Props,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18,
                                           19, 20, 21, 22));

// ---------------------------------------------------------------------------
// Partially specified (X-carrying) test vectors — the HOPE-style
// sequences the paper's Table III sources could contain. Three-valued
// simulation handles them natively; a detection under X inputs must
// hold for EVERY completion of the X bits.
// ---------------------------------------------------------------------------

class XInputProps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XInputProps, DetectionSoundForEveryCompletion) {
  const Netlist nl = small_random_circuit(GetParam());
  if (nl.dff_count() > 4 || nl.input_count() > 4) GTEST_SKIP();
  Rng rng(GetParam() * 77 + 5);

  // Random sequence with ~25% X bits.
  TestSequence seq = random_sequence(nl, 5, rng);
  std::vector<std::pair<std::size_t, std::size_t>> x_positions;
  for (std::size_t t = 0; t < seq.size(); ++t) {
    for (std::size_t j = 0; j < seq[t].size(); ++j) {
      if (rng.chance(0.25)) {
        seq[t][j] = Val3::X;
        x_positions.emplace_back(t, j);
      }
    }
  }
  if (x_positions.size() > 8) GTEST_SKIP();  // keep enumeration cheap

  const CollapsedFaultList c(nl);
  FaultSim3 sim(nl, c.faults());
  const auto result = sim.run(seq);

  // Enumerate every completion of the X bits; each detected fault must
  // be SOT-detectable under each completion.
  for (std::size_t bits = 0; bits < (std::size_t{1} << x_positions.size());
       ++bits) {
    TestSequence completed = seq;
    for (std::size_t k = 0; k < x_positions.size(); ++k) {
      completed[x_positions[k].first][x_positions[k].second] =
          to_val3(((bits >> k) & 1) != 0);
    }
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (result.status[i] == FaultStatus::DetectedSim3) {
        EXPECT_TRUE(testing::ref_sot_detectable(nl, c.faults()[i],
                                                completed))
            << fault_name(nl, c.faults()[i]) << " completion " << bits;
      }
    }
  }
}

TEST_P(XInputProps, SerialAndParallelAgreeOnXVectors) {
  const Netlist nl = small_random_circuit(GetParam() + 50);
  Rng rng(GetParam() * 91 + 7);
  TestSequence seq = random_sequence(nl, 10, rng);
  for (auto& frame : seq) {
    for (Val3& v : frame) {
      if (rng.chance(0.3)) v = Val3::X;
    }
  }
  const CollapsedFaultList c(nl);
  FaultSim3 serial(nl, c.faults());
  BitParFaultSim3 parallel(nl, c.faults());
  const auto rs = serial.run(seq);
  const auto rp = parallel.run(seq);
  EXPECT_EQ(rs.status, rp.status);
  EXPECT_EQ(rs.detect_frame, rp.detect_frame);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XInputProps,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Cross-backend bit-identity property: for every backend, every batch
// width (fault lists smaller than, equal to and larger than one
// 64-slot word) and every thread count, run() must return the same
// detected set, statuses and detection frames.
// ---------------------------------------------------------------------------

class CrossBackend : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossBackend, RunIsBitIdenticalForEveryBackendAndWidth) {
  const Netlist nl = small_random_circuit(GetParam() + 200);
  Rng rng(GetParam() * 131 + 29);
  const TestSequence seq = random_sequence(nl, 12, rng);
  const CollapsedFaultList c(nl);

  // Batch widths: a partial word, exactly one word (repeat faults if
  // the circuit yields fewer), and several words.
  std::vector<std::vector<Fault>> lists;
  lists.push_back(std::vector<Fault>(
      c.faults().begin(),
      c.faults().begin() +
          static_cast<std::ptrdiff_t>(std::min<std::size_t>(17, c.size()))));
  std::vector<Fault> exactly64;
  while (exactly64.size() < 64) {
    for (const Fault& f : c.faults()) {
      if (exactly64.size() == 64) break;
      exactly64.push_back(f);
    }
  }
  lists.push_back(std::move(exactly64));
  std::vector<Fault> many;
  while (many.size() < 150) {
    for (const Fault& f : c.faults()) {
      if (many.size() == 150) break;
      many.push_back(f);
    }
  }
  lists.push_back(std::move(many));

  for (const auto& faults : lists) {
    FaultSim3 reference(nl, faults);
    const auto expected = reference.run(seq);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
      BitParFaultSim3 sim(nl, faults, threads);
      const auto got = sim.run(seq);
      EXPECT_EQ(expected.status, got.status)
          << "faults=" << faults.size() << " threads=" << threads;
      EXPECT_EQ(expected.detect_frame, got.detect_frame)
          << "faults=" << faults.size() << " threads=" << threads;
      EXPECT_EQ(expected.detected_count, got.detected_count);
      EXPECT_EQ(expected.simulated_faults, got.simulated_faults);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossBackend,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ---------------------------------------------------------------------------
// X-handling edge cases, per backend
// ---------------------------------------------------------------------------

class BothBackends : public ::testing::TestWithParam<Sim3Backend> {};

TEST_P(BothBackends, XAtOutputNeverDetects) {
  // o = XOR(a, q) with q stuck at X: the fault-free output is X in
  // every frame, so no fault can be three-valued detected — the good
  // value is never binary.
  Netlist nl("xpo");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex q = nl.add_dff(kNoNode, "q");
  const NodeIndex o = nl.add_gate(GateType::Xor, {a, q}, "o");
  nl.set_fanins(q, {q});  // holds itself: stays X forever
  nl.mark_output(o);
  nl.finalize();

  const std::vector<Fault> faults{Fault{FaultSite{a, kStemPin}, false},
                                  Fault{FaultSite{a, kStemPin}, true}};
  const auto sim = make_fault_simulator3(GetParam(), nl, faults);
  const auto r = sim->run(sequence_from_strings({"1", "0", "1"}));
  EXPECT_EQ(r.detected_count, 0u) << to_cstring(GetParam());
}

TEST_P(BothBackends, XMaskedFaultEffectIsNotADetection) {
  // o = AND(a, q) with q unknown: a-sa0 yields good X vs faulty 0 at
  // the output — a difference, but not an SOT detection.
  Netlist nl("xmask");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex q = nl.add_dff(kNoNode, "q");
  const NodeIndex o = nl.add_gate(GateType::And, {a, q}, "o");
  nl.set_fanins(q, {q});
  nl.mark_output(o);
  nl.finalize();

  const std::vector<Fault> faults{Fault{FaultSite{a, kStemPin}, false}};
  const auto sim = make_fault_simulator3(GetParam(), nl, faults);
  const auto r = sim->run(sequence_from_strings({"1", "1", "1"}));
  EXPECT_EQ(r.detected_count, 0u) << to_cstring(GetParam());
}

TEST_P(BothBackends, BinaryDisagreementAtOutputDetects) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  Rng rng(41);
  const auto sim = make_fault_simulator3(GetParam(), nl, c.faults());
  const auto r = sim->run(random_sequence(nl, 40, rng));
  EXPECT_GT(r.detected_count, 0u) << to_cstring(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Backends, BothBackends,
                         ::testing::Values(Sim3Backend::Event,
                                           Sim3Backend::BitPar));

// ---------------------------------------------------------------------------
// Sim2 reference simulator
// ---------------------------------------------------------------------------

TEST(Sim2, FaultFreeAndStemFaultDiffer) {
  Netlist nl("s2");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex q = nl.add_dff(a, "q");
  const NodeIndex o = nl.add_gate(GateType::Not, {q}, "o");
  nl.mark_output(o);
  nl.finalize();

  Sim2 good(nl);
  Sim2 bad(nl, Fault{FaultSite{q, kStemPin}, true});
  const auto gr = good.run({false}, {{true}, {true}});
  const auto br = bad.run({false}, {{true}, {true}});
  // Good: q=0 then 1 -> o = 1 then 0. Faulty q stuck 1 -> o = 0, 0.
  EXPECT_EQ(gr[0][0], true);
  EXPECT_EQ(gr[1][0], false);
  EXPECT_EQ(br[0][0], false);
  EXPECT_EQ(br[1][0], false);
}

TEST(Sim2, DffBranchFaultPinsNextState) {
  Netlist nl("s2d");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex q = nl.add_dff(a, "q");
  const NodeIndex o = nl.add_gate(GateType::Buf, {q}, "o");
  nl.mark_output(o);
  nl.finalize();

  Sim2 bad(nl, Fault{FaultSite{q, 0}, true});  // D-pin stuck-at-1
  const auto r = bad.run({false}, {{false}, {false}});
  EXPECT_EQ(r[0][0], false);  // initial state still visible
  EXPECT_EQ(r[1][0], true);   // every latched value is 1
}

TEST(Sim2, ToBoolSequenceRejectsX) {
  EXPECT_THROW((void)to_bool_sequence(sequence_from_strings({"1X"})),
               std::invalid_argument);
}

}  // namespace
}  // namespace motsim
