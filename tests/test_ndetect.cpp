// N-detect three-valued fault simulation (sim3/ndetect.h).

#include <gtest/gtest.h>

#include "bench_data/registry.h"
#include "bench_data/s27.h"
#include "faults/collapse.h"
#include "sim3/fault_sim3.h"
#include "sim3/ndetect.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace motsim {
namespace {

TEST(NDetect, NEqualsOneMatchesFaultSim3) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  Rng rng(3);
  const TestSequence seq = random_sequence(nl, 40, rng);

  FaultSim3 classic(nl, c.faults());
  const auto r1 = classic.run(seq);
  const NDetectResult rn = run_n_detect(nl, c.faults(), seq, 1);

  EXPECT_EQ(rn.detected_once_count, r1.detected_count);
  EXPECT_EQ(rn.n_detected_count, r1.detected_count);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(rn.detections[i] > 0,
              r1.status[i] == FaultStatus::DetectedSim3);
    if (r1.status[i] == FaultStatus::DetectedSim3) {
      ASSERT_FALSE(rn.detection_frames[i].empty());
      EXPECT_EQ(rn.detection_frames[i][0], r1.detect_frame[i]);
    }
  }
}

TEST(NDetect, CountsAreMonotoneInN) {
  const Netlist nl = make_benchmark("s298");
  const CollapsedFaultList c(nl);
  Rng rng(7);
  const TestSequence seq = random_sequence(nl, 60, rng);

  const NDetectResult r1 = run_n_detect(nl, c.faults(), seq, 1);
  const NDetectResult r3 = run_n_detect(nl, c.faults(), seq, 3);
  const NDetectResult r8 = run_n_detect(nl, c.faults(), seq, 8);

  // Single-detection coverage is N-independent.
  EXPECT_EQ(r1.detected_once_count, r3.detected_once_count);
  EXPECT_EQ(r3.detected_once_count, r8.detected_once_count);
  // Full-N coverage can only shrink as N grows.
  EXPECT_GE(r1.n_detected_count, r3.n_detected_count);
  EXPECT_GE(r3.n_detected_count, r8.n_detected_count);
  // On a synchronizable circuit with 60 vectors, many faults are
  // detected repeatedly.
  EXPECT_GT(r3.n_detected_count, 0u);
}

TEST(NDetect, DetectionFramesAreStrictlyIncreasingAndCapped) {
  const Netlist nl = make_benchmark("s344");
  const CollapsedFaultList c(nl);
  Rng rng(9);
  const TestSequence seq = random_sequence(nl, 50, rng);
  const std::uint32_t n = 4;
  const NDetectResult r = run_n_detect(nl, c.faults(), seq, n);

  for (std::size_t i = 0; i < c.size(); ++i) {
    const auto& frames = r.detection_frames[i];
    EXPECT_LE(frames.size(), n);
    EXPECT_EQ(frames.size(), r.detections[i]);
    for (std::size_t k = 1; k < frames.size(); ++k) {
      EXPECT_LT(frames[k - 1], frames[k]);
    }
  }
}

TEST(NDetect, LongerSequencesOnlyAddDetections) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  Rng rng(11);
  const TestSequence seq = random_sequence(nl, 60, rng);
  const TestSequence prefix(seq.begin(), seq.begin() + 30);

  const NDetectResult rshort = run_n_detect(nl, c.faults(), prefix, 1000);
  const NDetectResult rlong = run_n_detect(nl, c.faults(), seq, 1000);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_GE(rlong.detections[i], rshort.detections[i]);
    // The prefix detections are literally a prefix of the long run's.
    for (std::size_t k = 0; k < rshort.detection_frames[i].size(); ++k) {
      EXPECT_EQ(rlong.detection_frames[i][k],
                rshort.detection_frames[i][k]);
    }
  }
}

TEST(NDetect, RejectsZeroN) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  EXPECT_THROW((void)run_n_detect(nl, c.faults(), {}, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace motsim
