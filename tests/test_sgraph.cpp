// S-graph static analysis (analysis/sgraph, docs/ANALYSIS.md pass 6):
// SCC condensation of the flip-flop dependency graph, the
// synchronization-depth bounds it yields, and the property the
// MOT/rMOT -> SOT downgrade stands on — sgraph-enabled runs are
// BIT-IDENTICAL to plain runs for every engine and strategy, and the
// depths themselves are sound against the symbolic true-value
// machine.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/sgraph.h"
#include "analysis/testability.h"
#include "bdd/bdd.h"
#include "bench_data/registry.h"
#include "bench_data/synth_gen.h"
#include "circuit/bench_io.h"
#include "circuit/stats.h"
#include "circuit/validate.h"
#include "core/hybrid_sim.h"
#include "core/parallel_sym_sim.h"
#include "core/sym_fault_sim.h"
#include "core/sym_true_value.h"
#include "faults/collapse.h"
#include "faults/fault_list.h"
#include "reference.h"
#include "store/fingerprint.h"
#include "store/run_store.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace motsim {
namespace {

using testing::small_random_circuit;

/// Position of a flip-flop node in the netlist's dff order (the
/// s-graph vertex index).
std::uint32_t dff_position(const Netlist& nl, NodeIndex node) {
  const auto& dffs = nl.dffs();
  const auto it = std::find(dffs.begin(), dffs.end(), node);
  EXPECT_NE(it, dffs.end());
  return static_cast<std::uint32_t>(it - dffs.begin());
}

// ---------------------------------------------------------------------------
// Structure: SCCs, taint, depths
// ---------------------------------------------------------------------------

TEST(SgraphStructure, SelfLoopDffIsANontrivialScc) {
  // q's next state reads q itself: a one-vertex SCC with a self-loop
  // must count as nontrivial, so q never synchronizes.
  Netlist nl("selfloop");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex q = nl.add_dff(kNoNode, "q");
  const NodeIndex d = nl.add_gate(GateType::Nor, {a, q}, "d");
  nl.set_fanins(q, {d});
  const NodeIndex o = nl.add_gate(GateType::Or, {q, a}, "o");
  nl.mark_output(o);
  nl.finalize();

  const SgraphInfo info = build_sgraph(nl);
  ASSERT_EQ(info.ff_count(), 1u);
  EXPECT_EQ(info.scc_count, 1u);
  EXPECT_EQ(info.nontrivial_scc_count, 1u);
  EXPECT_EQ(info.acyclic_ffs, 0u);
  EXPECT_TRUE(info.in_nontrivial_scc[0]);
  EXPECT_TRUE(info.tainted[0]);
  EXPECT_EQ(info.init_depth[0], kInfDepth);
  EXPECT_EQ(info.preds[0], std::vector<std::uint32_t>{0});
  // The output reads q, so its horizon is unbounded.
  ASSERT_EQ(info.output_horizon.size(), 1u);
  EXPECT_EQ(info.output_horizon[0], kInfDepth);
}

TEST(SgraphStructure, MutuallyFedPairFormsOneScc) {
  Netlist nl("pair");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex b = nl.add_input("b");
  const NodeIndex q1 = nl.add_dff(kNoNode, "q1");
  const NodeIndex q2 = nl.add_dff(kNoNode, "q2");
  nl.set_fanins(q1, {nl.add_gate(GateType::Nor, {a, q2}, "d1")});
  nl.set_fanins(q2, {nl.add_gate(GateType::Nand, {b, q1}, "d2")});
  const NodeIndex o = nl.add_gate(GateType::Xor, {q1, q2}, "o");
  nl.mark_output(o);
  nl.finalize();

  const SgraphInfo info = build_sgraph(nl);
  ASSERT_EQ(info.ff_count(), 2u);
  const std::uint32_t p1 = dff_position(nl, q1);
  const std::uint32_t p2 = dff_position(nl, q2);
  EXPECT_EQ(info.scc_id[p1], info.scc_id[p2]);  // merged into one SCC
  EXPECT_EQ(info.scc_count, 1u);
  EXPECT_EQ(info.nontrivial_scc_count, 1u);
  EXPECT_TRUE(info.in_nontrivial_scc[p1]);
  EXPECT_TRUE(info.in_nontrivial_scc[p2]);
  EXPECT_EQ(info.init_depth[p1], kInfDepth);
  EXPECT_EQ(info.init_depth[p2], kInfDepth);
  // Neither FF self-loops, the cycle runs through the partner.
  EXPECT_EQ(info.preds[p1], std::vector<std::uint32_t>{p2});
  EXPECT_EQ(info.preds[p2], std::vector<std::uint32_t>{p1});
  // Breaking the two-cycle needs exactly one scanned FF.
  EXPECT_EQ(greedy_feedback_set(info).size(), 1u);
}

/// Acyclic two-stage prefix feeding a mutually-fed pair, with one more
/// flip-flop downstream of the pair:
///   ff1 <- input only        (depth 1)
///   ff2 <- ff1               (depth 2)
///   {ff3, ff4} mutual cycle, seeded by ff2   (nontrivial SCC)
///   ff5 <- ff3               (downstream of the SCC: tainted)
Netlist chain_into_scc_circuit() {
  Netlist nl("chainscc");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex f1 = nl.add_dff(nl.add_gate(GateType::Not, {a}, "d1"), "f1");
  const NodeIndex f2 = nl.add_dff(nl.add_gate(GateType::Buf, {f1}, "d2"), "f2");
  const NodeIndex f3 = nl.add_dff(kNoNode, "f3");
  const NodeIndex f4 = nl.add_dff(kNoNode, "f4");
  nl.set_fanins(f3, {nl.add_gate(GateType::Nor, {f2, f4}, "d3")});
  nl.set_fanins(f4, {nl.add_gate(GateType::Nand, {a, f3}, "d4")});
  const NodeIndex f5 = nl.add_dff(nl.add_gate(GateType::Buf, {f3}, "d5"), "f5");
  const NodeIndex o = nl.add_gate(GateType::Or, {f5, f2}, "o");
  nl.mark_output(o);
  nl.finalize();
  return nl;
}

TEST(SgraphStructure, CondensationOrderAndDepthChain) {
  const Netlist nl = chain_into_scc_circuit();
  const SgraphInfo info = build_sgraph(nl);
  ASSERT_EQ(info.ff_count(), 5u);
  const std::uint32_t p1 = dff_position(nl, nl.find("f1"));
  const std::uint32_t p2 = dff_position(nl, nl.find("f2"));
  const std::uint32_t p3 = dff_position(nl, nl.find("f3"));
  const std::uint32_t p4 = dff_position(nl, nl.find("f4"));
  const std::uint32_t p5 = dff_position(nl, nl.find("f5"));

  // Depths: 1, 2 on the acyclic prefix; unbounded in and below the SCC.
  EXPECT_EQ(info.init_depth[p1], 1u);
  EXPECT_EQ(info.init_depth[p2], 2u);
  EXPECT_EQ(info.init_depth[p3], kInfDepth);
  EXPECT_EQ(info.init_depth[p4], kInfDepth);
  EXPECT_EQ(info.init_depth[p5], kInfDepth);
  EXPECT_EQ(info.max_finite_init_depth, 2u);
  EXPECT_EQ(info.acyclic_ffs, 2u);

  // f5 is tainted but NOT in a nontrivial SCC itself.
  EXPECT_FALSE(info.in_nontrivial_scc[p5]);
  EXPECT_TRUE(info.tainted[p5]);

  // 4 SCCs: {f1}, {f2}, {f3,f4}, {f5}; one nontrivial.
  EXPECT_EQ(info.scc_count, 4u);
  EXPECT_EQ(info.nontrivial_scc_count, 1u);
  EXPECT_EQ(info.scc_id[p3], info.scc_id[p4]);

  // Condensation order: ids are a reverse topological order — every
  // cross-SCC edge u -> v (u in preds[v]) satisfies
  // scc_id[v] < scc_id[u].
  for (std::uint32_t v = 0; v < info.ff_count(); ++v) {
    for (const std::uint32_t u : info.preds[v]) {
      if (info.scc_id[u] == info.scc_id[v]) continue;
      EXPECT_LT(info.scc_id[v], info.scc_id[u])
          << "edge " << u << " -> " << v << " violates completion order";
    }
  }
}

TEST(SgraphStructure, S27IsEntirelyCyclic) {
  // s27's three flip-flops split into two nontrivial SCCs ({G5,G6}
  // and the G7 self-loop): nothing synchronizes, every fault horizon
  // is unbounded — the workload where the downgrade must never fire.
  const Netlist nl = make_benchmark("s27");
  const SgraphInfo info = build_sgraph(nl);
  EXPECT_EQ(info.ff_count(), 3u);
  EXPECT_EQ(info.scc_count, 2u);
  EXPECT_EQ(info.nontrivial_scc_count, 2u);
  EXPECT_EQ(info.acyclic_ffs, 0u);

  const CollapsedFaultList c(nl);
  const SgraphPlan plan = build_sgraph_plan(nl, info, c.faults());
  ASSERT_EQ(plan.horizon.size(), c.size());
  EXPECT_EQ(plan.finite_horizon_count(), 0u);
  EXPECT_EQ(plan.nontrivial_sccs, 2u);
}

// ---------------------------------------------------------------------------
// bench_io regression: feedback netlists may reference signals defined
// later in the file (the parser must resolve forward references both
// through DFF D-pins and through plain gate fanins).
// ---------------------------------------------------------------------------

TEST(SgraphBenchIo, FeedbackReferencesSignalsDefinedLater) {
  const char* text =
      "INPUT(A)\n"
      "OUTPUT(O)\n"
      "Q1 = DFF(D1)\n"      // D1 defined 2 lines later
      "Q2 = DFF(D2)\n"      // D2 defined last
      "D1 = NOR(A, Q2)\n"
      "O = OR(Q1, Q2)\n"
      "D2 = NAND(Q1, A)\n";
  const Netlist nl = parse_bench_string(text, "fwd");
  EXPECT_TRUE(validate(nl).clean());
  ASSERT_EQ(nl.dff_count(), 2u);

  const SgraphInfo info = build_sgraph(nl);
  const std::uint32_t p1 = dff_position(nl, nl.find("Q1"));
  const std::uint32_t p2 = dff_position(nl, nl.find("Q2"));
  EXPECT_EQ(info.scc_id[p1], info.scc_id[p2]);
  EXPECT_EQ(info.nontrivial_scc_count, 1u);
  EXPECT_EQ(info.output_horizon[0], kInfDepth);
}

// ---------------------------------------------------------------------------
// Depth soundness against the symbolic true-value machine
// ---------------------------------------------------------------------------

class SgraphDepth : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SgraphDepth, SymbolicStateSettlesAtInitDepth) {
  // The semantic claim behind the downgrade: on an acyclic s-graph,
  // flip-flop i's value is a CONSTANT OBDD (independent of the
  // power-up variables) after init_depth[i] frames of binary inputs,
  // and output o's frame value is constant from frame
  // output_horizon[o] on.
  const SynthSpec spec{"depth", 4, 2, 6, 60, CircuitStyle::AcyclicPipeline,
                       GetParam()};
  const Netlist nl = generate_circuit(spec);
  const SgraphInfo info = build_sgraph(nl);
  ASSERT_EQ(info.acyclic_ffs, nl.dff_count()) << "profile must be acyclic";

  Rng rng(GetParam() * 11 + 2);
  const TestSequence seq =
      random_sequence(nl, info.max_finite_init_depth + 3, rng);

  bdd::BddManager mgr;
  const StateVars vars(nl.dff_count());
  SymTrueValueSim sym(nl, mgr, vars);
  sym.reset_symbolic();
  for (std::size_t t = 0; t < seq.size(); ++t) {
    const std::vector<bdd::Bdd> outs = sym.step(seq[t]);
    // Frame index t (0-based, seeded at frame 0): output o is
    // input-only once t >= horizon[o].
    for (std::size_t o = 0; o < outs.size(); ++o) {
      if (t >= info.output_horizon[o]) {
        EXPECT_TRUE(outs[o].is_zero() || outs[o].is_one())
            << "output " << o << " symbolic in frame " << t
            << " (horizon " << info.output_horizon[o] << ")";
      }
    }
    // After t+1 latches, FF i is constant once t+1 >= init_depth[i].
    for (std::size_t i = 0; i < nl.dff_count(); ++i) {
      if (t + 1 >= info.init_depth[i]) {
        EXPECT_TRUE(sym.state()[i].is_zero() || sym.state()[i].is_one())
            << "ff " << i << " symbolic after " << t + 1
            << " frames (depth " << info.init_depth[i] << ")";
      }
    }
  }
}

TEST_P(SgraphDepth, ScoapSeqDepthNeverBelowStructuralInitDepth) {
  // The acyclic profile routes its deepest chain through a dedicated
  // head gate observed only at the chain tail, so the SCOAP sequential
  // depth maximum must reach (and never undercut) the exact structural
  // bound: max seq_depth >= max finite init-depth.
  const SynthSpec spec{"scoap", 5, 3, 8, 80, CircuitStyle::AcyclicPipeline,
                       GetParam() * 17 + 3};
  const Netlist nl = generate_circuit(spec);

  CircuitStats stats = CircuitStats::of(nl);
  const SiteTable sites(nl);
  attach_testability(stats, nl, compute_testability(nl, sites));
  attach_sgraph(stats, nl, build_sgraph(nl));
  ASSERT_TRUE(stats.has_scoap);
  ASSERT_TRUE(stats.has_sgraph);
  EXPECT_EQ(stats.sgraph_acyclic_ffs, nl.dff_count());
  EXPECT_GT(stats.sgraph_max_init_depth, 0u);
  EXPECT_GE(stats.scoap_max_seq_depth, stats.sgraph_max_init_depth);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SgraphDepth,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------------------------------------------------------------------------
// Bit-identity: sgraph on vs off, every engine and strategy
// ---------------------------------------------------------------------------

void expect_same_result(const SymFaultSimResult& a, const SymFaultSimResult& b,
                        const Netlist& nl, const std::vector<Fault>& faults,
                        const char* what) {
  ASSERT_EQ(a.status.size(), b.status.size()) << what;
  EXPECT_EQ(a.detected_count, b.detected_count) << what;
  for (std::size_t i = 0; i < a.status.size(); ++i) {
    EXPECT_EQ(a.status[i], b.status[i])
        << what << " " << fault_name(nl, faults[i]);
    EXPECT_EQ(a.detect_frame[i], b.detect_frame[i])
        << what << " " << fault_name(nl, faults[i]);
  }
}

void expect_same_result(const HybridResult& a, const HybridResult& b,
                        const Netlist& nl, const std::vector<Fault>& faults,
                        const char* what) {
  ASSERT_EQ(a.status.size(), b.status.size()) << what;
  EXPECT_EQ(a.detected_count, b.detected_count) << what;
  for (std::size_t i = 0; i < a.status.size(); ++i) {
    EXPECT_EQ(a.status[i], b.status[i])
        << what << " " << fault_name(nl, faults[i]);
    EXPECT_EQ(a.detect_frame[i], b.detect_frame[i])
        << what << " " << fault_name(nl, faults[i]);
  }
}

class SgraphIdentity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SgraphIdentity, PureSymbolicMatchesPlain) {
  const Netlist nl = small_random_circuit(GetParam());
  Rng rng(GetParam() * 9 + 5);
  const TestSequence seq = random_sequence(nl, 8, rng);
  const CollapsedFaultList c(nl);

  for (Strategy s : {Strategy::Sot, Strategy::Rmot, Strategy::Mot}) {
    SymFaultSim plain(nl, c.faults(), s);
    const SymFaultSimResult rp = plain.run(seq);
    EXPECT_EQ(rp.mot_downgrades, 0u);

    SymFaultSim guided(nl, c.faults(), s);
    guided.set_sgraph(true);
    const SymFaultSimResult rg = guided.run(seq);
    expect_same_result(rp, rg, nl, c.faults(), to_cstring(s));
  }
}

TEST_P(SgraphIdentity, MultiStrategyMatchesPlain) {
  const Netlist nl = small_random_circuit(GetParam() + 60);
  Rng rng(GetParam() * 3 + 11);
  const TestSequence seq = random_sequence(nl, 6, rng);
  const CollapsedFaultList c(nl);

  const MultiStrategyResult plain =
      run_all_strategies(nl, c.faults(), seq, {}, VarLayout::Interleaved,
                         /*trim=*/false, /*sgraph=*/false);
  const MultiStrategyResult guided =
      run_all_strategies(nl, c.faults(), seq, {}, VarLayout::Interleaved,
                         /*trim=*/false, /*sgraph=*/true);
  expect_same_result(plain.sot, guided.sot, nl, c.faults(), "sot");
  expect_same_result(plain.rmot, guided.rmot, nl, c.faults(), "rmot");
  expect_same_result(plain.mot, guided.mot, nl, c.faults(), "mot");
}

HybridConfig ample(Strategy s, bool sgraph) {
  HybridConfig cfg;
  cfg.strategy = s;
  cfg.node_limit = 1u << 22;
  cfg.sgraph = sgraph;
  return cfg;
}

TEST_P(SgraphIdentity, HybridMatchesPlain) {
  const Netlist nl = small_random_circuit(GetParam() + 80);
  Rng rng(GetParam() * 7 + 13);
  const TestSequence seq = random_sequence(nl, 8, rng);
  const CollapsedFaultList c(nl);

  for (Strategy s : {Strategy::Sot, Strategy::Rmot, Strategy::Mot}) {
    HybridFaultSim plain(nl, c.faults(), ample(s, false));
    const HybridResult rp = plain.run(seq);
    EXPECT_EQ(rp.mot_downgrades, 0u);

    HybridFaultSim guided(nl, c.faults(), ample(s, true));
    const HybridResult rg = guided.run(seq);
    expect_same_result(rp, rg, nl, c.faults(), to_cstring(s));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SgraphIdentity,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(SgraphIdentityBench, AcyclicPipelineDowngradesEveryEngine) {
  // On a fully acyclic circuit every surviving rMOT/MOT fault must
  // downgrade once the deepest horizon passes — with verdicts and
  // frames identical to the plain run, serial and sharded alike.
  const SynthSpec spec{"apipe", 4, 2, 8, 70, CircuitStyle::AcyclicPipeline,
                       21};
  const Netlist nl = generate_circuit(spec);
  Rng rng(77);
  const TestSequence seq = random_sequence(nl, 24, rng);
  const CollapsedFaultList c(nl);

  for (Strategy s : {Strategy::Rmot, Strategy::Mot}) {
    HybridFaultSim plain(nl, c.faults(), ample(s, false));
    const HybridResult rp = plain.run(seq);

    HybridFaultSim guided(nl, c.faults(), ample(s, true));
    const HybridResult rg = guided.run(seq);
    expect_same_result(rp, rg, nl, c.faults(), to_cstring(s));
    EXPECT_GT(rg.mot_downgrades, 0u) << to_cstring(s);
    EXPECT_EQ(rp.mot_downgrades, 0u) << to_cstring(s);

    for (std::size_t threads : {2u, 4u}) {
      ParallelSymConfig pc;
      pc.hybrid = ample(s, true);
      pc.threads = threads;
      pc.chunk_size = 16;
      ParallelSymSim par(nl, c.faults(), pc);
      const HybridResult rr = par.run(seq);
      expect_same_result(rp, rr, nl, c.faults(), to_cstring(s));
      EXPECT_GT(rr.mot_downgrades, 0u)
          << to_cstring(s) << " threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Plan plumbing
// ---------------------------------------------------------------------------

TEST(SgraphPlumbing, MisalignedPlanIsRejected) {
  const Netlist nl = make_benchmark("s27");
  const CollapsedFaultList c(nl);
  SgraphPlan bad;
  bad.horizon.assign(c.size() + 1, 0);

  HybridFaultSim hybrid(nl, c.faults(), ample(Strategy::Mot, true));
  EXPECT_THROW(hybrid.set_sgraph_plan(bad), std::invalid_argument);

  ParallelSymConfig pc;
  pc.hybrid = ample(Strategy::Mot, true);
  pc.threads = 2;
  ParallelSymSim par(nl, c.faults(), pc);
  EXPECT_THROW(par.set_sgraph_plan(bad), std::invalid_argument);
}

TEST(SgraphPlumbing, SuppliedPlanMatchesSelfBuiltPlan) {
  const SynthSpec spec{"supplied", 4, 2, 6, 60,
                       CircuitStyle::AcyclicPipeline, 9};
  const Netlist nl = generate_circuit(spec);
  Rng rng(31);
  const TestSequence seq = random_sequence(nl, 16, rng);
  const CollapsedFaultList c(nl);
  const SgraphPlan plan = build_sgraph_plan(nl, c.faults());

  for (Strategy s : {Strategy::Rmot, Strategy::Mot}) {
    HybridFaultSim self_built(nl, c.faults(), ample(s, true));
    const HybridResult ra = self_built.run(seq);

    HybridFaultSim supplied(nl, c.faults(), ample(s, true));
    supplied.set_sgraph_plan(plan);
    const HybridResult rb = supplied.run(seq);
    expect_same_result(ra, rb, nl, c.faults(), to_cstring(s));
    EXPECT_EQ(ra.mot_downgrades, rb.mot_downgrades);
  }
}

// ---------------------------------------------------------------------------
// Store identity: sgraph is a pure performance knob
// ---------------------------------------------------------------------------

TEST(SgraphStore, FingerprintIgnoresSgraph) {
  SimOptions on;
  on.sgraph = true;
  SimOptions off = on;
  off.sgraph = false;
  EXPECT_EQ(fingerprint_options(on), fingerprint_options(off));
  EXPECT_FALSE(on == off);  // ...but the configurations DO differ
}

TEST(SgraphStore, ManifestRoundTripsSgraph) {
  StoreManifest m;
  m.circuit = "s27";
  m.sequence_length = 4;
  m.segment_lengths = {4};
  for (bool sgraph : {true, false}) {
    m.options.sgraph = sgraph;
    const std::string text = m.to_text();
    EXPECT_NE(text.find(sgraph ? "opt_sgraph 1" : "opt_sgraph 0"),
              std::string::npos);
    const auto parsed = StoreManifest::from_text(text);
    ASSERT_TRUE(parsed.has_value()) << parsed.error();
    EXPECT_EQ(parsed->options.sgraph, sgraph);
  }
}

TEST(SgraphStore, LegacyManifestWithoutSgraphLineResumesOff) {
  // Pre-sgraph manifests must load — and must come back with the pass
  // OFF, so the shard partition they checkpointed under is recomputed
  // exactly (no horizon reorder).
  StoreManifest m;
  m.circuit = "s27";
  m.sequence_length = 4;
  m.segment_lengths = {4};
  m.options.sgraph = true;
  std::string text = m.to_text();
  const std::string line = "opt_sgraph 1\n";
  const std::size_t at = text.find(line);
  ASSERT_NE(at, std::string::npos);
  text.erase(at, line.size());
  const auto parsed = StoreManifest::from_text(text);
  ASSERT_TRUE(parsed.has_value()) << parsed.error();
  EXPECT_FALSE(parsed->options.sgraph);
}

// ---------------------------------------------------------------------------
// Reporting: stats print order, diagnostics JSON round-trip
// ---------------------------------------------------------------------------

TEST(SgraphStats, PrintOrderIsStable) {
  const Netlist nl = make_benchmark("s27");
  CircuitStats stats = CircuitStats::of(nl);
  const SiteTable sites(nl);
  attach_testability(stats, nl, compute_testability(nl, sites));
  attach_sgraph(stats, nl, build_sgraph(nl));

  const std::string text = stats.to_string();
  const std::size_t scoap_at = text.find("scoap: ");
  const std::size_t sgraph_at = text.find("sgraph: ");
  ASSERT_NE(scoap_at, std::string::npos);
  ASSERT_NE(sgraph_at, std::string::npos);
  EXPECT_LT(scoap_at, sgraph_at) << "sgraph line must follow scoap line";
  EXPECT_NE(text.find("sgraph: SCCs 2 (nontrivial 2), acyclic FFs 0"),
            std::string::npos)
      << text;
}

TEST(SgraphDiagnostics, JsonRoundTripsSgraphIds) {
  const Netlist nl = make_benchmark("s27");
  const SgraphInfo info = build_sgraph(nl);

  DiagnosticReport report("s27");
  report.add(nl, "sgraph.scc", Severity::Note, nl.dffs()[0],
             "nontrivial SCC of 2 flip-flops");
  report.add(nl, "sgraph.depth", Severity::Note, nl.dffs()[1],
             "synchronization depth 2");
  report.add(nl, "sgraph.feedback", Severity::Note, nl.dffs()[2],
             "greedy feedback-set candidate");
  report.add(nl, "sgraph.summary", Severity::Note, kNoNode,
             sgraph_summary(nl, info));

  const auto parsed = DiagnosticReport::from_json(report.to_json());
  ASSERT_TRUE(parsed.has_value()) << parsed.error();
  EXPECT_EQ(*parsed, report);
  EXPECT_TRUE(parsed->has("sgraph.scc"));
  EXPECT_TRUE(parsed->has("sgraph.summary"));
}

}  // namespace
}  // namespace motsim
