// Hybrid fault simulation: agreement with the pure symbolic simulator
// when space is ample, soundness under space pressure (every claim it
// makes still holds per the brute-force definitions), and fallback
// bookkeeping.

#include <gtest/gtest.h>

#include "bench_data/registry.h"
#include "bench_data/s27.h"
#include "core/hybrid_sim.h"
#include "core/sym_fault_sim.h"
#include "faults/collapse.h"
#include "reference.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace motsim {
namespace {

using testing::ref_mot_detectable;
using testing::ref_rmot_detectable;
using testing::ref_sot_detectable;
using testing::small_random_circuit;

HybridConfig ample(Strategy s) {
  HybridConfig cfg;
  cfg.strategy = s;
  cfg.node_limit = 1u << 22;  // effectively unlimited
  return cfg;
}

HybridConfig tight(Strategy s, std::size_t limit, std::size_t window = 2) {
  HybridConfig cfg;
  cfg.strategy = s;
  cfg.node_limit = limit;
  cfg.fallback_frames = window;
  cfg.hard_limit_factor = 2;
  return cfg;
}

class HybridVsPure : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HybridVsPure, AmpleSpaceMatchesPureSymbolic) {
  const Netlist nl = small_random_circuit(GetParam());
  Rng rng(GetParam() * 5 + 2);
  const TestSequence seq = random_sequence(nl, 8, rng);
  const CollapsedFaultList c(nl);

  for (Strategy s : {Strategy::Sot, Strategy::Rmot, Strategy::Mot}) {
    SymFaultSim pure(nl, c.faults(), s);
    const auto rp = pure.run(seq);

    HybridFaultSim hybrid(nl, c.faults(), ample(s));
    const auto rh = hybrid.run(seq);

    EXPECT_FALSE(rh.used_fallback);
    EXPECT_EQ(rh.fallback_windows, 0u);
    EXPECT_EQ(rh.three_valued_frames, 0u);
    EXPECT_EQ(rh.detected_count, rp.detected_count) << to_cstring(s);
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_EQ(is_detected(rh.status[i]), is_detected(rp.status[i]))
          << to_cstring(s) << " " << fault_name(nl, c.faults()[i]);
      if (is_detected(rh.status[i])) {
        EXPECT_EQ(rh.detect_frame[i], rp.detect_frame[i]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridVsPure,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class HybridSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HybridSoundness, TightLimitClaimsRemainTrue) {
  // Force heavy fallback with a tiny node limit: whatever the hybrid
  // still detects must be genuinely detectable per the definitions.
  const Netlist nl = small_random_circuit(GetParam());
  if (nl.dff_count() > 5) GTEST_SKIP();
  Rng rng(GetParam() * 11 + 9);
  const TestSequence seq = random_sequence(nl, 6, rng);
  const CollapsedFaultList c(nl);

  for (Strategy s : {Strategy::Sot, Strategy::Rmot, Strategy::Mot}) {
    HybridFaultSim hybrid(nl, c.faults(), tight(s, 24));
    const auto r = hybrid.run(seq);
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (!is_detected(r.status[i])) continue;
      const Fault& f = c.faults()[i];
      bool ok = false;
      switch (s) {
        case Strategy::Sot:
          ok = ref_sot_detectable(nl, f, seq);
          break;
        case Strategy::Rmot:
          ok = ref_rmot_detectable(nl, f, seq);
          break;
        case Strategy::Mot:
          ok = ref_mot_detectable(nl, f, seq);
          break;
      }
      EXPECT_TRUE(ok) << to_cstring(s) << " over-claimed "
                      << fault_name(nl, f) << " in " << nl.name();
    }
  }
}

TEST_P(HybridSoundness, FrameAccountingAddsUp) {
  const Netlist nl = small_random_circuit(GetParam() + 60);
  Rng rng(GetParam() * 3 + 8);
  const TestSequence seq = random_sequence(nl, 10, rng);
  const CollapsedFaultList c(nl);

  HybridFaultSim hybrid(nl, c.faults(), tight(Strategy::Mot, 32, 3));
  const auto r = hybrid.run(seq);
  // Every frame ran in exactly one mode — unless all faults dropped
  // early and the run stopped.
  EXPECT_LE(r.symbolic_frames + r.three_valued_frames, seq.size());
  if (r.detected_count < c.size()) {
    EXPECT_EQ(r.symbolic_frames + r.three_valued_frames, seq.size());
  }
  if (r.used_fallback) {
    EXPECT_GT(r.fallback_windows, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridSoundness,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(Hybrid, FallbackActuallyTriggersOnCounter) {
  // The s208.1-like counter under MOT with the paper's 30k limit stays
  // symbolic; with a very small limit it must fall back and still
  // detect a nonzero set.
  const Netlist nl = make_benchmark("s208.1");
  const CollapsedFaultList c(nl);
  Rng rng(77);
  const TestSequence seq = random_sequence(nl, 40, rng);

  HybridFaultSim small_sim(nl, c.faults(), tight(Strategy::Mot, 400, 4));
  const auto rs = small_sim.run(seq);
  EXPECT_TRUE(rs.used_fallback);
  EXPECT_GT(rs.three_valued_frames, 0u);
  EXPECT_GT(rs.symbolic_frames, 0u);

  HybridFaultSim big(nl, c.faults(), ample(Strategy::Mot));
  const auto rb = big.run(seq);
  // The space-pressured run can only be less accurate.
  EXPECT_LE(rs.detected_count, rb.detected_count);
}

TEST(Hybrid, PeakNodesRespectsOrderOfMagnitude) {
  const Netlist nl = make_benchmark("s208.1");
  const CollapsedFaultList c(nl);
  Rng rng(78);
  const TestSequence seq = random_sequence(nl, 30, rng);
  HybridFaultSim sim(nl, c.faults(), tight(Strategy::Mot, 1000, 4));
  const auto r = sim.run(seq);
  // Peak is measured after GC at frame boundaries; the hard cap is
  // node_limit * factor during a frame.
  EXPECT_LE(r.peak_live_nodes, 2000u * 2u);
}

TEST(Hybrid, InvalidConfigRejected) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  HybridConfig cfg;
  cfg.node_limit = 0;
  EXPECT_THROW(HybridFaultSim(nl, c.faults(), cfg), std::invalid_argument);
  cfg = HybridConfig{};
  cfg.fallback_frames = 0;
  EXPECT_THROW(HybridFaultSim(nl, c.faults(), cfg), std::invalid_argument);
}

TEST(Hybrid, InitialStatusSkips) {
  const Netlist nl = make_s27();
  const CollapsedFaultList c(nl);
  HybridFaultSim sim(nl, c.faults(), ample(Strategy::Rmot));
  sim.set_initial_status(
      std::vector<FaultStatus>(c.size(), FaultStatus::XRedundant));
  Rng rng(5);
  const auto r = sim.run(random_sequence(nl, 5, rng));
  EXPECT_EQ(r.detected_count, 0u);
  for (FaultStatus s : r.status) EXPECT_EQ(s, FaultStatus::XRedundant);
}

TEST(Hybrid, ThreeValuedWindowStillDropsFaults) {
  // With limit so small that almost everything runs three-valued, the
  // hybrid should roughly match the plain three-valued detector.
  const Netlist nl = make_benchmark("s298");
  const CollapsedFaultList c(nl);
  Rng rng(99);
  const TestSequence seq = random_sequence(nl, 30, rng);

  HybridFaultSim sim(nl, c.faults(), tight(Strategy::Mot, 8, 30));
  const auto r = sim.run(seq);
  EXPECT_TRUE(r.used_fallback);
  EXPECT_GT(r.detected_count, 0u);
}

}  // namespace
}  // namespace motsim
