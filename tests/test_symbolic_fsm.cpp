// Symbolic FSM analysis: delta/lambda extraction, image computation
// (validated against concrete enumeration), reachability fixpoints and
// the synchronizing-sequence search.

#include <gtest/gtest.h>

#include <set>

#include "bench_data/registry.h"
#include "bench_data/s27.h"
#include "core/symbolic_fsm.h"
#include "reference.h"
#include "sim3/good_sim3.h"
#include "sim3/sim2.h"
#include "util/rng.h"

namespace motsim {
namespace {

using bdd::Bdd;
using testing::small_random_circuit;

/// Encodes state `s` as an assignment over the manager's variables.
std::vector<bool> state_assignment(const SymbolicFsm& fsm, std::size_t s,
                                   std::size_t input_bits = 0) {
  std::vector<bool> asg(fsm.manager().var_count(), false);
  for (std::size_t i = 0; i < fsm.vars().dff_count(); ++i) {
    asg[fsm.vars().x(i)] = ((s >> i) & 1) != 0;
  }
  for (std::size_t j = 0; j < fsm.netlist().input_count(); ++j) {
    asg[fsm.input_var(j)] = ((input_bits >> j) & 1) != 0;
  }
  return asg;
}

/// Concrete next state of `nl` from state s under input bits.
std::size_t concrete_next(const Netlist& nl, std::size_t s,
                          std::size_t input_bits) {
  std::vector<bool> init(nl.dff_count());
  for (std::size_t i = 0; i < init.size(); ++i) init[i] = ((s >> i) & 1) != 0;
  std::vector<bool> in(nl.input_count());
  for (std::size_t j = 0; j < in.size(); ++j) {
    in[j] = ((input_bits >> j) & 1) != 0;
  }
  Sim2 sim(nl);
  sim.set_state(init);
  sim.step(in);
  std::size_t next = 0;
  for (std::size_t i = 0; i < nl.dff_count(); ++i) {
    if (sim.state()[i]) next |= (std::size_t{1} << i);
  }
  return next;
}

class SymbolicFsmProps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SymbolicFsmProps, DeltaMatchesConcreteSimulation) {
  const Netlist nl = small_random_circuit(GetParam());
  if (nl.dff_count() > 4 || nl.input_count() > 4) GTEST_SKIP();
  bdd::BddManager mgr;
  const SymbolicFsm fsm(nl, mgr, StateVars(nl.dff_count()));

  for (std::size_t s = 0; s < (std::size_t{1} << nl.dff_count()); ++s) {
    for (std::size_t in = 0; in < (std::size_t{1} << nl.input_count());
         ++in) {
      const std::size_t expected = concrete_next(nl, s, in);
      const auto asg = state_assignment(fsm, s, in);
      for (std::size_t i = 0; i < nl.dff_count(); ++i) {
        EXPECT_EQ(fsm.delta(i).eval(asg), ((expected >> i) & 1) != 0)
            << "state " << s << " input " << in << " ff " << i;
      }
    }
  }
}

TEST_P(SymbolicFsmProps, ImageMatchesEnumeration) {
  const Netlist nl = small_random_circuit(GetParam() + 20);
  if (nl.dff_count() > 4 || nl.input_count() > 4) GTEST_SKIP();
  bdd::BddManager mgr;
  const SymbolicFsm fsm(nl, mgr, StateVars(nl.dff_count()));
  const std::size_t nstates = std::size_t{1} << nl.dff_count();
  Rng rng(GetParam() * 7 + 5);

  // A few random state sets and input vectors.
  for (int trial = 0; trial < 6; ++trial) {
    std::set<std::size_t> sset;
    Bdd set_bdd = mgr.zero();
    for (std::size_t s = 0; s < nstates; ++s) {
      if (!rng.flip()) continue;
      sset.insert(s);
      Bdd minterm = mgr.one();
      for (std::size_t i = 0; i < nl.dff_count(); ++i) {
        const Bdd xi = mgr.var(fsm.vars().x(i));
        minterm &= ((s >> i) & 1) != 0 ? xi : !xi;
      }
      set_bdd |= minterm;
    }
    const std::size_t in_bits = rng.below(1u << nl.input_count());
    std::vector<Val3> input(nl.input_count());
    for (std::size_t j = 0; j < input.size(); ++j) {
      input[j] = to_val3(((in_bits >> j) & 1) != 0);
    }

    // Expected image by enumeration.
    std::set<std::size_t> expected;
    for (std::size_t s : sset) expected.insert(concrete_next(nl, s, in_bits));

    const Bdd img = fsm.image(set_bdd, input);
    for (std::size_t s = 0; s < nstates; ++s) {
      EXPECT_EQ(img.eval(state_assignment(fsm, s)), expected.count(s) == 1)
          << "state " << s;
    }
    EXPECT_DOUBLE_EQ(fsm.count_states(img),
                     static_cast<double>(expected.size()));
  }
}

TEST_P(SymbolicFsmProps, ReachableIsClosedFixpoint) {
  const Netlist nl = small_random_circuit(GetParam() + 40);
  if (nl.dff_count() > 5) GTEST_SKIP();
  bdd::BddManager mgr;
  const SymbolicFsm fsm(nl, mgr, StateVars(nl.dff_count()));

  // From the all-zero state.
  Bdd init = mgr.one();
  for (std::size_t i = 0; i < nl.dff_count(); ++i) {
    init &= !mgr.var(fsm.vars().x(i));
  }
  const Bdd reached = fsm.reachable(init);
  // Contains the initial state.
  EXPECT_EQ(reached & init, init);
  // Closed under the image.
  const Bdd img = fsm.image_any_input(reached);
  EXPECT_EQ(img | reached, reached);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymbolicFsmProps,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Directed behaviour
// ---------------------------------------------------------------------------

TEST(SymbolicFsm, LambdaOfS27) {
  const Netlist nl = make_s27();
  bdd::BddManager mgr;
  const SymbolicFsm fsm(nl, mgr, StateVars(nl.dff_count()));
  ASSERT_EQ(nl.output_count(), 1u);
  // G17 = NOT(G11) where G11 = OR(G5, G9): depends on state and
  // inputs; at least it must not be constant.
  EXPECT_FALSE(fsm.lambda(0).is_const());
}

TEST(SymbolicFsm, CountStatesOfConstants) {
  const Netlist nl = make_s27();
  bdd::BddManager mgr;
  const SymbolicFsm fsm(nl, mgr, StateVars(nl.dff_count()));
  EXPECT_DOUBLE_EQ(fsm.count_states(fsm.all_states()), 8.0);
  EXPECT_DOUBLE_EQ(fsm.count_states(mgr.zero()), 0.0);
}

TEST(SymbolicFsm, RejectsXInImage) {
  const Netlist nl = make_s27();
  bdd::BddManager mgr;
  const SymbolicFsm fsm(nl, mgr, StateVars(nl.dff_count()));
  std::vector<Val3> bad(nl.input_count(), Val3::X);
  EXPECT_THROW((void)fsm.image(fsm.all_states(), bad),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Synchronizing sequences
// ---------------------------------------------------------------------------

TEST(SyncSearch, ControllerSynchronizesQuickly) {
  // The controller style clears its registers on a decoded input
  // pattern — a synchronizing sequence of length 1 exists.
  const Netlist nl = make_benchmark("s298");
  bdd::BddManager mgr;
  const SymbolicFsm fsm(nl, mgr, StateVars(nl.dff_count()));
  const SyncSearchResult r = find_synchronizing_sequence(fsm, 8, 512);
  EXPECT_TRUE(r.found);
  EXPECT_LE(r.sequence.size(), 4u);
  // Verify the claim: applying the sequence from every initial state
  // lands in one state.
  std::set<std::string> final_states;
  const auto seq2 = to_bool_sequence(r.sequence);
  for (std::size_t s = 0; s < (std::size_t{1} << nl.dff_count()); ++s) {
    std::vector<bool> init(nl.dff_count());
    for (std::size_t i = 0; i < init.size(); ++i) {
      init[i] = ((s >> i) & 1) != 0;
    }
    Sim2 sim(nl);
    sim.set_state(init);
    for (const auto& v : seq2) sim.step(v);
    std::string key;
    for (bool b : sim.state()) key += b ? '1' : '0';
    final_states.insert(key);
  }
  EXPECT_EQ(final_states.size(), 1u);
}

TEST(SyncSearch, CounterHasNoShortSynchronizingSequence) {
  // XOR feedback is a bijection in the state: the uncertainty set
  // never shrinks, so no synchronizing sequence exists at all.
  const Netlist nl = make_benchmark("s208.1");
  bdd::BddManager mgr;
  const SymbolicFsm fsm(nl, mgr, StateVars(nl.dff_count()));
  const SyncSearchResult r = find_synchronizing_sequence(fsm, 6, 256);
  EXPECT_FALSE(r.found);
  EXPECT_GT(r.final_states, 1.0);
}

TEST(SyncSearch, S27IsSynchronizable) {
  const Netlist nl = make_s27();
  bdd::BddManager mgr;
  const SymbolicFsm fsm(nl, mgr, StateVars(nl.dff_count()));
  const SyncSearchResult r = find_synchronizing_sequence(fsm, 8, 512);
  EXPECT_TRUE(r.found);
  EXPECT_DOUBLE_EQ(r.final_states, 1.0);
}

TEST(SyncSearch, RespectsNodeBudget) {
  const Netlist nl = make_benchmark("s208.1");
  bdd::BddManager mgr;
  const SymbolicFsm fsm(nl, mgr, StateVars(nl.dff_count()));
  const SyncSearchResult r = find_synchronizing_sequence(fsm, 64, 16);
  EXPECT_FALSE(r.found);
  EXPECT_LE(r.explored, 16u + 1);
}

}  // namespace
}  // namespace motsim
