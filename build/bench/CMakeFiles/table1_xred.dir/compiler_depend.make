# Empty compiler generated dependencies file for table1_xred.
# This may be replaced when dependencies are built.
