file(REMOVE_RECURSE
  "CMakeFiles/table1_xred.dir/table1_xred.cpp.o"
  "CMakeFiles/table1_xred.dir/table1_xred.cpp.o.d"
  "table1_xred"
  "table1_xred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_xred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
