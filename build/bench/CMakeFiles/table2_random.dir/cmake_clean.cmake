file(REMOVE_RECURSE
  "CMakeFiles/table2_random.dir/table2_random.cpp.o"
  "CMakeFiles/table2_random.dir/table2_random.cpp.o.d"
  "table2_random"
  "table2_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
