# Empty dependencies file for table2_random.
# This may be replaced when dependencies are built.
