# Empty dependencies file for ablation_parallel_sim.
# This may be replaced when dependencies are built.
