file(REMOVE_RECURSE
  "CMakeFiles/ablation_parallel_sim.dir/ablation_parallel_sim.cpp.o"
  "CMakeFiles/ablation_parallel_sim.dir/ablation_parallel_sim.cpp.o.d"
  "ablation_parallel_sim"
  "ablation_parallel_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_parallel_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
