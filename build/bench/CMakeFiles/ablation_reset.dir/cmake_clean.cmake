file(REMOVE_RECURSE
  "CMakeFiles/ablation_reset.dir/ablation_reset.cpp.o"
  "CMakeFiles/ablation_reset.dir/ablation_reset.cpp.o.d"
  "ablation_reset"
  "ablation_reset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
