file(REMOVE_RECURSE
  "CMakeFiles/coverage_curve.dir/coverage_curve.cpp.o"
  "CMakeFiles/coverage_curve.dir/coverage_curve.cpp.o.d"
  "coverage_curve"
  "coverage_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
