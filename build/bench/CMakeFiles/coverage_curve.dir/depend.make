# Empty dependencies file for coverage_curve.
# This may be replaced when dependencies are built.
