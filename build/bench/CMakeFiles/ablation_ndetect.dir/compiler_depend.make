# Empty compiler generated dependencies file for ablation_ndetect.
# This may be replaced when dependencies are built.
