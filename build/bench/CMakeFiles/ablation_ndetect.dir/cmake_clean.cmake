file(REMOVE_RECURSE
  "CMakeFiles/ablation_ndetect.dir/ablation_ndetect.cpp.o"
  "CMakeFiles/ablation_ndetect.dir/ablation_ndetect.cpp.o.d"
  "ablation_ndetect"
  "ablation_ndetect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ndetect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
