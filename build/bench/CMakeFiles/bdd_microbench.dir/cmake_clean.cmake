file(REMOVE_RECURSE
  "CMakeFiles/bdd_microbench.dir/bdd_microbench.cpp.o"
  "CMakeFiles/bdd_microbench.dir/bdd_microbench.cpp.o.d"
  "bdd_microbench"
  "bdd_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdd_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
