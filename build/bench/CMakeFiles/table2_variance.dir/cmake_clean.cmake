file(REMOVE_RECURSE
  "CMakeFiles/table2_variance.dir/table2_variance.cpp.o"
  "CMakeFiles/table2_variance.dir/table2_variance.cpp.o.d"
  "table2_variance"
  "table2_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
