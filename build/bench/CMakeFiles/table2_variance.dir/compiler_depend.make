# Empty compiler generated dependencies file for table2_variance.
# This may be replaced when dependencies are built.
