# Empty dependencies file for ablation_hybrid_limit.
# This may be replaced when dependencies are built.
