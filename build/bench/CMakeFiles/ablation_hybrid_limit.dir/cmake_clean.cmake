file(REMOVE_RECURSE
  "CMakeFiles/ablation_hybrid_limit.dir/ablation_hybrid_limit.cpp.o"
  "CMakeFiles/ablation_hybrid_limit.dir/ablation_hybrid_limit.cpp.o.d"
  "ablation_hybrid_limit"
  "ablation_hybrid_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hybrid_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
