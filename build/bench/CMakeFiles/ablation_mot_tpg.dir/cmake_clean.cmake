file(REMOVE_RECURSE
  "CMakeFiles/ablation_mot_tpg.dir/ablation_mot_tpg.cpp.o"
  "CMakeFiles/ablation_mot_tpg.dir/ablation_mot_tpg.cpp.o.d"
  "ablation_mot_tpg"
  "ablation_mot_tpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mot_tpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
