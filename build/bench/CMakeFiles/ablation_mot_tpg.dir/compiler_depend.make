# Empty compiler generated dependencies file for ablation_mot_tpg.
# This may be replaced when dependencies are built.
