# Empty dependencies file for ablation_xred_steps.
# This may be replaced when dependencies are built.
