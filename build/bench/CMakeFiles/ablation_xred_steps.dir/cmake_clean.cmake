file(REMOVE_RECURSE
  "CMakeFiles/ablation_xred_steps.dir/ablation_xred_steps.cpp.o"
  "CMakeFiles/ablation_xred_steps.dir/ablation_xred_steps.cpp.o.d"
  "ablation_xred_steps"
  "ablation_xred_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_xred_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
