file(REMOVE_RECURSE
  "CMakeFiles/table3_deterministic.dir/table3_deterministic.cpp.o"
  "CMakeFiles/table3_deterministic.dir/table3_deterministic.cpp.o.d"
  "table3_deterministic"
  "table3_deterministic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_deterministic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
