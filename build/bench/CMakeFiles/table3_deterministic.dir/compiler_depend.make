# Empty compiler generated dependencies file for table3_deterministic.
# This may be replaced when dependencies are built.
