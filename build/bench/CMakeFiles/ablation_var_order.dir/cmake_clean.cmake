file(REMOVE_RECURSE
  "CMakeFiles/ablation_var_order.dir/ablation_var_order.cpp.o"
  "CMakeFiles/ablation_var_order.dir/ablation_var_order.cpp.o.d"
  "ablation_var_order"
  "ablation_var_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_var_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
