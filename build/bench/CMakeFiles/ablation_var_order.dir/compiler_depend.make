# Empty compiler generated dependencies file for ablation_var_order.
# This may be replaced when dependencies are built.
