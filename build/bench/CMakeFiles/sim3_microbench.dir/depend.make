# Empty dependencies file for sim3_microbench.
# This may be replaced when dependencies are built.
