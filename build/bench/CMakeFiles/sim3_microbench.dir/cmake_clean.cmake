file(REMOVE_RECURSE
  "CMakeFiles/sim3_microbench.dir/sim3_microbench.cpp.o"
  "CMakeFiles/sim3_microbench.dir/sim3_microbench.cpp.o.d"
  "sim3_microbench"
  "sim3_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim3_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
