# Empty compiler generated dependencies file for ablation_sift.
# This may be replaced when dependencies are built.
