file(REMOVE_RECURSE
  "CMakeFiles/ablation_sift.dir/ablation_sift.cpp.o"
  "CMakeFiles/ablation_sift.dir/ablation_sift.cpp.o.d"
  "ablation_sift"
  "ablation_sift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
