file(REMOVE_RECURSE
  "CMakeFiles/table4_test_evaluation.dir/table4_test_evaluation.cpp.o"
  "CMakeFiles/table4_test_evaluation.dir/table4_test_evaluation.cpp.o.d"
  "table4_test_evaluation"
  "table4_test_evaluation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_test_evaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
