# Empty dependencies file for table4_test_evaluation.
# This may be replaced when dependencies are built.
