file(REMOVE_RECURSE
  "CMakeFiles/test_multi_strategy.dir/test_multi_strategy.cpp.o"
  "CMakeFiles/test_multi_strategy.dir/test_multi_strategy.cpp.o.d"
  "test_multi_strategy"
  "test_multi_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
