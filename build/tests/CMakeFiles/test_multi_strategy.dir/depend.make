# Empty dependencies file for test_multi_strategy.
# This may be replaced when dependencies are built.
