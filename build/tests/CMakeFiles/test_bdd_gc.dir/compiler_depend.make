# Empty compiler generated dependencies file for test_bdd_gc.
# This may be replaced when dependencies are built.
