file(REMOVE_RECURSE
  "CMakeFiles/test_bdd_gc.dir/test_bdd_gc.cpp.o"
  "CMakeFiles/test_bdd_gc.dir/test_bdd_gc.cpp.o.d"
  "test_bdd_gc"
  "test_bdd_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bdd_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
