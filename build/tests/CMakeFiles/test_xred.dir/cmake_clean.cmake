file(REMOVE_RECURSE
  "CMakeFiles/test_xred.dir/test_xred.cpp.o"
  "CMakeFiles/test_xred.dir/test_xred.cpp.o.d"
  "test_xred"
  "test_xred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
