# Empty compiler generated dependencies file for test_xred.
# This may be replaced when dependencies are built.
