# Empty dependencies file for test_paper_figs.
# This may be replaced when dependencies are built.
