file(REMOVE_RECURSE
  "CMakeFiles/test_paper_figs.dir/test_paper_figs.cpp.o"
  "CMakeFiles/test_paper_figs.dir/test_paper_figs.cpp.o.d"
  "test_paper_figs"
  "test_paper_figs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_figs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
