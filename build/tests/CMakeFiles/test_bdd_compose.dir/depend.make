# Empty dependencies file for test_bdd_compose.
# This may be replaced when dependencies are built.
