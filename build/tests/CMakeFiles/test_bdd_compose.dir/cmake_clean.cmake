file(REMOVE_RECURSE
  "CMakeFiles/test_bdd_compose.dir/test_bdd_compose.cpp.o"
  "CMakeFiles/test_bdd_compose.dir/test_bdd_compose.cpp.o.d"
  "test_bdd_compose"
  "test_bdd_compose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bdd_compose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
