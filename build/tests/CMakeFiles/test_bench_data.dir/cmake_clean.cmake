file(REMOVE_RECURSE
  "CMakeFiles/test_bench_data.dir/test_bench_data.cpp.o"
  "CMakeFiles/test_bench_data.dir/test_bench_data.cpp.o.d"
  "test_bench_data"
  "test_bench_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bench_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
