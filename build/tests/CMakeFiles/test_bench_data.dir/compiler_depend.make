# Empty compiler generated dependencies file for test_bench_data.
# This may be replaced when dependencies are built.
