# Empty compiler generated dependencies file for test_bdd_basic.
# This may be replaced when dependencies are built.
