file(REMOVE_RECURSE
  "CMakeFiles/test_bdd_basic.dir/test_bdd_basic.cpp.o"
  "CMakeFiles/test_bdd_basic.dir/test_bdd_basic.cpp.o.d"
  "test_bdd_basic"
  "test_bdd_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bdd_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
