# Empty compiler generated dependencies file for test_ndetect.
# This may be replaced when dependencies are built.
