file(REMOVE_RECURSE
  "CMakeFiles/test_ndetect.dir/test_ndetect.cpp.o"
  "CMakeFiles/test_ndetect.dir/test_ndetect.cpp.o.d"
  "test_ndetect"
  "test_ndetect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ndetect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
