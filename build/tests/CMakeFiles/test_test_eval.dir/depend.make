# Empty dependencies file for test_test_eval.
# This may be replaced when dependencies are built.
