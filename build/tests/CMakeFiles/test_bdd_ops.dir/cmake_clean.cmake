file(REMOVE_RECURSE
  "CMakeFiles/test_bdd_ops.dir/test_bdd_ops.cpp.o"
  "CMakeFiles/test_bdd_ops.dir/test_bdd_ops.cpp.o.d"
  "test_bdd_ops"
  "test_bdd_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bdd_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
