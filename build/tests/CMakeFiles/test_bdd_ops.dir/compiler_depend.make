# Empty compiler generated dependencies file for test_bdd_ops.
# This may be replaced when dependencies are built.
