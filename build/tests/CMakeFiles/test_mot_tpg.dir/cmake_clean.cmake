file(REMOVE_RECURSE
  "CMakeFiles/test_mot_tpg.dir/test_mot_tpg.cpp.o"
  "CMakeFiles/test_mot_tpg.dir/test_mot_tpg.cpp.o.d"
  "test_mot_tpg"
  "test_mot_tpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mot_tpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
