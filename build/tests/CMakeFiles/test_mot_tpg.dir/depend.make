# Empty dependencies file for test_mot_tpg.
# This may be replaced when dependencies are built.
