file(REMOVE_RECURSE
  "CMakeFiles/test_symbolic_fsm.dir/test_symbolic_fsm.cpp.o"
  "CMakeFiles/test_symbolic_fsm.dir/test_symbolic_fsm.cpp.o.d"
  "test_symbolic_fsm"
  "test_symbolic_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symbolic_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
