# Empty compiler generated dependencies file for test_symbolic_fsm.
# This may be replaced when dependencies are built.
