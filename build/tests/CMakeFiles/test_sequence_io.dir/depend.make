# Empty dependencies file for test_sequence_io.
# This may be replaced when dependencies are built.
