file(REMOVE_RECURSE
  "CMakeFiles/test_sequence_io.dir/test_sequence_io.cpp.o"
  "CMakeFiles/test_sequence_io.dir/test_sequence_io.cpp.o.d"
  "test_sequence_io"
  "test_sequence_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sequence_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
