# Empty dependencies file for test_roundtrip_fuzz.
# This may be replaced when dependencies are built.
