file(REMOVE_RECURSE
  "CMakeFiles/test_bdd_reorder.dir/test_bdd_reorder.cpp.o"
  "CMakeFiles/test_bdd_reorder.dir/test_bdd_reorder.cpp.o.d"
  "test_bdd_reorder"
  "test_bdd_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bdd_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
