# Empty dependencies file for test_sim3.
# This may be replaced when dependencies are built.
