file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_sim3.dir/test_parallel_sim3.cpp.o"
  "CMakeFiles/test_parallel_sim3.dir/test_parallel_sim3.cpp.o.d"
  "test_parallel_sim3"
  "test_parallel_sim3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_sim3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
