file(REMOVE_RECURSE
  "libmotsim.a"
)
