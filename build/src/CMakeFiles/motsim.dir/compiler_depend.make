# Empty compiler generated dependencies file for motsim.
# This may be replaced when dependencies are built.
