
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdd/bdd_analysis.cpp" "src/CMakeFiles/motsim.dir/bdd/bdd_analysis.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/bdd/bdd_analysis.cpp.o.d"
  "/root/repo/src/bdd/bdd_compose.cpp" "src/CMakeFiles/motsim.dir/bdd/bdd_compose.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/bdd/bdd_compose.cpp.o.d"
  "/root/repo/src/bdd/bdd_manager.cpp" "src/CMakeFiles/motsim.dir/bdd/bdd_manager.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/bdd/bdd_manager.cpp.o.d"
  "/root/repo/src/bdd/bdd_ops.cpp" "src/CMakeFiles/motsim.dir/bdd/bdd_ops.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/bdd/bdd_ops.cpp.o.d"
  "/root/repo/src/bdd/bdd_reorder.cpp" "src/CMakeFiles/motsim.dir/bdd/bdd_reorder.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/bdd/bdd_reorder.cpp.o.d"
  "/root/repo/src/bench_data/registry.cpp" "src/CMakeFiles/motsim.dir/bench_data/registry.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/bench_data/registry.cpp.o.d"
  "/root/repo/src/bench_data/s27.cpp" "src/CMakeFiles/motsim.dir/bench_data/s27.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/bench_data/s27.cpp.o.d"
  "/root/repo/src/bench_data/synth_gen.cpp" "src/CMakeFiles/motsim.dir/bench_data/synth_gen.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/bench_data/synth_gen.cpp.o.d"
  "/root/repo/src/circuit/bench_io.cpp" "src/CMakeFiles/motsim.dir/circuit/bench_io.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/circuit/bench_io.cpp.o.d"
  "/root/repo/src/circuit/ffr.cpp" "src/CMakeFiles/motsim.dir/circuit/ffr.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/circuit/ffr.cpp.o.d"
  "/root/repo/src/circuit/levelize.cpp" "src/CMakeFiles/motsim.dir/circuit/levelize.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/circuit/levelize.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/CMakeFiles/motsim.dir/circuit/netlist.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/circuit/netlist.cpp.o.d"
  "/root/repo/src/circuit/stats.cpp" "src/CMakeFiles/motsim.dir/circuit/stats.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/circuit/stats.cpp.o.d"
  "/root/repo/src/circuit/transform.cpp" "src/CMakeFiles/motsim.dir/circuit/transform.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/circuit/transform.cpp.o.d"
  "/root/repo/src/circuit/validate.cpp" "src/CMakeFiles/motsim.dir/circuit/validate.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/circuit/validate.cpp.o.d"
  "/root/repo/src/core/diagnosis.cpp" "src/CMakeFiles/motsim.dir/core/diagnosis.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/core/diagnosis.cpp.o.d"
  "/root/repo/src/core/equivalence.cpp" "src/CMakeFiles/motsim.dir/core/equivalence.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/core/equivalence.cpp.o.d"
  "/root/repo/src/core/hybrid_sim.cpp" "src/CMakeFiles/motsim.dir/core/hybrid_sim.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/core/hybrid_sim.cpp.o.d"
  "/root/repo/src/core/misr.cpp" "src/CMakeFiles/motsim.dir/core/misr.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/core/misr.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/motsim.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/sym_fault_sim.cpp" "src/CMakeFiles/motsim.dir/core/sym_fault_sim.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/core/sym_fault_sim.cpp.o.d"
  "/root/repo/src/core/sym_true_value.cpp" "src/CMakeFiles/motsim.dir/core/sym_true_value.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/core/sym_true_value.cpp.o.d"
  "/root/repo/src/core/symbolic_fsm.cpp" "src/CMakeFiles/motsim.dir/core/symbolic_fsm.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/core/symbolic_fsm.cpp.o.d"
  "/root/repo/src/core/test_eval.cpp" "src/CMakeFiles/motsim.dir/core/test_eval.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/core/test_eval.cpp.o.d"
  "/root/repo/src/core/xred.cpp" "src/CMakeFiles/motsim.dir/core/xred.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/core/xred.cpp.o.d"
  "/root/repo/src/faults/collapse.cpp" "src/CMakeFiles/motsim.dir/faults/collapse.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/faults/collapse.cpp.o.d"
  "/root/repo/src/faults/fault.cpp" "src/CMakeFiles/motsim.dir/faults/fault.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/faults/fault.cpp.o.d"
  "/root/repo/src/faults/fault_list.cpp" "src/CMakeFiles/motsim.dir/faults/fault_list.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/faults/fault_list.cpp.o.d"
  "/root/repo/src/faults/report.cpp" "src/CMakeFiles/motsim.dir/faults/report.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/faults/report.cpp.o.d"
  "/root/repo/src/faults/sampling.cpp" "src/CMakeFiles/motsim.dir/faults/sampling.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/faults/sampling.cpp.o.d"
  "/root/repo/src/logic/val3.cpp" "src/CMakeFiles/motsim.dir/logic/val3.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/logic/val3.cpp.o.d"
  "/root/repo/src/logic/val4.cpp" "src/CMakeFiles/motsim.dir/logic/val4.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/logic/val4.cpp.o.d"
  "/root/repo/src/sim3/fault_sim3.cpp" "src/CMakeFiles/motsim.dir/sim3/fault_sim3.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/sim3/fault_sim3.cpp.o.d"
  "/root/repo/src/sim3/good_sim3.cpp" "src/CMakeFiles/motsim.dir/sim3/good_sim3.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/sim3/good_sim3.cpp.o.d"
  "/root/repo/src/sim3/ndetect.cpp" "src/CMakeFiles/motsim.dir/sim3/ndetect.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/sim3/ndetect.cpp.o.d"
  "/root/repo/src/sim3/parallel_fault_sim3.cpp" "src/CMakeFiles/motsim.dir/sim3/parallel_fault_sim3.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/sim3/parallel_fault_sim3.cpp.o.d"
  "/root/repo/src/sim3/sim2.cpp" "src/CMakeFiles/motsim.dir/sim3/sim2.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/sim3/sim2.cpp.o.d"
  "/root/repo/src/tpg/compaction.cpp" "src/CMakeFiles/motsim.dir/tpg/compaction.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/tpg/compaction.cpp.o.d"
  "/root/repo/src/tpg/mot_tpg.cpp" "src/CMakeFiles/motsim.dir/tpg/mot_tpg.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/tpg/mot_tpg.cpp.o.d"
  "/root/repo/src/tpg/sequence_io.cpp" "src/CMakeFiles/motsim.dir/tpg/sequence_io.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/tpg/sequence_io.cpp.o.d"
  "/root/repo/src/tpg/sequences.cpp" "src/CMakeFiles/motsim.dir/tpg/sequences.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/tpg/sequences.cpp.o.d"
  "/root/repo/src/util/env.cpp" "src/CMakeFiles/motsim.dir/util/env.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/util/env.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/motsim.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stopwatch.cpp" "src/CMakeFiles/motsim.dir/util/stopwatch.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/util/stopwatch.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/CMakeFiles/motsim.dir/util/strings.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/util/strings.cpp.o.d"
  "/root/repo/src/util/table_printer.cpp" "src/CMakeFiles/motsim.dir/util/table_printer.cpp.o" "gcc" "src/CMakeFiles/motsim.dir/util/table_printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
