file(REMOVE_RECURSE
  "CMakeFiles/motsim_cli.dir/motsim_cli.cpp.o"
  "CMakeFiles/motsim_cli.dir/motsim_cli.cpp.o.d"
  "motsim_cli"
  "motsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
