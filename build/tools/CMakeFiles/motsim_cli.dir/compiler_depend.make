# Empty compiler generated dependencies file for motsim_cli.
# This may be replaced when dependencies are built.
