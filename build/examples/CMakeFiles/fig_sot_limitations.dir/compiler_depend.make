# Empty compiler generated dependencies file for fig_sot_limitations.
# This may be replaced when dependencies are built.
