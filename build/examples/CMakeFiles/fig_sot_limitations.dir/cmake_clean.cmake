file(REMOVE_RECURSE
  "CMakeFiles/fig_sot_limitations.dir/fig_sot_limitations.cpp.o"
  "CMakeFiles/fig_sot_limitations.dir/fig_sot_limitations.cpp.o.d"
  "fig_sot_limitations"
  "fig_sot_limitations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_sot_limitations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
