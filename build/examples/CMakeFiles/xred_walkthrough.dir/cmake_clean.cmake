file(REMOVE_RECURSE
  "CMakeFiles/xred_walkthrough.dir/xred_walkthrough.cpp.o"
  "CMakeFiles/xred_walkthrough.dir/xred_walkthrough.cpp.o.d"
  "xred_walkthrough"
  "xred_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xred_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
