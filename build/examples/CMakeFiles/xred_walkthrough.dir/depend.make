# Empty dependencies file for xred_walkthrough.
# This may be replaced when dependencies are built.
