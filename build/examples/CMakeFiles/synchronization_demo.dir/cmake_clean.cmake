file(REMOVE_RECURSE
  "CMakeFiles/synchronization_demo.dir/synchronization_demo.cpp.o"
  "CMakeFiles/synchronization_demo.dir/synchronization_demo.cpp.o.d"
  "synchronization_demo"
  "synchronization_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synchronization_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
