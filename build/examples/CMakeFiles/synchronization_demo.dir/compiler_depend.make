# Empty compiler generated dependencies file for synchronization_demo.
# This may be replaced when dependencies are built.
