file(REMOVE_RECURSE
  "CMakeFiles/test_evaluation_demo.dir/test_evaluation_demo.cpp.o"
  "CMakeFiles/test_evaluation_demo.dir/test_evaluation_demo.cpp.o.d"
  "test_evaluation_demo"
  "test_evaluation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evaluation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
