# Empty dependencies file for test_evaluation_demo.
# This may be replaced when dependencies are built.
