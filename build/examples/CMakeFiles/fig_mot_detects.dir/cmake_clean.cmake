file(REMOVE_RECURSE
  "CMakeFiles/fig_mot_detects.dir/fig_mot_detects.cpp.o"
  "CMakeFiles/fig_mot_detects.dir/fig_mot_detects.cpp.o.d"
  "fig_mot_detects"
  "fig_mot_detects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_mot_detects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
