# Empty dependencies file for fig_mot_detects.
# This may be replaced when dependencies are built.
