// The hybrid fault simulator under space pressure (paper Sections I
// and IV.A).
//
// The s208.1-like counter is the paper's stress case for the MOT
// strategy: the detection functions D~(x,y) over two copies of the
// state variables grow quickly. This demo sweeps the OBDD node limit
// and shows the trade-off the paper describes for s838.1 — a tighter
// limit forces more three-valued windows, which costs accuracy
// (detected faults) but bounds memory.

#include <cstdio>

#include "bench_data/registry.h"
#include "core/hybrid_sim.h"
#include "core/options.h"
#include "core/parallel_sym_sim.h"
#include "faults/collapse.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace motsim;

int main() {
  const Netlist nl = make_benchmark("s208.1");
  const CollapsedFaultList faults(nl);
  Rng rng(2025);
  const TestSequence seq = random_sequence(nl, 120, rng);

  std::printf("circuit %s: %zu gates, %zu flip-flops, %zu collapsed "
              "faults, %zu test vectors\n\n",
              nl.name().c_str(), nl.gate_count(), nl.dff_count(),
              faults.size(), seq.size());
  std::printf("%10s %9s %9s %8s %8s %10s %9s\n", "node-limit", "detected",
              "fallbacks", "sym-frm", "3v-frm", "peak-nodes", "time[s]");

  for (std::size_t limit : {200u, 1000u, 5000u, 30000u, 200000u}) {
    // The flat SimOptions surface; validate() catches nonsense before
    // any manager is allocated.
    SimOptions opt;
    opt.strategy = Strategy::Mot;
    opt.node_limit = limit;
    opt.fallback_frames = 8;
    const auto checked = opt.validate();
    if (!checked) {
      std::fprintf(stderr, "bad options: %s\n", checked.error().c_str());
      return 1;
    }
    HybridFaultSim sim(nl, faults.faults(), checked->to_hybrid_config());
    Stopwatch timer;
    const HybridResult r = sim.run(seq);
    std::printf("%10zu %9zu %9zu %8zu %8zu %10zu %9.3f%s\n", limit,
                r.detected_count, r.fallback_windows, r.symbolic_frames,
                r.three_valued_frames, r.peak_live_nodes,
                timer.elapsed_seconds(), r.used_fallback ? "  *" : "");
  }

  // The same engine, fault-sharded across worker threads (one private
  // BddManager per shard). The result is bit-identical for any thread
  // count; only the wall clock changes.
  {
    ParallelSymConfig pc;
    pc.hybrid.strategy = Strategy::Mot;
    pc.threads = 0;  // one worker per hardware thread
    ParallelSymSim par(nl, faults.faults(), pc);
    Stopwatch timer;
    const HybridResult r = par.run(seq);
    std::printf("\nfault-sharded (%zu threads): %zu detected in %.3f s\n",
                par.resolved_threads(), r.detected_count,
                timer.elapsed_seconds());
  }

  std::printf(
      "\n* = three-valued fallback windows ran; the coverage is then a\n"
      "    lower bound (the asterisk of the paper's Tables II/III).\n");
  return 0;
}
