// Reproduction of the paper's Fig. 3 example (Section IV):
//
//   A one-flip-flop machine where a stuck-at-0 fault on the second
//   primary input is invisible to the SOT strategy — the output is
//   never a constant — but the MOT detection function
//
//       D(x,y) = [o(x,1) == o^f(y,1)] * [o(x,2) == o^f(y,2)]
//              = [x == !y] * [x == y]
//              = 0
//
//   vanishes, so every pair of initial states is distinguished and the
//   fault is detected (Lemma 1).
//
// The program builds the circuit, prints the symbolic output functions
// of both machines frame by frame, and runs all three strategies.

#include <cstdio>

#include "core/sym_fault_sim.h"
#include "core/sym_true_value.h"
#include "sim3/sim2.h"
#include "tpg/sequences.h"

using namespace motsim;

namespace {

/// o = XNOR(i2, s); next s = XOR(i1, s); built from AND/OR/NOT gates.
Netlist build_fig3(Fault& fault_out) {
  Netlist nl("fig3");
  const NodeIndex i1 = nl.add_input("i1");
  const NodeIndex i2 = nl.add_input("i2");
  const NodeIndex s = nl.add_dff(kNoNode, "s");
  const NodeIndex ni2 = nl.add_gate(GateType::Not, {i2}, "ni2");
  const NodeIndex ns = nl.add_gate(GateType::Not, {s}, "ns");
  const NodeIndex a1 = nl.add_gate(GateType::And, {i2, s}, "a1");
  const NodeIndex a2 = nl.add_gate(GateType::And, {ni2, ns}, "a2");
  const NodeIndex o = nl.add_gate(GateType::Or, {a1, a2}, "o");
  const NodeIndex ni1 = nl.add_gate(GateType::Not, {i1}, "ni1");
  const NodeIndex b1 = nl.add_gate(GateType::And, {i1, ns}, "b1");
  const NodeIndex b2 = nl.add_gate(GateType::And, {ni1, s}, "b2");
  const NodeIndex d = nl.add_gate(GateType::Or, {b1, b2}, "d");
  nl.set_fanins(s, {d});
  nl.mark_output(o);
  nl.finalize();
  fault_out = Fault{FaultSite{i2, kStemPin}, false};  // i2 stuck-at-0
  return nl;
}

const char* describe(const bdd::Bdd& f, const bdd::Bdd& x,
                     const bdd::Bdd& nx) {
  if (f.is_zero()) return "0";
  if (f.is_one()) return "1";
  if (f == x) return "x";
  if (f == nx) return "!x";
  return "<other>";
}

}  // namespace

int main() {
  Fault fault;
  const Netlist nl = build_fig3(fault);
  const TestSequence seq = sequence_from_strings({"11", "10"});

  std::printf("Fig. 3 circuit: o = XNOR(i2, s), next(s) = XOR(i1, s)\n");
  std::printf("fault: %s, test sequence: (i1 i2) = 11, 10\n\n",
              fault_name(nl, fault).c_str());

  // Symbolic fault-free outputs o(x, t).
  bdd::BddManager mgr;
  const StateVars vars(1);
  SymTrueValueSim good(nl, mgr, vars);
  const bdd::Bdd x = mgr.var(vars.x(0));
  const bdd::Bdd nx = !x;
  for (std::size_t t = 0; t < seq.size(); ++t) {
    const auto outs = good.step(seq[t]);
    std::printf("o(x,%zu)  = %s\n", t + 1, describe(outs[0], x, nx));
  }

  // Concrete faulty responses for both initial states show o^f(y,1) =
  // !y and o^f(y,2) = y.
  const auto seq2 = to_bool_sequence(seq);
  for (bool y : {false, true}) {
    Sim2 faulty(nl, fault);
    const auto resp = faulty.run({y}, seq2);
    std::printf("o^f(y=%d) = (%d, %d)\n", y ? 1 : 0, resp[0][0] ? 1 : 0,
                resp[1][0] ? 1 : 0);
  }

  std::printf("\nD(x,y) = [x == !y] * [x == y] == 0  =>  MOT detects.\n\n");

  const std::vector<Fault> faults{fault};
  for (Strategy s : {Strategy::Sot, Strategy::Rmot, Strategy::Mot}) {
    SymFaultSim sim(nl, faults, s);
    const auto r = sim.run(seq);
    std::printf("%-4s: %s\n", to_cstring(s),
                r.detected_count == 1 ? "DETECTED" : "not detected");
  }
  return 0;
}
