// Walking through ID_X-red (paper Section III) on a hand-sized
// circuit: the four-valued I_X summary of every lead, the backward {X}
// pass, the fanout-free-region observabilities, and the resulting
// X-redundant fault set — next to what the three-valued fault
// simulator actually detects.

#include <cstdio>

#include "core/xred.h"
#include "faults/collapse.h"
#include "sim3/fault_sim3.h"
#include "tpg/sequences.h"

using namespace motsim;

int main() {
  // A machine with all three undetectability causes built in:
  //   ffx holds itself        -> always X (cause 1: never binary)
  //   o1 = AND(a, ffx)        -> a's branch blocked by the X sibling
  //   o2 = AND(b, c) with c=1 -> b-sa1 never activated (cause 2)
  //   dead = NOT(b)           -> feeds only the self-holding ffx's cone
  Netlist nl("walkthrough");
  const NodeIndex a = nl.add_input("a");
  const NodeIndex b = nl.add_input("b");
  const NodeIndex c = nl.add_input("c");
  const NodeIndex ffx = nl.add_dff(kNoNode, "ffx");
  const NodeIndex dead = nl.add_gate(GateType::Not, {b}, "dead");
  const NodeIndex hold = nl.add_gate(GateType::And, {ffx, dead}, "hold");
  nl.set_fanins(ffx, {hold});
  const NodeIndex o1 = nl.add_gate(GateType::And, {a, ffx}, "o1");
  const NodeIndex o2 = nl.add_gate(GateType::And, {b, c}, "o2");
  nl.mark_output(o1);
  nl.mark_output(o2);
  nl.finalize();

  // c is tied to 1 by every vector; a and b toggle.
  const TestSequence seq = sequence_from_strings({"111", "011", "101"});
  std::printf("test sequence (a b c): 111, 011, 101\n\n");

  const XRedResult xr = run_id_x_red(nl, seq);

  std::printf("%-6s %-9s %s\n", "lead", "I_X", "observable");
  for (NodeIndex n = 0; n < nl.node_count(); ++n) {
    const FaultSite stem{n, kStemPin};
    std::printf("%-6s %-9s %s\n", nl.gate(n).name.c_str(),
                to_cstring(xr.ix(stem)), xr.observable(stem) ? "yes" : "NO");
  }

  const CollapsedFaultList faults(nl);
  std::printf("\nfault verdicts (%zu collapsed faults):\n", faults.size());
  FaultSim3 sim(nl, faults.faults());
  const auto r = sim.run(seq);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const bool flagged = xr.is_x_redundant(faults.faults()[i]);
    const bool detected = r.status[i] == FaultStatus::DetectedSim3;
    std::printf("  %-12s %-14s %s\n",
                fault_name(nl, faults.faults()[i]).c_str(),
                flagged ? "X-redundant" : "",
                detected ? "detected by X01" : "");
    if (flagged && detected) {
      std::printf("  ^^ SOUNDNESS BUG — flagged fault detected!\n");
      return 1;
    }
  }

  std::printf("\nEvery flagged fault went undetected (the procedure's\n"
              "guarantee); unflagged-but-undetected faults are the cost\n"
              "of using a *sufficient* condition.\n");
  return 0;
}
