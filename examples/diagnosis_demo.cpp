// Fault diagnosis with the symbolic dictionary (core/diagnosis.h).
//
// A tester observed a failing response of a chip whose power-up state
// nobody knows. Which stuck-at fault explains it? Conventional
// dictionaries assume a unique expected response; here the expected
// behaviour is a *set* of responses, so the dictionary stores, per
// fault and per well-defined observation point, whether the fault can
// mismatch there for any power-up state — computed symbolically.

#include <cstdio>

#include "bench_data/s27.h"
#include "circuit/stats.h"
#include "core/diagnosis.h"
#include "faults/collapse.h"
#include "sim3/sim2.h"
#include "tpg/sequences.h"
#include "util/rng.h"

using namespace motsim;

int main() {
  const Netlist nl = make_s27();
  std::printf("circuit %s\n%s\n", nl.name().c_str(),
              CircuitStats::of(nl).to_string().c_str());

  const CollapsedFaultList faults(nl);
  Rng rng(2026);
  const TestSequence seq = random_sequence(nl, 48, rng);

  bdd::BddManager mgr;
  const FaultDictionary dict(nl, mgr, faults.faults(), seq);
  std::printf("dictionary: %zu faults x %zu well-defined observation "
              "points\n\n",
              dict.fault_count(), dict.points().size());

  // Play the defective chip: inject a "mystery" fault, power up in a
  // random state, collect the tester response. (Skip faults that stay
  // silent from the chosen power-up state — a silent chip cannot be
  // diagnosed, only detected by a better sequence.)
  std::vector<bool> powerup(nl.dff_count());
  for (std::size_t i = 0; i < powerup.size(); ++i) powerup[i] = rng.flip();

  std::size_t mystery = faults.size();
  std::vector<FaultDictionary::Candidate> candidates;
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    Sim2 chip(nl, faults.faults()[fi]);
    const auto response = chip.run(powerup, to_bool_sequence(seq));
    candidates = dict.diagnose(response);
    if (!candidates.empty()) {
      mystery = fi;
      break;
    }
  }
  if (mystery == faults.size()) {
    std::printf("no fault was observable from this power-up state\n");
    return 0;
  }
  std::printf("mystery fault: %s (hidden from the diagnoser)\n",
              fault_name(nl, faults.faults()[mystery]).c_str());
  std::printf("diagnosis candidates (of %zu faults):\n", faults.size());
  std::size_t shown = 0;
  for (const auto& c : candidates) {
    std::printf("  %-14s explains %zu mismatch(es)%s\n",
                fault_name(nl, faults.faults()[c.fault_index]).c_str(),
                c.explained,
                c.fault_index == mystery ? "   <-- the mystery fault" : "");
    if (++shown == 8) break;
  }
  std::printf("(%zu candidates total; %zu faults excluded)\n",
              candidates.size(), faults.size() - candidates.size());
  return 0;
}
