// Quickstart: the complete pipeline of the paper on the embedded
// ISCAS-89 circuit s27.
//
//   1. build/load a circuit and its collapsed stuck-at fault list,
//   2. run ID_X-red to eliminate X-redundant faults (Section III),
//   3. run the three-valued fault simulation (the X01 baseline),
//   4. run the symbolic fault simulation on the leftovers under the
//      SOT, rMOT and MOT strategies (Section IV),
//   5. print a per-strategy summary,
//   6. do the whole thing again in one call through SimOptions +
//      run_pipeline — the recommended front door.

#include <cstdio>

#include "bench_data/s27.h"
#include "core/options.h"
#include "core/pipeline.h"
#include "core/sym_fault_sim.h"
#include "core/xred.h"
#include "faults/collapse.h"
#include "sim3/fault_sim3.h"
#include "tpg/sequences.h"
#include "util/rng.h"

int main() {
  using namespace motsim;

  // 1. Circuit and collapsed fault list.
  const Netlist nl = make_s27();
  const CollapsedFaultList collapsed(nl);
  const std::vector<Fault>& faults = collapsed.faults();
  std::printf("circuit %s: %zu inputs, %zu outputs, %zu flip-flops, "
              "%zu gates\n",
              nl.name().c_str(), nl.input_count(), nl.output_count(),
              nl.dff_count(), nl.gate_count());
  std::printf("faults: %zu collapsed (%zu uncollapsed)\n", collapsed.size(),
              collapsed.uncollapsed_size());

  // A random test sequence (the paper's Tables I/II use length 200).
  Rng rng(42);
  const TestSequence sequence = random_sequence(nl, 32, rng);

  // 2. ID_X-red: which faults can this sequence never detect under
  //    three-valued logic?
  const XRedResult xred = run_id_x_red(nl, sequence);
  const std::vector<FaultStatus> initial = xred.classify(faults);
  std::printf("ID_X-red: %zu of %zu faults are X-redundant\n",
              xred.count_x_redundant(faults), faults.size());

  // 3. Three-valued fault simulation on the rest.
  FaultSim3 sim3(nl, faults);
  sim3.set_initial_status(initial);
  const FaultSim3Result r3 = sim3.run(sequence);
  std::printf("X01:  %zu faults detected (of %zu simulated)\n",
              r3.detected_count, r3.simulated_faults);

  // 4. Symbolic fault simulation of the X01 leftovers, one strategy at
  //    a time. Every strategy sees exactly the faults that X01 could
  //    not classify.
  std::vector<FaultStatus> leftover = r3.status;
  for (auto& s : leftover) {
    if (s == FaultStatus::XRedundant) s = FaultStatus::Undetected;
  }
  for (Strategy strategy : {Strategy::Sot, Strategy::Rmot, Strategy::Mot}) {
    SymFaultSim sym(nl, faults, strategy);
    sym.set_initial_status(leftover);
    const SymFaultSimResult rs = sym.run(sequence);
    std::printf("%-4s: %zu additional faults detected (peak %zu OBDD "
                "nodes)\n",
                to_cstring(strategy), rs.detected_count, rs.peak_live_nodes);
  }

  // 6. The one-call equivalent: a flat SimOptions drives all three
  //    stages. `threads = 0` shards the symbolic stage across every
  //    hardware thread — same result, less wall clock.
  SimOptions opt;
  opt.strategy = Strategy::Mot;
  opt.threads = 0;
  const PipelineResult r = run_pipeline(nl, faults, sequence, opt);
  std::printf("pipeline (MOT, fault-sharded): %zu/%zu detected, "
              "first detection at frame %u\n",
              r.summary().detected_total(), faults.size(),
              [&] {
                std::uint32_t first = 0;
                for (std::uint32_t f : r.detect_frame) {
                  if (f != 0 && (first == 0 || f < first)) first = f;
                }
                return first;
              }());

  return 0;
}
