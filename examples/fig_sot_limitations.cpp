// The SOT limitations of the paper's Figs. 1 and 2.
//
// Fig. 1: with an unknown initial state the single-observation-time
// strategy demands one (output, time) point where the fault-free
// response is a constant b and the faulty response the constant !b.
// Output functions that stay state-dependent make that impossible even
// when the machines are clearly different.
//
// Fig. 2: initializing the *fault-free* machine does not help — the
// faulty machine may simply refuse to initialize (here: the
// synchronizing input is the faulty lead itself).

#include <cstdio>

#include "core/sym_fault_sim.h"
#include "core/sym_true_value.h"
#include "sim3/sim2.h"
#include "tpg/sequences.h"

using namespace motsim;

namespace {

/// Fig. 2 machine: next s = AND(i1, s)  (i1 = 0 clears the state),
/// o = XNOR(i2, s). The fault pins the AND's i1-pin to 1, so the
/// faulty machine never clears.
Netlist build_fig2(Fault& fault_out) {
  Netlist nl("fig2");
  const NodeIndex i1 = nl.add_input("i1");
  const NodeIndex i2 = nl.add_input("i2");
  const NodeIndex s = nl.add_dff(kNoNode, "s");
  const NodeIndex d = nl.add_gate(GateType::And, {i1, s}, "d");
  nl.set_fanins(s, {d});
  const NodeIndex ni2 = nl.add_gate(GateType::Not, {i2}, "ni2");
  const NodeIndex ns = nl.add_gate(GateType::Not, {s}, "ns");
  const NodeIndex a1 = nl.add_gate(GateType::And, {i2, s}, "a1");
  const NodeIndex a2 = nl.add_gate(GateType::And, {ni2, ns}, "a2");
  const NodeIndex o = nl.add_gate(GateType::Or, {a1, a2}, "o");
  nl.mark_output(o);
  nl.finalize();
  fault_out = Fault{FaultSite{d, 0}, true};
  return nl;
}

void run_all(const Netlist& nl, const Fault& fault, const TestSequence& seq,
             const char* label) {
  std::printf("%s\n", label);
  const std::vector<Fault> faults{fault};
  for (Strategy s : {Strategy::Sot, Strategy::Rmot, Strategy::Mot}) {
    SymFaultSim sim(nl, faults, s);
    const auto r = sim.run(seq);
    std::printf("  %-4s: %s\n", to_cstring(s),
                r.detected_count == 1 ? "DETECTED" : "not detected");
  }
}

}  // namespace

int main() {
  // ---- Fig. 1: plain SOT blindness --------------------------------------
  // The Fig. 3 machine under the sequence of Fig. 1 ((1,0), (1,0)):
  // the stuck-at-0 on i2 matches the applied value, the responses of
  // the two machines coincide as functions of the initial state — no
  // strategy detects it, and SOT is structurally blind because no
  // output is ever constant.
  {
    Netlist nl("fig1");
    const NodeIndex i1 = nl.add_input("i1");
    const NodeIndex i2 = nl.add_input("i2");
    const NodeIndex s = nl.add_dff(kNoNode, "s");
    const NodeIndex ni2 = nl.add_gate(GateType::Not, {i2}, "ni2");
    const NodeIndex ns = nl.add_gate(GateType::Not, {s}, "ns");
    const NodeIndex a1 = nl.add_gate(GateType::And, {i2, s}, "a1");
    const NodeIndex a2 = nl.add_gate(GateType::And, {ni2, ns}, "a2");
    const NodeIndex o = nl.add_gate(GateType::Or, {a1, a2}, "o");
    const NodeIndex ni1 = nl.add_gate(GateType::Not, {i1}, "ni1");
    const NodeIndex b1 = nl.add_gate(GateType::And, {i1, ns}, "b1");
    const NodeIndex b2 = nl.add_gate(GateType::And, {ni1, s}, "b2");
    const NodeIndex d = nl.add_gate(GateType::Or, {b1, b2}, "d");
    nl.set_fanins(s, {d});
    nl.mark_output(o);
    nl.finalize();
    const Fault fault{FaultSite{i2, kStemPin}, false};

    run_all(nl, fault, sequence_from_strings({"10", "10"}),
            "Fig. 1 — sequence (1,0),(1,0): SOT blind (every strategy "
            "fails here)");
    run_all(nl, fault, sequence_from_strings({"11", "10"}),
            "      — the Fig. 3 sequence (1,1),(1,0) fixes it for MOT:");
  }

  // ---- Fig. 2: initialization does not save SOT --------------------------
  {
    Fault fault;
    const Netlist nl = build_fig2(fault);
    const TestSequence seq = sequence_from_strings({"01", "01"});

    // Show that the fault-free machine does synchronize.
    bdd::BddManager mgr;
    SymTrueValueSim good(nl, mgr, StateVars(1));
    good.step(seq[0]);
    std::printf(
        "\nFig. 2 — after vector (i1 i2) = 01 the fault-free state is "
        "'%c' (initialized),\n",
        to_char(good.state_as_val3()[0]));
    std::printf(
        "         but the faulty machine keeps its unknown state "
        "(i1-pin stuck-at-1):\n");
    run_all(nl, fault, seq,
            "         undetectable under every strategy — Definition 2 "
            "genuinely fails:");
  }

  return 0;
}
