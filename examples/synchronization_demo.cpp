// Why the three-valued lower bound can be arbitrarily bad — the
// synchronizing-sequence view (paper Section I, citing Miczo [11] and
// Cho et al. [5]).
//
// A circuit is easy for three-valued fault simulation exactly when a
// short synchronizing sequence exists (the X's drain out). The counter
// benchmarks have *no* synchronizing sequence at all — their XOR
// feedback permutes the state space — so X01 detects almost nothing,
// yet MOT proves most faults detectable. This demo runs the symbolic
// synchronizing-sequence search next to the fault-simulation pipeline
// on one circuit of each kind.

#include <cstdio>

#include "bench_data/registry.h"
#include "core/pipeline.h"
#include "core/symbolic_fsm.h"
#include "faults/collapse.h"
#include "tpg/sequences.h"
#include "util/rng.h"

using namespace motsim;

int main() {
  for (const char* name : {"s298", "s208.1"}) {
    const Netlist nl = make_benchmark(name);
    const CollapsedFaultList faults(nl);
    std::printf("=== %s (%zu flip-flops, %zu faults) ===\n", name,
                nl.dff_count(), faults.size());

    // Synchronizing-sequence analysis.
    bdd::BddManager mgr;
    const SymbolicFsm fsm(nl, mgr, StateVars(nl.dff_count()));
    const SyncSearchResult sync = find_synchronizing_sequence(fsm, 16, 2048);
    if (sync.found) {
      std::printf("synchronizable: YES (sequence length %zu)\n",
                  sync.sequence.size());
    } else {
      std::printf("synchronizable: no sequence within bounds "
                  "(uncertainty never drops below %.0f states)\n",
                  sync.final_states);
    }

    // Reachability from the all-zero state, for scale.
    bdd::Bdd zero_state = mgr.one();
    for (std::size_t i = 0; i < nl.dff_count(); ++i) {
      zero_state &= !mgr.var(fsm.vars().x(i));
    }
    std::printf("states reachable from 0...0: %.0f of %.0f\n",
                fsm.count_states(fsm.reachable(zero_state)),
                fsm.count_states(fsm.all_states()));

    // Fault-simulation pipeline: X01 vs MOT.
    Rng rng(7);
    const TestSequence seq = random_sequence(nl, 100, rng);
    PipelineConfig cfg;
    cfg.hybrid.strategy = Strategy::Mot;
    const PipelineResult r = run_pipeline(nl, faults.faults(), seq, cfg);
    std::printf("X01 detects %zu, MOT adds %zu  ->  coverage %.1f%%\n\n",
                r.detected_3v, r.detected_symbolic,
                r.summary().coverage() * 100.0);
  }

  std::printf(
      "The synchronizable controller is nearly fully covered by X01; the\n"
      "unsynchronizable counter is invisible to X01 but largely covered\n"
      "by the multiple observation time strategy.\n");
  return 0;
}
