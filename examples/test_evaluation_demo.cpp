// Symbolic test evaluation (paper Section IV.B).
//
// For a MOT-generated test the fault-free response is NOT unique — it
// depends on the unknown power-up state — so a tester cannot simply
// compare against one golden vector. The paper's remedy: carry the
// symbolic output sequence o(x,1..n) and declare the CUT faulty iff
//
//     prod_t prod_j [o_j(x,t) == c_j(t)]  ==  0,
//
// i.e. no initial state could explain the observed response.
//
// This demo builds the symbolic response of the s298-like benchmark,
// then evaluates (a) responses of fault-free machines from several
// power-up states and (b) responses of faulty machines.

#include <cstdio>

#include "bench_data/registry.h"
#include "core/test_eval.h"
#include "faults/collapse.h"
#include "sim3/sim2.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace motsim;

int main() {
  const Netlist nl = make_benchmark("s298");
  Rng rng(7);
  const TestSequence seq = random_sequence(nl, 100, rng);
  const auto seq2 = to_bool_sequence(seq);

  bdd::BddManager mgr;
  Stopwatch build_time;
  const SymbolicResponse response(nl, mgr, seq);
  std::printf("circuit %s: %zu outputs, %zu frames\n", nl.name().c_str(),
              response.output_count(), response.frame_count());
  std::printf("symbolic output sequence: %zu shared OBDD nodes, built in "
              "%.3f s\n\n",
              response.bdd_size(), build_time.elapsed_seconds());

  const TestEvaluator evaluator(response);

  // (a) fault-free machines from random power-up states must pass.
  std::printf("fault-free power-up states:\n");
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<bool> init(nl.dff_count());
    for (std::size_t i = 0; i < init.size(); ++i) init[i] = rng.flip();
    Sim2 cut(nl);
    Stopwatch eval_time;
    const Verdict v = evaluator.evaluate(cut.run(init, seq2));
    std::printf("  trial %d: %-6s (%.4f s)\n", trial,
                v == Verdict::Pass ? "PASS" : "FAULTY",
                eval_time.elapsed_seconds());
  }

  // (b) machines carrying a stuck-at fault.
  std::printf("\nfaulty machines (first few collapsed faults):\n");
  const CollapsedFaultList faults(nl);
  int shown = 0;
  for (const Fault& f : faults.faults()) {
    std::vector<bool> init(nl.dff_count());
    for (std::size_t i = 0; i < init.size(); ++i) init[i] = rng.flip();
    Sim2 cut(nl, f);
    const Verdict v = evaluator.evaluate(cut.run(init, seq2));
    std::printf("  %-14s -> %s\n", fault_name(nl, f).c_str(),
                v == Verdict::Pass ? "pass (undetected by this response)"
                                   : "FAULTY");
    if (++shown == 8) break;
  }

  std::printf(
      "\n(An undetected verdict is expected for some faults: the response\n"
      " of a faulty machine is only *guaranteed* to fail if the fault is\n"
      " MOT-detectable by the sequence and fails for the observed\n"
      " power-up state.)\n");
  return 0;
}
