// Static X-redundancy ablation: what does --lint pruning buy, and
// does it really change nothing?
//
// Runs the full pipeline on registry circuits twice — with and without
// the sequence-independent static analysis (SimOptions::analysis,
// src/analysis/static_xred.h) — and compares:
//
//  * fault-list size entering the simulation stages (statically pruned
//    faults are skipped by every engine),
//  * wall-clock of the whole pipeline (best of N),
//  * and, as a hard correctness gate, the detected-fault sets: the
//    analysis is a pure pre-pass, so the detected set and every
//    detection frame must be bit-identical. Any mismatch exits
//    nonzero — this harness doubles as the soundness check of
//    docs/ANALYSIS.md on real workloads.
//
// Registry circuits are lint-clean by construction, so the pruned
// count is typically 0 there; a synthetic dead-logic variant is added
// to show the pruning actually firing.
//
// Environment (see bench_common.h): MOTSIM_FULL, MOTSIM_VECTORS,
// MOTSIM_SEED.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/pipeline.h"
#include "faults/collapse.h"
#include "faults/fault.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace motsim;
using namespace motsim::bench;

namespace {

struct Measurement {
  double seconds = 1e100;
  PipelineResult result;
};

Measurement measure(const Netlist& nl, const std::vector<Fault>& faults,
                    const TestSequence& seq, bool analysis, int reps) {
  SimOptions opts;
  opts.analysis = analysis;
  Measurement best;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch timer;
    PipelineResult r = run_pipeline(nl, faults, seq, opts);
    const double secs = timer.elapsed_seconds();
    if (secs < best.seconds) {
      best.seconds = secs;
      best.result = std::move(r);
    }
  }
  return best;
}

/// Registry circuit plus a parallel cone of dead logic: NOT/AND chains
/// hanging off the first inputs with no path to any output or
/// flip-flop. Purely additive, so live-fault verdicts are unaffected.
Netlist with_dead_logic(const std::string& name) {
  const Netlist base = make_benchmark(name);
  Netlist nl(base.name() + "+dead");
  std::vector<NodeIndex> map(base.node_count(), kNoNode);
  for (NodeIndex n = 0; n < base.node_count(); ++n) {
    const Gate& g = base.gate(n);
    switch (g.type) {
      case GateType::Input:
        map[n] = nl.add_input(g.name);
        break;
      case GateType::Dff:
        map[n] = nl.add_dff(kNoNode, g.name);
        break;
      default:
        map[n] = nl.add_gate(g.type, {}, g.name);
        break;
    }
  }
  for (NodeIndex n = 0; n < base.node_count(); ++n) {
    std::vector<NodeIndex> fanins;
    for (NodeIndex f : base.gate(n).fanins) fanins.push_back(map[f]);
    if (!fanins.empty()) nl.set_fanins(map[n], fanins);
  }
  for (NodeIndex n : base.outputs()) nl.mark_output(map[n]);
  const NodeIndex a = map[base.inputs()[0]];
  const NodeIndex b = map[base.inputs()[1 % base.input_count()]];
  NodeIndex prev = nl.add_gate(GateType::And, {a, b}, "dead_root");
  for (int i = 0; i < 8; ++i) {
    prev = nl.add_gate(GateType::Not, {prev}, "dead_" + std::to_string(i));
  }
  nl.finalize();
  return nl;
}

/// True when the two runs have identical detected sets and frames.
bool detection_identical(const Netlist& nl, const std::vector<Fault>& faults,
                         const PipelineResult& off,
                         const PipelineResult& on) {
  bool ok = off.status.size() == on.status.size();
  for (std::size_t i = 0; ok && i < off.status.size(); ++i) {
    if (is_detected(off.status[i]) != is_detected(on.status[i]) ||
        off.detect_frame[i] != on.detect_frame[i]) {
      std::fprintf(stderr,
                   "MISMATCH: %s %s: off=%s@%u on=%s@%u\n", nl.name().c_str(),
                   fault_name(nl, faults[i]).c_str(),
                   to_cstring(off.status[i]), off.detect_frame[i],
                   to_cstring(on.status[i]), on.detect_frame[i]);
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main() {
  print_preamble("static X-red ablation",
                 "pipeline with vs without sequence-independent pruning");

  const std::size_t vectors =
      static_cast<std::size_t>(env_int("MOTSIM_VECTORS", 96));
  const int reps = full_mode() ? 5 : 3;

  std::vector<std::string> names{"s526"};
  if (full_mode()) {
    names.push_back("s1238");
    names.push_back("s1423");
  }

  bool all_identical = true;
  std::printf("%-14s %8s %8s %8s %9s %9s %9s\n", "circuit", "faults",
              "pruned", "live", "off[s]", "on[s]", "detected");
  for (const std::string& name : names) {
    for (const bool dead : {false, true}) {
      const Netlist nl = dead ? with_dead_logic(name) : make_benchmark(name);
      const CollapsedFaultList faults(nl);
      Rng rng(workload_seed());
      const TestSequence seq = random_sequence(nl, vectors, rng);

      const Measurement off =
          measure(nl, faults.faults(), seq, false, reps);
      const Measurement on = measure(nl, faults.faults(), seq, true, reps);

      const std::size_t pruned = on.result.static_x_redundant;
      const std::size_t live = faults.size() - pruned;
      std::printf("%-14s %8zu %8zu %8zu %9.3f %9.3f %9zu\n",
                  nl.name().c_str(), faults.size(), pruned, live, off.seconds,
                  on.seconds, on.result.summary().detected_total());

      if (!detection_identical(nl, faults.faults(), off.result, on.result)) {
        all_identical = false;
      }
      if (off.result.summary().detected_total() !=
          on.result.summary().detected_total()) {
        all_identical = false;
      }
    }
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAILURE: static pruning changed a detection result.\n");
    return 1;
  }
  std::printf("\ndetected-fault sets are identical with and without static "
              "pruning on every circuit.\n");
  return 0;
}
