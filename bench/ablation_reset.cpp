// Ablation: design-for-test reset versus the MOT strategy.
//
// The paper's introduction frames MOT as the alternative to hardware
// fixes: "an improvement of the accuracy either requires ... circuit
// modifications ... to permit setting the circuit into a known initial
// state". This harness quantifies both sides on the X01-blind
// circuits: (a) the original machine under X01 and under MOT, and
// (b) the machine with an inserted synchronous reset
// (circuit/transform.h) under plain X01, driving reset high on the
// first vector.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "circuit/transform.h"
#include "core/hybrid_sim.h"
#include "faults/collapse.h"
#include "sim3/fault_sim3.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/table_printer.h"

using namespace motsim;

int main() {
  bench::print_preamble("Ablation", "inserted reset vs the MOT strategy");

  TablePrinter table({"Circ.", "|F|", "X01", "MOT", "|F|+rst",
                      "X01+rst", "extra gates"});

  for (const char* name : {"s208.1", "s420.1", "s510"}) {
    const BenchmarkInfo* info = find_benchmark(name);
    if (info == nullptr) continue;
    const Netlist nl = make_benchmark(*info);
    const Netlist rst = with_synchronous_reset(nl);

    const CollapsedFaultList faults(nl);
    const CollapsedFaultList rst_faults(rst);
    Rng rng(bench::workload_seed());
    const TestSequence seq =
        random_sequence(nl, bench::vector_count() / 2, rng);

    // Original machine: X01 and MOT.
    FaultSim3 x01(nl, faults.faults());
    const auto r_x01 = x01.run(seq);
    HybridConfig cfg;
    cfg.strategy = Strategy::Mot;
    HybridFaultSim mot(nl, faults.faults(), cfg);
    const auto r_mot = mot.run(seq);

    // Reset machine: assert reset on vector 1, deassert afterwards.
    TestSequence rst_seq;
    for (std::size_t t = 0; t < seq.size(); ++t) {
      std::vector<Val3> vec = seq[t];
      vec.push_back(t == 0 ? Val3::One : Val3::Zero);
      rst_seq.push_back(std::move(vec));
    }
    FaultSim3 x01_rst(rst, rst_faults.faults());
    const auto r_rst = x01_rst.run(rst_seq);

    table.add_row({name, std::to_string(faults.size()),
                   std::to_string(r_x01.detected_count),
                   std::to_string(r_mot.detected_count),
                   std::to_string(rst_faults.size()),
                   std::to_string(r_rst.detected_count),
                   std::to_string(rst.gate_count() - nl.gate_count())});
  }

  table.print(std::cout);
  std::printf("\nexpected shape: X01 near zero on the originals; both the "
              "reset (hardware cost)\nand MOT (CPU cost) recover large "
              "coverage — the paper's central trade-off.\n");
  return 0;
}
