// Ablation: serial event-driven vs bit-parallel three-valued fault
// simulation.
//
// The paper's baseline X01 is a serial event-driven simulator with
// fault dropping; production tools since PROOFS pack tens of faulty
// machines into machine words. The two give *identical* results (the
// test-suite asserts so); this harness measures where each wins: the
// serial simulator exploits small fault cones and early drops, the
// parallel one amortizes whole-circuit evaluation over 64 slots.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "faults/collapse.h"
#include "sim3/bitpar_sim3.h"
#include "sim3/fault_sim3.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

using namespace motsim;

int main() {
  bench::print_preamble("Ablation",
                        "serial event-driven vs bit-parallel X01");

  TablePrinter table({"Circ.", "|F|", "detected", "serial[s]",
                      "parallel[s]", "ratio"});

  for (const BenchmarkInfo& info : benchmark_roster()) {
    if (!bench::include_circuit(info, /*quick_gate_cutoff=*/3000)) continue;

    const Netlist nl = make_benchmark(info);
    const CollapsedFaultList faults(nl);
    Rng rng(bench::workload_seed() + info.spec.seed);
    const TestSequence seq =
        random_sequence(nl, bench::vector_count(), rng);

    Stopwatch ts;
    FaultSim3 serial(nl, faults.faults());
    const auto rs = serial.run(seq);
    const double serial_s = ts.elapsed_seconds();

    Stopwatch tp;
    BitParFaultSim3 parallel(nl, faults.faults());
    const auto rp = parallel.run(seq);
    const double parallel_s = tp.elapsed_seconds();

    if (rs.detected_count != rp.detected_count) {
      std::fprintf(stderr, "MISMATCH on %s: serial=%zu parallel=%zu\n",
                   info.spec.name.c_str(), rs.detected_count,
                   rp.detected_count);
      return 1;
    }

    table.add_row({info.spec.name, std::to_string(faults.size()),
                   std::to_string(rs.detected_count),
                   format_fixed(serial_s, 3), format_fixed(parallel_s, 3),
                   format_fixed(parallel_s > 0 ? serial_s / parallel_s : 0,
                                2) +
                       "x"});
  }

  table.print(std::cout);
  std::printf("\nratio > 1: the bit-parallel simulator wins (typically on "
              "fault-dense circuits);\nratio < 1: event-driven dropping "
              "wins (shallow cones, early detections).\n");
  return 0;
}
