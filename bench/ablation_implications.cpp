// Implication-engine ablation: what do static learning, untestability
// pruning and constant tying buy, and do they really change nothing?
//
// Runs the full pipeline on registry circuits twice — with and without
// the sequence-independent static analysis (SimOptions::analysis,
// which now includes src/analysis/implication.h on top of the
// structural X-redundancy pass) — and compares:
//
//  * faults pruned up front (StaticXRed + StaticUntestable verdicts),
//  * every-frame-constant nets the symbolic stage ties to constant
//    OBDDs,
//  * wall-clock of the whole pipeline (best of N),
//  * and, as a hard correctness gate, the detected-fault sets: the
//    analysis is a pure pre-pass, so the detected set and every
//    detection frame must be bit-identical. Any mismatch exits
//    nonzero — this harness doubles as the soundness check of
//    docs/ANALYSIS.md on real workloads.
//
// Registry circuits carry no constant nets, so the interesting numbers
// come from a synthetic "blocked-logic" variant: a reconvergent
// AND(a, NOT a) constant — invisible to structural propagation,
// learnable by the implication engine — gating an extra cone whose
// faults are untestable by conflict or constant blocking.
//
// s5378 runs three-valued only (run_symbolic = false) to keep the CI
// budget; the bit-identity assertion applies there all the same.
//
// Environment (see bench_common.h): MOTSIM_FULL, MOTSIM_VECTORS,
// MOTSIM_SEED.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/implication.h"
#include "bench_common.h"
#include "core/pipeline.h"
#include "faults/collapse.h"
#include "faults/fault.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace motsim;
using namespace motsim::bench;

namespace {

struct Measurement {
  double seconds = 1e100;
  PipelineResult result;
};

Measurement measure(const Netlist& nl, const std::vector<Fault>& faults,
                    const TestSequence& seq, bool analysis, bool symbolic,
                    int reps) {
  SimOptions opts;
  opts.analysis = analysis;
  opts.run_symbolic = symbolic;
  Measurement best;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch timer;
    PipelineResult r = run_pipeline(nl, faults, seq, opts);
    const double secs = timer.elapsed_seconds();
    if (secs < best.seconds) {
      best.seconds = secs;
      best.result = std::move(r);
    }
  }
  return best;
}

/// Registry circuit plus a blocked cone: zero = AND(a, NOT a) is a
/// learnable every-frame constant (structural propagation cannot see
/// it), z = AND(b, zero) is constant through it, and the extra output
/// y = OR(z, b) keeps the cone observable — so z's s-a-1 stays
/// testable while z/SA0 (activation conflict) and z's b-pin faults
/// (blocked by the constant side input) are statically untestable.
/// Purely additive: the original faults' verdicts are unaffected.
Netlist with_blocked_logic(const std::string& name) {
  const Netlist base = make_benchmark(name);
  Netlist nl(base.name() + "+blk");
  std::vector<NodeIndex> map(base.node_count(), kNoNode);
  for (NodeIndex n = 0; n < base.node_count(); ++n) {
    const Gate& g = base.gate(n);
    switch (g.type) {
      case GateType::Input:
        map[n] = nl.add_input(g.name);
        break;
      case GateType::Dff:
        map[n] = nl.add_dff(kNoNode, g.name);
        break;
      default:
        map[n] = nl.add_gate(g.type, {}, g.name);
        break;
    }
  }
  for (NodeIndex n = 0; n < base.node_count(); ++n) {
    std::vector<NodeIndex> fanins;
    for (NodeIndex f : base.gate(n).fanins) fanins.push_back(map[f]);
    if (!fanins.empty()) nl.set_fanins(map[n], fanins);
  }
  for (NodeIndex n : base.outputs()) nl.mark_output(map[n]);
  const NodeIndex a = map[base.inputs()[0]];
  const NodeIndex b = map[base.inputs()[1 % base.input_count()]];
  const NodeIndex na = nl.add_gate(GateType::Not, {a}, "blk_not");
  const NodeIndex zero = nl.add_gate(GateType::And, {a, na}, "blk_zero");
  const NodeIndex z = nl.add_gate(GateType::And, {b, zero}, "blk_z");
  const NodeIndex y = nl.add_gate(GateType::Or, {z, b}, "blk_y");
  nl.mark_output(y);
  nl.finalize();
  return nl;
}

/// True when the two runs have identical detected sets and frames.
bool detection_identical(const Netlist& nl, const std::vector<Fault>& faults,
                         const PipelineResult& off,
                         const PipelineResult& on) {
  bool ok = off.status.size() == on.status.size();
  for (std::size_t i = 0; ok && i < off.status.size(); ++i) {
    if (is_detected(off.status[i]) != is_detected(on.status[i]) ||
        off.detect_frame[i] != on.detect_frame[i]) {
      std::fprintf(stderr,
                   "MISMATCH: %s %s: off=%s@%u on=%s@%u\n", nl.name().c_str(),
                   fault_name(nl, faults[i]).c_str(),
                   to_cstring(off.status[i]), off.detect_frame[i],
                   to_cstring(on.status[i]), on.detect_frame[i]);
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main() {
  print_preamble("implication ablation",
                 "pipeline with vs without static learning, untestability "
                 "pruning and constant tying");

  const std::size_t vectors =
      static_cast<std::size_t>(env_int("MOTSIM_VECTORS", 96));
  const int reps = full_mode() ? 5 : 3;

  // name, run the symbolic stage too?
  std::vector<std::pair<std::string, bool>> workloads{{"s27", true},
                                                      {"s344", true},
                                                      {"s5378", false}};
  if (full_mode()) workloads.push_back({"s1423", true});

  bool all_identical = true;
  std::printf("%-14s %8s %6s %7s %5s %9s %9s %9s\n", "circuit", "faults",
              "xred", "untest", "tied", "off[s]", "on[s]", "detected");
  for (const auto& [name, symbolic] : workloads) {
    for (const bool blocked : {false, true}) {
      const Netlist nl =
          blocked ? with_blocked_logic(name) : make_benchmark(name);
      const CollapsedFaultList faults(nl);
      Rng rng(workload_seed());
      const TestSequence seq = random_sequence(nl, vectors, rng);

      const Measurement off =
          measure(nl, faults.faults(), seq, false, symbolic, reps);
      const Measurement on =
          measure(nl, faults.faults(), seq, true, symbolic, reps);

      const ImplicationEngine eng(nl);
      std::printf("%-14s %8zu %6zu %7zu %5zu %9.3f %9.3f %9zu\n",
                  nl.name().c_str(), faults.size(),
                  on.result.static_x_redundant, on.result.static_untestable,
                  eng.tied_constant_count(), off.seconds, on.seconds,
                  on.result.summary().detected_total());

      if (!detection_identical(nl, faults.faults(), off.result, on.result)) {
        all_identical = false;
      }
      if (off.result.summary().detected_total() !=
          on.result.summary().detected_total()) {
        all_identical = false;
      }
      // The blocked variant must actually exercise the new machinery.
      if (blocked &&
          (on.result.static_untestable == 0 || eng.tied_constant_count() == 0)) {
        std::fprintf(stderr,
                     "FAILURE: %s pruned no untestable fault / tied no "
                     "net.\n",
                     nl.name().c_str());
        all_identical = false;
      }
    }
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAILURE: implication pruning changed a detection "
                 "result.\n");
    return 1;
  }
  std::printf("\ndetected-fault sets are identical with and without the "
              "implication engine on every circuit.\n");
  return 0;
}
