// Checkpoint-interval ablation: what does campaign resumability cost?
//
// Sweeps the checkpoint-synchronization interval K of the hybrid
// engine (core/hybrid_sim.h). Every K completed frames the engine
// converts its symbolic state to three-valued form, persists a
// snapshot through a CheckpointSink and re-seeds — the mechanism that
// makes killed campaigns resumable bit-identically (store/campaign.h,
// docs/CHECKPOINT.md). The sweep measures that overhead against the
// K = 0 baseline (no syncs, no sink) and also reports the coverage
// effect: a sync is a zero-length fallback window, so small K can
// trade a little coverage for fine-grained resumability.
//
// The harness exits nonzero if the default campaign interval (K = 32)
// costs more than 5% wall-clock over the baseline — the budget the
// run store promises.
//
// Environment (see bench_common.h): MOTSIM_FULL, MOTSIM_VECTORS,
// MOTSIM_SEED, plus
//   MOTSIM_THREADS=n   worker threads of the sharded engine (default 2)

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/parallel_sym_sim.h"
#include "faults/collapse.h"
#include "store/run_store.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace motsim;
using namespace motsim::bench;

namespace {

/// Persists every snapshot the way the run store does — serialized
/// CKPT line appended to a file — so the measured overhead includes
/// the real serialization and I/O, not just the engine-side sync.
class FileSink final : public CheckpointSink {
 public:
  explicit FileSink(std::string path) : path_(std::move(path)) {
    std::remove(path_.c_str());
  }
  void on_checkpoint(const ChunkCheckpoint& ck) override {
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    if (f == nullptr) return;
    const std::string line = serialize_checkpoint_line(ck) + "\n";
    std::fwrite(line.data(), 1, line.size(), f);
    std::fclose(f);
    ++count;
  }
  std::size_t count = 0;

 private:
  std::string path_;
};

struct Measurement {
  double seconds = 0;
  std::size_t detected = 0;
  std::size_t syncs = 0;
  std::size_t records = 0;
};

Measurement measure(const Netlist& nl, const std::vector<Fault>& faults,
                    const TestSequence& seq, std::size_t threads,
                    std::size_t interval, const std::string& sink_path,
                    int reps) {
  Measurement best;
  best.seconds = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    ParallelSymConfig cfg;
    cfg.hybrid.strategy = Strategy::Mot;
    cfg.hybrid.checkpoint_interval = interval;
    cfg.threads = threads;
    ParallelSymSim sim(nl, faults, cfg);
    FileSink sink(sink_path);
    if (interval != 0) sim.set_checkpoint_sink(&sink);
    Stopwatch timer;
    const HybridResult r = sim.run(seq);
    const double secs = timer.elapsed_seconds();
    if (secs < best.seconds) {
      best.seconds = secs;
      best.detected = r.detected_count;
      best.syncs = r.checkpoint_syncs;
      best.records = sink.count;
    }
  }
  return best;
}

}  // namespace

int main() {
  print_preamble("checkpoint ablation",
                 "cost of campaign resumability vs interval K");

  const std::size_t threads =
      static_cast<std::size_t>(env_int("MOTSIM_THREADS", 2));
  const std::size_t vectors =
      static_cast<std::size_t>(env_int("MOTSIM_VECTORS", 96));
  const int reps = full_mode() ? 5 : 3;

  std::vector<std::string> names{"s526"};
  if (full_mode()) {
    names.push_back("s1238");
    names.push_back("s1423");
  }
  const std::string sink_path =
      (std::filesystem::temp_directory_path() / "motsim_ckpt_bench.log")
          .string();

  bool budget_met = true;
  for (const std::string& name : names) {
    const Netlist nl = make_benchmark(name);
    const CollapsedFaultList faults(nl);
    Rng rng(workload_seed());
    const TestSequence seq = random_sequence(nl, vectors, rng);
    std::printf("%s: %zu faults, %zu vectors, %zu threads, best of %d\n",
                name.c_str(), faults.size(), seq.size(), threads, reps);
    std::printf("  %6s %9s %9s %10s %7s %9s\n", "K", "detected", "time[s]",
                "overhead", "syncs", "records");

    const Measurement base =
        measure(nl, faults.faults(), seq, threads, 0, sink_path, reps);
    std::printf("  %6s %9zu %9.3f %10s %7zu %9s\n", "off", base.detected,
                base.seconds, "-", base.syncs, "-");

    for (std::size_t k : {std::size_t{8}, std::size_t{32}, std::size_t{128}}) {
      const Measurement m =
          measure(nl, faults.faults(), seq, threads, k, sink_path, reps);
      const double overhead =
          base.seconds > 0 ? (m.seconds - base.seconds) / base.seconds : 0.0;
      std::printf("  %6zu %9zu %9.3f %9.1f%% %7zu %9zu\n", k, m.detected,
                  m.seconds, overhead * 100.0, m.syncs, m.records);
      if (k == 32 && overhead >= 0.05) {
        std::fprintf(stderr,
                     "BUDGET VIOLATION: %s K=32 costs %.1f%% (budget 5%%)\n",
                     name.c_str(), overhead * 100.0);
        budget_met = false;
      }
    }
    std::printf("\n");
  }
  std::remove(sink_path.c_str());
  if (!budget_met) return 1;
  std::printf("checkpoint overhead at the default interval (K=32) is "
              "within the 5%% budget.\n");
  return 0;
}
