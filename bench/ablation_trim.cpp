// Execution-redundancy trimming ablation: what does the static cone &
// activation analysis buy the symbolic stage, and does it really
// change nothing?
//
// Runs the full pipeline on registry circuits twice — with and without
// SimOptions::trim (quiescent-frame skipping, SOT/rMOT activation
// parking, shared MOT equality products, cluster-aware shard
// assignment; docs/ANALYSIS.md) — and compares:
//
//  * symbolic fault-frames simulated vs skipped (the trimmed run
//    reports how much propagation it proved redundant),
//  * faults parked for good and MOT frames served from the shared
//    fault-free equality product,
//  * wall-clock of the whole pipeline (best of N),
//  * and, as a hard correctness gate, the detected-fault sets:
//    trimming is bit-identical by construction, so the detected set
//    and every detection frame must match exactly. Any mismatch exits
//    nonzero — this harness doubles as the soundness check of
//    docs/ANALYSIS.md's trimming section on real workloads.
//
// s5378 is the headline workload (the gate below also requires
// frames_skipped > 0 there). It runs with the default soft node limit
// — the fallback-window schedule is identical either way because the
// trigger reads live nodes, which trimming leaves bit-identical — but
// with a raised hard_limit_factor: the mid-frame hard abort watches
// ALLOCATED nodes, the one counter trimming legitimately changes, so
// the extra headroom keeps that abort out of both runs (see
// docs/DESIGN.md).
//
// Environment (see bench_common.h): MOTSIM_FULL, MOTSIM_VECTORS,
// MOTSIM_SEED.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/pipeline.h"
#include "faults/collapse.h"
#include "faults/fault.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace motsim;
using namespace motsim::bench;

namespace {

struct Workload {
  std::string name;
  std::size_t vectors;
  std::size_t hard_limit_factor;  ///< 0 = SimOptions default
  int reps;
};

struct Measurement {
  double seconds = 1e100;
  PipelineResult result;
};

Measurement measure(const Netlist& nl, const std::vector<Fault>& faults,
                    const TestSequence& seq, const Workload& w, bool trim) {
  SimOptions opts;
  opts.analysis = true;  // the pipeline then feeds the enriched plan
  opts.trim = trim;
  if (w.hard_limit_factor != 0) opts.hard_limit_factor = w.hard_limit_factor;
  Measurement best;
  for (int rep = 0; rep < w.reps; ++rep) {
    Stopwatch timer;
    PipelineResult r = run_pipeline(nl, faults, seq, opts);
    const double secs = timer.elapsed_seconds();
    if (secs < best.seconds) {
      best.seconds = secs;
      best.result = std::move(r);
    }
  }
  return best;
}

/// True when the two runs have identical detected sets and frames.
bool detection_identical(const Netlist& nl, const std::vector<Fault>& faults,
                         const PipelineResult& off,
                         const PipelineResult& on) {
  bool ok = off.status.size() == on.status.size();
  for (std::size_t i = 0; ok && i < off.status.size(); ++i) {
    if (is_detected(off.status[i]) != is_detected(on.status[i]) ||
        off.detect_frame[i] != on.detect_frame[i]) {
      std::fprintf(stderr, "MISMATCH: %s %s: off=%s@%u on=%s@%u\n",
                   nl.name().c_str(), fault_name(nl, faults[i]).c_str(),
                   to_cstring(off.status[i]), off.detect_frame[i],
                   to_cstring(on.status[i]), on.detect_frame[i]);
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main() {
  print_preamble("trimming ablation",
                 "pipeline with vs without execution-redundancy trimming "
                 "in the symbolic stage");

  const bool full = full_mode();
  // Per-workload vector budgets: the giants dominate the runtime, so
  // they get shorter sequences unless MOTSIM_FULL asks for more.
  const std::size_t v = static_cast<std::size_t>(env_int("MOTSIM_VECTORS", 0));
  std::vector<Workload> workloads{
      {"s27", v != 0 ? v : 96, 0, full ? 5 : 3},
      {"s344", v != 0 ? v : 96, 0, full ? 5 : 3},
      {"s5378", v != 0 ? v : (full ? 48 : 16), 64, full ? 3 : 1},
  };

  bool ok = true;
  std::printf("%-10s %8s %10s %10s %8s %8s %9s %9s %7s\n", "circuit",
              "faults", "skipped", "shared", "parked", "detect", "off[s]",
              "on[s]", "win");
  for (const Workload& w : workloads) {
    const Netlist nl = make_benchmark(w.name);
    const CollapsedFaultList faults(nl);
    Rng rng(workload_seed());
    const TestSequence seq = random_sequence(nl, w.vectors, rng);

    const Measurement off = measure(nl, faults.faults(), seq, w, false);
    const Measurement on = measure(nl, faults.faults(), seq, w, true);

    const double win = off.seconds > 0 ? off.seconds / on.seconds : 1.0;
    std::printf("%-10s %8zu %10llu %10llu %8llu %8zu %9.3f %9.3f %6.2fx\n",
                nl.name().c_str(), faults.size(),
                static_cast<unsigned long long>(on.result.frames_skipped),
                static_cast<unsigned long long>(
                    on.result.faultfree_evals_shared),
                static_cast<unsigned long long>(
                    on.result.faults_terminated_early),
                on.result.summary().detected_total(), off.seconds, on.seconds,
                win);

    // Hard gates. (1) bit-identity: verdicts and frames must match.
    if (!detection_identical(nl, faults.faults(), off.result, on.result)) {
      ok = false;
    }
    // (2) the untrimmed run must report zero trim work...
    if (off.result.frames_skipped != 0 ||
        off.result.faults_terminated_early != 0 ||
        off.result.faultfree_evals_shared != 0) {
      std::fprintf(stderr, "FAILURE: %s reported trim work with trim off.\n",
                   nl.name().c_str());
      ok = false;
    }
    // ...and (3) the trimmed run must actually skip frames on the
    // headline circuit (input cones carry concrete per-frame constants
    // on s5378, so zero skips means the pass is dead).
    if (w.name == "s5378" && on.result.frames_skipped == 0) {
      std::fprintf(stderr, "FAILURE: trimming skipped nothing on s5378.\n");
      ok = false;
    }
  }
  if (!ok) {
    std::fprintf(stderr, "FAILURE: trimming changed a detection result or "
                         "did no work.\n");
    return 1;
  }
  std::printf("\ndetected-fault sets are bit-identical with and without "
              "trimming on every circuit.\n");
  return 0;
}
