// Robustness companion to Table II: the strategy ordering must not be
// an artifact of one random sequence. The core comparison is repeated
// over several workload seeds and reported as min / mean / max of the
// detection sums — the ordering SOT <= rMOT <= MOT has to hold for
// every single seed (the harness fails otherwise).

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/hybrid_sim.h"
#include "core/xred.h"
#include "faults/collapse.h"
#include "sim3/fault_sim3.h"
#include "tpg/sequences.h"
#include "util/table_printer.h"

using namespace motsim;

int main() {
  bench::print_preamble("Table II (variance)",
                        "strategy ordering across workload seeds");

  const char* circuits[] = {"s208.1", "s298", "s344", "s386", "s510"};
  const std::uint64_t seeds[] = {1, 2, 3, 4, 5};

  TablePrinter table({"seed", "SOT", "rMOT", "MOT", "ordering"});
  std::size_t sums[3][5] = {};

  for (std::size_t si = 0; si < 5; ++si) {
    std::size_t det[3] = {0, 0, 0};
    for (const char* name : circuits) {
      const Netlist nl = make_benchmark(name);
      const CollapsedFaultList faults(nl);
      Rng rng(seeds[si] * 7919);
      const TestSequence seq =
          random_sequence(nl, bench::vector_count() / 2, rng);

      // The Table II protocol: X01 leftovers go to each strategy.
      const XRedResult xr = run_id_x_red(nl, seq);
      FaultSim3 sim3(nl, faults.faults());
      sim3.set_initial_status(xr.classify(faults.faults()));
      const auto r3 = sim3.run(seq);
      std::vector<FaultStatus> leftover = r3.status;
      for (auto& s : leftover) {
        if (s == FaultStatus::XRedundant) s = FaultStatus::Undetected;
      }

      const Strategy strategies[3] = {Strategy::Sot, Strategy::Rmot,
                                      Strategy::Mot};
      for (int k = 0; k < 3; ++k) {
        HybridConfig cfg;
        cfg.strategy = strategies[k];
        HybridFaultSim sym(nl, faults.faults(), cfg);
        sym.set_initial_status(leftover);
        det[k] += sym.run(seq).detected_count;
      }
    }
    for (int k = 0; k < 3; ++k) sums[k][si] = det[k];
    const bool ordered = det[0] <= det[1] && det[1] <= det[2];
    table.add_row({std::to_string(seeds[si]), std::to_string(det[0]),
                   std::to_string(det[1]), std::to_string(det[2]),
                   ordered ? "SOT<=rMOT<=MOT" : "VIOLATED"});
    if (!ordered) {
      table.print(std::cout);
      std::fprintf(stderr, "ORDERING VIOLATION at seed %llu\n",
                   static_cast<unsigned long long>(seeds[si]));
      return 1;
    }
  }

  auto stats_row = [&](const char* label, auto f) {
    return std::vector<std::string>{
        label, std::to_string(f(sums[0])), std::to_string(f(sums[1])),
        std::to_string(f(sums[2])), ""};
  };
  table.add_separator();
  table.add_row(stats_row("min", [](const std::size_t* v) {
    return *std::min_element(v, v + 5);
  }));
  table.add_row(stats_row("max", [](const std::size_t* v) {
    return *std::max_element(v, v + 5);
  }));
  table.print(std::cout);
  std::printf("\n(5 seeds x 5 circuits; paper's single-workload sums were "
              "944/1082/1263 on the real ISCAS-89 set)\n");
  return 0;
}
