// Ablation: contribution of the ID_X-red steps.
//
// Step 1 alone (the activation condition from the I_X summary) already
// flags faults whose leads never carry the required binary value; step
// 2 (iterated backward {X} pass) adds leads whose every path to an
// output is blocked; step 3 (fanout-free-region observability) adds
// leads masked by controlling siblings. The harness reports the flag
// counts per configuration across the roster's small and medium
// circuits.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/xred.h"
#include "faults/collapse.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

using namespace motsim;

int main() {
  bench::print_preamble("Ablation", "ID_X-red step contributions");

  TablePrinter table({"Circ.", "|F|", "step1", "+step2", "+step3(full)",
                      "full t[ms]"});

  std::size_t tot1 = 0, tot2 = 0, tot3 = 0;
  for (const BenchmarkInfo& info : benchmark_roster()) {
    if (!bench::include_circuit(info, /*quick_gate_cutoff=*/3000)) continue;

    const Netlist nl = make_benchmark(info);
    const CollapsedFaultList faults(nl);
    Rng rng(bench::workload_seed() + info.spec.seed);
    const TestSequence seq =
        random_sequence(nl, bench::vector_count(), rng);

    XRedOptions step1_only;
    step1_only.backward_pass = false;
    step1_only.observability = false;
    XRedOptions steps12;
    steps12.observability = false;

    const std::size_t n1 =
        run_id_x_red(nl, seq, step1_only).count_x_redundant(faults.faults());
    const std::size_t n2 =
        run_id_x_red(nl, seq, steps12).count_x_redundant(faults.faults());
    Stopwatch timer;
    const std::size_t n3 =
        run_id_x_red(nl, seq).count_x_redundant(faults.faults());
    const double full_ms = timer.elapsed_ms();

    tot1 += n1;
    tot2 += n2;
    tot3 += n3;

    table.add_row({info.spec.name, std::to_string(faults.size()),
                   std::to_string(n1), std::to_string(n2),
                   std::to_string(n3), format_fixed(full_ms, 2)});

    // Monotonicity invariant: each step can only add flags.
    if (n1 > n2 || n2 > n3) {
      std::fprintf(stderr, "INVARIANT VIOLATION on %s: %zu > %zu > %zu\n",
                   info.spec.name.c_str(), n1, n2, n3);
      return 1;
    }
  }

  table.add_separator();
  table.add_row({"SUM", "", std::to_string(tot1), std::to_string(tot2),
                 std::to_string(tot3), ""});
  table.print(std::cout);
  std::printf("\nexpected shape: step1 <= +step2 <= full, with the "
              "backward pass dominating on counter-style circuits.\n");
  return 0;
}
