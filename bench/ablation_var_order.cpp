// Ablation: interleaved versus blocked x/y variable order for the
// full MOT strategy.
//
// DESIGN.md §5 calls out the interleaved order (x_0,y_0,x_1,y_1,...)
// as a key design decision: the MOT detection function is a product of
// near-equality relations [o(x,t) == o^f(y,t)], whose OBDDs stay
// linear in the number of memory elements when the two variable copies
// are interleaved — and can grow exponentially when they are separated
// into blocks. The harness runs MOT with both layouts and compares
// peak node counts, fallback behaviour and wall time.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/hybrid_sim.h"
#include "faults/collapse.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

using namespace motsim;

int main() {
  bench::print_preamble("Ablation",
                        "interleaved vs blocked x/y order for MOT");

  TablePrinter table({"Circ.", "layout", "detected", "peak-nodes",
                      "fallbacks", "time[s]"});

  for (const char* name : {"s208.1", "s420.1", "s298", "s344", "s510"}) {
    const BenchmarkInfo* info = find_benchmark(name);
    if (info == nullptr) continue;

    const Netlist nl = make_benchmark(*info);
    const CollapsedFaultList faults(nl);
    Rng rng(bench::workload_seed());
    const TestSequence seq =
        random_sequence(nl, bench::vector_count() / 2, rng);

    for (VarLayout layout : {VarLayout::Interleaved, VarLayout::Blocked}) {
      HybridConfig cfg;
      cfg.strategy = Strategy::Mot;
      cfg.layout = layout;
      cfg.node_limit = 30000;
      HybridFaultSim sim(nl, faults.faults(), cfg);
      Stopwatch timer;
      const auto r = sim.run(seq);
      table.add_row(
          {name,
           layout == VarLayout::Interleaved ? "interleaved" : "blocked",
           std::to_string(r.detected_count),
           std::to_string(r.peak_live_nodes),
           std::to_string(r.fallback_windows),
           format_fixed(timer.elapsed_seconds(), 3)});
    }
  }

  table.print(std::cout);
  std::printf(
      "\nexpected shape: where the detection functions carry x~y "
      "equality structure\n(s298/s344-style controllers) the blocked "
      "layout costs noticeably more nodes;\non fallback-dominated runs "
      "the picture blurs. Detected counts must match:\nthe layout is a "
      "space/time knob, never a semantics knob.\n");
  return 0;
}
