// Ablation: what guides the test generator — three-valued or symbolic
// MOT detections?
//
// The paper's closing argument (Section I): "MOT-based test generation
// should be supported by a MOT-based fault simulation to obtain the
// full power of the MOT strategy." This harness builds, per circuit,
// equally budgeted sequences with (a) plain random vectors, (b) the
// X01-guided greedy compactor, and (c) the MOT-guided generator, and
// scores all three under full MOT. On three-valued-blind circuits only
// (c) makes progress.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/hybrid_sim.h"
#include "faults/collapse.h"
#include "tpg/compaction.h"
#include "tpg/mot_tpg.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

using namespace motsim;

namespace {

std::size_t mot_score(const Netlist& nl, const std::vector<Fault>& faults,
                      const TestSequence& seq) {
  if (seq.empty()) return 0;
  HybridConfig hc;
  hc.strategy = Strategy::Mot;
  HybridFaultSim sim(nl, faults, hc);
  return sim.run(seq).detected_count;
}

}  // namespace

int main() {
  bench::print_preamble("Ablation", "X01-guided vs MOT-guided generation");

  TablePrinter table({"Circ.", "|F|", "budget", "random", "X01-guided",
                      "MOT-guided", "gen t[s]"});

  for (const char* name : {"s27", "s208.1", "s298", "s344"}) {
    const BenchmarkInfo* info = find_benchmark(name);
    if (info == nullptr) continue;
    const Netlist nl = make_benchmark(*info);
    const CollapsedFaultList faults(nl);

    const std::size_t budget = 48;

    // (a) plain random.
    Rng rng(bench::workload_seed());
    const TestSequence rand_seq = random_sequence(nl, budget, rng);

    // (b) X01-guided compaction.
    CompactionConfig comp;
    comp.seed = bench::workload_seed();
    comp.segment_length = 6;
    comp.stale_rounds = 3;
    comp.max_length = budget;
    const TestSequence x01_seq =
        generate_deterministic_sequence(nl, faults.faults(), comp).sequence;

    // (c) MOT-guided.
    MotTpgConfig mot;
    mot.seed = bench::workload_seed();
    mot.segment_length = 6;
    mot.stale_rounds = 3;
    mot.max_length = budget;
    Stopwatch gen_timer;
    const MotTpgResult mot_result =
        generate_mot_sequence(nl, faults.faults(), mot);
    const double gen_s = gen_timer.elapsed_seconds();

    table.add_row(
        {name, std::to_string(faults.size()), std::to_string(budget),
         std::to_string(mot_score(nl, faults.faults(), rand_seq)),
         std::to_string(mot_score(nl, faults.faults(), x01_seq)),
         std::to_string(mot_result.detected), format_fixed(gen_s, 2)});
  }

  table.print(std::cout);
  std::printf("\nexpected shape: on three-valued-blind circuits "
              "(s208.1) the X01-guided generator stalls\nnear zero while "
              "the MOT-guided one builds coverage; on synchronizable "
              "circuits\nall three roughly tie.\n");
  return 0;
}
