// Ablation: MOT accuracy and run time versus the OBDD node limit.
//
// DESIGN.md calls out the hybrid space limit as the central design
// trade-off: the paper's s838.1 row is the famous anomaly where full
// MOT detects FEWER faults (11) than rMOT (12) because MOT's larger
// OBDDs trip the 30,000-node limit more often, forcing more (less
// accurate) three-valued windows. This harness sweeps the limit on the
// two counter-style circuits and shows accuracy growing monotonically
// with space — and rMOT beating MOT when space is tight.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/hybrid_sim.h"
#include "faults/collapse.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

using namespace motsim;

int main() {
  bench::print_preamble("Ablation", "MOT/rMOT accuracy vs OBDD node limit");

  const char* circuits[] = {"s208.1", "s420.1"};
  const std::size_t limits[] = {300, 1000, 3000, 10000, 30000, 100000};

  for (const char* name : circuits) {
    const BenchmarkInfo* info = find_benchmark(name);
    if (info == nullptr) continue;
    if (!bench::full_mode() && info->spec.target_gates > 700) continue;

    const Netlist nl = make_benchmark(*info);
    const CollapsedFaultList faults(nl);
    Rng rng(bench::workload_seed());
    const TestSequence seq =
        random_sequence(nl, bench::vector_count() / 2, rng);

    std::printf("circuit %s (%zu faults, %zu vectors):\n", name,
                faults.size(), seq.size());
    TablePrinter table({"limit", "rMOT", "rMOT wins", "MOT", "MOT t[s]",
                        "fallbacks", "3v frames"});
    for (std::size_t limit : limits) {
      HybridConfig rcfg;
      rcfg.strategy = Strategy::Rmot;
      rcfg.node_limit = limit;
      HybridFaultSim rsim(nl, faults.faults(), rcfg);
      const auto rr = rsim.run(seq);

      HybridConfig mcfg;
      mcfg.strategy = Strategy::Mot;
      mcfg.node_limit = limit;
      HybridFaultSim msim(nl, faults.faults(), mcfg);
      Stopwatch timer;
      const auto rm = msim.run(seq);

      table.add_row({std::to_string(limit),
                     std::to_string(rr.detected_count),
                     rr.detected_count > rm.detected_count ? "YES" : "no",
                     std::to_string(rm.detected_count),
                     format_fixed(timer.elapsed_seconds(), 3),
                     std::to_string(rm.fallback_windows),
                     std::to_string(rm.three_valued_frames)});
    }
    table.print(std::cout);
    std::printf("\n");
  }

  std::printf("expected shape: MOT detections grow with the limit; under "
              "tight limits rMOT can beat MOT\n(the paper's s838.1 "
              "anomaly: rMOT 12 vs MOT 11 at 30k nodes).\n");
  return 0;
}
