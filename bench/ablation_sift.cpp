// Ablation: dynamic variable reordering (sifting) on the symbolic
// output sequences of Table IV.
//
// The simulators run with the fixed interleaved order the paper
// assumes; this harness measures how much a post-hoc sift of the
// stored symbolic response could save — interesting precisely where
// our synthetic stand-ins blow past the paper's sizes (the s953-like
// TwinPaths machine stores six-figure node counts under the default
// order).

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/test_eval.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

using namespace motsim;

int main() {
  bench::print_preamble("Ablation",
                        "sifting the symbolic output sequence (Table IV)");

  TablePrinter table({"Circ.", "|T|", "size before", "size after",
                      "reduction", "sift t[s]"});

  for (const char* name : {"s208.1", "s510", "s953"}) {
    const BenchmarkInfo* info = find_benchmark(name);
    if (info == nullptr) continue;
    const Netlist nl = make_benchmark(*info);
    Rng rng(bench::workload_seed() + info->spec.seed);
    const std::size_t frames =
        std::string(name) == "s953" ? 60 : bench::vector_count() / 2;
    const TestSequence seq = random_sequence(nl, frames, rng);

    bdd::BddManager mgr;
    const SymbolicResponse response(nl, mgr, seq);
    const std::size_t before = response.bdd_size();

    Stopwatch timer;
    mgr.reorder_sift(2.0);
    const double sift_s = timer.elapsed_seconds();
    const std::size_t after = response.bdd_size();

    const double reduction =
        before == 0 ? 0.0
                    : 100.0 * (1.0 - static_cast<double>(after) /
                                         static_cast<double>(before));
    table.add_row({name, std::to_string(seq.size()),
                   std::to_string(before), std::to_string(after),
                   format_fixed(reduction, 1) + "%",
                   format_fixed(sift_s, 3)});
  }

  table.print(std::cout);
  std::printf("\n(the simulators keep the fixed interleaved order — the "
              "MOT rename depends on it;\nsifting is applied to the stored "
              "response only, where order is free)\n");
  return 0;
}
