// S-graph ablation: what does the synchronization-depth analysis buy
// the symbolic stage, and does the MOT -> SOT downgrade really change
// nothing?
//
// Runs the full pipeline twice — with and without SimOptions::sgraph
// (SCC condensation, per-fault observation horizons, the rMOT/MOT
// downgrade and the horizon-aware shard assignment; docs/ANALYSIS.md
// pass 6) — across every observation strategy and across the serial
// and the sharded engine, and compares:
//
//  * faults downgraded to SOT-equivalent updates and the nontrivial
//    SCC count the pass reported,
//  * wall-clock of the whole pipeline (best of N),
//  * and, as a hard correctness gate, the detected-fault sets: the
//    downgrade is bit-identical by OBDD canonicity, so the detected
//    set and every detection frame must match exactly between the
//    sgraph-on and sgraph-off runs AND between thread counts. Any
//    mismatch exits nonzero — this harness doubles as the soundness
//    check of docs/ANALYSIS.md's pass-6 section on real workloads.
//
// Workloads are chosen so the gates bite from both sides:
//
//  * the acyclic-pipeline synthetic profile, whose s-graph has no
//    cycles at all — every fault horizon is finite, so the on-run
//    must report mot_downgrades > 0 (a dead pass fails loudly);
//  * s27 proper, whose three flip-flops all sit in nontrivial SCCs
//    ({G5,G6} plus the G7 self-loop) — every horizon is unbounded, so
//    the on-run must report mot_downgrades == 0 (a pass that
//    downgrades here is unsound, not just dead);
//  * an s27-derived circuit with an added input-only comparator
//    output carrying a redundant fault (GR1 stuck-at-1 on G0 OR NOT
//    G0): the fault survives the three-valued stage forever, its
//    observation cone never crosses a flip-flop, so its horizon is 0
//    and the on-run must downgrade it — mot_downgrades > 0 on an
//    s27-class circuit.
//
// The analysis stage stays OFF here (unlike ablation_trim): the
// static X-red analysis would prune the deliberately redundant
// comparator fault before the symbolic stage ever saw it.
//
// Environment (see bench_common.h): MOTSIM_FULL, MOTSIM_VECTORS,
// MOTSIM_SEED.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_data/s27.h"
#include "bench_data/synth_gen.h"
#include "circuit/bench_io.h"
#include "core/pipeline.h"
#include "faults/collapse.h"
#include "faults/fault.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace motsim;
using namespace motsim::bench;

namespace {

struct Workload {
  Netlist nl;
  std::size_t vectors;
  /// Whether the on-run must (true) or must not (false) downgrade
  /// rMOT/MOT faults — both directions are hard gates.
  bool expect_downgrades;
  int reps;
};

struct Measurement {
  double seconds = 1e100;
  PipelineResult result;
};

Measurement measure(const Netlist& nl, const std::vector<Fault>& faults,
                    const TestSequence& seq, Strategy strategy,
                    std::size_t threads, int reps, bool sgraph) {
  SimOptions opts;
  opts.strategy = strategy;
  opts.threads = threads;
  opts.chunk_size = 8;  // several shards even on these small lists
  opts.sgraph = sgraph;
  Measurement best;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch timer;
    PipelineResult r = run_pipeline(nl, faults, seq, opts);
    const double secs = timer.elapsed_seconds();
    if (secs < best.seconds) {
      best.seconds = secs;
      best.result = std::move(r);
    }
  }
  return best;
}

/// True when the two runs have identical detected sets and frames.
bool detection_identical(const Netlist& nl, const std::vector<Fault>& faults,
                         const char* what, const PipelineResult& a,
                         const PipelineResult& b) {
  bool ok = a.status.size() == b.status.size();
  for (std::size_t i = 0; ok && i < a.status.size(); ++i) {
    if (is_detected(a.status[i]) != is_detected(b.status[i]) ||
        a.detect_frame[i] != b.detect_frame[i]) {
      std::fprintf(stderr, "MISMATCH (%s): %s %s: a=%s@%u b=%s@%u\n", what,
                   nl.name().c_str(), fault_name(nl, faults[i]).c_str(),
                   to_cstring(a.status[i]), a.detect_frame[i],
                   to_cstring(b.status[i]), b.detect_frame[i]);
      ok = false;
    }
  }
  return ok;
}

/// s27 plus an input-only comparator output whose GR1 stuck-at-1
/// fault is combinationally redundant (G0 OR NOT G0 is constant one):
/// undetectable by any stage, so it stays live in the symbolic engine
/// with observation horizon 0 — the deterministic downgrade witness.
Netlist make_s27_comparator() {
  std::string text = s27_bench_text();
  text +=
      "\nOUTPUT(CMP)\n"
      "GN0 = NOT(G0)\n"
      "GR1 = OR(G0, GN0)\n"
      "CMP = AND(GR1, G1)\n";
  return parse_bench_string(text, "s27cmp");
}

const char* to_label(Strategy s) {
  switch (s) {
    case Strategy::Sot: return "sot";
    case Strategy::Rmot: return "rmot";
    default: return "mot";
  }
}

}  // namespace

int main() {
  print_preamble("s-graph ablation",
                 "pipeline with vs without the synchronization-depth "
                 "analysis and its rMOT/MOT downgrade");

  const bool full = full_mode();
  const std::size_t v = static_cast<std::size_t>(env_int("MOTSIM_VECTORS", 0));
  const int reps = full ? 5 : 3;

  std::vector<Workload> workloads;
  // Feedback-free chains: 10 flip-flops split into three chains, so
  // the deepest synchronization depth is 4 and 48 frames leave every
  // surviving rMOT/MOT fault plenty of room to downgrade.
  workloads.push_back({generate_circuit(SynthSpec{
                           "pipe-acyclic", 5, 3, 10, 80,
                           CircuitStyle::AcyclicPipeline, workload_seed()}),
                       v != 0 ? v : 48, true, reps});
  workloads.push_back({make_benchmark("s27"), v != 0 ? v : 96, false, reps});
  workloads.push_back({make_s27_comparator(), v != 0 ? v : 96, true, reps});

  const Strategy strategies[] = {Strategy::Sot, Strategy::Rmot, Strategy::Mot};
  const std::size_t thread_counts[] = {1, 4};

  bool ok = true;
  std::printf("%-12s %-5s %8s %10s %6s %8s %9s %9s %7s\n", "circuit",
              "strat", "faults", "downgrades", "sccs", "detect", "off[s]",
              "on[s]", "win");
  for (const Workload& w : workloads) {
    const Netlist& nl = w.nl;
    const CollapsedFaultList faults(nl);
    Rng rng(workload_seed());
    const TestSequence seq = random_sequence(nl, w.vectors, rng);

    for (Strategy strategy : strategies) {
      // threads=1 exercises HybridFaultSim, threads=4 ParallelSymSim;
      // the on-runs across thread counts must also agree with each
      // other (the horizon-aware partition may not leak into results).
      std::vector<Measurement> on_runs;
      for (std::size_t threads : thread_counts) {
        const Measurement off = measure(nl, faults.faults(), seq, strategy,
                                        threads, w.reps, false);
        const Measurement on = measure(nl, faults.faults(), seq, strategy,
                                       threads, w.reps, true);

        // Hard gates. (1) bit-identity on vs off.
        if (!detection_identical(nl, faults.faults(), "sgraph on vs off",
                                 off.result, on.result)) {
          ok = false;
        }
        // (2) the off-run must report zero s-graph work.
        if (off.result.mot_downgrades != 0 || off.result.sgraph_sccs != 0) {
          std::fprintf(stderr,
                       "FAILURE: %s reported s-graph work with sgraph off.\n",
                       nl.name().c_str());
          ok = false;
        }
        // (3) downgrades happen exactly where the structure says: on
        // acyclic / comparator cones, never past a nontrivial SCC.
        // SOT never downgrades — there is nothing to collapse.
        const bool expect =
            w.expect_downgrades && strategy != Strategy::Sot;
        if (expect && on.result.mot_downgrades == 0) {
          std::fprintf(stderr,
                       "FAILURE: %s/%s/t%zu: no rMOT/MOT fault downgraded on "
                       "a finite-horizon workload.\n",
                       nl.name().c_str(), to_label(strategy), threads);
          ok = false;
        }
        if (!expect && on.result.mot_downgrades != 0) {
          std::fprintf(stderr,
                       "FAILURE: %s/%s/t%zu: downgraded %llu faults on a "
                       "workload with no finite horizon.\n",
                       nl.name().c_str(), to_label(strategy), threads,
                       static_cast<unsigned long long>(
                           on.result.mot_downgrades));
          ok = false;
        }
        // (4) no fallback windows — these workloads fit the default
        // node budget, and fallback would make gate (1) vacuous.
        if (off.result.used_fallback || on.result.used_fallback) {
          std::fprintf(stderr, "FAILURE: %s/%s/t%zu used fallback.\n",
                       nl.name().c_str(), to_label(strategy), threads);
          ok = false;
        }
        on_runs.push_back(on);
        if (threads == 1) {
          const double win =
              off.seconds > 0 ? off.seconds / on.seconds : 1.0;
          std::printf("%-12s %-5s %8zu %10llu %6zu %8zu %9.3f %9.3f %6.2fx\n",
                      nl.name().c_str(), to_label(strategy), faults.size(),
                      static_cast<unsigned long long>(
                          on.result.mot_downgrades),
                      on.result.sgraph_sccs,
                      on.result.summary().detected_total(), off.seconds,
                      on.seconds, win);
        }
      }
      // (5) thread-count independence of the sgraph-on runs.
      if (!detection_identical(nl, faults.faults(), "threads 1 vs 4",
                               on_runs[0].result, on_runs[1].result)) {
        ok = false;
      }
    }
  }
  if (!ok) {
    std::fprintf(stderr, "FAILURE: the s-graph pass changed a detection "
                         "result or did the wrong amount of work.\n");
    return 1;
  }
  std::printf("\ndetected-fault sets are bit-identical with and without the "
              "s-graph pass on every circuit, strategy and thread count.\n");
  return 0;
}
