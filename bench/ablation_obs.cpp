// Telemetry-overhead ablation: what does observability cost?
//
// Runs the full pipeline twice per circuit: once with
// SimOptions::telemetry == nullptr — the default, where every
// instrumentation site in bdd/, core/, util/ and store/ is one
// dormant branch (the exact hot path of an uninstrumented build) —
// and once with a live Telemetry context collecting every metric,
// span and histogram described in docs/OBSERVABILITY.md. The delta
// between the two bounds the *entire* cost of the observability
// layer from above: the disabled path can only be cheaper than the
// enabled one it is a strict subset of.
//
// The harness exits nonzero if enabled telemetry costs more than 2%
// wall-clock over the disabled baseline — which simultaneously proves
// the disabled path is within the 2% budget of an instrumentation-free
// build. When enabled it prints the paper-facing resource numbers:
// apply-cache hit rate, peak live OBDD nodes against the space limit,
// and the per-phase seconds table (paper Tables II-IV report exactly
// these time/space columns).
//
// Environment (see bench_common.h): MOTSIM_FULL, MOTSIM_VECTORS,
// MOTSIM_SEED, plus
//   MOTSIM_THREADS=n   worker threads of the symbolic stage (default 2)

#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/options.h"
#include "core/pipeline.h"
#include "faults/collapse.h"
#include "obs/log.h"
#include "obs/sampler.h"
#include "obs/telemetry.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace motsim;
using namespace motsim::bench;

namespace {

struct Measurement {
  double seconds = 0;
  std::size_t detected = 0;
};

Measurement measure(const Netlist& nl, const std::vector<Fault>& faults,
                    const TestSequence& seq, const SimOptions& opts,
                    int reps, obs::Telemetry* telemetry) {
  Measurement best;
  best.seconds = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    SimOptions run = opts;
    run.telemetry = telemetry;
    Stopwatch timer;
    const PipelineResult r = run_pipeline(nl, faults, seq, run);
    const double secs = timer.elapsed_seconds();
    if (secs < best.seconds) {
      best.seconds = secs;
      best.detected = r.detected_3v + r.detected_symbolic;
    }
  }
  return best;
}

double counter_of(const obs::MetricsSnapshot& s, const char* name) {
  for (const auto& [n, v] : s.counters) {
    if (n == name) return static_cast<double>(v);
  }
  return 0;
}

double gauge_of(const obs::MetricsSnapshot& s, const char* name) {
  for (const auto& [n, v] : s.gauges) {
    if (n == name) return v;
  }
  return 0;
}

}  // namespace

int main() {
  print_preamble("telemetry ablation",
                 "cost of the observability layer, off vs on");

  const std::size_t threads =
      static_cast<std::size_t>(env_int("MOTSIM_THREADS", 2));
  const std::size_t vectors =
      static_cast<std::size_t>(env_int("MOTSIM_VECTORS", 96));
  const int reps = full_mode() ? 5 : 3;

  std::vector<std::string> names{"s526"};
  if (full_mode()) {
    names.push_back("s1238");
    names.push_back("s1423");
  }

  bool budget_met = true;
  for (const std::string& name : names) {
    const Netlist nl = make_benchmark(name);
    const CollapsedFaultList faults(nl);
    Rng rng(workload_seed());
    const TestSequence seq = random_sequence(nl, vectors, rng);

    SimOptions opts;
    opts.threads = threads;
    std::printf("%s: %zu faults, %zu vectors, %zu threads, best of %d\n",
                name.c_str(), faults.size(), seq.size(), threads, reps);

    // One untimed warmup so the off-measurement doesn't pay the
    // process's cold caches and page faults on behalf of both modes.
    (void)measure(nl, faults.faults(), seq, opts, 1, nullptr);

    const Measurement off =
        measure(nl, faults.faults(), seq, opts, reps, nullptr);
    obs::Telemetry telemetry;
    const Measurement on =
        measure(nl, faults.faults(), seq, opts, reps, &telemetry);

    // The whole stack at once: metrics + spans + recorder, plus a live
    // JSONL log sink at the default Info level and the background
    // sampler — everything `--log X --sample-interval 5` turns on.
    const std::string scratch =
        (std::filesystem::temp_directory_path() / "motsim_ablation_obs")
            .string();
    std::filesystem::create_directories(scratch);
    obs::Telemetry full_tele;
    auto logger =
        obs::Logger::open(scratch + "/" + name + ".log.jsonl",
                          obs::LogLevel::Info);
    Measurement full;
    if (logger.has_value()) {
      full_tele.attach_logger(logger->get());
      auto sampler = obs::Sampler::start(
          full_tele, scratch + "/" + name + ".samples.jsonl", 5);
      full = measure(nl, faults.faults(), seq, opts, reps, &full_tele);
      if (sampler.has_value()) (*sampler)->stop();
      full_tele.attach_logger(nullptr);
    } else {
      std::fprintf(stderr, "ablation_obs: %s\n", logger.error().c_str());
      full = on;
    }

    const double overhead =
        off.seconds > 0 ? (on.seconds - off.seconds) / off.seconds : 0.0;
    const double full_overhead =
        off.seconds > 0 ? (full.seconds - off.seconds) / off.seconds : 0.0;
    std::printf("  %-18s %9.3f s   %zu detected\n", "telemetry off",
                off.seconds, off.detected);
    std::printf("  %-18s %9.3f s   %zu detected   overhead %+.1f%%\n",
                "telemetry on", on.seconds, on.detected, overhead * 100.0);
    std::printf("  %-18s %9.3f s   %zu detected   overhead %+.1f%%\n",
                "full obs stack", full.seconds, full.detected,
                full_overhead * 100.0);
    if (on.detected != off.detected || full.detected != off.detected) {
      std::fprintf(stderr,
                   "RESULT DIVERGENCE: %s detects %zu with telemetry, "
                   "%zu with the full stack, %zu without\n",
                   name.c_str(), on.detected, full.detected, off.detected);
      budget_met = false;
    }
    if (overhead >= 0.02) {
      std::fprintf(stderr,
                   "BUDGET VIOLATION: %s telemetry costs %.1f%% "
                   "(budget 2%%)\n",
                   name.c_str(), overhead * 100.0);
      budget_met = false;
    }
    if (full_overhead >= 0.02) {
      std::fprintf(stderr,
                   "BUDGET VIOLATION: %s full observability stack costs "
                   "%.1f%% (budget 2%%)\n",
                   name.c_str(), full_overhead * 100.0);
      budget_met = false;
    }

    // The paper-facing resource numbers (Tables II-IV time/space
    // columns), straight from the enabled run's registry. Repeated
    // measure() reps accumulate into one context; the ratios and
    // peaks below are rep-invariant.
    const obs::MetricsSnapshot s = telemetry.metrics.snapshot();
    const double lookups = counter_of(s, "bdd.apply_cache_lookups");
    const double hits = counter_of(s, "bdd.apply_cache_hits");
    std::printf("  apply-cache hit rate   %6.2f%%  (%.0f / %.0f)\n",
                lookups > 0 ? 100.0 * hits / lookups : 0.0, hits, lookups);
    std::printf("  peak live OBDD nodes   %6.0f   (space limit %zu)\n",
                gauge_of(s, "bdd.peak_live_nodes"), opts.node_limit);
    std::printf("  gc runs                %6.0f   (%.0f nodes reclaimed)\n",
                counter_of(s, "bdd.gc_runs"),
                counter_of(s, "bdd.gc_reclaimed_nodes"));
    std::printf("\nper-phase seconds (all reps):\n%s\n",
                telemetry.tracer.phase_summary().c_str());
  }

  if (!budget_met) return 1;
  std::printf("telemetry overhead (bare and full stack) is within the 2%% "
              "budget and results are identical off vs on.\n");
  return 0;
}
