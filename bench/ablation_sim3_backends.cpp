// Cross-backend ablation gate: the event-driven and the bit-parallel
// three-valued fault simulators must be bit-identical.
//
// Runs both FaultSimulator3 backends (and the bit-parallel engine at 1
// and 4 worker threads) over random sequences on s27 / s344 / s5378
// and compares, fault by fault, the detection verdict AND the
// detection frame. Any disagreement exits nonzero — this harness is
// the CI correctness gate behind the backend contract of docs/SIM3.md,
// wired like ablation_implications. It also prints the speedup, so the
// gate doubles as a coarse perf canary.
//
// Environment (see bench_common.h): MOTSIM_FULL, MOTSIM_VECTORS,
// MOTSIM_SEED.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "faults/collapse.h"
#include "faults/fault.h"
#include "sim3/bitpar_sim3.h"
#include "sim3/fault_simulator.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace motsim;
using namespace motsim::bench;

namespace {

struct Run {
  FaultSim3Result result;
  double seconds = 0;
};

Run run_backend(const Netlist& nl, const std::vector<Fault>& faults,
                const TestSequence& seq, Sim3Backend backend,
                std::size_t threads) {
  Run r;
  Stopwatch timer;
  Sim3EngineConfig config;
  config.threads = threads;
  const std::unique_ptr<FaultSimulator3> sim =
      make_fault_simulator3(backend, nl, faults, config);
  r.result = sim->run(seq);
  r.seconds = timer.elapsed_seconds();
  return r;
}

/// Fault-by-fault comparison of verdicts and frames; prints the first
/// few mismatches.
bool identical(const Netlist& nl, const std::vector<Fault>& faults,
               const FaultSim3Result& a, const FaultSim3Result& b,
               const char* what) {
  bool ok = a.status.size() == b.status.size() &&
            a.detected_count == b.detected_count;
  int reported = 0;
  for (std::size_t i = 0; i < a.status.size() && i < b.status.size(); ++i) {
    if (is_detected(a.status[i]) != is_detected(b.status[i]) ||
        a.detect_frame[i] != b.detect_frame[i]) {
      if (reported++ < 10) {
        std::fprintf(stderr, "MISMATCH (%s): %s %s: event=%s@%u other=%s@%u\n",
                     what, nl.name().c_str(),
                     fault_name(nl, faults[i]).c_str(), to_cstring(a.status[i]),
                     a.detect_frame[i], to_cstring(b.status[i]),
                     b.detect_frame[i]);
      }
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main() {
  print_preamble("sim3 backend ablation",
                 "event-driven vs bit-parallel X01: bit-identity gate");

  const std::size_t vectors =
      static_cast<std::size_t>(env_int("MOTSIM_VECTORS", 96));

  std::vector<std::string> workloads{"s27", "s344", "s5378"};
  if (full_mode()) workloads.push_back("s1423");

  bool all_identical = true;
  std::printf("%-10s %8s %9s %10s %12s %12s %8s\n", "circuit", "faults",
              "detected", "event[s]", "bitpar-1[s]", "bitpar-4[s]", "speedup");
  for (const std::string& name : workloads) {
    const Netlist nl = make_benchmark(name);
    const CollapsedFaultList faults(nl);
    Rng rng(workload_seed());
    const TestSequence seq = random_sequence(nl, vectors, rng);

    const Run event = run_backend(nl, faults.faults(), seq,
                                  Sim3Backend::Event, 1);
    const Run bitpar1 = run_backend(nl, faults.faults(), seq,
                                    Sim3Backend::BitPar, 1);
    const Run bitpar4 = run_backend(nl, faults.faults(), seq,
                                    Sim3Backend::BitPar, 4);

    if (!identical(nl, faults.faults(), event.result, bitpar1.result,
                   "bitpar threads=1")) {
      all_identical = false;
    }
    if (!identical(nl, faults.faults(), event.result, bitpar4.result,
                   "bitpar threads=4")) {
      all_identical = false;
    }

    std::printf("%-10s %8zu %9zu %10.3f %12.3f %12.3f %7.2fx\n",
                nl.name().c_str(), faults.size(),
                event.result.detected_count, event.seconds, bitpar1.seconds,
                bitpar4.seconds,
                bitpar1.seconds > 0 ? event.seconds / bitpar1.seconds : 0.0);
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAILURE: the sim3 backends disagree on a detection "
                 "verdict or frame.\n");
    return 1;
  }
  std::printf("\nboth backends (and both thread counts) are bit-identical "
              "on every circuit.\n");
  return 0;
}
