// Table II of the paper: comparison of the SOT, rMOT and MOT
// strategies for random test sequences of length 200 (space limit
// 30,000 OBDD nodes).
//
// Following the paper's protocol, the symbolic strategies only see the
// faults that the three-valued fault simulation could NOT classify as
// detected (|F_u| = |F| - |F_d|; this includes the X-redundant
// faults). A '*' marks results where the hybrid simulator had to fall
// back to three-valued windows.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/hybrid_sim.h"
#include "core/xred.h"
#include "faults/collapse.h"
#include "sim3/fault_sim3.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

using namespace motsim;

int main() {
  bench::print_preamble("Table II", "SOT vs rMOT vs MOT, random sequences");

  TablePrinter table({"Circ.", "|F|", "|F_u|", "Fu(pap)",
                      "SOT", "S(pap)", "rMOT", "r(pap)", "MOT", "M(pap)",
                      "tS[s]", "tr[s]", "tM[s]"});

  std::size_t sum_sot = 0, sum_rmot = 0, sum_mot = 0;
  double time_sot = 0, time_rmot = 0, time_mot = 0;

  for (const BenchmarkInfo& info : benchmark_roster()) {
    if (!info.in_table2) continue;
    if (!bench::include_circuit(info, /*quick_gate_cutoff=*/700)) continue;

    const Netlist nl = make_benchmark(info);
    const CollapsedFaultList collapsed(nl);
    Rng rng(bench::workload_seed() + info.spec.seed);
    const TestSequence seq =
        random_sequence(nl, bench::vector_count(), rng);

    // Stage 1+2: ID_X-red and three-valued simulation define F_u.
    const XRedResult xr = run_id_x_red(nl, seq);
    FaultSim3 sim3(nl, collapsed.faults());
    sim3.set_initial_status(xr.classify(collapsed.faults()));
    const auto r3 = sim3.run(seq);

    std::vector<FaultStatus> leftover = r3.status;
    std::size_t fu = 0;
    for (auto& s : leftover) {
      if (s == FaultStatus::XRedundant) s = FaultStatus::Undetected;
      if (s == FaultStatus::Undetected) ++fu;
    }

    // Stage 3: the three strategies on F_u with the paper's limit.
    std::size_t det[3] = {0, 0, 0};
    bool star[3] = {false, false, false};
    double secs[3] = {0, 0, 0};
    const Strategy strategies[3] = {Strategy::Sot, Strategy::Rmot,
                                    Strategy::Mot};
    for (int k = 0; k < 3; ++k) {
      HybridConfig cfg;
      cfg.strategy = strategies[k];
      cfg.node_limit = 30000;
      HybridFaultSim sym(nl, collapsed.faults(), cfg);
      sym.set_initial_status(leftover);
      Stopwatch timer;
      const auto r = sym.run(seq);
      secs[k] = timer.elapsed_seconds();
      det[k] = r.detected_count;
      star[k] = r.used_fallback;
    }

    sum_sot += det[0];
    sum_rmot += det[1];
    sum_mot += det[2];
    time_sot += secs[0];
    time_rmot += secs[1];
    time_mot += secs[2];

    table.add_row(
        {info.spec.name, std::to_string(collapsed.size()),
         std::to_string(fu), bench::ref_int(info.t2.fu),
         bench::starred(det[0], star[0]),
         (info.t2.sot_star ? "*" : "") + bench::ref_int(info.t2.sot),
         bench::starred(det[1], star[1]),
         (info.t2.rmot_star ? "*" : "") + bench::ref_int(info.t2.rmot),
         bench::starred(det[2], star[2]),
         (info.t2.mot_star ? "*" : "") + bench::ref_int(info.t2.mot),
         format_fixed(secs[0], 2), format_fixed(secs[1], 2),
         format_fixed(secs[2], 2)});
  }

  table.add_separator();
  table.add_row({"SUM", "", "", "", std::to_string(sum_sot), "",
                 std::to_string(sum_rmot), "", std::to_string(sum_mot), "",
                 format_fixed(time_sot, 2), format_fixed(time_rmot, 2),
                 format_fixed(time_mot, 2)});
  table.print(std::cout);
  std::printf("\npaper sums: SOT 944, rMOT 1082, MOT 1263 detected "
              "(3441 / 3618 / 3957 s on a SPARC-10)\n");
  std::printf("expected shape: SOT <= rMOT <= MOT detections; "
              "MOT slowest.\n");
  return 0;
}
