#ifndef MOTSIM_BENCH_BENCH_COMMON_H
#define MOTSIM_BENCH_BENCH_COMMON_H

// Shared plumbing for the paper-table reproduction harnesses.
//
// Every harness prints our measurements side by side with the numbers
// transcribed from the paper (SPARCstation 10, 1995). Absolute values
// are not comparable — the circuits are synthetic stand-ins and the
// host is ~3 decades newer — the *shape* (who wins, where the MOT
// strategies add coverage, where ID_X-red pays off) is the
// reproduction target; see EXPERIMENTS.md.
//
// Environment:
//   MOTSIM_FULL=1      run the complete roster (including the giants)
//   MOTSIM_VECTORS=n   override the random-sequence length (default 200)
//   MOTSIM_SEED=n      override the workload seed
//   MOTSIM_PARALLEL=1  bit-parallel X01 engine where supported

#include <cstdio>
#include <string>

#include "bench_data/registry.h"
#include "util/env.h"
#include "util/strings.h"

namespace motsim::bench {

inline bool full_mode() { return env_flag("MOTSIM_FULL"); }

inline std::size_t vector_count() {
  return static_cast<std::size_t>(env_int("MOTSIM_VECTORS", 200));
}

inline std::uint64_t workload_seed() {
  return static_cast<std::uint64_t>(env_int("MOTSIM_SEED", 1995));
}

/// Default circuit-size cutoff (by target gate count) when not in full
/// mode; keeps a whole-suite run in the minutes range.
inline bool include_circuit(const BenchmarkInfo& info,
                            std::size_t quick_gate_cutoff) {
  if (info.spec.name == "s27") return false;  // not in the paper's tables
  if (full_mode()) return true;
  return info.spec.target_gates <= quick_gate_cutoff;
}

/// "123" or "-" for missing reference values.
inline std::string ref_int(int v) {
  return v < 0 ? "-" : std::to_string(v);
}

/// "1.58" or "-" for missing reference times.
inline std::string ref_time(double v) {
  return v < 0 ? "-" : format_fixed(v, 2);
}

/// Number plus the paper's asterisk (three-valued fallback happened).
inline std::string starred(std::size_t v, bool star) {
  return (star ? "*" : "") + std::to_string(v);
}

inline void print_preamble(const char* table, const char* what) {
  std::printf("=== %s — %s ===\n", table, what);
  std::printf(
      "(ours vs paper; absolute numbers are not comparable — synthetic "
      "circuits, modern host.\n %s)\n\n",
      full_mode() ? "full roster"
                  : "reduced roster; set MOTSIM_FULL=1 for everything");
}

}  // namespace motsim::bench

#endif  // MOTSIM_BENCH_BENCH_COMMON_H
