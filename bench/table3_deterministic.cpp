// Table III of the paper: the same SOT/rMOT/MOT comparison for
// *deterministic* test sequences.
//
// The paper used sequences produced by deterministic test generators
// (cf. HOPE [10]); those generators and their sequences are not
// available, so the harness substitutes fault-simulation-guided greedy
// compaction (src/tpg) — short targeted sequences with high per-vector
// yield, which is the property that distinguishes Table III from
// Table II (see DESIGN.md §4).

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/hybrid_sim.h"
#include "core/xred.h"
#include "faults/collapse.h"
#include "sim3/fault_sim3.h"
#include "tpg/compaction.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

using namespace motsim;

int main() {
  bench::print_preamble("Table III",
                        "SOT vs rMOT vs MOT, deterministic sequences");

  TablePrinter table({"Circ.", "|T|", "T(pap)", "|F|", "|F_u|", "Fu(pap)",
                      "SOT", "S(pap)", "rMOT", "r(pap)", "MOT", "M(pap)",
                      "tS[s]", "tr[s]", "tM[s]"});

  std::size_t sum_sot = 0, sum_rmot = 0, sum_mot = 0;

  for (const BenchmarkInfo& info : benchmark_roster()) {
    if (!info.in_table3) continue;
    if (!bench::include_circuit(info, /*quick_gate_cutoff=*/700)) continue;

    const Netlist nl = make_benchmark(info);
    const CollapsedFaultList collapsed(nl);

    // The deterministic sequence for this circuit.
    CompactionConfig comp;
    comp.seed = bench::workload_seed() + info.spec.seed;
    comp.stale_rounds = 8;
    comp.max_length = 2 * bench::vector_count();
    comp.min_length = bench::vector_count() / 4;
    const CompactionResult gen =
        generate_deterministic_sequence(nl, collapsed.faults(), comp);
    const TestSequence& seq = gen.sequence;
    if (seq.empty()) {
      table.add_row({info.spec.name, "0", bench::ref_int(info.t3.T),
                     std::to_string(collapsed.size()), "-", "-", "-", "-",
                     "-", "-", "-", "-", "-", "-", "-"});
      continue;
    }

    const XRedResult xr = run_id_x_red(nl, seq);
    FaultSim3 sim3(nl, collapsed.faults());
    sim3.set_initial_status(xr.classify(collapsed.faults()));
    const auto r3 = sim3.run(seq);

    std::vector<FaultStatus> leftover = r3.status;
    std::size_t fu = 0;
    for (auto& s : leftover) {
      if (s == FaultStatus::XRedundant) s = FaultStatus::Undetected;
      if (s == FaultStatus::Undetected) ++fu;
    }

    std::size_t det[3] = {0, 0, 0};
    bool star[3] = {false, false, false};
    double secs[3] = {0, 0, 0};
    const Strategy strategies[3] = {Strategy::Sot, Strategy::Rmot,
                                    Strategy::Mot};
    for (int k = 0; k < 3; ++k) {
      HybridConfig cfg;
      cfg.strategy = strategies[k];
      cfg.node_limit = 30000;
      HybridFaultSim sym(nl, collapsed.faults(), cfg);
      sym.set_initial_status(leftover);
      Stopwatch timer;
      const auto r = sym.run(seq);
      secs[k] = timer.elapsed_seconds();
      det[k] = r.detected_count;
      star[k] = r.used_fallback;
    }

    sum_sot += det[0];
    sum_rmot += det[1];
    sum_mot += det[2];

    table.add_row(
        {info.spec.name, std::to_string(seq.size()),
         bench::ref_int(info.t3.T), std::to_string(collapsed.size()),
         std::to_string(fu), bench::ref_int(info.t3.fu),
         bench::starred(det[0], star[0]),
         (info.t3.sot_star ? "*" : "") + bench::ref_int(info.t3.sot),
         bench::starred(det[1], star[1]),
         (info.t3.rmot_star ? "*" : "") + bench::ref_int(info.t3.rmot),
         bench::starred(det[2], star[2]),
         (info.t3.mot_star ? "*" : "") + bench::ref_int(info.t3.mot),
         format_fixed(secs[0], 2), format_fixed(secs[1], 2),
         format_fixed(secs[2], 2)});
  }

  table.add_separator();
  table.add_row({"SUM", "", "", "", "", "", std::to_string(sum_sot), "",
                 std::to_string(sum_rmot), "", std::to_string(sum_mot), "",
                 "", "", ""});
  table.print(std::cout);
  std::printf("\npaper sums: SOT 734, rMOT 799, MOT 865 detected.\n");
  std::printf("expected shape: rMOT/MOT classify more than SOT; rMOT is "
              "sometimes faster than SOT (earlier drops).\n");
  return 0;
}
