#!/usr/bin/env sh
# Boots motsim_served on ephemeral loopback ports, drives it with the
# motsim_load open-loop generator, validates the observability surface
# (/healthz, /metrics) and the BENCH_serve.json summary, then shuts the
# server down with SIGTERM (exercising the graceful drain).
#
# Usage: bench/run_serve_bench.sh [build-dir] [duration-s] [rate]
# Exits non-zero if the server fails to boot, the load run completes
# zero requests or sees protocol errors, or an endpoint misbehaves.
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
duration="${2:-5}"
rate="${3:-40}"

served="$build/tools/motsim_served"
load="$build/tools/motsim_load"
[ -x "$served" ] || { echo "missing $served (build first)"; exit 1; }
[ -x "$load" ] || { echo "missing $load (build first)"; exit 1; }

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill -TERM "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

"$served" --port 0 --http-port 0 --store-root "$workdir/store" \
  > "$workdir/served.log" 2>&1 &
server_pid=$!

# The server prints `listening <port> http <http_port>` once bound.
ports=""
for _ in $(seq 1 50); do
  ports="$(awk '/^listening /{print $2, $4}' "$workdir/served.log")"
  [ -n "$ports" ] && break
  sleep 0.1
done
[ -n "$ports" ] || { echo "server did not report its ports"; cat "$workdir/served.log"; exit 1; }
port="${ports% *}"
http_port="${ports#* }"
echo "motsim_served up: protocol port $port, http port $http_port"

curl -fsS "http://127.0.0.1:$http_port/healthz" | grep -q ok \
  || { echo "/healthz failed"; exit 1; }

"$load" --port "$port" --duration "$duration" --rate "$rate" \
  --connections 4 --vectors 16 --out "$workdir/BENCH_serve.json"

python3 -m json.tool "$workdir/BENCH_serve.json" > /dev/null \
  || { echo "BENCH_serve.json is not valid JSON"; exit 1; }

metrics="$workdir/metrics.txt"
curl -fsS "http://127.0.0.1:$http_port/metrics" > "$metrics"
for series in motsim_build_info serve_requests_completed \
  serve_queue_depth serve_request_seconds_bucket; do
  grep -q "$series" "$metrics" \
    || { echo "/metrics is missing $series"; exit 1; }
done

kill -TERM "$server_pid"
wait "$server_pid" || true
server_pid=""
grep -q "drained, exiting" "$workdir/served.log" \
  || { echo "server did not drain cleanly"; cat "$workdir/served.log"; exit 1; }

cp "$workdir/BENCH_serve.json" "$repo/BENCH_serve.json"
echo "serve bench complete:"
python3 -m json.tool "$repo/BENCH_serve.json"
