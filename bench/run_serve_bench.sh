#!/usr/bin/env sh
# Boots motsim_served on ephemeral loopback ports, drives it with the
# motsim_load open-loop generator, validates the observability surface
# (/healthz, /metrics, /metrics?format=json, /debug/state, the JSONL
# access log, the SIGUSR1 state dump) and the BENCH_serve.json summary,
# then shuts the server down with SIGTERM (exercising the graceful
# drain).
#
# Usage: bench/run_serve_bench.sh [build-dir] [duration-s] [rate]
# Exits non-zero if the server fails to boot, the load run completes
# zero requests or sees protocol errors, or an endpoint misbehaves.
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
duration="${2:-5}"
rate="${3:-40}"

served="$build/tools/motsim_served"
load="$build/tools/motsim_load"
[ -x "$served" ] || { echo "missing $served (build first)"; exit 1; }
[ -x "$load" ] || { echo "missing $load (build first)"; exit 1; }

workdir="$(mktemp -d)"
server_pid=""

# Validates that every non-empty line of a file parses as JSON (one
# interpreter for the whole file; `python3 -m json.tool` per line is
# equivalent but forks once per record).
validate_jsonl() {
  python3 -c '
import json, sys
for n, line in enumerate(open(sys.argv[1]), 1):
    line = line.strip()
    if not line:
        continue
    try:
        json.loads(line)
    except ValueError as e:
        sys.exit(f"{sys.argv[1]}:{n}: invalid JSON: {e}")
' "$1"
}
cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill -TERM "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

"$served" --port 0 --http-port 0 --store-root "$workdir/store" \
  --log "$workdir/served.jsonl" --log-level debug \
  --dump-path "$workdir/state.jsonl" \
  --sample-interval 50 --sample-file "$workdir/samples.jsonl" \
  > "$workdir/served.log" 2>&1 &
server_pid=$!

# The server prints `listening <port> http <http_port>` once bound.
ports=""
for _ in $(seq 1 50); do
  ports="$(awk '/^listening /{print $2, $4}' "$workdir/served.log")"
  [ -n "$ports" ] && break
  sleep 0.1
done
[ -n "$ports" ] || { echo "server did not report its ports"; cat "$workdir/served.log"; exit 1; }
port="${ports% *}"
http_port="${ports#* }"
echo "motsim_served up: protocol port $port, http port $http_port"

curl -fsS "http://127.0.0.1:$http_port/healthz" | grep -q ok \
  || { echo "/healthz failed"; exit 1; }

"$load" --port "$port" --http-port "$http_port" \
  --duration "$duration" --rate "$rate" \
  --connections 4 --vectors 16 --out "$workdir/BENCH_serve.json"

python3 -m json.tool "$workdir/BENCH_serve.json" > /dev/null \
  || { echo "BENCH_serve.json is not valid JSON"; exit 1; }
grep -q '"server"' "$workdir/BENCH_serve.json" \
  || { echo "BENCH_serve.json is missing the server-side counters"; exit 1; }

metrics="$workdir/metrics.txt"
curl -fsS "http://127.0.0.1:$http_port/metrics" > "$metrics"
for series in motsim_build_info serve_requests_completed \
  serve_queue_depth serve_request_seconds_bucket \
  serve_queue_wait_seconds_bucket; do
  grep -q "$series" "$metrics" \
    || { echo "/metrics is missing $series"; exit 1; }
done

curl -fsS "http://127.0.0.1:$http_port/metrics?format=json" \
  | python3 -m json.tool > /dev/null \
  || { echo "/metrics?format=json is not valid JSON"; exit 1; }

# /debug/state and the SIGUSR1 dump must both be per-line-valid JSONL.
curl -fsS "http://127.0.0.1:$http_port/debug/state" > "$workdir/debug_state.jsonl"
validate_jsonl "$workdir/debug_state.jsonl" \
  || { echo "/debug/state is not valid JSONL"; exit 1; }

kill -USR1 "$server_pid"
for _ in $(seq 1 50); do
  [ -s "$workdir/state.jsonl" ] && break
  sleep 0.1
done
[ -s "$workdir/state.jsonl" ] \
  || { echo "SIGUSR1 produced no state dump"; exit 1; }
validate_jsonl "$workdir/state.jsonl" \
  || { echo "SIGUSR1 state dump is not valid JSONL"; exit 1; }
echo "SIGUSR1 state dump: $(wc -l < "$workdir/state.jsonl") valid JSONL lines"

kill -TERM "$server_pid"
wait "$server_pid" || true
server_pid=""
grep -q "drained, exiting" "$workdir/served.log" \
  || { echo "server did not drain cleanly"; cat "$workdir/served.log"; exit 1; }

# Every structured-log and sampler record the daemon wrote is one valid
# JSON object per line, and the access log is present and traceable.
grep -q '"event":"serve.request"' "$workdir/served.jsonl" \
  || { echo "structured log has no serve.request access lines"; exit 1; }
grep -q '"trace":"c' "$workdir/served.jsonl" \
  || { echo "access log lines carry no trace ids"; exit 1; }
for f in served.jsonl samples.jsonl; do
  validate_jsonl "$workdir/$f" \
    || { echo "$f is not valid JSONL"; exit 1; }
done
echo "structured log: $(wc -l < "$workdir/served.jsonl") valid JSONL lines"

cp "$workdir/BENCH_serve.json" "$repo/BENCH_serve.json"
echo "serve bench complete:"
python3 -m json.tool "$repo/BENCH_serve.json"
