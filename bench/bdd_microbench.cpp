// Micro-benchmarks of the OBDD package (google-benchmark): the kernels
// the symbolic fault simulator leans on — AND/XOR/ITE recursion,
// composition, the order-preserving rename used by MOT, quantification
// and garbage collection.

#include <benchmark/benchmark.h>

#include "bdd/bdd.h"
#include "core/sym_true_value.h"
#include "util/rng.h"

namespace {

using motsim::Rng;
using namespace motsim::bdd;

/// Builds a set of pseudo-random functions of `nvars` variables.
std::vector<Bdd> random_functions(BddManager& mgr, unsigned nvars,
                                  std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bdd> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Bdd f = mgr.var(static_cast<VarIndex>(rng.below(nvars)));
    for (int depth = 0; depth < 10; ++depth) {
      const Bdd v = mgr.var(static_cast<VarIndex>(rng.below(nvars)));
      switch (rng.below(3)) {
        case 0:
          f &= rng.flip() ? v : !v;
          break;
        case 1:
          f |= rng.flip() ? v : !v;
          break;
        default:
          f ^= v;
          break;
      }
    }
    out.push_back(f);
  }
  return out;
}

void BM_BddAnd(benchmark::State& state) {
  BddManager mgr;
  const auto fs = random_functions(mgr, 24, 64, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs[i % 64] & fs[(i + 17) % 64]);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BddAnd);

void BM_BddXor(benchmark::State& state) {
  BddManager mgr;
  const auto fs = random_functions(mgr, 24, 64, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs[i % 64] ^ fs[(i + 29) % 64]);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BddXor);

void BM_BddIte(benchmark::State& state) {
  BddManager mgr;
  const auto fs = random_functions(mgr, 24, 64, 3);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mgr.ite(fs[i % 64], fs[(i + 7) % 64], fs[(i + 41) % 64]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BddIte);

void BM_BddCompose(benchmark::State& state) {
  BddManager mgr;
  const auto fs = random_functions(mgr, 24, 64, 4);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mgr.compose(fs[i % 64], static_cast<VarIndex>(i % 24),
                    fs[(i + 13) % 64]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BddCompose);

void BM_BddRenameXToY(benchmark::State& state) {
  // The MOT substitution: functions over interleaved x variables are
  // shifted onto the y variables.
  BddManager mgr;
  const motsim::StateVars vars(12);
  mgr.ensure_vars(vars.var_count());
  Rng rng(5);
  std::vector<Bdd> fs;
  for (int i = 0; i < 64; ++i) {
    Bdd f = mgr.var(vars.x(rng.below(12)));
    for (int d = 0; d < 10; ++d) {
      const Bdd v = mgr.var(vars.x(rng.below(12)));
      f = rng.flip() ? (f & v) : (f ^ v);
    }
    fs.push_back(f);
  }
  const auto mapping = vars.x_to_y_mapping();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.rename(fs[i % 64], mapping));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BddRenameXToY);

void BM_BddExists(benchmark::State& state) {
  BddManager mgr;
  const auto fs = random_functions(mgr, 24, 64, 6);
  const std::vector<VarIndex> half{0, 2, 4, 6, 8, 10};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.exists(fs[i % 64], half));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BddExists);

void BM_BddParity(benchmark::State& state) {
  // Linear-size worst case of the unique table: n-variable parity.
  const auto n = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    BddManager mgr;
    Bdd p = mgr.zero();
    for (unsigned v = 0; v < n; ++v) p ^= mgr.var(v);
    benchmark::DoNotOptimize(p.node_count());
  }
}
BENCHMARK(BM_BddParity)->Arg(16)->Arg(64)->Arg(256);

void BM_BddGc(benchmark::State& state) {
  BddManager mgr;
  const auto keep = random_functions(mgr, 24, 32, 7);
  Rng rng(8);
  for (auto _ : state) {
    // Produce garbage, then collect.
    for (int i = 0; i < 50; ++i) {
      const Bdd t = keep[rng.below(32)] ^ keep[rng.below(32)];
      benchmark::DoNotOptimize(t.id());
    }
    mgr.gc();
  }
}
BENCHMARK(BM_BddGc);

void BM_BddAndExists(benchmark::State& state) {
  BddManager mgr;
  const auto fs = random_functions(mgr, 24, 64, 10);
  const std::vector<VarIndex> half{1, 3, 5, 7, 9, 11};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mgr.and_exists(fs[i % 64], fs[(i + 11) % 64], half));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BddAndExists);

void BM_BddConstrain(benchmark::State& state) {
  BddManager mgr;
  const auto fs = random_functions(mgr, 24, 64, 11);
  std::size_t i = 0;
  for (auto _ : state) {
    const Bdd& c = fs[(i + 23) % 64];
    if (!c.is_zero()) {
      benchmark::DoNotOptimize(mgr.constrain(fs[i % 64], c));
    }
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BddConstrain);

void BM_BddSift(benchmark::State& state) {
  // Sift the adversarial pairwise AND-OR function from the blocked
  // order; n pairs.
  const auto n = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    BddManager mgr;
    Bdd f = mgr.zero();
    for (unsigned i = 0; i < n; ++i) f |= mgr.var(i) & mgr.var(n + i);
    benchmark::DoNotOptimize(mgr.reorder_sift(8.0));
  }
}
BENCHMARK(BM_BddSift)->Arg(4)->Arg(8);

void BM_BddSatCount(benchmark::State& state) {
  BddManager mgr;
  const auto fs = random_functions(mgr, 24, 64, 9);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.sat_count(fs[i % 64], 24));
    ++i;
  }
}
BENCHMARK(BM_BddSatCount);

}  // namespace

BENCHMARK_MAIN();
