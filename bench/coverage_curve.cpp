// Coverage-vs-sequence-length curves for X01 / rMOT / MOT.
//
// The paper reports endpoint numbers at fixed lengths (Tables I-III);
// this harness traces the whole curve, which makes the strategies'
// different *saturation* behaviour visible: on synchronizable circuits
// X01 and the symbolic strategies converge to the same plateau, while
// on unsynchronizable (counter-style) circuits X01 stays flat at ~0
// and only the MOT family climbs. Output is one row per length —
// paste-able into any plotting tool.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/pipeline.h"
#include "faults/collapse.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/table_printer.h"

using namespace motsim;

int main() {
  bench::print_preamble("Coverage curve",
                        "fault coverage vs sequence length");

  for (const char* name : {"s298", "s208.1"}) {
    const BenchmarkInfo* info = find_benchmark(name);
    if (info == nullptr) continue;
    const Netlist nl = make_benchmark(*info);
    const CollapsedFaultList faults(nl);

    // One long master sequence; prefixes keep the workload nested so
    // the curves are monotone by construction.
    Rng rng(bench::workload_seed());
    const TestSequence master =
        random_sequence(nl, bench::vector_count() / 2, rng);

    std::printf("circuit %s (%zu collapsed faults):\n", name,
                faults.size());
    TablePrinter table({"|T|", "X01", "X01%", "rMOT", "rMOT%", "MOT",
                        "MOT%"});
    for (std::size_t len = 10; len <= master.size(); len += 15) {
      const TestSequence prefix(master.begin(),
                                master.begin() +
                                    static_cast<std::ptrdiff_t>(len));
      // Column 1: the plain three-valued baseline. Columns 2-3: the
      // full pipeline total (X01 + symbolic additions) per strategy.
      std::size_t x01 = 0, rmot = 0, mot = 0;
      for (Strategy st : {Strategy::Rmot, Strategy::Mot}) {
        SimOptions opt;
        opt.strategy = st;
        opt.threads = 0;  // shard the symbolic stage across all cores
        const PipelineResult r =
            run_pipeline(nl, faults.faults(), prefix, opt);
        x01 = r.detected_3v;
        (st == Strategy::Rmot ? rmot : mot) = r.summary().detected_total();
      }
      auto pct = [&](std::size_t d) {
        return format_fixed(100.0 * static_cast<double>(d) /
                                static_cast<double>(faults.size()),
                            1);
      };
      table.add_row({std::to_string(len), std::to_string(x01), pct(x01),
                     std::to_string(rmot), pct(rmot), std::to_string(mot),
                     pct(mot)});
    }
    table.print(std::cout);
    std::printf("\n");
  }

  std::printf("expected shape: the controller's three curves converge; "
              "the counter's X01 curve stays\nflat near zero while "
              "rMOT/MOT climb — the paper's core message as a curve.\n");
  return 0;
}
