// Thread-count ablation of the fault-sharded parallel symbolic engine
// (core/parallel_sym_sim).
//
// For each circuit the FULL collapsed fault list goes straight into
// the symbolic engine (no ID_X-red / X01 pre-filtering — the point is
// to give every worker real work), once per thread count. Per-fault
// results are bit-identical across the sweep by construction (the
// shard partition never depends on the thread count); the harness
// asserts that while it measures the scaling curve.
//
// Environment (see bench_common.h): MOTSIM_FULL, MOTSIM_VECTORS,
// MOTSIM_SEED, plus
//   MOTSIM_THREADS_MAX=n  highest thread count of the sweep
//                         (default 8)
//   MOTSIM_CHUNK=n        shard size (default kDefaultChunkSize)
//
// On a single-core host every thread count measures ~1x; the sharding
// itself costs only the per-shard manager setup.

#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "core/parallel_sym_sim.h"
#include "faults/collapse.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace motsim;
using namespace motsim::bench;

int main() {
  print_preamble("threads ablation",
                 "fault-sharded parallel symbolic simulation");

  const std::size_t max_threads =
      static_cast<std::size_t>(env_int("MOTSIM_THREADS_MAX", 8));
  const std::size_t chunk =
      static_cast<std::size_t>(env_int("MOTSIM_CHUNK", 0));
  const std::size_t vectors =
      static_cast<std::size_t>(env_int("MOTSIM_VECTORS", 48));

  // Quick mode: one mid-size controller and one >=1k-fault circuit;
  // full mode adds a third, larger one.
  std::vector<std::string> names{"s526", "s1238"};
  if (full_mode()) names.push_back("s1423");

  for (const std::string& name : names) {
    const Netlist nl = make_benchmark(name);
    const CollapsedFaultList faults(nl);
    Rng rng(workload_seed());
    const TestSequence seq = random_sequence(nl, vectors, rng);
    std::printf("%s: %zu faults, %zu vectors, chunk %zu\n", name.c_str(),
                faults.size(), seq.size(),
                chunk == 0 ? kDefaultChunkSize : chunk);
    std::printf("  %7s %9s %9s %8s %9s\n", "threads", "detected", "time[s]",
                "speedup", "fallback");

    double t1 = 0;
    std::vector<FaultStatus> reference;
    for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
      ParallelSymConfig cfg;
      cfg.hybrid.strategy = Strategy::Mot;
      cfg.threads = threads;
      cfg.chunk_size = chunk;
      ParallelSymSim sim(nl, faults.faults(), cfg);
      Stopwatch timer;
      const HybridResult r = sim.run(seq);
      const double secs = timer.elapsed_seconds();
      if (threads == 1) {
        t1 = secs;
        reference = r.status;
      } else if (r.status != reference) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: %s differs at %zu threads\n",
                     name.c_str(), threads);
        return 1;
      }
      std::printf("  %7zu %9zu %9.3f %7.2fx %9zu\n", threads,
                  r.detected_count, secs, secs > 0 ? t1 / secs : 0.0,
                  r.fallback_windows);
    }
    std::printf("\n");
  }
  std::printf("per-fault statuses identical across the whole sweep.\n");
  return 0;
}
