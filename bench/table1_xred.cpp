// Table I of the paper: influence of ID_X-red on the run time of
// three-valued fault simulation, for random test sequences of length
// 200.
//
// Columns (ours / paper): |F| collapsed faults, X-red. faults flagged
// by ID_X-red, |F_d| faults detected three-valued, X01 run time
// without elimination, X01_p run time with elimination, and the
// ID_X-red run time itself. The paper's headline: on average 38% of
// the faults are X-redundant and eliminating them speeds X01 up
// considerably while ID_X-red itself is negligible.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/xred.h"
#include "faults/collapse.h"
#include "sim3/fault_simulator.h"
#include "util/env.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

using namespace motsim;

int main() {
  bench::print_preamble("Table I",
                        "ID_X-red impact on three-valued fault simulation");

  TablePrinter table({"Circ.", "|F|", "F(pap)", "X-red", "Xr(pap)", "|F_d|",
                      "Fd(pap)", "X01[s]", "X01p[s]", "IDX[s]", "speedup",
                      "pap.spd"});

  double sum_x01 = 0, sum_x01p = 0, sum_idx = 0;
  for (const BenchmarkInfo& info : benchmark_roster()) {
    if (!bench::include_circuit(info, /*quick_gate_cutoff=*/3000)) continue;

    const Netlist nl = make_benchmark(info);
    const CollapsedFaultList collapsed(nl);
    Rng rng(bench::workload_seed() + info.spec.seed);
    const TestSequence seq =
        random_sequence(nl, bench::vector_count(), rng);

    Stopwatch t_idx;
    const XRedResult xr = run_id_x_red(nl, seq);
    const double idx_s = t_idx.elapsed_seconds();
    const std::size_t xred = xr.count_x_redundant(collapsed.faults());

    // MOTSIM_PARALLEL=1 swaps in the bit-parallel X01 engine
    // (identical results; different cost model); otherwise the
    // MOTSIM_SIM3_BACKEND default applies.
    const Sim3Backend backend = env_flag("MOTSIM_PARALLEL")
                                    ? Sim3Backend::BitPar
                                    : default_sim3_backend();
    auto simulate = [&](bool pruned_run) {
      std::vector<FaultStatus> init(
          collapsed.size(), FaultStatus::Undetected);
      if (pruned_run) init = xr.classify(collapsed.faults());
      const auto sim = make_fault_simulator3(backend, nl, collapsed.faults());
      sim->set_initial_status(init);
      return sim->run(seq);
    };
    Stopwatch t_x01;
    const auto full = simulate(false);
    const double x01_s = t_x01.elapsed_seconds();

    Stopwatch t_x01p;
    const auto fast = simulate(true);
    const double x01p_s = t_x01p.elapsed_seconds();

    sum_x01 += x01_s;
    sum_x01p += x01p_s;
    sum_idx += idx_s;

    const double speedup = x01p_s > 0 ? x01_s / x01p_s : 0.0;
    const double paper_speedup =
        (info.t1.x01 > 0 && info.t1.x01p > 0) ? info.t1.x01 / info.t1.x01p
                                              : -1.0;
    table.add_row({info.spec.name, std::to_string(collapsed.size()),
                   bench::ref_int(info.t1.faults), std::to_string(xred),
                   bench::ref_int(info.t1.xred),
                   std::to_string(fast.detected_count),
                   bench::ref_int(info.t1.fd), format_fixed(x01_s, 3),
                   format_fixed(x01p_s, 3), format_fixed(idx_s, 3),
                   format_fixed(speedup, 2) + "x",
                   paper_speedup < 0 ? "-"
                                     : format_fixed(paper_speedup, 2) + "x"});

    // Cross-check Table I's implicit invariant: pruning never changes
    // the detected set.
    if (full.detected_count != fast.detected_count) {
      std::fprintf(stderr, "INVARIANT VIOLATION on %s: X01=%zu X01p=%zu\n",
                   info.spec.name.c_str(), full.detected_count,
                   fast.detected_count);
      return 1;
    }
  }

  table.print(std::cout);
  std::printf("\ntotals: X01 %.3f s, X01_p %.3f s, ID_X-red %.3f s "
              "(overall speedup %.2fx including ID_X-red itself)\n",
              sum_x01, sum_x01p, sum_idx,
              sum_x01 / (sum_x01p + sum_idx));
  return 0;
}
