// Ablation: N-detect coverage versus sequence length.
//
// Beyond-paper extension: the N-detect metric (every fault observed at
// N distinct frames) quantifies how much "slack" a sequence carries
// beyond plain stuck-at coverage. Random sequences saturate 1-detect
// coverage quickly on synchronizable circuits but need several times
// the length for 8-detect — the gap the compacted sequences of
// Table III close more economically.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "faults/collapse.h"
#include "sim3/ndetect.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/table_printer.h"

using namespace motsim;

int main() {
  bench::print_preamble("Ablation", "N-detect coverage vs sequence length");

  TablePrinter table({"Circ.", "|F|", "|T|", "1-det", "2-det", "4-det",
                      "8-det"});

  for (const char* name : {"s298", "s344", "s1494"}) {
    const BenchmarkInfo* info = find_benchmark(name);
    if (info == nullptr) continue;
    if (!bench::include_circuit(*info, /*quick_gate_cutoff=*/700)) continue;
    const Netlist nl = make_benchmark(*info);
    const CollapsedFaultList faults(nl);

    for (std::size_t len : {50u, 200u}) {
      Rng rng(bench::workload_seed());
      const TestSequence seq = random_sequence(nl, len, rng);
      const NDetectResult r = run_n_detect(nl, faults.faults(), seq, 8);

      std::size_t at_least[4] = {0, 0, 0, 0};  // >=1, >=2, >=4, >=8
      for (std::uint32_t d : r.detections) {
        at_least[0] += (d >= 1);
        at_least[1] += (d >= 2);
        at_least[2] += (d >= 4);
        at_least[3] += (d >= 8);
      }
      table.add_row({name, std::to_string(faults.size()),
                     std::to_string(len), std::to_string(at_least[0]),
                     std::to_string(at_least[1]),
                     std::to_string(at_least[2]),
                     std::to_string(at_least[3])});
    }
  }

  table.print(std::cout);
  std::printf("\nexpected shape: monotone decay with N; longer sequences "
              "close the N-detect gap.\n");
  return 0;
}
