// Micro-benchmarks of the simulation kernels (google-benchmark):
// three-valued true-value frames, event-driven fault propagation and
// the symbolic frame step, on roster circuits of increasing size.
//
// The custom main additionally races the two FaultSimulator3 backends
// (event-driven vs bit-parallel PPSFP) over the synthetic roster and
// writes the comparison to BENCH_sim3.json — the repo's first
// machine-readable perf artifact. Throughput is reported as
// fault-frames per second: one fault-machine simulated over one frame.
// Google-benchmark flags pass through (use --benchmark_filter=NONE to
// run only the backend race, e.g. in CI smoke jobs).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_data/registry.h"
#include "core/sym_true_value.h"
#include "faults/collapse.h"
#include "sim3/bitpar_sim3.h"
#include "sim3/fault_sim3.h"
#include "sim3/good_sim3.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace {

using namespace motsim;

const char* circuit_for(int idx) {
  switch (idx) {
    case 0:
      return "s298";
    case 1:
      return "s832";
    default:
      return "s1494";
  }
}

void BM_GoodSim3Frame(benchmark::State& state) {
  const Netlist nl = make_benchmark(circuit_for(static_cast<int>(state.range(0))));
  Rng rng(1);
  const TestSequence seq = random_sequence(nl, 64, rng);
  GoodSim3 sim(nl);
  std::size_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.step(seq[t % seq.size()]));
    ++t;
  }
  state.SetLabel(nl.name());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nl.node_count()));
}
BENCHMARK(BM_GoodSim3Frame)->Arg(0)->Arg(1)->Arg(2);

void BM_FaultSim3FullRun(benchmark::State& state) {
  const Netlist nl = make_benchmark(circuit_for(static_cast<int>(state.range(0))));
  const CollapsedFaultList faults(nl);
  Rng rng(2);
  const TestSequence seq = random_sequence(nl, 32, rng);
  for (auto _ : state) {
    FaultSim3 sim(nl, faults.faults());
    benchmark::DoNotOptimize(sim.run(seq).detected_count);
  }
  state.SetLabel(nl.name());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(faults.size()));
}
BENCHMARK(BM_FaultSim3FullRun)->Arg(0)->Arg(1)->Arg(2);

void BM_BitParSim3FullRun(benchmark::State& state) {
  const Netlist nl = make_benchmark(circuit_for(static_cast<int>(state.range(0))));
  const CollapsedFaultList faults(nl);
  Rng rng(2);
  const TestSequence seq = random_sequence(nl, 32, rng);
  for (auto _ : state) {
    BitParFaultSim3 sim(nl, faults.faults());
    benchmark::DoNotOptimize(sim.run(seq).detected_count);
  }
  state.SetLabel(nl.name());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(faults.size()));
}
BENCHMARK(BM_BitParSim3FullRun)->Arg(0)->Arg(1)->Arg(2);

void BM_SingleFaultFrame(benchmark::State& state) {
  const Netlist nl = make_benchmark("s1494");
  const CollapsedFaultList faults(nl);
  Rng rng(3);
  const TestSequence seq = random_sequence(nl, 8, rng);
  GoodSim3 good(nl);
  good.step(seq[0]);
  FaultPropagator3 prop(nl);
  std::size_t i = 0;
  for (auto _ : state) {
    StateDiff3 diff;
    benchmark::DoNotOptimize(prop.step(faults.faults()[i % faults.size()],
                                       diff, good.values(), good.state()));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SingleFaultFrame);

void BM_SymTrueValueFrame(benchmark::State& state) {
  const Netlist nl = make_benchmark(circuit_for(static_cast<int>(state.range(0))));
  Rng rng(4);
  const TestSequence seq = random_sequence(nl, 32, rng);
  bdd::BddManager mgr;
  SymTrueValueSim sim(nl, mgr, StateVars(nl.dff_count()));
  std::size_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.step(seq[t % seq.size()]));
    ++t;
    if (t % seq.size() == 0) {
      sim.reset_symbolic();
      mgr.gc();
    }
  }
  state.SetLabel(nl.name());
}
BENCHMARK(BM_SymTrueValueFrame)->Arg(0)->Arg(1)->Arg(2);

void BM_CollapseFaultList(benchmark::State& state) {
  const Netlist nl = make_benchmark("s1494");
  for (auto _ : state) {
    const CollapsedFaultList faults(nl);
    benchmark::DoNotOptimize(faults.size());
  }
}
BENCHMARK(BM_CollapseFaultList);

// ---------------------------------------------------------------------------
// Backend race: event-driven vs bit-parallel on the synthetic roster
// ---------------------------------------------------------------------------

struct BackendRow {
  std::string circuit;
  std::size_t faults = 0;
  std::size_t frames = 0;
  std::size_t detected = 0;
  double event_s = 0;
  double bitpar_s = 0;
  double event_ffps = 0;   // fault-frames per second
  double bitpar_ffps = 0;
  double speedup = 0;      // event_s / bitpar_s
};

int run_backend_race() {
  bench::print_preamble("sim3 backends",
                        "event-driven vs bit-parallel PPSFP (frames/s)");

  TablePrinter table({"Circ.", "|F|", "frames", "event[s]", "bitpar[s]",
                      "event f/s", "bitpar f/s", "speedup"});
  std::vector<BackendRow> rows;

  for (const BenchmarkInfo& info : benchmark_roster()) {
    // The cutoff admits the s9234/s13207-class circuits: the packed
    // engine's advantage grows with circuit size (the event engine
    // walks one cone per fault, the packed kernel one union cone per
    // 64), so the default artifact should cover the sizes where that
    // shows. The s15850.1-and-up rows take minutes under the event
    // backend and stay behind MOTSIM_FULL=1.
    if (!bench::include_circuit(info, /*quick_gate_cutoff=*/8000)) continue;

    const Netlist nl = make_benchmark(info);
    const CollapsedFaultList faults(nl);
    Rng rng(bench::workload_seed() + info.spec.seed);
    const TestSequence seq = random_sequence(nl, bench::vector_count(), rng);

    BackendRow row;
    row.circuit = info.spec.name;
    row.faults = faults.size();
    row.frames = seq.size();
    const double fault_frames =
        static_cast<double>(faults.size()) * static_cast<double>(seq.size());

    Stopwatch te;
    FaultSim3 event_sim(nl, faults.faults());
    const auto re = event_sim.run(seq);
    row.event_s = te.elapsed_seconds();

    Stopwatch tb;
    BitParFaultSim3 bitpar_sim(nl, faults.faults());
    const auto rb = bitpar_sim.run(seq);
    row.bitpar_s = tb.elapsed_seconds();

    if (re.status != rb.status || re.detect_frame != rb.detect_frame) {
      std::fprintf(stderr, "MISMATCH on %s: backends disagree\n",
                   row.circuit.c_str());
      return 1;
    }
    row.detected = re.detected_count;
    row.event_ffps = row.event_s > 0 ? fault_frames / row.event_s : 0;
    row.bitpar_ffps = row.bitpar_s > 0 ? fault_frames / row.bitpar_s : 0;
    row.speedup = row.bitpar_s > 0 ? row.event_s / row.bitpar_s : 0;
    rows.push_back(row);

    table.add_row({row.circuit, std::to_string(row.faults),
                   std::to_string(row.frames), format_fixed(row.event_s, 3),
                   format_fixed(row.bitpar_s, 3),
                   format_fixed(row.event_ffps, 0),
                   format_fixed(row.bitpar_ffps, 0),
                   format_fixed(row.speedup, 2) + "x"});
  }

  table.print(std::cout);
  std::printf("\nspeedup = event time / bitpar time; f/s = fault-frames "
              "per second\n(one fault-machine simulated over one frame).\n");

  // Machine-readable artifact for the perf trajectory.
  std::FILE* out = std::fopen("BENCH_sim3.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_sim3.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"sim3_microbench\",\n");
  std::fprintf(out, "  \"vectors\": %zu,\n", bench::vector_count());
  std::fprintf(out, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(bench::workload_seed()));
  std::fprintf(out, "  \"metric\": \"fault_frames_per_second\",\n");
  std::fprintf(out, "  \"circuits\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BackendRow& r = rows[i];
    std::fprintf(out,
                 "    {\"circuit\": \"%s\", \"faults\": %zu, \"frames\": %zu, "
                 "\"detected\": %zu,\n"
                 "     \"event\": {\"seconds\": %.6f, \"frames_per_s\": %.1f},\n"
                 "     \"bitpar\": {\"seconds\": %.6f, \"frames_per_s\": %.1f},\n"
                 "     \"speedup\": %.3f}%s\n",
                 r.circuit.c_str(), r.faults, r.frames, r.detected, r.event_s,
                 r.event_ffps, r.bitpar_s, r.bitpar_ffps, r.speedup,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_sim3.json (%zu circuits)\n", rows.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int rc = run_backend_race();
  if (rc != 0) return rc;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
