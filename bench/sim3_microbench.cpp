// Micro-benchmarks of the simulation kernels (google-benchmark):
// three-valued true-value frames, event-driven fault propagation and
// the symbolic frame step, on roster circuits of increasing size.

#include <benchmark/benchmark.h>

#include "bench_data/registry.h"
#include "core/sym_true_value.h"
#include "faults/collapse.h"
#include "sim3/fault_sim3.h"
#include "sim3/good_sim3.h"
#include "tpg/sequences.h"
#include "util/rng.h"

namespace {

using namespace motsim;

const char* circuit_for(int idx) {
  switch (idx) {
    case 0:
      return "s298";
    case 1:
      return "s832";
    default:
      return "s1494";
  }
}

void BM_GoodSim3Frame(benchmark::State& state) {
  const Netlist nl = make_benchmark(circuit_for(static_cast<int>(state.range(0))));
  Rng rng(1);
  const TestSequence seq = random_sequence(nl, 64, rng);
  GoodSim3 sim(nl);
  std::size_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.step(seq[t % seq.size()]));
    ++t;
  }
  state.SetLabel(nl.name());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nl.node_count()));
}
BENCHMARK(BM_GoodSim3Frame)->Arg(0)->Arg(1)->Arg(2);

void BM_FaultSim3FullRun(benchmark::State& state) {
  const Netlist nl = make_benchmark(circuit_for(static_cast<int>(state.range(0))));
  const CollapsedFaultList faults(nl);
  Rng rng(2);
  const TestSequence seq = random_sequence(nl, 32, rng);
  for (auto _ : state) {
    FaultSim3 sim(nl, faults.faults());
    benchmark::DoNotOptimize(sim.run(seq).detected_count);
  }
  state.SetLabel(nl.name());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(faults.size()));
}
BENCHMARK(BM_FaultSim3FullRun)->Arg(0)->Arg(1)->Arg(2);

void BM_SingleFaultFrame(benchmark::State& state) {
  const Netlist nl = make_benchmark("s1494");
  const CollapsedFaultList faults(nl);
  Rng rng(3);
  const TestSequence seq = random_sequence(nl, 8, rng);
  GoodSim3 good(nl);
  good.step(seq[0]);
  FaultPropagator3 prop(nl);
  std::size_t i = 0;
  for (auto _ : state) {
    StateDiff3 diff;
    benchmark::DoNotOptimize(prop.step(faults.faults()[i % faults.size()],
                                       diff, good.values(), good.state()));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SingleFaultFrame);

void BM_SymTrueValueFrame(benchmark::State& state) {
  const Netlist nl = make_benchmark(circuit_for(static_cast<int>(state.range(0))));
  Rng rng(4);
  const TestSequence seq = random_sequence(nl, 32, rng);
  bdd::BddManager mgr;
  SymTrueValueSim sim(nl, mgr, StateVars(nl.dff_count()));
  std::size_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.step(seq[t % seq.size()]));
    ++t;
    if (t % seq.size() == 0) {
      sim.reset_symbolic();
      mgr.gc();
    }
  }
  state.SetLabel(nl.name());
}
BENCHMARK(BM_SymTrueValueFrame)->Arg(0)->Arg(1)->Arg(2);

void BM_CollapseFaultList(benchmark::State& state) {
  const Netlist nl = make_benchmark("s1494");
  for (auto _ : state) {
    const CollapsedFaultList faults(nl);
    benchmark::DoNotOptimize(faults.size());
  }
}
BENCHMARK(BM_CollapseFaultList);

}  // namespace

BENCHMARK_MAIN();
