// Table IV of the paper: the cost of symbolic test evaluation — the
// shared OBDD size of the symbolic output sequence and the time to
// evaluate one circuit-under-test response against it.
//
// The paper considers the circuits where full MOT detected faults that
// neither SOT nor rMOT could (s208.1, s510, s953, s5378), for both the
// random (Table II) and the deterministic (Table III) sequences. For
// the s5378-size circuit only a partial symbolic sequence is built —
// the first 7 vectors run three-valued — mirroring the paper's
// asterisk.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/test_eval.h"
#include "faults/collapse.h"
#include "sim3/sim2.h"
#include "tpg/compaction.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

using namespace motsim;

namespace {

struct Measured {
  std::size_t frames = 0;
  std::size_t bdd_size = 0;
  double eval_seconds = 0;
  bool partial = false;
};

Measured measure(const Netlist& nl, const TestSequence& seq,
                 std::size_t skip_frames, Rng& rng) {
  Measured out;
  out.frames = seq.size();
  out.partial = skip_frames > 0;

  bdd::BddManager mgr;
  const SymbolicResponse response(nl, mgr, seq, skip_frames);
  out.bdd_size = response.bdd_size();

  // "To estimate the time needed for the test evaluation we computed a
  // possible test response of the fault-free circuit" — a concrete
  // power-up state, simulated and checked against the symbolic
  // sequence (this exercises the full product computation).
  std::vector<bool> init(nl.dff_count());
  for (std::size_t i = 0; i < init.size(); ++i) init[i] = rng.flip();
  Sim2 cut(nl);
  const auto resp = cut.run(init, to_bool_sequence(seq));

  const TestEvaluator evaluator(response);
  Stopwatch timer;
  const Verdict v = evaluator.evaluate(resp);
  out.eval_seconds = timer.elapsed_seconds();
  if (v != Verdict::Pass) {
    std::fprintf(stderr, "BUG: fault-free response rejected on %s\n",
                 nl.name().c_str());
  }
  return out;
}

}  // namespace

int main() {
  bench::print_preamble("Table IV", "symbolic test evaluation");

  TablePrinter table({"Circ.", "PO", "|T|rnd", "size", "sz(pap)", "t[s]",
                      "t(pap)", "|T|det", "size", "sz(pap)", "t[s]",
                      "t(pap)"});

  for (const BenchmarkInfo& info : benchmark_roster()) {
    if (!info.in_table4) continue;
    if (!bench::include_circuit(info, /*quick_gate_cutoff=*/3000)) continue;

    const Netlist nl = make_benchmark(info);
    const CollapsedFaultList collapsed(nl);
    Rng rng(bench::workload_seed() + info.spec.seed);

    // Large circuits get the paper's partial evaluation (7 three-valued
    // lead-in frames).
    const std::size_t skip = info.spec.target_gates > 2000 ? 7 : 0;

    // Random sequence of the Table II length.
    const TestSequence rnd = random_sequence(nl, bench::vector_count(), rng);
    const Measured mr = measure(nl, rnd, skip, rng);

    // Deterministic sequence as in Table III.
    CompactionConfig comp;
    comp.seed = bench::workload_seed() + info.spec.seed;
    comp.max_length = 2 * bench::vector_count();
    comp.min_length = bench::vector_count() / 4;
    const CompactionResult gen =
        generate_deterministic_sequence(nl, collapsed.faults(), comp);
    Measured md;
    if (!gen.sequence.empty()) md = measure(nl, gen.sequence, skip, rng);

    auto size_cell = [](const Measured& m) {
      return (m.partial ? "*" : "") + std::to_string(m.bdd_size);
    };
    auto ref_size = [](int v, bool partial) {
      return v < 0 ? std::string("-")
                   : (partial ? "*" : "") + std::to_string(v);
    };
    table.add_row({info.spec.name, std::to_string(nl.output_count()),
                   std::to_string(mr.frames), size_cell(mr),
                   ref_size(info.t4.rand_size, info.t4.rand_partial),
                   format_fixed(mr.eval_seconds, 4),
                   bench::ref_time(info.t4.rand_s),
                   std::to_string(md.frames), size_cell(md),
                   ref_size(info.t4.det_size, info.t4.det_partial),
                   format_fixed(md.eval_seconds, 4),
                   bench::ref_time(info.t4.det_s)});
  }

  table.print(std::cout);
  std::printf(
      "\n'*' = partial symbolic sequence (leading frames three-valued).\n"
      "expected shape: moderate OBDD sizes, millisecond-scale "
      "evaluation.\n");
  return 0;
}
