// motsim_lint — static netlist analysis front end (docs/ANALYSIS.md).
//
//   motsim_lint [options] <circuit> [<circuit> ...]
//
//   <circuit>        roster name (s27, s298, ...) or path to a
//                    .bench file
//   --list           list the benchmark roster and exit
//   --json           machine-readable report instead of text (one
//                    JSON document per circuit, in argument order)
//   --scoap          SCOAP testability summary plus the hardest
//                    faults (text mode only)
//   --top N          how many hardest faults --scoap lists (default 5)
//   --static-xred    append static X-redundancy notes (the
//                    sequence-independent subset of ID_X-red) to the
//                    report
//   --implications   append the implication engine's findings:
//                    every-frame-constant and settled nets plus a
//                    summary of the learned implications
//   --untestable     append one note per statically untestable fault
//                    (FIRE-style fault-independent identification)
//   --cones          append cone-of-influence notes: one per fault
//                    cluster sharing an observation cone (the shard-
//                    mate groups the trimming pass exploits) plus a
//                    circuit-level cone-size summary
//   --sgraph         append s-graph notes: one per nontrivial SCC of
//                    the flip-flop dependency graph, one per finite-
//                    depth flip-flop, one per greedy feedback-set
//                    candidate, plus a circuit-level summary
//
// Exit code is the worst finding across all circuits: 0 clean (notes
// never fail a run), 1 warnings, 2 errors. Usage errors exit 2.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/cone.h"
#include "analysis/diagnostics.h"
#include "analysis/sgraph.h"
#include "analysis/implication.h"
#include "analysis/lint.h"
#include "analysis/static_xred.h"
#include "analysis/testability.h"
#include "bench_data/registry.h"
#include "circuit/bench_io.h"
#include "faults/fault.h"
#include "faults/fault_list.h"
#include "obs/log.h"
#include "obs/telemetry.h"
#include "util/cli_args.h"
#include "util/version.h"

using namespace motsim;

namespace {

struct Options {
  std::vector<std::string> circuits;
  bool list = false;
  bool json = false;
  bool scoap = false;
  bool static_xred = false;
  bool implications = false;
  bool untestable = false;
  bool cones = false;
  bool sgraph = false;
  std::size_t top = 5;
  std::string log_path;
  std::string log_level;
};

[[noreturn]] void usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: motsim_lint [options] <circuit> [<circuit> ...]\n"
               "  <circuit>      roster name (try --list) or .bench file "
               "path\n"
               "  --list         list the benchmark roster\n"
               "  --json         JSON report (one document per circuit)\n"
               "  --scoap        SCOAP testability summary + hardest "
               "faults\n"
               "  --top N        hardest faults to list (default 5)\n"
               "  --static-xred  append static X-redundancy notes\n"
               "  --implications append implication-engine notes (constant\n"
               "                 and settled nets, learned-implication "
               "summary)\n"
               "  --untestable   append statically-untestable-fault notes\n"
               "  --cones        append cone-of-influence cluster notes and\n"
               "                 a cone-size summary (docs/ANALYSIS.md)\n"
               "  --sgraph       append s-graph notes: SCCs, per-flip-flop\n"
               "                 synchronization depths, the greedy feedback\n"
               "                 set and a summary (docs/ANALYSIS.md)\n"
               "  --log PATH     structured JSONL log ('-' = stderr; also\n"
               "                 MOTSIM_LOG)\n"
               "  --log-level L  trace|debug|info|warn|error|off (default\n"
               "                 info; also MOTSIM_LOG_LEVEL)\n"
               "  --version      print version and exit\n"
               "exit code: 0 clean, 1 warnings, 2 errors (worst circuit "
               "wins)\n");
  std::exit(code);
}

[[noreturn]] void fail(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n", msg.c_str());
  std::fprintf(stderr, "run 'motsim_lint --help' for usage\n");
  std::exit(2);
}

/// Strict unsigned parse via util/cli_args (shared with motsim_cli);
/// any parse problem is fatal with the helper's message.
std::size_t parse_size_flag(const std::string& flag, const std::string& v) {
  const auto r = parse_cli_size(flag, v);
  if (!r.has_value()) fail(r.error());
  return *r;
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) fail(a + " expects a value");
      return argv[++i];
    };
    if (a == "--help" || a == "-h") usage(0);
    else if (a == "--version") {
      std::printf("%s\n", build_info_string());
      std::exit(0);
    }
    else if (a == "--list") o.list = true;
    else if (a == "--json") o.json = true;
    else if (a == "--scoap") o.scoap = true;
    else if (a == "--top") o.top = parse_size_flag(a, next());
    else if (a == "--static-xred") o.static_xred = true;
    else if (a == "--implications") o.implications = true;
    else if (a == "--untestable") o.untestable = true;
    else if (a == "--cones") o.cones = true;
    else if (a == "--sgraph") o.sgraph = true;
    else if (a == "--log") o.log_path = next();
    else if (a == "--log-level") o.log_level = next();
    else if (!a.empty() && a[0] == '-') fail("unknown option '" + a + "'");
    else o.circuits.push_back(a);
  }
  if (!o.list && o.circuits.empty()) fail("no circuit given");
  if (o.json && o.scoap) {
    fail("--scoap is text-only and cannot be combined with --json");
  }
  return o;
}

Netlist load_circuit(const std::string& name) {
  if (find_benchmark(name) != nullptr) return make_benchmark(name);
  std::ifstream file(name);
  if (!file) {
    std::fprintf(stderr,
                 "error: '%s' is neither a roster circuit nor a readable "
                 ".bench file\n",
                 name.c_str());
    std::exit(2);
  }
  return parse_bench(file, name);
}

/// Appends the static X-redundancy verdict as two circuit-level notes
/// (counts per rule) plus one note per affected fault, so --json
/// consumers can filter on "xred.static-unobservable" /
/// "xred.static-constant" without re-running the analysis.
void append_static_xred(const Netlist& nl, DiagnosticReport& report) {
  const StaticXRedAnalysis analysis(nl);
  const std::vector<Fault> faults = all_faults(nl);
  std::size_t unobservable = 0;
  std::size_t constant = 0;
  for (const Fault& f : faults) {
    if (!analysis.is_static_x_redundant(f)) continue;
    const bool by_observability = !analysis.observable(f.site.node);
    by_observability ? ++unobservable : ++constant;
    report.add(nl,
               by_observability ? "xred.static-unobservable"
                                : "xred.static-constant",
               Severity::Note, f.site.node,
               "fault " + fault_name(nl, f) +
                   (by_observability
                        ? " can never reach an output or flip-flop"
                        : " can never be activated (net is constant)"));
  }
  report.add(nl, "xred.static-summary", Severity::Note, kNoNode,
             std::to_string(unobservable + constant) + " of " +
                 std::to_string(faults.size()) +
                 " faults statically X-redundant (" +
                 std::to_string(unobservable) + " unobservable, " +
                 std::to_string(constant) + " constant)");
}

/// Appends the implication engine's net-level findings: one note per
/// every-frame-constant internal net ("imp.constant-net"), one per net
/// that only settles after some frame ("imp.settled-net" — typically a
/// flip-flop fed by a constant), and a circuit-level summary of the
/// engine's counters ("imp.summary").
void append_implications(const Netlist& nl, const ImplicationEngine& eng,
                         DiagnosticReport& report) {
  const std::vector<ConstVal>& consts = eng.constants();
  const std::vector<SettledConst>& settled = eng.settled();
  for (NodeIndex n = 0; n < nl.node_count(); ++n) {
    const GateType t = nl.type(n);
    if (t == GateType::Const0 || t == GateType::Const1) continue;
    if (consts[n] != ConstVal::Unknown) {
      report.add(nl, "imp.constant-net", Severity::Note, n,
                 std::string("net is constant ") +
                     (consts[n] == ConstVal::One ? "1" : "0") +
                     " in every frame (static implication)");
    } else if (settled[n].value != ConstVal::Unknown) {
      report.add(nl, "imp.settled-net", Severity::Note, n,
                 std::string("net settles to ") +
                     (settled[n].value == ConstVal::One ? "1" : "0") +
                     " from frame " + std::to_string(settled[n].from_frame) +
                     " on, for every power-up state");
    }
  }
  const ImplicationStats& st = eng.stats();
  report.add(nl, "imp.summary", Severity::Note, kNoNode,
             std::to_string(st.direct_implications) +
                 " direct implications, " +
                 std::to_string(st.learned_implications) + " learned; " +
                 std::to_string(st.structural_constants +
                                st.learned_constants) +
                 " constant nets (" + std::to_string(st.learned_constants) +
                 " by learning), " + std::to_string(st.settled_constants) +
                 " settled");
}

/// Appends one note per statically untestable fault
/// ("untestable.fault") plus a circuit-level count
/// ("untestable.summary"). The verdict is fault-independent FIRE-style
/// identification: no input sequence detects the fault under any
/// observation strategy (docs/ANALYSIS.md).
void append_untestable(const Netlist& nl, const ImplicationEngine& eng,
                       DiagnosticReport& report) {
  const std::vector<Fault> faults = all_faults(nl);
  std::size_t count = 0;
  for (const Fault& f : faults) {
    if (!eng.is_static_untestable(f)) continue;
    ++count;
    report.add(nl, "untestable.fault", Severity::Note, f.site.node,
               "fault " + fault_name(nl, f) +
                   " is untestable by any input sequence");
  }
  report.add(nl, "untestable.summary", Severity::Note, kNoNode,
             std::to_string(count) + " of " + std::to_string(faults.size()) +
                 " faults statically untestable");
}

/// Appends the trimming pass's structural view of the fault list: one
/// note per cluster of two or more faults sharing a cone-of-influence
/// signature ("cone.cluster", anchored at the representative fault's
/// node — these are the shard-mate groups ParallelSymSim's
/// cluster-aware assignment packs together) plus one circuit-level
/// summary ("cone.summary") with the cluster census and the
/// min/median/max forward-cone sizes over all faults.
void append_cones(const Netlist& nl, DiagnosticReport& report) {
  ConeAnalysis analysis(nl);
  const std::vector<Fault> faults = all_faults(nl);
  const std::vector<ConeCluster> clusters = analysis.cluster_faults(faults);

  std::size_t singletons = 0;
  std::size_t shared = 0;
  std::size_t largest = 0;
  for (const ConeCluster& c : clusters) {
    if (c.fault_indices.size() < 2) {
      ++singletons;
      continue;
    }
    ++shared;
    largest = std::max(largest, c.fault_indices.size());
    const Fault& rep = faults[c.fault_indices.front()];
    report.add(nl, "cone.cluster", Severity::Note, rep.site.node,
               std::to_string(c.fault_indices.size()) +
                   " faults share one cone of influence (" +
                   std::to_string(c.summary.outputs_reached) + " outputs, " +
                   std::to_string(c.summary.dffs_reached) +
                   " flip-flops reachable; representative " +
                   fault_name(nl, rep) + ")");
  }

  std::vector<std::size_t> coi;
  coi.reserve(faults.size());
  for (const Fault& f : faults) {
    coi.push_back(analysis.fault_cone(f).forward_size);
  }
  std::sort(coi.begin(), coi.end());
  const std::size_t min_coi = coi.empty() ? 0 : coi.front();
  const std::size_t med_coi = coi.empty() ? 0 : coi[coi.size() / 2];
  const std::size_t max_coi = coi.empty() ? 0 : coi.back();
  report.add(nl, "cone.summary", Severity::Note, kNoNode,
             std::to_string(faults.size()) + " faults in " +
                 std::to_string(clusters.size()) + " cone clusters (" +
                 std::to_string(shared) + " shared, " +
                 std::to_string(singletons) + " singleton; largest " +
                 std::to_string(largest) +
                 " faults); cone of influence min/median/max " +
                 std::to_string(min_coi) + "/" + std::to_string(med_coi) +
                 "/" + std::to_string(max_coi) + " nodes");
}

/// Appends the s-graph pass's view of the sequential structure
/// (docs/ANALYSIS.md pass 6): one note per nontrivial SCC of the
/// flip-flop dependency graph ("sgraph.scc", anchored at the SCC's
/// lowest-position member — these flip-flops can hold their unknown
/// power-up value forever), one per finite-depth flip-flop
/// ("sgraph.depth" — its value is input-only after init_depth frames),
/// one per greedy feedback-set candidate ("sgraph.feedback" — a
/// partial-scan upper bound), plus the circuit-level summary
/// ("sgraph.summary").
void append_sgraph(const Netlist& nl, DiagnosticReport& report) {
  const SgraphInfo info = build_sgraph(nl);
  const std::size_t n = info.ff_count();

  // One note per nontrivial SCC, members gathered by id.
  std::vector<std::vector<std::uint32_t>> members;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (!info.in_nontrivial_scc[v]) continue;
    if (info.scc_id[v] >= members.size()) members.resize(info.scc_id[v] + 1);
    members[info.scc_id[v]].push_back(v);
  }
  for (const std::vector<std::uint32_t>& m : members) {
    if (m.empty()) continue;
    const NodeIndex rep = nl.dffs()[m.front()];
    report.add(nl, "sgraph.scc", Severity::Note, rep,
               std::to_string(m.size()) +
                   (m.size() == 1 ? " flip-flop forms a self-loop"
                                  : " flip-flops form one s-graph cycle") +
                   "; their power-up value can persist forever (no finite "
                   "synchronization depth)");
  }

  for (std::uint32_t v = 0; v < n; ++v) {
    if (info.init_depth[v] == kInfDepth) continue;
    report.add(nl, "sgraph.depth", Severity::Note, nl.dffs()[v],
               "flip-flop value is a function of primary inputs alone "
               "after " +
                   std::to_string(info.init_depth[v]) + " frame" +
                   (info.init_depth[v] == 1 ? "" : "s"));
  }

  for (const std::uint32_t v : greedy_feedback_set(info)) {
    report.add(nl, "sgraph.feedback", Severity::Note, nl.dffs()[v],
               "greedy feedback-set candidate: scanning this flip-flop "
               "helps break every s-graph cycle");
  }

  report.add(nl, "sgraph.summary", Severity::Note, kNoNode,
             sgraph_summary(nl, info));
}

void print_scoap(const Netlist& nl, std::size_t top) {
  const SiteTable sites(nl);
  const TestabilityScores scores = compute_testability(nl, sites);
  std::printf("%s\n", testability_summary(nl, scores).c_str());

  // Hardest testable faults first. Infinite-score faults are a count,
  // not list entries: no input sequence can provably test them in
  // three-valued logic from the unknown power-up state (dead cones,
  // constant nets, or feedback loops only a lucky power-up value
  // enters) — the symbolic MOT strategies are their only chance.
  const std::vector<Fault> faults = all_faults(nl);
  std::vector<std::pair<std::uint32_t, std::size_t>> ranked;
  std::size_t untestable = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const std::uint32_t d = scores.fault_difficulty(sites, nl, faults[i]);
    if (d == kScoapInf) {
      ++untestable;
    } else {
      ranked.emplace_back(d, i);
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  if (untestable != 0) {
    std::printf("untestable in three-valued logic (infinite score): %zu\n",
                untestable);
  }
  const std::size_t n = std::min(top, ranked.size());
  if (n != 0) std::printf("hardest faults:\n");
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("  %-30s difficulty %u\n",
                fault_name(nl, faults[ranked[i].second]).c_str(),
                ranked[i].first);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_args(argc, argv);

  if (o.list) {
    std::printf("%-10s %6s %4s %4s %6s  %s\n", "name", "PI", "PO", "FF",
                "gates", "style");
    for (const BenchmarkInfo& info : benchmark_roster()) {
      std::printf("%-10s %6zu %4zu %4zu %6zu  %s%s\n",
                  info.spec.name.c_str(), info.spec.inputs,
                  info.spec.outputs, info.spec.dffs, info.spec.target_gates,
                  info.exact ? "exact" : to_cstring(info.spec.style),
                  info.exact ? "" : " (synthetic)");
    }
    return 0;
  }

  // Logging surface shared with the other tools (docs/OBSERVABILITY.md):
  // the telemetry context only exists when a sink was configured.
  const char* const env_log = std::getenv("MOTSIM_LOG");
  std::optional<obs::Telemetry> telemetry;
  std::unique_ptr<obs::Logger> logger;
  if (!o.log_path.empty() || (env_log != nullptr && env_log[0] != '\0')) {
    telemetry.emplace();
    auto opened = obs::open_logger_from(o.log_path, o.log_level);
    if (!opened.has_value()) fail(opened.error());
    logger = std::move(*opened);
    telemetry->attach_logger(logger.get());
  }
  obs::Telemetry* const tele = telemetry.has_value() ? &*telemetry : nullptr;

  int worst = 0;
  bool first = true;
  for (const std::string& name : o.circuits) {
    const Netlist nl = load_circuit(name);
    DiagnosticReport report = run_lint(nl);
    if (o.static_xred) append_static_xred(nl, report);
    if (o.implications || o.untestable) {
      // One engine serves both passes — learning is the expensive part.
      const ImplicationEngine engine(nl);
      if (o.implications) append_implications(nl, engine, report);
      if (o.untestable) append_untestable(nl, engine, report);
    }
    if (o.cones) append_cones(nl, report);
    if (o.sgraph) append_sgraph(nl, report);

    if (!first) std::printf("\n");
    first = false;
    if (o.json) {
      std::printf("%s\n", report.to_json().c_str());
    } else {
      std::printf("%s", report.to_text().c_str());
      if (o.scoap) print_scoap(nl, o.top);
    }
    obs::log_event(
        tele, obs::LogLevel::Info, "lint.circuit",
        {obs::LogField::str("circuit", nl.name()),
         obs::LogField::u64("errors", report.count(Severity::Error)),
         obs::LogField::u64("warnings", report.count(Severity::Warning)),
         obs::LogField::u64("notes", report.count(Severity::Note))});
    worst = std::max(worst, report.exit_code());
  }
  return worst;
}
