#!/usr/bin/env python3
"""Render a sampler time series (motsim --sample-interval JSONL).

Each input line is one sample written by obs::Sampler:

    {"t":1.234,"rss_bytes":12345678,"gauges":{"bdd.live_nodes":431,...}}

This is the paper's node-count-vs-time story (the 30k space limit of
Tables II-IV) as a first-class artifact. With matplotlib installed the
script writes a PNG; without it (the default toolchain here) it renders
an ASCII chart to stdout — stdlib only, no dependencies.

Usage:
    tools/plot_samples.py motsim_samples.jsonl
    tools/plot_samples.py motsim_samples.jsonl --series bdd.live_nodes
    tools/plot_samples.py motsim_samples.jsonl --png out.png
"""

import argparse
import json
import sys


def load_samples(path):
    samples = []
    with open(path) as f:
        for n, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                samples.append(json.loads(line))
            except ValueError as e:
                sys.exit(f"{path}:{n}: invalid JSON: {e}")
    if not samples:
        sys.exit(f"{path}: no samples")
    return samples


def series_names(samples):
    names = ["rss_bytes"]
    seen = set(names)
    for s in samples:
        for name in s.get("gauges", {}):
            if name not in seen:
                seen.add(name)
                names.append(name)
    return names


def series_values(samples, name):
    """(t, value) pairs; gauges missing from a sample are skipped."""
    points = []
    for s in samples:
        if name == "rss_bytes":
            v = s.get("rss_bytes")
        else:
            v = s.get("gauges", {}).get(name)
        if v is not None:
            points.append((s.get("t", 0.0), float(v)))
    return points


def human(v):
    for unit, scale in (("G", 1e9), ("M", 1e6), ("k", 1e3)):
        if abs(v) >= scale:
            return f"{v / scale:.2f}{unit}"
    return f"{v:.0f}"


def ascii_plot(points, name, width=72, height=16):
    ts = [p[0] for p in points]
    vs = [p[1] for p in points]
    lo, hi = min(vs), max(vs)
    span = hi - lo or 1.0
    t0, t1 = min(ts), max(ts)
    tspan = t1 - t0 or 1.0

    grid = [[" "] * width for _ in range(height)]
    for t, v in points:
        x = min(int((t - t0) / tspan * (width - 1)), width - 1)
        y = min(int((v - lo) / span * (height - 1)), height - 1)
        grid[height - 1 - y][x] = "*"

    print(f"\n{name}  (min {human(lo)}, max {human(hi)}, "
          f"{len(points)} samples over {tspan:.2f}s)")
    for i, row in enumerate(grid):
        label = human(hi) if i == 0 else human(lo) if i == height - 1 else ""
        print(f"{label:>10} |{''.join(row)}")
    print(f"{'':>10} +{'-' * width}")
    print(f"{'':>10}  {t0:<8.2f}{'t [s]':^{width - 16}}{t1:>8.2f}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("samples", help="sampler JSONL file")
    ap.add_argument("--series", action="append",
                    help="series to plot (repeatable; default: all)")
    ap.add_argument("--list", action="store_true",
                    help="list available series and exit")
    ap.add_argument("--png", metavar="FILE",
                    help="write a PNG (requires matplotlib)")
    args = ap.parse_args()

    samples = load_samples(args.samples)
    names = series_names(samples)
    if args.list:
        print("\n".join(names))
        return
    wanted = args.series or names
    for name in wanted:
        if name not in names:
            sys.exit(f"unknown series '{name}' (have: {', '.join(names)})")

    if args.png:
        try:
            import matplotlib
            matplotlib.use("Agg")
            import matplotlib.pyplot as plt
        except ImportError:
            sys.exit("--png needs matplotlib; rerun without it for ASCII")
        fig, axes = plt.subplots(len(wanted), 1, sharex=True,
                                 figsize=(8, 2.2 * len(wanted)),
                                 squeeze=False)
        for ax, name in zip((a for row in axes for a in row), wanted):
            pts = series_values(samples, name)
            ax.plot([p[0] for p in pts], [p[1] for p in pts], lw=1)
            ax.set_ylabel(name, fontsize=8)
        axes[-1][0].set_xlabel("t [s]")
        fig.tight_layout()
        fig.savefig(args.png, dpi=120)
        print(f"wrote {args.png}")
        return

    for name in wanted:
        pts = series_values(samples, name)
        if pts:
            ascii_plot(pts, name)


if __name__ == "__main__":
    main()
