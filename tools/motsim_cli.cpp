// motsim_cli — command-line front end for the fault-simulation
// pipeline and for checkpointed campaigns.
//
//   motsim_cli [options] <circuit>
//
//   <circuit>        roster name (s27, s298, ...) or path to a
//                    .bench file
//   --list           list the benchmark roster and exit
//   --vectors N      random test-sequence length       (default 200)
//   --seed N         workload seed                     (default 1)
//   --strategy S     sot | rmot | mot                  (default mot)
//   --node-limit N   hybrid OBDD space limit           (default 30000)
//   --layout L       interleaved | blocked             (default interleaved)
//   --threads N      symbolic-stage workers; 0 = all
//                    hardware threads                  (default 1)
//   --chunk-size N   faults per parallel shard; 0 = auto
//   --progress       live progress of the symbolic stage on stderr
//   --lint           static analysis first: structurally undetectable
//                    faults are pruned up front (verdict static-X-red)
//   --no-trim        disable execution-redundancy trimming in the
//                    symbolic stage (bit-identical; perf knob only)
//   --no-sgraph      disable the s-graph MOT->SOT downgrade in the
//                    symbolic stage (bit-identical; perf knob only)
//   --no-xred        skip the ID_X-red stage
//   --no-symbolic    three-valued only (pure X01)
//   --sim3-backend B three-valued backend: event | bitpar
//   --parallel       alias for --sim3-backend bitpar (legacy)
//   --deterministic  compacted sequence instead of random vectors
//   --sync           also run the synchronizing-sequence analysis
//   --show-undetected  list the faults left undetected
//   --stats          structural statistics
//   --reset          insert a synchronous reset before everything
//   --dot FILE       Graphviz export of the netlist
//   --save-seq FILE / --load-seq FILE   sequence file I/O
//   --report-json FILE   full per-fault report as JSON
//
// Observability (docs/OBSERVABILITY.md):
//   --metrics-json FILE  engine metrics snapshot as one JSON object
//   --trace FILE         Chrome trace_event JSON (load in Perfetto or
//                        chrome://tracing)
//
// Campaign mode (docs/CHECKPOINT.md):
//   --store DIR            run as a checkpointed campaign in DIR
//   --resume               continue the campaign persisted in DIR
//   --extend-vectors N     append N random vectors to a completed
//                          campaign and simulate only the extension
//   --checkpoint-interval K  sync/checkpoint every K frames
//                          (campaign default 32; 0 = engine default)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "analysis/sgraph.h"
#include "bench_data/registry.h"
#include "circuit/bench_io.h"
#include "circuit/stats.h"
#include "circuit/transform.h"
#include "core/options.h"
#include "core/pipeline.h"
#include "core/progress.h"
#include "core/symbolic_fsm.h"
#include "faults/collapse.h"
#include "obs/log.h"
#include "obs/sampler.h"
#include "obs/telemetry.h"
#include "faults/report.h"
#include "store/campaign.h"
#include "store/run_store.h"
#include "tpg/compaction.h"
#include "tpg/sequence_io.h"
#include "tpg/sequences.h"
#include "util/cli_args.h"
#include "util/rng.h"
#include "util/signals.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/version.h"

using namespace motsim;

namespace {

struct Options {
  std::string circuit;
  /// Engine configuration — the unified SimOptions surface; the CLI
  /// flags below map 1:1 onto its fields.
  SimOptions sim;
  std::size_t vectors = 200;
  bool vectors_set = false;
  bool threads_set = false;
  bool sim3_backend_set = false;
  bool progress = false;
  bool deterministic = false;
  bool sync = false;
  bool show_undetected = false;
  bool list = false;
  bool stats = false;
  bool json = false;
  bool add_reset = false;
  std::string dot_file;
  std::string save_seq;
  std::string load_seq;
  std::string report_json;
  std::string metrics_json;
  std::string trace_file;
  std::string log_path;
  std::string log_level;
  std::string sample_file = "motsim_samples.jsonl";
  std::size_t sample_interval_ms = 0;
  std::string store_dir;
  bool resume = false;
  std::size_t extend_vectors = 0;
};

[[noreturn]] void usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: motsim_cli [options] <circuit>\n"
               "  <circuit>          roster name (try --list) or .bench "
               "file path\n"
               "  --list             list the benchmark roster\n"
               "  --vectors N        random sequence length (default 200)\n"
               "  --seed N           workload seed (default 1)\n"
               "  --strategy S       sot | rmot | mot (default mot)\n"
               "  --node-limit N     hybrid OBDD limit (default 30000)\n"
               "  --layout L         interleaved | blocked\n"
               "  --threads N        symbolic-stage workers; 0 = all "
               "hardware threads\n"
               "  --chunk-size N     faults per parallel shard (0 = auto)\n"
               "  --progress         live symbolic-stage progress on "
               "stderr\n"
               "  --lint             prune statically undetectable faults\n"
               "                     first (see docs/ANALYSIS.md)\n"
               "  --no-trim          disable execution-redundancy trimming\n"
               "                     in the symbolic stage (bit-identical\n"
               "                     results; see docs/ANALYSIS.md)\n"
               "  --no-sgraph        disable the s-graph MOT->SOT downgrade\n"
               "                     in the symbolic stage (bit-identical\n"
               "                     results; see docs/ANALYSIS.md)\n"
               "  --no-xred          skip ID_X-red\n"
               "  --no-symbolic      pure three-valued run\n"
               "  --sim3-backend B   three-valued backend: event (serial\n"
               "                     reference) or bitpar (64 faults/word);\n"
               "                     identical results (see docs/SIM3.md)\n"
               "  --parallel         alias for --sim3-backend bitpar\n"
               "  --deterministic    compacted (targeted) sequence\n"
               "  --sync             synchronizing-sequence analysis\n"
               "  --show-undetected  list undetected faults\n"
               "  --stats            print structural statistics\n"
               "  --reset            insert a synchronous reset first\n"
               "  --dot FILE         write the netlist as Graphviz dot\n"
               "  --json             print the summary as JSON too\n"
               "  --save-seq FILE    save the test sequence\n"
               "  --load-seq FILE    replay a saved sequence instead of\n"
               "                     generating one\n"
               "  --report-json FILE full per-fault report as JSON\n"
               "observability (see docs/OBSERVABILITY.md):\n"
               "  --metrics-json FILE  engine metrics snapshot as JSON\n"
               "  --trace FILE       Chrome trace_event JSON for\n"
               "                     Perfetto / chrome://tracing\n"
               "  --log PATH         structured JSONL log ('-' = stderr;\n"
               "                     also MOTSIM_LOG)\n"
               "  --log-level LVL    trace|debug|info|warn|error|off\n"
               "                     (default info; also MOTSIM_LOG_LEVEL)\n"
               "  --sample-interval N  sample gauges + RSS every N ms\n"
               "                     to --sample-file while running\n"
               "  --sample-file PATH sampler JSONL sink (default\n"
               "                     motsim_samples.jsonl)\n"
               "campaign mode (see docs/CHECKPOINT.md):\n"
               "  --store DIR        checkpointed campaign in DIR\n"
               "  --resume           continue the campaign in --store DIR\n"
               "  --extend-vectors N append N random vectors to a\n"
               "                     completed campaign; only still-live\n"
               "                     faults are re-simulated\n"
               "  --checkpoint-interval K  checkpoint every K frames\n"
               "                     (campaign default 32)\n"
               "  --version          print version and exit\n");
  std::exit(code);
}

[[noreturn]] void fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  std::fprintf(stderr, "run 'motsim_cli --help' for usage\n");
  std::exit(2);
}

/// Strict unsigned parse via util/cli_args (shared with motsim_lint);
/// any parse problem is fatal with the helper's message.
std::uint64_t parse_u64_flag(const std::string& flag, const std::string& v) {
  const auto r = parse_cli_u64(flag, v);
  if (!r.has_value()) fail(r.error());
  return *r;
}

std::size_t parse_size_flag(const std::string& flag, const std::string& v) {
  const auto r = parse_cli_size(flag, v);
  if (!r.has_value()) fail(r.error());
  return *r;
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) fail(a + " expects a value");
      return argv[++i];
    };
    if (a == "--help" || a == "-h") usage(0);
    else if (a == "--version") {
      std::printf("%s\n", build_info_string());
      std::exit(0);
    }
    else if (a == "--list") o.list = true;
    else if (a == "--vectors") {
      o.vectors = parse_size_flag(a, next());
      o.vectors_set = true;
    } else if (a == "--seed") o.sim.seed = parse_u64_flag(a, next());
    else if (a == "--node-limit") o.sim.node_limit = parse_size_flag(a, next());
    else if (a == "--threads") {
      o.sim.threads = parse_size_flag(a, next());
      o.threads_set = true;
    } else if (a == "--chunk-size") {
      o.sim.chunk_size = parse_size_flag(a, next());
    } else if (a == "--checkpoint-interval") {
      o.sim.checkpoint_interval = parse_size_flag(a, next());
    } else if (a == "--progress") o.progress = true;
    else if (a == "--strategy") {
      const std::string s = to_lower(next());
      if (s == "sot") o.sim.strategy = Strategy::Sot;
      else if (s == "rmot") o.sim.strategy = Strategy::Rmot;
      else if (s == "mot") o.sim.strategy = Strategy::Mot;
      else fail("--strategy expects sot, rmot or mot, got '" + s + "'");
    } else if (a == "--layout") {
      const std::string s = to_lower(next());
      if (s == "interleaved") o.sim.layout = VarLayout::Interleaved;
      else if (s == "blocked") o.sim.layout = VarLayout::Blocked;
      else fail("--layout expects interleaved or blocked, got '" + s + "'");
    } else if (a == "--lint") o.sim.analysis = true;
    else if (a == "--no-trim") o.sim.trim = false;
    else if (a == "--no-sgraph") o.sim.sgraph = false;
    else if (a == "--no-xred") o.sim.run_xred = false;
    else if (a == "--no-symbolic") o.sim.run_symbolic = false;
    else if (a == "--sim3-backend") {
      const std::string s = to_lower(next());
      const std::optional<Sim3Backend> b = parse_sim3_backend(s);
      if (!b.has_value()) {
        fail("--sim3-backend expects event or bitpar, got '" + s + "'");
      }
      o.sim.sim3_backend = *b;
      o.sim3_backend_set = true;
    } else if (a == "--parallel") {
      o.sim.sim3_backend = Sim3Backend::BitPar;
      o.sim3_backend_set = true;
    }
    else if (a == "--deterministic") o.deterministic = true;
    else if (a == "--sync") o.sync = true;
    else if (a == "--show-undetected") o.show_undetected = true;
    else if (a == "--stats") o.stats = true;
    else if (a == "--json") o.json = true;
    else if (a == "--reset") o.add_reset = true;
    else if (a == "--dot") o.dot_file = next();
    else if (a == "--save-seq") o.save_seq = next();
    else if (a == "--load-seq") o.load_seq = next();
    else if (a == "--report-json") o.report_json = next();
    else if (a == "--metrics-json") o.metrics_json = next();
    else if (a == "--trace") o.trace_file = next();
    else if (a == "--log") o.log_path = next();
    else if (a == "--log-level") o.log_level = next();
    else if (a == "--sample-interval") {
      o.sample_interval_ms = parse_size_flag(a, next());
    } else if (a == "--sample-file") o.sample_file = next();
    else if (a == "--store") o.store_dir = next();
    else if (a == "--resume") o.resume = true;
    else if (a == "--extend-vectors") {
      o.extend_vectors = parse_size_flag(a, next());
      if (o.extend_vectors == 0) {
        fail("--extend-vectors expects a positive vector count");
      }
    } else if (!a.empty() && a[0] == '-') {
      fail("unknown option '" + a + "'");
    } else if (o.circuit.empty()) {
      o.circuit = a;
    } else {
      fail("unexpected argument '" + a + "' (circuit already given: '" +
           o.circuit + "')");
    }
  }
  if (!o.list && o.circuit.empty()) fail("no circuit given");

  // Flag-combination rules: catch contradictions here, with named
  // messages, instead of surprising the user downstream.
  if (o.resume && o.store_dir.empty()) fail("--resume requires --store DIR");
  if (o.extend_vectors != 0 && o.store_dir.empty()) {
    fail("--extend-vectors requires --store DIR");
  }
  if (o.resume && o.extend_vectors != 0) {
    fail("--resume and --extend-vectors are mutually exclusive (resume an "
         "incomplete campaign first, then extend it)");
  }
  if (!o.store_dir.empty() && !o.sim.run_symbolic) {
    fail("--store campaigns require the symbolic engine; drop "
         "--no-symbolic");
  }
  if (o.resume || o.extend_vectors != 0) {
    if (o.vectors_set) {
      fail("--vectors cannot be combined with --resume/--extend-vectors "
           "(the campaign sequence lives in the store)");
    }
    if (o.deterministic) {
      fail("--deterministic cannot be combined with "
           "--resume/--extend-vectors");
    }
    if (!o.load_seq.empty()) {
      fail("--load-seq cannot be combined with --resume/--extend-vectors");
    }
    if (!o.save_seq.empty()) {
      fail("--save-seq cannot be combined with --resume/--extend-vectors "
           "(the sequence is already in the store)");
    }
  }
  return o;
}

/// --progress sink: a line on stderr every few frames plus one per
/// fallback window and per finished pipeline stage. Under --threads N
/// the parallel driver serializes the callbacks, so plain counters
/// suffice. The throughput figure counts every on_frame call, so with
/// fault sharding it is aggregate frames/s across the shards and the
/// ETA (based on the reporting shard's frame index) is approximate.
class StderrProgress final : public ProgressSink {
 public:
  /// `total_frames` sizes the ETA; pass 0 when the sequence length is
  /// not known up front (campaign resume) to omit it.
  explicit StderrProgress(std::size_t total_frames)
      : total_frames_(total_frames) {}

  void on_frame(std::size_t frame, std::size_t live_nodes,
                std::size_t faults_remaining) override {
    ++frames_done_;
    if (frame % 25 != 0) return;
    const double elapsed = timer_.elapsed_seconds();
    const double fps =
        elapsed > 0 ? static_cast<double>(frames_done_) / elapsed : 0.0;
    char rate[64] = "";
    if (fps > 0) {
      std::snprintf(rate, sizeof(rate), ", %.0f frames/s", fps);
    }
    char eta[48] = "";
    if (fps > 0 && total_frames_ > frame) {
      std::snprintf(eta, sizeof(eta), ", ETA %.1f s",
                    static_cast<double>(total_frames_ - frame) / fps);
    }
    std::fprintf(stderr,
                 "[sym] frame %zu: %zu live nodes, %zu faults left, "
                 "%zu detected so far%s%s\n",
                 frame, live_nodes, faults_remaining, detected_, rate, eta);
  }
  void on_fallback_window(std::size_t frame,
                          std::size_t window_frames) override {
    std::fprintf(stderr,
                 "[sym] frame %zu: node limit hit — three-valued window "
                 "of %zu frames\n",
                 frame, window_frames);
  }
  void on_fault_detected(std::size_t /*fault_index*/,
                         std::uint32_t /*frame*/) override {
    ++detected_;
  }
  void on_stage(const char* name, double seconds) override {
    std::fprintf(stderr, "[stage] %-16s %.3f s\n", name, seconds);
  }

 private:
  std::size_t total_frames_;
  Stopwatch timer_;
  std::size_t frames_done_ = 0;
  std::size_t detected_ = 0;
};

/// Flushes --metrics-json / --trace outputs (when requested) and, under
/// --progress, the human-readable telemetry digest. Returns 0 or 1.
int write_telemetry_outputs(const Options& o,
                            const obs::Telemetry* telemetry) {
  if (telemetry == nullptr) return 0;
  if (o.progress) {
    std::fprintf(stderr, "\n--- telemetry ---\n%s",
                 telemetry->summary().c_str());
  }
  if (!o.metrics_json.empty()) {
    if (const auto w = telemetry->write_metrics_json(o.metrics_json);
        !w.has_value()) {
      std::fprintf(stderr, "error: %s\n", w.error().c_str());
      return 1;
    }
    std::printf("wrote metrics to %s\n", o.metrics_json.c_str());
  }
  if (!o.trace_file.empty()) {
    if (const auto w = telemetry->write_trace_json(o.trace_file);
        !w.has_value()) {
      std::fprintf(stderr, "error: %s\n", w.error().c_str());
      return 1;
    }
    std::printf("wrote trace to %s (load in Perfetto or "
                "chrome://tracing)\n",
                o.trace_file.c_str());
  }
  return 0;
}

Netlist load_circuit(const std::string& name) {
  if (find_benchmark(name) != nullptr) return make_benchmark(name);
  std::ifstream file(name);
  if (!file) {
    std::fprintf(stderr,
                 "error: '%s' is neither a roster circuit nor a readable "
                 ".bench file\n",
                 name.c_str());
    std::exit(1);
  }
  return parse_bench(file, name);
}

int write_report_json(const Options& o, const Netlist& nl,
                      const std::vector<Fault>& faults,
                      const std::vector<FaultStatus>& status,
                      const std::vector<std::uint32_t>& detect_frame) {
  if (o.report_json.empty()) return 0;
  const FaultReport report =
      FaultReport::build(nl, faults, status, detect_frame);
  std::ofstream out(o.report_json, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", o.report_json.c_str());
    return 1;
  }
  out << report.to_json();
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: I/O error writing '%s'\n",
                 o.report_json.c_str());
    return 1;
  }
  std::printf("wrote per-fault report to %s\n", o.report_json.c_str());
  return 0;
}

void show_undetected(const Netlist& nl, const std::vector<Fault>& faults,
                     const std::vector<FaultStatus>& status) {
  std::printf("\nundetected faults:\n");
  for (const std::string& name :
       faults_with_status(nl, faults, status, FaultStatus::Undetected)) {
    std::printf("  %s\n", name.c_str());
  }
  for (const std::string& name :
       faults_with_status(nl, faults, status, FaultStatus::XRedundant)) {
    std::printf("  %s (X-redundant)\n", name.c_str());
  }
}

void run_sync_analysis(const Netlist& nl) {
  std::printf("\n--- synchronizing-sequence analysis ---\n");
  bdd::BddManager mgr;
  const SymbolicFsm fsm(nl, mgr, StateVars(nl.dff_count()));
  const SyncSearchResult sr = find_synchronizing_sequence(fsm);
  if (sr.found) {
    std::printf("synchronizing sequence of length %zu found "
                "(%zu uncertainty sets explored)\n",
                sr.sequence.size(), sr.explored);
  } else {
    std::printf("no synchronizing sequence within bounds; smallest "
                "uncertainty set: %.0f states\n",
                sr.final_states);
    std::printf("(three-valued simulation will under-approximate badly "
                "on this circuit — use MOT)\n");
  }
}

/// Campaign interrupt point: checkpoint taps run *after* the store
/// persisted the checkpoint, so throwing from here once SIGINT/SIGTERM
/// was seen aborts the campaign with the newest checkpoint safely on
/// disk — `--resume` continues exactly from it.
class InterruptTap final : public CheckpointSink {
 public:
  void on_checkpoint(const ChunkCheckpoint&) override {
    if (stop_requested()) {
      throw std::runtime_error(
          "interrupted by signal (checkpoint flushed)");
    }
  }
};

/// Campaign front end: fresh run, resume, or incremental extension.
int run_campaign_mode(const Options& o, const Netlist& nl,
                      const std::vector<Fault>& faults,
                      const TestSequence& seq,
                      obs::Telemetry* telemetry) {
  StderrProgress progress(seq.size());
  ProgressSink* sink = o.progress ? &progress : nullptr;
  InterruptTap interrupt;
  const std::optional<std::size_t> threads =
      o.threads_set ? std::optional<std::size_t>(o.sim.threads)
                    : std::nullopt;

  Expected<CampaignResult, std::string> res =
      Unexpected<std::string>{"unreachable"};
  const char* mode = "fresh";
  // An explicit --sim3-backend / --parallel overrides the backend the
  // store recorded (pure perf knob, results identical either way).
  const std::optional<Sim3Backend> backend =
      o.sim3_backend_set ? std::optional<Sim3Backend>(o.sim.sim3_backend)
                         : std::nullopt;
  if (o.resume) {
    mode = "resumed";
    res = resume_campaign(nl, faults, o.store_dir, threads, sink,
                          &interrupt, telemetry, backend);
  } else if (o.extend_vectors != 0) {
    mode = "extended";
    // Extension vectors continue the stored seed's random stream: the
    // generator is replayed past every frame the store already holds,
    // so repeated extensions are reproducible from the manifest alone.
    auto store = RunStore::open(o.store_dir);
    if (!store.has_value()) {
      std::fprintf(stderr, "error: %s\n", store.error().c_str());
      return 1;
    }
    Rng rng(store->manifest().seed);
    (void)random_sequence(nl, store->manifest().sequence_length, rng);
    const TestSequence extra = random_sequence(nl, o.extend_vectors, rng);
    std::printf("extension: %zu random vectors (continuing seed %llu)\n",
                extra.size(),
                static_cast<unsigned long long>(store->manifest().seed));
    res = extend_campaign(nl, faults, extra, o.store_dir, threads, sink,
                          &interrupt, telemetry, backend);
  } else {
    SimOptions opts = o.sim;
    opts.telemetry = telemetry;
    res = run_campaign(nl, faults, seq, opts, o.store_dir, sink,
                       &interrupt);
  }

  if (!res.has_value()) {
    if (stop_requested()) {
      std::fprintf(stderr,
                   "\ninterrupted by signal %d — campaign state through "
                   "the last checkpoint is in %s; continue with "
                   "'motsim_cli --store %s --resume %s'\n",
                   stop_signal(), o.store_dir.c_str(), o.store_dir.c_str(),
                   o.circuit.c_str());
      return 128 + stop_signal();
    }
    std::fprintf(stderr, "error: %s\n", res.error().c_str());
    return 1;
  }
  const CampaignResult& r = *res;
  std::printf("\n--- campaign (%s) in %s ---\n", mode, o.store_dir.c_str());
  std::printf("frames:     %zu total%s\n", r.frames_total,
              r.resumed ? " (continued from checkpoints)" : "");
  std::printf("X-redundant %zu faults (frozen at the base run)\n",
              r.x_redundant);
  if (r.static_x_redundant != 0 || r.static_untestable != 0) {
    std::printf("static:     %zu static-X-red, %zu untestable faults "
                "(frozen at the base run)\n",
                r.static_x_redundant, r.static_untestable);
  }
  std::printf("engine:     %zu checkpoint syncs, %zu fallback windows%s\n",
              r.sym.checkpoint_syncs, r.sym.fallback_windows,
              r.sym.used_fallback ? "  [*coverage is a lower bound]" : "");
  std::printf("\n%s", r.summary().to_string().c_str());
  if (o.json) std::printf("%s\n", r.summary().to_json().c_str());
  if (o.show_undetected) show_undetected(nl, faults, r.status);
  if (o.sync) run_sync_analysis(nl);
  return write_report_json(o, nl, faults, r.status, r.detect_frame);
}

}  // namespace

int main(int argc, char** argv) {
  Options o = parse_args(argc, argv);

  // Piped invocations (motsim_cli ... | head) must see EPIPE write
  // failures, not a SIGPIPE kill. Campaign runs additionally convert
  // SIGINT/SIGTERM into a clean checkpoint-flushing abort (see
  // InterruptTap); non-campaign runs keep the default die-now behavior
  // since they have no state worth flushing.
  ignore_sigpipe();
  if (!o.store_dir.empty()) install_stop_handlers();

  // One telemetry context for the whole invocation, allocated only
  // when an observability flag asks for it — the engines otherwise
  // keep their one-branch disabled path. MOTSIM_LOG counts as asking.
  const char* const env_log = std::getenv("MOTSIM_LOG");
  std::optional<obs::Telemetry> telemetry;
  if (!o.metrics_json.empty() || !o.trace_file.empty() ||
      !o.log_path.empty() || o.sample_interval_ms != 0 ||
      (env_log != nullptr && env_log[0] != '\0')) {
    telemetry.emplace();
  }
  obs::Telemetry* const tele = telemetry.has_value() ? &*telemetry : nullptr;
  o.sim.telemetry = tele;

  std::unique_ptr<obs::Logger> logger;
  if (tele != nullptr) {
    auto opened = obs::open_logger_from(o.log_path, o.log_level);
    if (!opened.has_value()) {
      std::fprintf(stderr, "error: %s\n", opened.error().c_str());
      return 2;
    }
    logger = std::move(*opened);
    tele->attach_logger(logger.get());
  }
  std::unique_ptr<obs::Sampler> sampler;
  if (o.sample_interval_ms != 0) {
    auto started = obs::Sampler::start(*tele, o.sample_file,
                                       static_cast<int>(o.sample_interval_ms));
    if (!started.has_value()) {
      std::fprintf(stderr, "error: %s\n", started.error().c_str());
      return 2;
    }
    sampler = std::move(*started);
  }

  if (o.list) {
    std::printf("%-10s %6s %4s %4s %6s  %s\n", "name", "PI", "PO", "FF",
                "gates", "style");
    for (const BenchmarkInfo& info : benchmark_roster()) {
      std::printf("%-10s %6zu %4zu %4zu %6zu  %s%s\n",
                  info.spec.name.c_str(), info.spec.inputs,
                  info.spec.outputs, info.spec.dffs, info.spec.target_gates,
                  info.exact ? "exact" : to_cstring(info.spec.style),
                  info.exact ? "" : " (synthetic)");
    }
    return 0;
  }

  Netlist nl = load_circuit(o.circuit);
  if (o.add_reset) {
    nl = with_synchronous_reset(nl);
    std::printf("inserted synchronous reset (drive the extra last input "
                "high to clear the state)\n");
  }
  const CollapsedFaultList faults(nl);
  std::printf("circuit %s: %zu PI, %zu PO, %zu FF, %zu gates; %zu "
              "collapsed faults\n",
              nl.name().c_str(), nl.input_count(), nl.output_count(),
              nl.dff_count(), nl.gate_count(), faults.size());

  if (o.stats) {
    CircuitStats stats = CircuitStats::of(nl);
    attach_collapse(stats, nl);
    attach_sgraph(stats, nl, build_sgraph(nl));
    std::printf("%s", stats.to_string().c_str());
  }
  if (!o.dot_file.empty()) {
    std::ofstream dot(o.dot_file);
    if (!dot) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   o.dot_file.c_str());
      return 1;
    }
    dot << netlist_to_dot(nl);
    std::printf("wrote %s\n", o.dot_file.c_str());
  }

  // Every flag combination is checked before anything runs; a bad
  // SimOptions exits 2 with the validator's message.
  const auto checked = o.sim.validate();
  if (!checked.has_value()) {
    std::fprintf(stderr, "error: %s\n", checked.error().c_str());
    return 2;
  }

  // Test sequence — not generated for --resume/--extend-vectors, whose
  // sequence lives in the store.
  TestSequence seq;
  if (!o.resume && o.extend_vectors == 0) {
    if (!o.load_seq.empty()) {
      auto loaded = read_sequence_file(o.load_seq);
      if (!loaded.has_value()) {
        std::fprintf(stderr, "error: %s\n", loaded.error().c_str());
        return 1;
      }
      seq = std::move(*loaded);
      if (!seq.empty() && seq[0].size() != nl.input_count()) {
        std::fprintf(stderr,
                     "error: sequence width %zu does not match %zu inputs\n",
                     seq[0].size(), nl.input_count());
        return 1;
      }
      std::printf("loaded sequence: %zu vectors from %s\n", seq.size(),
                  o.load_seq.c_str());
    } else if (o.deterministic) {
      CompactionConfig cfg;
      cfg.seed = o.sim.seed;
      cfg.max_length = 2 * o.vectors;
      cfg.min_length = o.vectors / 4;
      const CompactionResult gen =
          generate_deterministic_sequence(nl, faults.faults(), cfg);
      seq = gen.sequence;
      std::printf("deterministic sequence: %zu vectors (%zu greedy "
                  "rounds)\n",
                  seq.size(), gen.rounds);
    } else {
      Rng rng(o.sim.seed);
      seq = random_sequence(nl, o.vectors, rng);
      std::printf("random sequence: %zu vectors (seed %llu)\n", seq.size(),
                  static_cast<unsigned long long>(o.sim.seed));
    }
    if (seq.empty()) {
      std::fprintf(stderr, "error: empty test sequence\n");
      return 1;
    }
    if (!o.save_seq.empty()) {
      if (const auto w =
              write_sequence_file(o.save_seq, seq,
                                  nl.name() + " test sequence");
          !w.has_value()) {
        std::fprintf(stderr, "error: %s\n", w.error().c_str());
        return 1;
      }
      std::printf("saved sequence to %s\n", o.save_seq.c_str());
    }
  }

  if (!o.store_dir.empty()) {
    const int rc = run_campaign_mode(o, nl, faults.faults(), seq, tele);
    const int trc = write_telemetry_outputs(o, tele);
    return rc != 0 ? rc : trc;
  }

  StderrProgress progress(seq.size());
  const PipelineResult r =
      run_pipeline(nl, faults.faults(), seq, *checked,
                   o.progress ? &progress : nullptr);

  std::printf("\n--- %s pipeline ---\n", to_cstring(o.sim.strategy));
  if (o.sim.analysis) {
    std::printf("static:     %zu static-X-red, %zu untestable faults "
                "(%.3f s)\n",
                r.static_x_redundant, r.static_untestable,
                r.seconds_analysis);
  }
  if (o.sim.run_xred) {
    std::printf("ID_X-red:   %zu X-redundant faults      (%.3f s)\n",
                r.x_redundant, r.seconds_xred);
  }
  std::printf("X01 stage:  %zu faults detected          (%.3f s, %s)\n",
              r.detected_3v, r.seconds_3v, to_cstring(o.sim.sim3_backend));
  if (o.sim.run_symbolic && r.symbolic_skipped_x_inputs) {
    std::printf("symbolic:   skipped — the sequence carries X inputs "
                "(three-valued only)\n");
  } else if (o.sim.run_symbolic) {
    std::printf("symbolic:   %zu additional faults        (%.3f s%s)%s\n",
                r.detected_symbolic, r.seconds_symbolic,
                o.sim.threads == 1 ? "" : ", fault-sharded",
                r.used_fallback ? "  [*three-valued fallback ran]" : "");
  }
  std::printf("\n%s", r.summary().to_string().c_str());
  if (o.json) std::printf("%s\n", r.summary().to_json().c_str());

  if (o.show_undetected) show_undetected(nl, faults.faults(), r.status);

  if (o.sync) run_sync_analysis(nl);

  const int rc =
      write_report_json(o, nl, faults.faults(), r.status, r.detect_frame);
  const int trc = write_telemetry_outputs(o, tele);
  return rc != 0 ? rc : trc;
}
