// motsim_cli — command-line front end for the fault-simulation
// pipeline.
//
//   motsim_cli [options] <circuit>
//
//   <circuit>        roster name (s27, s298, ...) or path to a
//                    .bench file
//   --list           list the benchmark roster and exit
//   --vectors N      random test-sequence length       (default 200)
//   --seed N         workload seed                     (default 1)
//   --strategy S     sot | rmot | mot                  (default mot)
//   --node-limit N   hybrid OBDD space limit           (default 30000)
//   --layout L       interleaved | blocked             (default interleaved)
//   --threads N      symbolic-stage workers; 0 = all
//                    hardware threads                  (default 1)
//   --chunk-size N   faults per parallel shard; 0 = auto
//   --progress       live progress of the symbolic stage on stderr
//   --no-xred        skip the ID_X-red stage
//   --no-symbolic    three-valued only (pure X01)
//   --parallel       bit-parallel three-valued simulator
//   --deterministic  compacted sequence instead of random vectors
//   --sync           also run the synchronizing-sequence analysis
//   --show-undetected  list the faults left undetected
//   --stats          structural statistics
//   --reset          insert a synchronous reset before everything
//   --dot FILE       Graphviz export of the netlist
//   --save-seq FILE / --load-seq FILE   sequence file I/O

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_data/registry.h"
#include "circuit/bench_io.h"
#include "circuit/stats.h"
#include "circuit/transform.h"
#include "core/options.h"
#include "core/pipeline.h"
#include "core/progress.h"
#include "core/symbolic_fsm.h"
#include "faults/collapse.h"
#include "tpg/compaction.h"
#include "tpg/sequence_io.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/strings.h"

using namespace motsim;

namespace {

struct Options {
  std::string circuit;
  /// Engine configuration — the unified SimOptions surface; the CLI
  /// flags below map 1:1 onto its fields.
  SimOptions sim;
  std::size_t vectors = 200;
  bool progress = false;
  bool deterministic = false;
  bool sync = false;
  bool show_undetected = false;
  bool list = false;
  bool stats = false;
  bool json = false;
  bool add_reset = false;
  std::string dot_file;
  std::string save_seq;
  std::string load_seq;
};

[[noreturn]] void usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: motsim_cli [options] <circuit>\n"
               "  <circuit>          roster name (try --list) or .bench "
               "file path\n"
               "  --list             list the benchmark roster\n"
               "  --vectors N        random sequence length (default 200)\n"
               "  --seed N           workload seed (default 1)\n"
               "  --strategy S       sot | rmot | mot (default mot)\n"
               "  --node-limit N     hybrid OBDD limit (default 30000)\n"
               "  --layout L         interleaved | blocked\n"
               "  --threads N        symbolic-stage workers; 0 = all "
               "hardware threads\n"
               "  --chunk-size N     faults per parallel shard (0 = auto)\n"
               "  --progress         live symbolic-stage progress on "
               "stderr\n"
               "  --no-xred          skip ID_X-red\n"
               "  --no-symbolic      pure three-valued run\n"
               "  --parallel         bit-parallel three-valued simulator\n"
               "  --deterministic    compacted (targeted) sequence\n"
               "  --sync             synchronizing-sequence analysis\n"
               "  --show-undetected  list undetected faults\n"
               "  --stats            print structural statistics\n"
               "  --reset            insert a synchronous reset first\n"
               "  --dot FILE         write the netlist as Graphviz dot\n"
               "  --json             print the summary as JSON too\n"
               "  --save-seq FILE    save the test sequence\n"
               "  --load-seq FILE    replay a saved sequence instead of\n"
               "                     generating one\n");
  std::exit(code);
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    if (a == "--help" || a == "-h") usage(0);
    else if (a == "--list") o.list = true;
    else if (a == "--vectors") o.vectors = std::stoul(next());
    else if (a == "--seed") o.sim.seed = std::stoull(next());
    else if (a == "--node-limit") o.sim.node_limit = std::stoul(next());
    else if (a == "--threads") o.sim.threads = std::stoul(next());
    else if (a == "--chunk-size") o.sim.chunk_size = std::stoul(next());
    else if (a == "--progress") o.progress = true;
    else if (a == "--strategy") {
      const std::string s = to_lower(next());
      if (s == "sot") o.sim.strategy = Strategy::Sot;
      else if (s == "rmot") o.sim.strategy = Strategy::Rmot;
      else if (s == "mot") o.sim.strategy = Strategy::Mot;
      else usage(2);
    } else if (a == "--layout") {
      const std::string s = to_lower(next());
      if (s == "interleaved") o.sim.layout = VarLayout::Interleaved;
      else if (s == "blocked") o.sim.layout = VarLayout::Blocked;
      else usage(2);
    } else if (a == "--no-xred") o.sim.run_xred = false;
    else if (a == "--no-symbolic") o.sim.run_symbolic = false;
    else if (a == "--parallel") o.sim.parallel_sim3 = true;
    else if (a == "--deterministic") o.deterministic = true;
    else if (a == "--sync") o.sync = true;
    else if (a == "--show-undetected") o.show_undetected = true;
    else if (a == "--stats") o.stats = true;
    else if (a == "--json") o.json = true;
    else if (a == "--reset") o.add_reset = true;
    else if (a == "--dot") o.dot_file = next();
    else if (a == "--save-seq") o.save_seq = next();
    else if (a == "--load-seq") o.load_seq = next();
    else if (!a.empty() && a[0] == '-') usage(2);
    else if (o.circuit.empty()) o.circuit = a;
    else usage(2);
  }
  if (!o.list && o.circuit.empty()) usage(2);
  return o;
}

/// --progress sink: a line on stderr every few frames plus one per
/// fallback window. Under --threads N the parallel driver serializes
/// the callbacks, so plain counters suffice.
class StderrProgress final : public ProgressSink {
 public:
  void on_frame(std::size_t frame, std::size_t live_nodes,
                std::size_t faults_remaining) override {
    if (frame % 25 != 0) return;
    std::fprintf(stderr,
                 "[sym] frame %zu: %zu live nodes, %zu faults left, "
                 "%zu detected so far\n",
                 frame, live_nodes, faults_remaining, detected_);
  }
  void on_fallback_window(std::size_t frame,
                          std::size_t window_frames) override {
    std::fprintf(stderr,
                 "[sym] frame %zu: node limit hit — three-valued window "
                 "of %zu frames\n",
                 frame, window_frames);
  }
  void on_fault_detected(std::size_t /*fault_index*/,
                         std::uint32_t /*frame*/) override {
    ++detected_;
  }

 private:
  std::size_t detected_ = 0;
};

Netlist load_circuit(const std::string& name) {
  if (find_benchmark(name) != nullptr) return make_benchmark(name);
  std::ifstream file(name);
  if (!file) {
    std::fprintf(stderr,
                 "error: '%s' is neither a roster circuit nor a readable "
                 ".bench file\n",
                 name.c_str());
    std::exit(1);
  }
  return parse_bench(file, name);
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_args(argc, argv);

  if (o.list) {
    std::printf("%-10s %6s %4s %4s %6s  %s\n", "name", "PI", "PO", "FF",
                "gates", "style");
    for (const BenchmarkInfo& info : benchmark_roster()) {
      std::printf("%-10s %6zu %4zu %4zu %6zu  %s%s\n",
                  info.spec.name.c_str(), info.spec.inputs,
                  info.spec.outputs, info.spec.dffs, info.spec.target_gates,
                  info.exact ? "exact" : to_cstring(info.spec.style),
                  info.exact ? "" : " (synthetic)");
    }
    return 0;
  }

  Netlist nl = load_circuit(o.circuit);
  if (o.add_reset) {
    nl = with_synchronous_reset(nl);
    std::printf("inserted synchronous reset (drive the extra last input "
                "high to clear the state)\n");
  }
  const CollapsedFaultList faults(nl);
  std::printf("circuit %s: %zu PI, %zu PO, %zu FF, %zu gates; %zu "
              "collapsed faults\n",
              nl.name().c_str(), nl.input_count(), nl.output_count(),
              nl.dff_count(), nl.gate_count(), faults.size());

  if (o.stats) {
    std::printf("%s", CircuitStats::of(nl).to_string().c_str());
  }
  if (!o.dot_file.empty()) {
    std::ofstream dot(o.dot_file);
    if (!dot) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   o.dot_file.c_str());
      return 1;
    }
    dot << netlist_to_dot(nl);
    std::printf("wrote %s\n", o.dot_file.c_str());
  }

  // Test sequence.
  TestSequence seq;
  if (!o.load_seq.empty()) {
    std::ifstream in(o.load_seq);
    if (!in) {
      std::fprintf(stderr, "error: cannot read '%s'\n", o.load_seq.c_str());
      return 1;
    }
    seq = read_sequence(in);
    if (!seq.empty() && seq[0].size() != nl.input_count()) {
      std::fprintf(stderr,
                   "error: sequence width %zu does not match %zu inputs\n",
                   seq[0].size(), nl.input_count());
      return 1;
    }
    std::printf("loaded sequence: %zu vectors from %s\n", seq.size(),
                o.load_seq.c_str());
  } else if (o.deterministic) {
    CompactionConfig cfg;
    cfg.seed = o.sim.seed;
    cfg.max_length = 2 * o.vectors;
    cfg.min_length = o.vectors / 4;
    const CompactionResult gen =
        generate_deterministic_sequence(nl, faults.faults(), cfg);
    seq = gen.sequence;
    std::printf("deterministic sequence: %zu vectors (%zu greedy rounds)\n",
                seq.size(), gen.rounds);
  } else {
    Rng rng(o.sim.seed);
    seq = random_sequence(nl, o.vectors, rng);
    std::printf("random sequence: %zu vectors (seed %llu)\n", seq.size(),
                static_cast<unsigned long long>(o.sim.seed));
  }
  if (seq.empty()) {
    std::fprintf(stderr, "error: empty test sequence\n");
    return 1;
  }
  if (!o.save_seq.empty()) {
    std::ofstream out(o.save_seq);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", o.save_seq.c_str());
      return 1;
    }
    write_sequence(out, seq, nl.name() + " test sequence");
    std::printf("saved sequence to %s\n", o.save_seq.c_str());
  }

  // Pipeline — one validated SimOptions drives everything.
  const auto checked = o.sim.validate();
  if (!checked.has_value()) {
    std::fprintf(stderr, "error: %s\n", checked.error().c_str());
    return 2;
  }
  StderrProgress progress;
  const PipelineResult r =
      run_pipeline(nl, faults.faults(), seq, *checked,
                   o.progress ? &progress : nullptr);

  std::printf("\n--- %s pipeline ---\n", to_cstring(o.sim.strategy));
  if (o.sim.run_xred) {
    std::printf("ID_X-red:   %zu X-redundant faults      (%.3f s)\n",
                r.x_redundant, r.seconds_xred);
  }
  std::printf("X01 stage:  %zu faults detected          (%.3f s%s)\n",
              r.detected_3v, r.seconds_3v,
              o.sim.parallel_sim3 ? ", bit-parallel" : "");
  if (o.sim.run_symbolic && r.symbolic_skipped_x_inputs) {
    std::printf("symbolic:   skipped — the sequence carries X inputs "
                "(three-valued only)\n");
  } else if (o.sim.run_symbolic) {
    std::printf("symbolic:   %zu additional faults        (%.3f s%s)%s\n",
                r.detected_symbolic, r.seconds_symbolic,
                o.sim.threads == 1 ? "" : ", fault-sharded",
                r.used_fallback ? "  [*three-valued fallback ran]" : "");
  }
  std::printf("\n%s", r.summary().to_string().c_str());
  if (o.json) std::printf("%s\n", r.summary().to_json().c_str());

  if (o.show_undetected) {
    std::printf("\nundetected faults:\n");
    for (const std::string& name :
         faults_with_status(nl, faults.faults(), r.status,
                            FaultStatus::Undetected)) {
      std::printf("  %s\n", name.c_str());
    }
    for (const std::string& name :
         faults_with_status(nl, faults.faults(), r.status,
                            FaultStatus::XRedundant)) {
      std::printf("  %s (X-redundant)\n", name.c_str());
    }
  }

  if (o.sync) {
    std::printf("\n--- synchronizing-sequence analysis ---\n");
    bdd::BddManager mgr;
    const SymbolicFsm fsm(nl, mgr, StateVars(nl.dff_count()));
    const SyncSearchResult sr = find_synchronizing_sequence(fsm);
    if (sr.found) {
      std::printf("synchronizing sequence of length %zu found "
                  "(%zu uncertainty sets explored)\n",
                  sr.sequence.size(), sr.explored);
    } else {
      std::printf("no synchronizing sequence within bounds; smallest "
                  "uncertainty set: %.0f states\n",
                  sr.final_states);
      std::printf("(three-valued simulation will under-approximate badly "
                  "on this circuit — use MOT)\n");
    }
  }

  return 0;
}
