// motsim_load — open-loop load generator for motsim_served.
//
// Open loop means requests are sent on an absolute schedule drawn from
// an interarrival distribution (exponential or lognormal), independent
// of when responses come back — a slow server cannot push back on the
// arrival process, so the measured latencies include queueing delay
// instead of being flattened by coordinated omission.
//
// Each connection runs one sender thread (sleeps until the next
// scheduled instant, writes the frame, records the send time by
// request id) and one reader thread (matches responses by id, records
// latency). The summary reuses obs::Histogram::quantile for
// p50/p90/p99 and is written to BENCH_serve.json.

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <memory>
#include <optional>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "serve/framing.h"
#include "serve/protocol.h"
#include "util/cli_args.h"
#include "util/net.h"
#include "util/signals.h"
#include "util/version.h"

namespace {

using Clock = std::chrono::steady_clock;
using motsim::serve::FrameType;
using motsim::serve::Request;
using motsim::serve::Response;

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7227;
  double duration_s = 5.0;
  double rate = 50.0;  ///< target requests/second, all connections
  std::size_t connections = 4;
  std::string interarrival = "exp";  ///< exp | lognormal
  std::string mix = "mixed";  ///< ping|lint|fault_sim|test_eval|mixed
  std::uint64_t vectors = 24;
  std::uint64_t seed = 1;
  std::string circuits = "s27,s298,s344,s386,s510";
  std::string out = "BENCH_serve.json";
  /// HTTP observability port of the server; 0 disables the server-side
  /// counter poll (the "server" object in the summary JSON).
  std::uint16_t http_port = 0;
  std::string log_path;
  std::string log_level;
};

/// Server-side counters scraped from GET /metrics?format=json before
/// and after the run; the summary records the delta, so a long-lived
/// daemon's history does not pollute one run's numbers.
struct ServerCounters {
  bool ok = false;
  std::uint64_t ping = 0;
  std::uint64_t lint = 0;
  std::uint64_t fault_sim = 0;
  std::uint64_t test_eval = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t rejected = 0;  ///< queue BUSY rejections
  double queue_wait_p50 = 0.0;
  double queue_wait_p90 = 0.0;
  double queue_wait_p99 = 0.0;
};

/// Minimal HTTP/1.0 GET against the server's observability port.
/// Returns the response body (everything after the header terminator).
std::optional<std::string> http_get(const std::string& host,
                                    std::uint16_t port,
                                    const std::string& target) {
  auto sock = motsim::connect_tcp(host, port);
  if (!sock.has_value()) return std::nullopt;
  const int fd = sock->get();
  const std::string request = "GET " + target +
                              " HTTP/1.0\r\nConnection: close\r\n\r\n";
  if (!motsim::write_full(fd, request.data(), request.size()).has_value()) {
    return std::nullopt;
  }
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t split = reply.find("\r\n\r\n");
  if (split == std::string::npos) return std::nullopt;
  if (reply.compare(0, 9, "HTTP/1.0 ") == 0 &&
      reply.compare(9, 3, "200") != 0) {
    return std::nullopt;
  }
  return reply.substr(split + 4);
}

/// Value of `"name": <number>` in the metrics JSON, searching from
/// `from`; 0 when absent. Good enough for the renderer's own output —
/// names are JSON-escaped, so a literal quoted-name search is exact.
double find_metric_number(const std::string& body, const std::string& name,
                          std::size_t from = 0) {
  const std::string needle = "\"" + name + "\":";
  const std::size_t at = body.find(needle, from);
  if (at == std::string::npos) return 0.0;
  return std::atof(body.c_str() + at + needle.size());
}

/// One /metrics?format=json scrape decoded into the counters the
/// summary reports. Histogram quantiles are read from the renderer's
/// precomputed p50/p90/p99 fields.
ServerCounters scrape_server(const Options& opt) {
  ServerCounters c;
  if (opt.http_port == 0) return c;
  const std::optional<std::string> body =
      http_get(opt.host, opt.http_port, "/metrics?format=json");
  if (!body.has_value()) return c;
  c.ok = true;
  const auto u64 = [&](const char* name) {
    return static_cast<std::uint64_t>(find_metric_number(*body, name));
  };
  c.ping = u64("serve.requests.ping");
  c.lint = u64("serve.requests.lint");
  c.fault_sim = u64("serve.requests.fault_sim");
  c.test_eval = u64("serve.requests.test_eval");
  c.completed = u64("serve.requests.completed");
  c.errors = u64("serve.requests.errors");
  c.rejected = u64("serve.queue.rejected");
  const std::size_t hist = body->find("\"serve.queue.wait_seconds\"");
  if (hist != std::string::npos) {
    c.queue_wait_p50 = find_metric_number(*body, "p50", hist);
    c.queue_wait_p90 = find_metric_number(*body, "p90", hist);
    c.queue_wait_p99 = find_metric_number(*body, "p99", hist);
  }
  return c;
}

/// Shared across every connection's sender/reader pair.
struct Stats {
  std::mutex mutex;
  std::vector<double> latencies;  ///< seconds, completed requests only
  std::uint64_t completed = 0;
  std::uint64_t busy = 0;
  std::uint64_t error_frames = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t sent = 0;
};

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// One connection's open-loop worker: handshake, then send on the
/// schedule while a reader thread drains responses.
void run_connection(const Options& opt, std::size_t conn_index,
                    const std::vector<std::string>& circuits,
                    Clock::time_point start, Stats* stats) {
  using namespace motsim::serve;

  auto sock = motsim::connect_tcp(opt.host, opt.port);
  if (!sock.has_value()) {
    std::lock_guard<std::mutex> lock(stats->mutex);
    ++stats->protocol_errors;
    std::fprintf(stderr, "motsim_load: connection %zu: %s\n", conn_index,
                 sock.error().c_str());
    return;
  }
  const int fd = sock->get();

  // Handshake: server speaks first, we answer.
  {
    const ReadResult hello = read_frame(fd);
    if (hello.status != ReadStatus::Ok ||
        hello.frame.type != FrameType::Hello ||
        !decode_hello(hello.frame.payload).has_value()) {
      std::lock_guard<std::mutex> lock(stats->mutex);
      ++stats->protocol_errors;
      return;
    }
    const Hello ours{kHelloMagic, kProtocolVersion,
                     motsim::build_info_string()};
    if (!write_frame(fd, FrameType::Hello, encode_hello(ours))
             .has_value()) {
      std::lock_guard<std::mutex> lock(stats->mutex);
      ++stats->protocol_errors;
      return;
    }
  }

  std::mutex inflight_mutex;
  std::map<std::uint32_t, Clock::time_point> inflight;
  std::atomic<bool> sender_done{false};

  std::thread reader([&] {
    for (;;) {
      const ReadResult r = read_frame(fd);
      if (r.status == ReadStatus::Eof) break;
      if (r.status == ReadStatus::Error) {
        // The socket is shut down under the reader once the grace
        // period ends; only count errors before that as protocol ones.
        if (!sender_done.load(std::memory_order_acquire)) {
          std::lock_guard<std::mutex> lock(stats->mutex);
          ++stats->protocol_errors;
        }
        break;
      }
      const auto decoded = decode_response(r.frame.type, r.frame.payload);
      if (!decoded.has_value()) {
        std::lock_guard<std::mutex> lock(stats->mutex);
        ++stats->protocol_errors;
        continue;
      }
      const Clock::time_point now = Clock::now();
      const std::uint32_t id = response_id(*decoded);
      double latency = -1.0;
      {
        std::lock_guard<std::mutex> lock(inflight_mutex);
        const auto it = inflight.find(id);
        if (it != inflight.end()) {
          latency = std::chrono::duration<double>(now - it->second).count();
          inflight.erase(it);
        }
      }
      std::lock_guard<std::mutex> lock(stats->mutex);
      if (std::holds_alternative<BusyResponse>(*decoded)) {
        ++stats->busy;
      } else if (std::holds_alternative<ErrorResponse>(*decoded)) {
        ++stats->error_frames;
      } else {
        ++stats->completed;
        if (latency >= 0.0) stats->latencies.push_back(latency);
      }
    }
  });

  // Per-connection open-loop schedule at rate/connections. The next
  // send instant is accumulated in absolute time — a late wakeup makes
  // the next sleep shorter, it never stretches the schedule.
  std::mt19937_64 rng(opt.seed * 6364136223846793005ULL + conn_index);
  const double conn_rate =
      opt.rate / static_cast<double>(opt.connections > 0 ? opt.connections
                                                         : 1);
  const double mean_gap = conn_rate > 0 ? 1.0 / conn_rate : 0.02;
  std::exponential_distribution<double> exp_gap(conn_rate);
  // Lognormal with the same mean: mu = ln(mean) - sigma^2 / 2.
  const double sigma = 0.5;
  std::lognormal_distribution<double> logn_gap(
      std::log(mean_gap) - sigma * sigma / 2.0, sigma);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  const Clock::time_point deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(opt.duration_s));
  Clock::time_point next = start;
  std::uint32_t next_id = 1;

  while (!motsim::stop_requested()) {
    const double gap =
        opt.interarrival == "lognormal" ? logn_gap(rng) : exp_gap(rng);
    next += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(gap));
    if (next >= deadline) break;
    std::this_thread::sleep_until(next);

    const std::string& circuit =
        circuits[(next_id + conn_index) % circuits.size()];
    CircuitRef ref{CircuitRef::Kind::Roster, circuit};
    const std::uint32_t id = next_id++;
    Request req;
    double pick = uniform(rng);
    if (opt.mix == "ping") {
      pick = -1.0;
    } else if (opt.mix == "lint") {
      pick = 0.3;
    } else if (opt.mix == "fault_sim") {
      pick = 0.6;
    } else if (opt.mix == "test_eval") {
      pick = 0.95;
    }
    if (pick < 0.15) {
      req = PingRequest{id};
    } else if (pick < 0.40) {
      req = LintRequest{id, ref};
    } else if (pick < 0.90) {
      FaultSimRequest fs;
      fs.id = id;
      fs.circuit = ref;
      fs.vectors = opt.vectors;
      fs.options.seed = opt.seed + id;
      req = std::move(fs);
    } else {
      TestEvalRequest te;
      te.id = id;
      // TEST_EVAL responses must be vectors * output_count values long;
      // s27 has exactly one output, so the client can build a
      // well-formed all-zero tester trace without knowing the roster
      // interfaces.
      te.circuit = CircuitRef{CircuitRef::Kind::Roster, "s27"};
      te.vectors = std::min<std::uint64_t>(opt.vectors, 8);
      te.seed = opt.seed + id;
      te.responses.emplace_back(static_cast<std::size_t>(te.vectors),
                                std::uint8_t{0});
      req = std::move(te);
    }

    {
      std::lock_guard<std::mutex> lock(inflight_mutex);
      inflight[id] = Clock::now();
    }
    const auto wrote =
        write_frame(fd, frame_type_of(req), encode_request(req));
    {
      std::lock_guard<std::mutex> lock(stats->mutex);
      ++stats->sent;
    }
    if (!wrote.has_value()) {
      std::lock_guard<std::mutex> lock(stats->mutex);
      ++stats->protocol_errors;
      break;
    }
  }

  // Grace period: let outstanding responses drain, then hang up.
  const Clock::time_point grace = Clock::now() + std::chrono::seconds(10);
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(inflight_mutex);
      if (inflight.empty()) break;
    }
    if (Clock::now() >= grace || motsim::stop_requested()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  sender_done.store(true, std::memory_order_release);
  ::shutdown(fd, SHUT_RDWR);
  reader.join();
}

void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: motsim_load [options]\n"
      "\n"
      "  --host HOST          server address (default 127.0.0.1)\n"
      "  --port N             server protocol port (default 7227)\n"
      "  --duration S         seconds to generate load (default 5)\n"
      "  --rate R             target req/s across all connections "
      "(default 50)\n"
      "  --connections N      parallel connections (default 4)\n"
      "  --interarrival D     exp | lognormal (default exp)\n"
      "  --mix M              ping|lint|fault_sim|test_eval|mixed "
      "(default mixed)\n"
      "  --vectors N          fault-sim sequence length (default 24)\n"
      "  --circuits LIST      comma-separated roster names\n"
      "  --seed N             RNG seed (default 1)\n"
      "  --out FILE           summary JSON (default BENCH_serve.json)\n"
      "  --http-port N        server /metrics port: poll server-side\n"
      "                       counters into the summary (0 = off)\n"
      "  --log PATH           structured JSONL log ('-' = stderr; also "
      "MOTSIM_LOG)\n"
      "  --log-level LVL      trace|debug|info|warn|error|off (default "
      "info)\n"
      "  --version            print version and exit\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "motsim_load: %s expects a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg == "--version") {
      std::printf("%s\n", motsim::build_info_string());
      return 0;
    } else if (arg == "--host") {
      opt.host = value("--host");
    } else if (arg == "--port") {
      const auto parsed = motsim::parse_cli_u64("--port", value("--port"));
      if (!parsed.has_value() || *parsed > 65535) {
        std::fprintf(stderr, "motsim_load: --port expects a port\n");
        return 2;
      }
      opt.port = static_cast<std::uint16_t>(*parsed);
    } else if (arg == "--duration") {
      opt.duration_s = std::atof(value("--duration"));
      if (opt.duration_s <= 0) {
        std::fprintf(stderr, "motsim_load: --duration must be positive\n");
        return 2;
      }
    } else if (arg == "--rate") {
      opt.rate = std::atof(value("--rate"));
      if (opt.rate <= 0) {
        std::fprintf(stderr, "motsim_load: --rate must be positive\n");
        return 2;
      }
    } else if (arg == "--connections") {
      const auto parsed =
          motsim::parse_cli_size("--connections", value("--connections"));
      if (!parsed.has_value() || *parsed == 0) {
        std::fprintf(stderr,
                     "motsim_load: --connections expects a positive "
                     "integer\n");
        return 2;
      }
      opt.connections = *parsed;
    } else if (arg == "--interarrival") {
      opt.interarrival = value("--interarrival");
      if (opt.interarrival != "exp" && opt.interarrival != "lognormal") {
        std::fprintf(stderr,
                     "motsim_load: --interarrival must be exp or "
                     "lognormal\n");
        return 2;
      }
    } else if (arg == "--mix") {
      opt.mix = value("--mix");
    } else if (arg == "--vectors") {
      const auto parsed =
          motsim::parse_cli_u64("--vectors", value("--vectors"));
      if (!parsed.has_value() || *parsed == 0) {
        std::fprintf(stderr,
                     "motsim_load: --vectors expects a positive integer\n");
        return 2;
      }
      opt.vectors = *parsed;
    } else if (arg == "--circuits") {
      opt.circuits = value("--circuits");
    } else if (arg == "--seed") {
      const auto parsed = motsim::parse_cli_u64("--seed", value("--seed"));
      if (!parsed.has_value()) {
        std::fprintf(stderr, "motsim_load: %s\n", parsed.error().c_str());
        return 2;
      }
      opt.seed = *parsed;
    } else if (arg == "--out") {
      opt.out = value("--out");
    } else if (arg == "--http-port") {
      const auto parsed =
          motsim::parse_cli_u64("--http-port", value("--http-port"));
      if (!parsed.has_value() || *parsed > 65535) {
        std::fprintf(stderr, "motsim_load: --http-port expects a port\n");
        return 2;
      }
      opt.http_port = static_cast<std::uint16_t>(*parsed);
    } else if (arg == "--log") {
      opt.log_path = value("--log");
    } else if (arg == "--log-level") {
      opt.log_level = value("--log-level");
    } else {
      std::fprintf(stderr, "motsim_load: unknown option '%s'\n",
                   arg.c_str());
      print_usage(stderr);
      return 2;
    }
  }

  const std::vector<std::string> circuits = split_csv(opt.circuits);
  if (circuits.empty()) {
    std::fprintf(stderr, "motsim_load: --circuits must name a circuit\n");
    return 2;
  }

  motsim::ignore_sigpipe();
  motsim::install_stop_handlers();

  // Logging surface shared with the other tools; the load generator's
  // own events are load.* records.
  const char* const env_log = std::getenv("MOTSIM_LOG");
  std::optional<motsim::obs::Telemetry> telemetry;
  std::unique_ptr<motsim::obs::Logger> logger;
  if (!opt.log_path.empty() ||
      (env_log != nullptr && env_log[0] != '\0')) {
    auto opened = motsim::obs::open_logger_from(opt.log_path, opt.log_level);
    if (!opened.has_value()) {
      std::fprintf(stderr, "motsim_load: %s\n", opened.error().c_str());
      return 2;
    }
    telemetry.emplace();
    logger = std::move(*opened);
    telemetry->attach_logger(logger.get());
  }
  motsim::obs::Telemetry* const tele =
      telemetry.has_value() ? &*telemetry : nullptr;

  const ServerCounters before = scrape_server(opt);
  if (opt.http_port != 0 && !before.ok) {
    std::fprintf(stderr,
                 "motsim_load: warning: could not scrape "
                 "http://%s:%u/metrics — no server counters recorded\n",
                 opt.host.c_str(), opt.http_port);
  }
  motsim::obs::log_event(tele, motsim::obs::LogLevel::Info, "load.start",
                         {motsim::obs::LogField::str("mix", opt.mix),
                          motsim::obs::LogField::f64("rate", opt.rate),
                          motsim::obs::LogField::u64("connections",
                                                     opt.connections)});

  Stats stats;
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(opt.connections);
  for (std::size_t c = 0; c < opt.connections; ++c) {
    workers.emplace_back(
        [&, c] { run_connection(opt, c, circuits, start, &stats); });
  }
  for (auto& w : workers) w.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  const ServerCounters after = scrape_server(opt);
  motsim::obs::log_event(tele, motsim::obs::LogLevel::Info, "load.done",
                         {motsim::obs::LogField::u64("sent", stats.sent),
                          motsim::obs::LogField::u64("completed",
                                                     stats.completed),
                          motsim::obs::LogField::f64("wall_s", wall)});

  // Percentiles via the shared histogram-quantile machinery (the same
  // interpolation the serve telemetry digest uses).
  static const std::vector<double> kBounds = {
      1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03,
      0.1,  0.3,  1.0,  3.0,  10.0, 30.0, 100.0};
  motsim::obs::Histogram hist(kBounds);
  double max_latency = 0.0;
  double sum_latency = 0.0;
  for (const double l : stats.latencies) {
    hist.observe(l);
    sum_latency += l;
    if (l > max_latency) max_latency = l;
  }
  const double p50 = hist.quantile(0.50);
  const double p90 = hist.quantile(0.90);
  const double p99 = hist.quantile(0.99);
  const double mean = stats.latencies.empty()
                          ? 0.0
                          : sum_latency /
                                static_cast<double>(stats.latencies.size());
  const double sustained =
      wall > 0 ? static_cast<double>(stats.completed) / wall : 0.0;

  std::printf(
      "motsim_load: sent %llu, completed %llu, busy %llu, errors %llu, "
      "protocol errors %llu\n",
      static_cast<unsigned long long>(stats.sent),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.busy),
      static_cast<unsigned long long>(stats.error_frames),
      static_cast<unsigned long long>(stats.protocol_errors));
  std::printf("motsim_load: %.1f req/s sustained over %.2f s\n", sustained,
              wall);
  std::printf("motsim_load: latency p50 %.6f s  p90 %.6f s  p99 %.6f s  "
              "max %.6f s\n",
              p50, p90, p99, max_latency);

  std::FILE* out = std::fopen(opt.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "motsim_load: cannot write %s\n",
                 opt.out.c_str());
    return 1;
  }
  std::fprintf(
      out,
      "{\"tool\": \"motsim_load\", \"version\": \"%s\", "
      "\"interarrival\": \"%s\", \"mix\": \"%s\", "
      "\"target_rate\": %.3f, \"duration_s\": %.3f, \"wall_s\": %.3f, "
      "\"connections\": %zu, "
      "\"sent\": %llu, \"completed\": %llu, \"busy\": %llu, "
      "\"errors\": %llu, \"protocol_errors\": %llu, "
      "\"sustained_rps\": %.3f, "
      "\"latency_s\": {\"mean\": %.6f, \"p50\": %.6f, \"p90\": %.6f, "
      "\"p99\": %.6f, \"max\": %.6f}",
      motsim::version_string(), opt.interarrival.c_str(),
      opt.mix.c_str(), opt.rate, opt.duration_s, wall, opt.connections,
      static_cast<unsigned long long>(stats.sent),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.busy),
      static_cast<unsigned long long>(stats.error_frames),
      static_cast<unsigned long long>(stats.protocol_errors), sustained,
      mean, p50, p90, p99, max_latency);
  if (before.ok && after.ok) {
    // Server-side view of the same run: request counters are deltas
    // across the run; the queue-wait quantiles are the daemon's
    // lifetime histogram (buckets only accumulate, so a dedicated
    // bench run reads as its own distribution).
    const auto delta = [](std::uint64_t b, std::uint64_t a) {
      return static_cast<unsigned long long>(a >= b ? a - b : 0);
    };
    std::fprintf(
        out,
        ", \"server\": {\"requests\": {\"ping\": %llu, \"lint\": %llu, "
        "\"fault_sim\": %llu, \"test_eval\": %llu, \"completed\": %llu, "
        "\"errors\": %llu}, \"busy_rejected\": %llu, "
        "\"queue_wait_s\": {\"p50\": %.6f, \"p90\": %.6f, \"p99\": "
        "%.6f}}",
        delta(before.ping, after.ping), delta(before.lint, after.lint),
        delta(before.fault_sim, after.fault_sim),
        delta(before.test_eval, after.test_eval),
        delta(before.completed, after.completed),
        delta(before.errors, after.errors),
        delta(before.rejected, after.rejected), after.queue_wait_p50,
        after.queue_wait_p90, after.queue_wait_p99);
  }
  std::fprintf(out, "}\n");
  std::fclose(out);

  // A run that completed nothing (server down, all rejected) is a
  // failure for CI even though the file was written.
  return stats.completed > 0 && stats.protocol_errors == 0 ? 0 : 1;
}
