#!/usr/bin/env sh
# Builds the concurrency-relevant targets under ThreadSanitizer and
# runs the tests that exercise the parallel engine. A clean pass here
# plus the determinism assertions in test_parallel_sym is the
# project's data-race story for the fault-sharded driver.
#
# Usage: tools/run_tsan.sh [extra ctest args...]
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-tsan"

cmake -S "$repo" -B "$build" -DMOTSIM_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j \
  --target test_parallel_sym test_options test_pipeline test_hybrid \
  test_sgraph test_obs test_serve

cd "$build"
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest --output-on-failure \
  -R 'test_parallel_sym|test_options|test_pipeline|test_hybrid|test_sgraph|test_obs|test_serve' "$@"

echo "TSan pass complete."
