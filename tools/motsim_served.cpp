// motsim_served — the long-running fault-simulation service.
//
// Boots a serve::Server (docs/SERVE.md): a length-prefixed binary
// protocol on --port, an HTTP observability endpoint (/metrics,
// /healthz) on --http-port, a bounded campaign queue with BUSY
// backpressure, and an LRU circuit cache. SIGINT/SIGTERM drain
// in-flight requests before the process exits.
//
// With --port 0 / --http-port 0 the kernel picks free ports; the bound
// ports are printed on stdout as `listening <port> http <http_port>`
// so scripts (CI smoke, bench/run_serve_bench.sh) can scrape them.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "obs/log.h"
#include "obs/recorder.h"
#include "obs/sampler.h"
#include "obs/telemetry.h"
#include "serve/server.h"
#include "util/cli_args.h"
#include "util/signals.h"
#include "util/version.h"

namespace {

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: motsim_served [options]\n"
               "\n"
               "  --host HOST        bind address (default 127.0.0.1)\n"
               "  --port N           protocol port (default 7227; 0 = "
               "ephemeral)\n"
               "  --http-port N      /metrics + /healthz port (default "
               "7228; 0 = ephemeral)\n"
               "  --threads N        queue workers (default: hardware "
               "threads)\n"
               "  --queue-capacity N max in-flight requests before BUSY "
               "(default 64)\n"
               "  --cache-capacity N resident parsed circuits (default "
               "32)\n"
               "  --store-root DIR   enable use_store campaign requests "
               "under DIR\n"
               "  --log PATH         structured JSONL log sink ('-' = "
               "stderr; also MOTSIM_LOG)\n"
               "  --log-level LVL    trace|debug|info|warn|error|off "
               "(default info; also MOTSIM_LOG_LEVEL)\n"
               "  --slow-ms N        log serve.request.slow above N ms "
               "service time (default 1000)\n"
               "  --dump-path PATH   SIGUSR1 / crash state-dump file "
               "(default motsim_state.jsonl)\n"
               "  --sample-interval N  sample gauges + RSS every N ms to "
               "--sample-file\n"
               "  --sample-file PATH   sampler JSONL sink (default "
               "motsim_samples.jsonl)\n"
               "  --version          print version and exit\n"
               "  --help             this text\n");
}

}  // namespace

int main(int argc, char** argv) {
  using motsim::serve::Server;
  using motsim::serve::ServerConfig;

  ServerConfig config;
  config.port = 7227;
  config.http_port = 7228;
  std::string log_path;
  std::string log_level;
  std::string sample_file = "motsim_samples.jsonl";
  std::size_t slow_ms = 1000;
  std::size_t sample_interval_ms = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "motsim_served: %s expects a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    auto parse_u16 = [&](const char* flag, const char* text,
                         std::uint16_t* out) {
      const auto parsed = motsim::parse_cli_u64(flag, text);
      if (!parsed.has_value() || *parsed > 65535) {
        std::fprintf(stderr, "motsim_served: %s expects a port (0-65535)\n",
                     flag);
        std::exit(2);
      }
      *out = static_cast<std::uint16_t>(*parsed);
    };
    auto parse_size = [&](const char* flag, const char* text,
                          std::size_t* out) {
      const auto parsed = motsim::parse_cli_size(flag, text);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "motsim_served: %s\n", parsed.error().c_str());
        std::exit(2);
      }
      *out = *parsed;
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg == "--version") {
      std::printf("%s\n", motsim::build_info_string());
      return 0;
    } else if (arg == "--host") {
      config.host = value("--host");
    } else if (arg == "--port") {
      parse_u16("--port", value("--port"), &config.port);
    } else if (arg == "--http-port") {
      parse_u16("--http-port", value("--http-port"), &config.http_port);
    } else if (arg == "--threads") {
      parse_size("--threads", value("--threads"), &config.threads);
    } else if (arg == "--queue-capacity") {
      parse_size("--queue-capacity", value("--queue-capacity"),
                 &config.queue_capacity);
    } else if (arg == "--cache-capacity") {
      parse_size("--cache-capacity", value("--cache-capacity"),
                 &config.cache_capacity);
    } else if (arg == "--store-root") {
      config.store_root = value("--store-root");
    } else if (arg == "--log") {
      log_path = value("--log");
    } else if (arg == "--log-level") {
      log_level = value("--log-level");
    } else if (arg == "--slow-ms") {
      parse_size("--slow-ms", value("--slow-ms"), &slow_ms);
    } else if (arg == "--dump-path") {
      config.dump_path = value("--dump-path");
    } else if (arg == "--sample-interval") {
      parse_size("--sample-interval", value("--sample-interval"),
                 &sample_interval_ms);
    } else if (arg == "--sample-file") {
      sample_file = value("--sample-file");
    } else {
      std::fprintf(stderr, "motsim_served: unknown option '%s'\n",
                   arg.c_str());
      print_usage(stderr);
      return 2;
    }
  }

  config.slow_request_seconds = static_cast<double>(slow_ms) / 1000.0;

  // A client hanging up mid-response must be an EPIPE write error (the
  // connection is marked broken), never a process-killing SIGPIPE.
  motsim::ignore_sigpipe();
  motsim::install_stop_handlers();
  // SIGUSR1 = dump the flight recorder + a metrics snapshot to
  // config.dump_path (serviced by the server's poll loop).
  motsim::install_dump_handler();

  motsim::obs::Telemetry telemetry;

  auto logger = motsim::obs::open_logger_from(log_path, log_level);
  if (!logger.has_value()) {
    std::fprintf(stderr, "motsim_served: %s\n", logger.error().c_str());
    return 2;
  }
  telemetry.attach_logger(logger->get());

  // Crash-path dump: SIGSEGV and friends flush the recorder window to
  // the same file a SIGUSR1 dump uses, then re-raise.
  if (!config.dump_path.empty()) {
    motsim::obs::install_crash_dump(&telemetry.recorder,
                                    config.dump_path.c_str());
  }

  std::unique_ptr<motsim::obs::Sampler> sampler;
  if (sample_interval_ms != 0) {
    auto started = motsim::obs::Sampler::start(
        telemetry, sample_file, static_cast<int>(sample_interval_ms));
    if (!started.has_value()) {
      std::fprintf(stderr, "motsim_served: %s\n", started.error().c_str());
      return 2;
    }
    sampler = std::move(*started);
  }

  Server server(std::move(config), &telemetry);
  const auto started = server.start();
  if (!started.has_value()) {
    std::fprintf(stderr, "motsim_served: %s\n", started.error().c_str());
    return 1;
  }
  std::printf("%s\n", motsim::build_info_string());
  std::printf("listening %u http %u\n", server.port(), server.http_port());
  std::fflush(stdout);

  server.run_until_stop();

  if (sampler) sampler->stop();
  motsim::obs::install_crash_dump(nullptr, nullptr);
  std::fprintf(stderr, "motsim_served: drained, exiting\n");
  return 0;
}
