#include "serve/http.h"

#include <sstream>

#include "obs/telemetry.h"
#include "util/version.h"

namespace motsim::serve {

HttpReply HttpEndpoint::handle(const std::string& request_text) const {
  std::string method;
  std::string target;
  {
    std::istringstream line(
        request_text.substr(0, request_text.find("\r\n")));
    line >> method >> target;
  }
  if (method != "GET") {
    return HttpReply{405, "Method Not Allowed",
                     "text/plain; charset=utf-8", "method not allowed\n"};
  }
  std::string path = target;
  std::string query;
  if (const auto qpos = target.find('?'); qpos != std::string::npos) {
    path = target.substr(0, qpos);
    query = target.substr(qpos + 1);
  }

  if (path == "/healthz") {
    return HttpReply{200, "OK", "text/plain; charset=utf-8", "ok\n"};
  }
  if (path == "/metrics") {
    if (query == "format=json") {
      HttpReply reply;
      reply.content_type = "application/json; charset=utf-8";
      reply.body = telemetry_ != nullptr
                       ? telemetry_->metrics.snapshot().to_json()
                       : std::string("{}\n");
      return reply;
    }
    std::ostringstream body;
    // Classic build-info idiom: constant 1 gauge carrying the version
    // as labels. Emitted here (not via MetricsRegistry) because the
    // registry renders unlabeled series only.
    body << "# TYPE motsim_build_info gauge\n"
         << "motsim_build_info{version=\"" << version_string()
         << "\",build=\"" << build_info_string() << "\"} 1\n";
    if (telemetry_ != nullptr) {
      body << telemetry_->metrics.snapshot().to_prometheus();
    }
    return HttpReply{200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                     body.str()};
  }
  if (path == "/debug/state") {
    HttpReply reply;
    reply.content_type = "application/x-ndjson";
    if (telemetry_ != nullptr) {
      reply.body = telemetry_->metrics.snapshot().to_json_line() + "\n" +
                   telemetry_->recorder.dump();
    } else {
      reply.body = "{}\n";
    }
    return reply;
  }
  return HttpReply{404, "Not Found", "text/plain; charset=utf-8",
                   "not found\n"};
}

std::string HttpEndpoint::render(const HttpReply& reply) {
  std::ostringstream os;
  os << "HTTP/1.0 " << reply.code << ' ' << reply.status << "\r\n"
     << "Content-Type: " << reply.content_type << "\r\n"
     << "Content-Length: " << reply.body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << reply.body;
  return os.str();
}

}  // namespace motsim::serve
