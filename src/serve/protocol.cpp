#include "serve/protocol.h"

#include <cstring>

namespace motsim::serve {

namespace {

// ---------------------------------------------------------------------
// Little-endian wire primitives. The writer appends to a string; the
// reader is bounds-checked and latches the first failure — decode
// functions check ok() + fully-consumed at the end, so a truncated or
// trailing-garbage payload is one error path, never an out-of-range
// read.
// ---------------------------------------------------------------------

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
  }
  void bytes(const std::vector<std::uint8_t>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    buf_.append(reinterpret_cast<const char*>(v.data()), v.size());
  }

  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    // Little-endian hosts only (the project's supported targets); a
    // big-endian port would byte-swap here.
    buf_.append(static_cast<const char*>(p), n);
  }

  std::string buf_;
};

class WireReader {
 public:
  explicit WireReader(const std::string& data) : data_(data) {}

  std::uint8_t u8() {
    std::uint8_t v = 0;
    raw(&v, 1);
    return v;
  }
  std::uint16_t u16() {
    std::uint16_t v = 0;
    raw(&v, 2);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, 4);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, 8);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!check(n)) return {};
    std::string s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  std::vector<std::uint8_t> bytes() {
    const std::uint32_t n = u32();
    if (!check(n)) return {};
    std::vector<std::uint8_t> v(n);
    std::memcpy(v.data(), data_.data() + pos_, n);
    pos_ += n;
    return v;
  }

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool done() const noexcept {
    return ok_ && pos_ == data_.size();
  }

  /// ok() && done(), as one Expected for decoder tails.
  [[nodiscard]] Expected<bool, std::string> finish(const char* what) const {
    if (!ok_) {
      return make_unexpected(std::string(what) + ": truncated payload");
    }
    if (pos_ != data_.size()) {
      return make_unexpected(std::string(what) + ": " +
                             std::to_string(data_.size() - pos_) +
                             " trailing bytes");
    }
    return true;
  }

 private:
  bool check(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }
  void raw(void* p, std::size_t n) {
    if (!check(n)) return;
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
  }

  const std::string& data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---- shared sub-codecs ----------------------------------------------

void put_circuit(WireWriter& w, const CircuitRef& c) {
  w.u8(static_cast<std::uint8_t>(c.kind));
  w.str(c.text);
}

Expected<CircuitRef, std::string> get_circuit(WireReader& r) {
  CircuitRef c;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(CircuitRef::Kind::BenchText)) {
    return make_unexpected("circuit ref: unknown kind " +
                           std::to_string(kind));
  }
  c.kind = static_cast<CircuitRef::Kind>(kind);
  c.text = r.str();
  return c;
}

void put_options(WireWriter& w, const SimOptions& o) {
  std::uint8_t flags = 0;
  if (o.analysis) flags |= 1u;
  if (o.run_xred) flags |= 2u;
  if (o.run_symbolic) flags |= 4u;
  w.u8(flags);
  w.u8(static_cast<std::uint8_t>(o.strategy));
  w.u8(static_cast<std::uint8_t>(o.layout));
  w.u8(static_cast<std::uint8_t>(o.sim3_backend));
  w.u64(o.node_limit);
  w.u64(o.fallback_frames);
  w.u64(o.hard_limit_factor);
  w.u64(o.checkpoint_interval);
  w.u64(o.threads);
  w.u64(o.chunk_size);
  w.u64(o.seed);
  w.u64(o.bdd_initial_capacity);
  w.u32(o.bdd_cache_size_log2);
  w.u64(o.bdd_auto_gc_floor);
}

Expected<SimOptions, std::string> get_options(WireReader& r) {
  SimOptions o;
  const std::uint8_t flags = r.u8();
  o.analysis = (flags & 1u) != 0;
  o.run_xred = (flags & 2u) != 0;
  o.run_symbolic = (flags & 4u) != 0;
  const std::uint8_t strategy = r.u8();
  if (strategy > static_cast<std::uint8_t>(Strategy::Mot)) {
    return make_unexpected("options: unknown strategy " +
                           std::to_string(strategy));
  }
  o.strategy = static_cast<Strategy>(strategy);
  const std::uint8_t layout = r.u8();
  if (layout > static_cast<std::uint8_t>(VarLayout::Blocked)) {
    return make_unexpected("options: unknown layout " +
                           std::to_string(layout));
  }
  o.layout = static_cast<VarLayout>(layout);
  const std::uint8_t backend = r.u8();
  if (backend > static_cast<std::uint8_t>(Sim3Backend::BitPar)) {
    return make_unexpected("options: unknown sim3 backend " +
                           std::to_string(backend));
  }
  o.sim3_backend = static_cast<Sim3Backend>(backend);
  o.node_limit = static_cast<std::size_t>(r.u64());
  o.fallback_frames = static_cast<std::size_t>(r.u64());
  o.hard_limit_factor = static_cast<std::size_t>(r.u64());
  o.checkpoint_interval = static_cast<std::size_t>(r.u64());
  o.threads = static_cast<std::size_t>(r.u64());
  o.chunk_size = static_cast<std::size_t>(r.u64());
  o.seed = r.u64();
  o.bdd_initial_capacity = static_cast<std::size_t>(r.u64());
  o.bdd_cache_size_log2 = r.u32();
  o.bdd_auto_gc_floor = static_cast<std::size_t>(r.u64());
  return o;
}

}  // namespace

const char* to_cstring(FrameType t) noexcept {
  switch (t) {
    case FrameType::Hello: return "HELLO";
    case FrameType::Ping: return "PING";
    case FrameType::Pong: return "PONG";
    case FrameType::LintReq: return "LINT";
    case FrameType::LintResp: return "LINT_RESULT";
    case FrameType::FaultSimReq: return "FAULT_SIM";
    case FrameType::FaultSimResp: return "FAULT_SIM_RESULT";
    case FrameType::TestEvalReq: return "TEST_EVAL";
    case FrameType::TestEvalResp: return "TEST_EVAL_RESULT";
    case FrameType::Error: return "ERROR";
    case FrameType::Busy: return "BUSY";
    case FrameType::DumpStateReq: return "DUMP_STATE";
    case FrameType::DumpStateResp: return "DUMP_STATE_RESULT";
  }
  return "UNKNOWN";
}

const char* to_cstring(ErrorCode c) noexcept {
  switch (c) {
    case ErrorCode::BadFrame: return "bad-frame";
    case ErrorCode::BadRequest: return "bad-request";
    case ErrorCode::VersionMismatch: return "version-mismatch";
    case ErrorCode::ShuttingDown: return "shutting-down";
    case ErrorCode::Internal: return "internal";
  }
  return "unknown";
}

std::uint32_t request_id(const Request& r) noexcept {
  return std::visit([](const auto& m) { return m.id; }, r);
}

std::uint32_t response_id(const Response& r) noexcept {
  return std::visit([](const auto& m) { return m.id; }, r);
}

const std::string& response_trace(const Response& r) noexcept {
  return std::visit(
      [](const auto& m) -> const std::string& { return m.trace; }, r);
}

void set_response_trace(Response& r, const std::string& trace) {
  std::visit([&trace](auto& m) { m.trace = trace; }, r);
}

std::string encode_hello(const Hello& h) {
  WireWriter w;
  w.u32(h.magic);
  w.u32(h.protocol);
  w.str(h.build);
  return w.take();
}

Expected<Hello, std::string> decode_hello(const std::string& payload) {
  WireReader r(payload);
  Hello h;
  h.magic = r.u32();
  h.protocol = r.u32();
  h.build = r.str();
  if (const auto f = r.finish("HELLO"); !f.has_value()) {
    return make_unexpected(f.error());
  }
  if (h.magic != kHelloMagic) {
    return make_unexpected(
        std::string("HELLO: bad magic (not a motsim serve peer)"));
  }
  return h;
}

FrameType frame_type_of(const Request& r) noexcept {
  struct Visitor {
    FrameType operator()(const PingRequest&) { return FrameType::Ping; }
    FrameType operator()(const LintRequest&) { return FrameType::LintReq; }
    FrameType operator()(const FaultSimRequest&) {
      return FrameType::FaultSimReq;
    }
    FrameType operator()(const TestEvalRequest&) {
      return FrameType::TestEvalReq;
    }
    FrameType operator()(const DumpStateRequest&) {
      return FrameType::DumpStateReq;
    }
  };
  return std::visit(Visitor{}, r);
}

FrameType frame_type_of(const Response& r) noexcept {
  struct Visitor {
    FrameType operator()(const PongResponse&) { return FrameType::Pong; }
    FrameType operator()(const LintResponse&) { return FrameType::LintResp; }
    FrameType operator()(const FaultSimResponse&) {
      return FrameType::FaultSimResp;
    }
    FrameType operator()(const TestEvalResponse&) {
      return FrameType::TestEvalResp;
    }
    FrameType operator()(const ErrorResponse&) { return FrameType::Error; }
    FrameType operator()(const BusyResponse&) { return FrameType::Busy; }
    FrameType operator()(const DumpStateResponse&) {
      return FrameType::DumpStateResp;
    }
  };
  return std::visit(Visitor{}, r);
}

std::string encode_request(const Request& req) {
  WireWriter w;
  struct Visitor {
    WireWriter& w;
    void operator()(const PingRequest& m) { w.u32(m.id); }
    void operator()(const LintRequest& m) {
      w.u32(m.id);
      put_circuit(w, m.circuit);
    }
    void operator()(const FaultSimRequest& m) {
      w.u32(m.id);
      put_circuit(w, m.circuit);
      w.u64(m.vectors);
      w.u8(m.use_store ? 1 : 0);
      put_options(w, m.options);
    }
    void operator()(const TestEvalRequest& m) {
      w.u32(m.id);
      put_circuit(w, m.circuit);
      w.u64(m.vectors);
      w.u64(m.seed);
      w.u32(static_cast<std::uint32_t>(m.responses.size()));
      for (const auto& resp : m.responses) w.bytes(resp);
    }
    void operator()(const DumpStateRequest& m) { w.u32(m.id); }
  };
  std::visit(Visitor{w}, req);
  return w.take();
}

std::string encode_response(const Response& resp) {
  WireWriter w;
  // Protocol v2: every response payload ends with its trace string.
  struct Visitor {
    WireWriter& w;
    void operator()(const PongResponse& m) {
      w.u32(m.id);
      w.str(m.trace);
    }
    void operator()(const LintResponse& m) {
      w.u32(m.id);
      w.u32(m.errors);
      w.u32(m.warnings);
      w.u32(m.notes);
      w.str(m.json);
      w.str(m.trace);
    }
    void operator()(const FaultSimResponse& m) {
      w.u32(m.id);
      w.u64(m.x_redundant);
      w.u64(m.static_x_redundant);
      w.u64(m.static_untestable);
      w.u64(m.detected_3v);
      w.u64(m.detected_symbolic);
      w.u8(m.used_fallback ? 1 : 0);
      w.u8(m.from_store ? 1 : 0);
      w.bytes(m.status);
      w.u32(static_cast<std::uint32_t>(m.detect_frame.size()));
      for (const std::uint32_t f : m.detect_frame) w.u32(f);
      w.str(m.trace);
    }
    void operator()(const TestEvalResponse& m) {
      w.u32(m.id);
      w.bytes(m.verdicts);
      w.str(m.trace);
    }
    void operator()(const ErrorResponse& m) {
      w.u32(m.id);
      w.u16(static_cast<std::uint16_t>(m.code));
      w.str(m.message);
      w.str(m.trace);
    }
    void operator()(const BusyResponse& m) {
      w.u32(m.id);
      w.str(m.trace);
    }
    void operator()(const DumpStateResponse& m) {
      w.u32(m.id);
      w.str(m.metrics_json);
      w.str(m.recorder_jsonl);
      w.str(m.trace);
    }
  };
  std::visit(Visitor{w}, resp);
  return w.take();
}

Expected<Request, std::string> decode_request(FrameType type,
                                              const std::string& payload) {
  WireReader r(payload);
  switch (type) {
    case FrameType::Ping: {
      PingRequest m;
      m.id = r.u32();
      if (const auto f = r.finish("PING"); !f.has_value()) {
        return make_unexpected(f.error());
      }
      return Request(m);
    }
    case FrameType::LintReq: {
      LintRequest m;
      m.id = r.u32();
      auto circuit = get_circuit(r);
      if (!circuit.has_value()) return make_unexpected(circuit.error());
      m.circuit = std::move(*circuit);
      if (const auto f = r.finish("LINT"); !f.has_value()) {
        return make_unexpected(f.error());
      }
      return Request(std::move(m));
    }
    case FrameType::FaultSimReq: {
      FaultSimRequest m;
      m.id = r.u32();
      auto circuit = get_circuit(r);
      if (!circuit.has_value()) return make_unexpected(circuit.error());
      m.circuit = std::move(*circuit);
      m.vectors = r.u64();
      m.use_store = r.u8() != 0;
      auto options = get_options(r);
      if (!options.has_value()) return make_unexpected(options.error());
      m.options = *options;
      if (const auto f = r.finish("FAULT_SIM"); !f.has_value()) {
        return make_unexpected(f.error());
      }
      return Request(std::move(m));
    }
    case FrameType::TestEvalReq: {
      TestEvalRequest m;
      m.id = r.u32();
      auto circuit = get_circuit(r);
      if (!circuit.has_value()) return make_unexpected(circuit.error());
      m.circuit = std::move(*circuit);
      m.vectors = r.u64();
      m.seed = r.u64();
      const std::uint32_t count = r.u32();
      // Cap pre-allocation by what the payload could possibly hold —
      // a lying count field must not turn into a giant reserve().
      if (count > payload.size()) {
        return make_unexpected("TEST_EVAL: response count " +
                               std::to_string(count) +
                               " exceeds payload size");
      }
      m.responses.reserve(count);
      for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
        m.responses.push_back(r.bytes());
      }
      if (const auto f = r.finish("TEST_EVAL"); !f.has_value()) {
        return make_unexpected(f.error());
      }
      return Request(std::move(m));
    }
    case FrameType::DumpStateReq: {
      DumpStateRequest m;
      m.id = r.u32();
      if (const auto f = r.finish("DUMP_STATE"); !f.has_value()) {
        return make_unexpected(f.error());
      }
      return Request(m);
    }
    default:
      return make_unexpected(std::string("not a request frame type: ") +
                             to_cstring(type));
  }
}

Expected<Response, std::string> decode_response(FrameType type,
                                                const std::string& payload) {
  WireReader r(payload);
  switch (type) {
    case FrameType::Pong: {
      PongResponse m;
      m.id = r.u32();
      m.trace = r.str();
      if (const auto f = r.finish("PONG"); !f.has_value()) {
        return make_unexpected(f.error());
      }
      return Response(std::move(m));
    }
    case FrameType::LintResp: {
      LintResponse m;
      m.id = r.u32();
      m.errors = r.u32();
      m.warnings = r.u32();
      m.notes = r.u32();
      m.json = r.str();
      m.trace = r.str();
      if (const auto f = r.finish("LINT_RESULT"); !f.has_value()) {
        return make_unexpected(f.error());
      }
      return Response(std::move(m));
    }
    case FrameType::FaultSimResp: {
      FaultSimResponse m;
      m.id = r.u32();
      m.x_redundant = r.u64();
      m.static_x_redundant = r.u64();
      m.static_untestable = r.u64();
      m.detected_3v = r.u64();
      m.detected_symbolic = r.u64();
      m.used_fallback = r.u8() != 0;
      m.from_store = r.u8() != 0;
      m.status = r.bytes();
      const std::uint32_t frames = r.u32();
      if (frames > payload.size()) {
        return make_unexpected("FAULT_SIM_RESULT: frame count " +
                               std::to_string(frames) +
                               " exceeds payload size");
      }
      m.detect_frame.reserve(frames);
      for (std::uint32_t i = 0; i < frames && r.ok(); ++i) {
        m.detect_frame.push_back(r.u32());
      }
      m.trace = r.str();
      if (const auto f = r.finish("FAULT_SIM_RESULT"); !f.has_value()) {
        return make_unexpected(f.error());
      }
      return Response(std::move(m));
    }
    case FrameType::TestEvalResp: {
      TestEvalResponse m;
      m.id = r.u32();
      m.verdicts = r.bytes();
      m.trace = r.str();
      if (const auto f = r.finish("TEST_EVAL_RESULT"); !f.has_value()) {
        return make_unexpected(f.error());
      }
      return Response(std::move(m));
    }
    case FrameType::Error: {
      ErrorResponse m;
      m.id = r.u32();
      m.code = static_cast<ErrorCode>(r.u16());
      m.message = r.str();
      m.trace = r.str();
      if (const auto f = r.finish("ERROR"); !f.has_value()) {
        return make_unexpected(f.error());
      }
      return Response(std::move(m));
    }
    case FrameType::Busy: {
      BusyResponse m;
      m.id = r.u32();
      m.trace = r.str();
      if (const auto f = r.finish("BUSY"); !f.has_value()) {
        return make_unexpected(f.error());
      }
      return Response(std::move(m));
    }
    case FrameType::DumpStateResp: {
      DumpStateResponse m;
      m.id = r.u32();
      m.metrics_json = r.str();
      m.recorder_jsonl = r.str();
      m.trace = r.str();
      if (const auto f = r.finish("DUMP_STATE_RESULT"); !f.has_value()) {
        return make_unexpected(f.error());
      }
      return Response(std::move(m));
    }
    default:
      return make_unexpected(std::string("not a response frame type: ") +
                             to_cstring(type));
  }
}

}  // namespace motsim::serve
