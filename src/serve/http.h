#ifndef MOTSIM_SERVE_HTTP_H
#define MOTSIM_SERVE_HTTP_H

#include <string>

namespace motsim::obs {
struct Telemetry;
}

namespace motsim::serve {

/// One HTTP reply, before serialization.
struct HttpReply {
  int code = 200;
  std::string status = "OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// The observability HTTP surface of motsim_served, factored out of
/// the socket loop so tests drive it as a pure request-text →
/// HttpReply function (tests/test_serve.cpp).
///
/// Routes (GET only; anything else is 405):
///   /healthz              liveness probe, "ok\n"
///   /metrics              Prometheus text exposition
///                         (text/plain; version=0.0.4) + build info
///   /metrics?format=json  the JSON renderer (application/json)
///   /debug/state          JSONL (application/x-ndjson): one metrics
///                         snapshot line, then the flight-recorder
///                         window, oldest first
class HttpEndpoint {
 public:
  explicit HttpEndpoint(obs::Telemetry* telemetry) noexcept
      : telemetry_(telemetry) {}

  /// Routes one raw request (at least the start line; headers are
  /// ignored) to its reply. Never throws.
  [[nodiscard]] HttpReply handle(const std::string& request_text) const;

  /// Serializes a reply as an HTTP/1.0 response (Connection: close).
  [[nodiscard]] static std::string render(const HttpReply& reply);

 private:
  obs::Telemetry* const telemetry_;
};

}  // namespace motsim::serve

#endif  // MOTSIM_SERVE_HTTP_H
