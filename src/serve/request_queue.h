#ifndef MOTSIM_SERVE_REQUEST_QUEUE_H
#define MOTSIM_SERVE_REQUEST_QUEUE_H

#include <atomic>
#include <cstddef>
#include <functional>

#include "util/thread_pool.h"

namespace motsim::obs {
struct Telemetry;
}

namespace motsim::serve {

/// The server's bounded async campaign queue: a util/thread_pool with
/// admission control in front of it.
///
/// ThreadPool's own deque is unbounded by design (the parallel driver
/// submits a known, finite shard set). A network front end cannot rely
/// on well-behaved callers, so admission happens here: try_submit
/// atomically reserves one of `capacity` slots — queued or executing —
/// and refuses when none is free. A refusal is the server's BUSY frame
/// (429-style backpressure): the caller learns immediately, nothing
/// blocks, nothing is silently dropped.
///
/// drain() stops admission and waits for everything in flight — the
/// graceful-shutdown half of the contract (SIGTERM drains, then the
/// process exits).
class RequestQueue {
 public:
  /// `threads` workers, at most `capacity` requests in flight
  /// (capacity is clamped to >= threads so the workers can be kept
  /// busy). `telemetry` (nullable) receives serve.queue.* metrics.
  RequestQueue(std::size_t threads, std::size_t capacity,
               obs::Telemetry* telemetry = nullptr);

  /// Runs `job` on a worker when a slot is free; false = queue full or
  /// draining (the job was NOT queued and will never run).
  [[nodiscard]] bool try_submit(std::function<void()> job);

  /// Stops admission (every later try_submit fails) and blocks until
  /// all admitted jobs finished. Idempotent.
  void drain();

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }

 private:
  const std::size_t capacity_;
  obs::Telemetry* const telemetry_;
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<bool> draining_{false};
  ThreadPool pool_;  ///< last member: destructs (joins) first
};

}  // namespace motsim::serve

#endif  // MOTSIM_SERVE_REQUEST_QUEUE_H
