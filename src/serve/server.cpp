#include "serve/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#include "obs/telemetry.h"
#include "serve/framing.h"
#include "util/signals.h"
#include "util/version.h"

namespace motsim::serve {

namespace {

constexpr int kAcceptPollMs = 200;

/// Best-effort request id for error frames when the payload failed to
/// decode: every request payload leads with its u32 id, so if at least
/// four bytes arrived we can still echo the right id back.
std::uint32_t salvage_id(const std::string& payload) {
  if (payload.size() < 4) return 0;
  return static_cast<std::uint32_t>(
             static_cast<std::uint8_t>(payload[0])) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(payload[1]))
          << 8) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(payload[2]))
          << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(payload[3]))
          << 24);
}

std::string http_response(int code, const char* status,
                          const std::string& content_type,
                          const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.0 " << code << ' ' << status << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  return os.str();
}

}  // namespace

Server::Server(ServerConfig config, obs::Telemetry* telemetry)
    : config_(std::move(config)),
      telemetry_(telemetry),
      service_(config_.cache_capacity, config_.store_root, telemetry),
      queue_(config_.threads, config_.queue_capacity, telemetry) {}

Server::~Server() { shutdown(); }

Expected<bool, std::string> Server::start() {
  auto listener = listen_tcp(config_.host, config_.port);
  if (!listener.has_value()) {
    return make_unexpected("serve: " + listener.error());
  }
  listen_fd_ = std::move(*listener);
  const auto bound = local_port(listen_fd_.get());
  if (!bound.has_value()) return make_unexpected(bound.error());
  port_ = *bound;

  auto http = listen_tcp(config_.host, config_.http_port);
  if (!http.has_value()) {
    return make_unexpected("serve http: " + http.error());
  }
  http_fd_ = std::move(*http);
  const auto http_bound = local_port(http_fd_.get());
  if (!http_bound.has_value()) return make_unexpected(http_bound.error());
  http_port_ = *http_bound;

  accept_thread_ = std::thread([this] { accept_loop(); });
  http_thread_ = std::thread([this] { http_loop(); });
  return true;
}

void Server::run_until_stop() {
  // Signal delivery writes the self-pipe (util/signals installs the
  // handlers without SA_RESTART), so the poll inside
  // accept_with_timeout-style waits wakes promptly; here a coarse
  // sleep-poll is enough because nothing latency-sensitive waits on it.
  while (!stopping_.load(std::memory_order_acquire) && !stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  shutdown();
}

void Server::request_shutdown() {
  stopping_.store(true, std::memory_order_release);
}

void Server::shutdown() {
  if (shut_down_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);

  // Order matters: (1) stop accepting, (2) drain — every admitted
  // request finishes and its response is written, (3) only then tear
  // down sockets so readers blocked in read_frame wake up and exit.
  if (accept_thread_.joinable()) accept_thread_.join();
  queue_.drain();
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const auto& weak : conns_) {
      if (const auto conn = weak.lock()) {
        ::shutdown(conn->fd.get(), SHUT_RDWR);
      }
    }
  }
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    readers.swap(conn_threads_);
  }
  for (auto& t : readers) {
    if (t.joinable()) t.join();
  }
  if (http_thread_.joinable()) http_thread_.join();
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire) && !stop_requested()) {
    auto accepted =
        accept_with_timeout(listen_fd_.get(), kAcceptPollMs, stop_wake_fd());
    if (!accepted.has_value()) {
      if (stopping_.load(std::memory_order_acquire)) break;
      continue;  // transient accept error; keep serving
    }
    if (!accepted->valid()) continue;  // timeout or stop wake
    set_tcp_nodelay(accepted->get());
    auto conn = std::make_shared<Connection>();
    conn->fd = std::move(*accepted);
    if (telemetry_ != nullptr) {
      telemetry_->metrics.counter("serve.connections.accepted").add();
    }
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.push_back(conn);
    conn_threads_.emplace_back(
        [this, conn = std::move(conn)]() mutable {
          connection_loop(std::move(conn));
        });
    // Opportunistically compact expired entries so a long-lived server
    // with client churn does not grow the registry without bound.
    if (conns_.size() > 64) {
      conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                  [](const std::weak_ptr<Connection>& w) {
                                    return w.expired();
                                  }),
                   conns_.end());
    }
  }
}

void Server::send_response(Connection& conn, const Response& response) {
  if (conn.broken.load(std::memory_order_acquire)) return;
  const std::string payload = encode_response(response);
  const FrameType type = frame_type_of(response);
  std::lock_guard<std::mutex> lock(conn.write_mutex);
  const auto wrote = write_frame(conn.fd.get(), type, payload);
  if (!wrote.has_value()) {
    conn.broken.store(true, std::memory_order_release);
    if (telemetry_ != nullptr) {
      telemetry_->metrics.counter("serve.write_errors").add();
    }
  }
}

void Server::connection_loop(std::shared_ptr<Connection> conn) {
  // Server speaks first: HELLO with protocol version + build string.
  const Hello ours{kHelloMagic, kProtocolVersion, build_info_string()};
  {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    const auto wrote =
        write_frame(conn->fd.get(), FrameType::Hello, encode_hello(ours));
    if (!wrote.has_value()) return;
  }

  // The client's first frame must be a compatible HELLO.
  {
    const ReadResult first = read_frame(conn->fd.get());
    if (first.status != ReadStatus::Ok) return;
    bool ok = first.frame.type == FrameType::Hello;
    Hello theirs;
    if (ok) {
      const auto decoded = decode_hello(first.frame.payload);
      ok = decoded.has_value();
      if (ok) theirs = *decoded;
    }
    if (!ok) {
      send_response(
          *conn, ErrorResponse{0, ErrorCode::BadFrame,
                               "handshake: expected a HELLO frame"});
      return;
    }
    if (theirs.protocol != kProtocolVersion) {
      send_response(
          *conn,
          ErrorResponse{0, ErrorCode::VersionMismatch,
                        "server speaks protocol " +
                            std::to_string(kProtocolVersion) +
                            ", client sent " +
                            std::to_string(theirs.protocol)});
      return;
    }
  }

  while (!conn->broken.load(std::memory_order_acquire)) {
    const ReadResult r = read_frame(conn->fd.get());
    if (r.status == ReadStatus::Eof) break;
    if (r.status == ReadStatus::Error) {
      // Framing-level damage (bad length, short read): the stream can
      // no longer be resynchronized, so answer once and hang up.
      if (telemetry_ != nullptr) {
        telemetry_->metrics.counter("serve.protocol_errors").add();
      }
      if (!stopping_.load(std::memory_order_acquire)) {
        send_response(*conn,
                      ErrorResponse{0, ErrorCode::BadFrame, r.error});
      }
      break;
    }
    auto decoded = decode_request(r.frame.type, r.frame.payload);
    if (!decoded.has_value()) {
      // Frame boundaries are intact, only this payload is malformed —
      // report it and keep the connection.
      if (telemetry_ != nullptr) {
        telemetry_->metrics.counter("serve.protocol_errors").add();
      }
      send_response(*conn,
                    ErrorResponse{salvage_id(r.frame.payload),
                                  ErrorCode::BadFrame, decoded.error()});
      continue;
    }
    const std::uint32_t id = request_id(*decoded);
    const auto request = std::make_shared<Request>(std::move(*decoded));
    const bool admitted = queue_.try_submit([this, conn, request] {
      send_response(*conn, service_.handle(*request));
    });
    if (!admitted) {
      if (queue_.draining()) {
        send_response(*conn, ErrorResponse{id, ErrorCode::ShuttingDown,
                                           "server is draining"});
      } else {
        send_response(*conn, BusyResponse{id});
      }
    }
  }
}

void Server::http_loop() {
  while (!stopping_.load(std::memory_order_acquire) && !stop_requested()) {
    auto accepted =
        accept_with_timeout(http_fd_.get(), kAcceptPollMs, stop_wake_fd());
    if (!accepted.has_value() || !accepted->valid()) continue;

    // Requests are tiny ("GET /metrics HTTP/1.1" + headers); read until
    // the header terminator, a small cap, or EOF, then answer and close
    // (HTTP/1.0 semantics — scrape clients reconnect per scrape).
    std::string req;
    char buf[1024];
    while (req.size() < 8192 && req.find("\r\n\r\n") == std::string::npos) {
      const ssize_t n = ::read(accepted->get(), buf, sizeof(buf));
      if (n <= 0) break;
      req.append(buf, static_cast<std::size_t>(n));
    }
    std::string path;
    {
      std::istringstream line(req.substr(0, req.find("\r\n")));
      std::string method;
      line >> method >> path;
      if (method != "GET") path.clear();
    }

    std::string out;
    if (path == "/healthz") {
      out = http_response(200, "OK", "text/plain; charset=utf-8", "ok\n");
    } else if (path == "/metrics") {
      std::ostringstream body;
      // Classic build-info idiom: constant 1 gauge carrying the version
      // as labels. Emitted here (not via MetricsRegistry) because the
      // registry renders unlabeled series only.
      body << "# TYPE motsim_build_info gauge\n"
           << "motsim_build_info{version=\"" << version_string()
           << "\",build=\"" << build_info_string() << "\"} 1\n";
      if (telemetry_ != nullptr) {
        body << telemetry_->metrics.snapshot().to_prometheus();
      }
      out = http_response(200, "OK",
                          "text/plain; version=0.0.4; charset=utf-8",
                          body.str());
    } else {
      out = http_response(404, "Not Found", "text/plain; charset=utf-8",
                          "not found\n");
    }
    (void)write_full(accepted->get(), out.data(), out.size());
  }
}

}  // namespace motsim::serve
