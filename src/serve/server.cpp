#include "serve/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "obs/telemetry.h"
#include "serve/framing.h"
#include "util/signals.h"
#include "util/stopwatch.h"
#include "util/version.h"

namespace motsim::serve {

namespace {

constexpr int kAcceptPollMs = 200;

/// Best-effort request id for error frames when the payload failed to
/// decode: every request payload leads with its u32 id, so if at least
/// four bytes arrived we can still echo the right id back.
std::uint32_t salvage_id(const std::string& payload) {
  if (payload.size() < 4) return 0;
  return static_cast<std::uint32_t>(
             static_cast<std::uint8_t>(payload[0])) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(payload[1]))
          << 8) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(payload[2]))
          << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(payload[3]))
          << 24);
}

/// Outcome tag of an access-log line, from the response frame type.
const char* outcome_of(const Response& response) noexcept {
  if (std::holds_alternative<ErrorResponse>(response)) return "error";
  if (std::holds_alternative<BusyResponse>(response)) return "busy";
  return "ok";
}

/// Queue-wait histogram buckets — same shape as the service-time
/// histogram in serve/service.cpp so the two are comparable.
const std::vector<double>& queue_wait_bounds() {
  static const std::vector<double> kBounds = {
      1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03,
      0.1,  0.3,  1.0,  3.0,  10.0, 30.0, 100.0};
  return kBounds;
}

}  // namespace

Server::Server(ServerConfig config, obs::Telemetry* telemetry)
    : config_(std::move(config)),
      telemetry_(telemetry),
      service_(config_.cache_capacity, config_.store_root, telemetry),
      queue_(config_.threads, config_.queue_capacity, telemetry),
      http_(telemetry) {}

Server::~Server() { shutdown(); }

Expected<bool, std::string> Server::start() {
  auto listener = listen_tcp(config_.host, config_.port);
  if (!listener.has_value()) {
    return make_unexpected("serve: " + listener.error());
  }
  listen_fd_ = std::move(*listener);
  const auto bound = local_port(listen_fd_.get());
  if (!bound.has_value()) return make_unexpected(bound.error());
  port_ = *bound;

  auto http = listen_tcp(config_.host, config_.http_port);
  if (!http.has_value()) {
    return make_unexpected("serve http: " + http.error());
  }
  http_fd_ = std::move(*http);
  const auto http_bound = local_port(http_fd_.get());
  if (!http_bound.has_value()) return make_unexpected(http_bound.error());
  http_port_ = *http_bound;

  accept_thread_ = std::thread([this] { accept_loop(); });
  http_thread_ = std::thread([this] { http_loop(); });
  return true;
}

void Server::run_until_stop() {
  // Signal delivery writes the self-pipe (util/signals installs the
  // handlers without SA_RESTART), so the poll inside
  // accept_with_timeout-style waits wakes promptly; here a coarse
  // sleep-poll is enough because nothing latency-sensitive waits on it.
  // The same poll services SIGUSR1 state-dump requests — the handler
  // only latches a flag, the dump itself runs here on a normal thread.
  while (!stopping_.load(std::memory_order_acquire) && !stop_requested()) {
    if (take_dump_request() && !config_.dump_path.empty()) {
      const auto dumped = dump_state(config_.dump_path);
      obs::log_event(telemetry_, obs::LogLevel::Info, "serve.dump",
                     {obs::LogField::str("path", config_.dump_path),
                      obs::LogField::boolean("ok", dumped.has_value())});
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  shutdown();
}

Expected<bool, std::string> Server::dump_state(
    const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) {
    return make_unexpected("dump: cannot open for appending: " + path);
  }
  if (telemetry_ != nullptr) {
    out << telemetry_->metrics.snapshot().to_json_line() << "\n"
        << telemetry_->recorder.dump();
  } else {
    out << "{}\n";
  }
  out.flush();
  if (!out) return make_unexpected("dump: write failed: " + path);
  return true;
}

void Server::request_shutdown() {
  stopping_.store(true, std::memory_order_release);
}

void Server::shutdown() {
  if (shut_down_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);

  // Order matters: (1) stop accepting, (2) drain — every admitted
  // request finishes and its response is written, (3) only then tear
  // down sockets so readers blocked in read_frame wake up and exit.
  if (accept_thread_.joinable()) accept_thread_.join();
  obs::log_event(telemetry_, obs::LogLevel::Info, "serve.drain.begin",
                 {obs::LogField::u64("in_flight", queue_.in_flight())});
  queue_.drain();
  obs::log_event(telemetry_, obs::LogLevel::Info, "serve.drain.end");
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const auto& weak : conns_) {
      if (const auto conn = weak.lock()) {
        ::shutdown(conn->fd.get(), SHUT_RDWR);
      }
    }
  }
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    readers.swap(conn_threads_);
  }
  for (auto& t : readers) {
    if (t.joinable()) t.join();
  }
  if (http_thread_.joinable()) http_thread_.join();
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire) && !stop_requested()) {
    auto accepted =
        accept_with_timeout(listen_fd_.get(), kAcceptPollMs, stop_wake_fd());
    if (!accepted.has_value()) {
      if (stopping_.load(std::memory_order_acquire)) break;
      continue;  // transient accept error; keep serving
    }
    if (!accepted->valid()) continue;  // timeout or stop wake
    set_tcp_nodelay(accepted->get());
    auto conn = std::make_shared<Connection>();
    conn->fd = std::move(*accepted);
    conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry_ != nullptr) {
      telemetry_->metrics.counter("serve.connections.accepted").add();
    }
    obs::log_event(telemetry_, obs::LogLevel::Info, "serve.conn.accept",
                   {obs::LogField::u64("conn", conn->id)});
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.push_back(conn);
    conn_threads_.emplace_back(
        [this, conn = std::move(conn)]() mutable {
          connection_loop(std::move(conn));
        });
    // Opportunistically compact expired entries so a long-lived server
    // with client churn does not grow the registry without bound.
    if (conns_.size() > 64) {
      conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                  [](const std::weak_ptr<Connection>& w) {
                                    return w.expired();
                                  }),
                   conns_.end());
    }
  }
}

std::size_t Server::send_response(Connection& conn,
                                  const Response& response) {
  if (conn.broken.load(std::memory_order_acquire)) return 0;
  const std::string payload = encode_response(response);
  const FrameType type = frame_type_of(response);
  std::lock_guard<std::mutex> lock(conn.write_mutex);
  const auto wrote = write_frame(conn.fd.get(), type, payload);
  if (!wrote.has_value()) {
    conn.broken.store(true, std::memory_order_release);
    if (telemetry_ != nullptr) {
      telemetry_->metrics.counter("serve.write_errors").add();
    }
    obs::log_event(telemetry_, obs::LogLevel::Warn, "serve.conn.write_error",
                   {obs::LogField::u64("conn", conn.id)}, wrote.error());
    return 0;
  }
  // Frame header (length + type) plus payload — what the peer reads.
  return payload.size() + 5;
}

void Server::connection_loop(std::shared_ptr<Connection> conn) {
  // Server speaks first: HELLO with protocol version + build string.
  const Hello ours{kHelloMagic, kProtocolVersion, build_info_string()};
  {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    const auto wrote =
        write_frame(conn->fd.get(), FrameType::Hello, encode_hello(ours));
    if (!wrote.has_value()) return;
  }

  // The client's first frame must be a compatible HELLO.
  {
    const ReadResult first = read_frame(conn->fd.get());
    if (first.status != ReadStatus::Ok) return;
    bool ok = first.frame.type == FrameType::Hello;
    Hello theirs;
    if (ok) {
      const auto decoded = decode_hello(first.frame.payload);
      ok = decoded.has_value();
      if (ok) theirs = *decoded;
    }
    if (!ok) {
      send_response(
          *conn, ErrorResponse{0, ErrorCode::BadFrame,
                               "handshake: expected a HELLO frame"});
      return;
    }
    if (theirs.protocol != kProtocolVersion) {
      send_response(
          *conn,
          ErrorResponse{0, ErrorCode::VersionMismatch,
                        "server speaks protocol " +
                            std::to_string(kProtocolVersion) +
                            ", client sent " +
                            std::to_string(theirs.protocol)});
      return;
    }
  }

  while (!conn->broken.load(std::memory_order_acquire)) {
    const ReadResult r = read_frame(conn->fd.get());
    if (r.status == ReadStatus::Eof) break;
    if (r.status == ReadStatus::Error) {
      // Framing-level damage (bad length, short read): the stream can
      // no longer be resynchronized, so answer once and hang up.
      if (telemetry_ != nullptr) {
        telemetry_->metrics.counter("serve.protocol_errors").add();
      }
      if (!stopping_.load(std::memory_order_acquire)) {
        send_response(*conn,
                      ErrorResponse{0, ErrorCode::BadFrame, r.error});
      }
      break;
    }
    auto decoded = decode_request(r.frame.type, r.frame.payload);
    if (!decoded.has_value()) {
      // Frame boundaries are intact, only this payload is malformed —
      // report it and keep the connection.
      if (telemetry_ != nullptr) {
        telemetry_->metrics.counter("serve.protocol_errors").add();
      }
      send_response(*conn,
                    ErrorResponse{salvage_id(r.frame.payload),
                                  ErrorCode::BadFrame, decoded.error()});
      continue;
    }
    const std::uint32_t id = request_id(*decoded);
    // Trace id for this request: connection id + per-connection
    // sequence number. Minted on the reader thread so rejection paths
    // (BUSY, draining) carry it too; propagated into the worker via
    // ScopedTraceId so engine spans and log records inherit it.
    const std::uint32_t seq =
        conn->next_request.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::string trace =
        "c" + std::to_string(conn->id) + "-r" + std::to_string(seq);
    const std::size_t bytes_in = r.frame.payload.size() + 5;
    const auto request = std::make_shared<Request>(std::move(*decoded));
    const char* type_name = to_cstring(r.frame.type);
    Stopwatch queued;  // admission → job start = queue wait
    const bool admitted = queue_.try_submit([this, conn, request, trace,
                                             type_name, bytes_in, queued] {
      const obs::ScopedTraceId scope(trace);
      const double queue_s = queued.elapsed_seconds();
      if (telemetry_ != nullptr) {
        telemetry_->metrics
            .histogram("serve.queue.wait_seconds", queue_wait_bounds())
            .observe(queue_s);
      }
      Stopwatch served;
      Response response = service_.handle(*request);
      const double service_s = served.elapsed_seconds();
      const std::size_t bytes_out = send_response(*conn, response);
      obs::log_event(
          telemetry_, obs::LogLevel::Info, "serve.request",
          {obs::LogField::str("type", type_name),
           obs::LogField::u64("id", response_id(response)),
           obs::LogField::u64("bytes_in", bytes_in),
           obs::LogField::u64("bytes_out", bytes_out),
           obs::LogField::f64("queue_s", queue_s),
           obs::LogField::f64("service_s", service_s),
           obs::LogField::str("outcome", outcome_of(response))});
      if (service_s > config_.slow_request_seconds) {
        obs::log_event(telemetry_, obs::LogLevel::Warn,
                       "serve.request.slow",
                       {obs::LogField::str("type", type_name),
                        obs::LogField::f64("service_s", service_s),
                        obs::LogField::f64("threshold_s",
                                           config_.slow_request_seconds)});
      }
    });
    if (!admitted) {
      const obs::ScopedTraceId scope(trace);
      if (queue_.draining()) {
        ErrorResponse rejected{id, ErrorCode::ShuttingDown,
                               "server is draining"};
        rejected.trace = trace;
        const std::size_t bytes_out = send_response(*conn, rejected);
        obs::log_event(telemetry_, obs::LogLevel::Warn, "serve.request",
                       {obs::LogField::str("type", type_name),
                        obs::LogField::u64("id", id),
                        obs::LogField::u64("bytes_in", bytes_in),
                        obs::LogField::u64("bytes_out", bytes_out),
                        obs::LogField::str("outcome", "draining")});
      } else {
        BusyResponse busy{id};
        busy.trace = trace;
        const std::size_t bytes_out = send_response(*conn, busy);
        obs::log_event(telemetry_, obs::LogLevel::Warn, "serve.request",
                       {obs::LogField::str("type", type_name),
                        obs::LogField::u64("id", id),
                        obs::LogField::u64("bytes_in", bytes_in),
                        obs::LogField::u64("bytes_out", bytes_out),
                        obs::LogField::str("outcome", "busy")});
      }
    }
  }
  obs::log_event(telemetry_, obs::LogLevel::Info, "serve.conn.close",
                 {obs::LogField::u64("conn", conn->id)});
}

void Server::http_loop() {
  while (!stopping_.load(std::memory_order_acquire) && !stop_requested()) {
    auto accepted =
        accept_with_timeout(http_fd_.get(), kAcceptPollMs, stop_wake_fd());
    if (!accepted.has_value() || !accepted->valid()) continue;

    // Requests are tiny ("GET /metrics HTTP/1.1" + headers); read until
    // the header terminator, a small cap, or EOF, then answer and close
    // (HTTP/1.0 semantics — scrape clients reconnect per scrape).
    std::string req;
    char buf[1024];
    while (req.size() < 8192 && req.find("\r\n\r\n") == std::string::npos) {
      const ssize_t n = ::read(accepted->get(), buf, sizeof(buf));
      if (n <= 0) break;
      req.append(buf, static_cast<std::size_t>(n));
    }
    // Routing and rendering live in HttpEndpoint (serve/http.h) so
    // tests exercise them without sockets; this loop only does I/O.
    const HttpReply reply = http_.handle(req);
    const std::string out = HttpEndpoint::render(reply);
    (void)write_full(accepted->get(), out.data(), out.size());
  }
}

}  // namespace motsim::serve
