#include "serve/service.h"

#include <exception>
#include <fstream>
#include <utility>

#include "analysis/lint.h"
#include "bdd/bdd.h"
#include "core/pipeline.h"
#include "core/test_eval.h"
#include "logic/val3.h"
#include "obs/telemetry.h"
#include "store/campaign.h"
#include "store/fingerprint.h"
#include "store/run_store.h"
#include "tpg/sequences.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace motsim::serve {

namespace {

ErrorResponse bad_request(std::uint32_t id, std::string message) {
  return ErrorResponse{id, ErrorCode::BadRequest, std::move(message)};
}

/// True when `dir` already holds a campaign manifest (a previous
/// request for the same workload fingerprint created it).
bool store_exists(const std::string& dir) {
  std::ifstream manifest(dir + "/manifest.txt");
  return static_cast<bool>(manifest);
}

}  // namespace

Service::Service(std::size_t cache_capacity, std::string store_root,
                 obs::Telemetry* telemetry)
    : cache_(cache_capacity, telemetry),
      store_root_(std::move(store_root)),
      telemetry_(telemetry) {}

Response Service::handle(const Request& request) noexcept {
  const std::uint32_t id = request_id(request);
  Stopwatch timer;
  Response response = ErrorResponse{id, ErrorCode::Internal, "unhandled"};
  try {
    struct Visitor {
      Service& s;
      Response operator()(const PingRequest& m) { return s.handle_ping(m); }
      Response operator()(const LintRequest& m) { return s.handle_lint(m); }
      Response operator()(const FaultSimRequest& m) {
        return s.handle_fault_sim(m);
      }
      Response operator()(const TestEvalRequest& m) {
        return s.handle_test_eval(m);
      }
      Response operator()(const DumpStateRequest& m) {
        return s.handle_dump_state(m);
      }
    };
    response = std::visit(Visitor{*this}, request);
  } catch (const std::exception& e) {
    // Queue workers run tasks bare (ThreadPool terminates on escaped
    // exceptions), so the catch-all lives here: any handler failure is
    // an ERROR frame, never a dead worker.
    response = ErrorResponse{id, ErrorCode::Internal, e.what()};
  } catch (...) {
    response =
        ErrorResponse{id, ErrorCode::Internal, "unknown handler exception"};
  }
  if (telemetry_ != nullptr) {
    static const std::vector<double> kLatencyBounds = {
        1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03,
        0.1,  0.3,  1.0,  3.0,  10.0, 30.0, 100.0};
    telemetry_->metrics
        .histogram("serve.request.seconds", kLatencyBounds)
        .observe(timer.elapsed_seconds());
    telemetry_->metrics.counter("serve.requests.completed").add();
    if (std::holds_alternative<ErrorResponse>(response)) {
      telemetry_->metrics.counter("serve.requests.errors").add();
    }
  }
  // Every response carries the request's trace id — whatever
  // ScopedTraceId the caller (a queue worker, or a test invoking
  // handle() directly) put in scope. Empty when untraced.
  set_response_trace(response, obs::current_trace_id());
  return response;
}

Response Service::handle_ping(const PingRequest& req) {
  if (telemetry_ != nullptr) {
    telemetry_->metrics.counter("serve.requests.ping").add();
  }
  return PongResponse{req.id};
}

Response Service::handle_lint(const LintRequest& req) {
  if (telemetry_ != nullptr) {
    telemetry_->metrics.counter("serve.requests.lint").add();
  }
  const auto circuit = cache_.get_or_load(req.circuit);
  if (!circuit.has_value()) return bad_request(req.id, circuit.error());
  const DiagnosticReport report = run_lint((*circuit)->netlist);
  LintResponse resp;
  resp.id = req.id;
  resp.errors = static_cast<std::uint32_t>(report.count(Severity::Error));
  resp.warnings =
      static_cast<std::uint32_t>(report.count(Severity::Warning));
  resp.notes = static_cast<std::uint32_t>(report.count(Severity::Note));
  resp.json = report.to_json();
  return resp;
}

Response Service::handle_fault_sim(const FaultSimRequest& req) {
  if (telemetry_ != nullptr) {
    telemetry_->metrics.counter("serve.requests.fault_sim").add();
  }
  const auto circuit = cache_.get_or_load(req.circuit);
  if (!circuit.has_value()) return bad_request(req.id, circuit.error());
  const Netlist& nl = (*circuit)->netlist;
  const std::vector<Fault>& faults = (*circuit)->faults.faults();

  if (req.vectors == 0) {
    return bad_request(req.id, "FAULT_SIM: vectors must be positive");
  }
  SimOptions options = req.options;
  options.telemetry = telemetry_;
  const auto checked = options.validate();
  if (!checked.has_value()) return bad_request(req.id, checked.error());

  Rng rng(options.seed);
  const TestSequence sequence = random_sequence(
      nl, static_cast<std::size_t>(req.vectors), rng);

  FaultSimResponse resp;
  resp.id = req.id;

  if (req.use_store && !store_root_.empty()) {
    // Campaign path: one run-store per workload fingerprint, so the
    // same request served twice resumes (completed campaign = answer
    // from the store) instead of recomputing — and a long campaign
    // interrupted by a server restart continues from its checkpoints.
    Fnv1a64 key;
    key.update_u64((*circuit)->netlist_fingerprint);
    key.update_u64(fingerprint_faults(faults));
    key.update_u64(fingerprint_options(*checked));
    key.update_u64(fingerprint_sequence(sequence));
    const std::string dir =
        store_root_ + "/" + fingerprint_to_hex(key.digest());
    const bool resuming = store_exists(dir);
    const auto result =
        resuming ? resume_campaign(nl, faults, dir, std::nullopt, nullptr,
                                   nullptr, telemetry_)
                 : run_campaign(nl, faults, sequence, *checked, dir);
    if (!result.has_value()) {
      return ErrorResponse{req.id, ErrorCode::Internal, result.error()};
    }
    resp.from_store = true;
    resp.x_redundant = result->x_redundant;
    resp.static_x_redundant = result->static_x_redundant;
    resp.static_untestable = result->static_untestable;
    resp.detected_symbolic = result->summary().detected_total();
    resp.used_fallback = result->sym.used_fallback;
    resp.status.reserve(result->status.size());
    for (const FaultStatus s : result->status) {
      resp.status.push_back(static_cast<std::uint8_t>(s));
    }
    resp.detect_frame = result->detect_frame;
    return resp;
  }

  const PipelineResult result =
      run_pipeline(nl, faults, sequence, *checked);
  resp.x_redundant = result.x_redundant;
  resp.static_x_redundant = result.static_x_redundant;
  resp.static_untestable = result.static_untestable;
  resp.detected_3v = result.detected_3v;
  resp.detected_symbolic = result.detected_symbolic;
  resp.used_fallback = result.used_fallback;
  resp.status.reserve(result.status.size());
  for (const FaultStatus s : result.status) {
    resp.status.push_back(static_cast<std::uint8_t>(s));
  }
  resp.detect_frame = result.detect_frame;
  return resp;
}

Response Service::handle_test_eval(const TestEvalRequest& req) {
  if (telemetry_ != nullptr) {
    telemetry_->metrics.counter("serve.requests.test_eval").add();
  }
  const auto circuit = cache_.get_or_load(req.circuit);
  if (!circuit.has_value()) return bad_request(req.id, circuit.error());
  const Netlist& nl = (*circuit)->netlist;

  if (req.vectors == 0) {
    return bad_request(req.id, "TEST_EVAL: vectors must be positive");
  }
  const std::size_t frames = static_cast<std::size_t>(req.vectors);
  const std::size_t width = frames * nl.output_count();
  for (std::size_t i = 0; i < req.responses.size(); ++i) {
    if (req.responses[i].size() != width) {
      return bad_request(
          req.id, "TEST_EVAL: response " + std::to_string(i) + " has " +
                      std::to_string(req.responses[i].size()) +
                      " values, expected frames*outputs = " +
                      std::to_string(width));
    }
    for (const std::uint8_t v : req.responses[i]) {
      if (v > 1) {
        return bad_request(req.id, "TEST_EVAL: response " +
                                       std::to_string(i) +
                                       " carries a non-binary value");
      }
    }
  }

  // The expensive artifact — the symbolic fault-free response — is
  // built once per request and amortized over every tester response in
  // the batch (paper Section IV.B / Table IV).
  Rng rng(req.seed);
  const TestSequence sequence = random_sequence(nl, frames, rng);
  bdd::BddManager mgr;
  const SymbolicResponse symbolic(nl, mgr, sequence);
  const TestEvaluator evaluator(symbolic);

  TestEvalResponse resp;
  resp.id = req.id;
  resp.verdicts.reserve(req.responses.size());
  std::vector<std::vector<bool>> response_bits(
      frames, std::vector<bool>(nl.output_count()));
  for (const auto& flat : req.responses) {
    for (std::size_t t = 0; t < frames; ++t) {
      for (std::size_t j = 0; j < nl.output_count(); ++j) {
        response_bits[t][j] = flat[t * nl.output_count() + j] != 0;
      }
    }
    const Verdict v = evaluator.evaluate(response_bits);
    resp.verdicts.push_back(v == Verdict::Faulty ? 1 : 0);
  }
  return resp;
}

Response Service::handle_dump_state(const DumpStateRequest& req) {
  if (telemetry_ != nullptr) {
    telemetry_->metrics.counter("serve.requests.dump_state").add();
  }
  DumpStateResponse resp;
  resp.id = req.id;
  if (telemetry_ != nullptr) {
    resp.metrics_json = telemetry_->metrics.snapshot().to_json_line();
    resp.recorder_jsonl = telemetry_->recorder.dump();
  } else {
    resp.metrics_json = "{}";
  }
  return resp;
}

}  // namespace motsim::serve
