#ifndef MOTSIM_SERVE_SERVICE_H
#define MOTSIM_SERVE_SERVICE_H

#include <string>

#include "serve/circuit_cache.h"
#include "serve/protocol.h"

namespace motsim::obs {
struct Telemetry;
}

namespace motsim::serve {

/// Request execution, independent of any socket: one Request in, one
/// Response out, never throws (handler failures become ERROR
/// responses). The server runs handle() on queue workers; the
/// bit-identity test in tests/test_serve.cpp calls it directly and
/// compares against run_pipeline.
class Service {
 public:
  /// `store_root`: directory for FAULT_SIM use_store campaigns (one
  /// run-store per workload fingerprint under it); empty = the
  /// use_store flag is ignored and requests run in-memory.
  /// `telemetry` (nullable) receives the serve.* metrics catalogued in
  /// docs/SERVE.md.
  Service(std::size_t cache_capacity, std::string store_root,
          obs::Telemetry* telemetry = nullptr);

  /// Executes one request. The response always echoes the request id.
  [[nodiscard]] Response handle(const Request& request) noexcept;

  [[nodiscard]] CircuitCache& cache() noexcept { return cache_; }

 private:
  [[nodiscard]] Response handle_ping(const PingRequest& req);
  [[nodiscard]] Response handle_lint(const LintRequest& req);
  [[nodiscard]] Response handle_fault_sim(const FaultSimRequest& req);
  [[nodiscard]] Response handle_test_eval(const TestEvalRequest& req);
  [[nodiscard]] Response handle_dump_state(const DumpStateRequest& req);

  CircuitCache cache_;
  const std::string store_root_;
  obs::Telemetry* const telemetry_;
};

}  // namespace motsim::serve

#endif  // MOTSIM_SERVE_SERVICE_H
