#ifndef MOTSIM_SERVE_PROTOCOL_H
#define MOTSIM_SERVE_PROTOCOL_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "core/options.h"
#include "util/expected.h"

namespace motsim::serve {

/// The motsim serve wire protocol (documented in docs/SERVE.md).
///
/// Every message is one length-prefixed frame:
///
///   [u32 length][u8 type][payload ...]     all integers little-endian
///
/// `length` counts the type byte plus the payload. A connection opens
/// with a handshake — the server sends HELLO (magic, protocol
/// version, build string), the client answers with its own HELLO, and
/// a version mismatch is answered with an ERROR frame and a close.
/// After the handshake the client sends request frames; the server
/// answers each with exactly one response frame carrying the request's
/// `id`. Responses may arrive out of request order (requests run on
/// the shared campaign queue), which is what lets one connection
/// pipeline — clients match on `id`.
///
/// Failure is data, not disconnection: malformed payloads, unknown
/// types, invalid options and overload all come back as typed ERROR /
/// BUSY frames (the Expected-style contract of the rest of the
/// codebase). The server only hangs up on framing-level garbage it
/// cannot recover from (unparseable length, oversized frame) — after
/// sending a final ERROR frame describing why.

/// Version history: v1 = PR 7's initial protocol; v2 adds a trace-id
/// string to every response frame (request-scoped tracing — the id a
/// client logs to correlate with the server's access log and spans)
/// and the DUMP_STATE request/response pair.
inline constexpr std::uint32_t kProtocolVersion = 2;
/// First payload word of a HELLO frame — "MOT1" — so a client talking
/// to the wrong service fails fast instead of mis-parsing.
inline constexpr std::uint32_t kHelloMagic = 0x3154'4f4du;
/// Upper bound on `length`. Inline .bench netlists for the largest
/// roster circuits are a few MB; 64 MiB leaves headroom while making
/// a garbage length field (which would otherwise look like a huge
/// allocation) unambiguous.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

enum class FrameType : std::uint8_t {
  Hello = 1,
  Ping = 2,
  Pong = 3,
  LintReq = 4,
  LintResp = 5,
  FaultSimReq = 6,
  FaultSimResp = 7,
  TestEvalReq = 8,
  TestEvalResp = 9,
  Error = 10,
  Busy = 11,
  DumpStateReq = 12,
  DumpStateResp = 13,
};

[[nodiscard]] const char* to_cstring(FrameType t) noexcept;

enum class ErrorCode : std::uint16_t {
  BadFrame = 1,         ///< undecodable payload / unknown frame type
  BadRequest = 2,       ///< decoded, but semantically invalid
  VersionMismatch = 3,  ///< handshake protocol version differs
  ShuttingDown = 4,     ///< server is draining; no new work accepted
  Internal = 5,         ///< handler failed (bug or resource exhaustion)
};

[[nodiscard]] const char* to_cstring(ErrorCode c) noexcept;

// ---------------------------------------------------------------------
// Message structs
// ---------------------------------------------------------------------

struct Hello {
  std::uint32_t magic = kHelloMagic;
  std::uint32_t protocol = kProtocolVersion;
  std::string build;  ///< build_info_string() of the sender
};

/// A circuit, by roster name or as inline .bench text. The raw bytes
/// of this struct are what the server's circuit cache fingerprints —
/// two requests with byte-identical refs share one parsed+collapsed
/// circuit (see serve/circuit_cache.h).
struct CircuitRef {
  enum class Kind : std::uint8_t { Roster = 0, BenchText = 1 };
  Kind kind = Kind::Roster;
  std::string text;  ///< roster name or full .bench source
};

struct PingRequest {
  std::uint32_t id = 0;
};

struct LintRequest {
  std::uint32_t id = 0;
  CircuitRef circuit;
};

/// Engine configuration of a fault-sim request — the wire image of the
/// SimOptions fields a remote caller may choose. `to_sim_options()`
/// fills a SimOptions (telemetry stays server-side); the server
/// validates it like the CLI does and answers BadRequest on rejection.
struct FaultSimRequest {
  std::uint32_t id = 0;
  CircuitRef circuit;
  /// Random-sequence length; the sequence is generated server-side
  /// from `options.seed` exactly like `motsim_cli --vectors N`.
  std::uint64_t vectors = 200;
  /// Run as a checkpointed campaign in the server's --store-root
  /// (keyed by workload fingerprint; a re-request of a completed
  /// campaign is answered from the store). Ignored without a root.
  bool use_store = false;
  /// Engine options, validated server-side exactly like the CLI's
  /// (telemetry pointer stays server-local and is never on the wire).
  SimOptions options;
};

struct TestEvalRequest {
  std::uint32_t id = 0;
  CircuitRef circuit;
  /// Test sequence spec (random, server-generated): length and seed.
  std::uint64_t vectors = 16;
  std::uint64_t seed = 1;
  /// Tester response sequences to screen, frame-major: one byte per
  /// (frame, output), 0/1, length == vectors * output_count. All are
  /// evaluated against one precomputed symbolic fault-free response
  /// (paper Section IV.B) — the request-batching amortization.
  std::vector<std::vector<std::uint8_t>> responses;
};

/// Server-side state dump: the flight-recorder window plus a metrics
/// snapshot — the wire twin of GET /debug/state, for clients already
/// on the binary protocol.
struct DumpStateRequest {
  std::uint32_t id = 0;
};

// Every response carries `trace`: the server-assigned request trace id
// ("c<conn>-r<seq>") that also tags the access-log line and every
// engine span recorded while the request ran. Clients log it; an
// operator greps it.

struct PongResponse {
  std::uint32_t id = 0;
  std::string trace{};
};

struct LintResponse {
  std::uint32_t id = 0;
  std::uint32_t errors = 0;
  std::uint32_t warnings = 0;
  std::uint32_t notes = 0;
  std::string json;  ///< DiagnosticReport::to_json()
  std::string trace{};
};

struct FaultSimResponse {
  std::uint32_t id = 0;
  std::uint64_t x_redundant = 0;
  std::uint64_t static_x_redundant = 0;
  std::uint64_t static_untestable = 0;
  std::uint64_t detected_3v = 0;
  std::uint64_t detected_symbolic = 0;
  bool used_fallback = false;
  /// True when the result came from (or through) the run store.
  bool from_store = false;
  /// Final classification, collapsed-fault-list order — byte-for-byte
  /// the pipeline's verdicts, which is what the bit-identity test in
  /// tests/test_serve.cpp compares against a direct run_pipeline call.
  std::vector<std::uint8_t> status;
  std::vector<std::uint32_t> detect_frame;
  std::string trace{};
};

struct TestEvalResponse {
  std::uint32_t id = 0;
  /// One byte per screened response: 0 = Pass, 1 = Faulty.
  std::vector<std::uint8_t> verdicts;
  std::string trace{};
};

struct ErrorResponse {
  std::uint32_t id = 0;  ///< 0 when no request id could be recovered
  ErrorCode code = ErrorCode::Internal;
  std::string message;
  std::string trace{};
};

/// Admission backpressure: the campaign queue is full. The client
/// should back off and retry — nothing was executed or queued.
struct BusyResponse {
  std::uint32_t id = 0;
  std::string trace{};
};

struct DumpStateResponse {
  std::uint32_t id = 0;
  std::string metrics_json;     ///< MetricsSnapshot::to_json_line()
  std::string recorder_jsonl;   ///< FlightRecorder::dump()
  std::string trace{};
};

using Request = std::variant<PingRequest, LintRequest, FaultSimRequest,
                             TestEvalRequest, DumpStateRequest>;
using Response =
    std::variant<PongResponse, LintResponse, FaultSimResponse,
                 TestEvalResponse, ErrorResponse, BusyResponse,
                 DumpStateResponse>;

/// Request id of any request / response variant.
[[nodiscard]] std::uint32_t request_id(const Request& r) noexcept;
[[nodiscard]] std::uint32_t response_id(const Response& r) noexcept;

/// Trace id carried by any response variant (get / set uniformly).
[[nodiscard]] const std::string& response_trace(const Response& r) noexcept;
void set_response_trace(Response& r, const std::string& trace);

// ---------------------------------------------------------------------
// Payload codecs (payload bytes only — framing adds length + type)
// ---------------------------------------------------------------------

[[nodiscard]] std::string encode_hello(const Hello& h);
[[nodiscard]] Expected<Hello, std::string> decode_hello(
    const std::string& payload);

/// Frame type a given request/response encodes as.
[[nodiscard]] FrameType frame_type_of(const Request& r) noexcept;
[[nodiscard]] FrameType frame_type_of(const Response& r) noexcept;

[[nodiscard]] std::string encode_request(const Request& r);
[[nodiscard]] std::string encode_response(const Response& r);

/// Strict decoders: every byte must be consumed; truncated, oversized
/// or trailing-garbage payloads are errors (never crashes — all reads
/// are bounds-checked).
[[nodiscard]] Expected<Request, std::string> decode_request(
    FrameType type, const std::string& payload);
[[nodiscard]] Expected<Response, std::string> decode_response(
    FrameType type, const std::string& payload);

}  // namespace motsim::serve

#endif  // MOTSIM_SERVE_PROTOCOL_H
