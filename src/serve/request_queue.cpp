#include "serve/request_queue.h"

#include <algorithm>
#include <utility>

#include "obs/telemetry.h"

namespace motsim::serve {

RequestQueue::RequestQueue(std::size_t threads, std::size_t capacity,
                           obs::Telemetry* telemetry)
    : capacity_(std::max(capacity, std::max<std::size_t>(threads, 1))),
      telemetry_(telemetry),
      pool_(threads) {}

bool RequestQueue::try_submit(std::function<void()> job) {
  if (draining_.load(std::memory_order_acquire)) return false;
  // Optimistic reservation: grab a slot, give it back on overflow.
  // Two racing submits can both see the last slot, but only one keeps
  // it — the loser's decrement restores the invariant before it
  // reports BUSY.
  const std::size_t depth =
      in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (depth > capacity_) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    if (telemetry_ != nullptr) {
      telemetry_->metrics.counter("serve.queue.rejected").add();
    }
    return false;
  }
  if (telemetry_ != nullptr) {
    telemetry_->metrics.counter("serve.queue.admitted").add();
    telemetry_->metrics.gauge("serve.queue.depth")
        .set(static_cast<double>(depth));
    telemetry_->metrics.gauge("serve.queue.depth_peak")
        .update_max(static_cast<double>(depth));
  }
  pool_.submit([this, job = std::move(job)]() {
    job();
    const std::size_t left =
        in_flight_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    if (telemetry_ != nullptr) {
      telemetry_->metrics.gauge("serve.queue.depth")
          .set(static_cast<double>(left));
    }
  });
  return true;
}

void RequestQueue::drain() {
  draining_.store(true, std::memory_order_release);
  pool_.wait_idle();
}

}  // namespace motsim::serve
