#include "serve/circuit_cache.h"

#include <stdexcept>
#include <utility>

#include "bench_data/registry.h"
#include "circuit/bench_io.h"
#include "obs/telemetry.h"
#include "store/fingerprint.h"

namespace motsim::serve {

CircuitCache::CircuitCache(std::size_t capacity, obs::Telemetry* telemetry)
    : capacity_(capacity == 0 ? 1 : capacity), telemetry_(telemetry) {}

std::uint64_t CircuitCache::key_of(const CircuitRef& ref) {
  Fnv1a64 h;
  const std::uint8_t kind = static_cast<std::uint8_t>(ref.kind);
  h.update(&kind, 1);
  h.update(ref.text);
  return h.digest();
}

Expected<std::shared_ptr<const CachedCircuit>, std::string>
CircuitCache::get_or_load(const CircuitRef& ref) {
  const std::uint64_t key = key_of(ref);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      touch_locked(key);
      if (telemetry_ != nullptr) {
        telemetry_->metrics.counter("serve.cache.hits").add();
      }
      return it->second.circuit;
    }
  }
  if (telemetry_ != nullptr) {
    telemetry_->metrics.counter("serve.cache.misses").add();
  }

  // Cold path, outside the lock: parse + finalize + collapse faults.
  // The parsers throw std::invalid_argument on malformed input; a
  // served request must get an error frame, not a dead server.
  std::shared_ptr<const CachedCircuit> loaded;
  try {
    Netlist nl = [&]() -> Netlist {
      if (ref.kind == CircuitRef::Kind::Roster) {
        if (find_benchmark(ref.text) == nullptr) {
          throw std::invalid_argument("unknown roster circuit '" + ref.text +
                                      "'");
        }
        return make_benchmark(ref.text);
      }
      return parse_bench_string(ref.text, "inline");
    }();
    const std::uint64_t fp = fingerprint_netlist(nl);
    loaded = std::make_shared<CachedCircuit>(std::move(nl), fp);
  } catch (const std::exception& e) {
    return make_unexpected(std::string("circuit load failed: ") + e.what());
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // A racing miss beat us; keep the resident copy so every request
    // for this key shares one circuit.
    touch_locked(key);
    return it->second.circuit;
  }
  insert_locked(key, loaded);
  return loaded;
}

std::size_t CircuitCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void CircuitCache::touch_locked(std::uint64_t key) {
  auto& entry = entries_.at(key);
  recency_.erase(entry.lru);
  recency_.push_front(key);
  entry.lru = recency_.begin();
}

void CircuitCache::insert_locked(
    std::uint64_t key, std::shared_ptr<const CachedCircuit> circuit) {
  while (entries_.size() >= capacity_) {
    const std::uint64_t victim = recency_.back();
    recency_.pop_back();
    entries_.erase(victim);
    if (telemetry_ != nullptr) {
      telemetry_->metrics.counter("serve.cache.evictions").add();
    }
  }
  recency_.push_front(key);
  entries_.emplace(key, Entry{std::move(circuit), recency_.begin()});
  if (telemetry_ != nullptr) {
    telemetry_->metrics.gauge("serve.cache.size")
        .set(static_cast<double>(entries_.size()));
  }
}

}  // namespace motsim::serve
