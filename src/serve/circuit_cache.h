#ifndef MOTSIM_SERVE_CIRCUIT_CACHE_H
#define MOTSIM_SERVE_CIRCUIT_CACHE_H

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "circuit/netlist.h"
#include "faults/collapse.h"
#include "serve/protocol.h"
#include "util/expected.h"

namespace motsim::obs {
struct Telemetry;
}

namespace motsim::serve {

/// A parsed, finalized circuit with its collapsed fault list — the
/// expensive per-netlist artifact every request type needs. Immutable
/// after construction, so one instance is safely shared across
/// concurrent requests (the engines only read the netlist).
struct CachedCircuit {
  Netlist netlist;
  CollapsedFaultList faults;
  /// Content fingerprint of the *parsed* netlist (store/fingerprint) —
  /// used to key per-workload run-store directories.
  std::uint64_t netlist_fingerprint = 0;

  CachedCircuit(Netlist nl, std::uint64_t fp)
      : netlist(std::move(nl)), faults(netlist), netlist_fingerprint(fp) {}
};

/// LRU cache of CachedCircuit, keyed by the FNV-1a fingerprint of the
/// *request bytes* (CircuitRef kind + text). Keying on the raw ref
/// means a hit costs one hash — no parse — which is the whole point:
/// the serve workload (paper Section IV.B) sends many requests against
/// few distinct netlists, and identical netlists must share one
/// parsed+collapsed circuit rather than re-running bench_io and fault
/// collapsing per request.
///
/// Thread-safe. A miss parses *outside* the lock (parsing a large
/// .bench must not stall unrelated hits); two racing misses on the
/// same key both parse, and the insert keeps the first — wasted work,
/// never wrong results, and only on the cold path.
class CircuitCache {
 public:
  /// `capacity` = max resident circuits (>= 1; the roster is ~20).
  /// `telemetry` (nullable) receives serve.cache.{hits,misses,
  /// evictions} counters and the serve.cache.size gauge.
  explicit CircuitCache(std::size_t capacity,
                        obs::Telemetry* telemetry = nullptr);

  /// Cache key of a ref: FNV-1a over kind byte + text bytes.
  [[nodiscard]] static std::uint64_t key_of(const CircuitRef& ref);

  /// Returns the shared circuit for `ref`, parsing (roster lookup or
  /// .bench text) and collapsing on first use. Parse/validation
  /// problems come back as error strings (they become BadRequest
  /// ERROR frames).
  [[nodiscard]] Expected<std::shared_ptr<const CachedCircuit>, std::string>
  get_or_load(const CircuitRef& ref);

  [[nodiscard]] std::size_t size() const;

 private:
  void touch_locked(std::uint64_t key);
  void insert_locked(std::uint64_t key,
                     std::shared_ptr<const CachedCircuit> circuit);

  const std::size_t capacity_;
  obs::Telemetry* const telemetry_;
  mutable std::mutex mutex_;
  /// MRU-first recency list; map values hold the list iterator.
  std::list<std::uint64_t> recency_;
  struct Entry {
    std::shared_ptr<const CachedCircuit> circuit;
    std::list<std::uint64_t>::iterator lru;
  };
  std::unordered_map<std::uint64_t, Entry> entries_;
};

}  // namespace motsim::serve

#endif  // MOTSIM_SERVE_CIRCUIT_CACHE_H
