#ifndef MOTSIM_SERVE_SERVER_H
#define MOTSIM_SERVE_SERVER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/http.h"
#include "serve/request_queue.h"
#include "serve/service.h"
#include "util/expected.h"
#include "util/net.h"

namespace motsim::obs {
struct Telemetry;
}

namespace motsim::serve {

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// Protocol port; 0 = ephemeral (read the bound port with port()).
  std::uint16_t port = 0;
  /// HTTP observability port (/metrics, /healthz); 0 = ephemeral.
  std::uint16_t http_port = 0;
  /// Queue worker threads; 0 = one per hardware thread.
  std::size_t threads = 0;
  /// Max requests in flight (queued + executing) before BUSY.
  std::size_t queue_capacity = 64;
  /// Max parsed circuits resident in the LRU cache.
  std::size_t cache_capacity = 32;
  /// Root directory for use_store campaign requests; empty = disabled.
  std::string store_root;
  /// Requests whose service time exceeds this get a serve.request.slow
  /// log record at Warn next to the normal access-log line.
  double slow_request_seconds = 1.0;
  /// Where SIGUSR1 / crash state dumps land (flight-recorder JSONL +
  /// one metrics-snapshot line). Empty disables dump-on-signal.
  std::string dump_path = "motsim_state.jsonl";
};

/// The motsim_served daemon core: accept loop + per-connection reader
/// threads + the bounded campaign queue + the HTTP observability
/// endpoint, owned as one object so tests can boot a real server on an
/// ephemeral loopback port inside the process.
///
/// Threading model (docs/SERVE.md): one reader thread per connection
/// parses frames and admits work; Service::handle runs on queue
/// workers; responses are written from the worker under the
/// connection's write mutex (frames leave in one write_full each, so
/// out-of-order completions never interleave). shutdown() — triggered
/// by SIGINT/SIGTERM via util/signals or programmatically — stops
/// admission, drains every admitted request, then closes connections.
class Server {
 public:
  Server(ServerConfig config, obs::Telemetry* telemetry);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds both listeners and spawns the accept + HTTP threads.
  [[nodiscard]] Expected<bool, std::string> start();

  /// Blocks until a stop is requested (signal or request_shutdown),
  /// then performs the graceful drain. Returns after shutdown.
  void run_until_stop();

  /// Programmatic stop (tests): unblocks run_until_stop.
  void request_shutdown();

  /// Stops accepting, drains the queue, closes connections, joins
  /// threads. Idempotent; called by the destructor as a backstop.
  void shutdown();

  /// Writes the current state dump — one metrics-snapshot JSONL line
  /// followed by the flight-recorder window — appended to `path`. The
  /// SIGUSR1 path of run_until_stop and the tests share this.
  [[nodiscard]] Expected<bool, std::string> dump_state(
      const std::string& path) const;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::uint16_t http_port() const noexcept {
    return http_port_;
  }
  [[nodiscard]] Service& service() noexcept { return service_; }
  [[nodiscard]] RequestQueue& queue() noexcept { return queue_; }

 private:
  /// Per-connection shared state: jobs capture it, so the socket stays
  /// open until the last queued response for it was written.
  struct Connection {
    OwnedFd fd;
    std::uint64_t id = 0;  ///< the "c<id>" half of request trace ids
    std::atomic<std::uint32_t> next_request{0};  ///< the "r<seq>" half
    std::mutex write_mutex;
    std::atomic<bool> broken{false};  ///< write failed; stop responding
  };

  void accept_loop();
  void connection_loop(std::shared_ptr<Connection> conn);
  void http_loop();
  /// Returns the encoded frame size actually written (0 when skipped
  /// because the connection broke) — the access log's bytes_out.
  std::size_t send_response(Connection& conn, const Response& response);

  ServerConfig config_;
  obs::Telemetry* const telemetry_;
  Service service_;
  RequestQueue queue_;
  HttpEndpoint http_;
  std::atomic<std::uint64_t> next_conn_id_{1};

  OwnedFd listen_fd_;
  OwnedFd http_fd_;
  std::uint16_t port_ = 0;
  std::uint16_t http_port_ = 0;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> shut_down_{false};
  std::thread accept_thread_;
  std::thread http_thread_;
  std::mutex conns_mutex_;
  std::vector<std::thread> conn_threads_;          ///< guarded by conns_mutex_
  std::vector<std::weak_ptr<Connection>> conns_;   ///< guarded by conns_mutex_
};

}  // namespace motsim::serve

#endif  // MOTSIM_SERVE_SERVER_H
