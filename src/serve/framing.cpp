#include "serve/framing.h"

#include <cstring>

#include "util/net.h"

namespace motsim::serve {

ReadResult read_frame(int fd) {
  ReadResult out;
  std::uint32_t length = 0;
  const auto header = read_full(fd, &length, sizeof(length));
  if (!header.has_value()) {
    out.error = "frame header: " + header.error();
    return out;
  }
  if (*header == 0) {
    out.status = ReadStatus::Eof;
    return out;
  }
  if (length == 0) {
    out.error = "frame length 0 (missing type byte)";
    return out;
  }
  if (length > kMaxFrameBytes) {
    out.error = "frame length " + std::to_string(length) +
                " exceeds the " + std::to_string(kMaxFrameBytes) +
                "-byte limit";
    return out;
  }
  std::uint8_t type = 0;
  if (const auto t = read_full(fd, &type, 1); !t.has_value() || *t == 0) {
    out.error = "frame type: " +
                (t.has_value() ? std::string("unexpected EOF") : t.error());
    return out;
  }
  out.frame.type = static_cast<FrameType>(type);
  out.frame.payload.resize(length - 1);
  if (length > 1) {
    const auto p =
        read_full(fd, out.frame.payload.data(), out.frame.payload.size());
    if (!p.has_value() || *p == 0) {
      out.error = "frame payload: " +
                  (p.has_value() ? std::string("unexpected EOF") : p.error());
      return out;
    }
  }
  out.status = ReadStatus::Ok;
  return out;
}

Expected<bool, std::string> write_frame(int fd, FrameType type,
                                        const std::string& payload) {
  if (payload.size() + 1 > kMaxFrameBytes) {
    return make_unexpected("frame payload of " +
                           std::to_string(payload.size()) +
                           " bytes exceeds the frame limit");
  }
  // One buffered write per frame: header + type + payload leave in a
  // single syscall, so concurrent writers on one connection (worker
  // threads completing out of order) never interleave partial frames
  // as long as they serialize on the connection's write mutex.
  std::string wire;
  wire.reserve(5 + payload.size());
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size()) + 1;
  wire.append(reinterpret_cast<const char*>(&length), 4);
  wire.push_back(static_cast<char>(type));
  wire.append(payload);
  return write_full(fd, wire.data(), wire.size());
}

}  // namespace motsim::serve
