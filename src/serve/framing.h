#ifndef MOTSIM_SERVE_FRAMING_H
#define MOTSIM_SERVE_FRAMING_H

#include <cstdint>
#include <string>

#include "serve/protocol.h"
#include "util/expected.h"

namespace motsim::serve {

/// One decoded frame: type byte + raw payload (protocol.h decodes the
/// payload into typed messages).
struct Frame {
  FrameType type = FrameType::Error;
  std::string payload;
};

/// Outcome of read_frame. Eof is a *clean* close — the peer hung up at
/// a frame boundary; anything torn or malformed is Error with a
/// message. The server treats Eof as normal connection end and Error
/// as a protocol violation (final ERROR frame, then close).
enum class ReadStatus : std::uint8_t { Ok, Eof, Error };

struct ReadResult {
  ReadStatus status = ReadStatus::Error;
  Frame frame;        ///< valid iff status == Ok
  std::string error;  ///< set iff status == Error
};

/// Reads one `[u32 length][u8 type][payload]` frame. Rejects length 0
/// (no type byte) and length > kMaxFrameBytes *before* allocating, so
/// a garbage length field cannot trigger a giant allocation. Unknown
/// type bytes are returned as-is — the request dispatcher answers
/// those with a typed ERROR frame instead of dropping the connection.
[[nodiscard]] ReadResult read_frame(int fd);

/// Writes one frame (length prefix computed here). Fails for payloads
/// that would exceed kMaxFrameBytes.
[[nodiscard]] Expected<bool, std::string> write_frame(
    int fd, FrameType type, const std::string& payload);

}  // namespace motsim::serve

#endif  // MOTSIM_SERVE_FRAMING_H
