#ifndef MOTSIM_BDD_BDD_H
#define MOTSIM_BDD_BDD_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace motsim::bdd {

/// Index of a node in the manager's node table. The two terminals
/// occupy fixed slots: 0 is the constant-false node, 1 constant-true.
using NodeId = std::uint32_t;

inline constexpr NodeId kFalseId = 0;
inline constexpr NodeId kTrueId = 1;

/// Variable index (stable identity). The *initial* order equals
/// creation order — variable 0 closest to the root — and the
/// simulators rely on that default (they interleave the fault-free and
/// faulty initial-state variables x_1,y_1,x_2,y_2,... so the MOT
/// rename x_i -> y_i is order-preserving). The manager additionally
/// supports dynamic reordering (set_variable_order / reorder_sift),
/// which permutes the var <-> level maps while preserving every
/// handle's function; do not reorder in the middle of a fault
/// simulation that uses rename's order-preserving fast path.
using VarIndex = std::uint32_t;

/// Sentinel variable index of the terminal nodes; orders below every
/// real variable.
inline constexpr VarIndex kTerminalVar = 0xFFFFFFFFu;

class BddManager;

/// Thrown by node-creating operations when the manager's hard node
/// limit is exceeded. The hybrid fault simulator catches this to
/// trigger its three-valued fallback window (the paper's 30,000-node
/// space limit).
class BddOverflow : public std::runtime_error {
 public:
  explicit BddOverflow(std::size_t limit)
      : std::runtime_error("BDD node limit exceeded (" +
                           std::to_string(limit) + " nodes)") {}
};

/// Tuning knobs for a BddManager.
struct BddConfig {
  /// Initial node table capacity (grows on demand).
  std::size_t initial_capacity = 1u << 12;
  /// log2 of the number of computed-cache entries.
  unsigned cache_size_log2 = 16;
  /// Hard cap on live nodes; node creation beyond it throws
  /// BddOverflow. SIZE_MAX disables the cap.
  std::size_t hard_node_limit = static_cast<std::size_t>(-1);
  /// Automatic garbage collection runs (at public-operation entry)
  /// once the live-node count exceeds this floor and has doubled since
  /// the previous collection.
  std::size_t auto_gc_floor = 1u << 16;
};

/// Operation counters, exposed for the micro-benchmarks, the tests and
/// the telemetry layer (obs/telemetry.h maps them to bdd.* metrics).
struct BddStats {
  std::uint64_t nodes_created = 0;
  std::uint64_t unique_hits = 0;
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t gc_runs = 0;
  /// Nodes freed across all gc() sweeps.
  std::uint64_t gc_reclaimed_nodes = 0;
  std::size_t peak_live_nodes = 0;
  /// Wall seconds spent inside reorder_sift / set_variable_order.
  double reorder_seconds = 0;
};

/// RAII handle to a BDD function.
///
/// A Bdd registers itself with its manager; garbage collection keeps
/// every node reachable from a registered handle. Handles are cheap to
/// copy/move (a pointer pair plus two list links). The manager must
/// outlive all of its handles.
///
/// Boolean structure is exposed through operators:
///   `f & g`, `f | g`, `f ^ g`, `!f`, `f.xnor(g)`, `f.implies(g)`.
/// Equality (`==`) is *functional* equality — canonical OBDDs make it
/// a constant-time id comparison.
class Bdd {
 public:
  /// Null handle, not attached to any manager.
  Bdd() noexcept = default;
  Bdd(const Bdd& other) noexcept;
  Bdd(Bdd&& other) noexcept;
  Bdd& operator=(const Bdd& other) noexcept;
  Bdd& operator=(Bdd&& other) noexcept;
  ~Bdd();

  /// True for a default-constructed (detached) handle.
  [[nodiscard]] bool is_null() const noexcept { return mgr_ == nullptr; }
  /// True if this is the constant-false function.
  [[nodiscard]] bool is_zero() const noexcept {
    return mgr_ != nullptr && id_ == kFalseId;
  }
  /// True if this is the constant-true function.
  [[nodiscard]] bool is_one() const noexcept {
    return mgr_ != nullptr && id_ == kTrueId;
  }
  /// True if this is either constant.
  [[nodiscard]] bool is_const() const noexcept {
    return mgr_ != nullptr && id_ <= kTrueId;
  }

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] BddManager* manager() const noexcept { return mgr_; }

  /// Index of the topmost (root) variable; kTerminalVar for constants.
  [[nodiscard]] VarIndex top_var() const;

  /// Cofactors with respect to the root variable. Requires !is_const().
  [[nodiscard]] Bdd high() const;  ///< root variable = 1 branch
  [[nodiscard]] Bdd low() const;   ///< root variable = 0 branch

  Bdd operator&(const Bdd& rhs) const;
  Bdd operator|(const Bdd& rhs) const;
  Bdd operator^(const Bdd& rhs) const;
  Bdd operator!() const;
  [[nodiscard]] Bdd xnor(const Bdd& rhs) const;
  [[nodiscard]] Bdd implies(const Bdd& rhs) const;

  Bdd& operator&=(const Bdd& rhs) { return *this = *this & rhs; }
  Bdd& operator|=(const Bdd& rhs) { return *this = *this | rhs; }
  Bdd& operator^=(const Bdd& rhs) { return *this = *this ^ rhs; }

  /// Functional equality (same manager and same canonical node).
  friend bool operator==(const Bdd& a, const Bdd& b) noexcept {
    return a.mgr_ == b.mgr_ && a.id_ == b.id_;
  }
  friend bool operator!=(const Bdd& a, const Bdd& b) noexcept {
    return !(a == b);
  }

  /// Evaluates under a complete assignment (index = variable).
  [[nodiscard]] bool eval(const std::vector<bool>& assignment) const;

  /// Number of distinct internal nodes of this function (terminals not
  /// counted).
  [[nodiscard]] std::size_t node_count() const;

 private:
  friend class BddManager;
  Bdd(BddManager* mgr, NodeId id) noexcept;

  void attach(BddManager* mgr, NodeId id) noexcept;
  void detach() noexcept;

  BddManager* mgr_ = nullptr;
  NodeId id_ = kFalseId;
  // Intrusive doubly-linked registry used by mark-and-sweep GC.
  Bdd* reg_prev_ = nullptr;
  Bdd* reg_next_ = nullptr;
};

/// Manager owning the node table, the unique table and the computed
/// cache.
///
/// THREAD-OWNERSHIP CONTRACT (relied on by core/parallel_sym_sim):
/// a BddManager and every Bdd handle attached to it are single-
/// threaded *by design* — no operation takes a lock, the handle
/// registry is an unsynchronized intrusive list, and GC walks it
/// concurrently with nothing. The rules:
///
///   1. One manager is owned by exactly one thread at a time; all
///      operations on it and on its handles (including Bdd copy/move/
///      destruction, which touch the registry) must run on that
///      thread.
///   2. Handles never cross manager boundaries; to move a function to
///      another thread's manager, rebuild it there via transfer().
///   3. Distinct managers on distinct threads never synchronize and
///      are therefore freely concurrent — the fault-sharded parallel
///      driver runs one private manager per worker chunk and merges
///      only plain (non-BDD) results.
///
/// Ownership may migrate between threads only across a happens-before
/// edge with no operations in flight (e.g. a thread-pool task finishes
/// with the manager quiescent before another task picks it up).
class BddManager {
 public:
  explicit BddManager(const BddConfig& config = {});
  ~BddManager();

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  // ---- constants and variables -------------------------------------

  [[nodiscard]] Bdd zero() { return Bdd(this, kFalseId); }
  [[nodiscard]] Bdd one() { return Bdd(this, kTrueId); }
  [[nodiscard]] Bdd constant(bool b) { return b ? one() : zero(); }

  /// Projection function of variable `index`; extends the variable
  /// universe as needed.
  [[nodiscard]] Bdd var(VarIndex index);
  /// Negated projection function of variable `index`.
  [[nodiscard]] Bdd nvar(VarIndex index);

  /// Number of variables created so far.
  [[nodiscard]] VarIndex var_count() const noexcept { return num_vars_; }

  /// Ensures variables [0, count) exist.
  void ensure_vars(VarIndex count);

  // ---- variable order -------------------------------------------------

  /// Level (distance from the root, 0 = first) of a variable.
  [[nodiscard]] VarIndex level_of_var(VarIndex v) const {
    return var2level_[v];
  }
  /// Variable sitting at `level`.
  [[nodiscard]] VarIndex var_at_level(VarIndex level) const {
    return level2var_[level];
  }

  /// Swaps the variables at `level` and `level+1` in place (Rudell's
  /// adjacent exchange). Every handle keeps its NodeId and function;
  /// the computed cache stays valid because node identities denote
  /// unchanged functions.
  void swap_adjacent_levels(VarIndex level);

  /// Imposes a full order: `order[i]` is the variable at level i (a
  /// permutation of [0, var_count())). Implemented as a sequence of
  /// adjacent swaps.
  void set_variable_order(const std::vector<VarIndex>& order);

  /// Rudell sifting: moves each variable (most populous first) to its
  /// locally best level. `max_growth` bounds intermediate blow-up as a
  /// factor of the starting size (e.g. 1.2 allows 20% growth during a
  /// single variable's sweep). Returns the live node count afterwards.
  std::size_t reorder_sift(double max_growth = 1.2);

  // ---- boolean operations ------------------------------------------

  [[nodiscard]] Bdd apply_not(const Bdd& f);
  [[nodiscard]] Bdd apply_and(const Bdd& f, const Bdd& g);
  [[nodiscard]] Bdd apply_or(const Bdd& f, const Bdd& g);
  [[nodiscard]] Bdd apply_xor(const Bdd& f, const Bdd& g);
  [[nodiscard]] Bdd apply_xnor(const Bdd& f, const Bdd& g);
  /// If-then-else: f ? g : h.
  [[nodiscard]] Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h);

  /// Cofactor: f with variable `v` fixed to `value`.
  [[nodiscard]] Bdd restrict_var(const Bdd& f, VarIndex v, bool value);

  /// Generalized cofactor (Coudert-Madre constrain): a function that
  /// agrees with f on every assignment satisfying c and is typically
  /// smaller than f. Requires c != 0 (throws std::invalid_argument).
  /// Key identity: constrain(f, c) & c == f & c.
  [[nodiscard]] Bdd constrain(const Bdd& f, const Bdd& c);

  /// Functional composition: f with variable `v` replaced by g.
  [[nodiscard]] Bdd compose(const Bdd& f, VarIndex v, const Bdd& g);

  /// Simultaneous variable renaming. `mapping[old] = new`; identity
  /// entries may be omitted by passing mapping.size() < var_count().
  /// The mapping must be order-preserving on the support of `f`
  /// (checked; throws std::invalid_argument otherwise) — the fast path
  /// the simulators rely on for the MOT x->y substitution.
  [[nodiscard]] Bdd rename(const Bdd& f, const std::vector<VarIndex>& mapping);

  /// Existential quantification over the given variables.
  [[nodiscard]] Bdd exists(const Bdd& f, const std::vector<VarIndex>& vars);
  /// Relational product: exists vars . (f & g), computed in one
  /// recursion without materializing the conjunction — the workhorse
  /// of symbolic image computation (core/symbolic_fsm.h).
  [[nodiscard]] Bdd and_exists(const Bdd& f, const Bdd& g,
                               const std::vector<VarIndex>& vars);
  /// Universal quantification over the given variables.
  [[nodiscard]] Bdd forall(const Bdd& f, const std::vector<VarIndex>& vars);

  // ---- analysis -----------------------------------------------------

  /// Variables the function actually depends on, ascending.
  [[nodiscard]] std::vector<VarIndex> support(const Bdd& f);

  /// Number of satisfying assignments over `nvars` variables
  /// (defaults to the whole universe).
  [[nodiscard]] double sat_count(const Bdd& f, VarIndex nvars);
  [[nodiscard]] double sat_count(const Bdd& f) {
    return sat_count(f, num_vars_);
  }

  /// One satisfying assignment (per-variable 0/1/-1 = don't-care), or
  /// nullopt for the zero function.
  [[nodiscard]] std::optional<std::vector<std::int8_t>> pick_one(
      const Bdd& f);

  /// DAG size of a single function (internal nodes only).
  [[nodiscard]] std::size_t node_count(const Bdd& f) const;
  /// Shared DAG size of a set of functions — the paper's Table IV
  /// measures this for the symbolic output sequence.
  [[nodiscard]] std::size_t node_count(std::span<const Bdd> fs) const;

  /// Live (reachable-or-not-yet-collected) internal nodes in the
  /// manager; the quantity the hybrid simulator compares against the
  /// space limit.
  [[nodiscard]] std::size_t live_node_count() const noexcept {
    return live_count_;
  }

  /// Current unique-table bucket count; live_node_count() divided by
  /// this is the table's load factor (telemetry reports both).
  [[nodiscard]] std::size_t unique_bucket_count() const noexcept {
    return buckets_.size();
  }

  /// Graphviz dump of one function, for debugging and docs.
  [[nodiscard]] std::string to_dot(const Bdd& f, const std::string& name);

  /// Rebuilds `f` (a function of THIS manager) inside `target` with an
  /// arbitrary variable mapping — including order-changing ones, which
  /// rename() rejects. Expansion happens through target.ite, so the
  /// result is canonical under the target's order. The managers may be
  /// the same object (then this is a general, slower rename).
  [[nodiscard]] static Bdd transfer(const Bdd& f, BddManager& target,
                                    const std::vector<VarIndex>& mapping);

  // ---- memory management ---------------------------------------------

  /// Mark-and-sweep collection from all registered handles. Safe to
  /// call at any quiescent point (never called implicitly during an
  /// operation's recursion).
  void gc();

  /// Sets/clears the hard node cap (see BddConfig::hard_node_limit).
  void set_hard_node_limit(std::size_t limit) noexcept {
    hard_node_limit_ = limit;
  }
  [[nodiscard]] std::size_t hard_node_limit() const noexcept {
    return hard_node_limit_;
  }

  [[nodiscard]] const BddStats& stats() const noexcept { return stats_; }

  /// Number of currently registered handles (tests use this to verify
  /// RAII bookkeeping).
  [[nodiscard]] std::size_t handle_count() const noexcept {
    return handle_counter_;
  }

  /// Variable index of a node (kTerminalVar for terminals).
  [[nodiscard]] VarIndex var_of(NodeId n) const noexcept {
    return nodes_[n].var;
  }
  [[nodiscard]] NodeId low_of(NodeId n) const noexcept {
    return nodes_[n].lo;
  }
  [[nodiscard]] NodeId high_of(NodeId n) const noexcept {
    return nodes_[n].hi;
  }

 private:
  friend class Bdd;

  struct Node {
    VarIndex var;
    NodeId lo;
    NodeId hi;
    NodeId next;  ///< unique-table bucket chain / free-list link
  };

  enum class Op : std::uint8_t {
    Invalid = 0,
    Not,
    And,
    Or,
    Xor,
    Ite,
    Restrict0,
    Restrict1,
    Constrain,
    Compose,
    Exists,
    Forall,
  };

  struct CacheEntry {
    NodeId f = 0, g = 0, h = 0, result = 0;
    Op op = Op::Invalid;
  };

  /// Level of a node's root variable; terminals sink below everything.
  [[nodiscard]] VarIndex level_of(NodeId n) const {
    const VarIndex v = nodes_[n].var;
    return v == kTerminalVar ? kTerminalVar : var2level_[v];
  }

  // Node construction.
  NodeId make_node(VarIndex var, NodeId lo, NodeId hi);
  NodeId allocate_slot(VarIndex var, NodeId lo, NodeId hi);
  void rehash(std::size_t new_bucket_count);
  [[nodiscard]] std::size_t bucket_of(VarIndex var, NodeId lo,
                                      NodeId hi) const noexcept;

  // Computed cache.
  [[nodiscard]] bool cache_lookup(Op op, NodeId f, NodeId g, NodeId h,
                                  NodeId& out);
  void cache_insert(Op op, NodeId f, NodeId g, NodeId h, NodeId result);

  // Recursive operation kernels (no auto-GC inside).
  NodeId not_rec(NodeId f);
  NodeId and_rec(NodeId f, NodeId g);
  NodeId or_rec(NodeId f, NodeId g);
  NodeId xor_rec(NodeId f, NodeId g);
  NodeId ite_rec(NodeId f, NodeId g, NodeId h);
  NodeId restrict_rec(NodeId f, VarIndex v, bool value);
  NodeId constrain_rec(NodeId f, NodeId c);
  NodeId compose_rec(NodeId f, VarIndex v, NodeId g);
  NodeId quant_rec(NodeId f, const std::vector<VarIndex>& vars,
                   std::size_t idx, bool existential,
                   std::unordered_map<NodeId, NodeId>& memo);
  NodeId and_exists_rec(NodeId f, NodeId g,
                        const std::vector<VarIndex>& vars, std::size_t idx,
                        std::unordered_map<std::uint64_t, NodeId>& memo);

  // Registry management (called by Bdd).
  void register_handle(Bdd* h) noexcept;
  void unregister_handle(Bdd* h) noexcept;

  void maybe_auto_gc();
  void mark_reachable(NodeId n, std::vector<std::uint8_t>& mark) const;

  // Node storage.
  std::vector<Node> nodes_;
  std::vector<std::uint8_t> used_;  ///< slot-occupancy bitmap
  std::vector<NodeId> buckets_;     ///< unique table (power-of-two size)
  NodeId free_head_ = 0;            ///< head of free-slot list (0 = none)
  std::size_t live_count_ = 0;
  VarIndex num_vars_ = 0;
  std::vector<VarIndex> var2level_;
  std::vector<VarIndex> level2var_;

  // Computed cache.
  std::vector<CacheEntry> cache_;
  std::size_t cache_mask_ = 0;

  // Handle registry.
  Bdd* handles_head_ = nullptr;
  std::size_t handle_counter_ = 0;

  // Policy.
  std::size_t hard_node_limit_;
  std::size_t auto_gc_floor_;
  std::size_t next_gc_at_;

  BddStats stats_;
};

}  // namespace motsim::bdd

#endif  // MOTSIM_BDD_BDD_H
