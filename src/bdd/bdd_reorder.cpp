// Dynamic variable reordering: Rudell's in-place adjacent exchange,
// full-order imposition, and sifting.
//
// The key property making in-place reordering safe is that a node's
// IDENTITY (NodeId) always denotes the same boolean function: the
// exchange rewrites a node's (var, lo, hi) triple but preserves its
// function, so every registered handle and every computed-cache entry
// stays valid. Only the *shape* of the DAG changes.

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "bdd/bdd.h"
#include "util/stopwatch.h"

namespace motsim::bdd {

namespace {
/// Hard sanity bound for set_variable_order's permutation check.
void require_permutation(const std::vector<VarIndex>& order, VarIndex n) {
  if (order.size() != n) {
    throw std::invalid_argument("set_variable_order: wrong length");
  }
  std::vector<std::uint8_t> seen(n, 0);
  for (VarIndex v : order) {
    if (v >= n || seen[v]) {
      throw std::invalid_argument("set_variable_order: not a permutation");
    }
    seen[v] = 1;
  }
}
}  // namespace

void BddManager::swap_adjacent_levels(VarIndex level) {
  if (level + 1 >= num_vars_) {
    throw std::out_of_range("swap_adjacent_levels: level out of range");
  }
  const VarIndex u = level2var_[level];      // moves down
  const VarIndex v = level2var_[level + 1];  // moves up

  // Swap the order maps first so make_node's invariant checks see the
  // new order while the rewrite runs.
  std::swap(level2var_[level], level2var_[level + 1]);
  std::swap(var2level_[u], var2level_[v]);

  // A mid-exchange overflow would leave the table half-rewritten, so
  // the hard limit is suspended for the duration of the swap (the
  // transient growth is at most the u-level population).
  const std::size_t saved_limit = hard_node_limit_;
  hard_node_limit_ = static_cast<std::size_t>(-1);

  // Only u-nodes with a v-child change shape. Snapshot the node-table
  // size: nodes created by make_node below never need rewriting (their
  // children are strictly below the v level).
  const NodeId snapshot = static_cast<NodeId>(nodes_.size());

  auto unlink_from_bucket = [&](NodeId id) {
    const Node& node = nodes_[id];
    const std::size_t bucket = bucket_of(node.var, node.lo, node.hi);
    NodeId cur = buckets_[bucket];
    if (cur == id) {
      buckets_[bucket] = node.next;
      return;
    }
    while (nodes_[cur].next != id) cur = nodes_[cur].next;
    nodes_[cur].next = node.next;
  };

  for (NodeId id = 2; id < snapshot; ++id) {
    if (!used_[id] || nodes_[id].var != u) continue;
    const NodeId f0 = nodes_[id].lo;
    const NodeId f1 = nodes_[id].hi;
    const bool lo_branches = nodes_[f0].var == v;
    const bool hi_branches = nodes_[f1].var == v;
    if (!lo_branches && !hi_branches) continue;  // valid as-is

    const NodeId f00 = lo_branches ? nodes_[f0].lo : f0;
    const NodeId f01 = lo_branches ? nodes_[f0].hi : f0;
    const NodeId f10 = hi_branches ? nodes_[f1].lo : f1;
    const NodeId f11 = hi_branches ? nodes_[f1].hi : f1;

    // ite(u, f1, f0) == ite(v, ite(u, f11, f01), ite(u, f10, f00)).
    const NodeId n0 = make_node(u, f00, f10);
    const NodeId n1 = make_node(u, f01, f11);
    assert(n0 != n1 && "swap produced a reducible node");

    unlink_from_bucket(id);
    Node& node = nodes_[id];
    node.var = v;
    node.lo = n0;
    node.hi = n1;
    const std::size_t bucket = bucket_of(v, n0, n1);
    node.next = buckets_[bucket];
    buckets_[bucket] = id;
  }

  hard_node_limit_ = saved_limit;
}

void BddManager::set_variable_order(const std::vector<VarIndex>& order) {
  require_permutation(order, num_vars_);
  const Stopwatch reorder_timer;
  // Selection-sort with adjacent exchanges: bubble each target
  // variable up to its final level, top to bottom.
  for (VarIndex target = 0; target < num_vars_; ++target) {
    VarIndex at = var2level_[order[target]];
    assert(at >= target && "already-placed variable moved");
    while (at > target) {
      swap_adjacent_levels(at - 1);
      --at;
    }
  }
  gc();  // reclaim the exchange garbage in one sweep
  stats_.reorder_seconds += reorder_timer.elapsed_seconds();
}

std::size_t BddManager::reorder_sift(double max_growth) {
  if (max_growth < 1.0) {
    throw std::invalid_argument("reorder_sift: max_growth must be >= 1");
  }
  const Stopwatch reorder_timer;
  gc();
  if (num_vars_ < 2) {
    stats_.reorder_seconds += reorder_timer.elapsed_seconds();
    return live_count_;
  }
  const std::size_t ceiling = static_cast<std::size_t>(
      static_cast<double>(live_count_) * max_growth) + 16;

  // Most populous variables first (they have the most leverage).
  std::vector<std::size_t> population(num_vars_, 0);
  for (NodeId id = 2; id < nodes_.size(); ++id) {
    if (used_[id]) ++population[nodes_[id].var];
  }
  std::vector<VarIndex> order_of_attack(num_vars_);
  for (VarIndex i = 0; i < num_vars_; ++i) order_of_attack[i] = i;
  std::sort(order_of_attack.begin(), order_of_attack.end(),
            [&](VarIndex a, VarIndex b) {
              return population[a] > population[b];
            });

  for (VarIndex v : order_of_attack) {
    const VarIndex start = var2level_[v];
    VarIndex best_level = start;
    std::size_t best_size = live_count_;

    // Phase 1: sift down to the bottom.
    while (var2level_[v] + 1 < num_vars_) {
      swap_adjacent_levels(var2level_[v]);
      gc();
      if (live_count_ < best_size) {
        best_size = live_count_;
        best_level = var2level_[v];
      }
      if (live_count_ > ceiling) break;
    }
    // Phase 2: sift up to the top.
    while (var2level_[v] > 0) {
      swap_adjacent_levels(var2level_[v] - 1);
      gc();
      if (live_count_ <= best_size) {  // prefer the highest tied level
        best_size = live_count_;
        best_level = var2level_[v];
      }
      if (live_count_ > ceiling) break;
    }
    // Phase 3: settle at the best level seen.
    while (var2level_[v] < best_level) {
      swap_adjacent_levels(var2level_[v]);
    }
    while (var2level_[v] > best_level) {
      swap_adjacent_levels(var2level_[v] - 1);
    }
    gc();
  }
  stats_.reorder_seconds += reorder_timer.elapsed_seconds();
  return live_count_;
}

}  // namespace motsim::bdd
