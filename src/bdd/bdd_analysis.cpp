// Structural analysis of BDDs: support, satisfying-assignment count,
// witness extraction, DAG size and Graphviz export.

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "bdd/bdd.h"

namespace motsim::bdd {

bool Bdd::eval(const std::vector<bool>& assignment) const {
  assert(mgr_ != nullptr);
  NodeId n = id_;
  while (n > kTrueId) {
    const VarIndex v = mgr_->var_of(n);
    const bool bit = v < assignment.size() ? assignment[v] : false;
    n = bit ? mgr_->high_of(n) : mgr_->low_of(n);
  }
  return n == kTrueId;
}

std::vector<VarIndex> BddManager::support(const Bdd& f) {
  assert(f.manager() == this);
  std::unordered_set<NodeId> seen;
  std::vector<std::uint8_t> in_support(num_vars_, 0);
  std::vector<NodeId> stack{f.id()};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (n <= kTrueId || !seen.insert(n).second) continue;
    in_support[nodes_[n].var] = 1;
    stack.push_back(nodes_[n].lo);
    stack.push_back(nodes_[n].hi);
  }
  std::vector<VarIndex> out;
  for (VarIndex v = 0; v < num_vars_; ++v) {
    if (in_support[v]) out.push_back(v);
  }
  return out;
}

double BddManager::sat_count(const Bdd& f, VarIndex nvars) {
  assert(f.manager() == this);
  // count(n) = number of satisfying assignments over the variables
  // strictly below var_of(n)'s level... computed as fraction then
  // scaled: density(n) = satisfying fraction of the full cube below n.
  std::unordered_map<NodeId, double> density;
  auto rec = [&](auto&& self, NodeId n) -> double {
    if (n == kFalseId) return 0.0;
    if (n == kTrueId) return 1.0;
    if (auto it = density.find(n); it != density.end()) return it->second;
    const Node& node = nodes_[n];
    const double d = 0.5 * (self(self, node.lo) + self(self, node.hi));
    density.emplace(n, d);
    return d;
  };
  return rec(rec, f.id()) * std::pow(2.0, static_cast<double>(nvars));
}

std::optional<std::vector<std::int8_t>> BddManager::pick_one(const Bdd& f) {
  assert(f.manager() == this);
  if (f.id() == kFalseId) return std::nullopt;
  std::vector<std::int8_t> assignment(num_vars_, -1);
  NodeId n = f.id();
  while (n > kTrueId) {
    const Node& node = nodes_[n];
    if (node.hi != kFalseId) {
      assignment[node.var] = 1;
      n = node.hi;
    } else {
      assignment[node.var] = 0;
      n = node.lo;
    }
  }
  return assignment;
}

std::size_t BddManager::node_count(const Bdd& f) const {
  const Bdd fs[] = {f};
  return node_count(std::span<const Bdd>(fs));
}

std::size_t BddManager::node_count(std::span<const Bdd> fs) const {
  std::unordered_set<NodeId> seen;
  std::vector<NodeId> stack;
  for (const Bdd& f : fs) {
    if (!f.is_null()) stack.push_back(f.id());
  }
  std::size_t count = 0;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (n <= kTrueId || !seen.insert(n).second) continue;
    ++count;
    stack.push_back(nodes_[n].lo);
    stack.push_back(nodes_[n].hi);
  }
  return count;
}

std::string BddManager::to_dot(const Bdd& f, const std::string& name) {
  assert(f.manager() == this);
  std::ostringstream os;
  os << "digraph \"" << name << "\" {\n";
  os << "  rankdir=TB;\n";
  os << "  node0 [label=\"0\", shape=box];\n";
  os << "  node1 [label=\"1\", shape=box];\n";
  std::unordered_set<NodeId> seen{kFalseId, kTrueId};
  std::vector<NodeId> stack{f.id()};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    const Node& node = nodes_[n];
    os << "  node" << n << " [label=\"x" << node.var
       << "\", shape=circle];\n";
    os << "  node" << n << " -> node" << node.lo << " [style=dashed];\n";
    os << "  node" << n << " -> node" << node.hi << ";\n";
    stack.push_back(node.lo);
    stack.push_back(node.hi);
  }
  os << "}\n";
  return os.str();
}

}  // namespace motsim::bdd
