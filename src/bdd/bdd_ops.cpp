// Boolean operation kernels of the OBDD package: NOT / AND / OR / XOR /
// ITE / cofactor. Each kernel is a classic depth-first recursion with
// terminal-case short-circuits and memoization through the manager's
// computed cache. Automatic garbage collection runs only at the public
// entry points — never inside a recursion, where intermediate NodeIds
// live solely on the call stack.

#include <algorithm>
#include <cassert>

#include "bdd/bdd.h"

namespace motsim::bdd {

namespace {
/// Orders a commutative operand pair canonically so (f,g) and (g,f)
/// share one cache entry.
inline void canonicalize(NodeId& f, NodeId& g) {
  if (f > g) std::swap(f, g);
}
}  // namespace

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

Bdd BddManager::apply_not(const Bdd& f) {
  assert(f.manager() == this);
  maybe_auto_gc();
  return Bdd(this, not_rec(f.id()));
}

Bdd BddManager::apply_and(const Bdd& f, const Bdd& g) {
  assert(f.manager() == this && g.manager() == this);
  maybe_auto_gc();
  return Bdd(this, and_rec(f.id(), g.id()));
}

Bdd BddManager::apply_or(const Bdd& f, const Bdd& g) {
  assert(f.manager() == this && g.manager() == this);
  maybe_auto_gc();
  return Bdd(this, or_rec(f.id(), g.id()));
}

Bdd BddManager::apply_xor(const Bdd& f, const Bdd& g) {
  assert(f.manager() == this && g.manager() == this);
  maybe_auto_gc();
  return Bdd(this, xor_rec(f.id(), g.id()));
}

Bdd BddManager::apply_xnor(const Bdd& f, const Bdd& g) {
  assert(f.manager() == this && g.manager() == this);
  maybe_auto_gc();
  return Bdd(this, not_rec(xor_rec(f.id(), g.id())));
}

Bdd BddManager::ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  assert(f.manager() == this && g.manager() == this && h.manager() == this);
  maybe_auto_gc();
  return Bdd(this, ite_rec(f.id(), g.id(), h.id()));
}

Bdd BddManager::restrict_var(const Bdd& f, VarIndex v, bool value) {
  assert(f.manager() == this);
  ensure_vars(v + 1);  // the level lookup below must stay in bounds
  maybe_auto_gc();
  return Bdd(this, restrict_rec(f.id(), v, value));
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

NodeId BddManager::not_rec(NodeId f) {
  if (f == kFalseId) return kTrueId;
  if (f == kTrueId) return kFalseId;

  NodeId cached;
  if (cache_lookup(Op::Not, f, 0, 0, cached)) return cached;

  const Node n = nodes_[f];
  const NodeId lo = not_rec(n.lo);
  const NodeId hi = not_rec(n.hi);
  const NodeId result = make_node(n.var, lo, hi);
  cache_insert(Op::Not, f, 0, 0, result);
  return result;
}

NodeId BddManager::and_rec(NodeId f, NodeId g) {
  if (f == kFalseId || g == kFalseId) return kFalseId;
  if (f == kTrueId) return g;
  if (g == kTrueId) return f;
  if (f == g) return f;
  canonicalize(f, g);

  NodeId cached;
  if (cache_lookup(Op::And, f, g, 0, cached)) return cached;

  const Node& nf = nodes_[f];
  const Node& ng = nodes_[g];
  const VarIndex top_level = std::min(var2level_[nf.var], var2level_[ng.var]);
  const VarIndex top = level2var_[top_level];
  const NodeId f0 = nf.var == top ? nf.lo : f;
  const NodeId f1 = nf.var == top ? nf.hi : f;
  const NodeId g0 = ng.var == top ? ng.lo : g;
  const NodeId g1 = ng.var == top ? ng.hi : g;

  const NodeId lo = and_rec(f0, g0);
  const NodeId hi = and_rec(f1, g1);
  const NodeId result = make_node(top, lo, hi);
  cache_insert(Op::And, f, g, 0, result);
  return result;
}

NodeId BddManager::or_rec(NodeId f, NodeId g) {
  if (f == kTrueId || g == kTrueId) return kTrueId;
  if (f == kFalseId) return g;
  if (g == kFalseId) return f;
  if (f == g) return f;
  canonicalize(f, g);

  NodeId cached;
  if (cache_lookup(Op::Or, f, g, 0, cached)) return cached;

  const Node& nf = nodes_[f];
  const Node& ng = nodes_[g];
  const VarIndex top_level = std::min(var2level_[nf.var], var2level_[ng.var]);
  const VarIndex top = level2var_[top_level];
  const NodeId f0 = nf.var == top ? nf.lo : f;
  const NodeId f1 = nf.var == top ? nf.hi : f;
  const NodeId g0 = ng.var == top ? ng.lo : g;
  const NodeId g1 = ng.var == top ? ng.hi : g;

  const NodeId lo = or_rec(f0, g0);
  const NodeId hi = or_rec(f1, g1);
  const NodeId result = make_node(top, lo, hi);
  cache_insert(Op::Or, f, g, 0, result);
  return result;
}

NodeId BddManager::xor_rec(NodeId f, NodeId g) {
  if (f == kFalseId) return g;
  if (g == kFalseId) return f;
  if (f == kTrueId) return not_rec(g);
  if (g == kTrueId) return not_rec(f);
  if (f == g) return kFalseId;
  canonicalize(f, g);

  NodeId cached;
  if (cache_lookup(Op::Xor, f, g, 0, cached)) return cached;

  const Node& nf = nodes_[f];
  const Node& ng = nodes_[g];
  const VarIndex top_level = std::min(var2level_[nf.var], var2level_[ng.var]);
  const VarIndex top = level2var_[top_level];
  const NodeId f0 = nf.var == top ? nf.lo : f;
  const NodeId f1 = nf.var == top ? nf.hi : f;
  const NodeId g0 = ng.var == top ? ng.lo : g;
  const NodeId g1 = ng.var == top ? ng.hi : g;

  const NodeId lo = xor_rec(f0, g0);
  const NodeId hi = xor_rec(f1, g1);
  const NodeId result = make_node(top, lo, hi);
  cache_insert(Op::Xor, f, g, 0, result);
  return result;
}

NodeId BddManager::ite_rec(NodeId f, NodeId g, NodeId h) {
  // Terminal cases.
  if (f == kTrueId) return g;
  if (f == kFalseId) return h;
  if (g == h) return g;
  if (g == kTrueId && h == kFalseId) return f;
  if (g == kFalseId && h == kTrueId) return not_rec(f);
  if (f == g) return or_rec(f, h);    // ite(f, f, h) == f | h
  if (f == h) return and_rec(f, g);   // ite(f, g, f) == f & g

  NodeId cached;
  if (cache_lookup(Op::Ite, f, g, h, cached)) return cached;

  const VarIndex top_level =
      std::min(level_of(f), std::min(level_of(g), level_of(h)));
  const VarIndex top = level2var_[top_level];

  auto cof = [&](NodeId x, bool hi_branch) {
    const Node& nx = nodes_[x];
    if (x <= kTrueId || nx.var != top) return x;
    return hi_branch ? nx.hi : nx.lo;
  };

  const NodeId lo = ite_rec(cof(f, false), cof(g, false), cof(h, false));
  const NodeId hi = ite_rec(cof(f, true), cof(g, true), cof(h, true));
  const NodeId result = make_node(top, lo, hi);
  cache_insert(Op::Ite, f, g, h, result);
  return result;
}

NodeId BddManager::restrict_rec(NodeId f, VarIndex v, bool value) {
  if (f <= kTrueId) return f;
  // Copied (not referenced): the recursion below can reallocate the
  // node table.
  const Node n = nodes_[f];
  if (var2level_[n.var] > var2level_[v]) return f;  // f is below v
  if (n.var == v) return value ? n.hi : n.lo;

  const Op op = value ? Op::Restrict1 : Op::Restrict0;
  NodeId cached;
  if (cache_lookup(op, f, v, 0, cached)) return cached;

  const NodeId lo = restrict_rec(n.lo, v, value);
  const NodeId hi = restrict_rec(n.hi, v, value);
  const NodeId result = make_node(n.var, lo, hi);
  cache_insert(op, f, v, 0, result);
  return result;
}

}  // namespace motsim::bdd

namespace motsim::bdd {

Bdd BddManager::constrain(const Bdd& f, const Bdd& c) {
  assert(f.manager() == this && c.manager() == this);
  if (c.is_zero()) {
    throw std::invalid_argument("constrain: care set must be non-empty");
  }
  maybe_auto_gc();
  return Bdd(this, constrain_rec(f.id(), c.id()));
}

NodeId BddManager::constrain_rec(NodeId f, NodeId c) {
  // Coudert-Madre generalized cofactor. Precondition: c != 0.
  if (c == kTrueId || f <= kTrueId) return f;
  if (f == c) return kTrueId;

  NodeId cached;
  if (cache_lookup(Op::Constrain, f, c, 0, cached)) return cached;

  const Node& nf = nodes_[f];
  const Node& nc = nodes_[c];
  const VarIndex top =
      level2var_[std::min(var2level_[nf.var], var2level_[nc.var])];
  const NodeId f0 = nf.var == top ? nf.lo : f;
  const NodeId f1 = nf.var == top ? nf.hi : f;
  const NodeId c0 = nc.var == top ? nc.lo : c;
  const NodeId c1 = nc.var == top ? nc.hi : c;

  NodeId result;
  if (c0 == kFalseId) {
    // The care set forces top = 1: project onto that branch.
    result = constrain_rec(f1, c1);
  } else if (c1 == kFalseId) {
    result = constrain_rec(f0, c0);
  } else {
    const NodeId lo = constrain_rec(f0, c0);
    const NodeId hi = constrain_rec(f1, c1);
    result = make_node(top, lo, hi);
  }
  cache_insert(Op::Constrain, f, c, 0, result);
  return result;
}

}  // namespace motsim::bdd
