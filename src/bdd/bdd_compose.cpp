// Composition, renaming and quantification.
//
// `compose(f, v, g)` substitutes function g for variable v in f — the
// operation the paper uses to obtain the faulty response o^f(y,t) from
// the x-based response computed by event-driven single fault
// propagation (Section IV.A, MOT case).
//
// `rename` is the specialized fast path for order-preserving variable
// maps. The simulators interleave fault-free/faulty state variables
// (x_1, y_1, x_2, y_2, ...) precisely so the x->y substitution is
// order-preserving and runs as a single linear-time rebuild instead of
// m nested compositions.

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

#include "bdd/bdd.h"

namespace motsim::bdd {

Bdd BddManager::compose(const Bdd& f, VarIndex v, const Bdd& g) {
  assert(f.manager() == this && g.manager() == this);
  ensure_vars(v + 1);  // the level lookups below must stay in bounds
  maybe_auto_gc();
  return Bdd(this, compose_rec(f.id(), v, g.id()));
}

NodeId BddManager::compose_rec(NodeId f, VarIndex v, NodeId g) {
  if (f <= kTrueId) return f;
  // Copy the node fields: the recursive calls below may grow the node
  // table and invalidate references into it.
  const Node n = nodes_[f];
  if (var2level_[n.var] > var2level_[v]) return f;  // f is below v
  if (n.var == v) {
    // Children of a v-node cannot depend on v; splice g in directly.
    return ite_rec(g, n.hi, n.lo);
  }

  // Cache key = (f, g, v): v rides in the `h` slot of the entry.
  NodeId cached;
  const NodeId key_h = static_cast<NodeId>(v);
  if (cache_lookup(Op::Compose, f, g, key_h, cached)) return cached;

  const NodeId lo = compose_rec(n.lo, v, g);
  const NodeId hi = compose_rec(n.hi, v, g);
  // The result can no longer be built with make_node(n.var, ...)
  // directly: g may depend on variables above n.var. Use ITE on the
  // projection of n.var to restore canonicity in all cases.
  const NodeId proj = make_node(n.var, kFalseId, kTrueId);
  const NodeId result = ite_rec(proj, hi, lo);
  cache_insert(Op::Compose, f, g, key_h, result);
  return result;
}

Bdd BddManager::rename(const Bdd& f, const std::vector<VarIndex>& mapping) {
  assert(f.manager() == this);
  maybe_auto_gc();

  auto mapped = [&](VarIndex v) -> VarIndex {
    return v < mapping.size() ? mapping[v] : v;
  };

  // Verify order preservation (by LEVEL, which equals the variable
  // index until someone reorders) on the support of f; the rebuild
  // below is only sound for monotone maps.
  {
    std::vector<VarIndex> sup = support(f);
    std::sort(sup.begin(), sup.end(), [&](VarIndex a, VarIndex b) {
      return var2level_[a] < var2level_[b];
    });
    VarIndex max_new = 0;
    for (VarIndex v : sup) {
      const VarIndex m = mapped(v);
      if (m >= num_vars_) ensure_vars(m + 1);
      max_new = std::max(max_new, m);
    }
    for (std::size_t i = 1; i < sup.size(); ++i) {
      if (var2level_[mapped(sup[i - 1])] >= var2level_[mapped(sup[i])]) {
        throw std::invalid_argument(
            "BddManager::rename: mapping is not order-preserving on the "
            "support of f");
      }
    }
    (void)max_new;
  }

  // Per-call memo: the mapping varies between calls, so the global
  // computed cache cannot key it.
  std::unordered_map<NodeId, NodeId> memo;
  auto rec = [&](auto&& self, NodeId n) -> NodeId {
    if (n <= kTrueId) return n;
    if (auto it = memo.find(n); it != memo.end()) return it->second;
    const Node node = nodes_[n];
    const NodeId lo = self(self, node.lo);
    const NodeId hi = self(self, node.hi);
    const NodeId result = make_node(mapped(node.var), lo, hi);
    memo.emplace(n, result);
    return result;
  };
  return Bdd(this, rec(rec, f.id()));
}

Bdd BddManager::exists(const Bdd& f, const std::vector<VarIndex>& vars) {
  assert(f.manager() == this);
  for (VarIndex v : vars) ensure_vars(v + 1);
  maybe_auto_gc();
  std::vector<VarIndex> sorted = vars;
  std::sort(sorted.begin(), sorted.end(), [&](VarIndex a, VarIndex b) {
    return var2level_[a] < var2level_[b];
  });
  std::unordered_map<NodeId, NodeId> memo;
  return Bdd(this, quant_rec(f.id(), sorted, 0, /*existential=*/true, memo));
}

Bdd BddManager::forall(const Bdd& f, const std::vector<VarIndex>& vars) {
  assert(f.manager() == this);
  for (VarIndex v : vars) ensure_vars(v + 1);
  maybe_auto_gc();
  std::vector<VarIndex> sorted = vars;
  std::sort(sorted.begin(), sorted.end(), [&](VarIndex a, VarIndex b) {
    return var2level_[a] < var2level_[b];
  });
  std::unordered_map<NodeId, NodeId> memo;
  return Bdd(this, quant_rec(f.id(), sorted, 0, /*existential=*/false, memo));
}

NodeId BddManager::quant_rec(NodeId f, const std::vector<VarIndex>& vars,
                             std::size_t idx, bool existential,
                             std::unordered_map<NodeId, NodeId>& memo) {
  if (f <= kTrueId) return f;
  // Skip quantification variables above the current root: f cannot
  // depend on them. After this loop the effective idx is a function of
  // f alone (vars is sorted and recursion descends in variable order),
  // so the per-call memo can be keyed by f.
  // Copied (not referenced): the recursion below can reallocate the
  // node table.
  const Node n = nodes_[f];
  while (idx < vars.size() && var2level_[vars[idx]] < var2level_[n.var]) {
    ++idx;
  }
  if (idx >= vars.size()) return f;

  if (auto it = memo.find(f); it != memo.end()) return it->second;

  NodeId result;
  if (n.var == vars[idx]) {
    const NodeId lo = quant_rec(n.lo, vars, idx + 1, existential, memo);
    const NodeId hi = quant_rec(n.hi, vars, idx + 1, existential, memo);
    result = existential ? or_rec(lo, hi) : and_rec(lo, hi);
  } else {
    const NodeId lo = quant_rec(n.lo, vars, idx, existential, memo);
    const NodeId hi = quant_rec(n.hi, vars, idx, existential, memo);
    result = make_node(n.var, lo, hi);
  }
  memo.emplace(f, result);
  return result;
}

}  // namespace motsim::bdd

namespace motsim::bdd {

Bdd BddManager::and_exists(const Bdd& f, const Bdd& g,
                           const std::vector<VarIndex>& vars) {
  assert(f.manager() == this && g.manager() == this);
  for (VarIndex v : vars) ensure_vars(v + 1);
  maybe_auto_gc();
  std::vector<VarIndex> sorted = vars;
  std::sort(sorted.begin(), sorted.end(), [&](VarIndex a, VarIndex b) {
    return var2level_[a] < var2level_[b];
  });
  std::unordered_map<std::uint64_t, NodeId> memo;
  return Bdd(this, and_exists_rec(f.id(), g.id(), sorted, 0, memo));
}

NodeId BddManager::and_exists_rec(
    NodeId f, NodeId g, const std::vector<VarIndex>& vars, std::size_t idx,
    std::unordered_map<std::uint64_t, NodeId>& memo) {
  // Terminal cases of the conjunction.
  if (f == kFalseId || g == kFalseId) return kFalseId;
  if (f == kTrueId && g == kTrueId) return kTrueId;
  if (f == kTrueId) {
    std::unordered_map<NodeId, NodeId> qmemo;
    return quant_rec(g, vars, idx, /*existential=*/true, qmemo);
  }
  if (g == kTrueId) {
    std::unordered_map<NodeId, NodeId> qmemo;
    return quant_rec(f, vars, idx, /*existential=*/true, qmemo);
  }

  const Node& nf = nodes_[f];
  const Node& ng = nodes_[g];
  const VarIndex top =
      level2var_[std::min(var2level_[nf.var], var2level_[ng.var])];
  // As in quant_rec, the effective idx is a function of (f, g): skip
  // quantification variables above the top variable.
  while (idx < vars.size() &&
         var2level_[vars[idx]] < var2level_[top]) {
    ++idx;
  }
  if (idx >= vars.size()) return and_rec(f, g);

  // Commutative: canonicalize the pair for the memo key.
  NodeId kf = f, kg = g;
  if (kf > kg) std::swap(kf, kg);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(kf) << 32) | static_cast<std::uint64_t>(kg);
  if (auto it = memo.find(key); it != memo.end()) return it->second;

  const NodeId f0 = nf.var == top ? nf.lo : f;
  const NodeId f1 = nf.var == top ? nf.hi : f;
  const NodeId g0 = ng.var == top ? ng.lo : g;
  const NodeId g1 = ng.var == top ? ng.hi : g;

  NodeId result;
  if (vars[idx] == top) {
    // exists top . f & g  ==  (f0 & g0)|x=0  or  (f1 & g1)|x=1
    const NodeId lo = and_exists_rec(f0, g0, vars, idx + 1, memo);
    if (lo == kTrueId) {
      result = kTrueId;  // early termination of the disjunction
    } else {
      const NodeId hi = and_exists_rec(f1, g1, vars, idx + 1, memo);
      result = or_rec(lo, hi);
    }
  } else {
    const NodeId lo = and_exists_rec(f0, g0, vars, idx, memo);
    const NodeId hi = and_exists_rec(f1, g1, vars, idx, memo);
    result = make_node(top, lo, hi);
  }
  memo.emplace(key, result);
  return result;
}

}  // namespace motsim::bdd

namespace motsim::bdd {

Bdd BddManager::transfer(const Bdd& f, BddManager& target,
                         const std::vector<VarIndex>& mapping) {
  BddManager* source = f.manager();
  if (source == nullptr) {
    throw std::invalid_argument("transfer: null source function");
  }
  auto mapped = [&](VarIndex v) -> VarIndex {
    return v < mapping.size() ? mapping[v] : v;
  };

  // Memo holds target handles so intermediate results survive the
  // target's garbage collections during the rebuild.
  std::unordered_map<NodeId, Bdd> memo;
  auto rec = [&](auto&& self, NodeId n) -> Bdd {
    if (n == kFalseId) return target.zero();
    if (n == kTrueId) return target.one();
    if (auto it = memo.find(n); it != memo.end()) return it->second;
    const VarIndex v = mapped(source->var_of(n));
    const Bdd lo = self(self, source->low_of(n));
    const Bdd hi = self(self, source->high_of(n));
    // target.ite restores canonicity whatever the target order is.
    Bdd result = target.ite(target.var(v), hi, lo);
    memo.emplace(n, result);
    return result;
  };
  return rec(rec, f.id());
}

}  // namespace motsim::bdd
