#include <algorithm>
#include <cassert>
#include <utility>

#include "bdd/bdd.h"

namespace motsim::bdd {

// ---------------------------------------------------------------------------
// Bdd handle
// ---------------------------------------------------------------------------

Bdd::Bdd(BddManager* mgr, NodeId id) noexcept { attach(mgr, id); }

Bdd::Bdd(const Bdd& other) noexcept { attach(other.mgr_, other.id_); }

Bdd::Bdd(Bdd&& other) noexcept {
  attach(other.mgr_, other.id_);
  other.detach();
}

Bdd& Bdd::operator=(const Bdd& other) noexcept {
  if (this != &other) {
    detach();
    attach(other.mgr_, other.id_);
  }
  return *this;
}

Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this != &other) {
    detach();
    attach(other.mgr_, other.id_);
    other.detach();
  }
  return *this;
}

Bdd::~Bdd() { detach(); }

void Bdd::attach(BddManager* mgr, NodeId id) noexcept {
  mgr_ = mgr;
  id_ = id;
  if (mgr_ != nullptr) mgr_->register_handle(this);
}

void Bdd::detach() noexcept {
  if (mgr_ != nullptr) {
    mgr_->unregister_handle(this);
    mgr_ = nullptr;
    id_ = kFalseId;
  }
}

VarIndex Bdd::top_var() const {
  assert(mgr_ != nullptr);
  return mgr_->var_of(id_);
}

Bdd Bdd::high() const {
  assert(mgr_ != nullptr && !is_const());
  return Bdd(mgr_, mgr_->high_of(id_));
}

Bdd Bdd::low() const {
  assert(mgr_ != nullptr && !is_const());
  return Bdd(mgr_, mgr_->low_of(id_));
}

Bdd Bdd::operator&(const Bdd& rhs) const { return mgr_->apply_and(*this, rhs); }
Bdd Bdd::operator|(const Bdd& rhs) const { return mgr_->apply_or(*this, rhs); }
Bdd Bdd::operator^(const Bdd& rhs) const { return mgr_->apply_xor(*this, rhs); }
Bdd Bdd::operator!() const { return mgr_->apply_not(*this); }
Bdd Bdd::xnor(const Bdd& rhs) const { return mgr_->apply_xnor(*this, rhs); }
Bdd Bdd::implies(const Bdd& rhs) const {
  return mgr_->apply_or(mgr_->apply_not(*this), rhs);
}

std::size_t Bdd::node_count() const {
  assert(mgr_ != nullptr);
  return mgr_->node_count(*this);
}

// ---------------------------------------------------------------------------
// BddManager: construction, node table, unique table, GC
// ---------------------------------------------------------------------------

namespace {

/// 64-bit avalanche mixer (Murmur3 finalizer) for unique-table hashing.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

BddManager::BddManager(const BddConfig& config)
    : hard_node_limit_(config.hard_node_limit),
      auto_gc_floor_(config.auto_gc_floor),
      next_gc_at_(config.auto_gc_floor) {
  const std::size_t cap = std::max<std::size_t>(config.initial_capacity, 16);
  nodes_.reserve(cap);
  used_.reserve(cap);

  // Terminal nodes occupy slots 0 and 1 and are never collected.
  nodes_.push_back(Node{kTerminalVar, kFalseId, kFalseId, 0});
  nodes_.push_back(Node{kTerminalVar, kTrueId, kTrueId, 0});
  used_.push_back(1);
  used_.push_back(1);

  buckets_.assign(round_up_pow2(cap), kFalseId);

  cache_.assign(std::size_t{1} << config.cache_size_log2, CacheEntry{});
  cache_mask_ = cache_.size() - 1;
}

BddManager::~BddManager() {
  // Handles must not outlive the manager; detach any stragglers so
  // their destructors do not touch freed memory.
  while (handles_head_ != nullptr) {
    Bdd* h = handles_head_;
    h->mgr_ = nullptr;
    handles_head_ = h->reg_next_;
    if (handles_head_ != nullptr) handles_head_->reg_prev_ = nullptr;
    h->reg_prev_ = h->reg_next_ = nullptr;
  }
}

void BddManager::register_handle(Bdd* h) noexcept {
  h->reg_prev_ = nullptr;
  h->reg_next_ = handles_head_;
  if (handles_head_ != nullptr) handles_head_->reg_prev_ = h;
  handles_head_ = h;
  ++handle_counter_;
}

void BddManager::unregister_handle(Bdd* h) noexcept {
  if (h->reg_prev_ != nullptr) {
    h->reg_prev_->reg_next_ = h->reg_next_;
  } else {
    handles_head_ = h->reg_next_;
  }
  if (h->reg_next_ != nullptr) h->reg_next_->reg_prev_ = h->reg_prev_;
  h->reg_prev_ = h->reg_next_ = nullptr;
  --handle_counter_;
}

std::size_t BddManager::bucket_of(VarIndex var, NodeId lo,
                                  NodeId hi) const noexcept {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(var) << 40) ^
      (static_cast<std::uint64_t>(lo) << 20) ^ static_cast<std::uint64_t>(hi);
  return static_cast<std::size_t>(mix64(key)) & (buckets_.size() - 1);
}

NodeId BddManager::make_node(VarIndex var, NodeId lo, NodeId hi) {
  // OBDD reduction rule: equal children collapse to the child.
  if (lo == hi) return lo;

  assert(var2level_[var] < level_of(lo) && var2level_[var] < level_of(hi) &&
         "children must be below the node in the variable order");

  const std::size_t bucket = bucket_of(var, lo, hi);
  for (NodeId n = buckets_[bucket]; n != kFalseId; n = nodes_[n].next) {
    const Node& node = nodes_[n];
    if (node.var == var && node.lo == lo && node.hi == hi) {
      ++stats_.unique_hits;
      return n;
    }
  }
  return allocate_slot(var, lo, hi);
}

NodeId BddManager::allocate_slot(VarIndex var, NodeId lo, NodeId hi) {
  if (live_count_ + 2 >= hard_node_limit_) throw BddOverflow(hard_node_limit_);

  NodeId id;
  if (free_head_ != kFalseId) {
    id = free_head_;
    free_head_ = nodes_[id].next;
  } else {
    id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(Node{});
    used_.push_back(0);
  }
  used_[id] = 1;
  ++live_count_;
  ++stats_.nodes_created;
  stats_.peak_live_nodes = std::max(stats_.peak_live_nodes, live_count_);

  // Grow the unique table before the load factor reaches 1.
  if (live_count_ + 2 > buckets_.size()) {
    rehash(buckets_.size() * 2);
  }

  const std::size_t bucket = bucket_of(var, lo, hi);
  nodes_[id] = Node{var, lo, hi, buckets_[bucket]};
  buckets_[bucket] = id;
  return id;
}

void BddManager::rehash(std::size_t new_bucket_count) {
  buckets_.assign(round_up_pow2(new_bucket_count), kFalseId);
  for (NodeId id = 2; id < nodes_.size(); ++id) {
    if (!used_[id]) continue;
    Node& node = nodes_[id];
    const std::size_t bucket = bucket_of(node.var, node.lo, node.hi);
    node.next = buckets_[bucket];
    buckets_[bucket] = id;
  }
}

Bdd BddManager::var(VarIndex index) {
  ensure_vars(index + 1);
  return Bdd(this, make_node(index, kFalseId, kTrueId));
}

Bdd BddManager::nvar(VarIndex index) {
  ensure_vars(index + 1);
  return Bdd(this, make_node(index, kTrueId, kFalseId));
}

void BddManager::ensure_vars(VarIndex count) {
  while (num_vars_ < count) {
    // New variables enter at the bottom of the order.
    var2level_.push_back(num_vars_);
    level2var_.push_back(num_vars_);
    ++num_vars_;
  }
}

void BddManager::mark_reachable(NodeId n,
                                std::vector<std::uint8_t>& mark) const {
  // Iterative DFS; BDDs can be deep on wide circuits.
  if (mark[n]) return;
  std::vector<NodeId> stack{n};
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    if (mark[cur]) continue;
    mark[cur] = 1;
    if (cur > kTrueId) {
      stack.push_back(nodes_[cur].lo);
      stack.push_back(nodes_[cur].hi);
    }
  }
}

void BddManager::gc() {
  ++stats_.gc_runs;
  const std::size_t live_before = live_count_;

  std::vector<std::uint8_t> mark(nodes_.size(), 0);
  mark[kFalseId] = mark[kTrueId] = 1;
  for (const Bdd* h = handles_head_; h != nullptr; h = h->reg_next_) {
    mark_reachable(h->id_, mark);
  }

  // Sweep: rebuild the unique table from marked nodes only; unmarked
  // slots go to the free list.
  free_head_ = kFalseId;
  live_count_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), kFalseId);
  for (NodeId id = 2; id < nodes_.size(); ++id) {
    if (!used_[id]) continue;
    if (mark[id]) {
      Node& node = nodes_[id];
      const std::size_t bucket = bucket_of(node.var, node.lo, node.hi);
      node.next = buckets_[bucket];
      buckets_[bucket] = id;
      ++live_count_;
    } else {
      used_[id] = 0;
      nodes_[id].next = free_head_;
      free_head_ = id;
    }
  }

  // Cached results may reference collected nodes; invalidate wholesale.
  for (auto& e : cache_) e.op = Op::Invalid;

  stats_.gc_reclaimed_nodes += live_before - live_count_;
  next_gc_at_ = std::max(auto_gc_floor_, live_count_ * 2);
}

void BddManager::maybe_auto_gc() {
  if (live_count_ >= next_gc_at_) gc();
}

// ---------------------------------------------------------------------------
// Computed cache
// ---------------------------------------------------------------------------

bool BddManager::cache_lookup(Op op, NodeId f, NodeId g, NodeId h,
                              NodeId& out) {
  ++stats_.cache_lookups;
  const std::uint64_t key =
      mix64((static_cast<std::uint64_t>(op) << 56) ^
            (static_cast<std::uint64_t>(f) << 34) ^
            (static_cast<std::uint64_t>(g) << 12) ^ h);
  const CacheEntry& e = cache_[key & cache_mask_];
  if (e.op == op && e.f == f && e.g == g && e.h == h) {
    ++stats_.cache_hits;
    out = e.result;
    return true;
  }
  return false;
}

void BddManager::cache_insert(Op op, NodeId f, NodeId g, NodeId h,
                              NodeId result) {
  const std::uint64_t key =
      mix64((static_cast<std::uint64_t>(op) << 56) ^
            (static_cast<std::uint64_t>(f) << 34) ^
            (static_cast<std::uint64_t>(g) << 12) ^ h);
  cache_[key & cache_mask_] = CacheEntry{f, g, h, result, op};
}

}  // namespace motsim::bdd
