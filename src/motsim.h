#ifndef MOTSIM_MOTSIM_H
#define MOTSIM_MOTSIM_H

/// Umbrella header: pulls in the whole public API. Fine for
/// applications and experiments; library-internal code includes the
/// specific module headers instead.
///
/// Substrates ------------------------------------------------------------
#include "analysis/diagnostics.h"
#include "analysis/implication.h"
#include "analysis/lint.h"
#include "analysis/static_xred.h"
#include "analysis/testability.h"
#include "bdd/bdd.h"
#include "bench_data/registry.h"
#include "bench_data/s27.h"
#include "bench_data/synth_gen.h"
#include "circuit/bench_io.h"
#include "circuit/ffr.h"
#include "circuit/levelize.h"
#include "circuit/netlist.h"
#include "circuit/stats.h"
#include "circuit/transform.h"
#include "circuit/validate.h"
#include "faults/collapse.h"
#include "faults/fault.h"
#include "faults/fault_list.h"
#include "faults/report.h"
#include "faults/sampling.h"
#include "logic/val3.h"
#include "logic/val4.h"
#include "sim3/fault_sim3.h"
#include "sim3/good_sim3.h"
#include "sim3/ndetect.h"
#include "sim3/parallel_fault_sim3.h"
#include "sim3/sim2.h"
#include "util/cli_args.h"
#include "util/expected.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
/// The paper's contribution and its extensions ---------------------------
#include "core/diagnosis.h"
#include "core/equivalence.h"
#include "core/hybrid_sim.h"
#include "core/misr.h"
#include "core/options.h"
#include "core/parallel_sym_sim.h"
#include "core/pipeline.h"
#include "core/progress.h"
#include "core/sym_fault_sim.h"
#include "core/sym_true_value.h"
#include "core/symbolic_fsm.h"
#include "core/test_eval.h"
#include "core/xred.h"
/// Sequence generation ---------------------------------------------------
#include "tpg/compaction.h"
#include "tpg/mot_tpg.h"
#include "tpg/sequence_io.h"
#include "tpg/sequences.h"

#endif  // MOTSIM_MOTSIM_H
