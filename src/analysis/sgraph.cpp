#include "analysis/sgraph.h"

#include <algorithm>
#include <sstream>

#include "analysis/cone.h"
#include "circuit/stats.h"

namespace motsim {

namespace {

constexpr std::uint32_t kUnvisited = 0xFFFFFFFFu;

/// Iterative Tarjan over the subgraph induced by `active`, following
/// successor lists. Fills scc_id (kUnvisited for inactive vertices)
/// and returns the number of SCCs. Ids follow completion order — a
/// reverse topological order of the condensation.
std::uint32_t tarjan_scc(const std::vector<std::vector<std::uint32_t>>& succ,
                         const std::vector<std::uint8_t>& active,
                         std::vector<std::uint32_t>& scc_id) {
  const std::uint32_t n = static_cast<std::uint32_t>(succ.size());
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> low(n, 0);
  std::vector<std::uint8_t> on_stack(n, 0);
  std::vector<std::uint32_t> stack;
  struct Frame {
    std::uint32_t v;
    std::uint32_t edge;
  };
  std::vector<Frame> call;
  std::uint32_t next_index = 0;
  std::uint32_t scc_count = 0;
  scc_id.assign(n, kUnvisited);

  for (std::uint32_t root = 0; root < n; ++root) {
    if (!active[root] || index[root] != kUnvisited) continue;
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    call.push_back({root, 0});
    while (!call.empty()) {
      const std::uint32_t v = call.back().v;
      if (call.back().edge < succ[v].size()) {
        const std::uint32_t w = succ[v][call.back().edge++];
        if (!active[w]) continue;
        if (index[w] == kUnvisited) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          call.push_back({w, 0});
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
      } else {
        call.pop_back();
        if (!call.empty()) {
          low[call.back().v] = std::min(low[call.back().v], low[v]);
        }
        if (low[v] == index[v]) {
          for (;;) {
            const std::uint32_t w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            scc_id[w] = scc_count;
            if (w == v) break;
          }
          ++scc_count;
        }
      }
    }
  }
  return scc_count;
}

[[nodiscard]] bool has_self_loop(const SgraphInfo& info, std::uint32_t v) {
  return std::binary_search(info.preds[v].begin(), info.preds[v].end(), v);
}

/// Successor lists derived from the stored predecessor lists.
[[nodiscard]] std::vector<std::vector<std::uint32_t>> successors(
    const SgraphInfo& info) {
  std::vector<std::vector<std::uint32_t>> succ(info.ff_count());
  for (std::uint32_t v = 0; v < info.ff_count(); ++v) {
    for (const std::uint32_t u : info.preds[v]) succ[u].push_back(v);
  }
  return succ;
}

}  // namespace

SgraphInfo build_sgraph(const Netlist& nl) {
  SgraphInfo info;
  const std::size_t n = nl.dff_count();
  info.preds.resize(n);

  // Edge u -> v iff FF u's Q is in the frame-local support of FF v's
  // D input. The backward walk must NOT be seeded at a flip-flop:
  // ConeWalker always expands its seeds, even with cross_dffs=false,
  // so seeding at the FF itself would miss self-loops and seeding at
  // a DFF-typed D fanin would descend through the frame boundary.
  ConeWalker walker(nl);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeIndex d = nl.gate(nl.dffs()[i]).fanins[0];
    if (d == kNoNode) continue;
    if (nl.type(d) == GateType::Dff) {
      info.preds[i].push_back(nl.dff_position(d));
      continue;
    }
    walker.run(ConeDir::Backward, {d}, /*cross_dffs=*/false);
    for (const NodeIndex m : walker.visited()) {
      if (nl.type(m) == GateType::Dff) {
        info.preds[i].push_back(nl.dff_position(m));
      }
    }
    std::sort(info.preds[i].begin(), info.preds[i].end());
  }

  const std::vector<std::vector<std::uint32_t>> succ = successors(info);
  std::vector<std::uint8_t> active(n, 1);
  info.scc_count = tarjan_scc(succ, active, info.scc_id);

  // Nontrivial SCCs: size >= 2, or a single vertex with a self-loop.
  std::vector<std::uint32_t> scc_size(info.scc_count, 0);
  for (std::uint32_t v = 0; v < n; ++v) scc_size[info.scc_id[v]] += 1;
  std::vector<std::uint8_t> scc_nontrivial(info.scc_count, 0);
  info.in_nontrivial_scc.assign(n, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (scc_size[info.scc_id[v]] >= 2 || has_self_loop(info, v)) {
      scc_nontrivial[info.scc_id[v]] = 1;
    }
  }
  for (std::uint32_t c = 0; c < info.scc_count; ++c) {
    info.nontrivial_scc_count += scc_nontrivial[c];
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    info.in_nontrivial_scc[v] = scc_nontrivial[info.scc_id[v]];
  }

  // Taint: in or downstream of a nontrivial SCC. BFS along successors.
  info.tainted.assign(n, 0);
  std::vector<std::uint32_t> queue;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (info.in_nontrivial_scc[v]) {
      info.tainted[v] = 1;
      queue.push_back(v);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (const std::uint32_t w : succ[queue[head]]) {
      if (!info.tainted[w]) {
        info.tainted[w] = 1;
        queue.push_back(w);
      }
    }
  }

  // Synchronization depths over the untainted (acyclic) region:
  // init_depth(v) = 1 + max over predecessors (max over none = 0),
  // by Kahn topological order. A tainted predecessor would imply v is
  // tainted, so untainted vertices see only untainted predecessors.
  info.init_depth.assign(n, kInfDepth);
  std::vector<std::uint32_t> indeg(n, 0);
  std::vector<std::uint32_t> best(n, 0);
  queue.clear();
  for (std::uint32_t v = 0; v < n; ++v) {
    if (info.tainted[v]) continue;
    indeg[v] = static_cast<std::uint32_t>(info.preds[v].size());
    if (indeg[v] == 0) queue.push_back(v);
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t u = queue[head];
    info.init_depth[u] = 1 + best[u];
    info.max_finite_init_depth =
        std::max(info.max_finite_init_depth, info.init_depth[u]);
    ++info.acyclic_ffs;
    for (const std::uint32_t w : succ[u]) {
      if (info.tainted[w]) continue;
      best[w] = std::max(best[w], info.init_depth[u]);
      if (--indeg[w] == 0) queue.push_back(w);
    }
  }

  // Per-output-position horizons: max init-depth over the output's
  // frame-local support flip-flops. Same seeding caveat as above when
  // the output net IS a flip-flop.
  info.output_horizon.resize(nl.output_count());
  for (std::size_t j = 0; j < nl.output_count(); ++j) {
    const NodeIndex o = nl.outputs()[j];
    std::uint32_t h = 0;
    if (nl.type(o) == GateType::Dff) {
      h = info.init_depth[nl.dff_position(o)];
    } else {
      walker.run(ConeDir::Backward, {o}, /*cross_dffs=*/false);
      for (const NodeIndex m : walker.visited()) {
        if (nl.type(m) == GateType::Dff) {
          h = std::max(h, info.init_depth[nl.dff_position(m)]);
        }
      }
    }
    info.output_horizon[j] = h;
  }

  return info;
}

SgraphPlan build_sgraph_plan(const Netlist& nl, const SgraphInfo& info,
                             const std::vector<Fault>& faults) {
  SgraphPlan plan;
  plan.nontrivial_sccs = info.nontrivial_scc_count;
  plan.horizon.reserve(faults.size());

  // Horizon of each output NET (positions of one net share a support,
  // hence a horizon), so the per-fault pass can max over the visited
  // node list instead of probing every output position.
  std::vector<std::uint32_t> net_horizon(nl.node_count(), 0);
  std::vector<std::uint8_t> is_out(nl.node_count(), 0);
  for (std::size_t j = 0; j < nl.output_count(); ++j) {
    const NodeIndex o = nl.outputs()[j];
    is_out[o] = 1;
    net_horizon[o] = std::max(net_horizon[o], info.output_horizon[j]);
  }

  ConeWalker walker(nl);
  for (const Fault& f : faults) {
    if (f.site.node == kNoNode || f.site.node >= nl.node_count()) {
      // Malformed site: never downgrade.
      plan.horizon.push_back(kInfDepth);
      continue;
    }
    // Forward cone of influence of the divergence origin, crossing
    // flip-flop boundaries (observation over any number of frames).
    walker.run(ConeDir::Forward, {f.site.node}, /*cross_dffs=*/true);
    std::uint32_t h = 0;
    for (const NodeIndex m : walker.visited()) {
      if (is_out[m]) h = std::max(h, net_horizon[m]);
    }
    plan.horizon.push_back(h);
  }
  return plan;
}

SgraphPlan build_sgraph_plan(const Netlist& nl,
                             const std::vector<Fault>& faults) {
  return build_sgraph_plan(nl, build_sgraph(nl), faults);
}

std::vector<std::uint32_t> greedy_feedback_set(const SgraphInfo& info) {
  const std::uint32_t n = static_cast<std::uint32_t>(info.ff_count());
  const std::vector<std::vector<std::uint32_t>> succ = successors(info);
  std::vector<std::uint8_t> active(n, 1);
  std::vector<std::uint32_t> scc_id;
  std::vector<std::uint32_t> result;

  for (;;) {
    tarjan_scc(succ, active, scc_id);
    std::vector<std::uint32_t> scc_size;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (!active[v]) continue;
      if (scc_id[v] >= scc_size.size()) scc_size.resize(scc_id[v] + 1, 0);
      scc_size[scc_id[v]] += 1;
    }
    // Highest total degree within the remaining cyclic subgraph; ties
    // go to the lowest dff position (first hit wins below).
    std::uint32_t pick = kUnvisited;
    std::size_t pick_degree = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (!active[v]) continue;
      const bool self_loop =
          active[v] && has_self_loop(info, v);
      const bool cyclic = scc_size[scc_id[v]] >= 2 || self_loop;
      if (!cyclic) continue;
      std::size_t degree = 0;
      for (const std::uint32_t u : info.preds[v]) {
        degree += active[u] && scc_id[u] == scc_id[v];
      }
      for (const std::uint32_t w : succ[v]) {
        degree += active[w] && scc_id[w] == scc_id[v];
      }
      if (pick == kUnvisited || degree > pick_degree) {
        pick = v;
        pick_degree = degree;
      }
    }
    if (pick == kUnvisited) break;
    active[pick] = 0;
    result.push_back(pick);
  }
  return result;
}

void attach_sgraph(CircuitStats& stats, const Netlist& nl,
                   const SgraphInfo& info) {
  (void)nl;
  stats.has_sgraph = true;
  stats.sgraph_sccs = info.scc_count;
  stats.sgraph_nontrivial_sccs = info.nontrivial_scc_count;
  stats.sgraph_acyclic_ffs = info.acyclic_ffs;
  stats.sgraph_max_init_depth = info.max_finite_init_depth;
  stats.sgraph_feedback_estimate = greedy_feedback_set(info).size();
}

std::string sgraph_summary(const Netlist& nl, const SgraphInfo& info) {
  std::uint32_t max_finite_horizon = 0;
  std::size_t inf_outputs = 0;
  for (const std::uint32_t h : info.output_horizon) {
    if (h == kInfDepth) {
      ++inf_outputs;
    } else {
      max_finite_horizon = std::max(max_finite_horizon, h);
    }
  }
  std::ostringstream os;
  os << "sgraph: " << nl.dff_count() << " FFs, " << info.scc_count
     << " SCCs (" << info.nontrivial_scc_count << " nontrivial), "
     << info.acyclic_ffs << " acyclic, max init depth "
     << info.max_finite_init_depth << ", max finite output horizon "
     << max_finite_horizon << " (" << inf_outputs
     << " unbounded outputs), feedback estimate "
     << greedy_feedback_set(info).size();
  return os.str();
}

}  // namespace motsim
