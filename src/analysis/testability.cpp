#include "analysis/testability.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "circuit/stats.h"

namespace motsim {

namespace {

struct CcPair {
  std::uint32_t cc0 = kScoapInf;
  std::uint32_t cc1 = kScoapInf;
};

CcPair controllability_of(const Netlist& nl, NodeIndex n,
                          const std::vector<std::uint32_t>& cc0,
                          const std::vector<std::uint32_t>& cc1) {
  const Gate& g = nl.gate(n);
  CcPair out;
  switch (g.type) {
    case GateType::Input:
      out.cc0 = out.cc1 = 1;
      return out;
    case GateType::Const0:
      out.cc0 = 1;
      return out;
    case GateType::Const1:
      out.cc1 = 1;
      return out;
    case GateType::Dff:
      // One frame of sequential effort per flip-flop crossing.
      if (!g.fanins.empty()) {
        out.cc0 = scoap_add(cc0[g.fanins[0]], 1);
        out.cc1 = scoap_add(cc1[g.fanins[0]], 1);
      }
      return out;
    case GateType::Buf:
      out.cc0 = scoap_add(cc0[g.fanins[0]], 1);
      out.cc1 = scoap_add(cc1[g.fanins[0]], 1);
      return out;
    case GateType::Not:
      out.cc0 = scoap_add(cc1[g.fanins[0]], 1);
      out.cc1 = scoap_add(cc0[g.fanins[0]], 1);
      return out;
    case GateType::And:
    case GateType::Nand: {
      std::uint32_t all_one = 0;
      std::uint32_t any_zero = kScoapInf;
      for (NodeIndex f : g.fanins) {
        all_one = scoap_add(all_one, cc1[f]);
        any_zero = std::min(any_zero, cc0[f]);
      }
      const std::uint32_t hi = scoap_add(all_one, 1);
      const std::uint32_t lo = scoap_add(any_zero, 1);
      out.cc0 = g.type == GateType::And ? lo : hi;
      out.cc1 = g.type == GateType::And ? hi : lo;
      return out;
    }
    case GateType::Or:
    case GateType::Nor: {
      std::uint32_t all_zero = 0;
      std::uint32_t any_one = kScoapInf;
      for (NodeIndex f : g.fanins) {
        all_zero = scoap_add(all_zero, cc0[f]);
        any_one = std::min(any_one, cc1[f]);
      }
      const std::uint32_t lo = scoap_add(all_zero, 1);
      const std::uint32_t hi = scoap_add(any_one, 1);
      out.cc0 = g.type == GateType::Or ? lo : hi;
      out.cc1 = g.type == GateType::Or ? hi : lo;
      return out;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      // Cheapest even-/odd-parity operand assignment, by running
      // minimum over prefixes.
      std::uint32_t even = 0;
      std::uint32_t odd = kScoapInf;
      for (NodeIndex f : g.fanins) {
        const std::uint32_t e =
            std::min(scoap_add(even, cc0[f]), scoap_add(odd, cc1[f]));
        const std::uint32_t o =
            std::min(scoap_add(odd, cc0[f]), scoap_add(even, cc1[f]));
        even = e;
        odd = o;
      }
      const std::uint32_t lo = scoap_add(even, 1);
      const std::uint32_t hi = scoap_add(odd, 1);
      out.cc0 = g.type == GateType::Xor ? lo : hi;
      out.cc1 = g.type == GateType::Xor ? hi : lo;
      return out;
    }
  }
  return out;
}

/// Observability of one input branch, given the consuming gate's stem
/// observability and the side-input controllabilities needed to open
/// the path through it.
std::uint32_t branch_observability(const Netlist& nl, NodeIndex n,
                                   std::uint32_t pin,
                                   const TestabilityScores& ts,
                                   const SiteTable& sites) {
  const Gate& g = nl.gate(n);
  std::uint32_t stem = ts.co[sites.stem_site(n)];
  std::uint32_t side = 0;
  switch (g.type) {
    case GateType::And:
    case GateType::Nand:
      for (std::size_t j = 0; j < g.fanins.size(); ++j) {
        if (j != pin) side = scoap_add(side, ts.cc1[g.fanins[j]]);
      }
      break;
    case GateType::Or:
    case GateType::Nor:
      for (std::size_t j = 0; j < g.fanins.size(); ++j) {
        if (j != pin) side = scoap_add(side, ts.cc0[g.fanins[j]]);
      }
      break;
    case GateType::Xor:
    case GateType::Xnor:
      // Any binary side values propagate a parity difference; pay the
      // cheaper of the two per side input.
      for (std::size_t j = 0; j < g.fanins.size(); ++j) {
        if (j != pin) {
          side = scoap_add(side,
                           std::min(ts.cc0[g.fanins[j]], ts.cc1[g.fanins[j]]));
        }
      }
      break;
    default:
      break;  // Buf, Not, Dff: path is always open
  }
  return scoap_add(scoap_add(stem, side), 1);
}

}  // namespace

TestabilityScores compute_testability(const Netlist& nl,
                                      const SiteTable& sites) {
  if (!nl.finalized()) {
    throw std::logic_error("compute_testability requires a finalized netlist");
  }
  const std::size_t count = nl.node_count();
  TestabilityScores ts;
  ts.cc0.assign(count, kScoapInf);
  ts.cc1.assign(count, kScoapInf);
  ts.co.assign(sites.site_count(), kScoapInf);
  ts.seq_depth.assign(count, kScoapInf);

  // Any minimum-cost path crosses each flip-flop at most once (scores
  // strictly increase along a path), so dff_count + 1 monotone sweeps
  // reach the fixpoint; +1 more verifies stability.
  const std::size_t max_sweeps = nl.dff_count() + 2;

  // ---- controllability: forward sweeps ------------------------------
  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    bool changed = false;
    for (NodeIndex n : nl.topo_order()) {
      const CcPair c = controllability_of(nl, n, ts.cc0, ts.cc1);
      if (c.cc0 < ts.cc0[n]) {
        ts.cc0[n] = c.cc0;
        changed = true;
      }
      if (c.cc1 < ts.cc1[n]) {
        ts.cc1[n] = c.cc1;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // ---- observability and sequential depth: backward sweeps ----------
  const auto& topo = nl.topo_order();
  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    bool changed = false;
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const NodeIndex n = *it;
      // Stem: directly at an output, or through the cheapest branch.
      std::uint32_t stem = nl.is_output(n) ? 0 : kScoapInf;
      std::uint32_t depth = nl.is_output(n) ? 0 : kScoapInf;
      for (const FanoutRef& fo : nl.fanouts(n)) {
        stem = std::min(stem, ts.co[sites.branch_site(fo.node, fo.pin)]);
        const bool crossing = nl.type(fo.node) == GateType::Dff;
        depth = std::min(depth, scoap_add(ts.seq_depth[fo.node],
                                          crossing ? 1 : 0));
      }
      if (stem < ts.co[sites.stem_site(n)]) {
        ts.co[sites.stem_site(n)] = stem;
        changed = true;
      }
      if (depth < ts.seq_depth[n]) {
        ts.seq_depth[n] = depth;
        changed = true;
      }
      // Branches of this gate's input pins.
      const std::size_t fanin_count = nl.gate(n).fanins.size();
      for (std::uint32_t pin = 0; pin < fanin_count; ++pin) {
        const std::uint32_t co = branch_observability(nl, n, pin, ts, sites);
        const std::size_t site = sites.branch_site(n, pin);
        if (co < ts.co[site]) {
          ts.co[site] = co;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }

  return ts;
}

std::uint32_t TestabilityScores::fault_difficulty(const SiteTable& sites,
                                                  const Netlist& netlist,
                                                  const Fault& fault) const {
  // Activation drives the site to the complement of the stuck value.
  NodeIndex driver = fault.site.node;
  if (!fault.site.is_stem()) {
    const auto& fanins = netlist.gate(fault.site.node).fanins;
    if (fault.site.pin >= fanins.size()) return kScoapInf;
    driver = fanins[fault.site.pin];
  }
  const std::uint32_t activation =
      fault.stuck_value ? cc0[driver] : cc1[driver];
  return scoap_add(activation, co[sites.site_of(fault.site)]);
}

namespace {

struct ScoapAggregates {
  std::uint32_t max_cc = 0;
  std::uint32_t max_co = 0;
  std::uint32_t max_depth = 0;
  std::size_t blocked_sites = 0;
};

ScoapAggregates aggregate(const Netlist& nl, const TestabilityScores& ts) {
  ScoapAggregates a;
  for (NodeIndex n = 0; n < nl.node_count(); ++n) {
    if (ts.cc0[n] != kScoapInf) a.max_cc = std::max(a.max_cc, ts.cc0[n]);
    if (ts.cc1[n] != kScoapInf) a.max_cc = std::max(a.max_cc, ts.cc1[n]);
    if (ts.seq_depth[n] != kScoapInf) {
      a.max_depth = std::max(a.max_depth, ts.seq_depth[n]);
    }
  }
  for (std::uint32_t co : ts.co) {
    if (co == kScoapInf) {
      ++a.blocked_sites;
    } else {
      a.max_co = std::max(a.max_co, co);
    }
  }
  return a;
}

}  // namespace

std::string testability_summary(const Netlist& nl,
                                const TestabilityScores& ts) {
  const ScoapAggregates a = aggregate(nl, ts);
  std::ostringstream os;
  os << "scoap: max CC " << a.max_cc << ", max CO " << a.max_co
     << ", max seq depth " << a.max_depth << ", blocked sites "
     << a.blocked_sites;
  return os.str();
}

void attach_testability(CircuitStats& stats, const Netlist& nl,
                        const TestabilityScores& ts) {
  const ScoapAggregates a = aggregate(nl, ts);
  stats.has_scoap = true;
  stats.scoap_max_cc = a.max_cc;
  stats.scoap_max_co = a.max_co;
  stats.scoap_max_seq_depth = a.max_depth;
  stats.scoap_blocked_sites = a.blocked_sites;
}

}  // namespace motsim
