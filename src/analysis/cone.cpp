#include "analysis/cone.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace motsim {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= kFnvPrime;
  }
  return h;
}

/// Divergence origin of a fault: the node whose output first carries a
/// faulty value. A branch fault's effect exists only inside the gate it
/// enters, so the gate node is the origin (a D-pin branch diverges at
/// the flip-flop's Q, which IS the flip-flop node).
NodeIndex divergence_origin(const Fault& fault) noexcept {
  return fault.site.node;
}

}  // namespace

NodeIndex activation_node(const Netlist& netlist, const Fault& fault) {
  const NodeIndex site = fault.site.node;
  if (site >= netlist.node_count()) return kNoNode;
  if (fault.site.is_stem()) return site;
  const auto& fanins = netlist.gate(site).fanins;
  if (fault.site.pin >= fanins.size()) return kNoNode;
  return fanins[fault.site.pin];
}

ConeWalker::ConeWalker(const Netlist& netlist) : netlist_(&netlist) {
  if (!netlist.finalized()) {
    throw std::logic_error("ConeWalker requires a finalized netlist");
  }
  const std::size_t n = netlist.node_count();
  mark_.assign(n, 0);

  // Flatten both adjacencies into CSR form once; every later reach is
  // a cache-friendly scan over these arrays.
  fwd_offset_.assign(n + 1, 0);
  bwd_offset_.assign(n + 1, 0);
  for (NodeIndex i = 0; i < n; ++i) {
    fwd_offset_[i + 1] =
        fwd_offset_[i] + static_cast<std::uint32_t>(netlist.fanouts(i).size());
    std::uint32_t fanin_count = 0;
    for (NodeIndex f : netlist.gate(i).fanins) {
      if (f != kNoNode) ++fanin_count;
    }
    bwd_offset_[i + 1] = bwd_offset_[i] + fanin_count;
  }
  fwd_edges_.reserve(fwd_offset_[n]);
  bwd_edges_.reserve(bwd_offset_[n]);
  for (NodeIndex i = 0; i < n; ++i) {
    for (const FanoutRef& fo : netlist.fanouts(i)) {
      fwd_edges_.push_back(fo.node);
    }
    for (NodeIndex f : netlist.gate(i).fanins) {
      if (f != kNoNode) bwd_edges_.push_back(f);
    }
  }
}

void ConeWalker::run(ConeDir dir, const NodeIndex* seeds, std::size_t count,
                     bool cross_dffs) {
  if (++gen_ == 0) {
    std::fill(mark_.begin(), mark_.end(), 0u);
    gen_ = 1;
  }
  visited_.clear();

  const std::vector<std::uint32_t>& offset =
      dir == ConeDir::Forward ? fwd_offset_ : bwd_offset_;
  const std::vector<NodeIndex>& edges =
      dir == ConeDir::Forward ? fwd_edges_ : bwd_edges_;

  for (std::size_t i = 0; i < count; ++i) {
    const NodeIndex s = seeds[i];
    if (s == kNoNode || mark_[s] == gen_) continue;
    mark_[s] = gen_;
    visited_.push_back(s);
  }
  const std::size_t seeded = visited_.size();

  // BFS over the visited_ vector itself (it doubles as the queue).
  for (std::size_t head = 0; head < visited_.size(); ++head) {
    const NodeIndex n = visited_[head];
    if (!cross_dffs && head >= seeded &&
        netlist_->type(n) == GateType::Dff) {
      // Flip-flop boundary: marked, not expanded (seeds always are).
      continue;
    }
    for (std::uint32_t e = offset[n]; e < offset[n + 1]; ++e) {
      const NodeIndex m = edges[e];
      if (mark_[m] != gen_) {
        mark_[m] = gen_;
        visited_.push_back(m);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ConeAnalysis
// ---------------------------------------------------------------------------

ConeAnalysis::ConeAnalysis(const Netlist& netlist)
    : netlist_(&netlist), walker_(netlist) {}

ConeSummary ConeAnalysis::fault_cone(const Fault& fault) {
  const Netlist& nl = *netlist_;
  ConeSummary s;

  walker_.run(ConeDir::Forward, {divergence_origin(fault)});
  s.forward_size = walker_.visited().size();

  // Signature over the observation set, position-indexed so two faults
  // match exactly when they can influence the same outputs/flip-flops.
  std::uint64_t h = kFnvOffset;
  const auto& outputs = nl.outputs();
  for (std::size_t j = 0; j < outputs.size(); ++j) {
    if (!walker_.reached(outputs[j])) continue;
    ++s.outputs_reached;
    h = fnv1a_u64(h, j);
  }
  const auto& dffs = nl.dffs();
  for (std::size_t j = 0; j < dffs.size(); ++j) {
    if (!walker_.reached(dffs[j])) continue;
    ++s.dffs_reached;
    h = fnv1a_u64(h, (std::uint64_t{1} << 32) | j);
  }
  s.signature = h;

  const NodeIndex act = activation_node(nl, fault);
  if (act != kNoNode) {
    walker_.run(ConeDir::Backward, {act});
    s.support_size = walker_.visited().size();
  }
  return s;
}

std::vector<ConeCluster> ConeAnalysis::cluster_faults(
    const std::vector<Fault>& faults) {
  std::vector<ConeCluster> clusters;
  std::unordered_map<std::uint64_t, std::size_t> by_signature;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const ConeSummary s = fault_cone(faults[i]);
    const auto [it, inserted] =
        by_signature.try_emplace(s.signature, clusters.size());
    if (inserted) {
      clusters.push_back(ConeCluster{s.signature, {}, s});
    }
    clusters[it->second].fault_indices.push_back(i);
  }
  return clusters;
}

std::vector<std::size_t> cluster_live_order(
    const Netlist& netlist, const std::vector<Fault>& faults,
    const std::vector<std::size_t>& live) {
  ConeAnalysis cones(netlist);
  // Group by signature, preserving the first-occurrence order of the
  // signatures and the relative order of members; a stable partition,
  // never a sort, so the result is reproducible byte for byte.
  std::vector<std::size_t> order;
  order.reserve(live.size());
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> members;
  std::vector<std::uint64_t> signature_order;
  for (const std::size_t g : live) {
    const std::uint64_t sig = cones.fault_cone(faults[g]).signature;
    auto [it, inserted] = members.try_emplace(sig);
    if (inserted) signature_order.push_back(sig);
    it->second.push_back(g);
  }
  for (const std::uint64_t sig : signature_order) {
    const std::vector<std::size_t>& m = members[sig];
    order.insert(order.end(), m.begin(), m.end());
  }
  return order;
}

}  // namespace motsim
