#include "analysis/static_xred.h"

#include <stdexcept>

#include "analysis/cone.h"

namespace motsim {

namespace {

/// Negation on the constant lattice (Unknown maps to itself).
ConstVal const_not(ConstVal v) noexcept {
  switch (v) {
    case ConstVal::Zero:
      return ConstVal::One;
    case ConstVal::One:
      return ConstVal::Zero;
    case ConstVal::Unknown:
      break;
  }
  return ConstVal::Unknown;
}

ConstVal eval_const_gate(const Netlist& nl, NodeIndex n,
                         const std::vector<ConstVal>& val) {
  const Gate& g = nl.gate(n);
  switch (g.type) {
    case GateType::Const0:
      return ConstVal::Zero;
    case GateType::Const1:
      return ConstVal::One;
    case GateType::Input:
    case GateType::Dff:
      return ConstVal::Unknown;
    default:
      break;
  }
  if (g.fanins.empty()) return ConstVal::Unknown;

  const bool invert = g.type == GateType::Nand || g.type == GateType::Nor ||
                      g.type == GateType::Not || g.type == GateType::Xnor;
  ConstVal out = ConstVal::Unknown;
  switch (g.type) {
    case GateType::Buf:
    case GateType::Not:
      out = g.fanins[0] == kNoNode ? ConstVal::Unknown : val[g.fanins[0]];
      break;
    case GateType::And:
    case GateType::Nand: {
      bool all_one = true;
      for (NodeIndex f : g.fanins) {
        const ConstVal v = f == kNoNode ? ConstVal::Unknown : val[f];
        if (v == ConstVal::Zero) return invert ? ConstVal::One : ConstVal::Zero;
        if (v != ConstVal::One) all_one = false;
      }
      out = all_one ? ConstVal::One : ConstVal::Unknown;
      break;
    }
    case GateType::Or:
    case GateType::Nor: {
      bool all_zero = true;
      for (NodeIndex f : g.fanins) {
        const ConstVal v = f == kNoNode ? ConstVal::Unknown : val[f];
        if (v == ConstVal::One) return invert ? ConstVal::Zero : ConstVal::One;
        if (v != ConstVal::Zero) all_zero = false;
      }
      out = all_zero ? ConstVal::Zero : ConstVal::Unknown;
      break;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      // Parity is constant only when every operand is constant.
      bool parity = false;
      for (NodeIndex f : g.fanins) {
        const ConstVal v = f == kNoNode ? ConstVal::Unknown : val[f];
        if (v == ConstVal::Unknown) return ConstVal::Unknown;
        parity ^= (v == ConstVal::One);
      }
      out = parity ? ConstVal::One : ConstVal::Zero;
      break;
    }
    default:
      break;
  }
  return invert ? const_not(out) : out;
}

}  // namespace

std::vector<ConstVal> structural_constants(const Netlist& netlist,
                                           const std::vector<NodeIndex>& topo) {
  std::vector<ConstVal> val(netlist.node_count(), ConstVal::Unknown);
  for (NodeIndex n : topo) {
    val[n] = eval_const_gate(netlist, n, val);
  }
  return val;
}

std::vector<ConstVal> structural_constants(const Netlist& netlist) {
  if (!netlist.finalized()) {
    throw std::logic_error("structural_constants requires a finalized netlist");
  }
  return structural_constants(netlist, netlist.topo_order());
}

StaticXRedAnalysis::StaticXRedAnalysis(const Netlist& netlist)
    : netlist_(netlist) {
  if (!netlist.finalized()) {
    throw std::logic_error("StaticXRedAnalysis requires a finalized netlist");
  }
  // Backward reachability from the frame outputs {POs} ∪ {DFFs}: a
  // fault effect on an unreached node can never arrive at an
  // observation point, in this frame or any later one. Seeding the
  // flip-flop node (rather than only its D fanin) mirrors ID_X-red's
  // treatment of D-pins as secondary outputs. The reach is the shared
  // cone kernel (analysis/cone.h).
  std::vector<NodeIndex> seeds = netlist.outputs();
  seeds.insert(seeds.end(), netlist.dffs().begin(), netlist.dffs().end());
  ConeWalker walker(netlist);
  walker.run(ConeDir::Backward, seeds);
  observable_.assign(netlist.node_count(), 0);
  for (const NodeIndex n : walker.visited()) observable_[n] = 1;

  const_of_ = structural_constants(netlist);
}

bool StaticXRedAnalysis::is_static_x_redundant(const Fault& fault) const {
  const NodeIndex n = fault.site.node;
  const ConstVal stuck =
      fault.stuck_value ? ConstVal::One : ConstVal::Zero;
  if (fault.site.is_stem()) {
    // Rule 1: nothing downstream of the stem reaches an observation
    // point. Rule 2: the net's fault-free value is the stuck value in
    // every frame, so the fault is never activated.
    return observable_[n] == 0 || const_of_[n] == stuck;
  }
  // Branch fault on pin `pin` of gate n: the effect exists only inside
  // gate n, so n's observability gates rule 1; the fault-free value of
  // the branch is the driver's value, so the driver's constant gates
  // rule 2.
  if (observable_[n] == 0) return true;
  const auto& fanins = netlist_.gate(n).fanins;
  if (fault.site.pin >= fanins.size()) return false;
  const NodeIndex driver = fanins[fault.site.pin];
  return driver != kNoNode && const_of_[driver] == stuck;
}

std::vector<FaultStatus> StaticXRedAnalysis::classify(
    const std::vector<Fault>& faults) const {
  std::vector<FaultStatus> status(faults.size(), FaultStatus::Undetected);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (is_static_x_redundant(faults[i])) {
      status[i] = FaultStatus::StaticXRed;
    }
  }
  return status;
}

std::size_t StaticXRedAnalysis::count(const std::vector<Fault>& faults) const {
  std::size_t n = 0;
  for (const Fault& f : faults) {
    if (is_static_x_redundant(f)) ++n;
  }
  return n;
}

}  // namespace motsim
