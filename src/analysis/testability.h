#ifndef MOTSIM_ANALYSIS_TESTABILITY_H
#define MOTSIM_ANALYSIS_TESTABILITY_H

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.h"
#include "faults/fault.h"
#include "faults/fault_list.h"

namespace motsim {

/// Saturation value for unattainable SCOAP scores (untestable nets).
inline constexpr std::uint32_t kScoapInf = 0xFFFFFFu;

/// Saturating add on SCOAP scores.
[[nodiscard]] constexpr std::uint32_t scoap_add(std::uint32_t a,
                                                std::uint32_t b) noexcept {
  const std::uint32_t s = a + b;
  return s >= kScoapInf ? kScoapInf : s;
}

/// SCOAP-style testability measures (Goldstein's controllability /
/// observability, collapsed to a single combined measure where a
/// flip-flop crossing costs one like a gate does). All scores saturate
/// at kScoapInf; a saturated score means the value can never be
/// *guaranteed* from the unknown power-up state. That covers the
/// purely structural cases (observing a dead cone, setting a constant
/// net) and the sequential ones: a feedback loop whose only entry is
/// a flip-flop's power-up value — e.g. s27's G13=0 needs G12=1 needs
/// G7=0 needs G13=0 one frame earlier — scores kScoapInf because no
/// input sequence can establish it in three-valued logic, even though
/// a lucky power-up state produces it.
struct TestabilityScores {
  /// Cost of driving each node's net to 0 / 1 (indexed by NodeIndex).
  std::vector<std::uint32_t> cc0;
  std::vector<std::uint32_t> cc1;
  /// Cost of propagating each fault site's value to a primary output
  /// (indexed by SiteTable site index; stems first, then branches).
  std::vector<std::uint32_t> co;
  /// Minimum number of flip-flops on any path from the node to a
  /// primary output — the number of extra frames needed before the
  /// node's value can be observed (kScoapInf if none).
  std::vector<std::uint32_t> seq_depth;

  /// Combined detection difficulty of one stuck-at fault: cost of
  /// controlling the site to the activation value plus cost of
  /// observing the site. kScoapInf is a *sound* untestability verdict
  /// for three-valued simulation: an X01-detected fault yields a
  /// finite score derivation (activation value and every side input
  /// along the sensitized path were established from all-X, and
  /// establishment implies finite controllability by induction over
  /// frames), so an infinite-score fault is detectable — if at all —
  /// only by the symbolic MOT strategies. tests/test_analysis.cpp
  /// enforces this against FaultSim3.
  [[nodiscard]] std::uint32_t fault_difficulty(const SiteTable& sites,
                                               const Netlist& netlist,
                                               const Fault& fault) const;
};

/// Computes all scores by forward (controllability) and backward
/// (observability, sequential depth) fixpoint iteration over the
/// levelized graph; flip-flop feedback makes both lattices iterate to
/// convergence. Requires a finalized netlist.
[[nodiscard]] TestabilityScores compute_testability(const Netlist& netlist,
                                                    const SiteTable& sites);

/// Compact per-circuit summary ("scoap: max CC …, max CO …, …") used
/// by the lint CLI.
[[nodiscard]] std::string testability_summary(const Netlist& netlist,
                                              const TestabilityScores& scores);

struct CircuitStats;  // circuit/stats.h

/// Fills the scoap_* fields of a CircuitStats from computed scores
/// (sets has_scoap).
void attach_testability(CircuitStats& stats, const Netlist& netlist,
                        const TestabilityScores& scores);

}  // namespace motsim

#endif  // MOTSIM_ANALYSIS_TESTABILITY_H
