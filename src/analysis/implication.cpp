#include "analysis/implication.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace motsim {

namespace {

/// Controlling input value of a gate type, -1 when it has none.
int controlling_value(GateType t) noexcept {
  switch (t) {
    case GateType::And:
    case GateType::Nand:
      return 0;
    case GateType::Or:
    case GateType::Nor:
      return 1;
    default:
      return -1;
  }
}

/// Output value of a gate when a controlling input is present, -1 when
/// the type has no controlling value.
int controlled_output(GateType t) noexcept {
  switch (t) {
    case GateType::And:
      return 0;
    case GateType::Nand:
      return 1;
    case GateType::Or:
      return 1;
    case GateType::Nor:
      return 0;
    default:
      return -1;
  }
}

bool adjacent(const Netlist& nl, NodeIndex a, NodeIndex b) {
  for (NodeIndex f : nl.gate(a).fanins) {
    if (f == b) return true;
  }
  for (NodeIndex f : nl.gate(b).fanins) {
    if (f == a) return true;
  }
  return false;
}

/// Settled-constant evaluation of one combinational gate: the result
/// holds from the frame where every operand it depends on has settled
/// (for a controlling operand, from that operand's own frame).
SettledConst eval_settled_gate(const Netlist& nl, NodeIndex n,
                               const std::vector<SettledConst>& val) {
  const Gate& g = nl.gate(n);
  if (g.fanins.empty()) return {};
  const bool invert = g.type == GateType::Nand || g.type == GateType::Nor ||
                      g.type == GateType::Not || g.type == GateType::Xnor;
  auto flip = [invert](ConstVal v) {
    if (!invert) return v;
    return v == ConstVal::Zero ? ConstVal::One : ConstVal::Zero;
  };
  switch (g.type) {
    case GateType::Buf:
    case GateType::Not: {
      const SettledConst& in = val[g.fanins[0]];
      if (in.value == ConstVal::Unknown) return {};
      return {flip(in.value), in.from_frame};
    }
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor: {
      const ConstVal ctrl = controlling_value(g.type) == 1 ? ConstVal::One
                                                           : ConstVal::Zero;
      const ConstVal nctrl =
          ctrl == ConstVal::One ? ConstVal::Zero : ConstVal::One;
      std::uint32_t ctrl_frame = 0;
      bool has_ctrl = false;
      std::uint32_t all_frame = 0;
      bool all_nctrl = true;
      for (NodeIndex f : g.fanins) {
        if (f == kNoNode) return {};
        const SettledConst& in = val[f];
        if (in.value == ctrl) {
          if (!has_ctrl || in.from_frame < ctrl_frame) {
            ctrl_frame = in.from_frame;
          }
          has_ctrl = true;
        }
        if (in.value != nctrl) all_nctrl = false;
        all_frame = std::max(all_frame, in.from_frame);
      }
      const ConstVal z = controlled_output(g.type) == 1 ? ConstVal::One
                                                        : ConstVal::Zero;
      if (has_ctrl) return {z, ctrl_frame};
      if (all_nctrl) {
        return {z == ConstVal::One ? ConstVal::Zero : ConstVal::One,
                all_frame};
      }
      return {};
    }
    case GateType::Xor:
    case GateType::Xnor: {
      bool parity = false;
      std::uint32_t frame = 0;
      for (NodeIndex f : g.fanins) {
        if (f == kNoNode) return {};
        const SettledConst& in = val[f];
        if (in.value == ConstVal::Unknown) return {};
        parity ^= (in.value == ConstVal::One);
        frame = std::max(frame, in.from_frame);
      }
      return {flip(parity ? ConstVal::One : ConstVal::Zero), frame};
    }
    default:
      return {};
  }
}

}  // namespace

std::vector<SettledConst> settle_constants(
    const Netlist& netlist, const std::vector<ConstVal>& constants) {
  const std::size_t n_nodes = netlist.node_count();
  std::vector<SettledConst> settled(n_nodes);
  for (NodeIndex n = 0; n < n_nodes; ++n) {
    if (constants[n] != ConstVal::Unknown) settled[n] = {constants[n], 1};
  }
  bool changed = true;
  while (changed) {
    changed = false;
    // A flip-flop output carries its D input's settled value one frame
    // later (frame 1 itself stays unknown: power-up is unconstrained).
    for (NodeIndex d : netlist.dffs()) {
      if (settled[d].value != ConstVal::Unknown) continue;
      const NodeIndex in = netlist.gate(d).fanins.empty()
                               ? kNoNode
                               : netlist.gate(d).fanins[0];
      if (in == kNoNode || settled[in].value == ConstVal::Unknown) continue;
      settled[d] = {settled[in].value, settled[in].from_frame + 1};
      changed = true;
    }
    for (NodeIndex n : netlist.topo_order()) {
      if (is_frame_input(netlist.type(n))) continue;
      if (settled[n].value != ConstVal::Unknown) continue;
      const SettledConst s = eval_settled_gate(netlist, n, settled);
      if (s.value != ConstVal::Unknown) {
        settled[n] = s;
        changed = true;
      }
    }
  }
  return settled;
}

ImplicationEngine::ImplicationEngine(const Netlist& netlist)
    : netlist_(&netlist), cone_(netlist) {
  if (!netlist.finalized()) {
    throw std::logic_error("ImplicationEngine requires a finalized netlist");
  }
  const std::size_t n = netlist.node_count();
  epoch_of_.assign(n, 0);
  val_.assign(n, 0);
  r1_epoch_.assign(n, 0);

  const_ = structural_constants(netlist);
  for (NodeIndex i = 0; i < n; ++i) {
    const GateType t = netlist.type(i);
    if (t == GateType::Const0 || t == GateType::Const1) continue;
    if (const_[i] != ConstVal::Unknown) ++stats_.structural_constants;
  }

  count_direct_implications();
  run_static_learning();
  compute_po_cone();
  compute_settled();

  for (NodeIndex h = 0; h < n; ++h) {
    const int c = controlling_value(netlist.type(h));
    if (c < 0) continue;
    for (NodeIndex f : netlist.gate(h).fanins) {
      if (f == kNoNode) continue;
      if (const_[f] == (c == 1 ? ConstVal::One : ConstVal::Zero)) {
        has_const_blockers_ = true;
        break;
      }
    }
    if (has_const_blockers_) break;
  }

  for (NodeIndex i = 0; i < n; ++i) {
    if (!is_frame_input(netlist.type(i)) &&
        const_[i] != ConstVal::Unknown) {
      ++tied_count_;
    }
  }
}

void ImplicationEngine::count_direct_implications() {
  for (NodeIndex n = 0; n < netlist_->node_count(); ++n) {
    const Gate& g = netlist_->gate(n);
    switch (g.type) {
      case GateType::Buf:
      case GateType::Not:
        stats_.direct_implications += 4;
        break;
      case GateType::And:
      case GateType::Nand:
      case GateType::Or:
      case GateType::Nor:
        stats_.direct_implications += 2 * g.fanins.size();
        break;
      default:
        break;
    }
  }
}

int ImplicationEngine::value_of(NodeIndex n) const {
  if (epoch_of_[n] == epoch_) return val_[n];
  if (const_[n] == ConstVal::Zero) return 0;
  if (const_[n] == ConstVal::One) return 1;
  return -1;
}

bool ImplicationEngine::assign(NodeIndex n, int v) const {
  const int cur = value_of(n);
  if (cur == v) return true;
  if (cur != -1) return false;
  epoch_of_[n] = epoch_;
  val_[n] = static_cast<std::uint8_t>(v);
  queue_.push_back(n);
  return true;
}

bool ImplicationEngine::examine_gate(NodeIndex h) const {
  const Gate& g = netlist_->gate(h);
  switch (g.type) {
    case GateType::Buf:
    case GateType::Not: {
      const bool inv = g.type == GateType::Not;
      const NodeIndex d = g.fanins[0];
      const int in = value_of(d);
      const int out = value_of(h);
      if (in != -1 && !assign(h, ((in == 1) != inv) ? 1 : 0)) return false;
      if (out != -1 && !assign(d, ((out == 1) != inv) ? 1 : 0)) return false;
      return true;
    }
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor: {
      const int c = controlling_value(g.type);
      const int z = controlled_output(g.type);
      const int nz = 1 - z;
      int unknown = 0;
      NodeIndex last = kNoNode;
      bool any_c = false;
      for (NodeIndex d : g.fanins) {
        const int v = value_of(d);
        if (v == -1) {
          ++unknown;
          last = d;
        } else if (v == c) {
          any_c = true;
        }
      }
      if (any_c) {
        if (!assign(h, z)) return false;
      } else if (unknown == 0) {
        if (!assign(h, nz)) return false;
      }
      const int out = value_of(h);
      if (out == nz) {
        // The non-controlling output forces every input non-controlling.
        for (NodeIndex d : g.fanins) {
          if (!assign(d, 1 - c)) return false;
        }
      } else if (out == z && !any_c && unknown == 1) {
        // All other inputs non-controlling: the last one must control.
        if (!assign(last, c)) return false;
      }
      return true;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      int unknown = 0;
      NodeIndex last = kNoNode;
      bool parity = g.type == GateType::Xnor;  // fold the inversion in
      for (NodeIndex d : g.fanins) {
        const int v = value_of(d);
        if (v == -1) {
          ++unknown;
          last = d;
        } else {
          parity ^= (v == 1);
        }
      }
      if (unknown == 0) {
        if (!assign(h, parity ? 1 : 0)) return false;
      } else if (unknown == 1) {
        const int out = value_of(h);
        if (out != -1 && !assign(last, ((out == 1) != parity) ? 1 : 0)) {
          return false;
        }
      }
      return true;
    }
    default:
      return true;  // frame inputs have no local rule
  }
}

bool ImplicationEngine::drain() const {
  std::size_t head = 0;
  while (head < queue_.size()) {
    const NodeIndex n = queue_[head++];
    const int v = val_[n];
    for (const std::uint32_t to : learned_[lit(n, v == 1)]) {
      if (!assign(static_cast<NodeIndex>(to >> 1),
                  static_cast<int>(to & 1u))) {
        return false;
      }
    }
    if (!is_frame_input(netlist_->type(n)) && !examine_gate(n)) return false;
    for (const FanoutRef& fo : netlist_->fanouts(n)) {
      if (!is_frame_input(netlist_->type(fo.node)) &&
          !examine_gate(fo.node)) {
        return false;
      }
    }
  }
  return true;
}

bool ImplicationEngine::propagate(NodeIndex n, bool v) const {
  if (++epoch_ == 0) {
    std::fill(epoch_of_.begin(), epoch_of_.end(), 0u);
    epoch_ = 1;
  }
  queue_.clear();
  if (!assign(n, v ? 1 : 0)) return false;
  return drain();
}

void ImplicationEngine::run_static_learning() {
  const std::size_t n_nodes = netlist_->node_count();
  learned_.assign(2 * n_nodes, {});
  std::unordered_set<std::uint64_t> seen;
  // Safety cap: pathological reconvergence patterns could otherwise
  // store a quadratic number of edges.
  constexpr std::size_t kMaxLearnedEdges = std::size_t{1} << 21;

  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeIndex n = 0; n < n_nodes; ++n) {
      const GateType t = netlist_->type(n);
      for (int v = 0; v < 2; ++v) {
        if (const_[n] != ConstVal::Unknown) break;
        if (!propagate(n, v == 1)) {
          // Frame-locally contradictory assumption: n carries !v in
          // every frame. Frame inputs are free variables of the frame
          // function, so a conflict can only arise on internal nets;
          // skip defensively regardless.
          if (is_frame_input(t)) continue;
          const_[n] = (v == 1) ? ConstVal::Zero : ConstVal::One;
          ++stats_.learned_constants;
          changed = true;
          continue;
        }
        // Contrapositive (SOCRATES) learning over the trail: every
        // non-adjacent implied literal m = w yields the learned edge
        // (m = !w) -> (n = !v), usable by later propagations.
        for (const NodeIndex m : queue_) {
          if (m == n || adjacent(*netlist_, n, m)) continue;
          if (stats_.learned_implications >= kMaxLearnedEdges) break;
          const int w = val_[m];
          const std::uint32_t from = lit(m, w == 0);
          const std::uint32_t to = lit(n, v == 0);
          const std::uint64_t key = (std::uint64_t{from} << 32) | to;
          if (!seen.insert(key).second) continue;
          learned_[from].push_back(to);
          ++stats_.learned_implications;
        }
      }
    }
  }
}

void ImplicationEngine::compute_po_cone() {
  // Unlike StaticXRedAnalysis (which conservatively seeds flip-flops
  // as observation points), this cone crosses flip-flops backwards:
  // po_cone_[n] == 0 means no primary output is structurally reachable
  // from n in ANY number of frames. The reach itself is the shared
  // cone kernel; the bitmap persists across later walker reuse (R0).
  cone_.run(ConeDir::Backward, netlist_->outputs());
  po_cone_.assign(netlist_->node_count(), 0);
  for (const NodeIndex n : cone_.visited()) po_cone_[n] = 1;
}

void ImplicationEngine::compute_settled() {
  settled_ = settle_constants(*netlist_, const_);
  for (NodeIndex n = 0; n < netlist_->node_count(); ++n) {
    if (settled_[n].value != ConstVal::Unknown &&
        const_[n] == ConstVal::Unknown) {
      ++stats_.settled_constants;
    }
  }
}

std::vector<ConstVal> ImplicationEngine::tied_constants() const {
  std::vector<ConstVal> out(const_);
  for (NodeIndex n = 0; n < out.size(); ++n) {
    if (is_frame_input(netlist_->type(n))) out[n] = ConstVal::Unknown;
  }
  return out;
}

bool ImplicationEngine::implies(NodeIndex a, bool av, NodeIndex b,
                                bool bv) const {
  if (a >= netlist_->node_count() || b >= netlist_->node_count()) {
    throw std::out_of_range("ImplicationEngine::implies: bad node index");
  }
  if (!propagate(a, av)) return true;
  return value_of(b) == (bv ? 1 : 0);
}

bool ImplicationEngine::contradicts(NodeIndex node, bool value) const {
  if (node >= netlist_->node_count()) {
    throw std::out_of_range("ImplicationEngine::contradicts: bad node index");
  }
  return !propagate(node, value);
}

void ImplicationEngine::compute_r0(NodeIndex origin) const {
  cone_.run(ConeDir::Forward, {origin});
}

bool ImplicationEngine::in_r0(NodeIndex n) const {
  return cone_.reached(n);
}

bool ImplicationEngine::gate_blocked(NodeIndex h, std::uint32_t p,
                                     bool use_assignment) const {
  const int c = controlling_value(netlist_->type(h));
  if (c < 0) return false;
  const Gate& g = netlist_->gate(h);
  for (std::uint32_t q = 0; q < g.fanins.size(); ++q) {
    if (q == p) continue;
    const NodeIndex d = g.fanins[q];
    if (d == kNoNode || in_r0(d)) continue;
    int dv = -1;
    if (use_assignment) {
      dv = value_of(d);
    } else if (const_[d] != ConstVal::Unknown) {
      dv = const_[d] == ConstVal::One ? 1 : 0;
    }
    if (dv == c) return true;
  }
  return false;
}

bool ImplicationEngine::refined_reaches_po(NodeIndex origin,
                                           std::uint32_t origin_pin) const {
  if (++r1_gen_ == 0) {
    std::fill(r1_epoch_.begin(), r1_epoch_.end(), 0u);
    r1_gen_ = 1;
  }
  // A branch fault's divergence first has to cross the origin gate
  // itself; a permanently forced side input already stops it there.
  if (origin_pin != kStemPin &&
      gate_blocked(origin, origin_pin, /*use_assignment=*/false)) {
    return false;
  }
  std::vector<NodeIndex> stack;
  auto visit = [&](NodeIndex s) {
    r1_epoch_[s] = r1_gen_;
    stack.push_back(s);
    return netlist_->is_output(s);
  };
  if (visit(origin)) return true;
  while (!stack.empty()) {
    const NodeIndex s = stack.back();
    stack.pop_back();
    for (const FanoutRef& fo : netlist_->fanouts(s)) {
      if (r1_epoch_[fo.node] == r1_gen_) continue;
      if (!is_frame_input(netlist_->type(fo.node)) &&
          gate_blocked(fo.node, fo.pin, /*use_assignment=*/false)) {
        continue;
      }
      if (visit(fo.node)) return true;
    }
  }
  return false;
}

bool ImplicationEngine::is_static_untestable(const Fault& fault) const {
  const NodeIndex site = fault.site.node;
  if (site >= netlist_->node_count()) return false;
  NodeIndex act_node = site;
  const NodeIndex origin = site;
  std::uint32_t origin_pin = kStemPin;
  if (!fault.site.is_stem()) {
    const auto& fanins = netlist_->gate(site).fanins;
    if (fault.site.pin >= fanins.size()) return false;
    act_node = fanins[fault.site.pin];
    if (act_node == kNoNode) return false;
    origin_pin = fault.site.pin;
  }

  // Rule 1: no primary output is structurally reachable from the
  // divergence origin in any number of frames, so the faulty machine's
  // output sequence equals the fault-free one for every input sequence
  // and every (common) initial state — undetectable under SOT, rMOT,
  // MOT and three-valued simulation alike.
  if (po_cone_[origin] == 0) return true;

  // Rule 2: activation needs the activation net at the opposite of the
  // stuck value in some frame; a frame-local contradiction (constant,
  // directly implied or learned) rules every frame out.
  const bool act_val = !fault.stuck_value;
  if (!propagate(act_node, act_val)) return true;

  // The activation assignment stays readable below (rule 3).
  compute_r0(origin);

  // Rule 3 (blocked chain, frame-local): in any frame where the fault
  // is activated, the divergence is confined to the unique-fanout
  // chain from the origin; a chain gate forced by a side input outside
  // the fault cone (in_r0 excluded — a "blocking" net the divergence
  // itself can reach proves nothing) kills it before any observation
  // point. Implications do not cross frame boundaries, so the walk
  // stops at flip-flops; a branch fault on a D pin diverges only in
  // the NEXT frame, so the activation assignment may not be used at
  // all for it.
  const bool origin_is_dff = netlist_->type(origin) == GateType::Dff;
  if (origin_pin == kStemPin || !origin_is_dff) {
    if (origin_pin != kStemPin &&
        gate_blocked(origin, origin_pin, /*use_assignment=*/true)) {
      return true;
    }
    NodeIndex cur = origin;
    while (true) {
      if (netlist_->is_output(cur)) break;
      const auto& fo = netlist_->fanouts(cur);
      if (fo.size() != 1) break;
      const NodeIndex h = fo[0].node;
      if (netlist_->type(h) == GateType::Dff) break;
      if (gate_blocked(h, fo[0].pin, /*use_assignment=*/true)) return true;
      cur = h;
    }
  }

  // Rule 4 (constant-blocked observability, every-frame): like rule 1
  // but with edges through gates permanently forced by an every-frame
  // constant outside the fault cone removed.
  return has_const_blockers_ && !refined_reaches_po(origin, origin_pin);
}

std::size_t ImplicationEngine::classify(const std::vector<Fault>& faults,
                                        std::vector<FaultStatus>& status) const {
  if (status.size() != faults.size()) {
    throw std::invalid_argument(
        "ImplicationEngine::classify: status/faults size mismatch");
  }
  std::size_t upgraded = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (status[i] != FaultStatus::Undetected) continue;
    if (is_static_untestable(faults[i])) {
      status[i] = FaultStatus::StaticUntestable;
      ++upgraded;
    }
  }
  return upgraded;
}

}  // namespace motsim
