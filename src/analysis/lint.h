#ifndef MOTSIM_ANALYSIS_LINT_H
#define MOTSIM_ANALYSIS_LINT_H

#include "analysis/diagnostics.h"
#include "circuit/netlist.h"

namespace motsim {

/// Structural lint over a netlist, finalized or not (it builds its own
/// fanout and ordering views, so it can diagnose exactly the circuits
/// finalize() rejects). Emitted diagnostic ids — catalog and rationale
/// in docs/ANALYSIS.md:
///
///   lint.comb-cycle       error    combinational feedback loop
///   lint.undriven-pin     error    gate input left unset (kNoNode or
///                                  missing fanins entirely)
///   lint.floating-input   warning  primary input that drives nothing
///   lint.dangling-net     warning  non-input net with no sink that is
///                                  not a primary output (dead logic)
///   lint.unobservable     warning  node from which no output and no
///                                  flip-flop is reachable
///   lint.const-gate       warning  logic gate whose output is forced
///                                  constant by its fanins
///   lint.duplicate-fanin  warning  gate fed twice by the same net
///
/// A clean report (no findings at all) is the expectation for every
/// registry circuit; see tests/test_analysis.cpp.
[[nodiscard]] DiagnosticReport run_lint(const Netlist& netlist);

}  // namespace motsim

#endif  // MOTSIM_ANALYSIS_LINT_H
