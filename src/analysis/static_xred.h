#ifndef MOTSIM_ANALYSIS_STATIC_XRED_H
#define MOTSIM_ANALYSIS_STATIC_XRED_H

#include <cstdint>
#include <vector>

#include "circuit/netlist.h"
#include "faults/fault.h"

namespace motsim {

/// Structurally derived constant value of a net (three-point lattice;
/// Unknown is the top element, not a logic X).
enum class ConstVal : std::uint8_t {
  Unknown,
  Zero,
  One,
};

/// Combinational structural constant propagation over an explicit
/// topological order (any order where every non-flip-flop gate appears
/// after its fanins; nodes absent from `topo` stay Unknown). Const0 and
/// Const1 sources seed the lattice; primary inputs and flip-flop
/// outputs are Unknown — a flip-flop's initial state is unknown, so
/// nothing sequential is ever assumed constant. Because every derived
/// constant rests on binary premises only (controlling values and
/// fully-binary operand sets), a net marked Zero/One here carries that
/// exact binary value in *every* frame of *any* three-valued or
/// symbolic simulation.
[[nodiscard]] std::vector<ConstVal> structural_constants(
    const Netlist& netlist, const std::vector<NodeIndex>& topo);

/// Convenience overload using the finalized netlist's own topo order.
[[nodiscard]] std::vector<ConstVal> structural_constants(
    const Netlist& netlist);

/// Sequence-independent over-approximation of the paper's ID_X-red
/// pass: classifies a stuck-at fault as statically X-redundant when no
/// test sequence whatsoever can detect it under the multiple
/// observation time strategy. Two purely structural rules are used:
///
///  1. unobservable site — no primary output and no flip-flop is
///     reachable from the fault site, so a fault effect can never
///     propagate to an observation point (in any frame);
///  2. constant site — the fault-free value of the site equals the
///     stuck value in every frame (structural_constants), so the fault
///     is never activated.
///
/// Both rules are sound w.r.t. the per-sequence ID_X-red verdict: for
/// every input sequence, a fault flagged here is also flagged by
/// run_id_x_red (see docs/ANALYSIS.md for the argument). Requires a
/// finalized netlist.
class StaticXRedAnalysis {
 public:
  explicit StaticXRedAnalysis(const Netlist& netlist);

  /// True if any output or flip-flop is reachable from `node`.
  [[nodiscard]] bool observable(NodeIndex node) const {
    return observable_[node] != 0;
  }

  /// Structural constant of `node`'s output net (Unknown if free).
  [[nodiscard]] ConstVal constant_of(NodeIndex node) const {
    return const_of_[node];
  }

  [[nodiscard]] bool is_static_x_redundant(const Fault& fault) const;

  /// Per-fault verdicts: StaticXRed or Undetected, aligned with
  /// `faults`.
  [[nodiscard]] std::vector<FaultStatus> classify(
      const std::vector<Fault>& faults) const;

  /// Number of faults in `faults` flagged statically X-redundant.
  [[nodiscard]] std::size_t count(const std::vector<Fault>& faults) const;

 private:
  const Netlist& netlist_;
  std::vector<std::uint8_t> observable_;
  std::vector<ConstVal> const_of_;
};

}  // namespace motsim

#endif  // MOTSIM_ANALYSIS_STATIC_XRED_H
