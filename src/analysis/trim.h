#ifndef MOTSIM_ANALYSIS_TRIM_H
#define MOTSIM_ANALYSIS_TRIM_H

#include <cstdint>
#include <vector>

#include "analysis/implication.h"
#include "circuit/netlist.h"
#include "faults/fault.h"

namespace motsim {

/// Static activation analysis powering the symbolic engines'
/// execution-redundancy trimming (docs/ANALYSIS.md).
///
/// Per fault, `dead_from[i]` is the earliest 1-based frame from which
/// the fault's activation function is provably constant 0 — the
/// activation net carries exactly the stuck value from that frame on,
/// for EVERY power-up state and EVERY input sequence (settled
/// constants; see ImplicationEngine). 0 means "never proven dead".
///
/// Soundness of the consumers: once a fault is past its dead_from
/// frame AND carries no stored state divergence, the faulty machine is
/// the fault-free machine forever — it can never again be activated
/// nor infect the state — so an engine may stop simulating it under
/// SOT/rMOT (no future detection event can occur) and skip its frames
/// under MOT (only the shared fault-free equality terms still
/// accumulate into D̃). Both moves are pure execution-redundancy
/// eliminators: the per-fault verdicts, detection frames and D̃
/// functions are bit-identical to the untrimmed run.
struct TrimPlan {
  /// Aligned with the fault list the plan was built for; 1-based
  /// frame, 0 = never statically dead.
  std::vector<std::uint32_t> dead_from;

  /// Number of faults with a nonzero dead_from.
  [[nodiscard]] std::size_t dead_fault_count() const noexcept {
    std::size_t n = 0;
    for (const std::uint32_t f : dead_from) n += (f != 0);
    return n;
  }
};

/// Builds a TrimPlan from structural constants alone (cheap: one
/// constant-propagation pass plus the settled-constant fixpoint; no
/// implication learning). This is what the engines derive on their own
/// when no richer plan is supplied.
[[nodiscard]] TrimPlan build_trim_plan(const Netlist& netlist,
                                       const std::vector<Fault>& faults);

/// Builds a TrimPlan from an already-constructed implication engine:
/// its settled constants include conflict-learned every-frame
/// constants, so this plan subsumes the structural one. Used by the
/// pipeline when the static-analysis stage ran anyway.
[[nodiscard]] TrimPlan build_trim_plan(const ImplicationEngine& engine,
                                       const std::vector<Fault>& faults);

/// Shared core: derives dead_from for each fault from any sound
/// settled-constant vector (one SettledConst per node).
[[nodiscard]] TrimPlan build_trim_plan(
    const Netlist& netlist, const std::vector<SettledConst>& settled,
    const std::vector<Fault>& faults);

}  // namespace motsim

#endif  // MOTSIM_ANALYSIS_TRIM_H
