#include "analysis/diagnostics.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "faults/report.h"
#include "util/strings.h"

namespace motsim {

const char* to_cstring(Severity s) noexcept {
  switch (s) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "?";
}

void DiagnosticReport::add(const Netlist& netlist, std::string id,
                           Severity severity, NodeIndex node,
                           std::string message) {
  Diagnostic d;
  d.id = std::move(id);
  d.severity = severity;
  d.node = node;
  if (node != kNoNode && node < netlist.node_count()) {
    d.name = netlist.gate(node).name;
  }
  d.message = std::move(message);
  diagnostics_.push_back(std::move(d));
}

void DiagnosticReport::add(Diagnostic diagnostic) {
  diagnostics_.push_back(std::move(diagnostic));
}

std::size_t DiagnosticReport::count(Severity s) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

bool DiagnosticReport::has(std::string_view id) const noexcept {
  return std::any_of(diagnostics_.begin(), diagnostics_.end(),
                     [id](const Diagnostic& d) { return d.id == id; });
}

std::vector<NodeIndex> DiagnosticReport::nodes_with(std::string_view id) const {
  std::vector<NodeIndex> out;
  for (const Diagnostic& d : diagnostics_) {
    if (d.id == id) out.push_back(d.node);
  }
  return out;
}

int DiagnosticReport::exit_code() const noexcept {
  if (count(Severity::Error) != 0) return 2;
  if (count(Severity::Warning) != 0) return 1;
  return 0;
}

std::string DiagnosticReport::to_text() const {
  std::ostringstream os;
  os << circuit_ << ":\n";
  for (const Diagnostic& d : diagnostics_) {
    os << "  " << to_cstring(d.severity) << "[" << d.id << "]";
    if (!d.name.empty()) os << " " << d.name;
    os << ": " << d.message << "\n";
  }
  os << "  " << count(Severity::Error) << " error(s), "
     << count(Severity::Warning) << " warning(s), " << count(Severity::Note)
     << " note(s)\n";
  return os.str();
}

std::string DiagnosticReport::to_json() const {
  std::ostringstream os;
  os << "{\n  \"circuit\": \"" << json_escape(circuit_) << "\",\n";
  os << "  \"counts\": {\"errors\": " << count(Severity::Error)
     << ", \"warnings\": " << count(Severity::Warning)
     << ", \"notes\": " << count(Severity::Note) << "},\n";
  os << "  \"diagnostics\": [";
  for (std::size_t i = 0; i < diagnostics_.size(); ++i) {
    const Diagnostic& d = diagnostics_[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"id\": \"" << json_escape(d.id) << "\", \"severity\": \""
       << to_cstring(d.severity) << "\", \"node\": ";
    if (d.node == kNoNode) {
      os << -1;
    } else {
      os << d.node;
    }
    os << ", \"name\": \"" << json_escape(d.name) << "\", \"message\": \""
       << json_escape(d.message) << "\"}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

namespace {

/// Hand-rolled recursive-descent parser for the subset of JSON that
/// to_json() emits (objects, arrays, strings with json_escape's escape
/// set, integers). Kept private to the renderer it inverts.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (!eat('"')) return fail("expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          if (code > 0x7F) return fail("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_int(long long& out) {
    skip_ws();
    bool neg = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      neg = true;
      ++pos_;
    }
    if (pos_ >= text_.size() ||
        std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
      return fail("expected integer");
    }
    long long v = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      v = v * 10 + (text_[pos_++] - '0');
    }
    out = neg ? -v : v;
    return true;
  }

  /// Skips one value of any supported kind (for unknown keys).
  bool skip_value() {
    skip_ws();
    if (peek('"')) {
      std::string s;
      return parse_string(s);
    }
    if (eat('{')) {
      if (eat('}')) return true;
      do {
        std::string key;
        if (!parse_string(key)) return false;
        if (!eat(':')) return fail("expected ':'");
        if (!skip_value()) return false;
      } while (eat(','));
      return eat('}') || fail("expected '}'");
    }
    if (eat('[')) {
      if (eat(']')) return true;
      do {
        if (!skip_value()) return false;
      } while (eat(','));
      return eat(']') || fail("expected ']'");
    }
    long long n = 0;
    return parse_int(n);
  }

  bool fail(const char* what) {
    if (error_.empty()) {
      error_ = "DiagnosticReport::from_json: ";
      error_ += what;
      error_ += " at offset " + std::to_string(pos_);
    }
    return false;
  }

  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool parse_severity(const std::string& s, Severity& out) {
  if (s == "note") {
    out = Severity::Note;
  } else if (s == "warning") {
    out = Severity::Warning;
  } else if (s == "error") {
    out = Severity::Error;
  } else {
    return false;
  }
  return true;
}

bool parse_diagnostic(JsonCursor& cur, Diagnostic& d) {
  if (!cur.eat('{')) return cur.fail("expected '{'");
  if (cur.eat('}')) return true;
  do {
    std::string key;
    if (!cur.parse_string(key)) return false;
    if (!cur.eat(':')) return cur.fail("expected ':'");
    if (key == "id") {
      if (!cur.parse_string(d.id)) return false;
    } else if (key == "severity") {
      std::string sev;
      if (!cur.parse_string(sev)) return false;
      if (!parse_severity(sev, d.severity)) {
        return cur.fail("unknown severity");
      }
    } else if (key == "node") {
      long long n = 0;
      if (!cur.parse_int(n)) return false;
      d.node = n < 0 ? kNoNode : static_cast<NodeIndex>(n);
    } else if (key == "name") {
      if (!cur.parse_string(d.name)) return false;
    } else if (key == "message") {
      if (!cur.parse_string(d.message)) return false;
    } else {
      if (!cur.skip_value()) return false;
    }
  } while (cur.eat(','));
  if (!cur.eat('}')) return cur.fail("expected '}'");
  return true;
}

}  // namespace

Expected<DiagnosticReport, std::string> DiagnosticReport::from_json(
    const std::string& text) {
  JsonCursor cur(text);
  DiagnosticReport report;
  std::string circuit;
  std::vector<Diagnostic> diagnostics;
  if (!cur.eat('{')) {
    cur.fail("expected '{'");
    return make_unexpected(cur.error());
  }
  if (!cur.eat('}')) {
    do {
      std::string key;
      if (!cur.parse_string(key)) return make_unexpected(cur.error());
      if (!cur.eat(':')) {
        cur.fail("expected ':'");
        return make_unexpected(cur.error());
      }
      if (key == "circuit") {
        if (!cur.parse_string(circuit)) return make_unexpected(cur.error());
      } else if (key == "diagnostics") {
        if (!cur.eat('[')) {
          cur.fail("expected '['");
          return make_unexpected(cur.error());
        }
        if (!cur.eat(']')) {
          do {
            Diagnostic d;
            if (!parse_diagnostic(cur, d)) return make_unexpected(cur.error());
            diagnostics.push_back(std::move(d));
          } while (cur.eat(','));
          if (!cur.eat(']')) {
            cur.fail("expected ']'");
            return make_unexpected(cur.error());
          }
        }
      } else {
        // "counts" and any future keys are derived data: skip.
        if (!cur.skip_value()) return make_unexpected(cur.error());
      }
    } while (cur.eat(','));
    if (!cur.eat('}')) {
      cur.fail("expected '}'");
      return make_unexpected(cur.error());
    }
  }
  report.circuit_ = std::move(circuit);
  report.diagnostics_ = std::move(diagnostics);
  return report;
}

}  // namespace motsim
