#include "analysis/trim.h"

#include "analysis/cone.h"

namespace motsim {

TrimPlan build_trim_plan(const Netlist& netlist,
                         const std::vector<SettledConst>& settled,
                         const std::vector<Fault>& faults) {
  TrimPlan plan;
  plan.dead_from.assign(faults.size(), 0);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const NodeIndex act = activation_node(netlist, faults[i]);
    if (act == kNoNode) continue;
    const SettledConst& s = settled[act];
    if (s.value == ConstVal::Unknown) continue;
    const ConstVal stuck =
        faults[i].stuck_value ? ConstVal::One : ConstVal::Zero;
    if (s.value == stuck) plan.dead_from[i] = s.from_frame;
  }
  return plan;
}

TrimPlan build_trim_plan(const Netlist& netlist,
                         const std::vector<Fault>& faults) {
  const std::vector<SettledConst> settled =
      settle_constants(netlist, structural_constants(netlist));
  return build_trim_plan(netlist, settled, faults);
}

TrimPlan build_trim_plan(const ImplicationEngine& engine,
                         const std::vector<Fault>& faults) {
  return build_trim_plan(engine.netlist(), engine.settled(), faults);
}

}  // namespace motsim
