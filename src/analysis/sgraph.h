#ifndef MOTSIM_ANALYSIS_SGRAPH_H
#define MOTSIM_ANALYSIS_SGRAPH_H

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.h"
#include "faults/fault.h"

namespace motsim {

/// Synchronization depth that is never reached: the flip-flop (or
/// output, or fault) sits in or downstream of a nontrivial s-graph SCC,
/// so no finite number of frames makes its value independent of the
/// unknown power-up state.
inline constexpr std::uint32_t kInfDepth = 0xFFFFFFFFu;

/// Flip-flop dependency graph (s-graph) analysis — static pass 6
/// (docs/ANALYSIS.md).
///
/// Vertices are the circuit's flip-flops (indexed by dff position); an
/// edge u -> v exists when FF u's present-state output lies in the
/// frame-local combinational support of FF v's next-state input. The
/// SCC condensation of this graph decides, per flip-flop, whether the
/// unknown power-up value can persist forever (nontrivial SCC, or
/// downstream of one) or provably flushes out after a fixed number of
/// frames (acyclic region).
///
/// Depth semantics under unknown power-up: with symbolic initial-state
/// variables seeded at frame r (the hybrid reseeds them at every
/// window boundary), a finite-depth flip-flop's present-state value at
/// the start of frame T is a function of primary inputs alone — a
/// constant OBDD under concrete input vectors — whenever
/// T - r >= init_depth. An output's value in frame T is input-only
/// whenever T - r >= its horizon (the max init-depth over its support
/// flip-flops; 0 for purely combinational outputs).
struct SgraphInfo {
  /// Per-FF predecessor lists (dff positions), sorted ascending. The
  /// raw adjacency is kept because the greedy feedback-set estimate
  /// and the lint diagnostics re-walk it.
  std::vector<std::vector<std::uint32_t>> preds;
  /// Per-FF SCC id. Ids follow Tarjan completion order, which is a
  /// reverse topological order of the condensation: an s-graph edge
  /// from SCC A into a different SCC B implies scc_id[B] < scc_id[A].
  std::vector<std::uint32_t> scc_id;
  /// Per-FF: member of a nontrivial SCC (size >= 2 or self-loop).
  std::vector<std::uint8_t> in_nontrivial_scc;
  /// Per-FF: in or downstream of a nontrivial SCC (init_depth is
  /// kInfDepth exactly for these).
  std::vector<std::uint8_t> tainted;
  /// Per-FF synchronization depth: smallest T such that the FF's value
  /// at the start of frame T (relative to the symbolic seeding frame)
  /// is a function of primary inputs only. 1 for an input-only FF,
  /// 1 + max over predecessors otherwise, kInfDepth when tainted.
  std::vector<std::uint32_t> init_depth;
  /// Per-primary-output-position horizon: max init_depth over the
  /// flip-flops in the output's frame-local support (0 if none,
  /// kInfDepth if any support FF is tainted).
  std::vector<std::uint32_t> output_horizon;

  std::size_t scc_count = 0;             ///< total SCCs (= FFs - merged)
  std::size_t nontrivial_scc_count = 0;  ///< SCCs of size >= 2 or self-loop
  std::size_t acyclic_ffs = 0;           ///< FFs with finite init_depth
  std::uint32_t max_finite_init_depth = 0;

  [[nodiscard]] std::size_t ff_count() const noexcept {
    return preds.size();
  }
};

/// Builds the s-graph and everything derived from it. Deterministic —
/// a pure function of the netlist. Requires a finalized netlist.
[[nodiscard]] SgraphInfo build_sgraph(const Netlist& netlist);

/// Per-fault observation horizons powering the symbolic engines'
/// MOT/rMOT -> SOT downgrade (docs/ANALYSIS.md pass 6).
///
/// `horizon[i]` is the max output horizon over the primary outputs in
/// fault i's forward cone of influence (crossing flip-flop
/// boundaries): once the current frame index t satisfies
/// t - epoch >= horizon[i] (epoch = frame at which the engine's
/// symbolic state variables were seeded), every output the fault can
/// ever reach carries a constant fault-free AND constant faulty value,
/// so the per-frame MOT equality products collapse — the full update
/// degenerates to an SOT-style constant comparison plus the shared
/// fault-free frame product, bit-identically by OBDD canonicity.
/// kInfDepth means "never downgrade"; 0 (no output reached, or purely
/// combinational observation) downgrades immediately.
struct SgraphPlan {
  /// Aligned with the fault list the plan was built for.
  std::vector<std::uint32_t> horizon;
  /// Nontrivial SCC count of the underlying s-graph (telemetry).
  std::size_t nontrivial_sccs = 0;

  /// Number of faults with a finite horizon (downgrade candidates).
  [[nodiscard]] std::size_t finite_horizon_count() const noexcept {
    std::size_t n = 0;
    for (const std::uint32_t h : horizon) n += (h != kInfDepth);
    return n;
  }
};

/// Builds a SgraphPlan for `faults` from an already-built SgraphInfo.
[[nodiscard]] SgraphPlan build_sgraph_plan(const Netlist& netlist,
                                           const SgraphInfo& info,
                                           const std::vector<Fault>& faults);

/// Convenience overload: builds the s-graph itself first. This is what
/// the engines derive on their own when no plan is supplied.
[[nodiscard]] SgraphPlan build_sgraph_plan(const Netlist& netlist,
                                           const std::vector<Fault>& faults);

/// Greedy feedback-set estimate: dff positions whose removal (partial
/// scan) would break every nontrivial SCC, chosen highest-degree-first
/// within the remaining cyclic subgraph (ties to the lowest position).
/// Diagnostics only — an upper bound on the minimum feedback vertex
/// set, never consumed by the engines.
[[nodiscard]] std::vector<std::uint32_t> greedy_feedback_set(
    const SgraphInfo& info);

struct CircuitStats;  // circuit/stats.h

/// Fills the sgraph_* fields of a CircuitStats (sets has_sgraph).
void attach_sgraph(CircuitStats& stats, const Netlist& netlist,
                   const SgraphInfo& info);

/// Compact per-circuit summary ("sgraph: ...") used by the lint CLI.
[[nodiscard]] std::string sgraph_summary(const Netlist& netlist,
                                         const SgraphInfo& info);

}  // namespace motsim

#endif  // MOTSIM_ANALYSIS_SGRAPH_H
